package mira

import (
	"bytes"
	"fmt"
	"testing"
)

// TestOffloadDeterminism: the scatter-gather offload path is bit-exact.
// For each kernel x offload mode x node count, two identical runs produce
// identical simulated times and byte-identical traces, and every run's
// output verifies against the native oracle (so offloaded results equal
// the sequential ones, element for element).
func TestOffloadDeterminism(t *testing.T) {
	for _, kernel := range []string{"agg", "filter"} {
		for _, mode := range []string{"off", "on"} {
			for _, nodes := range []int{1, 4} {
				name := fmt.Sprintf("%s/offload-%s/nodes-%d", kernel, mode, nodes)
				t.Run(name, func(t *testing.T) {
					run := func() (RunResult, []byte) {
						w := NewDistAggWorkload(DistAggConfig{N: 1 << 14, Mode: kernel})
						tr := NewTracer()
						res, err := Run(SystemMira, w, RunOptions{
							Budget:      w.FullMemoryBytes() / 4,
							Verify:      true,
							Nodes:       nodes,
							StripeBytes: 16 << 10,
							Offload:     mode,
							Trace:       tr,
						})
						if err != nil {
							t.Fatalf("run: %v", err)
						}
						var buf bytes.Buffer
						if err := tr.WriteTrace(&buf); err != nil {
							t.Fatalf("trace: %v", err)
						}
						return res, buf.Bytes()
					}
					r1, trace1 := run()
					r2, trace2 := run()
					if r1.Time != r2.Time {
						t.Errorf("times differ across identical runs: %v vs %v", r1.Time, r2.Time)
					}
					if !bytes.Equal(trace1, trace2) {
						t.Errorf("traces differ across identical runs (%d vs %d bytes)", len(trace1), len(trace2))
					}
					if mode == "on" {
						if pr := r1.PlanResult; pr == nil || len(pr.Offloaded) == 0 {
							t.Errorf("offload on accepted no functions")
						}
					}
				})
			}
		}
	}
}
