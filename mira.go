// Package mira is a Go implementation of Mira, the program-behavior-guided
// far-memory system of Guo, He, and Zhang (SOSP 2023). It reproduces the
// paper's full pipeline:
//
//   - programs are expressed in a small IR (see NewProgram) — the stand-in
//     for the paper's MLIR remotable/rmem dialects;
//   - static analyses classify access patterns, lifetimes, and batching
//     opportunities; run-time profiling picks the scopes worth optimizing;
//   - the planner iteratively derives cache-section configurations
//     (structure, line size, sizes via sampling + ILP, communication
//     method) and compiles the program against them, rolling back
//     regressions;
//   - the runtime executes over a simulated far-memory node with a
//     calibrated RDMA-like cost model, moving real bytes so results are
//     verifiable; and
//   - baselines (FastSwap, Leap, AIFM) run the same programs for
//     comparison, and a figure harness regenerates every experiment in the
//     paper's evaluation.
//
// Quick start:
//
//	w := mira.NewGraphWorkload(mira.GraphConfig{})
//	res, err := mira.Plan(w, mira.PlanOptions{LocalBudget: w.FullMemoryBytes() / 4})
//	// res.BaselineTime is the generic-swap time; res.FinalTime the
//	// optimized compilation's.
//
// See examples/ for complete programs and cmd/ for the CLI tools.
package mira

import (
	"mira/internal/apps/arraysum"
	"mira/internal/apps/dataframe"
	"mira/internal/apps/distagg"
	"mira/internal/apps/gpt2"
	"mira/internal/apps/graphtraverse"
	"mira/internal/apps/mcf"
	"mira/internal/apps/seqscan"
	"mira/internal/apps/stridescan"
	"mira/internal/cluster"
	"mira/internal/exec"
	"mira/internal/faults"
	"mira/internal/figures"
	"mira/internal/harness"
	"mira/internal/ir"
	"mira/internal/mtrun"
	"mira/internal/planner"
	"mira/internal/prefetch"
	"mira/internal/serve"
	"mira/internal/sim"
	"mira/internal/trace"
	"mira/internal/transport"
	"mira/internal/workload"
)

// Workload is a benchmark application: a program plus its data and oracle.
type Workload = workload.Workload

// PlanOptions configures the iterative optimization flow (§3 of the paper).
type PlanOptions = planner.Options

// PlanResult is the planning outcome: baseline vs final time, the accepted
// configuration and compiled program, and per-iteration records.
type PlanResult = planner.Result

// TechniqueMask selectively disables Mira optimizations (used by the
// ablation figures).
type TechniqueMask = planner.TechniqueMask

// Plan runs Mira's full iterative profile-analyze-configure-compile flow.
func Plan(w Workload, opts PlanOptions) (*PlanResult, error) {
	return planner.Plan(w, opts)
}

// System identifies one of the far-memory systems in the evaluation.
type System = harness.System

// The comparable systems.
const (
	SystemNative   = harness.Native
	SystemMira     = harness.Mira
	SystemMiraSwap = harness.MiraSwap
	SystemFastSwap = harness.FastSwap
	SystemLeap     = harness.Leap
	SystemAIFM     = harness.AIFM
)

// RunOptions configures a single system run.
type RunOptions = harness.Options

// Tracer collects deterministic trace events and metrics from a run (set
// RunOptions.Trace). Write the results with its WriteTrace (Chrome
// trace-event JSON, loadable in chrome://tracing or Perfetto) and
// Registry().WriteJSON (metrics) methods.
type Tracer = trace.Tracer

// NewTracer returns an empty tracer ready to attach to a run.
func NewTracer() *Tracer { return trace.New() }

// RunResult is one run's outcome.
type RunResult = harness.Result

// Run executes w on one system at the given options.
func Run(sys System, w Workload, opts RunOptions) (RunResult, error) {
	return harness.Run(sys, w, opts)
}

// Prefetcher zoo (set RunOptions.Prefetch, or use the race runners below,
// to replace a system's stock prefetching with a named policy).

// PrefetchSpec names a zoo prefetch policy and its knobs (window, depth).
type PrefetchSpec = prefetch.Spec

// PrefetchEfficacy carries a run's prefetch accounting: issued, useful,
// useless (fetched but evicted untouched), and dropped counts
// (RunResult.Prefetch).
type PrefetchEfficacy = prefetch.Efficacy

// PrefetchCompiled is the line plane's reference arm: the prefetch stream
// the planner compiled into the program, no runtime policy.
const PrefetchCompiled = prefetch.Compiled

// PrefetchPolicyNames lists the registered runtime policy families.
func PrefetchPolicyNames() []string { return prefetch.Names() }

// RunPagePrefetch races one policy on the page plane: the workload runs on
// a uniform swap configuration with the policy as its page prefetcher.
func RunPagePrefetch(w Workload, opts RunOptions, spec PrefetchSpec) (RunResult, error) {
	return harness.RunPagePolicy(w, opts, spec)
}

// RunLinePrefetch races one policy on the line plane: the planner's
// accepted sectioned configuration with the policy installed on every
// cache section's demand-miss stream.
func RunLinePrefetch(w Workload, opts RunOptions, spec PrefetchSpec) (RunResult, error) {
	return harness.RunLinePolicy(w, opts, spec)
}

// RunLinePrefetchRace runs several line-plane policies against one shared
// accepted plan (the planner runs once, so cells differ only in policy).
func RunLinePrefetchRace(w Workload, opts RunOptions, specs []PrefetchSpec) ([]RunResult, error) {
	return harness.RunLinePolicies(w, opts, specs)
}

// Fault injection and transport resilience (set RunOptions.Faults /
// RunOptions.Resilience to exercise a run under failures).

// FaultConfig describes a deterministic fault scenario: a schedule of
// crash/partition windows plus seeded probabilistic per-operation faults.
type FaultConfig = faults.Config

// FaultEvent is one scheduled crash/restart/partition transition.
type FaultEvent = faults.Event

// Fault event kinds.
const (
	FaultCrash          = faults.Crash
	FaultRestart        = faults.Restart
	FaultPartitionStart = faults.PartitionStart
	FaultPartitionEnd   = faults.PartitionEnd
)

// ResiliencePolicy tunes the transport's retries, deadlines, and circuit
// breaker.
type ResiliencePolicy = transport.Policy

// DefaultResiliencePolicy returns the transport's default policy.
func DefaultResiliencePolicy() ResiliencePolicy { return transport.DefaultPolicy() }

// RecoveryResiliencePolicy returns a policy able to ride out the named
// schedules' crash/partition windows on a run of the given length.
func RecoveryResiliencePolicy(horizon Duration) ResiliencePolicy {
	return transport.RecoveryPolicy(horizon)
}

// NetStats are the transport's resilience counters (RunResult.Net).
type NetStats = transport.Stats

// Multi-node cluster mode (set RunOptions.Nodes / RunOptions.Replicas to
// shard far memory across a replicated pool of far nodes).

// ClusterOptions configures the sharded far-node pool directly (most
// callers just set RunOptions.Nodes and RunOptions.Replicas).
type ClusterOptions = cluster.Options

// ClusterNodeStats reports one far node's counters in a multi-node run
// (RunResult.Cluster, ordered by node ID).
type ClusterNodeStats = cluster.NodeStats

// TierConfig puts a simulated SSD capacity tier under each cluster node's
// DRAM (RunOptions.Tier): hot granules stay in DRAM, cold ones demote to
// flash and promote back on access, paying the tier's promotion latency.
type TierConfig = cluster.TierConfig

// TierStats reports one node's capacity-tier counters
// (ClusterNodeStats.Tier).
type TierStats = cluster.TierStats

// ClusterResiliencePolicy returns the per-node transport policy suited to a
// replicated pool: members fail fast and the pool's replicas are the retry —
// transport-internal persistence would only delay failover.
func ClusterResiliencePolicy() ResiliencePolicy {
	p := transport.DefaultPolicy()
	p.MaxAttempts = 1
	p.BreakerThreshold = 2
	p.BreakerCooldown = 50 * sim.Microsecond
	return p
}

// Duration is a span of virtual time in nanoseconds.
type Duration = sim.Duration

// NamedFaultSchedule builds one of the predefined fault scenarios, with
// crash/partition windows placed at fractions of horizon (pass 0 for the
// default horizon).
func NamedFaultSchedule(name string, seed uint64, horizon sim.Duration) (FaultConfig, error) {
	return faults.NamedScaled(name, seed, horizon)
}

// FaultScheduleNames lists the predefined fault scenarios.
func FaultScheduleNames() []string { return faults.Names() }

// Figure is a regenerated evaluation figure.
type Figure = figures.Figure

// FigureScale selects quick or full experiment sizing.
type FigureScale = figures.Scale

// Figure scales.
const (
	FigureQuick = figures.Quick
	FigureFull  = figures.Full
)

// FigureIDs lists the regenerable figures.
func FigureIDs() []string { return figures.IDs() }

// GenerateFigure regenerates one evaluation figure.
func GenerateFigure(id string, scale FigureScale) (*Figure, error) {
	return figures.Generate(id, scale)
}

// NewProgram starts building an IR program — the front-end applications use
// in place of the paper's C++/ONNX sources.
func NewProgram(name string) *ir.Builder { return ir.NewBuilder(name) }

// Adapt implements the paper's input adaptation (§3): it measures an
// existing compilation against a new input and, when performance degrades
// past tolerance (default 0.2), runs a fresh optimization round and keeps
// whichever compilation is faster. It returns the compilation to use and
// whether re-optimization was triggered.
func Adapt(prev *PlanResult, w Workload, opts PlanOptions, tolerance float64) (*PlanResult, bool, error) {
	return planner.Adapt(prev, w, opts, tolerance)
}

// Measure runs an existing compilation against a (possibly different)
// input and returns its execution time — the measurement half of Adapt.
func Measure(prev *PlanResult, w Workload, opts PlanOptions) (sim.Duration, error) {
	return planner.Measure(prev, w, opts)
}

// MTMode selects a multithreading strategy for the scaling drivers (§4.6).
type MTMode = mtrun.Mode

// The multithreading strategies.
const (
	// MTMiraPrivate gives each thread private cache sections.
	MTMiraPrivate = mtrun.MiraPrivate
	// MTMiraShared shares one conservative section set (Fig. 24's
	// "Mira-unopt").
	MTMiraShared = mtrun.MiraShared
	// MTFastSwapShared shares the swap pool behind the kernel fault lock.
	MTFastSwapShared = mtrun.FastSwapShared
	// MTAIFMShared shares the AIFM object cache.
	MTAIFMShared = mtrun.AIFMShared
)

// MTResult is one multithreaded scaling point.
type MTResult = mtrun.Result

// ReadOnlyScaling divides a fixed batch of read-only executions of w
// across threads and returns the fork-join completion time (Fig. 24). The
// threads interleave deterministically on the virtual-time scheduler: the
// runnable thread with the lowest (virtual time, id) executes each next
// memory operation, so contention is emergent and byte-reproducible.
func ReadOnlyScaling(mode MTMode, w Workload, budget int64, threads int) (MTResult, error) {
	return mtrun.ReadOnlyScaling(mode, w, budget, threads)
}

// ReadOnlyScalingTraced is ReadOnlyScaling with a tracer attached to every
// runtime in the thread group (nil disables tracing); per-tid cache
// counters (cache.hit{...,tid=N} etc.) land in the tracer's registry.
func ReadOnlyScalingTraced(mode MTMode, w Workload, budget int64, threads int, tr *Tracer) (MTResult, error) {
	return mtrun.ReadOnlyScalingTraced(mode, w, budget, threads, tr)
}

// SharedWriteFilter partitions a DataFrame filter across threads writing
// one shared result vector (Fig. 25).
func SharedWriteFilter(mode MTMode, cfg DataFrameConfig, budget int64, threads int) (MTResult, error) {
	return mtrun.SharedWriteFilter(mode, cfg, budget, threads)
}

// TenantSpec describes one tenant of a multi-tenant serving mix: its
// workload, arrival process, SLO, queue bound, link weight, and DRAM budget.
type TenantSpec = serve.TenantSpec

// ServeOptions configures a multi-tenant serving run: admission control,
// elastic reclaim, the chaos schedule, and the seed every derived stream
// (arrivals, placement, faults) splits from.
type ServeOptions = serve.Options

// ServeResult reports a serving run: elapsed virtual time, per-tenant
// outcomes, and elastic-reclaim leases.
type ServeResult = serve.Result

// TenantResult is one tenant's outcome: admitted/rejected counts and exact
// p50/p95/p99 latency percentiles over admitted requests.
type TenantResult = serve.TenantResult

// ArrivalProcess selects a tenant's open-loop arrival process.
type ArrivalProcess = serve.Process

// The arrival processes.
const (
	// ArrivalsPoisson draws exponential interarrivals at a fixed rate.
	ArrivalsPoisson = serve.Poisson
	// ArrivalsBursty alternates on/off phases of Burst× / 1/Burst× the
	// mean rate.
	ArrivalsBursty = serve.Bursty
)

// Serve runs a multi-tenant serving mix to completion on the deterministic
// scheduler: open-loop arrivals, per-request execution, weighted-fair link
// arbitration, admission control, and elastic reclaim. Identical seeds
// produce byte-identical traces, metrics, and far-memory contents, chaos
// schedule included.
func Serve(specs []TenantSpec, opts ServeOptions) (*ServeResult, error) {
	return serve.Run(specs, opts)
}

// DefaultTenantMix is the canonical three-tenant mix (read-only sum, two
// mutating scans) used by mira-serve, the benchmarks, and CI.
func DefaultTenantMix() []TenantSpec { return serve.DefaultTenantMix() }

// NativeTenantReplay executes a tenant's workload reps times on a
// fault-free single-node runtime and returns its far-object dumps — the
// integrity reference for chaos serving runs.
func NativeTenantReplay(spec TenantSpec, reps int) (map[string][]byte, error) {
	return serve.NativeReplay(spec, reps)
}

// Workload constructors for the paper's applications.

// GraphConfig sizes the Fig. 4 graph-traversal example.
type GraphConfig = graphtraverse.Config

// NewGraphWorkload builds the graph-traversal example.
func NewGraphWorkload(cfg GraphConfig) Workload { return graphtraverse.New(cfg) }

// MCFConfig sizes the MCF (SPEC 429.mcf-like) workload.
type MCFConfig = mcf.Config

// NewMCFWorkload builds the MCF workload.
func NewMCFWorkload(cfg MCFConfig) Workload { return mcf.New(cfg) }

// DataFrameConfig sizes the DataFrame analytics workload.
type DataFrameConfig = dataframe.Config

// NewDataFrameWorkload builds the DataFrame workload.
func NewDataFrameWorkload(cfg DataFrameConfig) Workload { return dataframe.New(cfg) }

// GPT2Config sizes the GPT-2 inference workload.
type GPT2Config = gpt2.Config

// NewGPT2Workload builds the GPT-2 inference workload.
func NewGPT2Workload(cfg GPT2Config) Workload { return gpt2.New(cfg) }

// ArraySumConfig sizes the array-sum microbenchmark.
type ArraySumConfig = arraysum.Config

// NewArraySumWorkload builds the array-sum microbenchmark.
func NewArraySumWorkload(cfg ArraySumConfig) Workload { return arraysum.New(cfg) }

// SeqScanConfig sizes the sequential read-modify-write scan microbenchmark.
type SeqScanConfig = seqscan.Config

// NewSeqScanWorkload builds the memory-bound sequential scan (the vectored
// remote I/O evaluation's primary workload).
func NewSeqScanWorkload(cfg SeqScanConfig) Workload { return seqscan.New(cfg) }

// StrideScanConfig sizes the strided read-modify-write scan microbenchmark.
type StrideScanConfig = stridescan.Config

// NewStrideScanWorkload builds the memory-bound strided scan.
func NewStrideScanWorkload(cfg StrideScanConfig) Workload { return stridescan.New(cfg) }

// DistAggConfig sizes the distributed-aggregation workload (Mode "agg"
// sums, Mode "filter" predicates and counts).
type DistAggConfig = distagg.Config

// NewDistAggWorkload builds the distributed-aggregation workload — the
// scatter-gather offload engine's showcase: offloaded, each node reduces
// the stripe ranges it owns and returns one scalar.
func NewDistAggWorkload(cfg DistAggConfig) Workload { return distagg.New(cfg) }

// IR construction surface: NewProgram returns the ir.Builder, and the
// expression constructors below are re-exported so custom programs can be
// written against the facade alone (see ExampleNewProgram).

// Expr is an IR expression node.
type Expr = ir.Expr

// Field describes one field of a structured object's element.
type Field = ir.Field

// TensorRef names a dense float64 region for the tensor intrinsics.
type TensorRef = ir.TensorRef

// C builds an integer constant.
func C(i int64) Expr { return ir.C(i) }

// F64 builds a float constant.
func F64(f float64) Expr { return ir.CF(f) }

// P references an entry-function parameter.
func P(name string) Expr { return ir.P(name) }

// R references a register by id (from FuncBuilder.Var/NewReg).
func R(id int) Expr { return ir.R(id) }

// F declares a field (name, byte offset, byte size).
func F(name string, offset, bytes int) Field { return ir.F(name, offset, bytes) }

// T names a tensor: obj[off:] viewed as rows x cols float64s.
func T(obj string, off Expr, rows, cols int64) TensorRef { return ir.T(obj, off, rows, cols) }

// Add builds a + b.
func Add(a, b Expr) Expr { return ir.Add(a, b) }

// Sub builds a - b.
func Sub(a, b Expr) Expr { return ir.Sub(a, b) }

// Mul builds a * b.
func Mul(a, b Expr) Expr { return ir.Mul(a, b) }

// Div builds a / b.
func Div(a, b Expr) Expr { return ir.Div(a, b) }

// Mod builds a % b.
func Mod(a, b Expr) Expr { return ir.Mod(a, b) }

// Lt builds a < b.
func Lt(a, b Expr) Expr { return ir.Lt(a, b) }

// Le builds a <= b.
func Le(a, b Expr) Expr { return ir.Le(a, b) }

// Gt builds a > b.
func Gt(a, b Expr) Expr { return ir.Gt(a, b) }

// Ge builds a >= b.
func Ge(a, b Expr) Expr { return ir.Ge(a, b) }

// Eq builds a == b.
func Eq(a, b Expr) Expr { return ir.Eq(a, b) }

// Min builds min(a, b).
func Min(a, b Expr) Expr { return ir.Min(a, b) }

// Max builds max(a, b).
func Max(a, b Expr) Expr { return ir.Max(a, b) }

// Program is a validated IR program.
type Program = ir.Program

// customWorkload wraps a hand-built program and its data.
type customWorkload struct {
	name   string
	prog   *Program
	data   map[string][]byte
	params map[string]exec.Value
}

// NewCustomWorkload wraps a program built with NewProgram and its initial
// object contents into a Workload the planner and harness can run. data
// maps object names to their initial bytes (objects absent from the map
// start zeroed); params binds the entry function's parameters (nil when it
// has none).
func NewCustomWorkload(prog *Program, data map[string][]byte, params map[string]exec.Value) Workload {
	return &customWorkload{name: prog.Name, prog: prog, data: data, params: params}
}

func (w *customWorkload) Name() string      { return w.name }
func (w *customWorkload) Program() *Program { return w.prog }
func (w *customWorkload) Params() map[string]exec.Value {
	return w.params
}

func (w *customWorkload) Init(t workload.ObjectIniter) error {
	for name, d := range w.data {
		if err := t.InitObject(name, d); err != nil {
			return err
		}
	}
	return nil
}

func (w *customWorkload) FullMemoryBytes() int64 {
	var full int64
	for _, o := range w.prog.Objects {
		if !o.Local {
			full += o.SizeBytes()
		}
	}
	return full
}

// Value is a runtime scalar for binding entry-function parameters.
type Value = exec.Value

// IntV builds an integer Value.
func IntV(i int64) Value { return exec.IntV(i) }

// FloatV builds a float Value.
func FloatV(f float64) Value { return exec.FloatV(f) }
