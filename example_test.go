package mira_test

import (
	"fmt"
	"log"

	"mira"
)

// ExampleNewProgram builds a custom program in the IR — the front end
// applications use in place of the paper's C/C++/ONNX sources — wraps it in
// a workload, and lets the planner derive a far-memory configuration.
func ExampleNewProgram() {
	b := mira.NewProgram("dotproduct")
	b.FloatArray("a", 4096)
	b.FloatArray("b", 4096)
	b.FloatArray("out", 1)
	fb := b.Func("main")
	acc := fb.Var(mira.F64(0))
	fb.Loop(mira.C(0), mira.C(4096), mira.C(1), func(i mira.Expr) {
		av := fb.Load("a", i, "")
		bv := fb.Load("b", i, "")
		fb.Set(acc, mira.Add(mira.R(acc.ID), mira.Mul(av, bv)))
	})
	fb.Store("out", mira.C(0), "", mira.R(acc.ID))
	prog, err := b.Program()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(prog.Name, "validates with", len(prog.Objects), "objects")
	// Output: dotproduct validates with 3 objects
}

// ExampleAdapt shows §3's input adaptation: the compilation trained on one
// input keeps serving a same-distribution input without re-optimization.
func ExampleAdapt() {
	train := mira.DataFrameConfig{Rows: 2048, Seed: 2014}
	w := mira.NewDataFrameWorkload(train)
	opts := mira.PlanOptions{LocalBudget: w.FullMemoryBytes() / 2, MaxIterations: 2}
	res, err := mira.Plan(w, opts)
	if err != nil {
		log.Fatal(err)
	}
	test := train
	test.Seed = 2015
	_, reoptimized, err := mira.Adapt(res, mira.NewDataFrameWorkload(test), opts, 0.3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("re-optimized:", reoptimized)
	// Output: re-optimized: false
}

// ExampleNewCustomWorkload runs a hand-built program end to end on the
// Mira runtime and verifies it against native execution.
func ExampleNewCustomWorkload() {
	b := mira.NewProgram("scale")
	b.IntArray("v", 16384)
	fb := b.Func("main")
	fb.Loop(mira.C(0), mira.C(16384), mira.C(1), func(i mira.Expr) {
		x := fb.Load("v", i, "")
		fb.Store("v", i, "", mira.Mul(x, mira.C(3)))
	})
	prog, err := b.Program()
	if err != nil {
		log.Fatal(err)
	}
	data := make([]byte, 16384*8)
	data[0] = 7 // v[0] = 7
	w := mira.NewCustomWorkload(prog, map[string][]byte{"v": data}, nil)
	res, err := mira.Plan(w, mira.PlanOptions{LocalBudget: w.FullMemoryBytes() / 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("beats swap baseline:", res.FinalTime < res.BaselineTime)
	// Output: beats swap baseline: true
}
