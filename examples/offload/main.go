// Offload example (§4.8): a data-heavy, compute-light scan is cheaper to
// run on the far-memory node's (3x slower) CPU than to stream across the
// network. Mira's planner makes the call automatically from the analysis's
// compute/traffic estimates.
package main

import (
	"fmt"
	"log"

	"mira"
)

func main() {
	w := mira.NewArraySumWorkload(mira.ArraySumConfig{N: 1 << 16, Seed: 6})
	budget := w.FullMemoryBytes() / 8 // 12.5% local memory

	local, err := mira.Plan(w, mira.PlanOptions{LocalBudget: budget, MaxIterations: 2})
	if err != nil {
		log.Fatal(err)
	}
	offloaded, err := mira.Plan(mira.NewArraySumWorkload(mira.ArraySumConfig{N: 1 << 16, Seed: 6}),
		mira.PlanOptions{LocalBudget: budget, MaxIterations: 2, EnableOffload: true})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("array sum over 512 KB at 12.5% local memory")
	fmt.Printf("  generic swap:              %v\n", local.BaselineTime)
	fmt.Printf("  Mira, compute local:       %v\n", local.FinalTime)
	fmt.Printf("  Mira, kernel offloaded:    %v\n", offloaded.FinalTime)
	for _, it := range offloaded.Iterations {
		if it.Accepted && len(it.Offloaded) > 0 {
			fmt.Printf("  planner offloaded %v to the far node (3x slower CPU, zero data movement)\n", it.Offloaded)
		}
	}
	fmt.Printf("  offload gain:              %.2fx\n",
		float64(local.FinalTime)/float64(offloaded.FinalTime))
}
