// DataFrame example: the paper's Fig. 23 batching job — avg, min, and max
// over one column, written as three consecutive loops. Mira's compiler
// fuses the loops and batch-fetches the column; this example shows the
// effect by planning with and without the batching technique.
package main

import (
	"fmt"
	"log"

	"mira"
)

func main() {
	cfg := mira.DataFrameConfig{Rows: 1 << 15, Seed: 2014, BatchJobOnly: true}
	w := mira.NewDataFrameWorkload(cfg)
	// Budget below the scanned column's size, so each of the three
	// loops must re-stream it from far memory.
	budget := w.FullMemoryBytes() / 8

	withBatching, err := mira.Plan(w, mira.PlanOptions{
		LocalBudget:   budget,
		MaxIterations: 3,
	})
	if err != nil {
		log.Fatal(err)
	}

	noBatching, err := mira.Plan(mira.NewDataFrameWorkload(cfg), mira.PlanOptions{
		LocalBudget:   budget,
		MaxIterations: 3,
		Techniques:    mira.TechniqueMask{ForceStructure: -1, NoBatching: true},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("avg/min/max over one vector, three consecutive loops, 12.5% local memory")
	fmt.Printf("  generic swap:          %v\n", withBatching.BaselineTime)
	fmt.Printf("  Mira without batching: %v\n", noBatching.FinalTime)
	fmt.Printf("  Mira with batching:    %v (loops fused, column batch-fetched)\n", withBatching.FinalTime)
	fmt.Printf("  batching gain:         %.2fx\n",
		float64(noBatching.FinalTime)/float64(withBatching.FinalTime))
}
