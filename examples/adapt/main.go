// Input-adaptation example (§3): compile once against one input
// distribution, keep serving new inputs, and let Adapt re-optimize in the
// background only when a sampled input degrades past tolerance. The
// trained compilation generalizes across same-shaped inputs — the paper's
// Fig. 16 train-2014/test-2015 result.
package main

import (
	"fmt"
	"log"

	"mira"
)

func main() {
	train := mira.DataFrameConfig{Rows: 16384, Seed: 2014, FilterOnly: true, CreditRate: 0.02}
	w := mira.NewDataFrameWorkload(train)
	opts := mira.PlanOptions{LocalBudget: w.FullMemoryBytes() / 4, MaxIterations: 2}
	res, err := mira.Plan(w, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained on 2014 data (2%% filter match): %v\n\n", res.FinalTime)

	fmt.Printf("%-22s %12s %14s %8s\n", "test input", "stale", "after-adapt", "re-opt")
	for _, rate := range []float64{0.02, 0.30, 0.90} {
		cfg := train
		cfg.Seed = 2015
		cfg.CreditRate = rate
		stale, err := mira.Measure(res, mira.NewDataFrameWorkload(cfg), opts)
		if err != nil {
			log.Fatal(err)
		}
		adapted, reopt, err := mira.Adapt(res, mira.NewDataFrameWorkload(cfg), opts, 0.2)
		if err != nil {
			log.Fatal(err)
		}
		after, err := mira.Measure(adapted, mira.NewDataFrameWorkload(cfg), opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("2015, %4.0f%% match      %12v %14v %8v\n", rate*100, stale, after, reopt)
	}
	fmt.Println("\nAdapt keeps whichever compilation measures faster, so serving")
	fmt.Println("performance never regresses when the input distribution shifts.")
}
