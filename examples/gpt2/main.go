// GPT-2 example: the paper's Fig. 17 behavior — transformer inference whose
// layer-by-layer lifetimes let Mira sustain near-full performance with a
// small fraction of local memory, while swap-based systems degrade.
package main

import (
	"fmt"
	"log"

	"mira"
)

func main() {
	cfg := mira.GPT2Config{Layers: 6, DModel: 64, DFF: 256, SeqLen: 16, Seed: 117}
	w := mira.NewGPT2Workload(cfg)
	native, err := mira.Run(mira.SystemNative, w, mira.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model footprint: %d KB; native inference: %v\n\n", w.FullMemoryBytes()/1024, native.Time)
	fmt.Printf("%-8s %12s %12s\n", "mem%", "mira", "fastswap")

	for _, frac := range []float64{0.15, 0.25, 0.5, 1.0} {
		budget := int64(float64(w.FullMemoryBytes()) * frac)
		fmt.Printf("%-8.0f", frac*100)
		for _, sys := range []mira.System{mira.SystemMira, mira.SystemFastSwap} {
			opts := mira.RunOptions{Budget: budget}
			if sys == mira.SystemMira {
				opts.Planner.MaxIterations = 8
			}
			res, err := mira.Run(sys, mira.NewGPT2Workload(cfg), opts)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %12.3f", float64(native.Time)/float64(res.Time))
		}
		fmt.Println()
	}
	fmt.Println("\nvalues are relative performance (native = 1.0)")
	fmt.Println("Mira releases each layer's weights when the layer finishes (rmem.release),")
	fmt.Println("so a small local memory holds just the live layer's working set.")
}
