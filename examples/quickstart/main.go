// Quickstart: run the paper's rundown example (Fig. 4's graph traversal)
// under Mira and under the FastSwap baseline at 25% local memory, and show
// where Mira's win comes from.
package main

import (
	"fmt"
	"log"

	"mira"
)

func main() {
	// The Fig. 4 workload: a sequential edge scan updating node counters
	// through indirect indices.
	w := mira.NewGraphWorkload(mira.GraphConfig{
		Edges: 16384,
		Nodes: 4096,
		Seed:  42,
	})
	budget := w.FullMemoryBytes() / 4 // 25% local memory

	// Run Mira: profiles on the generic swap configuration, analyzes the
	// hot scopes, separates cache sections, compiles prefetches and
	// native loads, and keeps the best configuration.
	res, err := mira.Run(mira.SystemMira, w, mira.RunOptions{Budget: budget, Verify: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Mira:     %v\n", res.Time)
	if pr := res.PlanResult; pr != nil {
		fmt.Printf("  swap baseline was %v; planner accepted %d sections\n",
			pr.BaselineTime, len(pr.Config.Sections))
	}

	// The same program, unchanged, on the page-swap baseline.
	fs, err := mira.Run(mira.SystemFastSwap, w, mira.RunOptions{Budget: budget, Verify: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("FastSwap: %v\n", fs.Time)
	fmt.Printf("Speedup:  %.1fx (both runs verified against the native oracle)\n",
		float64(fs.Time)/float64(res.Time))
}
