// Multithreading example: the paper's §4.6 strategies on both sharing
// patterns. Read-only threads (GPT-2 inference batch, Fig. 24) get private
// per-thread cache sections; threads writing one shared result vector
// (DataFrame filter, Fig. 25) share a fully-associative section with
// don't-evict pins. Both are compared against FastSwap's shared page pool
// behind the kernel fault lock.
package main

import (
	"fmt"
	"log"

	"mira"
)

func main() {
	fmt.Println("read-only scaling (GPT-2 inference batch, Fig. 24)")
	gcfg := mira.GPT2Config{Layers: 6, DModel: 64, DFF: 256, SeqLen: 16, Seed: 5}
	w := mira.NewGPT2Workload(gcfg)
	budget := w.FullMemoryBytes()
	fmt.Printf("%-10s %12s %12s\n", "threads", "mira", "fastswap")
	base := map[mira.MTMode]float64{}
	for _, n := range []int{1, 2, 4} {
		fmt.Printf("%-10d", n)
		for _, mode := range []mira.MTMode{mira.MTMiraPrivate, mira.MTFastSwapShared} {
			res, err := mira.ReadOnlyScaling(mode, mira.NewGPT2Workload(gcfg), budget, n)
			if err != nil {
				log.Fatal(err)
			}
			if n == 1 {
				base[mode] = float64(res.Time)
			}
			fmt.Printf(" %11.2fx", base[mode]/float64(res.Time))
		}
		fmt.Println()
	}

	fmt.Println("\nwritable-shared scaling (DataFrame filter, Fig. 25)")
	dcfg := mira.DataFrameConfig{Rows: 1 << 14, Seed: 7}
	dbudget := int64(1<<14) * 8 * 5 / 3
	fmt.Printf("%-10s %12s %12s\n", "threads", "mira", "fastswap")
	base = map[mira.MTMode]float64{}
	for _, n := range []int{1, 2, 4} {
		fmt.Printf("%-10d", n)
		for _, mode := range []mira.MTMode{mira.MTMiraPrivate, mira.MTFastSwapShared} {
			res, err := mira.SharedWriteFilter(mode, dcfg, dbudget, n)
			if err != nil {
				log.Fatal(err)
			}
			if n == 1 {
				base[mode] = float64(res.Time)
			}
			fmt.Printf(" %11.2fx", base[mode]/float64(res.Time))
		}
		fmt.Println()
	}
	fmt.Println("\nMira's private replicas and shared fully-associative section")
	fmt.Println("both outscale the kernel-locked shared swap pool (§4.6).")
}
