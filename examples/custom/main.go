// Custom-program example: write your own computation in the IR (the stand-in
// for the paper's C/C++ front end), wrap it with NewCustomWorkload, and let
// Mira's planner derive cache sections, prefetching, and eviction hints.
//
// The program is a histogram: a sequential pass over a large sample array,
// incrementing data-dependent buckets — the same sequential + indirect mix
// as the paper's rundown example, but built from scratch here.
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"mira"
)

const (
	samples = 1 << 15
	buckets = 512
)

func main() {
	b := mira.NewProgram("histogram")
	b.IntArray("samples", samples)
	b.IntArray("hist", buckets)
	fb := b.Func("main")
	fb.Loop(mira.C(0), mira.C(samples), mira.C(1), func(i mira.Expr) {
		v := fb.Load("samples", i, "")
		bucket := fb.Let(mira.Mod(v, mira.C(buckets)))
		c := fb.Load("hist", bucket, "")
		fb.Store("hist", bucket, "", mira.Add(c, mira.C(1)))
	})
	prog, err := b.Program()
	if err != nil {
		log.Fatal(err)
	}

	// Deterministic sample data.
	data := make([]byte, samples*8)
	for i := int64(0); i < samples; i++ {
		binary.LittleEndian.PutUint64(data[i*8:], uint64(i*i%99991))
	}
	w := mira.NewCustomWorkload(prog, map[string][]byte{"samples": data}, nil)
	budget := w.FullMemoryBytes() / 4

	native, err := mira.Run(mira.SystemNative, w, mira.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	res, err := mira.Plan(w, mira.PlanOptions{LocalBudget: budget, MaxIterations: 4})
	if err != nil {
		log.Fatal(err)
	}
	fs, err := mira.Run(mira.SystemFastSwap, w, mira.RunOptions{Budget: budget})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("histogram over %d samples into %d buckets at 25%% local memory\n\n", samples, buckets)
	fmt.Printf("native:    %v\n", native.Time)
	fmt.Printf("mira:      %v  (%d sections; swap baseline was %v)\n",
		res.FinalTime, len(res.Config.Sections), res.BaselineTime)
	fmt.Printf("fastswap:  %v\n", fs.Time)
	fmt.Printf("\nmira/fastswap: %.1fx\n", float64(fs.Time)/float64(res.FinalTime))
	for _, it := range res.Iterations {
		status := "rejected"
		if it.Accepted {
			status = "accepted"
		}
		fmt.Printf("  iteration %d: %d funcs, %d objects -> %v (%s)\n",
			it.Index, len(it.Funcs), len(it.Objects), it.Time, status)
	}
}
