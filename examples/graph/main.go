// Graph example: sweep local-memory fractions on the Fig. 4 graph
// traversal and print the paper's Fig. 5 comparison — Mira vs FastSwap,
// Leap, and AIFM, normalized to native execution.
package main

import (
	"fmt"
	"log"

	"mira"
)

func main() {
	cfg := mira.GraphConfig{Edges: 16384, Nodes: 4096, Passes: 4, Seed: 7}
	w := mira.NewGraphWorkload(cfg)
	native, err := mira.Run(mira.SystemNative, w, mira.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("native (full local memory): %v\n\n", native.Time)
	fmt.Printf("%-8s %12s %12s %12s %12s\n", "mem%", "mira", "fastswap", "leap", "aifm")

	for _, frac := range []float64{0.2, 0.4, 0.6, 0.8, 1.0} {
		budget := int64(float64(w.FullMemoryBytes()) * frac)
		fmt.Printf("%-8.0f", frac*100)
		for _, sys := range []mira.System{mira.SystemMira, mira.SystemFastSwap, mira.SystemLeap, mira.SystemAIFM} {
			res, err := mira.Run(sys, mira.NewGraphWorkload(cfg), mira.RunOptions{Budget: budget})
			if err != nil {
				log.Fatal(err)
			}
			if res.Failed {
				fmt.Printf(" %12s", "fail")
				continue
			}
			rel := float64(native.Time) / float64(res.Time)
			fmt.Printf(" %12.3f", rel)
		}
		fmt.Println()
	}
	fmt.Println("\nvalues are relative performance (native = 1.0)")
}
