// Benchmark harness: one testing.B benchmark per evaluation figure in the
// paper (§6). Each benchmark regenerates its figure at Quick scale and
// reports the figure's headline quantity as a custom metric, so
//
//	go test -bench=. -benchmem
//
// reproduces the entire evaluation and prints the shape-defining numbers.
// cmd/mira-bench renders the same figures as full tables (use -scale full
// for figure-quality sweeps).
package mira

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"
)

// benchFigure regenerates one figure per iteration and lets report extract
// a metric from the last result.
func benchFigure(b *testing.B, id string, report func(*Figure, *testing.B)) {
	b.Helper()
	var fig *Figure
	for i := 0; i < b.N; i++ {
		var err error
		fig, err = GenerateFigure(id, FigureQuick)
		if err != nil {
			b.Fatal(err)
		}
	}
	if report != nil && fig != nil {
		report(fig, b)
	}
}

// seriesPoint fetches series y at the given x (0 if absent).
func seriesPoint(f *Figure, name string, x float64) float64 {
	for _, s := range f.Series {
		if s.Name != name {
			continue
		}
		for i, xv := range s.X {
			if xv == x {
				return s.Y[i]
			}
		}
	}
	return 0
}

// speedupOver reports series a's advantage over series b at x.
func speedupOver(f *Figure, a, b string, x float64) float64 {
	pb := seriesPoint(f, b, x)
	if pb == 0 {
		return 0
	}
	return seriesPoint(f, a, x) / pb
}

func BenchmarkFig05_GraphOverall(b *testing.B) {
	benchFigure(b, "fig5", func(f *Figure, b *testing.B) {
		b.ReportMetric(speedupOver(f, "mira", "fastswap", 0.25), "mira/fastswap@25%")
		b.ReportMetric(speedupOver(f, "mira", "leap", 0.25), "mira/leap@25%")
	})
}

func BenchmarkFig06_TechniqueEffect(b *testing.B) {
	benchFigure(b, "fig6", func(f *Figure, b *testing.B) {
		s := f.Series[0]
		b.ReportMetric(s.Y[len(s.Y)-1]/s.Y[0], "full-mira/swap")
	})
}

func BenchmarkFig07_Separation(b *testing.B) {
	benchFigure(b, "fig7", func(f *Figure, b *testing.B) {
		b.ReportMetric(speedupOver(f, "mira", "mira-swap", 0.25), "separated/joint@25%")
	})
}

func BenchmarkFig08_MissRate(b *testing.B) {
	benchFigure(b, "fig8", func(f *Figure, b *testing.B) {
		joint := seriesPoint(f, "joint", 0.25)
		sep := seriesPoint(f, "separated", 0.25)
		if joint > 0 {
			b.ReportMetric(100*(joint-sep)/joint, "miss-drop-%@25%")
		}
	})
}

func BenchmarkFig09_LineSize(b *testing.B)     { benchFigure(b, "fig9", nil) }
func BenchmarkFig10_Structure(b *testing.B)    { benchFigure(b, "fig10", nil) }
func BenchmarkFig11_SizeSampling(b *testing.B) { benchFigure(b, "fig11", nil) }
func BenchmarkFig12_ILPPartition(b *testing.B) { benchFigure(b, "fig12", nil) }

func BenchmarkFig15_PrefetchHints(b *testing.B) {
	benchFigure(b, "fig15", func(f *Figure, b *testing.B) {
		b.ReportMetric(speedupOver(f, "mira+pf+hints", "mira-no-pf-no-hints", 0.25), "pf+hints-gain@25%")
		b.ReportMetric(speedupOver(f, "mira+pf+hints", "leap", 0.25), "mira/leap@25%")
	})
}

func BenchmarkFig16_DataFrame(b *testing.B) {
	benchFigure(b, "fig16", func(f *Figure, b *testing.B) {
		b.ReportMetric(speedupOver(f, "mira", "fastswap", 0.5), "mira/fastswap@50%")
	})
}

func BenchmarkFig17_GPT2(b *testing.B) {
	benchFigure(b, "fig17", func(f *Figure, b *testing.B) {
		quarter := seriesPoint(f, "mira", 0.25)
		full := seriesPoint(f, "mira", 1.0)
		if full > 0 {
			b.ReportMetric(quarter/full, "mira-flatness-25%/100%")
		}
	})
}

func BenchmarkFig18_MCF(b *testing.B) {
	benchFigure(b, "fig18", func(f *Figure, b *testing.B) {
		b.ReportMetric(speedupOver(f, "mira", "fastswap", 0.25), "mira/fastswap@25%")
	})
}

func BenchmarkFig19_RuntimeOverhead(b *testing.B) {
	benchFigure(b, "fig19", func(f *Figure, b *testing.B) {
		// Graph example at index 1: Mira vs AIFM at full memory.
		b.ReportMetric(speedupOver(f, "mira", "aifm", 1), "mira/aifm@100%mem")
	})
}

func BenchmarkFig20_Metadata(b *testing.B) {
	benchFigure(b, "fig20", func(f *Figure, b *testing.B) {
		mira := seriesPoint(f, "mira", 1)
		aifm := seriesPoint(f, "aifm", 1)
		if mira > 0 {
			b.ReportMetric(aifm/mira, "aifm/mira-metadata(graph)")
		}
	})
}

func BenchmarkFig21_Breakdown(b *testing.B) { benchFigure(b, "fig21", nil) }

func BenchmarkFig22_Selective(b *testing.B) {
	benchFigure(b, "fig22", func(f *Figure, b *testing.B) {
		b.ReportMetric(speedupOver(f, "mira+selective", "mira-no-selective", 0.5), "selective-gain@50%")
	})
}

func BenchmarkFig23_Batching(b *testing.B) {
	benchFigure(b, "fig23", func(f *Figure, b *testing.B) {
		b.ReportMetric(speedupOver(f, "mira+batching", "mira-no-batching", 0.25), "batching-gain@25%")
	})
}

func BenchmarkFig24_MTReadOnly(b *testing.B) {
	benchFigure(b, "fig24", func(f *Figure, b *testing.B) {
		b.ReportMetric(seriesPoint(f, "mira", 4), "mira-speedup@4T")
		b.ReportMetric(seriesPoint(f, "fastswap", 4), "fastswap-speedup@4T")
	})
}

func BenchmarkFig25_MTShared(b *testing.B) {
	benchFigure(b, "fig25", func(f *Figure, b *testing.B) {
		b.ReportMetric(seriesPoint(f, "mira", 4), "mira-speedup@4T")
	})
}

func BenchmarkStat_AnalysisScope(b *testing.B) { benchFigure(b, "scope", nil) }
func BenchmarkStat_ProfilingOverhead(b *testing.B) {
	benchFigure(b, "scope", func(f *Figure, b *testing.B) {
		s := f.Series[0]
		// The last three stats are profiling-overhead percentages.
		var maxPct float64
		for i := len(s.Y) - 3; i < len(s.Y); i++ {
			if s.Y[i] > maxPct {
				maxPct = s.Y[i]
			}
		}
		b.ReportMetric(maxPct, "max-profiling-overhead-%")
	})
}

// ExamplePlan demonstrates the public API end to end (also acts as a doc
// test).
func ExamplePlan() {
	w := NewGraphWorkload(GraphConfig{Edges: 2048, Nodes: 2048, Passes: 1, Seed: 1})
	res, err := Plan(w, PlanOptions{LocalBudget: w.FullMemoryBytes() / 4, MaxIterations: 2})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("improved:", res.FinalTime < res.BaselineTime)
	// Output: improved: true
}

// BenchmarkAblation_Offload measures §4.8's automatic function offloading
// on a data-heavy scan (an extension figure; the paper has no dedicated
// offload plot).
func BenchmarkAblation_Offload(b *testing.B) {
	benchFigure(b, "offload", func(f *Figure, b *testing.B) {
		b.ReportMetric(speedupOver(f, "mira+offload", "mira-no-offload", 0.25), "offload-gain@25%")
	})
}

// BenchmarkAblation_Adapt measures §3's input adaptation: a compilation
// trained on a sparse-filter input is evaluated on shifted inputs; the
// adapted series must never fall below the stale one (Adapt keeps the
// better compilation), and on this workload the trained plan generalizes —
// Fig. 16's train/test finding.
func BenchmarkAblation_Adapt(b *testing.B) {
	benchFigure(b, "adapt", func(f *Figure, b *testing.B) {
		b.ReportMetric(speedupOver(f, "mira-adapt", "mira-stale (no adaptation)", 0.9), "adapt/stale@0.9")
	})
}

// BenchmarkAblation_ILP compares §4.3's sampled-curve ILP section split
// against equal and footprint-proportional splits of the same budget.
func BenchmarkAblation_ILP(b *testing.B) {
	benchFigure(b, "ilp", func(f *Figure, b *testing.B) {
		s := f.Series[0]
		if len(s.Y) == 3 && s.Y[1] > 0 {
			b.ReportMetric(s.Y[0]/s.Y[1], "ilp/equal-split")
		}
	})
}

// ---- Vectored-I/O batching trajectory (BENCH_batching.json) ----

// batchRunRecord is one (app, system, batching) measurement.
type batchRunRecord struct {
	SimTimeNs  int64   `json:"sim_time_ns"`
	SimTime    string  `json:"sim_time"`
	Messages   int64   `json:"messages"`
	BytesMoved int64   `json:"bytes_moved"`
	BatchHist  []int64 `json:"batch_hist"` // power-of-two piece-count buckets: 1,2,4,...,128+
}

// batchAppRecord pairs the batching-on/off runs of one system on one app.
type batchAppRecord struct {
	Batching         batchRunRecord `json:"batching"`
	NoBatching       batchRunRecord `json:"no_batching"`
	TimeReductionPct float64        `json:"time_reduction_pct"`
	MessageRatio     float64        `json:"message_ratio"`
}

func batchMeasure(t *testing.T, sys System, w Workload, noBatching bool) batchRunRecord {
	t.Helper()
	res, err := Run(sys, w, RunOptions{
		Budget:     int64(float64(w.FullMemoryBytes()) * 0.25),
		Verify:     true,
		NoBatching: noBatching,
	})
	if err != nil {
		t.Fatalf("%s %s (noBatching=%v): %v", w.Name(), sys, noBatching, err)
	}
	if res.Failed {
		t.Fatalf("%s %s (noBatching=%v): failed to execute: %s", w.Name(), sys, noBatching, res.FailReason)
	}
	return batchRunRecord{
		SimTimeNs:  int64(res.Time),
		SimTime:    res.Time.String(),
		Messages:   res.Messages,
		BytesMoved: res.BytesMoved,
		BatchHist:  append([]int64(nil), res.Net.BatchHist[:]...),
	}
}

// TestBenchBatching measures the vectored-I/O data path (doorbell-batched
// prefetch + async write-back) against the unbatched per-line path on the
// sequential and strided scan apps, emits BENCH_batching.json for future
// PRs to diff, and gates the batching win: simulated completion time must
// drop >= 15% and transport messages >= 2x on both apps. CI runs this as
// the benchmark smoke job.
func TestBenchBatching(t *testing.T) {
	apps := []Workload{
		NewSeqScanWorkload(SeqScanConfig{}),
		NewStrideScanWorkload(StrideScanConfig{}),
	}
	out := map[string]map[string]batchAppRecord{}
	for _, w := range apps {
		perSys := map[string]batchAppRecord{}
		for _, sys := range []System{SystemMira, SystemLeap} {
			on := batchMeasure(t, sys, w, false)
			off := batchMeasure(t, sys, w, true)
			rec := batchAppRecord{Batching: on, NoBatching: off}
			if off.SimTimeNs > 0 {
				rec.TimeReductionPct = 100 * float64(off.SimTimeNs-on.SimTimeNs) / float64(off.SimTimeNs)
			}
			if on.Messages > 0 {
				rec.MessageRatio = float64(off.Messages) / float64(on.Messages)
			}
			perSys[string(sys)] = rec
			t.Logf("%s on %s: %s -> %s (%.1f%%), %d -> %d messages (%.1fx)",
				w.Name(), sys, off.SimTime, on.SimTime, rec.TimeReductionPct,
				off.Messages, on.Messages, rec.MessageRatio)
		}
		out[w.Name()] = perSys

		mira := perSys[string(SystemMira)]
		if mira.TimeReductionPct < 15 {
			t.Errorf("%s: batching cuts simulated time by %.1f%%, want >= 15%%", w.Name(), mira.TimeReductionPct)
		}
		if mira.MessageRatio < 2 {
			t.Errorf("%s: batching cuts messages by %.2fx, want >= 2x", w.Name(), mira.MessageRatio)
		}
	}
	doc := map[string]any{
		"description":  "Vectored remote I/O A/B: mira-run -batch=true vs -batch=false at 25% local memory. Regenerate with: go test -run TestBenchBatching .",
		"mem_fraction": 0.25,
		"apps":         out,
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_batching.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

// ---- Multithreaded scaling trajectory (BENCH_mt.json) ----

// mtRunRecord is one (mode, thread count) point of the Fig. 24 driver.
type mtRunRecord struct {
	SimTimeNs     int64   `json:"sim_time_ns"`
	SimTime       string  `json:"sim_time"`
	Messages      int64   `json:"messages"`
	BytesMoved    int64   `json:"bytes_moved"`
	SpeedupOver1T float64 `json:"speedup_over_1t"`
}

// TestBenchMT runs the Fig. 24 read-only scaling driver (fixed GPT-2 batch
// divided across interleaved threads) for Mira, Mira-unopt, and FastSwap at
// 1..8 threads, emits BENCH_mt.json for future PRs to diff, and gates the
// paper's shape: Mira must out-scale FastSwap, and Mira-unopt's shared
// conservative sections must cost it measurable time against Mira's private
// sections at 4+ threads (emergent cross-thread eviction interference).
func TestBenchMT(t *testing.T) {
	w := NewGPT2Workload(GPT2Config{Layers: 6, DModel: 64, DFF: 256, SeqLen: 16, Seed: 117})
	budget := w.FullMemoryBytes()
	threadCounts := []int{1, 2, 4, 8}

	out := map[string]map[string]mtRunRecord{}
	timeAt := map[string]map[int]int64{}
	for _, mode := range []MTMode{MTMiraPrivate, MTMiraShared, MTFastSwapShared} {
		perN := map[string]mtRunRecord{}
		timeAt[string(mode)] = map[int]int64{}
		var t1 int64
		for _, n := range threadCounts {
			res, err := ReadOnlyScaling(mode, w, budget, n)
			if err != nil {
				t.Fatalf("%s x%d: %v", mode, n, err)
			}
			if n == 1 {
				t1 = int64(res.Time)
			}
			rec := mtRunRecord{
				SimTimeNs:  int64(res.Time),
				SimTime:    res.Time.String(),
				Messages:   res.Messages,
				BytesMoved: res.BytesMoved,
			}
			if res.Time > 0 {
				rec.SpeedupOver1T = float64(t1) / float64(res.Time)
			}
			perN[fmt.Sprintf("%d", n)] = rec
			timeAt[string(mode)][n] = int64(res.Time)
			t.Logf("%s x%d: %s (%.2fx over 1T), %d messages, %d bytes",
				mode, n, rec.SimTime, rec.SpeedupOver1T, rec.Messages, rec.BytesMoved)
		}
		out[string(mode)] = perN
	}

	miraS := out[string(MTMiraPrivate)]["4"].SpeedupOver1T
	fsS := out[string(MTFastSwapShared)]["4"].SpeedupOver1T
	if miraS <= fsS {
		t.Errorf("mira 4-thread speedup %.2fx not above fastswap %.2fx", miraS, fsS)
	}
	if p, u := timeAt[string(MTMiraPrivate)][4], timeAt[string(MTMiraShared)][4]; u <= p {
		t.Errorf("mira-unopt at 4 threads (%d ns) not slower than mira (%d ns)", u, p)
	}

	doc := map[string]any{
		"description": "Fig. 24 read-only scaling on the deterministic interleaved scheduler: fixed GPT-2 batch divided across threads, full-footprint budget. Regenerate with: go test -run TestBenchMT .",
		"threads":     threadCounts,
		"modes":       out,
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_mt.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

// ---- Multi-tenant serving trajectory (BENCH_tenants.json) ----

// tenantRunRecord is one tenant's outcome in one serving scenario.
type tenantRunRecord struct {
	Requests int            `json:"requests"`
	Admitted int            `json:"admitted"`
	Rejected map[string]int `json:"rejected"`
	P50Ns    int64          `json:"p50_ns"`
	P95Ns    int64          `json:"p95_ns"`
	P99Ns    int64          `json:"p99_ns"`
	P50      string         `json:"p50"`
	P95      string         `json:"p95"`
	P99      string         `json:"p99"`
}

// serveScenario runs the default mix under one (admission, faults) setting.
func serveScenario(t *testing.T, seed uint64, admission bool, faultsName string) (*ServeResult, []TenantSpec) {
	t.Helper()
	mix := DefaultTenantMix()
	res, err := Serve(mix, ServeOptions{
		Seed:      seed,
		Admission: admission,
		Elastic:   true,
		Faults:    faultsName,
	})
	if err != nil {
		t.Fatalf("serve (admission=%v faults=%q): %v", admission, faultsName, err)
	}
	return res, mix
}

// TestBenchTenants measures the multi-tenant serving layer: the canonical
// three-tenant mix (Poisson and bursty arrivals) under {admission on, off}
// x {healthy, chaos}, emitting per-tenant exact p50/p95/p99 latencies and
// rejected-request counts as BENCH_tenants.json for future PRs to diff.
// Gates: under chaos, admission control must shed load (rejections > 0) and
// cut some tenant's admitted-p99 below the admit-everything run; and no
// scenario may lose data — every tenant's far memory must equal a
// fault-free native replay of exactly its admitted request count.
func TestBenchTenants(t *testing.T) {
	const seed = 5
	out := map[string]map[string]tenantRunRecord{}
	scenarios := []struct {
		key       string
		admission bool
		faults    string
	}{
		{"healthy_admission", true, ""},
		{"healthy_noadmission", false, ""},
		{"chaos_admission", true, "chaos"},
		{"chaos_noadmission", false, "chaos"},
	}
	p99 := map[string]map[string]int64{} // scenario -> tenant -> p99
	for _, sc := range scenarios {
		res, mix := serveScenario(t, seed, sc.admission, sc.faults)
		perTenant := map[string]tenantRunRecord{}
		p99[sc.key] = map[string]int64{}
		for i, tr := range res.Tenants {
			perTenant[tr.Name] = tenantRunRecord{
				Requests: tr.Requests,
				Admitted: tr.Admitted,
				Rejected: tr.Rejected,
				P50Ns:    int64(tr.P50),
				P95Ns:    int64(tr.P95),
				P99Ns:    int64(tr.P99),
				P50:      tr.P50.String(),
				P95:      tr.P95.String(),
				P99:      tr.P99.String(),
			}
			p99[sc.key][tr.Name] = int64(tr.P99)
			t.Logf("%s %s: admitted %d/%d rejected %d p50=%v p95=%v p99=%v",
				sc.key, tr.Name, tr.Admitted, tr.Requests, tr.RejectedTotal(), tr.P50, tr.P95, tr.P99)

			// No data loss in any scenario: far memory must equal a native
			// replay of the admitted count.
			want, err := NativeTenantReplay(mix[i], tr.Admitted)
			if err != nil {
				t.Fatal(err)
			}
			for name, d := range tr.Dumps {
				if !bytesEqual(d, want[name]) {
					t.Errorf("%s %s: object %q diverges from native replay of %d requests",
						sc.key, tr.Name, name, tr.Admitted)
				}
			}
		}
		out[sc.key] = perTenant
	}

	rejected := 0
	tailCut := false
	for name, rec := range out["chaos_admission"] {
		for _, n := range rec.Rejected {
			rejected += n
		}
		if rec.Admitted > 0 && p99["chaos_admission"][name] < p99["chaos_noadmission"][name] {
			tailCut = true
		}
	}
	if rejected == 0 {
		t.Error("admission control rejected nothing under chaos")
	}
	if !tailCut {
		t.Error("admission control did not cut any tenant's p99 under chaos")
	}

	doc := map[string]any{
		"description": "Multi-tenant serving: default 3-tenant mix (Poisson + bursty arrivals) under {admission on, off} x {healthy, chaos}, exact per-tenant percentiles over admitted requests. Regenerate with: go test -run TestBenchTenants .",
		"seed":        seed,
		"scenarios":   out,
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_tenants.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

// ---- Prefetcher zoo race (BENCH_prefetch.json) ----

// prefetchCellRecord is one (app, plane, policy) cell of the race.
type prefetchCellRecord struct {
	SimTimeNs    int64   `json:"sim_time_ns"`
	SimTime      string  `json:"sim_time"`
	Messages     int64   `json:"messages"`
	BytesMoved   int64   `json:"bytes_moved"`
	Issued       int64   `json:"issued"`
	Useful       int64   `json:"useful"`
	Useless      int64   `json:"useless"`
	Dropped      int64   `json:"dropped"`
	DemandMisses int64   `json:"demand_misses"`
	Accuracy     float64 `json:"accuracy"`
	Coverage     float64 `json:"coverage"`
	Timeliness   float64 `json:"timeliness"`
}

func prefetchCell(res RunResult) prefetchCellRecord {
	return prefetchCellRecord{
		SimTimeNs:    int64(res.Time),
		SimTime:      res.Time.String(),
		Messages:     res.Messages,
		BytesMoved:   res.BytesMoved,
		Issued:       res.Prefetch.Issued,
		Useful:       res.Prefetch.Useful,
		Useless:      res.Prefetch.Useless,
		Dropped:      res.Prefetch.Dropped,
		DemandMisses: res.DemandMisses,
		Accuracy:     res.Prefetch.Accuracy(),
		Coverage:     res.Prefetch.Coverage(res.DemandMisses),
		Timeliness:   res.Prefetch.Timeliness(),
	}
}

// TestBenchPrefetch races every registered prefetch policy against every
// app on both data planes — the page plane (uniform swap, policy as page
// prefetcher) and the line plane (the planner's accepted sections, policy
// on each section's miss stream, with the compiled prefetch stream as the
// reference arm) — and emits BENCH_prefetch.json for future PRs to diff.
// Gates, per the policy taxonomy (DESIGN.md §13): the programmed runner
// must beat no-prefetch on the sequential scan's page plane and the
// compiled stream on at least one scan app's line plane; the online
// history prefetcher must beat both no-prefetch and readahead on the
// pointer-heavy graph traversal's page plane. CI runs this twice and
// byte-compares the JSON (prefetch-smoke).
func TestBenchPrefetch(t *testing.T) {
	apps := []Workload{
		NewSeqScanWorkload(SeqScanConfig{}),
		NewStrideScanWorkload(StrideScanConfig{}),
		NewGraphWorkload(GraphConfig{Edges: 8192, Nodes: 1024, Passes: 3, Seed: 7}),
		NewDataFrameWorkload(DataFrameConfig{}),
		NewGPT2Workload(GPT2Config{Layers: 2, DModel: 32, DFF: 128, SeqLen: 8, Seed: 11}),
	}
	var pagePolicies []PrefetchSpec
	for _, name := range PrefetchPolicyNames() {
		pagePolicies = append(pagePolicies, PrefetchSpec{Policy: name})
	}
	linePolicies := append([]PrefetchSpec{{Policy: PrefetchCompiled}}, pagePolicies...)

	out := map[string]map[string]map[string]prefetchCellRecord{}
	for _, w := range apps {
		opts := RunOptions{
			Budget: int64(float64(w.FullMemoryBytes()) * 0.25),
			Verify: true,
		}
		page := map[string]prefetchCellRecord{}
		for _, spec := range pagePolicies {
			res, err := RunPagePrefetch(w, opts, spec)
			if err != nil {
				t.Fatalf("%s page/%s: %v", w.Name(), spec.Policy, err)
			}
			page[spec.Policy] = prefetchCell(res)
			t.Logf("%s page/%s: %s, %d misses, acc %.2f cov %.2f",
				w.Name(), spec.Policy, res.Time, res.DemandMisses,
				res.Prefetch.Accuracy(), res.Prefetch.Coverage(res.DemandMisses))
		}
		lres, err := RunLinePrefetchRace(w, opts, linePolicies)
		if err != nil {
			t.Fatalf("%s line race: %v", w.Name(), err)
		}
		line := map[string]prefetchCellRecord{}
		for i, spec := range linePolicies {
			line[spec.Policy] = prefetchCell(lres[i])
			t.Logf("%s line/%s: %s, %d misses, acc %.2f cov %.2f",
				w.Name(), spec.Policy, lres[i].Time, lres[i].DemandMisses,
				lres[i].Prefetch.Accuracy(), lres[i].Prefetch.Coverage(lres[i].DemandMisses))
		}
		out[w.Name()] = map[string]map[string]prefetchCellRecord{
			"page": page, "line": line,
		}
	}

	// Gate: the programmed runner's exact future knowledge must beat the
	// pattern-blind arms on the sequential scan's page plane.
	if p, n := out["seqscan"]["page"]["programmed"], out["seqscan"]["page"]["none"]; p.SimTimeNs >= n.SimTimeNs {
		t.Errorf("seqscan page: programmed (%s) not under no-prefetch (%s)", p.SimTime, n.SimTime)
	}
	// Gate: shedding the compiled stream's per-iteration guard arithmetic
	// must pay on at least one scan app's line plane.
	progWins := false
	for _, app := range []string{"seqscan", "stridescan"} {
		if out[app]["line"]["programmed"].SimTimeNs < out[app]["line"][PrefetchCompiled].SimTimeNs {
			progWins = true
		}
	}
	if !progWins {
		t.Errorf("line plane: programmed (%s seqscan, %s stridescan) never under compiled (%s, %s)",
			out["seqscan"]["line"]["programmed"].SimTime,
			out["stridescan"]["line"]["programmed"].SimTime,
			out["seqscan"]["line"][PrefetchCompiled].SimTime,
			out["stridescan"]["line"][PrefetchCompiled].SimTime)
	}
	// Gate: the history prefetcher's learned miss deltas must beat the
	// pattern-blind arms on the repeated graph traversal's page plane.
	g := out["graphtraverse"]["page"]
	if g["history"].SimTimeNs >= g["none"].SimTimeNs {
		t.Errorf("graphtraverse page: history (%s) not under no-prefetch (%s)",
			g["history"].SimTime, g["none"].SimTime)
	}
	if g["history"].SimTimeNs >= g["readahead"].SimTimeNs {
		t.Errorf("graphtraverse page: history (%s) not under readahead (%s)",
			g["history"].SimTime, g["readahead"].SimTime)
	}

	doc := map[string]any{
		"description":  "Prefetcher zoo race: every registered policy x every app on both data planes (page = uniform swap, line = planner's accepted sections; 'compiled' = the planner's emitted prefetch stream) at 25% local memory. Regenerate with: go test -run TestBenchPrefetch .",
		"mem_fraction": 0.25,
		"policies":     append([]string{PrefetchCompiled}, PrefetchPolicyNames()...),
		"apps":         out,
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_prefetch.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

// ---- Compressed + tiered far memory race (BENCH_compress.json) ----

// compressRunRecord is one (app, compress mode) measurement.
type compressRunRecord struct {
	SimTimeNs      int64   `json:"sim_time_ns"`
	SimTime        string  `json:"sim_time"`
	BytesOnWire    int64   `json:"bytes_on_wire"`
	BytesEffective int64   `json:"bytes_effective"`
	WireSavedPct   float64 `json:"wire_saved_pct"`
}

func compressMeasure(t *testing.T, w Workload, mode string) compressRunRecord {
	t.Helper()
	res, err := Run(SystemMira, w, RunOptions{
		Budget:   int64(float64(w.FullMemoryBytes()) * 0.25),
		Verify:   true,
		Compress: mode,
	})
	if err != nil {
		t.Fatalf("%s compress=%s: %v", w.Name(), mode, err)
	}
	rec := compressRunRecord{
		SimTimeNs:      int64(res.Time),
		SimTime:        res.Time.String(),
		BytesOnWire:    res.BytesOnWire,
		BytesEffective: res.BytesEffective,
	}
	if res.BytesEffective > 0 {
		rec.WireSavedPct = 100 * float64(res.BytesEffective-res.BytesOnWire) / float64(res.BytesEffective)
	}
	return rec
}

// TestBenchCompress races the wire-compression modes {off, always-on,
// planner-chosen} across three apps (all verified against the native
// oracle, so far-memory images stay byte-identical in every mode), plus one
// tiered-cluster run combining compression with the SSD capacity tier, and
// emits BENCH_compress.json for future PRs to diff. Gates: planner-chosen
// must match or beat both pure modes on every app (it measures, then keeps
// the winner); always-on must cut bytes-on-wire >= 30% on at least one
// bandwidth-bound scan; the tier run must actually demote and promote.
// CI runs this twice and byte-compares the JSON (compress-smoke).
func TestBenchCompress(t *testing.T) {
	apps := []Workload{
		NewSeqScanWorkload(SeqScanConfig{}),
		NewStrideScanWorkload(StrideScanConfig{}),
		NewDataFrameWorkload(DataFrameConfig{}),
	}
	modes := []string{"off", "on", "auto"}

	out := map[string]map[string]compressRunRecord{}
	for _, w := range apps {
		perMode := map[string]compressRunRecord{}
		for _, mode := range modes {
			rec := compressMeasure(t, w, mode)
			perMode[mode] = rec
			t.Logf("%s compress=%s: %s, %d B on wire (%d effective, %.1f%% saved)",
				w.Name(), mode, rec.SimTime, rec.BytesOnWire, rec.BytesEffective, rec.WireSavedPct)
		}
		out[w.Name()] = perMode

		// Gate: the planner's measured per-section choice dominates both
		// blanket settings — it races them and keeps the faster config.
		a, off, on := perMode["auto"], perMode["off"], perMode["on"]
		if a.SimTimeNs > off.SimTimeNs || a.SimTimeNs > on.SimTimeNs {
			t.Errorf("%s: planner-chosen (%s) loses to off (%s) or on (%s)",
				w.Name(), a.SimTime, off.SimTime, on.SimTime)
		}
	}

	// Gate: >= 30% of the wire bytes must come off at least one
	// bandwidth-bound scan under always-on compression.
	wireCut := false
	for _, app := range []string{"seqscan", "stridescan"} {
		off, on := out[app]["off"], out[app]["on"]
		if off.BytesOnWire > 0 &&
			float64(off.BytesOnWire-on.BytesOnWire) >= 0.30*float64(off.BytesOnWire) {
			wireCut = true
		}
	}
	if !wireCut {
		t.Errorf("no scan app saw a >= 30%% bytes-on-wire cut: seqscan %d -> %d, stridescan %d -> %d",
			out["seqscan"]["off"].BytesOnWire, out["seqscan"]["on"].BytesOnWire,
			out["stridescan"]["off"].BytesOnWire, out["stridescan"]["on"].BytesOnWire)
	}

	// Tiered arm: compression on over a 2-node pool whose per-node DRAM
	// holds an eighth of the footprint — cold granules must spill to flash
	// and come back (the repeated traversal revisits them), with the run
	// still verifying byte-identical.
	tw := NewGraphWorkload(GraphConfig{Edges: 8192, Nodes: 1024, Passes: 3, Seed: 7})
	tres, err := Run(SystemMira, tw, RunOptions{
		Budget:   int64(float64(tw.FullMemoryBytes()) * 0.25),
		Verify:   true,
		Compress: "on",
		Nodes:    2,
		Tier:     &TierConfig{DRAMBytes: uint64(tw.FullMemoryBytes() / 8)},
	})
	if err != nil {
		t.Fatalf("tiered run: %v", err)
	}
	var tierSum TierStats
	for _, n := range tres.Cluster {
		tierSum.Hits += n.Tier.Hits
		tierSum.Misses += n.Tier.Misses
		tierSum.Demotions += n.Tier.Demotions
		tierSum.ResidentBytes += n.Tier.ResidentBytes
		tierSum.SSDBytes += n.Tier.SSDBytes
	}
	if tierSum.Demotions == 0 || tierSum.Misses == 0 {
		t.Errorf("capacity tier never exercised: %+v", tierSum)
	}
	capacityRatio := 0.0
	if tierSum.ResidentBytes > 0 {
		capacityRatio = float64(tierSum.ResidentBytes+tierSum.SSDBytes) / float64(tierSum.ResidentBytes)
	}
	t.Logf("tiered graphtraverse: %v, tier %d hits %d misses %d demotions, %.2fx effective capacity",
		tres.Time, tierSum.Hits, tierSum.Misses, tierSum.Demotions, capacityRatio)

	doc := map[string]any{
		"description":  "Wire-compression A/B: mira-run -compress {off,on,auto} at 25% local memory (planner-chosen = per-section measured accept/rollback), plus one 2-node run with the SSD capacity tier. Regenerate with: go test -run TestBenchCompress .",
		"mem_fraction": 0.25,
		"modes":        modes,
		"apps":         out,
		"tiered_graphtraverse": map[string]any{
			"sim_time_ns":        int64(tres.Time),
			"sim_time":           tres.Time.String(),
			"bytes_on_wire":      tres.BytesOnWire,
			"bytes_effective":    tres.BytesEffective,
			"tier_hits":          tierSum.Hits,
			"tier_misses":        tierSum.Misses,
			"tier_demotions":     tierSum.Demotions,
			"tier_dram_bytes":    tierSum.ResidentBytes,
			"tier_flash_bytes":   tierSum.SSDBytes,
			"eff_capacity_ratio": capacityRatio,
		},
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_compress.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

// ---- Hybrid data-plane race (BENCH_hybrid.json) ----

// hybridRunRecord is one (app, plane mode) measurement.
type hybridRunRecord struct {
	SimTimeNs  int64             `json:"sim_time_ns"`
	SimTime    string            `json:"sim_time"`
	Messages   int64             `json:"messages"`
	BytesMoved int64             `json:"bytes_moved"`
	Planes     map[string]string `json:"planes"` // object -> local | line | page
}

func hybridMeasure(t *testing.T, w Workload, mode string) hybridRunRecord {
	t.Helper()
	res, err := Run(SystemMira, w, RunOptions{
		Budget: int64(float64(w.FullMemoryBytes()) * 0.25),
		Verify: true,
		Plane:  mode,
	})
	if err != nil {
		t.Fatalf("%s plane=%s: %v", w.Name(), mode, err)
	}
	rec := hybridRunRecord{
		SimTimeNs:  int64(res.Time),
		SimTime:    res.Time.String(),
		Messages:   res.Messages,
		BytesMoved: res.BytesMoved,
	}
	if res.PlanResult != nil {
		rec.Planes = res.PlanResult.Planes
	}
	return rec
}

// TestBenchHybrid races the three plane modes {page, line, hybrid} across
// every app at 25% local memory (all verified against the native oracle) and
// emits BENCH_hybrid.json for future PRs to diff. Gate: hybrid must match or
// beat both pure planes on every app — its baseline IS the page arm's run and
// its line candidate is built by the same helper as the line arm's, so the
// planner keeps whichever wins and a loss here means the race leaked state
// between arms. CI runs this twice and byte-compares the JSON (hybrid-smoke).
func TestBenchHybrid(t *testing.T) {
	apps := []Workload{
		NewSeqScanWorkload(SeqScanConfig{}),
		NewStrideScanWorkload(StrideScanConfig{}),
		NewGraphWorkload(GraphConfig{Edges: 8192, Nodes: 1024, Passes: 3, Seed: 7}),
		NewDataFrameWorkload(DataFrameConfig{}),
		NewGPT2Workload(GPT2Config{Layers: 2, DModel: 32, DFF: 128, SeqLen: 8, Seed: 11}),
	}
	modes := []string{"page", "line", "hybrid"}

	out := map[string]map[string]hybridRunRecord{}
	for _, w := range apps {
		perMode := map[string]hybridRunRecord{}
		for _, mode := range modes {
			rec := hybridMeasure(t, w, mode)
			perMode[mode] = rec
			t.Logf("%s plane=%s: %s, %d messages, %d bytes, planes %v",
				w.Name(), mode, rec.SimTime, rec.Messages, rec.BytesMoved, rec.Planes)
		}
		out[w.Name()] = perMode

		h, p, l := perMode["hybrid"], perMode["page"], perMode["line"]
		if h.SimTimeNs > p.SimTimeNs || h.SimTimeNs > l.SimTimeNs {
			t.Errorf("%s: hybrid (%s) loses to page (%s) or line (%s)",
				w.Name(), h.SimTime, p.SimTime, l.SimTime)
		}
	}

	doc := map[string]any{
		"description":  "Hybrid data-plane race: mira-run -plane {page,line,hybrid} at 25% local memory. page = everything on the kernel-paging plane, line = everything cacheable on runtime line sections, hybrid = planner races both and keeps a per-object split. Regenerate with: go test -run TestBenchHybrid .",
		"mem_fraction": 0.25,
		"modes":        modes,
		"apps":         out,
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_hybrid.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

// bytesEqual avoids importing bytes just for the dump comparison.
// ---- Scatter-gather offload race (BENCH_offload.json) ----

// offloadRunRecord is one (app, node count, offload mode) measurement.
type offloadRunRecord struct {
	SimTimeNs  int64    `json:"sim_time_ns"`
	SimTime    string   `json:"sim_time"`
	BytesMoved int64    `json:"bytes_moved"`
	Offloaded  []string `json:"offloaded,omitempty"`
}

func offloadMeasure(t *testing.T, kernel string, nodes int, mode string) offloadRunRecord {
	t.Helper()
	w := NewDistAggWorkload(DistAggConfig{N: 1 << 14, Mode: kernel})
	res, err := Run(SystemMira, w, RunOptions{
		Budget:      w.FullMemoryBytes() / 4,
		Verify:      true,
		Nodes:       nodes,
		StripeBytes: 16 << 10,
		Offload:     mode,
	})
	if err != nil {
		t.Fatalf("%s nodes=%d offload=%s: %v", kernel, nodes, mode, err)
	}
	rec := offloadRunRecord{
		SimTimeNs:  int64(res.Time),
		SimTime:    res.Time.String(),
		BytesMoved: res.BytesMoved,
	}
	if res.PlanResult != nil {
		rec.Offloaded = res.PlanResult.Offloaded
	}
	return rec
}

// TestBenchOffload races the scatter-gather offload modes {off, on,
// planner-chosen} for the distributed aggregation and filter kernels
// across 1-8 node pools (every run verified against the native oracle) and
// emits BENCH_offload.json for future PRs to diff. Gates: auto must match
// or beat both pure modes in every cell (the planner races offload against
// fetch and keeps the winner), and at 8 nodes the aggregation must run
// faster shipping compute to the data than fetching the data to compute.
// CI runs this twice and byte-compares the JSON (offload-smoke).
func TestBenchOffload(t *testing.T) {
	kernels := []string{"agg", "filter"}
	nodeCounts := []int{1, 2, 4, 8}
	modes := []string{"off", "on", "auto"}

	out := map[string]map[string]offloadRunRecord{}
	for _, kernel := range kernels {
		perCell := map[string]offloadRunRecord{}
		for _, nodes := range nodeCounts {
			for _, mode := range modes {
				rec := offloadMeasure(t, kernel, nodes, mode)
				perCell[fmt.Sprintf("nodes-%d/%s", nodes, mode)] = rec
				t.Logf("%s nodes=%d offload=%s: %s, %d B moved, offloaded %v",
					kernel, nodes, mode, rec.SimTime, rec.BytesMoved, rec.Offloaded)
			}
			a := perCell[fmt.Sprintf("nodes-%d/auto", nodes)]
			off := perCell[fmt.Sprintf("nodes-%d/off", nodes)]
			on := perCell[fmt.Sprintf("nodes-%d/on", nodes)]
			// Gate: auto races offload against fetch from the settled plan
			// and accepts only strict wins, so it can't lose to either.
			if a.SimTimeNs > off.SimTimeNs || a.SimTimeNs > on.SimTimeNs {
				t.Errorf("%s nodes=%d: planner-chosen (%s) loses to off (%s) or on (%s)",
					kernel, nodes, a.SimTime, off.SimTime, on.SimTime)
			}
		}
		out[kernel] = perCell
	}

	// Gate: at cluster scale, shipping the aggregation to the data beats
	// fetching the data to the aggregation.
	off8, on8 := out["agg"]["nodes-8/off"], out["agg"]["nodes-8/on"]
	if on8.SimTimeNs >= off8.SimTimeNs {
		t.Errorf("agg at 8 nodes: offload (%s) does not beat fetch (%s)", on8.SimTime, off8.SimTime)
	}

	doc := map[string]any{
		"description":  "Scatter-gather offload A/B: mira-run -app {distagg,distfilter} -offload {off,on,auto} across 1-8 node pools at 25% local memory, 16 KiB stripes (auto = planner-raced accept/rollback per function). Regenerate with: go test -run TestBenchOffload .",
		"mem_fraction": 0.25,
		"stripe_bytes": 16 << 10,
		"elements":     1 << 14,
		"nodes":        nodeCounts,
		"modes":        modes,
		"apps":         out,
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_offload.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
