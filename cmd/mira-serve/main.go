// Command mira-serve runs the multi-tenant serving layer: an open-loop
// seeded workload generator drives the canonical three-tenant mix (or a
// subset) over per-tenant replicated far-memory pools, with weighted-fair
// link arbitration, admission control, elastic DRAM reclaim, and an
// optional chaos schedule on one pool node per tenant.
//
// Usage:
//
//	mira-serve -seed 1
//	mira-serve -seed 1 -faults chaos
//	mira-serve -seed 1 -faults chaos -admission=false
//	mira-serve -seed 1 -trace trace.json -metrics metrics.json
//
// Identical invocations produce byte-identical trace, metrics, and
// far-memory contents — chaos schedule included (CI diffs two runs).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"mira"
)

func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func main() {
	seed := flag.Uint64("seed", 1, "root seed for arrivals, placement, and faults")
	admission := flag.Bool("admission", true, "admission control: bounded queue, SLO projection, degraded read-only shedding")
	elastic := flag.Bool("elastic", true, "elastic reclaim: idle tenants' local DRAM lent to loaded ones")
	faultsName := flag.String("faults", "", fmt.Sprintf("named fault schedule %v injected on node 0 of every tenant's pool; empty = healthy", mira.FaultScheduleNames()))
	nodes := flag.Int("nodes", 2, "far nodes per tenant pool")
	replicas := flag.Int("replicas", 2, "replication factor per tenant pool")
	traceOut := flag.String("trace", "", "write a Chrome trace-event JSON of the serving run to this file")
	metricsOut := flag.String("metrics", "", "write the run's metrics registry as JSON to this file")
	flag.Parse()

	opts := mira.ServeOptions{
		Seed:      *seed,
		Admission: *admission,
		Elastic:   *elastic,
		Faults:    *faultsName,
		Nodes:     *nodes,
		Replicas:  *replicas,
	}
	var tr *mira.Tracer
	if *traceOut != "" || *metricsOut != "" {
		tr = mira.NewTracer()
		opts.Trace = tr
	}
	res, err := mira.Serve(mira.DefaultTenantMix(), opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mira-serve:", err)
		os.Exit(1)
	}

	fmt.Printf("elapsed %v  leases %d  admission=%v elastic=%v faults=%q\n",
		res.Elapsed, res.Leases, *admission, *elastic, *faultsName)
	fmt.Printf("wire: %d bytes on wire, %d effective\n", res.BytesOnWire, res.BytesEffective)
	fmt.Printf("%-8s %9s %9s %9s %12s %12s %12s\n",
		"tenant", "admitted", "rejected", "requests", "p50", "p95", "p99")
	for _, t := range res.Tenants {
		fmt.Printf("%-8s %9d %9d %9d %12v %12v %12v\n",
			t.Name, t.Admitted, t.RejectedTotal(), t.Requests, t.P50, t.P95, t.P99)
		reasons := make([]string, 0, len(t.Rejected))
		for reason := range t.Rejected {
			reasons = append(reasons, reason)
		}
		sort.Strings(reasons)
		for _, reason := range reasons {
			if n := t.Rejected[reason]; n > 0 {
				fmt.Printf("%-8s   rejected[%s] = %d\n", "", reason, n)
			}
		}
	}

	if *traceOut != "" {
		if err := writeFile(*traceOut, tr.WriteTrace); err != nil {
			fmt.Fprintln(os.Stderr, "mira-serve: trace:", err)
			os.Exit(1)
		}
	}
	if *metricsOut != "" {
		if err := writeFile(*metricsOut, tr.Registry().WriteJSON); err != nil {
			fmt.Fprintln(os.Stderr, "mira-serve: metrics:", err)
			os.Exit(1)
		}
	}
}
