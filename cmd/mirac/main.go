// Command mirac is the Mira "compiler" driver: it runs the full
// profile-analyze-configure-compile pipeline on one of the bundled
// applications and prints what the paper's Figs. 13-14 illustrate — the
// analysis report, the derived cache-section configuration, and the
// transformed IR with rmem/native operations, prefetches, eviction hints,
// and releases.
//
// Usage:
//
//	mirac -app graph -mem 0.25
//	mirac -app graph -mem 0.25 -ir     # also dump before/after IR
package main

import (
	"flag"
	"fmt"
	"os"

	"mira/internal/apps/dataframe"
	"mira/internal/apps/gpt2"
	"mira/internal/apps/graphtraverse"
	"mira/internal/apps/mcf"
	"mira/internal/ir"
	"mira/internal/planner"
	"mira/internal/workload"
)

func buildWorkload(app string) (workload.Workload, error) {
	switch app {
	case "graph":
		return graphtraverse.New(graphtraverse.Config{}), nil
	case "mcf":
		return mcf.New(mcf.Config{}), nil
	case "dataframe":
		return dataframe.New(dataframe.Config{}), nil
	case "gpt2":
		return gpt2.New(gpt2.Config{}), nil
	default:
		return nil, fmt.Errorf("unknown app %q (graph, mcf, dataframe, gpt2)", app)
	}
}

func main() {
	app := flag.String("app", "graph", "workload: graph, mcf, dataframe, gpt2")
	mem := flag.Float64("mem", 0.25, "local memory fraction")
	iters := flag.Int("iters", 3, "max profiling-optimization iterations")
	dumpIR := flag.Bool("ir", false, "dump the IR before and after compilation")
	flag.Parse()

	w, err := buildWorkload(*app)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mirac: %v\n", err)
		os.Exit(2)
	}
	budget := int64(float64(w.FullMemoryBytes()) * *mem)
	res, err := planner.Plan(w, planner.Options{LocalBudget: budget, MaxIterations: *iters})
	if err != nil {
		fmt.Fprintf(os.Stderr, "mirac: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("== %s at %.0f%% local memory (%d bytes) ==\n\n", *app, *mem*100, budget)
	fmt.Printf("iterative optimization (swap baseline %v):\n", res.BaselineTime)
	for _, it := range res.Iterations {
		verdict := "rejected (rolled back)"
		if it.Accepted {
			verdict = "accepted"
		}
		fmt.Printf("  iteration %d: top %.0f%% funcs %v, %d objects -> %d sections, %v — %s\n",
			it.Index, it.FuncFrac*100, it.Funcs, len(it.Objects), it.NumSecs, it.Time, verdict)
		if len(it.Offloaded) > 0 {
			fmt.Printf("    offloaded to far node: %v\n", it.Offloaded)
		}
	}
	fmt.Printf("final: %v (%.2fx over swap)\n\n", res.FinalTime,
		float64(res.BaselineTime)/float64(res.FinalTime))

	if res.Report != nil {
		fmt.Println("== analysis report ==")
		fmt.Println(res.Report.String())
	}

	fmt.Println("== cache-section configuration ==")
	for i, s := range res.Config.Sections {
		comm := "one-sided"
		if s.TwoSided {
			comm = fmt.Sprintf("two-sided selective %v", s.SelectiveFields)
		}
		fmt.Printf("  section %d %q: %v line=%dB size=%dB comm=%s\n",
			i, s.Cache.Name, s.Cache.Structure, s.Cache.LineBytes, s.Cache.SizeBytes, comm)
	}
	fmt.Printf("  swap pool: %d bytes\n", res.Config.SwapPool)
	for name, pl := range res.Config.Placements {
		fmt.Printf("  object %-12s -> %v\n", name, pl.Kind)
	}

	if *dumpIR {
		fmt.Println("\n== original IR ==")
		fmt.Println(ir.Print(w.Program()))
		fmt.Println("== compiled IR ==")
		fmt.Println(ir.Print(res.Program))
	}
}
