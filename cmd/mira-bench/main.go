// Command mira-bench regenerates the paper's evaluation figures.
//
// Usage:
//
//	mira-bench -fig fig5            # one figure, full scale
//	mira-bench -fig all -scale quick
//	mira-bench -list
package main

import (
	"flag"
	"fmt"
	"os"

	"mira"
)

func main() {
	figID := flag.String("fig", "all", "figure id (fig5, fig6, ... or 'all')")
	scaleName := flag.String("scale", "full", "experiment scale: quick or full")
	list := flag.Bool("list", false, "list available figures and exit")
	flag.Parse()

	if *list {
		for _, id := range mira.FigureIDs() {
			fmt.Println(id)
		}
		return
	}

	scale := mira.FigureFull
	switch *scaleName {
	case "full":
	case "quick":
		scale = mira.FigureQuick
	default:
		fmt.Fprintf(os.Stderr, "mira-bench: unknown scale %q (quick or full)\n", *scaleName)
		os.Exit(2)
	}

	ids := []string{*figID}
	if *figID == "all" {
		ids = mira.FigureIDs()
	}
	for _, id := range ids {
		f, err := mira.GenerateFigure(id, scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mira-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(f.Render())
	}
}
