// Command mira-run executes one of the paper's applications on one
// far-memory system at a chosen local-memory fraction and reports the
// simulated execution time (and verification result).
//
// Usage:
//
//	mira-run -app graph -system mira -mem 0.25
//	mira-run -app mcf -system fastswap -mem 0.5
//	mira-run -app graph -system fastswap -mem 0.25 -faults crash
//	mira-run -app graph -system fastswap -mem 0.25 -nodes 4 -replicas 2
//	mira-run -app gpt2 -system mira -mem 1.0 -threads 4
//
// With -threads N, a fixed read-only batch is divided across N simulated
// threads interleaved on the deterministic virtual-time scheduler (§4.6,
// Fig. 24). The default shares one conservative section set across threads
// (the paper's Mira-unopt); -private-sections gives each thread its own
// budget/N sections. Identical invocations produce byte-identical -trace
// output.
//
// With -faults, the run first executes fault-free to measure its length,
// then re-executes under the named fault schedule (crash/partition windows
// scaled to land mid-run) and reports the resilience counters.
//
// With -nodes, far memory is sharded across N far nodes behind a
// replicated pool; per-node read/write/failover counters are reported.
// Combining -nodes with -faults injects the schedule into one node's fault
// domain: with -replicas 2 even crash-wipe recovers via replica failover.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"mira"
)

// writeFile streams write's output into path, creating or truncating it.
func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func buildWorkload(app string) (mira.Workload, error) {
	switch app {
	case "graph":
		return mira.NewGraphWorkload(mira.GraphConfig{}), nil
	case "mcf":
		return mira.NewMCFWorkload(mira.MCFConfig{}), nil
	case "dataframe":
		return mira.NewDataFrameWorkload(mira.DataFrameConfig{}), nil
	case "gpt2":
		return mira.NewGPT2Workload(mira.GPT2Config{}), nil
	case "arraysum":
		return mira.NewArraySumWorkload(mira.ArraySumConfig{}), nil
	case "seqscan":
		return mira.NewSeqScanWorkload(mira.SeqScanConfig{}), nil
	case "stridescan":
		return mira.NewStrideScanWorkload(mira.StrideScanConfig{}), nil
	case "distagg":
		return mira.NewDistAggWorkload(mira.DistAggConfig{}), nil
	case "distfilter":
		return mira.NewDistAggWorkload(mira.DistAggConfig{Mode: "filter"}), nil
	default:
		return nil, fmt.Errorf("unknown app %q (graph, mcf, dataframe, gpt2, arraysum, seqscan, stridescan, distagg, distfilter)", app)
	}
}

// runMultithreaded drives the Fig. 24 read-only scaling experiment from
// the command line: a fixed batch of executions divided across interleaved
// simulated threads. Two runs with identical flags produce byte-identical
// traces — the interleaving is fully determined by (virtual time, tid).
func runMultithreaded(w mira.Workload, budget int64, app, system string, mem float64,
	threads int, privateSections bool, traceOut, metricsOut string) {
	var mode mira.MTMode
	switch system {
	case "mira":
		mode = mira.MTMiraShared
		if privateSections {
			mode = mira.MTMiraPrivate
		}
	case "fastswap":
		mode = mira.MTFastSwapShared
	default:
		fmt.Fprintf(os.Stderr, "mira-run: system %q has no multithreaded driver (mira, fastswap)\n", system)
		os.Exit(2)
	}
	var tracer *mira.Tracer
	if traceOut != "" || metricsOut != "" {
		tracer = mira.NewTracer()
	}
	res, err := mira.ReadOnlyScalingTraced(mode, w, budget, threads, tracer)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mira-run: %v\n", err)
		os.Exit(1)
	}
	if traceOut != "" {
		if err := writeFile(traceOut, tracer.WriteTrace); err != nil {
			fmt.Fprintf(os.Stderr, "mira-run: trace: %v\n", err)
			os.Exit(1)
		}
	}
	if metricsOut != "" {
		if err := writeFile(metricsOut, tracer.Registry().WriteJSON); err != nil {
			fmt.Fprintf(os.Stderr, "mira-run: metrics: %v\n", err)
			os.Exit(1)
		}
	}
	fmt.Printf("%s on %s (%s) with %d threads at %.0f%% local memory (%d bytes): %v fork-join\n",
		app, system, res.Mode, threads, mem*100, budget, res.Time)
	for i, t := range res.PerThread {
		fmt.Printf("  thread %d: %v\n", i, t)
	}
}

func main() {
	app := flag.String("app", "graph", "workload: graph, mcf, dataframe, gpt2, arraysum, seqscan, stridescan, distagg, distfilter")
	system := flag.String("system", "mira", "system: native, mira, mira-swap, fastswap, leap, aifm")
	mem := flag.Float64("mem", 0.5, "local memory as a fraction of the workload's footprint")
	verify := flag.Bool("verify", true, "verify workload output against the native oracle")
	batch := flag.Bool("batch", true, "vectored remote I/O: doorbell-batched prefetch and async write-back (false = PR 2 data path)")
	compress := flag.String("compress", "off", "wire compression for mira/mira-swap: off, on (every section + swap), auto (planner measures per section)")
	offloadMode := flag.String("offload", "off", "scatter-gather offload for mira: off, on (offload every scatter-safe function), auto (planner races offload vs fetch per function, keeping only wins)")
	offloadChunk := flag.Int("offload-chunk", 0, "offload engine streaming chunk in bytes for operand/result/commit transfers (0 = default)")
	plane := flag.String("plane", "", "mira data-plane mode: page (swap only), line (cache sections only), hybrid (planner races both + a per-object split); empty = classic planning")
	tierDRAM := flag.Int64("tier-dram", 0, "with -nodes: per-node DRAM budget in bytes; the rest of each node's data lives on a simulated SSD tier (0 = no tier)")
	wbq := flag.Int("wbq", 0, "async write-back queue bound in lines (0 = default, negative = disabled)")
	aifmChunk := flag.Int64("aifm-chunk", 0, "AIFM remotable-object granularity in bytes (0 = per-element array library)")
	aifmMeta := flag.Int64("aifm-meta", 0, "AIFM per-object metadata bytes (0 = default)")
	faultsName := flag.String("faults", "", fmt.Sprintf("named fault schedule %v; empty = fault-free (crash-wipe loses data: run it with -verify=false)", mira.FaultScheduleNames()))
	faultSeed := flag.Uint64("fault-seed", 1, "seed for the fault injector's probabilistic draws")
	nodes := flag.Int("nodes", 0, "shard far memory across this many far nodes (0 = classic single node)")
	replicas := flag.Int("replicas", 1, "replication factor R in cluster mode: every range lives on R nodes")
	stripe := flag.Int64("stripe", 64<<10, "cluster placement stripe in bytes")
	faultNode := flag.Int("fault-node", 0, "which cluster node receives the -faults schedule")
	traceOut := flag.String("trace", "", "write a Chrome trace-event JSON of the run to this file (load in chrome://tracing or Perfetto)")
	metricsOut := flag.String("metrics", "", "write the run's metrics registry as JSON to this file")
	prefetchPol := flag.String("prefetch", "", fmt.Sprintf("zoo prefetch policy %v replacing the system's stock prefetching (systems: mira = line plane, mira-swap/fastswap/leap = page plane); empty = stock", mira.PrefetchPolicyNames()))
	prefetchWin := flag.Int("prefetch-window", 0, "programmed prefetch in-flight window in units (0 = default, clamped to half the plane's capacity)")
	threads := flag.Int("threads", 1, "interleave this many simulated threads on the deterministic scheduler, dividing a fixed read-only batch (systems: mira, fastswap)")
	privateSections := flag.Bool("private-sections", false, "with -threads: give each thread private cache sections (default: one shared conservative section set, the paper's Mira-unopt)")
	flag.Parse()

	w, err := buildWorkload(*app)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mira-run: %v\n", err)
		os.Exit(2)
	}
	budget := int64(float64(w.FullMemoryBytes()) * *mem)
	rf := runFlags{
		System:         *system,
		Plane:          *plane,
		Compress:       *compress,
		Offload:        *offloadMode,
		OffloadChunk:   *offloadChunk,
		Prefetch:       *prefetchPol,
		PrefetchWindow: *prefetchWin,
		Threads:        *threads,
		Nodes:          *nodes,
		TierDRAM:       *tierDRAM,
		Faults:         *faultsName,
		Set:            map[string]bool{},
	}
	flag.Visit(func(f *flag.Flag) { rf.Set[f.Name] = true })
	if err := validateFlags(rf); err != nil {
		fmt.Fprintf(os.Stderr, "mira-run: %v\n", err)
		os.Exit(2)
	}
	// An explicit -threads 1 still runs the multithreaded driver (a
	// one-thread group on the scheduler), so thread sweeps compare one
	// driver with itself; without the flag, 1 means the classic run path.
	if rf.threadsActive() {
		runMultithreaded(w, budget, *app, *system, *mem, *threads, *privateSections,
			*traceOut, *metricsOut)
		return
	}
	opts := mira.RunOptions{Budget: budget, Verify: *verify, Plane: *plane}
	if *prefetchPol != "" {
		opts.Prefetch = &mira.PrefetchSpec{Policy: *prefetchPol, Window: *prefetchWin}
	}
	opts.NoBatching = !*batch
	opts.WritebackQueueLines = *wbq
	opts.AIFM.ChunkBytes = *aifmChunk
	opts.AIFM.MetaPerObject = *aifmMeta
	opts.Compress = *compress
	opts.Offload = *offloadMode
	opts.OffloadChunk = *offloadChunk
	if *nodes > 0 {
		opts.Nodes = *nodes
		opts.Replicas = *replicas
		opts.FaultNode = *faultNode
		if *stripe > 0 {
			opts.StripeBytes = uint64(*stripe)
		}
		if *tierDRAM > 0 {
			opts.Tier = &mira.TierConfig{DRAMBytes: uint64(*tierDRAM)}
		}
	}
	if *faultsName != "" && *faultsName != "none" {
		// Dry run fault-free to learn the run length, so the schedule's
		// crash/partition windows land mid-run.
		dry, err := mira.Run(mira.System(*system), w, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mira-run: fault-free dry run: %v\n", err)
			os.Exit(1)
		}
		fc, err := mira.NamedFaultSchedule(*faultsName, *faultSeed, dry.Time)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mira-run: %v\n", err)
			os.Exit(2)
		}
		opts.Faults = &fc
		if *nodes > 0 {
			// Cluster members fail fast; the pool's replicas are the retry.
			pol := mira.ClusterResiliencePolicy()
			opts.Resilience = &pol
		} else {
			pol := mira.RecoveryResiliencePolicy(dry.Time)
			opts.Resilience = &pol
		}
	}
	var tracer *mira.Tracer
	if *traceOut != "" || *metricsOut != "" {
		// Attach the tracer to the final run only: the -faults dry run above
		// and the planner's internal sampling runs stay uninstrumented.
		tracer = mira.NewTracer()
		opts.Trace = tracer
	}
	res, err := mira.Run(mira.System(*system), w, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mira-run: %v\n", err)
		os.Exit(1)
	}
	if *traceOut != "" {
		if err := writeFile(*traceOut, tracer.WriteTrace); err != nil {
			fmt.Fprintf(os.Stderr, "mira-run: trace: %v\n", err)
			os.Exit(1)
		}
	}
	if *metricsOut != "" {
		if err := writeFile(*metricsOut, tracer.Registry().WriteJSON); err != nil {
			fmt.Fprintf(os.Stderr, "mira-run: metrics: %v\n", err)
			os.Exit(1)
		}
	}
	if res.Failed {
		fmt.Printf("%s on %s at %.0f%% memory: FAILED TO EXECUTE (%s)\n",
			*app, *system, *mem*100, res.FailReason)
		return
	}
	fmt.Printf("%s on %s at %.0f%% local memory (%d bytes): %v\n",
		*app, *system, *mem*100, budget, res.Time)
	if res.Messages > 0 {
		fmt.Printf("  transport: %d messages, %d bytes moved\n", res.Messages, res.BytesMoved)
	}
	if *compress != "off" && res.BytesEffective > 0 {
		saved := res.BytesEffective - res.BytesOnWire
		fmt.Printf("  wire (compress %s): %d bytes on wire, %d effective (codec saved %d, %.1f%%)\n",
			*compress, res.BytesOnWire, res.BytesEffective, saved,
			100*float64(saved)/float64(res.BytesEffective))
	}
	if res.PlanResult != nil {
		fmt.Printf("  planner: swap baseline %v -> optimized %v across %d iterations, %d sections\n",
			res.PlanResult.BaselineTime, res.PlanResult.FinalTime,
			len(res.PlanResult.Iterations), len(res.PlanResult.Config.Sections))
		if off := res.PlanResult.Offloaded; len(off) > 0 {
			fmt.Printf("  offloaded (%s):", *offloadMode)
			for _, name := range off {
				fmt.Printf(" %s", name)
			}
			fmt.Println()
		}
		if planes := res.PlanResult.Planes; len(planes) > 0 {
			names := make([]string, 0, len(planes))
			for name := range planes {
				names = append(names, name)
			}
			sort.Strings(names)
			fmt.Printf("  planes (%s):", *plane)
			for _, name := range names {
				fmt.Printf(" %s=%s", name, planes[name])
			}
			fmt.Println()
		}
	}
	if opts.Prefetch != nil {
		pf := res.Prefetch
		fmt.Printf("  prefetch %s: %d issued, %d useful (%d late), %d useless, %d dropped; accuracy %.2f, coverage %.2f of %d demand misses\n",
			opts.Prefetch.Policy, pf.Issued, pf.Useful, pf.Late, pf.Useless, pf.Dropped,
			pf.Accuracy(), pf.Coverage(res.DemandMisses), res.DemandMisses)
	}
	if n := res.Net; opts.Faults != nil {
		fmt.Printf("  faults (%s, seed %d): %d retries, %d timeouts, %d corruptions, %d breaker trips, %d queued writebacks, %d degraded reads, %v degraded, %v backoff\n",
			*faultsName, *faultSeed, n.Retries, n.Timeouts, n.Corruptions, n.BreakerTrips,
			n.QueuedWritebacks, n.DegradedReads, n.DegradedTime, n.BackoffTime)
	}
	if len(res.Cluster) > 0 {
		fmt.Printf("  cluster: %d nodes, R=%d, stripe %d bytes\n", *nodes, *replicas, *stripe)
		for _, ns := range res.Cluster {
			fmt.Printf("    node %d: %d reads (%d B), %d writes (%d B), %d failovers, %d repairs, %d resyncs (%d B), %d/%d B allocated",
				ns.Node, ns.Reads, ns.ReadBytes, ns.Writes, ns.WriteBytes,
				ns.Failovers, ns.Repairs, ns.Resyncs, ns.ResyncBytes,
				ns.AllocatedBytes, ns.CapacityBytes)
			if ns.Faults.Wipes > 0 || ns.Faults.DownRefusals > 0 {
				fmt.Printf(", %d wipes, %d down refusals", ns.Faults.Wipes, ns.Faults.DownRefusals)
			}
			if t := ns.Tier; t.Hits+t.Misses+t.Demotions > 0 {
				fmt.Printf(", tier: %d hits, %d misses, %d demotions, %d B DRAM / %d B flash",
					t.Hits, t.Misses, t.Demotions, t.ResidentBytes, t.SSDBytes)
			}
			fmt.Println()
		}
	}
	if *verify {
		fmt.Println("  output verified against the native oracle")
	}
}
