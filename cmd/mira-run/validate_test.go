package main

import (
	"strings"
	"testing"
)

func flags(mutate func(*runFlags)) runFlags {
	f := runFlags{System: "mira", Compress: "off", Threads: 1, Set: map[string]bool{}}
	if mutate != nil {
		mutate(&f)
	}
	return f
}

func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*runFlags)
		wantErr string // "" = must pass
	}{
		{"defaults", nil, ""},
		{"bad-compress", func(f *runFlags) { f.Compress = "gzip" }, "-compress"},
		{"bad-plane", func(f *runFlags) { f.Plane = "both" }, "-plane"},
		{"plane-hybrid-ok", func(f *runFlags) { f.Plane = "hybrid" }, ""},
		{"plane-page-ok", func(f *runFlags) { f.Plane = "page" }, ""},
		{"plane-wrong-system", func(f *runFlags) { f.Plane = "hybrid"; f.System = "fastswap" }, "-plane"},
		{"plane-with-prefetch", func(f *runFlags) { f.Plane = "line"; f.Prefetch = "leap" }, "mutually exclusive"},
		{"plane-with-threads", func(f *runFlags) { f.Plane = "hybrid"; f.Threads = 4 }, "-threads"},
		{"plane-with-threads-1", func(f *runFlags) { f.Plane = "hybrid"; f.Set["threads"] = true }, "-threads"},
		{"plane-with-nodes", func(f *runFlags) { f.Plane = "hybrid"; f.Nodes = 4 }, "single-node"},
		{"window-without-prefetch", func(f *runFlags) { f.PrefetchWindow = 32; f.Set["prefetch-window"] = true }, "-prefetch"},
		{"window-with-prefetch-ok", func(f *runFlags) {
			f.Prefetch = "programmed"
			f.PrefetchWindow = 32
			f.Set["prefetch-window"] = true
		}, ""},
		{"window-default-ok", func(f *runFlags) { f.PrefetchWindow = 0 }, ""},
		{"prefetch-with-threads", func(f *runFlags) { f.Prefetch = "leap"; f.Threads = 2 }, "-threads"},
		{"threads-with-faults", func(f *runFlags) { f.Threads = 4; f.Faults = "crash" }, "-faults"},
		{"threads-faults-none-ok", func(f *runFlags) { f.Threads = 4; f.Faults = "none" }, ""},
		{"threads-with-nodes", func(f *runFlags) { f.Threads = 4; f.Nodes = 2 }, "-nodes"},
		{"tier-without-nodes", func(f *runFlags) { f.TierDRAM = 1 << 20 }, "-nodes"},
		{"tier-with-nodes-ok", func(f *runFlags) { f.TierDRAM = 1 << 20; f.Nodes = 2 }, ""},
		{"replicas-without-nodes", func(f *runFlags) { f.Set["replicas"] = true }, "-nodes"},
		{"stripe-without-nodes", func(f *runFlags) { f.Set["stripe"] = true }, "-nodes"},
		{"faultnode-without-nodes", func(f *runFlags) { f.Set["fault-node"] = true }, "-nodes"},
		{"replicas-with-nodes-ok", func(f *runFlags) { f.Set["replicas"] = true; f.Nodes = 3 }, ""},
		{"bad-offload", func(f *runFlags) { f.Offload = "maybe" }, "-offload"},
		{"offload-on-ok", func(f *runFlags) { f.Offload = "on"; f.Nodes = 4 }, ""},
		{"offload-auto-ok", func(f *runFlags) { f.Offload = "auto" }, ""},
		{"offload-off-ok", func(f *runFlags) { f.Offload = "off" }, ""},
		{"offload-wrong-system", func(f *runFlags) { f.Offload = "on"; f.System = "fastswap" }, "-system mira"},
		{"offload-off-any-system-ok", func(f *runFlags) { f.Offload = "off"; f.System = "leap" }, ""},
		{"offload-with-threads", func(f *runFlags) { f.Offload = "on"; f.Threads = 4 }, "-threads"},
		{"offload-with-plane", func(f *runFlags) { f.Offload = "auto"; f.Plane = "hybrid" }, "-plane"},
		{"chunk-without-offload", func(f *runFlags) { f.OffloadChunk = 4096; f.Set["offload-chunk"] = true }, "-offload"},
		{"chunk-with-offload-off", func(f *runFlags) {
			f.Offload = "off"
			f.OffloadChunk = 4096
			f.Set["offload-chunk"] = true
		}, "-offload"},
		{"chunk-with-offload-ok", func(f *runFlags) {
			f.Offload = "on"
			f.OffloadChunk = 4096
			f.Set["offload-chunk"] = true
		}, ""},
	}
	for _, c := range cases {
		err := validateFlags(flags(c.mutate))
		if c.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error: %v", c.name, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("%s: invalid combination accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.wantErr)
		}
	}
}
