package main

import "fmt"

// runFlags collects the parsed flag values that constrain each other, plus
// the set of flag names the user passed explicitly (flag.Visit) — several
// combinations are only wrong when a flag was actually spelled out, not
// when it sits at its default.
type runFlags struct {
	System         string
	Plane          string
	Compress       string
	Offload        string
	OffloadChunk   int
	Prefetch       string
	PrefetchWindow int
	Threads        int
	Nodes          int
	TierDRAM       int64
	Faults         string
	Set            map[string]bool
}

func (f runFlags) set(name string) bool { return f.Set[name] }

// threadsActive mirrors main's dispatch: an explicit -threads 1 still runs
// the multithreaded driver, so it constrains like any other thread count.
func (f runFlags) threadsActive() bool { return f.Threads > 1 || f.set("threads") }

// validateFlags rejects contradictory flag combinations with one clear
// message each, before any simulation runs. Every rule here is also the
// documentation of what composes with what.
func validateFlags(f runFlags) error {
	switch f.Compress {
	case "", "off", "on", "auto":
	default:
		return fmt.Errorf("unknown -compress mode %q (off, on, auto)", f.Compress)
	}
	switch f.Plane {
	case "", "page", "line", "hybrid":
	default:
		return fmt.Errorf("unknown -plane mode %q (page, line, hybrid)", f.Plane)
	}
	if f.Plane != "" {
		if f.System != "mira" {
			return fmt.Errorf("-plane selects mira's data plane; system %q has only one (use -system mira)", f.System)
		}
		if f.Prefetch != "" {
			return fmt.Errorf("-plane and -prefetch are mutually exclusive: zoo policies pick their own plane")
		}
		if f.threadsActive() {
			return fmt.Errorf("-plane does not combine with -threads (the multithreaded driver plans its own sections)")
		}
		if f.Nodes > 0 {
			return fmt.Errorf("-plane uses the unified hybrid layout, which is single-node (drop -nodes)")
		}
	}
	switch f.Offload {
	case "", "off", "on", "auto":
	default:
		return fmt.Errorf("unknown -offload mode %q (off, on, auto)", f.Offload)
	}
	if f.Offload != "" && f.Offload != "off" {
		if f.System != "mira" {
			return fmt.Errorf("-offload ships compute through mira's planner; system %q cannot (use -system mira)", f.System)
		}
		if f.threadsActive() {
			return fmt.Errorf("-offload does not combine with -threads (the multithreaded driver runs a fixed batch, not the planner)")
		}
		if f.Plane != "" {
			return fmt.Errorf("-offload does not combine with -plane (plane modes are single-node; offload scatters across the cluster)")
		}
	}
	if f.set("offload-chunk") && (f.Offload == "" || f.Offload == "off") {
		return fmt.Errorf("-offload-chunk sizes the offload engine's streams; pass -offload on or -offload auto as well")
	}
	if f.set("prefetch-window") && f.Prefetch == "" {
		return fmt.Errorf("-prefetch-window tunes a zoo policy; pass -prefetch as well")
	}
	if f.Prefetch != "" && f.threadsActive() {
		return fmt.Errorf("-prefetch does not combine with -threads")
	}
	if f.threadsActive() {
		if f.Faults != "" && f.Faults != "none" {
			return fmt.Errorf("-threads cannot combine with -faults")
		}
		if f.Nodes > 0 {
			return fmt.Errorf("-threads cannot combine with -nodes")
		}
	}
	if f.Nodes <= 0 {
		if f.TierDRAM > 0 {
			return fmt.Errorf("-tier-dram requires -nodes (the SSD tier lives under each cluster node's DRAM)")
		}
		for _, name := range []string{"replicas", "stripe", "fault-node"} {
			if f.set(name) {
				return fmt.Errorf("-%s only applies in cluster mode; pass -nodes as well", name)
			}
		}
	}
	return nil
}
