package farmem

import (
	"fmt"
	"sort"
)

// Allocator is the far-memory node's low-level allocator (§5.1: "the remote
// allocator works like a low-level systems allocator"). It hands out ranges
// of the node's virtual address space using first-fit with free-list
// coalescing. Addresses it returns are usable directly by one-sided
// accesses.
//
// Allocator is not safe for concurrent use; Node serializes access.
type Allocator struct {
	base uint64 // first valid address (non-zero so that 0 stays "nil")
	size uint64 // total bytes managed
	free []span // sorted by addr, coalesced, non-overlapping
	used map[uint64]uint64
	// inUse tracks currently-allocated bytes for accounting.
	inUse uint64
}

type span struct {
	addr uint64
	size uint64
}

// NewAllocator manages [base, base+size). base must be non-zero so that
// address 0 can represent "no object".
func NewAllocator(base, size uint64) *Allocator {
	if base == 0 {
		panic("farmem: allocator base must be non-zero")
	}
	return &Allocator{
		base: base,
		size: size,
		free: []span{{addr: base, size: size}},
		used: make(map[uint64]uint64),
	}
}

// Alloc reserves size bytes and returns the address of the range.
func (a *Allocator) Alloc(size uint64) (uint64, error) {
	if size == 0 {
		return 0, fmt.Errorf("%w: zero-size allocation", ErrBadRequest)
	}
	// Align to 8 bytes, like any systems allocator would.
	size = (size + 7) &^ 7
	for i, s := range a.free {
		if s.size >= size {
			addr := s.addr
			if s.size == size {
				a.free = append(a.free[:i], a.free[i+1:]...)
			} else {
				a.free[i] = span{addr: s.addr + size, size: s.size - size}
			}
			a.used[addr] = size
			a.inUse += size
			return addr, nil
		}
	}
	return 0, fmt.Errorf("%w: allocating %d bytes (in use %d of %d)", ErrOutOfMemory, size, a.inUse, a.size)
}

// Free releases a previously-allocated range.
func (a *Allocator) Free(addr uint64) error {
	size, ok := a.used[addr]
	if !ok {
		return fmt.Errorf("%w: free of unallocated address %#x", ErrUnmapped, addr)
	}
	delete(a.used, addr)
	a.inUse -= size
	a.insertFree(span{addr: addr, size: size})
	return nil
}

// insertFree adds s back to the sorted free list and coalesces neighbours.
func (a *Allocator) insertFree(s span) {
	i := sort.Search(len(a.free), func(i int) bool { return a.free[i].addr > s.addr })
	a.free = append(a.free, span{})
	copy(a.free[i+1:], a.free[i:])
	a.free[i] = s
	// Coalesce with successor first, then predecessor.
	if i+1 < len(a.free) && a.free[i].addr+a.free[i].size == a.free[i+1].addr {
		a.free[i].size += a.free[i+1].size
		a.free = append(a.free[:i+1], a.free[i+2:]...)
	}
	if i > 0 && a.free[i-1].addr+a.free[i-1].size == a.free[i].addr {
		a.free[i-1].size += a.free[i].size
		a.free = append(a.free[:i], a.free[i+1:]...)
	}
}

// SizeOf reports the allocated size of addr, or 0 if addr is unallocated.
func (a *Allocator) SizeOf(addr uint64) uint64 { return a.used[addr] }

// InUse reports the currently allocated byte count.
func (a *Allocator) InUse() uint64 { return a.inUse }

// Contains reports whether [addr, addr+n) lies inside a single live
// allocation. Used by Node to police one-sided accesses the way an RDMA
// memory region registration would.
func (a *Allocator) Contains(addr uint64, n int) bool {
	if n < 0 {
		return false
	}
	// Walk allocations; allocation count is modest in our workloads
	// (objects, not elements), but keep a fast path for exact bases.
	if sz, ok := a.used[addr]; ok {
		return uint64(n) <= sz
	}
	for base, sz := range a.used {
		if addr >= base && addr+uint64(n) <= base+sz {
			return true
		}
	}
	return false
}

// FreeSpans returns a copy of the free list, for tests and debugging.
func (a *Allocator) FreeSpans() []struct{ Addr, Size uint64 } {
	out := make([]struct{ Addr, Size uint64 }, len(a.free))
	for i, s := range a.free {
		out[i] = struct{ Addr, Size uint64 }{s.addr, s.size}
	}
	return out
}
