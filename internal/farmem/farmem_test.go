package farmem

import (
	"bytes"
	"testing"
	"testing/quick"

	"mira/internal/sim"
)

func newTestNode() *Node {
	return NewNode(NodeConfig{Capacity: 1 << 20, CPUSlowdown: 3})
}

func TestAllocFreeRoundtrip(t *testing.T) {
	a := NewAllocator(4096, 1<<16)
	addr, err := a.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if addr < 4096 {
		t.Fatalf("allocation below base: %#x", addr)
	}
	if a.SizeOf(addr) != 104 { // rounded up to 8
		t.Fatalf("SizeOf = %d, want 104", a.SizeOf(addr))
	}
	if err := a.Free(addr); err != nil {
		t.Fatal(err)
	}
	if a.InUse() != 0 {
		t.Fatalf("InUse = %d after free", a.InUse())
	}
}

func TestAllocZeroFails(t *testing.T) {
	a := NewAllocator(4096, 1<<16)
	if _, err := a.Alloc(0); err == nil {
		t.Fatal("zero-size alloc succeeded")
	}
}

func TestDoubleFreeFails(t *testing.T) {
	a := NewAllocator(4096, 1<<16)
	addr, _ := a.Alloc(64)
	if err := a.Free(addr); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(addr); err == nil {
		t.Fatal("double free succeeded")
	}
}

func TestAllocExhaustion(t *testing.T) {
	a := NewAllocator(4096, 1024)
	if _, err := a.Alloc(2048); err == nil {
		t.Fatal("over-capacity alloc succeeded")
	}
	addr, err := a.Alloc(1024)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Alloc(8); err == nil {
		t.Fatal("alloc beyond exhausted pool succeeded")
	}
	if err := a.Free(addr); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Alloc(1024); err != nil {
		t.Fatalf("alloc after free failed: %v", err)
	}
}

func TestFreeCoalescing(t *testing.T) {
	a := NewAllocator(4096, 1<<16)
	addrs := make([]uint64, 8)
	for i := range addrs {
		var err error
		addrs[i], err = a.Alloc(64)
		if err != nil {
			t.Fatal(err)
		}
	}
	// Free in an interleaved order; the free list must coalesce back to
	// a single span.
	for _, i := range []int{1, 3, 5, 7, 0, 2, 4, 6} {
		if err := a.Free(addrs[i]); err != nil {
			t.Fatal(err)
		}
	}
	spans := a.FreeSpans()
	if len(spans) != 1 {
		t.Fatalf("free list has %d spans after freeing everything, want 1: %+v", len(spans), spans)
	}
	if spans[0].Addr != 4096 || spans[0].Size != 1<<16 {
		t.Fatalf("coalesced span = %+v, want {4096, %d}", spans[0], 1<<16)
	}
}

// Property: any sequence of allocations that all get freed restores the
// allocator to a single free span covering the whole arena.
func TestAllocatorConservationProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		const arena = 1 << 20
		a := NewAllocator(4096, arena)
		var live []uint64
		for _, s := range sizes {
			sz := uint64(s%4096) + 1
			addr, err := a.Alloc(sz)
			if err != nil {
				// Exhaustion is fine; skip.
				continue
			}
			live = append(live, addr)
		}
		for _, addr := range live {
			if err := a.Free(addr); err != nil {
				return false
			}
		}
		spans := a.FreeSpans()
		return len(spans) == 1 && spans[0].Size == arena && a.InUse() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestAllocationsDisjoint(t *testing.T) {
	a := NewAllocator(4096, 1<<16)
	type rng struct{ lo, hi uint64 }
	var got []rng
	for i := 0; i < 50; i++ {
		sz := uint64(8 + i*8)
		addr, err := a.Alloc(sz)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, rng{addr, addr + a.SizeOf(addr)})
	}
	for i := range got {
		for j := i + 1; j < len(got); j++ {
			if got[i].lo < got[j].hi && got[j].lo < got[i].hi {
				t.Fatalf("allocations %d and %d overlap: %+v %+v", i, j, got[i], got[j])
			}
		}
	}
}

func TestContains(t *testing.T) {
	a := NewAllocator(4096, 1<<16)
	addr, _ := a.Alloc(128)
	if !a.Contains(addr, 128) {
		t.Fatal("Contains rejected exact allocation")
	}
	if !a.Contains(addr+64, 64) {
		t.Fatal("Contains rejected interior range")
	}
	if a.Contains(addr, 4096) {
		t.Fatal("Contains accepted out-of-allocation range")
	}
	if a.Contains(addr, -1) {
		t.Fatal("Contains accepted negative length")
	}
}

func TestNodeReadWrite(t *testing.T) {
	n := newTestNode()
	addr, err := n.Alloc(256)
	if err != nil {
		t.Fatal(err)
	}
	want := bytes.Repeat([]byte{0xab}, 256)
	if err := n.Write(addr, want); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 256)
	if err := n.Read(addr, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("read back different bytes")
	}
	r, w, _ := n.Stats()
	if r != 256 || w != 256 {
		t.Fatalf("stats read=%d write=%d, want 256/256", r, w)
	}
}

func TestNodeOutOfRangeAccess(t *testing.T) {
	n := newTestNode()
	if err := n.Read(DefaultBase+n.Capacity(), make([]byte, 8)); err == nil {
		t.Fatal("read past slab succeeded")
	}
	if err := n.Write(1, []byte{1}); err == nil {
		t.Fatal("write below base succeeded")
	}
}

func TestGatherScatter(t *testing.T) {
	n := newTestNode()
	a1, _ := n.Alloc(64)
	a2, _ := n.Alloc(64)
	if err := n.Scatter([]uint64{a1, a2}, [][]byte{{1, 2, 3}, {4, 5}}); err != nil {
		t.Fatal(err)
	}
	out, err := n.Gather([]uint64{a1, a2, a1 + 1}, []int{3, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, []byte{1, 2, 3, 4, 5, 2}) {
		t.Fatalf("gather = %v", out)
	}
}

func TestGatherMismatchedArgs(t *testing.T) {
	n := newTestNode()
	if _, err := n.Gather([]uint64{1}, []int{1, 2}); err == nil {
		t.Fatal("mismatched gather args accepted")
	}
	if err := n.Scatter([]uint64{1, 2}, [][]byte{{1}}); err == nil {
		t.Fatal("mismatched scatter args accepted")
	}
}

func TestMemSliceAliases(t *testing.T) {
	n := newTestNode()
	addr, _ := n.Alloc(16)
	sl, err := n.Mem().Slice(addr, 16)
	if err != nil {
		t.Fatal(err)
	}
	sl[0] = 42
	got := make([]byte, 1)
	if err := n.Read(addr, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 42 {
		t.Fatal("Slice write not visible through Read")
	}
}

func TestRPCCall(t *testing.T) {
	n := newTestNode()
	addr, _ := n.Alloc(8)
	_ = n.Write(addr, []byte{10, 0, 0, 0, 0, 0, 0, 0})
	n.Register("double", func(mem *Mem, args []byte) ([]byte, sim.Duration, error) {
		buf, err := mem.Slice(addr, 1)
		if err != nil {
			return nil, 0, err
		}
		buf[0] *= 2
		return []byte{buf[0]}, 100 * sim.Nanosecond, nil
	})
	res, farCPU, err := n.Call("double", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != 20 {
		t.Fatalf("rpc result %d, want 20", res[0])
	}
	if farCPU != 300*sim.Nanosecond {
		t.Fatalf("far CPU time %v, want 300ns (3x slowdown)", farCPU)
	}
	_, _, calls := n.Stats()
	if calls != 1 {
		t.Fatalf("rpcCalls = %d, want 1", calls)
	}
}

func TestRPCUnknownProc(t *testing.T) {
	n := newTestNode()
	if _, _, err := n.Call("nope", nil); err == nil {
		t.Fatal("unknown procedure call succeeded")
	}
}

func TestNodeDefaults(t *testing.T) {
	n := NewNode(NodeConfig{})
	if n.Capacity() != 64<<30 {
		t.Fatalf("default capacity %d, want 64GiB", n.Capacity())
	}
}

func TestFreeReleasesAndInvalidates(t *testing.T) {
	n := NewNode(NodeConfig{Capacity: 1 << 20, CPUSlowdown: 1})
	a, err := n.Alloc(4096)
	if err != nil {
		t.Fatal(err)
	}
	if got := n.AllocatedBytes(); got < 4096 {
		t.Fatalf("allocated %d, want >= 4096", got)
	}
	if err := n.Write(a, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := n.Free(a); err != nil {
		t.Fatal(err)
	}
	if got := n.AllocatedBytes(); got != 0 {
		t.Fatalf("allocated %d after free, want 0", got)
	}
	// The freed region no longer backs reads.
	if err := n.Read(a, make([]byte, 3)); err == nil {
		t.Fatal("read from freed region accepted")
	}
	// Double free is rejected.
	if err := n.Free(a); err == nil {
		t.Fatal("double free accepted")
	}
}

func TestFreeMiddleRegionKeepsNeighbors(t *testing.T) {
	n := NewNode(NodeConfig{Capacity: 1 << 20, CPUSlowdown: 1})
	var addrs []uint64
	for i := 0; i < 3; i++ {
		a, err := n.Alloc(256)
		if err != nil {
			t.Fatal(err)
		}
		if err := n.Write(a, []byte{byte(i + 1)}); err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, a)
	}
	if err := n.Free(addrs[1]); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	if err := n.Read(addrs[0], buf); err != nil || buf[0] != 1 {
		t.Fatalf("left neighbor damaged: %v %v", buf, err)
	}
	if err := n.Read(addrs[2], buf); err != nil || buf[0] != 3 {
		t.Fatalf("right neighbor damaged: %v %v", buf, err)
	}
	if err := n.Read(addrs[1], buf); err == nil {
		t.Fatal("freed middle region still readable")
	}
}

func TestCPUSlowdownAccessor(t *testing.T) {
	n := NewNode(NodeConfig{Capacity: 1 << 16, CPUSlowdown: 3})
	if got := n.CPUSlowdown(); got != 3 {
		t.Fatalf("slowdown %v", got)
	}
	// Default config carries the paper's 3x-slower far CPU.
	d := NewNode(DefaultNodeConfig())
	if d.CPUSlowdown() <= 1 {
		t.Fatalf("default far CPU not slower: %v", d.CPUSlowdown())
	}
}
