package farmem

import "errors"

// Sentinel errors for every way the far node can refuse a request. They are
// all *permanent* failures: the node is reachable and answering, but the
// request itself is wrong, so retrying it verbatim can never succeed. The
// transport's retry policy classifies errors with errors.Is against these
// (transient failures — injected I/O errors, crashes, partitions — carry a
// Transient() marker instead; see internal/faults).
var (
	// ErrUnmapped reports an access outside any live allocation — the
	// far-memory analogue of a segfault (an RDMA access outside a
	// registered memory region).
	ErrUnmapped = errors.New("farmem: address not mapped")
	// ErrOutOfMemory reports remote-allocator exhaustion.
	ErrOutOfMemory = errors.New("farmem: out of far memory")
	// ErrUnknownProc reports an RPC to a procedure that was never
	// registered.
	ErrUnknownProc = errors.New("farmem: unknown procedure")
	// ErrBadRequest reports a structurally malformed request (negative
	// length, mismatched scatter/gather arity, zero-size allocation).
	ErrBadRequest = errors.New("farmem: malformed request")
)
