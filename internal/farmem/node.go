// Package farmem implements the far-memory node: a byte-addressed memory
// pool behind a remote allocator, served over the simulated interconnect by
// one-sided reads/writes and two-sided messages, plus an RPC executor for
// functions Mira offloads to the far node's (slower) CPU (§4.8, §5.1).
//
// The node stores real bytes — data that applications read through the Mira
// cache is actual application data, so correctness of the whole data path is
// testable independent of the timing model.
package farmem

import (
	"fmt"
	"sort"
	"sync"

	"mira/internal/sim"
)

// DefaultBase is the first far-memory virtual address. It is deliberately
// large and non-zero: far addresses must never collide with the remote
// pointer encoding's "section 0 = local" convention (§5.2).
const DefaultBase uint64 = 1 << 32

// NodeConfig configures the far-memory node.
type NodeConfig struct {
	// Capacity is the number of bytes of far memory.
	Capacity uint64
	// CPUSlowdown is how much slower the far node's CPU is than the
	// compute node's (the paper motivates offloading only
	// computation-light functions because far nodes carry low-power ARM
	// cores). 1.0 means equal speed.
	CPUSlowdown float64
}

// DefaultNodeConfig returns a 64 GB node with a 3x slower CPU.
func DefaultNodeConfig() NodeConfig {
	return NodeConfig{Capacity: 64 << 30, CPUSlowdown: 3.0}
}

// Proc is an offloaded procedure: it executes on the far node with direct
// access to far memory and returns its result bytes plus the compute time it
// consumed at compute-node speed (the node scales it by CPUSlowdown).
type Proc func(mem *Mem, args []byte) (result []byte, compute sim.Duration, err error)

// Node is the far-memory server.
type Node struct {
	mu    sync.Mutex
	cfg   NodeConfig
	mem   *Mem
	alloc *Allocator
	procs map[string]Proc

	// stats
	readBytes  int64
	writeBytes int64
	rpcCalls   int64
}

// NewNode creates a far-memory node.
func NewNode(cfg NodeConfig) *Node {
	if cfg.Capacity == 0 {
		cfg = DefaultNodeConfig()
	}
	if cfg.CPUSlowdown <= 0 {
		cfg.CPUSlowdown = 1
	}
	return &Node{
		cfg:   cfg,
		mem:   newMem(),
		alloc: NewAllocator(DefaultBase, cfg.Capacity),
		procs: make(map[string]Proc),
	}
}

// Mem is the node's raw memory. Physical backing is allocated lazily, one
// buffer per live allocation, so a 64 GB-capacity node costs only what its
// tenants actually allocate. Addresses within one allocation are contiguous,
// which is all the data path ever needs (a cache line, page, or offloaded
// object never spans allocations).
type Mem struct {
	regions []memRegion // sorted by base, disjoint
}

type memRegion struct {
	base uint64
	data []byte
}

func newMem() *Mem { return &Mem{} }

// addRegion registers physical backing for a new allocation.
func (m *Mem) addRegion(base uint64, size uint64) {
	i := sort.Search(len(m.regions), func(i int) bool { return m.regions[i].base > base })
	m.regions = append(m.regions, memRegion{})
	copy(m.regions[i+1:], m.regions[i:])
	m.regions[i] = memRegion{base: base, data: make([]byte, size)}
}

// removeRegion drops the backing of a freed allocation.
func (m *Mem) removeRegion(base uint64) {
	i := sort.Search(len(m.regions), func(i int) bool { return m.regions[i].base >= base })
	if i < len(m.regions) && m.regions[i].base == base {
		m.regions = append(m.regions[:i], m.regions[i+1:]...)
	}
}

// find locates the region containing [addr, addr+n).
func (m *Mem) find(addr uint64, n int) (*memRegion, error) {
	if n < 0 {
		return nil, fmt.Errorf("%w: negative length %d", ErrBadRequest, n)
	}
	i := sort.Search(len(m.regions), func(i int) bool { return m.regions[i].base > addr })
	if i == 0 {
		return nil, fmt.Errorf("%w: access [%#x,+%d) hits no allocation", ErrUnmapped, addr, n)
	}
	r := &m.regions[i-1]
	if addr+uint64(n) > r.base+uint64(len(r.data)) {
		return nil, fmt.Errorf("%w: access [%#x,+%d) overruns allocation [%#x,+%d)",
			ErrUnmapped, addr, n, r.base, len(r.data))
	}
	return r, nil
}

// ReadAt copies len(buf) bytes at addr into buf.
func (m *Mem) ReadAt(addr uint64, buf []byte) error {
	r, err := m.find(addr, len(buf))
	if err != nil {
		return err
	}
	copy(buf, r.data[addr-r.base:])
	return nil
}

// WriteAt copies buf into memory at addr.
func (m *Mem) WriteAt(addr uint64, buf []byte) error {
	r, err := m.find(addr, len(buf))
	if err != nil {
		return err
	}
	copy(r.data[addr-r.base:], buf)
	return nil
}

// Slice returns a window over far memory for in-place access by offloaded
// procedures. The window aliases the backing: writes are visible
// immediately.
func (m *Mem) Slice(addr uint64, n int) ([]byte, error) {
	r, err := m.find(addr, n)
	if err != nil {
		return nil, err
	}
	off := addr - r.base
	return r.data[off : off+uint64(n) : off+uint64(n)], nil
}

// Alloc performs a remote allocation and returns the far virtual address.
func (n *Node) Alloc(size uint64) (uint64, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	addr, err := n.alloc.Alloc(size)
	if err != nil {
		return 0, err
	}
	n.mem.addRegion(addr, n.alloc.SizeOf(addr))
	return addr, nil
}

// Free releases a remote allocation.
func (n *Node) Free(addr uint64) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if err := n.alloc.Free(addr); err != nil {
		return err
	}
	n.mem.removeRegion(addr)
	return nil
}

// AllocatedBytes reports bytes currently allocated at the far node.
func (n *Node) AllocatedBytes() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.alloc.InUse()
}

// Read services a one-sided read: it copies len(buf) bytes at addr into buf.
// The caller charges network time; the node only moves bytes.
func (n *Node) Read(addr uint64, buf []byte) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if err := n.mem.ReadAt(addr, buf); err != nil {
		return err
	}
	n.readBytes += int64(len(buf))
	return nil
}

// Write services a one-sided write.
func (n *Node) Write(addr uint64, buf []byte) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if err := n.mem.WriteAt(addr, buf); err != nil {
		return err
	}
	n.writeBytes += int64(len(buf))
	return nil
}

// Gather services a two-sided scatter-gather read: the far node assembles
// the requested pieces into one reply message (§4.5 batching, §4.7 partial
// structure transmission). Pieces are returned concatenated in order.
func (n *Node) Gather(addrs []uint64, sizes []int) ([]byte, error) {
	if len(addrs) != len(sizes) {
		return nil, fmt.Errorf("%w: gather with %d addrs but %d sizes", ErrBadRequest, len(addrs), len(sizes))
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	total := 0
	for _, s := range sizes {
		total += s
	}
	out := make([]byte, total)
	off := 0
	for i, a := range addrs {
		if err := n.mem.ReadAt(a, out[off:off+sizes[i]]); err != nil {
			return nil, err
		}
		off += sizes[i]
	}
	n.readBytes += int64(total)
	return out, nil
}

// Scatter services a two-sided scatter write: one message carrying several
// pieces that the far node copies to their destinations.
func (n *Node) Scatter(addrs []uint64, pieces [][]byte) error {
	if len(addrs) != len(pieces) {
		return fmt.Errorf("%w: scatter with %d addrs but %d pieces", ErrBadRequest, len(addrs), len(pieces))
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	for i, a := range addrs {
		if err := n.mem.WriteAt(a, pieces[i]); err != nil {
			return err
		}
		n.writeBytes += int64(len(pieces[i]))
	}
	return nil
}

// Register installs an offloadable procedure under name.
func (n *Node) Register(name string, p Proc) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.procs[name] = p
}

// Call executes a registered procedure on the far node's CPU and returns
// its result along with the far-CPU time consumed (already scaled by
// CPUSlowdown). Network time for args/results is the caller's to charge.
func (n *Node) Call(name string, args []byte) (result []byte, farCPU sim.Duration, err error) {
	n.mu.Lock()
	p, ok := n.procs[name]
	if !ok {
		n.mu.Unlock()
		return nil, 0, fmt.Errorf("%w: no procedure %q registered", ErrUnknownProc, name)
	}
	n.rpcCalls++
	mem := n.mem
	slow := n.cfg.CPUSlowdown
	n.mu.Unlock()

	res, compute, err := p(mem, args)
	if err != nil {
		return nil, 0, fmt.Errorf("farmem: procedure %q: %w", name, err)
	}
	return res, sim.Duration(float64(compute) * slow), nil
}

// CopyOut copies len(buf) bytes at addr into buf without counting toward
// the node's traffic stats. The capacity tier uses it to stage a demoted
// granule's bytes onto the flash side; it is a node-internal move, not
// wire traffic.
func (n *Node) CopyOut(addr uint64, buf []byte) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.mem.ReadAt(addr, buf)
}

// CopyIn is the stat-free converse of CopyOut: the capacity tier restores a
// promoted granule's flash copy into DRAM with it.
func (n *Node) CopyIn(addr uint64, buf []byte) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.mem.WriteAt(addr, buf)
}

// WipeMemory zeroes every allocated byte while keeping the allocations
// themselves. The fault injector uses it to model a far-node restart that
// lost its volatile memory contents (a crash without a durable or replicated
// backing store).
func (n *Node) WipeMemory() {
	n.mu.Lock()
	defer n.mu.Unlock()
	for i := range n.mem.regions {
		d := n.mem.regions[i].data
		for j := range d {
			d[j] = 0
		}
	}
}

// Stats reports cumulative node-side traffic and RPC counts.
func (n *Node) Stats() (readBytes, writeBytes, rpcCalls int64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.readBytes, n.writeBytes, n.rpcCalls
}

// Mem exposes the raw memory for in-process offloaded procedures and tests.
func (n *Node) Mem() *Mem { return n.mem }

// Capacity reports the configured far-memory size in bytes.
func (n *Node) Capacity() uint64 { return n.cfg.Capacity }

// CPUSlowdown reports how much slower the node's CPU is than the compute
// node's.
func (n *Node) CPUSlowdown() float64 { return n.cfg.CPUSlowdown }
