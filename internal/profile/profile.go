// Package profile implements Mira's coarse-grained run-time profiling
// (§4.1): per-function execution time and time spent inside the Mira
// runtime (cache lookups, misses, evictions), plus allocation-site sizes.
// The planner consumes these to pick which functions and objects to analyze
// ("highest 10% functions", "largest 10% objects") and to compute the
// paper's cache-performance-overhead metric.
package profile

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"mira/internal/sim"
)

// FuncRecord accumulates one function's profile.
type FuncRecord struct {
	Name string
	// Calls counts invocations.
	Calls int64
	// Total is inclusive virtual time across calls.
	Total sim.Duration
	// Runtime is the portion of Total spent inside the far-memory
	// runtime while this function's frame was innermost.
	Runtime sim.Duration
	// Accesses and Misses count far-memory accesses and cache-section /
	// swap misses attributed to the function (§4.1 per-function miss
	// rate).
	Accesses int64
	Misses   int64
}

// MissRate is the function's per-access miss fraction.
func (f *FuncRecord) MissRate() float64 {
	if f.Accesses == 0 {
		return 0
	}
	return float64(f.Misses) / float64(f.Accesses)
}

// Overhead is the paper's cache performance overhead: time in the Mira
// runtime over the remaining execution time. A function that spent ALL its
// time in the runtime has unbounded overhead — +Inf, so it ranks above
// every finite ratio (a raw nanosecond count here would let one degenerate
// record outrank real functions by units, not by ratio).
func (f *FuncRecord) Overhead() float64 {
	rest := f.Total - f.Runtime
	if rest <= 0 {
		if f.Runtime == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return float64(f.Runtime) / float64(rest)
}

// ObjectRecord tracks one allocation site.
type ObjectRecord struct {
	Name  string
	Bytes int64
}

// NetRecord aggregates the transport's resilience events over a profiled
// run: how hard the run had to fight the network to finish. The planner
// ignores it (planning is fault-free), but the harness and CLI report it
// alongside the function profile.
type NetRecord struct {
	Retries          int64
	Timeouts         int64
	Corruptions      int64
	BreakerTrips     int64
	QueuedWritebacks int64
	DegradedReads    int64
	DegradedTime     sim.Duration
	BackoffTime      sim.Duration
}

// Zero reports whether no resilience event was recorded.
func (n NetRecord) Zero() bool { return n == NetRecord{} }

// Collector gathers profile events from the executor. It is not safe for
// concurrent use; multithreaded simulations use one collector per simulated
// thread and merge.
type Collector struct {
	funcs   map[string]*FuncRecord
	objects map[string]*ObjectRecord
	net     NetRecord
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{
		funcs:   make(map[string]*FuncRecord),
		objects: make(map[string]*ObjectRecord),
	}
}

// FuncCall records one completed invocation.
func (c *Collector) FuncCall(name string, elapsed sim.Duration) {
	f := c.fn(name)
	f.Calls++
	f.Total += elapsed
}

// RuntimeTime attributes runtime-internal time to a function.
func (c *Collector) RuntimeTime(name string, d sim.Duration) {
	c.fn(name).Runtime += d
}

// AccessEvent attributes one far-memory access (and whether it missed) to
// a function.
func (c *Collector) AccessEvent(name string, missed bool) {
	f := c.fn(name)
	f.Accesses++
	if missed {
		f.Misses++
	}
}

// AllocSite records an allocation site's size.
func (c *Collector) AllocSite(obj string, bytes int64) {
	if o, ok := c.objects[obj]; ok {
		o.Bytes += bytes
		return
	}
	c.objects[obj] = &ObjectRecord{Name: obj, Bytes: bytes}
}

func (c *Collector) fn(name string) *FuncRecord {
	if f, ok := c.funcs[name]; ok {
		return f
	}
	f := &FuncRecord{Name: name}
	c.funcs[name] = f
	return f
}

// RecordNet accumulates transport resilience counters into the profile
// (callers snapshot rt.NetStats deltas per profiled region or per run).
func (c *Collector) RecordNet(n NetRecord) {
	c.net.Retries += n.Retries
	c.net.Timeouts += n.Timeouts
	c.net.Corruptions += n.Corruptions
	c.net.BreakerTrips += n.BreakerTrips
	c.net.QueuedWritebacks += n.QueuedWritebacks
	c.net.DegradedReads += n.DegradedReads
	c.net.DegradedTime += n.DegradedTime
	c.net.BackoffTime += n.BackoffTime
}

// Net returns the accumulated resilience record.
func (c *Collector) Net() NetRecord { return c.net }

// Func returns a function's record (nil if never seen).
func (c *Collector) Func(name string) *FuncRecord { return c.funcs[name] }

// Functions returns all records sorted by descending overhead, ties broken
// by name for determinism.
func (c *Collector) Functions() []*FuncRecord {
	out := make([]*FuncRecord, 0, len(c.funcs))
	for _, f := range c.funcs {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool {
		oi, oj := out[i].Overhead(), out[j].Overhead()
		if oi != oj {
			return oi > oj
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// TopFunctions returns the ceil(frac * n) functions with the highest cache
// performance overhead (§4.1: 10% in the first iteration, 20% in the next,
// …). Functions with zero overhead are excluded — there is nothing to
// optimize.
func (c *Collector) TopFunctions(frac float64) []string {
	all := c.Functions()
	if len(all) == 0 {
		return nil
	}
	k := CeilFrac(frac, len(all))
	if k < 1 {
		k = 1
	}
	if k > len(all) {
		k = len(all)
	}
	var out []string
	for _, f := range all[:k] {
		if f.Overhead() <= 0 {
			break
		}
		out = append(out, f.Name)
	}
	return out
}

// Objects returns allocation sites sorted by descending size.
func (c *Collector) Objects() []*ObjectRecord {
	out := make([]*ObjectRecord, 0, len(c.objects))
	for _, o := range c.objects {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Bytes != out[j].Bytes {
			return out[i].Bytes > out[j].Bytes
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// LargestObjects returns the ceil(frac * n) largest allocation sites
// (§4.1).
func (c *Collector) LargestObjects(frac float64) []string {
	all := c.Objects()
	if len(all) == 0 {
		return nil
	}
	k := CeilFrac(frac, len(all))
	if k < 1 {
		k = 1
	}
	if k > len(all) {
		k = len(all)
	}
	out := make([]string, 0, k)
	for _, o := range all[:k] {
		out = append(out, o.Name)
	}
	return out
}

// CeilFrac returns ceil(frac * n) computed exactly: products that are
// whole numbers up to floating-point noise (0.3*10, 0.07*100) round to
// that whole number instead of being bumped up, and true fractional parts
// of any size round up (the additive-epsilon idiom this replaces silently
// under-counted whenever the fractional part exceeded the epsilon).
func CeilFrac(frac float64, n int) int {
	if n <= 0 {
		return 0
	}
	p := frac * float64(n)
	if p <= 0 {
		return 0
	}
	fl := math.Floor(p)
	if p-fl <= p*1e-12 {
		return int(fl)
	}
	return int(fl) + 1
}

// TotalRuntime sums runtime-internal time across functions.
func (c *Collector) TotalRuntime() sim.Duration {
	var t sim.Duration
	for _, f := range c.funcs {
		t += f.Runtime
	}
	return t
}

// Merge folds other into c (multithreaded runs).
func (c *Collector) Merge(other *Collector) {
	for name, f := range other.funcs {
		dst := c.fn(name)
		dst.Calls += f.Calls
		dst.Total += f.Total
		dst.Runtime += f.Runtime
		dst.Accesses += f.Accesses
		dst.Misses += f.Misses
	}
	for name, o := range other.objects {
		c.AllocSite(name, o.Bytes)
	}
	c.RecordNet(other.net)
}

// String renders a human-readable profile table.
func (c *Collector) String() string {
	var sb strings.Builder
	sb.WriteString("func                     calls      total    runtime  overhead  missrate\n")
	for _, f := range c.Functions() {
		fmt.Fprintf(&sb, "%-22s %7d %10s %10s %8.3f %9.4f\n",
			f.Name, f.Calls, f.Total, f.Runtime, f.Overhead(), f.MissRate())
	}
	for _, o := range c.Objects() {
		fmt.Fprintf(&sb, "object %-18s %10d bytes\n", o.Name, o.Bytes)
	}
	if !c.net.Zero() {
		fmt.Fprintf(&sb, "net: %d retries, %d timeouts, %d corruptions, %d breaker trips, %d queued writebacks, %d degraded reads, %s degraded, %s backoff\n",
			c.net.Retries, c.net.Timeouts, c.net.Corruptions, c.net.BreakerTrips,
			c.net.QueuedWritebacks, c.net.DegradedReads, c.net.DegradedTime, c.net.BackoffTime)
	}
	return sb.String()
}
