package profile

import (
	"math"
	"strings"
	"testing"

	"mira/internal/sim"
)

func TestOverheadMetric(t *testing.T) {
	c := NewCollector()
	c.FuncCall("f", 100*sim.Microsecond)
	c.RuntimeTime("f", 20*sim.Microsecond)
	rec := c.Func("f")
	// overhead = runtime / (total - runtime) = 20/80
	if got := rec.Overhead(); got != 0.25 {
		t.Fatalf("overhead = %v, want 0.25", got)
	}
}

func TestOverheadZeroWhenNoRuntime(t *testing.T) {
	c := NewCollector()
	c.FuncCall("f", 100)
	if got := c.Func("f").Overhead(); got != 0 {
		t.Fatalf("overhead = %v, want 0", got)
	}
}

func TestTopFunctionsFractions(t *testing.T) {
	c := NewCollector()
	names := []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j"}
	for i, n := range names {
		c.FuncCall(n, 100*sim.Microsecond)
		c.RuntimeTime(n, sim.Duration(i+1)*sim.Microsecond)
	}
	top := c.TopFunctions(0.10)
	if len(top) != 1 || top[0] != "j" {
		t.Fatalf("top 10%% = %v, want [j]", top)
	}
	top = c.TopFunctions(0.20)
	if len(top) != 2 || top[0] != "j" || top[1] != "i" {
		t.Fatalf("top 20%% = %v, want [j i]", top)
	}
	if got := c.TopFunctions(1.0); len(got) != 10 {
		t.Fatalf("top 100%% has %d entries", len(got))
	}
}

func TestTopFunctionsExcludesZeroOverhead(t *testing.T) {
	c := NewCollector()
	c.FuncCall("pure", 100)
	top := c.TopFunctions(1.0)
	if len(top) != 0 {
		t.Fatalf("zero-overhead function selected: %v", top)
	}
}

func TestLargestObjects(t *testing.T) {
	c := NewCollector()
	c.AllocSite("small", 100)
	c.AllocSite("big", 10000)
	c.AllocSite("mid", 1000)
	got := c.LargestObjects(0.34)
	if len(got) != 2 || got[0] != "big" || got[1] != "mid" {
		t.Fatalf("largest = %v", got)
	}
}

func TestMerge(t *testing.T) {
	a, b := NewCollector(), NewCollector()
	a.FuncCall("f", 10)
	a.RuntimeTime("f", 2)
	b.FuncCall("f", 30)
	b.RuntimeTime("f", 6)
	b.AllocSite("o", 64)
	a.Merge(b)
	rec := a.Func("f")
	if rec.Calls != 2 || rec.Total != 40 || rec.Runtime != 8 {
		t.Fatalf("merged record %+v", rec)
	}
	if len(a.Objects()) != 1 {
		t.Fatal("merged object missing")
	}
}

func TestStringRendering(t *testing.T) {
	c := NewCollector()
	c.FuncCall("f", 10*sim.Microsecond)
	c.AllocSite("o", 64)
	s := c.String()
	if !strings.Contains(s, "f") || !strings.Contains(s, "o") {
		t.Fatalf("render missing entries:\n%s", s)
	}
}

func TestDeterministicOrdering(t *testing.T) {
	c := NewCollector()
	// Equal overheads: ties broken by name.
	for _, n := range []string{"zeta", "alpha", "mid"} {
		c.FuncCall(n, 100)
		c.RuntimeTime(n, 50)
	}
	fs := c.Functions()
	if fs[0].Name != "alpha" || fs[1].Name != "mid" || fs[2].Name != "zeta" {
		t.Fatalf("tie-break ordering wrong: %v, %v, %v", fs[0].Name, fs[1].Name, fs[2].Name)
	}
}

func TestOverheadAllRuntimeIsInf(t *testing.T) {
	c := NewCollector()
	// Pathological record: every nanosecond inside the runtime. The old
	// code returned the raw nanosecond count, so a tiny degenerate record
	// (e.g. 3ns all-runtime) ranked below a normal function with overhead
	// 5.0 — or above everything when its Runtime was huge — by units, not
	// by ratio.
	c.FuncCall("degenerate", 3)
	c.RuntimeTime("degenerate", 3)
	got := c.Func("degenerate").Overhead()
	if !math.IsInf(got, 1) {
		t.Fatalf("all-runtime overhead = %v, want +Inf", got)
	}
	// And it must outrank any finite overhead, however large.
	c.FuncCall("busy", 1000*sim.Microsecond)
	c.RuntimeTime("busy", 999*sim.Microsecond)
	fs := c.Functions()
	if fs[0].Name != "degenerate" {
		t.Fatalf("ranking = [%s %s], want degenerate first", fs[0].Name, fs[1].Name)
	}
}

func TestFunctionsOrdersInfTiesByName(t *testing.T) {
	c := NewCollector()
	for _, n := range []string{"zed", "apple", "mango"} {
		c.FuncCall(n, 10)
		c.RuntimeTime(n, 10) // rest == 0 -> +Inf for all three
	}
	fs := c.Functions()
	want := []string{"apple", "mango", "zed"}
	for i, w := range want {
		if fs[i].Name != w {
			t.Fatalf("Inf tie-break: got %s at %d, want %s", fs[i].Name, i, w)
		}
	}
}

func TestCeilFrac(t *testing.T) {
	cases := []struct {
		frac float64
		n    int
		want int
	}{
		{0.1, 10, 1},
		{0.3, 10, 3},   // 0.3*10 = 2.9999... in FP; must not bump to 4
		{0.07, 100, 7}, // same FP-noise shape
		{0.20000001, 10, 3},
		{0.15, 10, 2},
		{1.0, 5, 5},
		{0.5, 7, 4},
		{0.0, 10, 0},
		{0.1, 0, 0},
		{0.1, -3, 0},
	}
	for _, tc := range cases {
		if got := CeilFrac(tc.frac, tc.n); got != tc.want {
			t.Errorf("CeilFrac(%v, %d) = %d, want %d", tc.frac, tc.n, got, tc.want)
		}
	}
}

func TestTotalRuntime(t *testing.T) {
	c := NewCollector()
	c.RuntimeTime("a", 5)
	c.RuntimeTime("b", 7)
	if c.TotalRuntime() != 12 {
		t.Fatalf("TotalRuntime = %v", c.TotalRuntime())
	}
}

func TestMissRateAccounting(t *testing.T) {
	c := NewCollector()
	for i := 0; i < 10; i++ {
		c.AccessEvent("f", i%4 == 0)
	}
	rec := c.Func("f")
	if rec.Accesses != 10 || rec.Misses != 3 {
		t.Fatalf("accesses=%d misses=%d", rec.Accesses, rec.Misses)
	}
	if got := rec.MissRate(); got != 0.3 {
		t.Fatalf("miss rate %v, want 0.3", got)
	}
	if (&FuncRecord{}).MissRate() != 0 {
		t.Fatal("zero-access miss rate not zero")
	}
}

func TestMergeCarriesAccessCounters(t *testing.T) {
	a, b := NewCollector(), NewCollector()
	a.AccessEvent("f", true)
	b.AccessEvent("f", false)
	a.Merge(b)
	rec := a.Func("f")
	if rec.Accesses != 2 || rec.Misses != 1 {
		t.Fatalf("merged accesses=%d misses=%d", rec.Accesses, rec.Misses)
	}
}
