// Package cluster shards the far-memory pool across N far nodes, each with
// its own farmem.Node, resilient transport, independent network link, and
// independent fault domain. The runtime talks to a single Pool through the
// transport.Link interface; the Pool routes every operation to the owning
// node(s) via an explicit, serializable placement table.
//
// Placement is deterministic capacity-weighted rendezvous hashing: each
// allocation (a cache section placed whole, or a large allocation striped
// at StripeBytes) ranks the nodes by a seeded hash score scaled by node
// capacity, and the top R become primary + replicas. Writes fan out to
// every home synchronously; reads are served by the primary and fail over
// to replicas when the primary's circuit breaker is open, the read fails,
// or the node has lost its memory (crash-wipe). A wiped node is re-synced
// from a healthy replica and read-repair pushes correct bytes back to a
// reachable primary that served a bad read.
package cluster

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"sync"

	"mira/internal/codec"
	"mira/internal/farmem"
	"mira/internal/faults"
	"mira/internal/netmodel"
	"mira/internal/trace"
	"mira/internal/transport"
)

// DefaultStripeBytes is the striping granularity for large allocations
// (the swap heap): big enough that per-stripe metadata is negligible,
// small enough that a multi-megabyte heap spreads across every node.
const DefaultStripeBytes = 1 << 20

// Options configures a far-memory cluster.
type Options struct {
	// Nodes is the far-node count N (minimum 1).
	Nodes int
	// Replicas is the replication factor R: every placement gets
	// min(R, N) homes. R <= 1 means no replication.
	Replicas int
	// Seed drives the placement hash. Same seed, same allocation
	// sequence, same placement table.
	Seed uint64
	// StripeBytes is the striping granularity for plain allocations.
	// Zero means DefaultStripeBytes. Sections are never striped: a
	// section lives whole on its home node so per-section routing is a
	// single-link operation.
	StripeBytes uint64
	// NodeCfg configures every far node. Capacities overrides the
	// capacity per node when non-nil (skewed clusters); len(Capacities)
	// must equal Nodes.
	NodeCfg    farmem.NodeConfig
	Capacities []uint64
	// Net is the per-link cost model. Every node gets its own
	// netmodel.Bandwidth accountant, so traffic to different nodes is
	// charged on independent links and sharding is a real speedup.
	Net netmodel.Config
	// Policy is the per-node resilience policy (nil = transport default).
	// Each node's jitter stream is decorrelated from its peers'.
	Policy *transport.Policy
	// Faults holds one fault config per node (nil entries = no faults on
	// that node). Shorter slices leave the remaining nodes fault-free.
	Faults []*faults.Config
	// Tier enables the simulated SSD capacity tier on every node (nil =
	// DRAM only). The tier sits between the fault injector and the raw
	// node, so injected crashes wipe DRAM but not flash.
	Tier *TierConfig
}

func (o Options) stripe() uint64 {
	if o.StripeBytes == 0 {
		return DefaultStripeBytes
	}
	return o.StripeBytes
}

func (o Options) replicas() int {
	r := o.Replicas
	if r < 1 {
		r = 1
	}
	if r > o.Nodes {
		r = o.Nodes
	}
	return r
}

// Home is one placement of an entry: the owning node and the address of
// the bytes inside that node's address space. Homes[0] is the primary.
type Home struct {
	Node int    `json:"node"`
	Base uint64 `json:"base"`
}

// PlacementEntry is one row of the serializable placement table: a
// contiguous range of the pool's virtual address space and its homes.
type PlacementEntry struct {
	VBase   uint64 `json:"vbase"`
	Size    uint64 `json:"size"`
	Section uint16 `json:"section,omitempty"`
	Homes   []Home `json:"homes"`
}

// NodeStats are the per-node counters mira-run reports.
type NodeStats struct {
	Node           int
	Reads          int64 // segment reads served by this node
	Writes         int64 // segment writes landed on this node
	ReadBytes      int64
	WriteBytes     int64
	Failovers      int64 // reads this node should have served but a replica did
	Repairs        int64 // read-repair writes pushed back to this node
	Resyncs        int64 // placement ranges re-copied onto this node after a wipe
	ResyncBytes    int64
	AllocatedBytes uint64
	CapacityBytes  uint64
	Net            transport.Stats
	Faults         faults.Stats
	Tier           TierStats
}

// farNode is one member of the pool.
type farNode struct {
	fm    *farmem.Node
	tr    *transport.T
	inj   *faults.Injector // nil when the node is fault-free
	tier  *tierBackend     // nil when the node is DRAM-only
	stale bool             // memory wiped since the last re-sync
	stats NodeStats
}

// Pool is a sharded, replicated far-memory pool. It implements
// transport.Link (the timed data plane the runtime and swap cache drive)
// and the runtime's direct-store operations (Alloc/Read/Write).
type Pool struct {
	opts Options

	mu    sync.Mutex
	nodes []*farNode
	table []*PlacementEntry // sorted by VBase; entries are stable pointers
	next  uint64            // virtual bump pointer
	seq   uint64            // allocation sequence number, feeds the hash

	// Tracing (nil when disabled — every use is nil-safe).
	trc       *trace.Buffer
	cFailover *trace.Counter
}

// New builds the pool: N far nodes, each behind its own transport and
// optional fault injector.
func New(opts Options) (*Pool, error) {
	if opts.Nodes < 1 {
		return nil, fmt.Errorf("cluster: need at least 1 node, got %d", opts.Nodes)
	}
	if opts.Capacities != nil && len(opts.Capacities) != opts.Nodes {
		return nil, fmt.Errorf("cluster: %d capacities for %d nodes", len(opts.Capacities), opts.Nodes)
	}
	if len(opts.Faults) > opts.Nodes {
		return nil, fmt.Errorf("cluster: %d fault configs for %d nodes", len(opts.Faults), opts.Nodes)
	}
	p := &Pool{opts: opts, next: farmem.DefaultBase}
	for i := 0; i < opts.Nodes; i++ {
		cfg := opts.NodeCfg
		if opts.Capacities != nil {
			cfg.Capacity = opts.Capacities[i]
		}
		fm := farmem.NewNode(cfg)
		tr := transport.New(fm, opts.Net)
		if opts.Policy != nil {
			pol := *opts.Policy
			// Decorrelate the per-node jitter streams so simultaneous
			// retries against different nodes don't move in lockstep.
			pol.JitterSeed += uint64(i) * 0x9e3779b97f4a7c15
			tr.SetPolicy(pol)
		}
		n := &farNode{fm: fm, tr: tr}
		n.stats.Node = i
		n.stats.CapacityBytes = cfg.Capacity
		// Backend chain, innermost out: node <- capacity tier <- fault
		// injector. The injector wraps the tier so a crash-wipe zeroes DRAM
		// while the tier's flash map survives.
		var be transport.Backend = transport.NewNodeBackend(fm)
		if opts.Tier != nil && opts.Tier.DRAMBytes > 0 {
			n.tier = newTierBackend(be, fm, *opts.Tier)
			be = n.tier
			tr.SetBackend(be)
		}
		if i < len(opts.Faults) && opts.Faults[i] != nil && opts.Faults[i].Enabled() {
			idx := i // wipe callback marks THIS node stale
			n.inj = faults.Wrap(be, func() {
				fm.WipeMemory()
				p.markStale(idx)
			}, *opts.Faults[i])
			tr.SetBackend(n.inj)
		}
		p.nodes = append(p.nodes, n)
	}
	return p, nil
}

// SetTrace attaches the deterministic tracing layer: a pool-level buffer for
// routing events (failover, re-sync) plus per-node transport tracing, so
// retries and breaker trips are attributed to the node that caused them.
func (p *Pool) SetTrace(tr *trace.Tracer) {
	if tr == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.trc = tr.Buffer("cluster")
	p.cFailover = tr.Registry().Counter("cluster.failovers")
	for i, n := range p.nodes {
		n.tr.SetTrace(tr, fmt.Sprintf("net.node%d", i))
		if n.tier != nil {
			n.tier.setTrace(tr.Registry())
		}
	}
}

// SetWireCodec installs a wire codec on every node link. The runtime flips
// it per section around each data-path operation, so one pool serves
// compressed and raw sections side by side.
func (p *Pool) SetWireCodec(id codec.ID) {
	for _, n := range p.nodes {
		n.tr.SetWireCodec(id)
	}
}

// WireCodec reports the codec currently installed on the node links.
func (p *Pool) WireCodec() codec.ID {
	if len(p.nodes) == 0 {
		return codec.None
	}
	return p.nodes[0].tr.WireCodec()
}

// markStale flags a node as having lost its memory. Called from the fault
// injector's wipe callback, which always runs under some operation that
// already holds the node's injector lock — never the pool lock — so taking
// p.mu here is safe.
func (p *Pool) markStale(i int) {
	p.mu.Lock()
	p.nodes[i].stale = true
	p.mu.Unlock()
}

// NodeStale reports whether node i's memory was wiped since the last
// re-sync — replicas homed there are unreadable until resynced. The offload
// engine uses it to detect a sub-offload's serving node dying mid-run.
func (p *Pool) NodeStale(i int) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.nodes[i].stale
}

// splitmix64 is the placement hash: a full-avalanche mix of the seed and
// the placement key, so node ranking is uniform and deterministic.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// rank orders the nodes for one placement key by capacity-weighted
// rendezvous score (highest first). Weighting by capacity makes expected
// load proportional to node size, so skewed clusters fill evenly.
func (p *Pool) rank(key uint64) []int {
	type scored struct {
		node  int
		score float64
	}
	sc := make([]scored, len(p.nodes))
	for i, n := range p.nodes {
		h := splitmix64(p.opts.Seed ^ splitmix64(key^uint64(i)))
		// u in (0,1); -cap/ln(u) is the classic weighted-rendezvous score.
		u := (float64(h>>11) + 0.5) / (1 << 53)
		w := float64(n.fm.Capacity())
		if w <= 0 {
			w = 1
		}
		sc[i] = scored{node: i, score: -w / math.Log(u)}
	}
	sort.Slice(sc, func(a, b int) bool {
		if sc[a].score != sc[b].score {
			return sc[a].score > sc[b].score
		}
		return sc[a].node < sc[b].node
	})
	out := make([]int, len(sc))
	for i, s := range sc {
		out[i] = s.node
	}
	return out
}

// place allocates size bytes on the top-R nodes for key, skipping nodes
// that are out of capacity. At least one home is required; fewer than R
// homes means degraded replication, not failure.
func (p *Pool) place(key, size uint64) ([]Home, error) {
	want := p.opts.replicas()
	var homes []Home
	for _, node := range p.rank(key) {
		base, err := p.nodes[node].fm.Alloc(size)
		if err != nil {
			continue // node full — rendezvous falls through to the next rank
		}
		homes = append(homes, Home{Node: node, Base: base})
		if len(homes) == want {
			break
		}
	}
	if len(homes) == 0 {
		return nil, fmt.Errorf("cluster: no node can hold %d bytes: %w", size, farmem.ErrOutOfMemory)
	}
	return homes, nil
}

// addEntry appends a placement row and keeps the table sorted by VBase.
// The bump allocator only grows, so append preserves order.
func (p *Pool) addEntry(e PlacementEntry) {
	p.table = append(p.table, &e)
	for i := range e.Homes {
		n := p.nodes[e.Homes[i].Node]
		n.stats.AllocatedBytes += e.Size
	}
}

const allocAlign = 8

// Alloc reserves size bytes of pool virtual address space, striped across
// the cluster at StripeBytes granularity. Each stripe is placed
// independently, so a large heap spreads over every node. The virtual
// range is contiguous; only the backing is sharded.
func (p *Pool) Alloc(size uint64) (uint64, error) {
	if size == 0 {
		return 0, fmt.Errorf("cluster: zero-size allocation")
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	stripe := p.opts.stripe()
	vbase := p.next
	for off := uint64(0); off < size; off += stripe {
		n := stripe
		if size-off < n {
			n = size - off
		}
		p.seq++
		key := splitmix64(p.seq)
		homes, err := p.place(key, n)
		if err != nil {
			return 0, err
		}
		p.addEntry(PlacementEntry{VBase: vbase + off, Size: n, Homes: homes})
	}
	p.next += (size + allocAlign - 1) / allocAlign * allocAlign
	return vbase, nil
}

// AllocSection places one cache section whole: the section ID is the
// placement key, so a section's home is stable for the life of the pool
// and every miss, eviction, flush, and offloaded procedure for that
// section routes to a single node.
func (p *Pool) AllocSection(sec uint16, size uint64) (uint64, error) {
	if size == 0 {
		return 0, fmt.Errorf("cluster: zero-size section %d", sec)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	key := splitmix64(uint64(sec) | 1<<32)
	homes, err := p.place(key, size)
	if err != nil {
		return 0, err
	}
	vbase := p.next
	p.addEntry(PlacementEntry{VBase: vbase, Size: size, Section: sec, Homes: homes})
	p.next += (size + allocAlign - 1) / allocAlign * allocAlign
	return vbase, nil
}

// seg is one piece of a pool operation that lands entirely inside one
// placement entry.
type seg struct {
	entry *PlacementEntry
	off   uint64 // offset inside the entry
	n     int    // byte count
	at    int    // offset inside the caller's buffer
}

// findEntry locates the placement row covering vaddr. Called with p.mu held.
func (p *Pool) findEntry(vaddr uint64) (*PlacementEntry, error) {
	i := sort.Search(len(p.table), func(i int) bool { return p.table[i].VBase > vaddr })
	if i == 0 {
		return nil, fmt.Errorf("cluster: %w: address %#x below every placement", farmem.ErrUnmapped, vaddr)
	}
	e := p.table[i-1]
	if vaddr >= e.VBase+e.Size {
		return nil, fmt.Errorf("cluster: %w: address %#x past entry [%#x,+%d)", farmem.ErrUnmapped, vaddr, e.VBase, e.Size)
	}
	return e, nil
}

// segments splits [vaddr, vaddr+n) into per-entry pieces. Called with
// p.mu held.
func (p *Pool) segments(vaddr uint64, n int) ([]seg, error) {
	var out []seg
	at := 0
	for n > 0 {
		e, err := p.findEntry(vaddr)
		if err != nil {
			return nil, err
		}
		off := vaddr - e.VBase
		take := int(e.Size - off)
		if take > n {
			take = n
		}
		out = append(out, seg{entry: e, off: off, n: take, at: at})
		vaddr += uint64(take)
		n -= take
		at += take
	}
	return out, nil
}

// Table snapshots the placement table, sorted by virtual base.
func (p *Pool) Table() []PlacementEntry {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]PlacementEntry, len(p.table))
	for i, e := range p.table {
		out[i] = *e
		out[i].Homes = append([]Home(nil), e.Homes...)
	}
	return out
}

// TableJSON serializes the placement table. Byte-stable across runs with
// the same seed and allocation sequence — the determinism contract.
func (p *Pool) TableJSON() ([]byte, error) {
	return json.MarshalIndent(p.Table(), "", "  ")
}

// NodeCount returns N.
func (p *Pool) NodeCount() int { return len(p.nodes) }

// FarNode exposes node i's farmem.Node (tests, conformance suites).
func (p *Pool) FarNode(i int) *farmem.Node { return p.nodes[i].fm }

// Transport exposes node i's resilient transport.
func (p *Pool) Transport(i int) *transport.T { return p.nodes[i].tr }

// Backend exposes node i's transport backend — the fault injector when the
// node has a fault domain, the raw node backend otherwise.
func (p *Pool) Backend(i int) transport.Backend { return p.nodes[i].tr.Backend() }

// Injector exposes node i's fault injector (nil when fault-free).
func (p *Pool) Injector(i int) *faults.Injector { return p.nodes[i].inj }

// ShareBandwidth replaces every node link's bandwidth accountant with bw,
// so pools owned by different tenants contend for one compute-side NIC —
// the serving bottleneck — instead of each enjoying private links.
func (p *Pool) ShareBandwidth(bw *netmodel.Bandwidth) {
	for _, n := range p.nodes {
		n.tr.BW = bw
	}
}

// NodeStats snapshots the per-node counters, ordered by node ID.
func (p *Pool) NodeStats() []NodeStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]NodeStats, len(p.nodes))
	for i, n := range p.nodes {
		s := n.stats
		s.Net = n.tr.Stats()
		if n.inj != nil {
			s.Faults = n.inj.Stats()
		}
		if n.tier != nil {
			s.Tier = n.tier.Stats()
		}
		out[i] = s
	}
	return out
}
