package cluster

import (
	"sync"

	"mira/internal/farmem"
	"mira/internal/sim"
	"mira/internal/trace"
	"mira/internal/transport"
)

// DefaultTierGranule is the hot/cold tracking granule of the capacity tier:
// one SSD page. Demotion and promotion move whole granules.
const DefaultTierGranule = 4096

// TierConfig configures a node's simulated SSD capacity tier. The node's
// DRAM holds at most DRAMBytes of touched granules; the LRU tail spills to
// a flash tier that costs PromoteLatency per granule to read back but
// survives a crash-wipe (flash is non-volatile; farmem.Node.WipeMemory only
// zeroes DRAM).
type TierConfig struct {
	// DRAMBytes is the hot-tier budget. Zero disables the tier.
	DRAMBytes uint64
	// GranuleBytes is the demotion granule (0 = DefaultTierGranule).
	GranuleBytes uint64
	// PromoteLatency is charged per granule read back from flash
	// (0 = DefaultPromoteLatency).
	PromoteLatency sim.Duration
}

// DefaultPromoteLatency models one NVMe random read.
const DefaultPromoteLatency = 15 * sim.Microsecond

func (c TierConfig) granule() uint64 {
	if c.GranuleBytes == 0 {
		return DefaultTierGranule
	}
	return c.GranuleBytes
}

func (c TierConfig) promote() sim.Duration {
	if c.PromoteLatency == 0 {
		return DefaultPromoteLatency
	}
	return c.PromoteLatency
}

// TierStats are the capacity-tier counters of one node.
type TierStats struct {
	Hits          int64 // accesses served entirely from the DRAM tier
	Misses        int64 // granule promotions from flash (one per granule)
	Demotions     int64 // granules spilled DRAM -> flash
	ResidentBytes int64 // touched granule bytes currently in DRAM
	SSDBytes      int64 // granule bytes currently on flash
}

// granule is one tracked hot/cold unit, a member of the LRU list when
// resident.
type granule struct {
	key        uint64 // granule index (addr / GranuleBytes)
	resident   bool
	sticky     bool   // straddles an allocation edge — cannot be snapshotted
	lastOp     uint64 // op sequence of the last touch (eviction pin)
	prev, next *granule
}

// tierBackend interposes between the transport (or the fault injector) and
// the raw node backend: every access touches the granules it covers,
// promoting cold ones from the flash map before the inner backend moves the
// actual bytes. The flash map is plain process memory that WipeMemory never
// sees, which is exactly the crash-survivability model: a restart loses
// DRAM, not flash.
type tierBackend struct {
	inner transport.Backend
	fm    *farmem.Node
	cfg   TierConfig

	mu       sync.Mutex
	granules map[uint64]*granule
	ssd      map[uint64][]byte // demoted granule bytes, key = granule index
	head     *granule          // LRU list of resident granules, head = hottest
	tail     *granule
	resident uint64 // bytes counted against DRAMBytes
	opSeq    uint64
	stats    TierStats

	cHit, cMiss, cDemote *trace.Counter // nil-safe
}

func newTierBackend(inner transport.Backend, fm *farmem.Node, cfg TierConfig) *tierBackend {
	return &tierBackend{
		inner:    inner,
		fm:       fm,
		cfg:      cfg,
		granules: make(map[uint64]*granule),
		ssd:      make(map[uint64][]byte),
	}
}

func (tb *tierBackend) setTrace(reg *trace.Registry) {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	tb.cHit = reg.Counter("cluster.tier.hits")
	tb.cMiss = reg.Counter("cluster.tier.misses")
	tb.cDemote = reg.Counter("cluster.tier.demotions")
}

// Stats snapshots the tier counters.
func (tb *tierBackend) Stats() TierStats {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	s := tb.stats
	s.ResidentBytes = int64(tb.resident)
	var ssd int64
	for _, b := range tb.ssd {
		ssd += int64(len(b))
	}
	s.SSDBytes = ssd
	return s
}

// --- LRU list (resident granules only) ---

func (tb *tierBackend) lruUnlink(g *granule) {
	if g.prev != nil {
		g.prev.next = g.next
	} else if tb.head == g {
		tb.head = g.next
	}
	if g.next != nil {
		g.next.prev = g.prev
	} else if tb.tail == g {
		tb.tail = g.prev
	}
	g.prev, g.next = nil, nil
}

func (tb *tierBackend) lruFront(g *granule) {
	tb.lruUnlink(g)
	g.next = tb.head
	if tb.head != nil {
		tb.head.prev = g
	}
	tb.head = g
	if tb.tail == nil {
		tb.tail = g
	}
}

// touch walks the granules covering [addr, addr+n), promoting cold ones,
// and returns the flash latency the access pays. Must run BEFORE the inner
// backend moves bytes: promotion restores a demoted granule's flash copy
// into node DRAM, which after a crash-wipe is the only surviving copy.
func (tb *tierBackend) touch(addr uint64, n int) sim.Duration {
	if n <= 0 {
		return 0
	}
	g := tb.cfg.granule()
	tb.mu.Lock()
	defer tb.mu.Unlock()
	tb.opSeq++
	var extra sim.Duration
	hit := true
	first, last := addr/g, (addr+uint64(n)-1)/g
	for key := first; key <= last; key++ {
		gr := tb.granules[key]
		if gr == nil {
			// First touch: the granule is born resident (its bytes were
			// written through DRAM).
			gr = &granule{key: key, resident: true}
			tb.granules[key] = gr
			tb.resident += g
		}
		gr.lastOp = tb.opSeq
		if !gr.resident {
			hit = false
			tb.stats.Misses++
			tb.cMiss.Inc()
			extra += tb.cfg.promote()
			if bytes := tb.ssd[key]; bytes != nil {
				// Restore the flash copy into DRAM before the inner backend
				// reads it. Ignore failure: the allocation was freed.
				_ = tb.fm.CopyIn(key*g, bytes)
				delete(tb.ssd, key)
			}
			gr.resident = true
			tb.resident += g
		}
		tb.lruFront(gr)
	}
	if hit {
		tb.stats.Hits++
		tb.cHit.Inc()
	}
	tb.demoteToBudget()
	return extra
}

// demoteToBudget spills LRU-tail granules to flash until the DRAM budget
// holds. Granules touched by the current operation are pinned; granules
// straddling an allocation edge (snapshot fails) turn sticky and stay
// resident forever. Called with tb.mu held.
func (tb *tierBackend) demoteToBudget() {
	g := tb.cfg.granule()
	victim := tb.tail
	for tb.resident > tb.cfg.DRAMBytes && victim != nil {
		prev := victim.prev
		if victim.sticky || victim.lastOp == tb.opSeq {
			victim = prev
			continue
		}
		buf := make([]byte, g)
		if err := tb.fm.CopyOut(victim.key*g, buf); err != nil {
			victim.sticky = true
			victim = prev
			continue
		}
		tb.ssd[victim.key] = buf
		victim.resident = false
		tb.lruUnlink(victim)
		tb.resident -= g
		tb.stats.Demotions++
		tb.cDemote.Inc()
		victim = prev
	}
}

// Restore marks the granules covering [addr, addr+n) resident and drops
// their flash copies. The cluster re-sync path writes recovered bytes
// straight into node DRAM (bypassing the transport), so a stale flash copy
// left behind would shadow the restored bytes at the next promotion.
func (tb *tierBackend) Restore(addr uint64, n int) {
	if n <= 0 {
		return
	}
	g := tb.cfg.granule()
	tb.mu.Lock()
	defer tb.mu.Unlock()
	for key := addr / g; key <= (addr+uint64(n)-1)/g; key++ {
		gr := tb.granules[key]
		if gr == nil || gr.resident {
			continue
		}
		delete(tb.ssd, key)
		gr.resident = true
		tb.resident += g
		tb.lruFront(gr)
	}
	tb.demoteToBudget()
}

// --- transport.Backend ---

func (tb *tierBackend) Read(now sim.Time, addr uint64, buf []byte) (uint32, sim.Duration, error) {
	ex := tb.touch(addr, len(buf))
	sum, extra, err := tb.inner.Read(now, addr, buf)
	return sum, extra + ex, err
}

func (tb *tierBackend) Write(now sim.Time, addr uint64, buf []byte) (sim.Duration, error) {
	// A sub-granule write to a cold granule is a read-modify-write: the
	// granule promotes first, then the inner write lands on DRAM.
	ex := tb.touch(addr, len(buf))
	extra, err := tb.inner.Write(now, addr, buf)
	return extra + ex, err
}

func (tb *tierBackend) Gather(now sim.Time, addrs []uint64, sizes []int) ([]byte, uint32, sim.Duration, error) {
	var ex sim.Duration
	for i, a := range addrs {
		ex += tb.touch(a, sizes[i])
	}
	data, sum, extra, err := tb.inner.Gather(now, addrs, sizes)
	return data, sum, extra + ex, err
}

func (tb *tierBackend) Scatter(now sim.Time, addrs []uint64, pieces [][]byte) (sim.Duration, error) {
	var ex sim.Duration
	for i, a := range addrs {
		ex += tb.touch(a, len(pieces[i]))
	}
	extra, err := tb.inner.Scatter(now, addrs, pieces)
	return extra + ex, err
}

// Call passes through untouched: offloaded procedures execute against the
// far node's DRAM (the offload engine keeps its operands hot by accessing
// them, and charging flash latency to a control message would be wrong).
func (tb *tierBackend) Call(now sim.Time, name string, args []byte) ([]byte, sim.Duration, sim.Duration, error) {
	return tb.inner.Call(now, name, args)
}

var _ transport.Backend = (*tierBackend)(nil)
