package cluster

import (
	"bytes"
	"testing"

	"mira/internal/codec"
	"mira/internal/farmem"
	"mira/internal/netmodel"
	"mira/internal/sim"
	"mira/internal/transport"
)

func tierPool(t *testing.T, tier *TierConfig) (*Pool, uint64) {
	t.Helper()
	p, err := New(Options{
		Nodes:   1,
		Seed:    7,
		NodeCfg: farmem.NodeConfig{Capacity: 1 << 20, CPUSlowdown: 1},
		Net:     netmodel.DefaultConfig(),
		Tier:    tier,
	})
	if err != nil {
		t.Fatal(err)
	}
	base, err := p.AllocSection(1, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	return p, base
}

func fillPattern(n int, seed byte) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(i)*3 + seed
	}
	return out
}

func TestTierDemotesAndPromotes(t *testing.T) {
	// 16 KB of DRAM over a 64 KB section: most granules must spill.
	p, base := tierPool(t, &TierConfig{DRAMBytes: 16 << 10})
	now := sim.Time(0)
	data := fillPattern(64<<10, 1)
	for off := 0; off < len(data); off += 4096 {
		if _, err := p.WriteOneSided(now, base+uint64(off), data[off:off+4096]); err != nil {
			t.Fatal(err)
		}
	}
	s := p.NodeStats()[0].Tier
	if s.Demotions == 0 {
		t.Fatalf("no demotions with 16K budget over 64K writes: %+v", s)
	}
	if s.ResidentBytes > 16<<10 {
		t.Fatalf("resident %d bytes exceeds 16K budget", s.ResidentBytes)
	}
	if s.SSDBytes == 0 {
		t.Fatalf("nothing on flash after demotions: %+v", s)
	}

	// Reading everything back promotes the cold granules and returns the
	// exact bytes that were written through the tier.
	got := make([]byte, len(data))
	if _, err := p.ReadOneSided(now, base, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("tiered read-back differs from written bytes")
	}
	s = p.NodeStats()[0].Tier
	if s.Misses == 0 {
		t.Fatalf("full read-back over a spilled section promoted nothing: %+v", s)
	}

	// A re-read of the most recently used granule is a pure DRAM hit and
	// completes sooner than a promotion-bearing cold read did.
	hitsBefore := p.NodeStats()[0].Tier.Hits
	buf := make([]byte, 4096)
	if _, err := p.ReadOneSided(now, base+64<<10-4096, buf); err != nil {
		t.Fatal(err)
	}
	if p.NodeStats()[0].Tier.Hits != hitsBefore+1 {
		t.Fatal("hot granule re-read did not count as a tier hit")
	}
}

func TestTierPromotionChargesLatency(t *testing.T) {
	lat := 15 * sim.Microsecond
	fm := farmem.NewNode(farmem.NodeConfig{Capacity: 1 << 20, CPUSlowdown: 1})
	addr, err := fm.Alloc(8192)
	if err != nil {
		t.Fatal(err)
	}
	tb := newTierBackend(transport.NewNodeBackend(fm), fm,
		TierConfig{DRAMBytes: 4096, PromoteLatency: lat})
	now := sim.Time(0)
	if _, err := tb.Write(now, addr, fillPattern(4096, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Write(now, addr+4096, fillPattern(4096, 3)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4096)
	// Granule A was demoted by the second write: reading it pays the flash
	// promotion latency through the backend's extra-duration channel.
	_, extra, err := tb.Read(now, addr, buf)
	if err != nil {
		t.Fatal(err)
	}
	if extra < lat {
		t.Fatalf("cold read extra %v, want >= %v", extra, lat)
	}
	// Re-read: resident now, no flash charge.
	_, extra, err = tb.Read(now, addr, buf)
	if err != nil {
		t.Fatal(err)
	}
	if extra != 0 {
		t.Fatalf("hot read charged %v extra, want 0", extra)
	}
}

func TestTierSurvivesCrashWipe(t *testing.T) {
	// Drive the tier backend directly: granule 0 demotes to flash, then the
	// node loses its DRAM. The flash copy must survive and promotion must
	// restore it; the resident granule's bytes are gone (zeroed).
	fm := farmem.NewNode(farmem.NodeConfig{Capacity: 1 << 20, CPUSlowdown: 1})
	addr, err := fm.Alloc(8192)
	if err != nil {
		t.Fatal(err)
	}
	tb := newTierBackend(transport.NewNodeBackend(fm), fm, TierConfig{DRAMBytes: 4096})
	now := sim.Time(0)
	a := fillPattern(4096, 3)
	b := fillPattern(4096, 4)
	if _, err := tb.Write(now, addr, a); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Write(now, addr+4096, b); err != nil { // demotes granule A
		t.Fatal(err)
	}
	if tb.Stats().Demotions == 0 {
		t.Fatal("second granule write did not demote the first")
	}

	fm.WipeMemory() // crash: DRAM gone, flash survives

	got := make([]byte, 4096)
	if _, _, err := tb.Read(now, addr, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, a) {
		t.Fatal("demoted granule lost its bytes across a wipe — flash must survive")
	}
	if _, _, err := tb.Read(now, addr+4096, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, 4096)) {
		t.Fatal("resident granule kept bytes across a wipe — DRAM must zero")
	}
}

func TestTierRestoreDropsFlashCopy(t *testing.T) {
	fm := farmem.NewNode(farmem.NodeConfig{Capacity: 1 << 20, CPUSlowdown: 1})
	addr, err := fm.Alloc(8192)
	if err != nil {
		t.Fatal(err)
	}
	tb := newTierBackend(transport.NewNodeBackend(fm), fm, TierConfig{DRAMBytes: 4096})
	now := sim.Time(0)
	stale := fillPattern(4096, 5)
	if _, err := tb.Write(now, addr, stale); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Write(now, addr+4096, fillPattern(4096, 6)); err != nil {
		t.Fatal(err)
	}
	// Re-sync path: fresh bytes written straight into DRAM, then Restore.
	fresh := fillPattern(4096, 7)
	if err := fm.Write(addr, fresh); err != nil {
		t.Fatal(err)
	}
	tb.Restore(addr, 4096)
	got := make([]byte, 4096)
	if _, _, err := tb.Read(now, addr, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, fresh) {
		t.Fatal("stale flash copy shadowed re-synced DRAM bytes")
	}
	if tb.Stats().SSDBytes > 4096 {
		t.Fatalf("Restore left extra flash copies: %+v", tb.Stats())
	}
}

func TestTierDeterministic(t *testing.T) {
	run := func() TierStats {
		p, base := tierPool(t, &TierConfig{DRAMBytes: 16 << 10})
		now := sim.Time(0)
		data := fillPattern(64<<10, 8)
		for off := 0; off < len(data); off += 4096 {
			if _, err := p.WriteOneSided(now, base+uint64(off), data[off:off+4096]); err != nil {
				t.Fatal(err)
			}
		}
		got := make([]byte, len(data))
		if _, err := p.ReadOneSided(now, base, got); err != nil {
			t.Fatal(err)
		}
		return p.NodeStats()[0].Tier
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("tier stats differ across identical runs:\n%+v\n%+v", a, b)
	}
}

func TestPoolSetWireCodecForwards(t *testing.T) {
	p, _ := tierPool(t, nil)
	if p.WireCodec() != codec.None {
		t.Fatal("fresh pool should default to codec.None")
	}
	p.SetWireCodec(codec.ByteRun)
	if p.Transport(0).WireCodec() != codec.ByteRun {
		t.Fatal("SetWireCodec did not reach the node transport")
	}
	p.SetWireCodec(codec.None)
	if p.WireCodec() != codec.None {
		t.Fatal("SetWireCodec(None) did not reset")
	}
}
