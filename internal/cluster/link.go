package cluster

import (
	"errors"
	"fmt"

	"mira/internal/sim"
	"mira/internal/trace"
	"mira/internal/transport"
)

// errStale marks a read that landed on a node whose memory was wiped: the
// bytes came back with a valid checksum (the node checksummed its own
// zeroed memory), so only the wipe flag — not the CRC — can unmask them.
var errStale = errors.New("cluster: node lost its memory since last re-sync")

// Pool implements transport.Link: the runtime and the swap cache drive a
// cluster through exactly the interface they drive a single transport.
var _ transport.Link = (*Pool)(nil)

func (p *Pool) isStale(node int) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.nodes[node].stale
}

// chooseHome picks the home a segment read should be served from: the
// first home that has its memory and a closed breaker. A home with an open
// breaker is skipped only when a healthy alternative exists — if every
// home is dark, the first non-stale one takes the degraded path (overlay
// serve or half-open wait) rather than failing outright.
func (p *Pool) chooseHome(now sim.Time, homes []Home) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	fallback := -1
	for i, h := range homes {
		n := p.nodes[h.Node]
		if n.stale {
			continue
		}
		if n.tr.BreakerOpen(now) {
			if fallback < 0 {
				fallback = i
			}
			continue
		}
		return i, nil
	}
	if fallback >= 0 {
		return fallback, nil
	}
	return -1, errStale
}

func (p *Pool) noteRead(now sim.Time, node, nbytes int, failedOver bool, primary int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := &p.nodes[node].stats
	s.Reads++
	s.ReadBytes += int64(nbytes)
	if failedOver {
		p.nodes[primary].stats.Failovers++
		p.cFailover.Inc()
		p.trc.Instant(now, "cluster", "failover",
			trace.I("primary", int64(primary)), trace.I("served_by", int64(node)))
	}
}

func (p *Pool) noteWrite(node, nbytes int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := &p.nodes[node].stats
	s.Writes++
	s.WriteBytes += int64(nbytes)
}

// readSegment serves one segment, failing over across the replica chain.
// Homes are tried in placement order starting from chooseHome's pick; a
// success is re-checked against the stale flag because a crash-wipe that
// restarts mid-operation returns zeroed bytes under a *valid* checksum.
func (p *Pool) readSegment(now sim.Time, s seg, buf []byte) (sim.Time, error) {
	homes := s.entry.Homes
	primary := homes[0].Node
	start, err := p.chooseHome(now, homes)
	if err != nil {
		return now, fmt.Errorf("cluster: read [%#x,+%d): every home wiped or dark: %w",
			s.entry.VBase+s.off, s.n, err)
	}
	var lastErr error
	var repair []Home // homes that returned a live error — read-repair targets
	for k := 0; k < len(homes); k++ {
		i := (start + k) % len(homes)
		h := homes[i]
		if k > 0 && p.isStale(h.Node) {
			lastErr = errStale
			continue
		}
		done, err := p.nodes[h.Node].tr.ReadOneSided(now, h.Base+s.off, buf)
		if err != nil {
			lastErr = err
			repair = append(repair, h)
			continue
		}
		if p.isStale(h.Node) {
			// Wipe fired during this very operation: discard the zeros.
			lastErr = errStale
			continue
		}
		p.noteRead(now, h.Node, s.n, h.Node != primary, primary)
		if h.Node != primary {
			p.readRepair(now, repair, s, buf)
			p.resyncStale(now)
		}
		return done, nil
	}
	// Every home refused. A wipe surfaced mid-loop still deserves a
	// re-sync attempt so the next read can succeed.
	p.resyncStale(now)
	return now, fmt.Errorf("cluster: read [%#x,+%d) failed on all %d homes: %w",
		s.entry.VBase+s.off, s.n, len(homes), lastErr)
}

// readRepair pushes the bytes a replica served back to homes that returned
// a live read error and are reachable again. Best-effort: failures are
// ignored (the overlay queue or the next re-sync catches them) and the
// repair's completion never extends the caller's read.
func (p *Pool) readRepair(now sim.Time, targets []Home, s seg, buf []byte) {
	for _, h := range targets {
		if p.isStale(h.Node) {
			continue // re-sync owns wiped nodes
		}
		if _, err := p.nodes[h.Node].tr.WriteOneSided(now, h.Base+s.off, buf); err == nil {
			p.mu.Lock()
			p.nodes[h.Node].stats.Repairs++
			p.mu.Unlock()
		}
	}
}

// resyncStale rebuilds every stale node from healthy replicas: each
// placement range homed on a stale node is copied from its first healthy
// co-home, charging wire time on both links. A node still inside a crash
// or partition window is left stale for a later pass (restoring it now
// would either be physically impossible or erased by the pending wipe),
// and the flag only clears once every range homed on the node was
// restored — a range with no healthy co-home (R=1, or every replica wiped
// at once) keeps the node stale so its data loss surfaces as read errors
// instead of silent zeros. Runs as background recovery: it charges the
// links (delaying later traffic) but its completion is not folded into
// the operation that detected the wipe.
func (p *Pool) resyncStale(now sim.Time) sim.Time {
	// Apply pending wipes and learn who is reachable BEFORE taking p.mu:
	// the injector's wipe callback takes p.mu via markStale.
	down := make([]bool, len(p.nodes))
	for i, n := range p.nodes {
		if n.inj != nil {
			n.inj.Sync(now)
			down[i] = n.inj.Down(now)
		}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	done := now
	ranges, moved := 0, int64(0)
	for idx, n := range p.nodes {
		if !n.stale || down[idx] {
			continue
		}
		// The node's memory is gone; its transport's queued degraded-mode
		// write-backs duplicate data the replica copy below already
		// includes. Drop them — a later drain would overwrite the
		// restored bytes with stale ones.
		n.tr.DropQueued()
		recovered := true
		for _, e := range p.table {
			var at *Home
			var src *Home
			for i := range e.Homes {
				h := &e.Homes[i]
				if h.Node == idx {
					at = h
				} else if src == nil && !p.nodes[h.Node].stale {
					src = h
				}
			}
			if at == nil {
				continue // node does not home this range
			}
			if src == nil {
				recovered = false // sole copy was lost — nothing to restore
				continue
			}
			buf := make([]byte, e.Size)
			if err := p.nodes[src.Node].fm.Read(src.Base, buf); err != nil {
				recovered = false
				continue
			}
			if err := n.fm.Write(at.Base, buf); err != nil {
				recovered = false
				continue
			}
			if n.tier != nil {
				// The restored bytes went straight into DRAM; a stale flash
				// copy left behind would shadow them at the next promotion.
				n.tier.Restore(at.Base, int(e.Size))
			}
			d := p.nodes[src.Node].tr.BW.Acquire(now, len(buf))
			if d2 := n.tr.BW.Acquire(now, len(buf)); d2 > d {
				d = d2
			}
			if d > done {
				done = d
			}
			n.stats.Resyncs++
			n.stats.ResyncBytes += int64(e.Size)
			ranges++
			moved += int64(e.Size)
		}
		if recovered {
			n.stale = false
		}
	}
	if ranges > 0 && p.trc != nil {
		p.trc.Span(now, done, "cluster", "resync",
			trace.I("ranges", int64(ranges)), trace.I("bytes", moved))
	}
	return done
}

// ReadOneSided implements transport.Link: a one-sided read of the pool's
// virtual address space, split per placement entry, each piece served by
// its primary with failover to replicas. Completion is the max across the
// independent links.
func (p *Pool) ReadOneSided(now sim.Time, addr uint64, buf []byte) (sim.Time, error) {
	p.mu.Lock()
	segs, err := p.segments(addr, len(buf))
	p.mu.Unlock()
	if err != nil {
		return now, err
	}
	done := now
	for _, s := range segs {
		d, err := p.readSegment(now, s, buf[s.at:s.at+s.n])
		if err != nil {
			return now, err
		}
		if d > done {
			done = d
		}
	}
	return done, nil
}

// writeSegment fans one segment out to every home. Replication is
// synchronous: completion is the max across homes, and the write succeeds
// if at least one home accepted it (a dark home's transport queues the
// write in its overlay and drains it on recovery).
func (p *Pool) writeSegment(now sim.Time, s seg, data []byte) (sim.Time, error) {
	done := now
	ok := 0
	var lastErr error
	var missed []int
	for _, h := range s.entry.Homes {
		d, err := p.nodes[h.Node].tr.WriteOneSided(now, h.Base+s.off, data)
		if err != nil {
			lastErr = err
			missed = append(missed, h.Node)
			continue
		}
		ok++
		p.noteWrite(h.Node, s.n)
		if d > done {
			done = d
		}
	}
	if ok == 0 {
		return now, fmt.Errorf("cluster: write [%#x,+%d) failed on all %d homes: %w",
			s.entry.VBase+s.off, s.n, len(s.entry.Homes), lastErr)
	}
	// A home that refused the write while a peer accepted it has silently
	// diverged (its transport did NOT queue the write — a queued write
	// returns success). Mark it stale so reads avoid it until a re-sync
	// copies the replicas' state back.
	for _, node := range missed {
		p.markStale(node)
	}
	return done, nil
}

// WriteOneSided implements transport.Link.
func (p *Pool) WriteOneSided(now sim.Time, addr uint64, buf []byte) (sim.Time, error) {
	p.mu.Lock()
	segs, err := p.segments(addr, len(buf))
	p.mu.Unlock()
	if err != nil {
		return now, err
	}
	done := now
	for _, s := range segs {
		d, err := p.writeSegment(now, s, buf[s.at:s.at+s.n])
		if err != nil {
			return now, err
		}
		if d > done {
			done = d
		}
	}
	return done, nil
}

// GatherTwoSided implements transport.Link: pieces are routed to their
// serving nodes and batched into one two-sided message per node, so a
// gather spanning the cluster pays one RPC per involved link — in
// parallel. A node whose batch fails (or turns out wiped) falls back to
// per-segment reads with full failover.
func (p *Pool) GatherTwoSided(now sim.Time, addrs []uint64, sizes []int) ([]byte, sim.Time, error) {
	return p.gatherVec(now, addrs, sizes, false)
}

// GatherOneSided implements transport.Link: the same placement-aware
// splitting as GatherTwoSided, but each node's share travels as one
// doorbell-batched chain of one-sided reads. A gather spanning the cluster
// still pays one message per involved link.
func (p *Pool) GatherOneSided(now sim.Time, addrs []uint64, sizes []int) ([]byte, sim.Time, error) {
	return p.gatherVec(now, addrs, sizes, true)
}

// gatherVec routes pieces to their serving nodes and issues one vectored
// message per node — two-sided or doorbell-batched one-sided. Failover and
// stale handling are identical for both flavors.
func (p *Pool) gatherVec(now sim.Time, addrs []uint64, sizes []int, oneSided bool) ([]byte, sim.Time, error) {
	total := 0
	var segs []seg
	p.mu.Lock()
	for i, a := range addrs {
		ss, err := p.segments(a, sizes[i])
		if err != nil {
			p.mu.Unlock()
			return nil, now, err
		}
		for _, s := range ss {
			s.at += total
			segs = append(segs, s)
		}
		total += sizes[i]
	}
	p.mu.Unlock()

	out := make([]byte, total)
	// Route each segment, then batch per node (ascending node order for a
	// deterministic issue sequence).
	chosen := make([]int, len(segs)) // serving home index per segment
	byNode := make(map[int][]int)    // node -> segment indices, in order
	for i, s := range segs {
		hi, err := p.chooseHome(now, s.entry.Homes)
		if err != nil {
			return nil, now, fmt.Errorf("cluster: gather [%#x,+%d): every home wiped or dark: %w",
				s.entry.VBase+s.off, s.n, err)
		}
		chosen[i] = hi
		node := s.entry.Homes[hi].Node
		byNode[node] = append(byNode[node], i)
	}
	nodesInUse := make([]int, 0, len(byNode))
	for node := range byNode {
		nodesInUse = append(nodesInUse, node)
	}
	sortInts(nodesInUse)

	done := now
	for _, node := range nodesInUse {
		idxs := byNode[node]
		na := make([]uint64, len(idxs))
		ns := make([]int, len(idxs))
		for j, i := range idxs {
			s := segs[i]
			na[j] = s.entry.Homes[chosen[i]].Base + s.off
			ns[j] = s.n
		}
		var data []byte
		var d sim.Time
		var err error
		if oneSided {
			data, d, err = p.nodes[node].tr.GatherOneSided(now, na, ns)
		} else {
			data, d, err = p.nodes[node].tr.GatherTwoSided(now, na, ns)
		}
		if err == nil && p.isStale(node) {
			err = errStale // wipe fired during the batch: zeros under valid CRC
		}
		if err != nil {
			// Batched path failed — recover piece by piece with failover.
			for _, i := range idxs {
				s := segs[i]
				d2, err2 := p.readSegment(now, s, out[s.at:s.at+s.n])
				if err2 != nil {
					return nil, now, err2
				}
				if d2 > done {
					done = d2
				}
			}
			continue
		}
		off := 0
		for _, i := range idxs {
			s := segs[i]
			copy(out[s.at:s.at+s.n], data[off:off+s.n])
			off += s.n
			primary := s.entry.Homes[0].Node
			p.noteRead(now, node, s.n, node != primary, primary)
		}
		if d > done {
			done = d
		}
	}
	return out, done, nil
}

// ScatterTwoSided implements transport.Link: every piece is replicated to
// all its homes, batched into one two-sided message per node. A segment
// whose every home refused its batch is retried through the one-sided
// fan-out before the scatter fails.
func (p *Pool) ScatterTwoSided(now sim.Time, addrs []uint64, pieces [][]byte) (sim.Time, error) {
	return p.scatterVec(now, addrs, pieces, false)
}

// ScatterWrite implements transport.Link: placement-aware splitting like
// ScatterTwoSided, but each node's share travels as one doorbell-batched
// chain of one-sided writes — the pool-wide vehicle of the runtime's
// coalesced write-back drain. Replication, staleness marking, and the
// per-segment retry are identical to the two-sided flavor.
func (p *Pool) ScatterWrite(now sim.Time, addrs []uint64, pieces [][]byte) (sim.Time, error) {
	return p.scatterVec(now, addrs, pieces, true)
}

// scatterVec replicates every piece to all its homes, one vectored message
// per node, two-sided or doorbell-batched one-sided.
func (p *Pool) scatterVec(now sim.Time, addrs []uint64, pieces [][]byte, oneSided bool) (sim.Time, error) {
	type placed struct {
		s    seg
		data []byte
	}
	var all []placed
	p.mu.Lock()
	for i, a := range addrs {
		ss, err := p.segments(a, len(pieces[i]))
		if err != nil {
			p.mu.Unlock()
			return now, err
		}
		for _, s := range ss {
			all = append(all, placed{s: s, data: pieces[i][s.at : s.at+s.n]})
		}
	}
	p.mu.Unlock()

	type batch struct {
		addrs  []uint64
		pieces [][]byte
		segIdx []int
	}
	byNode := make(map[int]*batch)
	for i, pl := range all {
		for _, h := range pl.s.entry.Homes {
			b := byNode[h.Node]
			if b == nil {
				b = &batch{}
				byNode[h.Node] = b
			}
			b.addrs = append(b.addrs, h.Base+pl.s.off)
			b.pieces = append(b.pieces, pl.data)
			b.segIdx = append(b.segIdx, i)
		}
	}
	nodesInUse := make([]int, 0, len(byNode))
	for node := range byNode {
		nodesInUse = append(nodesInUse, node)
	}
	sortInts(nodesInUse)

	landed := make([]int, len(all))
	done := now
	var failedNodes []int
	for _, node := range nodesInUse {
		b := byNode[node]
		var d sim.Time
		var err error
		if oneSided {
			d, err = p.nodes[node].tr.ScatterWrite(now, b.addrs, b.pieces)
		} else {
			d, err = p.nodes[node].tr.ScatterTwoSided(now, b.addrs, b.pieces)
		}
		if err != nil {
			failedNodes = append(failedNodes, node)
			continue
		}
		for _, i := range b.segIdx {
			landed[i]++
			p.noteWrite(node, len(all[i].data))
		}
		if d > done {
			done = d
		}
	}
	for i, pl := range all {
		if landed[i] > 0 {
			continue
		}
		d, err := p.writeSegment(now, pl.s, pl.data)
		if err != nil {
			return now, err
		}
		if d > done {
			done = d
		}
	}
	// Nodes that refused their batch missed writes their peers accepted:
	// stale until re-synced.
	for _, node := range failedNodes {
		p.markStale(node)
	}
	return done, nil
}

// Call implements transport.Link. Offloaded procedures are registered on
// every node; the pool routes the RPC itself to node 0 (the runtime's
// offload engine moves operand bytes via the placement-aware data path, so
// the RPC control message is the only node-0 affinity).
func (p *Pool) Call(now sim.Time, name string, args []byte) ([]byte, sim.Time, error) {
	return p.nodes[0].tr.Call(now, name, args)
}

// Flush implements transport.Link: applies every pending memory wipe (so
// "who is stale" has a deterministic answer), drains every node's overlay
// queue, then re-syncs wiped nodes from healthy replicas. Completion is
// the max across nodes and the re-sync copies.
func (p *Pool) Flush(now sim.Time) (sim.Time, error) {
	for _, n := range p.nodes {
		if n.inj != nil {
			n.inj.Sync(now)
		}
	}
	done := now
	var firstErr error
	for _, n := range p.nodes {
		d, err := n.tr.Flush(now)
		if err != nil && firstErr == nil {
			firstErr = err
		}
		if d > done {
			done = d
		}
	}
	if d := p.resyncStale(now); d > done {
		done = d
	}
	return done, firstErr
}

// BreakerOpen implements transport.Link: the pool reports degraded when
// ANY node's breaker is open. Conservative — the caches switch to local
// write-allocate even for sections homed on healthy nodes — but safe, and
// a single dark node is exactly when write pressure must stay local.
func (p *Pool) BreakerOpen(now sim.Time) bool {
	for _, n := range p.nodes {
		if n.tr.BreakerOpen(now) {
			return true
		}
	}
	return false
}

// Stats implements transport.Link: the per-node transport counters summed.
func (p *Pool) Stats() transport.Stats {
	var sum transport.Stats
	for _, n := range p.nodes {
		sum.Add(n.tr.Stats())
	}
	return sum
}

// BytesMoved implements transport.Link: total bytes across every link.
func (p *Pool) BytesMoved() int64 {
	var sum int64
	for _, n := range p.nodes {
		sum += n.tr.BytesMoved()
	}
	return sum
}

// Messages implements transport.Link: total transfers across every link.
func (p *Pool) Messages() int64 {
	var sum int64
	for _, n := range p.nodes {
		sum += n.tr.Messages()
	}
	return sum
}

// Failovers returns the pool-wide count of reads served by a replica
// because the primary was dark, wiped, or erroring.
func (p *Pool) Failovers() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	var sum int64
	for _, n := range p.nodes {
		sum += n.stats.Failovers
	}
	return sum
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
