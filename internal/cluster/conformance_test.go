package cluster_test

import (
	"testing"

	"mira/internal/cluster"
	"mira/internal/farmem"
	"mira/internal/faults"
	"mira/internal/netmodel"
	"mira/internal/transport/transporttest"
)

// TestClusterPerNodeBackendConformance runs the shared Backend contract
// against every per-node backend of a pool — both the raw node backends
// and one wrapped in a (quiet) fault domain — completing the three-way
// alignment with the plain and fault-injected backends.
func TestClusterPerNodeBackendConformance(t *testing.T) {
	const nodes = 3
	for i := 0; i < nodes; i++ {
		i := i
		t.Run(nodeName(i), func(t *testing.T) {
			transporttest.Conformance(t, func(t *testing.T) transporttest.Instance {
				p, err := cluster.New(cluster.Options{
					Nodes:    nodes,
					Replicas: 2,
					Seed:     1,
					NodeCfg:  farmem.NodeConfig{Capacity: 1 << 24, CPUSlowdown: 3},
					Net:      netmodel.DefaultConfig(),
					// A fault domain on node 0 that injects nothing except
					// determinism-preserving delays.
					Faults: []*faults.Config{{Seed: 11, DelayRate: 0.25, DelayMin: 1000, DelayMax: 5000}},
				})
				if err != nil {
					t.Fatal(err)
				}
				return transporttest.Instance{Backend: p.Backend(i), Node: p.FarNode(i)}
			})
		})
	}
}

func nodeName(i int) string {
	return "node" + string(rune('0'+i))
}
