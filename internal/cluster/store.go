package cluster

import (
	"fmt"

	"mira/internal/farmem"
	"mira/internal/sim"
)

// This file is the pool's direct (untimed) store interface — the
// counterpart of calling farmem.Node.Read/Write directly in single-node
// mode. The runtime uses it for workload setup (InitObject), result
// extraction (DumpObject), and offloaded-procedure memory access, where
// the timing is charged separately by the offload model.

// Read copies len(buf) bytes at pool virtual address addr from the first
// home that still has its memory. A range whose every home was wiped is
// unrecoverable and errors.
func (p *Pool) Read(addr uint64, buf []byte) error {
	p.mu.Lock()
	segs, err := p.segments(addr, len(buf))
	if err != nil {
		p.mu.Unlock()
		return err
	}
	type pick struct {
		node int
		base uint64
		s    seg
	}
	picks := make([]pick, 0, len(segs))
	for _, s := range segs {
		found := false
		for _, h := range s.entry.Homes {
			if p.nodes[h.Node].stale {
				continue
			}
			picks = append(picks, pick{node: h.Node, base: h.Base, s: s})
			found = true
			break
		}
		if !found {
			p.mu.Unlock()
			return fmt.Errorf("cluster: read [%#x,+%d): every replica lost its memory", addr, len(buf))
		}
	}
	p.mu.Unlock()
	for _, pk := range picks {
		if err := p.nodes[pk.node].fm.Read(pk.base+pk.s.off, buf[pk.s.at:pk.s.at+pk.s.n]); err != nil {
			return err
		}
	}
	return nil
}

// Write copies buf to pool virtual address addr on every home, keeping the
// replicas identical.
func (p *Pool) Write(addr uint64, buf []byte) error {
	p.mu.Lock()
	segs, err := p.segments(addr, len(buf))
	p.mu.Unlock()
	if err != nil {
		return err
	}
	for _, s := range segs {
		for _, h := range s.entry.Homes {
			if err := p.nodes[h.Node].fm.Write(h.Base+s.off, buf[s.at:s.at+s.n]); err != nil {
				return err
			}
		}
	}
	return nil
}

// Register installs an offloadable procedure on every node, so a
// procedure can run wherever its operands live.
func (p *Pool) Register(name string, proc farmem.Proc) {
	for _, n := range p.nodes {
		n.fm.Register(name, proc)
	}
}

// CPUSlowdown reports the far-side compute penalty. Nodes share one
// NodeCfg, so node 0 speaks for the cluster.
func (p *Pool) CPUSlowdown() float64 { return p.nodes[0].fm.CPUSlowdown() }

// Sync applies every pending scheduled wipe at or before now on every
// fault domain, so stale flags are deterministic before a recovery pass.
func (p *Pool) Sync(now sim.Time) {
	for _, n := range p.nodes {
		if n.inj != nil {
			n.inj.Sync(now)
		}
	}
}

// AllocatedBytes sums live allocations across the cluster (replicas
// counted once per copy, matching what the nodes actually hold).
func (p *Pool) AllocatedBytes() uint64 {
	var sum uint64
	for _, n := range p.nodes {
		sum += n.fm.AllocatedBytes()
	}
	return sum
}
