package cluster

import (
	"bytes"
	"testing"

	"mira/internal/farmem"
	"mira/internal/faults"
	"mira/internal/netmodel"
	"mira/internal/sim"
	"mira/internal/transport"
)

func testOptions(nodes, replicas int) Options {
	return Options{
		Nodes:       nodes,
		Replicas:    replicas,
		Seed:        1,
		StripeBytes: 4096,
		NodeCfg:     farmem.NodeConfig{Capacity: 1 << 24, CPUSlowdown: 3},
		Net:         netmodel.DefaultConfig(),
	}
}

func mustPool(t *testing.T, opts Options) *Pool {
	t.Helper()
	p, err := New(opts)
	if err != nil {
		t.Fatalf("cluster.New: %v", err)
	}
	return p
}

func fill(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = seed + byte(i*7)
	}
	return b
}

func TestPlacementDeterminism(t *testing.T) {
	build := func() []byte {
		p := mustPool(t, testOptions(4, 2))
		if _, err := p.Alloc(64 << 10); err != nil {
			t.Fatal(err)
		}
		for sec := uint16(1); sec <= 5; sec++ {
			if _, err := p.AllocSection(sec, 8<<10); err != nil {
				t.Fatal(err)
			}
		}
		j, err := p.TableJSON()
		if err != nil {
			t.Fatal(err)
		}
		return j
	}
	a, b := build(), build()
	if !bytes.Equal(a, b) {
		t.Fatalf("placement table not byte-stable across identical builds:\n%s\nvs\n%s", a, b)
	}
}

func TestStripingSpreadsAcrossNodes(t *testing.T) {
	p := mustPool(t, testOptions(4, 1))
	if _, err := p.Alloc(1 << 20); err != nil { // 256 stripes of 4 KiB
		t.Fatal(err)
	}
	used := map[int]int{}
	for _, e := range p.Table() {
		used[e.Homes[0].Node]++
	}
	for node := 0; node < 4; node++ {
		if used[node] == 0 {
			t.Fatalf("node %d received no stripes: distribution %v", node, used)
		}
	}
}

func TestCapacityWeightedPlacement(t *testing.T) {
	opts := testOptions(2, 1)
	opts.Capacities = []uint64{1 << 26, 1 << 22} // node 0 is 16x larger
	p := mustPool(t, opts)
	if _, err := p.Alloc(2 << 20); err != nil {
		t.Fatal(err)
	}
	used := map[int]int{}
	for _, e := range p.Table() {
		used[e.Homes[0].Node]++
	}
	if used[0] <= used[1] {
		t.Fatalf("16x-capacity node got %d stripes vs %d — weighting not applied", used[0], used[1])
	}
}

func TestPlacementNeverOvercommitsNode(t *testing.T) {
	opts := testOptions(3, 1)
	opts.Capacities = []uint64{1 << 22, 1 << 22, 64 << 10} // one tiny node
	p := mustPool(t, opts)
	// Allocate almost the full cluster: the tiny node must saturate and
	// the rendezvous ranking must fall through to the big nodes.
	for i := 0; i < 100; i++ {
		if _, err := p.Alloc(64 << 10); err != nil {
			break
		}
	}
	for i := 0; i < p.NodeCount(); i++ {
		if got, cap := p.FarNode(i).AllocatedBytes(), p.FarNode(i).Capacity(); got > cap {
			t.Fatalf("node %d over-committed: %d bytes in %d capacity", i, got, cap)
		}
	}
}

func TestLinkRoundTripAcrossStripes(t *testing.T) {
	p := mustPool(t, testOptions(4, 2))
	base, err := p.Alloc(64 << 10)
	if err != nil {
		t.Fatal(err)
	}
	// A write spanning many stripes, offset so it straddles boundaries.
	data := fill(40<<10, 9)
	addr := base + 1000
	if _, err := p.WriteOneSided(0, addr, data); err != nil {
		t.Fatalf("write: %v", err)
	}
	got := make([]byte, len(data))
	if _, err := p.ReadOneSided(0, addr, got); err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("round-trip across stripes corrupted data")
	}
}

func TestGatherScatterSplitAcrossNodes(t *testing.T) {
	p := mustPool(t, testOptions(4, 1))
	base, err := p.Alloc(64 << 10)
	if err != nil {
		t.Fatal(err)
	}
	// Scatter three pieces, one crossing a stripe boundary.
	addrs := []uint64{base + 100, base + 4096 - 50, base + 3*4096}
	pieces := [][]byte{fill(64, 1), fill(128, 2), fill(256, 3)}
	if _, err := p.ScatterTwoSided(0, addrs, pieces); err != nil {
		t.Fatalf("scatter: %v", err)
	}
	sizes := []int{64, 128, 256}
	data, _, err := p.GatherTwoSided(0, addrs, sizes)
	if err != nil {
		t.Fatalf("gather: %v", err)
	}
	want := append(append(append([]byte{}, pieces[0]...), pieces[1]...), pieces[2]...)
	if !bytes.Equal(data, want) {
		t.Fatalf("gather returned wrong bytes after cross-node scatter")
	}
}

func TestShardingIsMeasurableSpeedup(t *testing.T) {
	run := func(nodes int) sim.Time {
		p := mustPool(t, testOptions(nodes, 1))
		base, err := p.Alloc(1 << 20)
		if err != nil {
			t.Fatal(err)
		}
		data := fill(256<<10, 5)
		done, err := p.WriteOneSided(0, base, data)
		if err != nil {
			t.Fatal(err)
		}
		return done
	}
	t1, t4 := run(1), run(4)
	if t4 >= t1 {
		t.Fatalf("4-node write not faster than 1-node: %v vs %v — per-link bandwidth not independent", t4, t1)
	}
}

// primaryOf finds the primary node of the entry covering addr.
func primaryOf(t *testing.T, p *Pool, addr uint64) int {
	t.Helper()
	for _, e := range p.Table() {
		if addr >= e.VBase && addr < e.VBase+e.Size {
			return e.Homes[0].Node
		}
	}
	t.Fatalf("no placement entry covers %#x", addr)
	return -1
}

// buildFaulted builds the same deterministic placement twice: once clean
// to learn which node is the primary for the probe address, then again
// with a fault schedule installed on that node.
func buildFaulted(t *testing.T, opts Options, size uint64, cfg faults.Config) (p *Pool, base uint64, victim int) {
	t.Helper()
	clean := mustPool(t, opts)
	b, err := clean.Alloc(size)
	if err != nil {
		t.Fatal(err)
	}
	victim = primaryOf(t, clean, b)
	opts.Faults = make([]*faults.Config, opts.Nodes)
	opts.Faults[victim] = &cfg
	p = mustPool(t, opts)
	b2, err := p.Alloc(size)
	if err != nil {
		t.Fatal(err)
	}
	if b2 != b || primaryOf(t, p, b2) != victim {
		t.Fatalf("placement not reproducible across identical builds")
	}
	return p, b, victim
}

func TestFailoverDuringCrash(t *testing.T) {
	opts := testOptions(3, 2)
	pol := transport.DefaultPolicy()
	pol.MaxAttempts = 1 // fail fast: the pool's replicas are the retry
	pol.BreakerThreshold = 1
	pol.BreakerCooldown = 10 * sim.Millisecond
	opts.Policy = &pol
	p, base, victim := buildFaulted(t, opts, 8192, faults.Config{
		Seed: 3,
		Schedule: []faults.Event{
			{At: sim.Time(100 * sim.Microsecond), Kind: faults.Crash},
			{At: sim.Time(5 * sim.Millisecond), Kind: faults.Restart},
		},
	})
	data := fill(4096, 21)
	if _, err := p.WriteOneSided(0, base, data); err != nil {
		t.Fatal(err)
	}
	// Read while the victim is down: must be served by the replica.
	got := make([]byte, 4096)
	at := sim.Time(200 * sim.Microsecond)
	if _, err := p.ReadOneSided(at, base, got); err != nil {
		t.Fatalf("read during crash did not fail over: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("failover read returned wrong bytes")
	}
	// Second read: the victim's breaker is open, so failover is immediate.
	if _, err := p.ReadOneSided(at+sim.Time(10*sim.Microsecond), base, got); err != nil {
		t.Fatal(err)
	}
	ns := p.NodeStats()
	if ns[victim].Failovers == 0 {
		t.Fatalf("no failovers recorded against the crashed primary: %+v", ns[victim])
	}
	if p.Failovers() == 0 {
		t.Fatalf("pool-wide failover counter stayed zero")
	}
}

func TestWipeResyncRestoresPrimary(t *testing.T) {
	opts := testOptions(3, 2)
	pol := transport.DefaultPolicy()
	pol.MaxAttempts = 2
	pol.BreakerThreshold = 1
	pol.BreakerCooldown = 50 * sim.Microsecond // breaker closed again by the probe read
	opts.Policy = &pol
	p, base, victim := buildFaulted(t, opts, 8192, faults.Config{
		Seed: 3,
		Schedule: []faults.Event{
			{At: sim.Time(100 * sim.Microsecond), Kind: faults.Crash, LoseMemory: true},
			{At: sim.Time(200 * sim.Microsecond), Kind: faults.Restart},
		},
	})
	data := fill(4096, 77)
	if _, err := p.WriteOneSided(0, base, data); err != nil {
		t.Fatal(err)
	}
	// Probe well after the restart: the lazy wipe fires during this read,
	// the zeroed (but checksum-valid) payload is discarded via the stale
	// flag, the replica serves, and re-sync restores the primary.
	got := make([]byte, 4096)
	at := sim.Time(1 * sim.Millisecond)
	if _, err := p.ReadOneSided(at, base, got); err != nil {
		t.Fatalf("post-wipe read: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("post-wipe read returned wiped bytes — stale detection failed")
	}
	ns := p.NodeStats()
	if ns[victim].Resyncs == 0 {
		t.Fatalf("wiped node was never re-synced: %+v", ns[victim])
	}
	if ns[victim].Faults.Wipes == 0 {
		t.Fatalf("wipe never applied: %+v", ns[victim].Faults)
	}
	// After re-sync the primary serves directly: read again and confirm
	// the node's own memory has the bytes back.
	probe := make([]byte, 4096)
	e := p.Table()[0]
	if err := p.FarNode(victim).Read(e.Homes[0].Base, probe); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(probe, data) {
		t.Fatalf("re-sync did not restore the wiped node's memory")
	}
}

func TestReadRepairAfterPrimaryReadFailure(t *testing.T) {
	opts := testOptions(2, 2)
	pol := transport.DefaultPolicy()
	pol.MaxAttempts = 1       // a single corrupted attempt fails the read
	pol.BreakerThreshold = 50 // breaker never opens — the node stays "up"
	opts.Policy = &pol
	p, base, victim := buildFaulted(t, opts, 4096, faults.Config{
		Seed:        9,
		CorruptRate: 1, // every primary read is corrupted in flight
	})
	data := fill(512, 33)
	if _, err := p.WriteOneSided(0, base, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 512)
	if _, err := p.ReadOneSided(sim.Time(10*sim.Microsecond), base, got); err != nil {
		t.Fatalf("read with corrupting primary: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("replica read returned wrong bytes")
	}
	ns := p.NodeStats()
	if ns[victim].Repairs == 0 {
		t.Fatalf("no read-repair pushed to the failed primary: %+v", ns[victim])
	}
	if ns[victim].Net.Corruptions == 0 {
		t.Fatalf("corruption was configured but never detected")
	}
}

func TestFlushSyncsPendingWipesAndResyncs(t *testing.T) {
	opts := testOptions(2, 2)
	p, base, victim := buildFaulted(t, opts, 4096, faults.Config{
		Seed: 5,
		Schedule: []faults.Event{
			{At: sim.Time(100 * sim.Microsecond), Kind: faults.Crash, LoseMemory: true},
			{At: sim.Time(200 * sim.Microsecond), Kind: faults.Restart},
		},
	})
	data := fill(4096, 55)
	if _, err := p.WriteOneSided(0, base, data); err != nil {
		t.Fatal(err)
	}
	// No operation has touched the victim since the restart: the wipe is
	// still pending. Flush must apply it and re-sync from the replica.
	if _, err := p.Flush(sim.Time(1 * sim.Millisecond)); err != nil {
		t.Fatalf("flush: %v", err)
	}
	ns := p.NodeStats()
	if ns[victim].Faults.Wipes == 0 {
		t.Fatalf("flush did not force the pending wipe")
	}
	if ns[victim].Resyncs == 0 {
		t.Fatalf("flush did not re-sync the wiped node")
	}
	probe := make([]byte, 4096)
	e := p.Table()[0]
	var vb uint64
	for _, h := range e.Homes {
		if h.Node == victim {
			vb = h.Base
		}
	}
	if err := p.FarNode(victim).Read(vb, probe); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(probe, data) {
		t.Fatalf("flush re-sync did not restore wiped memory")
	}
}

func TestSingleReplicaWipeLosesData(t *testing.T) {
	opts := testOptions(2, 1) // R=1: no replica to recover from
	p, base, _ := buildFaulted(t, opts, 4096, faults.Config{
		Seed: 5,
		Schedule: []faults.Event{
			{At: sim.Time(100 * sim.Microsecond), Kind: faults.Crash, LoseMemory: true},
			{At: sim.Time(200 * sim.Microsecond), Kind: faults.Restart},
		},
	})
	if _, err := p.WriteOneSided(0, base, fill(4096, 11)); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4096)
	_, err := p.ReadOneSided(sim.Time(1*sim.Millisecond), base, got)
	if err == nil {
		t.Fatalf("R=1 wipe silently served zeros — stale data must surface as an error")
	}
}

func TestDirectStoreRoundTrip(t *testing.T) {
	p := mustPool(t, testOptions(4, 2))
	base, err := p.Alloc(32 << 10)
	if err != nil {
		t.Fatal(err)
	}
	data := fill(20<<10, 3)
	if err := p.Write(base+500, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := p.Read(base+500, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("direct store round-trip corrupted data")
	}
}

func TestUnmappedAddressErrors(t *testing.T) {
	p := mustPool(t, testOptions(2, 1))
	buf := make([]byte, 8)
	if _, err := p.ReadOneSided(0, farmem.DefaultBase+12345, buf); err == nil {
		t.Fatalf("read of unallocated pool address succeeded")
	}
}
