// Package workload defines the interface between applications and the
// systems that run them (Mira's planner/runtime and the FastSwap, Leap, and
// AIFM baselines). Every app exposes its program, loads its data through
// ObjectIniter, and verifies results through ObjectDumper — so one app
// definition runs identically on four far-memory systems and the
// integration tests can require bit-identical outputs.
package workload

import (
	"mira/internal/exec"
	"mira/internal/ir"
)

// ObjectIniter loads initial object contents (setup is untimed).
type ObjectIniter interface {
	InitObject(name string, data []byte) error
}

// ObjectDumper reads back an object's final far-memory contents.
type ObjectDumper interface {
	DumpObject(name string) ([]byte, error)
}

// Workload is one benchmark application.
type Workload interface {
	// Name labels the workload.
	Name() string
	// Program returns the canonical (untransformed) IR.
	Program() *ir.Program
	// Init loads workload data.
	Init(t ObjectIniter) error
	// Params binds the entry function's parameters.
	Params() map[string]exec.Value
	// FullMemoryBytes is the workload's far-data footprint — the 100%
	// point of the local-memory axis.
	FullMemoryBytes() int64
}

// Verifier is implemented by workloads that can check their own output.
type Verifier interface {
	Verify(d ObjectDumper) error
}
