package planner

import (
	"testing"

	"mira/internal/apps/graphtraverse"
	"mira/internal/cluster"
)

func TestPlaneModeValidation(t *testing.T) {
	w := graphtraverse.New(graphtraverse.Config{Edges: 512, Nodes: 128, Passes: 1, Seed: 1})
	cases := []struct {
		name string
		opts Options
	}{
		{"unknown", Options{Plane: "both"}},
		{"cluster", Options{Plane: "hybrid", Cluster: &cluster.Options{Nodes: 2}}},
		{"line-noseparation", Options{Plane: "line", DisableSeparation: true}},
		{"hybrid-noseparation", Options{Plane: "hybrid", DisableSeparation: true}},
	}
	for _, c := range cases {
		if _, err := Plan(w, c.opts); err == nil {
			t.Errorf("%s: Plan accepted invalid plane options", c.name)
		}
	}
	// page + DisableSeparation is fine: page IS the no-separation plan.
	if _, err := Plan(w, Options{Plane: "page", DisableSeparation: true}); err != nil {
		t.Errorf("page+DisableSeparation rejected: %v", err)
	}
}

// TestPlaneModesRace pins the tentpole gate at the planner level: the hybrid
// arm never loses to either pure plane, because its baseline is the page
// arm's run and its line candidate is the line arm's.
func TestPlaneModesRace(t *testing.T) {
	w := graphtraverse.New(graphtraverse.Config{Edges: 8192, Nodes: 1024, Passes: 1, Seed: 7})
	budget := w.FullMemoryBytes() / 4
	times := map[string]*Result{}
	for _, mode := range []string{"page", "line", "hybrid"} {
		opts := graphOpts(budget)
		opts.Plane = mode
		res, err := Plan(w, opts)
		if err != nil {
			t.Fatalf("Plane=%s: %v", mode, err)
		}
		if res.Planes == nil {
			t.Fatalf("Plane=%s: no plane assignment", mode)
		}
		if !res.Config.Hybrid {
			t.Fatalf("Plane=%s: accepted config is not hybrid-layout", mode)
		}
		times[mode] = res
		t.Logf("Plane=%s: final %v, planes %v", mode, res.FinalTime, res.Planes)
	}
	if h := times["hybrid"].FinalTime; h > times["page"].FinalTime || h > times["line"].FinalTime {
		t.Fatalf("hybrid (%v) lost to a pure plane (page %v, line %v)",
			h, times["page"].FinalTime, times["line"].FinalTime)
	}
	// The page mode serves every far object from the paged plane.
	for name, p := range times["page"].Planes {
		if p == "line" {
			t.Fatalf("Plane=page placed %s on the line plane", name)
		}
	}
	// Pure-page on the hybrid layout must time exactly like the classic
	// swap baseline: the all-swap layouts are byte-identical.
	if bt := times["page"].BaselineTime; times["page"].FinalTime != bt {
		t.Fatalf("page mode final %v != its baseline %v", times["page"].FinalTime, bt)
	}
	classic, err := Plan(w, func() Options { o := graphOpts(budget); o.DisableSeparation = true; return o }())
	if err != nil {
		t.Fatal(err)
	}
	if classic.BaselineTime != times["page"].BaselineTime {
		t.Fatalf("hybrid-layout page baseline %v != classic swap baseline %v",
			times["page"].BaselineTime, classic.BaselineTime)
	}
	if classic.Planes != nil {
		t.Fatal("classic plan (no Plane mode) reported plane assignments")
	}
}
