package planner

import (
	"fmt"
	"sort"

	"mira/internal/analysis"
	"mira/internal/codegen"
	"mira/internal/ir"
	"mira/internal/profile"
	"mira/internal/rt"
	"mira/internal/sim"
	"mira/internal/trace"
)

// validatePlane checks the Options.Plane mode against the rest of the
// options. Every plane mode plans on the unified hybrid heap layout, which
// is single-node; "line" and "hybrid" additionally need cache sections.
func validatePlane(opts Options) error {
	switch opts.Plane {
	case "", "page", "line", "hybrid":
	default:
		return fmt.Errorf("planner: unknown Plane mode %q (want page, line, or hybrid)", opts.Plane)
	}
	if opts.Plane == "" {
		return nil
	}
	if opts.Cluster != nil {
		return fmt.Errorf("planner: Plane=%q uses the unified hybrid layout, which is single-node (drop Cluster)", opts.Plane)
	}
	if opts.Plane != "page" && opts.DisableSeparation {
		return fmt.Errorf("planner: Plane=%q needs cache sections, but DisableSeparation is set", opts.Plane)
	}
	return nil
}

// lineCandidate builds the pure-line-plane configuration: analyze every
// function and every non-local object, derive sections for everything
// analyzable, and compile against the plan. Both the "line" arm and the
// "hybrid" arm build their line candidate through this one helper, from the
// same profile, so the two arms' candidates are identical by construction.
func lineCandidate(w Workload, prog *ir.Program, col *profile.Collector, opts Options) (rt.Config, *codegen.Plan, *ir.Program, *analysis.Report, error) {
	var funcs []string
	for _, f := range prog.Funcs {
		funcs = append(funcs, f.Name)
	}
	sort.Strings(funcs)
	var objs []string
	for _, o := range prog.Objects {
		if !o.Local {
			objs = append(objs, o.Name)
		}
	}
	sort.Strings(objs)
	report, err := analysis.Analyze(prog, funcs, objs)
	if err != nil {
		return rt.Config{}, nil, nil, nil, err
	}
	cfg, plan, _, err := buildConfig(w, prog, report, objs, col, opts)
	if err != nil {
		return rt.Config{}, nil, nil, nil, err
	}
	cfg.Hybrid = true
	compiled, err := codegen.Apply(prog, plan)
	if err != nil {
		return rt.Config{}, nil, nil, nil, err
	}
	return cfg, plan, compiled, report, nil
}

// pageWorthy reports whether the analysis classifies an object as dense
// sequential/strided — the access shapes the paged plane's large fetch
// granularity and cluster readahead serve at least as well as lines, without
// per-access lookup cost. Sparse shapes (indirect chases, random) stay on
// the line-granular plane, where a 4 KB fetch would be mostly waste.
func pageWorthy(m *analysis.ObjectAccess) bool {
	if m == nil {
		return false
	}
	return m.Pattern == analysis.PatternSequential || m.Pattern == analysis.PatternStrided
}

// classifiedCandidate derives the per-object plane split from the line
// candidate: section-placed objects whose merged pattern is dense move to
// the paged plane (their placements revert to the swap default), sections
// emptied by the moves are dropped with the surviving sections reindexed,
// and the freed section bytes return to the swap pool. Returns nil when the
// split would change nothing (no dense section members, or no sections).
func classifiedCandidate(cfg rt.Config, report *analysis.Report) *rt.Config {
	if len(cfg.Sections) == 0 {
		return nil
	}
	var moved []string
	for name, pl := range cfg.Placements {
		if pl.Kind == rt.PlaceSection && pageWorthy(report.MergedObject(name)) {
			moved = append(moved, name)
		}
	}
	if len(moved) == 0 {
		return nil
	}
	sort.Strings(moved)

	out := cfg
	out.Placements = make(map[string]rt.Placement, len(cfg.Placements))
	for name, pl := range cfg.Placements {
		out.Placements[name] = pl
	}
	for _, name := range moved {
		delete(out.Placements, name)
	}
	// Drop sections with no members left and remap the survivors' indices.
	members := make([]int, len(cfg.Sections))
	for _, pl := range out.Placements {
		if pl.Kind == rt.PlaceSection {
			members[pl.Section]++
		}
	}
	remap := make([]int, len(cfg.Sections))
	out.Sections = nil
	var freed int64
	for i, spec := range cfg.Sections {
		if members[i] == 0 {
			remap[i] = -1
			freed += spec.Cache.SizeBytes
			continue
		}
		remap[i] = len(out.Sections)
		out.Sections = append(out.Sections, spec)
	}
	for name, pl := range out.Placements {
		if pl.Kind == rt.PlaceSection {
			pl.Section = remap[pl.Section]
			out.Placements[name] = pl
		}
	}
	// The dense objects now page through the swap pool; the bytes their
	// sections held buy pool capacity for them.
	out.SwapPool += freed
	return &out
}

// planeRace is the Plane="line"/"hybrid" phase, replacing the structural
// iterations: race the pure-line candidate (and, for "hybrid", the
// classified per-object split) against the incumbent pure-page baseline.
//
// "line" force-accepts its candidate — that is what the mode means — while
// "hybrid" only ever accepts improvements. Because hybrid's baseline IS the
// page arm's result and its line candidate comes from the same helper as
// the line arm's, hybrid's final time is <= min(page, line) by construction.
func planeRace(w Workload, prog *ir.Program, res *Result, col *profile.Collector, opts Options, ptrc *trace.Buffer, cursor sim.Time) sim.Time {
	lineCfg, linePlan, lineProg, report, err := lineCandidate(w, prog, col, opts)
	if err != nil {
		// No feasible line configuration at this budget: the page baseline
		// stands for every mode.
		ptrc.Instant(cursor, "planner", "plane.line infeasible",
			trace.S("err", err.Error()))
		return cursor
	}
	res.Report = report
	t, _, err := runOnce(w, lineProg, lineCfg, opts, true)
	if err != nil {
		ptrc.Instant(cursor, "planner", "plane.line runtime-rejected",
			trace.S("err", err.Error()))
		return cursor
	}
	verdict := "rolled-back"
	if opts.Plane == "line" || t < res.FinalTime {
		verdict = "accepted"
		res.FinalTime = t
		res.Config = lineCfg
		res.Plan = linePlan
		res.Program = lineProg
	}
	end := cursor.Add(t)
	ptrc.Span(cursor, end, "planner", "plane line",
		trace.I("time_ns", int64(t)), trace.S("result", verdict))
	cursor = end

	if opts.Plane != "hybrid" {
		return cursor
	}
	split := classifiedCandidate(lineCfg, report)
	if split == nil {
		ptrc.Instant(cursor, "planner", "plane.split unchanged")
		return cursor
	}
	t, _, err = runOnce(w, lineProg, *split, opts, true)
	if err != nil {
		ptrc.Instant(cursor, "planner", "plane.split runtime-rejected",
			trace.S("err", err.Error()))
		return cursor
	}
	verdict = "rolled-back"
	if t < res.FinalTime {
		verdict = "accepted"
		res.FinalTime = t
		res.Config = *split
		res.Plan = linePlan
		res.Program = lineProg
	}
	end = cursor.Add(t)
	ptrc.Span(cursor, end, "planner", "plane split",
		trace.I("time_ns", int64(t)), trace.S("result", verdict))
	return end
}

// planeAssignment reports which plane the accepted configuration serves each
// object from: "line" (cache section), "page" (swap pool), or "local".
func planeAssignment(prog *ir.Program, cfg rt.Config) map[string]string {
	out := make(map[string]string, len(prog.Objects))
	for _, o := range prog.Objects {
		pl, placed := cfg.Placements[o.Name]
		switch {
		case o.Local || (placed && pl.Kind == rt.PlaceLocal):
			out[o.Name] = "local"
		case placed && pl.Kind == rt.PlaceSection:
			out[o.Name] = "line"
		default:
			out[o.Name] = "page"
		}
	}
	return out
}
