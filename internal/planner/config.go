package planner

import (
	"fmt"
	"sort"

	"mira/internal/analysis"
	"mira/internal/baselines/fastswap"
	"mira/internal/cache"
	"mira/internal/codegen"
	"mira/internal/exec"
	"mira/internal/farmem"
	"mira/internal/ir"
	"mira/internal/netmodel"
	"mira/internal/profile"
	"mira/internal/rt"
	"mira/internal/sim"
	"mira/internal/solver"
)

// perIterEstimate derives the profiled per-iteration time the prefetch
// distance computation needs: the entry function's non-runtime time divided
// by the largest analyzed trip count.
func perIterEstimate(prog *ir.Program, report *analysis.Report, col *profile.Collector) sim.Duration {
	var trips int64 = 1
	for _, fr := range report.Funcs {
		for _, a := range fr.Objects {
			if a.TripCount > trips {
				trips = a.TripCount
			}
		}
	}
	var nonRT sim.Duration = 50 * sim.Nanosecond
	if rec := col.Func(prog.Entry); rec != nil && rec.Total > rec.Runtime {
		nonRT = rec.Total - rec.Runtime
	}
	per := nonRT / sim.Duration(trips)
	if per < 5*sim.Nanosecond {
		per = 5 * sim.Nanosecond
	}
	if per > 10*sim.Microsecond {
		per = 10 * sim.Microsecond
	}
	return per
}

// sectionDraft is a section under construction.
type sectionDraft struct {
	name      string
	structure cache.Structure
	ways      int
	lineBytes int
	members   []string // object names
	seqLike   bool
	// reused marks sequential sections whose members are scanned more
	// than once: caching their footprint can beat streaming, so they are
	// sized by sampling like non-sequential sections (§4.3) instead of
	// by prefetch window.
	reused bool
	// fixed marks sections already sized (small reused footprints cached
	// whole); the analytic and sampling passes leave them alone.
	fixed     bool
	sizeBytes int64 // filled by sizing
	twoSided  bool
	selFields []string
	interval  [2]int
}

// buildConfig derives the runtime configuration and codegen plan from the
// analysis report and profile (§4.2 cache-section configuration, §4.3
// sizing, §4.5 optimizations, §4.8 offloading).
func buildConfig(w Workload, prog *ir.Program, report *analysis.Report, objs []string, col *profile.Collector, opts Options) (rt.Config, *codegen.Plan, []string, error) {
	tech := opts.Techniques
	merged := map[string]*analysis.ObjectAccess{}
	for _, name := range objs {
		if m := report.MergedObject(name); m != nil && m.Pattern != analysis.PatternNone {
			merged[name] = m
		}
	}
	if len(merged) == 0 {
		return rt.Config{}, nil, nil, fmt.Errorf("planner: no analyzable objects among %v", objs)
	}

	// Group similar patterns into shared sections (§4.1 "we group
	// similar patterns into one section").
	drafts := groupSections(prog, merged, tech, opts.Net)

	// Budget carve-up.
	local := localBytes(prog)
	var unselectedBytes int64
	for _, o := range prog.Objects {
		if o.Local {
			continue
		}
		if _, ok := merged[o.Name]; !ok {
			unselectedBytes += o.SizeBytes()
		}
	}
	remaining := opts.LocalBudget - local
	var pool int64
	if unselectedBytes > 0 {
		// Keep a swap pool for the objects left in the generic swap
		// section: their footprint plus 25% headroom (a pool sized
		// exactly at the working set cycles at the LRU capacity
		// boundary), capped at half the budget.
		pool = unselectedBytes + unselectedBytes/4 + 2*4096
		if min := int64(4 * 4096); pool < min {
			pool = min
		}
		if pool > remaining/2 {
			pool = remaining / 2
		}
		remaining -= pool
	}
	if remaining <= 0 {
		return rt.Config{}, nil, nil, fmt.Errorf("planner: no budget left for sections")
	}

	// Budget-aware line sizing: a 2 KB line is pointless when the whole
	// budget is a few KB.
	for _, d := range drafts {
		eb := elemBytesOf(prog, d.members[0])
		maxLine := int(remaining / 16)
		if maxLine < eb {
			maxLine = eb
		}
		if d.lineBytes > maxLine {
			d.lineBytes = (maxLine / eb) * eb
			if d.lineBytes < eb {
				d.lineBytes = eb
			}
		}
	}

	// Prefetch distances from the profiled per-iteration time (§4.5:
	// "one network round trip earlier than actual access").
	perIter := perIterEstimate(prog, report, col)
	rttLine := opts.Net.RTTEstimate(2048)
	dElems := int64(rttLine / perIter)
	if dElems < 4 {
		dElems = 4
	}
	if dElems > 64 {
		dElems = 64
	}

	// Size sequential sections analytically: enough lines to hold the
	// prefetch window twice over (§4.3: "sequential and strided cache
	// sections only need a small size"), or — for sections serving
	// tensor intrinsics — the largest simultaneous operand working set,
	// so one operator's inputs and output stay co-resident.
	intervals, lastFunc := lifetimeIntervals(prog, merged)

	// Pass 1: small reused objects are cached whole — no tradeoff to
	// sample; large reused footprints will be sized by sampling + ILP.
	for _, d := range drafts {
		d.interval = sectionInterval(d, intervals)
		if !(d.seqLike && d.reused) {
			continue
		}
		var foot int64
		for _, m := range d.members {
			if o, ok := prog.Object(m); ok {
				foot += o.SizeBytes()
			}
		}
		if full := foot + 2*int64(d.lineBytes); full <= remaining/8 {
			d.sizeBytes = full
			d.reused = false
			d.fixed = true
		}
	}

	// Pass 2: size streaming sections analytically — enough lines to hold
	// the prefetch window twice over (§4.3 "sequential and strided cache
	// sections only need a small size"), or, for sections serving tensor
	// intrinsics, the largest simultaneous operand working set so one
	// operator's inputs and output stay co-resident.
	var seqTotal int64
	for _, d := range drafts {
		if !d.seqLike || d.reused || d.fixed {
			continue
		}
		le := int64(1)
		if d.lineBytes > elemBytesOf(prog, d.members[0]) {
			le = int64(d.lineBytes / elemBytesOf(prog, d.members[0]))
		}
		window := dElems/le + 4
		if !tech.NoBatching {
			// Doorbell-batched prefetch lands a whole batch of future
			// lines at once; the section must hold it alongside the
			// regular window.
			window += analysis.DoorbellBatchLines(opts.Net, d.lineBytes, maxBatchLines)
		}
		d.sizeBytes = 2 * window * int64(d.lineBytes) * int64(len(d.members))
		var coRes int64
		for _, m := range d.members {
			if cr := merged[m].CoResidentBytes; cr > coRes {
				coRes = cr
			}
		}
		if coRes > 0 {
			// Tensor-operand section: hold a full operator plus slack.
			need := coRes + coRes/4 + 4*int64(d.lineBytes)
			if need > d.sizeBytes {
				d.sizeBytes = need
			}
			if d.sizeBytes > remaining*3/4 {
				d.sizeBytes = remaining * 3 / 4
			}
		} else if d.sizeBytes > remaining/4 {
			d.sizeBytes = remaining / 4
		}
		if (coRes > 0 || len(d.members) > 1) && d.structure == cache.Direct {
			// Multiple concurrent streams (several member objects, or a
			// tensor operator's operands) through a direct-mapped section
			// conflict-evict each other; set-associativity absorbs the
			// collisions at a small lookup premium (§4.2).
			d.structure = cache.SetAssoc
			if d.ways == 0 {
				d.ways = 4
			}
		}
		if d.sizeBytes < int64(d.lineBytes)*4 {
			d.sizeBytes = int64(d.lineBytes) * 4
		}
		seqTotal += d.sizeBytes
	}
	// Account the pass-1 fixed sections and shrink everything
	// proportionally if the analytic pass overshot.
	for _, d := range drafts {
		if d.fixed {
			seqTotal += d.sizeBytes
		}
	}
	avail := remaining - seqTotal
	if avail < 0 {
		scale := float64(remaining) / float64(2*seqTotal)
		avail = remaining / 2
		for _, d := range drafts {
			if d.seqLike && !d.reused {
				d.sizeBytes = int64(float64(d.sizeBytes) * scale)
				if d.sizeBytes < int64(d.lineBytes) {
					d.sizeBytes = int64(d.lineBytes)
				}
			}
		}
	}

	// Build the codegen plan now — sizing samples run the compiled
	// program.
	plan := buildPlan(prog, merged, drafts, dElems, tech, opts.Net)
	// Lifetime-bounded sections: release each object where its global
	// lifetime ends (§4.1), unless eviction hints are masked (the
	// Fig. 21 breakdown treats releases as part of the hint technique).
	if !tech.NoEvictHints {
		plan.ReleaseAfter = map[string][]string{}
		for name := range merged {
			if fn := lastFunc[name]; fn != "" && fn != prog.Entry {
				plan.ReleaseAfter[fn] = append(plan.ReleaseAfter[fn], name)
			}
		}
		for fn := range plan.ReleaseAfter {
			sort.Strings(plan.ReleaseAfter[fn])
		}
	}
	var offloaded []string
	if opts.EnableOffload {
		offloaded = decideOffloads(prog, report, opts)
		if len(offloaded) > 0 {
			plan.Offload = map[string]bool{}
			for _, f := range offloaded {
				plan.Offload[f] = true
			}
		}
	}

	// Size non-sequential sections — and reused sequential ones, whose
	// footprint-vs-streaming tradeoff only sampling can settle: a single
	// such section takes everything; multiple are sampled and solved
	// (§4.3).
	var nonSeq []*sectionDraft
	for _, d := range drafts {
		if !d.seqLike || d.reused {
			if d.reused {
				d.sizeBytes = 0 // sampling will size it
			}
			nonSeq = append(nonSeq, d)
		}
	}
	seqTotal = 0
	for _, d := range drafts {
		if d.seqLike && !d.reused {
			seqTotal += d.sizeBytes
		}
	}
	avail = remaining - seqTotal
	if minAvail := int64(len(nonSeq)) * 8 * 2048; avail < minAvail && len(nonSeq) > 0 {
		// Streaming sections squeezed the budget dry: scale them back
		// so every sampled section can hold at least a few lines.
		if seqTotal > 0 {
			scale := float64(remaining-minAvail) / float64(seqTotal)
			if scale < 0 {
				scale = 0
			}
			for _, d := range drafts {
				if d.seqLike && !d.reused {
					d.sizeBytes = int64(float64(d.sizeBytes) * scale)
					if d.sizeBytes < int64(d.lineBytes) {
						d.sizeBytes = int64(d.lineBytes)
					}
				}
			}
			seqTotal = 0
			for _, d := range drafts {
				if d.seqLike && !d.reused {
					seqTotal += d.sizeBytes
				}
			}
		}
		avail = remaining - seqTotal
		if avail < int64(len(nonSeq)) {
			return rt.Config{}, nil, nil, fmt.Errorf("planner: budget %d too small for %d sampled sections", opts.LocalBudget, len(nonSeq))
		}
	}
	switch len(nonSeq) {
	case 0:
		// Sequential-only: return unused budget to the swap pool.
		pool += avail
	case 1:
		nonSeq[0].sizeBytes = avail
	default:
		if err := sizeBySampling(w, prog, plan, drafts, nonSeq, avail, pool, opts); err != nil {
			return rt.Config{}, nil, nil, err
		}
	}

	normalizeSizes(drafts, remaining)
	cfg := assembleConfig(prog, drafts, merged, pool, opts)
	return cfg, plan, offloaded, nil
}

// normalizeSizes scales section sizes down proportionally if the carve-up
// overshoots the budget, flooring each section at one line.
func normalizeSizes(drafts []*sectionDraft, remaining int64) {
	var total int64
	for _, d := range drafts {
		if d.sizeBytes < int64(d.lineBytes) {
			d.sizeBytes = int64(d.lineBytes)
		}
		total += d.sizeBytes
	}
	if total <= remaining {
		return
	}
	for _, d := range drafts {
		d.sizeBytes = d.sizeBytes * remaining / total
		if d.sizeBytes < int64(d.lineBytes) {
			d.sizeBytes = int64(d.lineBytes)
		}
	}
	// Floors may still overshoot on absurdly small budgets; shrink lines
	// as the last resort.
	for {
		total = 0
		for _, d := range drafts {
			total += d.sizeBytes
		}
		if total <= remaining {
			return
		}
		shrunk := false
		for _, d := range drafts {
			if d.sizeBytes > int64(d.lineBytes) {
				d.sizeBytes = int64(d.lineBytes)
				shrunk = true
			}
		}
		if !shrunk {
			return // nothing left to give back; Validate will reject
		}
	}
}

// groupSections clusters objects by access pattern (§4.1).
func groupSections(prog *ir.Program, merged map[string]*analysis.ObjectAccess, tech TechniqueMask, net netmodel.Config) []*sectionDraft {
	byKey := map[string]*sectionDraft{}
	var order []string
	names := make([]string, 0, len(merged))
	for n := range merged {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		m := merged[name]
		o, _ := prog.Object(name)
		var key string
		var d sectionDraft
		switch m.Pattern {
		case analysis.PatternSequential, analysis.PatternStrided, analysis.PatternInvariant:
			line := seqLineBytes(o.ElemBytes)
			if m.Scans >= 2 {
				// Re-scanned objects get private sections so the
				// sampling + ILP can trade their footprints off
				// against each other (§4.3); single-pass streams
				// share one small streaming section.
				key = "seqr-" + name
				d = sectionDraft{name: key, structure: cache.Direct, lineBytes: line, seqLike: true, reused: true}
				break
			}
			key = fmt.Sprintf("seq%d", line)
			d = sectionDraft{name: key, structure: cache.Direct, lineBytes: line, seqLike: true}
		case analysis.PatternIndirect:
			key = "ind-" + name // indirect objects get private sections: their
			// footprints and via-chains differ
			d = sectionDraft{name: key, structure: cache.SetAssoc, ways: 4, lineBytes: randLineBytes(o.ElemBytes)}
		default: // PatternRandom
			key = "rand-" + name
			d = sectionDraft{name: key, structure: cache.FullAssoc, lineBytes: randLineBytes(o.ElemBytes)}
		}
		if tech.ForceStructure >= 0 {
			d.structure = cache.Structure(tech.ForceStructure)
			if d.structure == cache.SetAssoc && d.ways == 0 {
				d.ways = 4
			}
		}
		if existing, ok := byKey[key]; ok {
			existing.members = append(existing.members, name)
			continue
		}
		d.members = []string{name}
		byKey[key] = &d
		order = append(order, key)
	}
	out := make([]*sectionDraft, 0, len(order))
	for _, k := range order {
		d := byKey[k]
		// Selective transmission (§4.5): only the accessed fields
		// travel, when they cover less than half the element AND the
		// modeled two-sided gather beats pulling the whole line
		// one-sided — the penalty of the two-sided path (the far CPU
		// assembles the reply) only pays off once the line is large
		// enough that its wire and chunking time dominate.
		if !tech.NoSelective {
			m := merged[d.members[0]]
			if len(d.members) == 1 && m.AccessedBytes > 0 && m.AccessedBytes*2 <= m.ElemBytes && !containsWhole(m.Fields) &&
				net.TwoSidedCost(int(m.AccessedBytes)) < net.OneSidedCost(d.lineBytes) {
				d.twoSided = true
				d.selFields = m.Fields
			}
		}
		out = append(out, d)
	}
	return out
}

func containsWhole(fields []string) bool {
	for _, f := range fields {
		if f == "" {
			return true
		}
	}
	return false
}

// seqLineBytes picks a sequential section's line size: as large as the
// network transmits efficiently (§4.2, Fig. 9's ~2 KB knee), and a multiple
// of the element size.
func seqLineBytes(elemBytes int) int {
	const target = 2048
	if elemBytes >= target {
		return elemBytes
	}
	line := (target / elemBytes) * elemBytes
	return line
}

// randLineBytes picks a random/indirect section's line size: the smallest
// power of two holding one element (§4.2: "128 bytes is the smallest size
// that can hold the accessed data unit").
func randLineBytes(elemBytes int) int {
	line := 64
	for line < elemBytes {
		line *= 2
	}
	return line
}

func elemBytesOf(prog *ir.Program, name string) int {
	o, _ := prog.Object(name)
	return o.ElemBytes
}

// maxBatchLines caps the doorbell-batch depth: past this the wire time of
// the extra lines dwarfs the amortized overheads and the warm-up cost of the
// deeper window stops paying for itself.
const maxBatchLines = 16

// buildPlan assembles the codegen plan from the drafts.
func buildPlan(prog *ir.Program, merged map[string]*analysis.ObjectAccess, drafts []*sectionDraft, dElems int64, tech TechniqueMask, net netmodel.Config) *codegen.Plan {
	plan := &codegen.Plan{
		Objects:               map[string]*codegen.ObjectPlan{},
		FuseLoops:             !tech.NoBatching,
		BatchFusedPrefetch:    !tech.NoBatching,
		SuppressPrefetchStmts: tech.Programmed,
	}
	for _, d := range drafts {
		for _, name := range d.members {
			m := merged[name]
			o, _ := prog.Object(name)
			le := int64(d.lineBytes / o.ElemBytes)
			if le < 1 {
				le = 1
			}
			op := &codegen.ObjectPlan{
				Object:    name,
				Pattern:   m.Pattern,
				LineElems: le,
			}
			if !tech.NoPrefetch {
				switch m.Pattern {
				case analysis.PatternSequential, analysis.PatternStrided:
					op.PrefetchDistance = maxI64(2*dElems, le)
					if !tech.NoBatching {
						// A batch may occupy at most a quarter of the
						// section, or landing it would evict the live
						// window and thrash. Sections still unsized here
						// (reused ones, sized later by sampling) get no
						// batching rather than a guess.
						capLines := int64(0)
						if d.lineBytes > 0 {
							capLines = d.sizeBytes / int64(d.lineBytes)
						}
						if b := analysis.DoorbellBatchLines(net, d.lineBytes, minI64(maxBatchLines, capLines/4)); b >= 2 {
							op.BatchLines = b
						}
					}
				case analysis.PatternIndirect:
					if via := m.IndirectVia; via != "" {
						if _, ok := merged[via]; ok {
							op.PrefetchDistance = dElems
							op.ChainedFrom = via
						}
					}
				}
			}
			if !tech.NoNative && d.seqLike && op.PrefetchDistance > 0 {
				op.Native = true
			}
			if !tech.NoRWOpt && m.SequentialWholeElementWrite {
				op.NoFetch = true
			}
			// Eviction hints mark data dead behind the scan front
			// (§4.5) — only sound when the scope's scan is the
			// object's last use. A re-scanned object (multiple
			// static or dynamic scans) must keep its lines for the
			// next pass.
			if !tech.NoEvictHints && m.LastLoopSequential && d.seqLike && m.Scans <= 1 {
				op.EvictLag = maxI64(2*op.PrefetchDistance, 2*le)
			}
			plan.Objects[name] = op
		}
	}
	return plan
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// decideOffloads applies the §4.8 cost model, never offloading the entry.
func decideOffloads(prog *ir.Program, report *analysis.Report, opts Options) []string {
	params := analysis.OffloadParams{
		Net:            opts.Net,
		ComputeOp:      opts.Cost.ComputeOp,
		RemoteSlowdown: opts.NodeCfg.CPUSlowdown,
		LineBytes:      2048,
	}
	var out []string
	for _, d := range analysis.DecideOffload(prog, report, params) {
		if d.Offload && d.Func != prog.Entry {
			out = append(out, d.Func)
		}
	}
	return out
}

// sizeBySampling profiles each non-sequential section at the sampled size
// ratios and solves the ILP (§4.3).
func sizeBySampling(w Workload, prog *ir.Program, plan *codegen.Plan, all []*sectionDraft, nonSeq []*sectionDraft, avail, pool int64, opts Options) error {
	compiled, err := codegen.Apply(prog, plan)
	if err != nil {
		return err
	}
	problem := solver.Problem{Budget: avail}
	for i, d := range nonSeq {
		sec := solver.Section{Name: d.name, Start: d.interval[0], End: d.interval[1]}
		if sec.End <= sec.Start {
			sec.End = sec.Start + 1
		}
		for _, ratio := range opts.SampleRatios {
			size := int64(float64(avail) * ratio)
			if size < int64(d.lineBytes)*4 {
				size = int64(d.lineBytes) * 4
			}
			overhead, err := sampleRun(w, compiled, prog, all, nonSeq, i, size, avail, pool, opts)
			if err != nil {
				return err
			}
			sec.Candidates = append(sec.Candidates, solver.Candidate{SizeBytes: size, Overhead: overhead})
		}
		problem.Sections = append(problem.Sections, sec)
	}
	assignment, _, err := solver.Solve(problem)
	if err != nil {
		// Too many small sections for the budget to satisfy every
		// sampled candidate: fall back to a footprint-proportional
		// split (still measured, and rolled back if it loses).
		var totalFoot int64
		foots := make([]int64, len(nonSeq))
		for i, d := range nonSeq {
			for _, m := range d.members {
				if o, ok := prog.Object(m); ok {
					foots[i] += o.SizeBytes()
				}
			}
			totalFoot += foots[i]
		}
		if totalFoot <= 0 {
			return err
		}
		for i, d := range nonSeq {
			d.sizeBytes = avail * foots[i] / totalFoot
			if d.sizeBytes < int64(d.lineBytes) {
				d.sizeBytes = int64(d.lineBytes)
			}
		}
		return nil
	}
	for _, d := range nonSeq {
		d.sizeBytes = assignment[d.name]
	}
	return nil
}

// sampleRun executes the compiled program with nonSeq[target] at size and
// the other non-sequential sections splitting the rest, returning the
// target section's profiled overhead.
func sampleRun(w Workload, compiled, prog *ir.Program, all []*sectionDraft, nonSeq []*sectionDraft, target int, size, avail, pool int64, opts Options) (float64, error) {
	rest := avail - size
	if rest < 0 {
		rest = 0
	}
	share := rest
	if len(nonSeq) > 1 {
		share = rest / int64(len(nonSeq)-1)
	}
	saved := make([]int64, len(nonSeq))
	for i, d := range nonSeq {
		saved[i] = d.sizeBytes
		if i == target {
			d.sizeBytes = size
		} else {
			d.sizeBytes = maxI64(share, int64(d.lineBytes)*2)
		}
	}
	defer func() {
		for i, d := range nonSeq {
			d.sizeBytes = saved[i]
		}
	}()

	merged := map[string]*analysis.ObjectAccess{} // placements only need membership
	for _, d := range all {
		for _, m := range d.members {
			merged[m] = nil
		}
	}
	cfg := assembleConfig(prog, all, merged, pool, opts)
	node := farmem.NewNode(opts.NodeCfg)
	r, err := rt.New(cfg, node)
	if err != nil {
		return 0, err
	}
	if err := r.Bind(compiled); err != nil {
		return 0, err
	}
	r.SwapPrefetcher(fastswap.Readahead{N: 2})
	if err := w.Init(r); err != nil {
		return 0, err
	}
	ex, err := exec.New(compiled, r, exec.Options{
		ComputeOp: opts.Cost.ComputeOp,
		FloatOp:   opts.Cost.FloatOp,
		Params:    w.Params(),
	})
	if err != nil {
		return 0, err
	}
	clk := sim.NewClock(0)
	if _, err := ex.Run(clk); err != nil {
		return 0, err
	}
	total := clk.Now().Sub(0)
	if total <= 0 {
		return 0, nil
	}
	// Target section's share of runtime overhead, from its counters.
	st := r.SectionStats(sectionIndex(all, nonSeq[target].name))
	lookup := opts.Cost.Lookup(nonSeq[target].structure)
	secTime := sim.Duration(st.Hits+st.Misses)*lookup +
		sim.Duration(st.Misses)*(opts.Cost.MissHandling+opts.Net.RTTEstimate(nonSeq[target].lineBytes))
	return float64(secTime) / float64(total), nil
}

func sectionIndex(all []*sectionDraft, name string) int {
	for i, d := range all {
		if d.name == name {
			return i
		}
	}
	return -1
}

// assembleConfig turns drafts into an rt.Config. merged is used only for
// membership (placements).
func assembleConfig(prog *ir.Program, drafts []*sectionDraft, merged map[string]*analysis.ObjectAccess, pool int64, opts Options) rt.Config {
	// Line-size floors may nudge the carve-up past the budget; the swap
	// pool's headroom absorbs the slack.
	var total int64
	for _, d := range drafts {
		size := d.sizeBytes
		if size < int64(d.lineBytes) {
			size = int64(d.lineBytes)
		}
		total += size
	}
	if excess := total + pool - (opts.LocalBudget - localBytes(prog)); excess > 0 {
		pool -= excess
		// A pool that shrank below one page is only restored to a page
		// when that still fits; growing it past the budget would just
		// trade a section overshoot for a pool overshoot (the runtime
		// validates either way, and the planner rejects the candidate).
		if pool < 4096 && total+4096 <= opts.LocalBudget-localBytes(prog) {
			pool = 4096
		}
		if pool < 0 {
			pool = 0
		}
	}
	cfg := rt.Config{
		LocalBudget:         opts.LocalBudget,
		SwapPool:            pool,
		Placements:          map[string]rt.Placement{},
		Cost:                opts.Cost,
		Net:                 opts.Net,
		Cluster:             opts.Cluster,
		WritebackQueueLines: opts.WritebackQueueLines,
		SwapCompress:        opts.Compress == "on",
	}
	for i, d := range drafts {
		size := d.sizeBytes
		if size < int64(d.lineBytes) {
			size = int64(d.lineBytes)
		}
		cfg.Sections = append(cfg.Sections, rt.SectionSpec{
			Cache: cache.Config{
				Name:      d.name,
				Structure: d.structure,
				Ways:      d.ways,
				LineBytes: d.lineBytes,
				SizeBytes: size,
			},
			TwoSided:        d.twoSided,
			SelectiveFields: d.selFields,
			Compress:        opts.Compress == "on",
		})
		for _, m := range d.members {
			cfg.Placements[m] = rt.Placement{Kind: rt.PlaceSection, Section: i}
		}
	}
	return cfg
}

// lifetimeIntervals assigns each object a [start,end) interval in a global
// pre-order statement numbering that expands calls inline — the abstract
// time axis of the sizing ILP (§4.3: "during any time, the total size of
// live sections should be no larger than ... local memory").
func lifetimeIntervals(prog *ir.Program, merged map[string]*analysis.ObjectAccess) (map[string][2]int, map[string]string) {
	intervals := map[string][2]int{}
	lastFunc := map[string]string{}
	counter := 0
	stack := map[string]bool{}
	current := ""
	mark := func(obj string) {
		if _, ok := merged[obj]; !ok {
			return
		}
		lastFunc[obj] = current
		iv, ok := intervals[obj]
		if !ok {
			intervals[obj] = [2]int{counter, counter + 1}
			return
		}
		if counter+1 > iv[1] {
			iv[1] = counter + 1
		}
		if counter < iv[0] {
			iv[0] = counter
		}
		intervals[obj] = iv
	}
	var walkFn func(name string)
	var walkBlock func(body []ir.Stmt)
	walkBlock = func(body []ir.Stmt) {
		for _, s := range body {
			counter++
			switch st := s.(type) {
			case *ir.Load:
				mark(st.Obj)
			case *ir.Store:
				mark(st.Obj)
			case *ir.Intrinsic:
				for _, t := range []ir.TensorRef{st.Dst, st.A, st.B} {
					if t.Obj != "" {
						mark(t.Obj)
					}
				}
			case *ir.Loop:
				walkBlock(st.Body)
			case *ir.If:
				walkBlock(st.Then)
				walkBlock(st.Else)
			case *ir.Call:
				walkFn(st.Callee)
			}
		}
	}
	walkFn = func(name string) {
		if stack[name] {
			return
		}
		stack[name] = true
		prev := current
		current = name
		if fn, ok := prog.Func(name); ok {
			walkBlock(fn.Body)
		}
		current = prev
		delete(stack, name)
	}
	walkFn(prog.Entry)
	return intervals, lastFunc
}

// sectionInterval is the union of member intervals.
func sectionInterval(d *sectionDraft, intervals map[string][2]int) [2]int {
	out := [2]int{0, 1}
	first := true
	for _, m := range d.members {
		iv, ok := intervals[m]
		if !ok {
			continue
		}
		if first {
			out = iv
			first = false
			continue
		}
		if iv[0] < out[0] {
			out[0] = iv[0]
		}
		if iv[1] > out[1] {
			out[1] = iv[1]
		}
	}
	return out
}
