// Package planner implements Mira's iterative optimization flow (§3,
// Fig. 1): profile the program on the generic swap configuration, pick the
// highest-overhead functions (10%, then 20%, …) and the largest objects
// within them, run the static analyses, derive cache-section configurations
// (structure, line size, communication method), size the sections by
// sampling + ILP, compile the program against the configuration, and accept
// or roll back based on measured performance — repeating until the
// iteration budget is exhausted or no gain remains.
package planner

import (
	"fmt"
	"sort"

	"mira/internal/analysis"
	"mira/internal/baselines/fastswap"
	"mira/internal/cluster"
	"mira/internal/codegen"
	"mira/internal/exec"
	"mira/internal/farmem"
	"mira/internal/ir"
	"mira/internal/netmodel"
	"mira/internal/profile"
	"mira/internal/rt"
	"mira/internal/sim"
	"mira/internal/trace"
	"mira/internal/workload"
)

// Workload packages a program with its data so the planner can run it.
type Workload = workload.Workload

// Options configures a planning session.
type Options struct {
	// LocalBudget is the application's local memory in bytes. Zero
	// defaults to half the workload's far-memory footprint.
	LocalBudget int64
	// Net is the interconnect model (zero: paper defaults).
	Net netmodel.Config
	// Cost is the local cost model (zero: defaults).
	Cost rt.CostModel
	// NodeCfg configures the far-memory node (zero: 64 GB, 3x CPU).
	NodeCfg farmem.NodeConfig
	// MaxIterations bounds the profiling-optimization loop (§3 "system
	// administrators set an optimization target"). Default 3.
	MaxIterations int
	// SampleRatios are the section sizes sampled as fractions of the
	// available budget (§4.3). Default {0.2, 0.4, 0.6, 0.8}.
	SampleRatios []float64
	// EnableOffload allows function offloading decisions (§4.8).
	EnableOffload bool
	// DisableSeparation keeps everything in the swap section (the
	// Mira-baseline configuration of Figs. 7 and 21).
	DisableSeparation bool
	// Techniques masks individual optimizations for the Fig. 21-style
	// breakdowns; zero value enables everything.
	Techniques TechniqueMask
	// WritebackQueueLines is copied into every emitted rt.Config: it
	// bounds the runtime's asynchronous write-back queues (0 = default,
	// negative = disabled). The planner's own timing iterations run with
	// the same setting so accepted plans reflect it.
	WritebackQueueLines int
	// Compress selects the wire-compression mode: "" or "off" leaves every
	// codec knob alone (the zero-cost disabled path), "on" forces ByteRun
	// compression on every section and the swap pool, and "auto" lets the
	// planner measure — after the structural iterations settle, it screens
	// sections by sampled compressibility, races the screened subset and
	// the all-on configuration against the accepted plan, and keeps
	// whichever is fastest. Auto therefore never loses to off or on.
	Compress string
	// Cluster, when non-nil, plans against a sharded far-node pool instead
	// of a single node. Planning itself is offline and fault-free: any
	// per-node fault schedules belong to the final run, not here.
	Cluster *cluster.Options
	// Offload selects the scatter-gather offload mode (Offload 2.0): "" or
	// "off" plans without offloading, "on" marks every scatter-safe
	// function offloaded, and "auto" races each candidate (and the
	// all-candidates combination) against the accepted plan, keeping
	// offload only where it is strictly faster — auto never loses to off
	// or on. Distinct from the legacy EnableOffload whole-call heuristic.
	Offload string
	// OffloadChunk is the offload engine's streaming chunk size in bytes
	// (0 = netmodel.DefaultStreamChunk).
	OffloadChunk int
	// Plane selects the data-plane mode: "" leaves the classic flow alone,
	// "page" serves everything from the paged swap plane, "line" forces the
	// line-granular section plan, and "hybrid" races both and a per-object
	// classified split (dense sequential/strided objects paged, sparse ones
	// line-cached), accepting only improvements. All three modes plan on
	// the unified hybrid heap layout (rt.Config.Hybrid), so a mid-run
	// MigrateObject can move any far object between the planes.
	Plane string
	// Trace, when non-nil, records per-iteration planner spans (scope,
	// section count, accept/rollback) into the run's trace. The timing
	// runs inside each iteration are NOT individually instrumented — the
	// planner buffer carries one span per iteration on a cumulative
	// timeline instead.
	Trace *trace.Tracer
}

// TechniqueMask disables individual Mira techniques (all false = all on).
type TechniqueMask struct {
	NoPrefetch   bool
	NoEvictHints bool
	NoBatching   bool
	NoNative     bool
	NoSelective  bool
	NoRWOpt      bool // read/write-only optimizations (no-fetch stores)
	// Programmed keeps every planning decision (prefetch distances, Native,
	// batching math) but suppresses the emitted Prefetch/BatchPrefetch
	// statements: an access-program runner (prefetch zoo, 3PO-style) covers
	// residency instead, so the program sheds the per-iteration guard
	// arithmetic the compiled stream pays.
	Programmed     bool
	ForceStructure int // -1 = planner's choice; else cache.Structure value
}

// DefaultTechniques enables everything.
func DefaultTechniques() TechniqueMask { return TechniqueMask{ForceStructure: -1} }

// Iteration records one profiling-optimization round.
type Iteration struct {
	Index     int
	FuncFrac  float64
	Funcs     []string
	Objects   []string
	Time      sim.Duration
	Accepted  bool
	NumSecs   int
	Offloaded []string
}

// Result is the planning outcome.
type Result struct {
	Workload string
	// Program is the final compiled program (transformed clone).
	Program *ir.Program
	// Config is the accepted runtime configuration.
	Config rt.Config
	// Plan is the accepted codegen plan.
	Plan *codegen.Plan
	// BaselineTime is the iteration-0 (generic swap) execution time.
	BaselineTime sim.Duration
	// FinalTime is the accepted configuration's execution time.
	FinalTime sim.Duration
	// Iterations records every round, including rejected ones.
	Iterations []Iteration
	// Report is the last analysis report (informational).
	Report *analysis.Report
	// Planes maps each object to the data plane the accepted configuration
	// serves it from ("page", "line", or "local"). Set only when
	// Options.Plane selected a plane mode.
	Planes map[string]string
	// Offloaded lists the functions the accepted configuration ships to
	// the scatter-gather offload engine (empty when the offload phase ran
	// and kept nothing, nil when it never ran).
	Offloaded []string
}

// Plan runs the full iterative flow for one workload.
func Plan(w Workload, opts Options) (*Result, error) {
	opts = withDefaults(opts)
	switch opts.Compress {
	case "", "off", "on", "auto":
	default:
		return nil, fmt.Errorf("planner: unknown Compress mode %q (want off, on, or auto)", opts.Compress)
	}
	switch opts.Offload {
	case "", "off", "on", "auto":
	default:
		return nil, fmt.Errorf("planner: unknown Offload mode %q (want off, on, or auto)", opts.Offload)
	}
	if err := validatePlane(opts); err != nil {
		return nil, err
	}
	if opts.Plane == "page" {
		// Pure-page is the swap-only baseline on the hybrid layout; there
		// is nothing for the structural iterations to improve.
		opts.DisableSeparation = true
	}
	if opts.LocalBudget <= 0 {
		// Default to half the workload's far footprint — the common
		// experimental midpoint — so Plan(w, Options{}) works out of
		// the box.
		opts.LocalBudget = w.FullMemoryBytes() / 2
	}
	prog := w.Program()
	res := &Result{Workload: w.Name()}

	// Iteration 0: generic swap configuration, profiling run (§3
	// "initially, Mira configures the local cache as a universal swap
	// section").
	swapCfg, err := swapOnlyConfig(prog, opts)
	if err != nil {
		return nil, err
	}
	baseTime, baseCol, err := runOnce(w, prog, swapCfg, opts, true)
	if err != nil {
		return nil, fmt.Errorf("planner: baseline run: %w", err)
	}
	res.BaselineTime = baseTime
	res.FinalTime = baseTime
	res.Config = swapCfg
	res.Program = prog
	res.Plan = &codegen.Plan{}

	// Planner spans live on a cumulative timeline: the baseline run, then
	// each iteration's timing run back to back. Each timed run starts its
	// own virtual clock at zero, so the cursor stitches them into one
	// readable track.
	ptrc := opts.Trace.Buffer("planner")
	cursor := sim.Time(0).Add(baseTime)
	ptrc.Span(0, cursor, "planner", "baseline",
		trace.I("time_ns", int64(baseTime)))

	if opts.DisableSeparation {
		cursor = offloadPhase(w, res, opts, ptrc, cursor)
		if opts.Compress == "auto" {
			compressAuto(w, res, opts, ptrc, cursor)
		}
		if opts.Plane != "" {
			res.Planes = planeAssignment(prog, res.Config)
		}
		return res, nil
	}
	if opts.Plane != "" {
		// Plane modes replace the structural iterations: race the line
		// candidate (and hybrid's classified split) against the page
		// baseline, then let compression tune whichever plane split won.
		cursor = planeRace(w, prog, res, baseCol, opts, ptrc, cursor)
		cursor = offloadPhase(w, res, opts, ptrc, cursor)
		if opts.Compress == "auto" {
			compressAuto(w, res, opts, ptrc, cursor)
		}
		res.Planes = planeAssignment(prog, res.Config)
		return res, nil
	}

	col := baseCol
	// The analysis scope accumulates across iterations (§4.1: top 10%,
	// then 20%, …): once a function or object is selected it stays
	// selected, even if sectioning it dropped its profiled overhead out
	// of the current round's top fraction.
	funcSet := map[string]bool{}
	objSet := map[string]bool{}
	for iter := 1; iter <= opts.MaxIterations; iter++ {
		frac := 0.1 * float64(iter)
		for _, f := range col.TopFunctions(atLeast(frac, iter, len(col.Functions()))) {
			funcSet[f] = true
		}
		funcs := sortedKeys(funcSet)
		if len(funcs) == 0 {
			break
		}
		for _, o := range largestObjectsIn(prog, col, funcs, atLeast(frac, iter, len(col.Objects()))) {
			objSet[o] = true
		}
		objs := sortedKeys(objSet)
		if len(objs) == 0 {
			break
		}
		report, err := analysis.Analyze(prog, funcs, objs)
		if err != nil {
			return nil, err
		}
		res.Report = report

		cfg, plan, offloaded, err := buildConfig(w, prog, report, objs, col, opts)
		if err != nil {
			// No feasible sectioned configuration at this scope (tiny
			// budgets can be unable to host any section beyond the
			// swap pool). The candidate is rejected; the last accepted
			// compilation — at worst iteration 0's swap config —
			// stands (§4.1's rollback).
			res.Iterations = append(res.Iterations, Iteration{
				Index: iter, FuncFrac: frac, Funcs: funcs, Objects: objs,
			})
			ptrc.Instant(cursor, "planner", "iter.infeasible",
				trace.I("iter", int64(iter)))
			continue
		}
		compiled, err := codegen.Apply(prog, plan)
		if err != nil {
			return nil, err
		}
		t, newCol, err := runOnce(w, compiled, cfg, opts, true)
		rec := Iteration{
			Index:     iter,
			FuncFrac:  frac,
			Funcs:     funcs,
			Objects:   objs,
			NumSecs:   len(cfg.Sections),
			Offloaded: offloaded,
		}
		if err != nil {
			// A candidate the runtime rejects (e.g. line floors pushed
			// the carve-up past the budget) is a rejected iteration,
			// not a planning failure.
			res.Iterations = append(res.Iterations, rec)
			ptrc.Instant(cursor, "planner", "iter.runtime-rejected",
				trace.I("iter", int64(iter)))
			continue
		}
		rec.Time = t
		// Accept or roll back (§4.1 "we roll back to the previous
		// iteration's configuration").
		if t < res.FinalTime {
			rec.Accepted = true
			res.FinalTime = t
			res.Config = cfg
			res.Plan = plan
			res.Program = compiled
			col = newCol
		}
		res.Iterations = append(res.Iterations, rec)
		if ptrc != nil {
			verdict := "rolled-back"
			if rec.Accepted {
				verdict = "accepted"
			}
			end := cursor.Add(t)
			ptrc.Span(cursor, end, "planner", fmt.Sprintf("iteration %d", iter),
				trace.I("frac_pct", int64(frac*100+0.5)),
				trace.I("funcs", int64(len(funcs))),
				trace.I("objs", int64(len(objs))),
				trace.I("secs", int64(len(cfg.Sections))),
				trace.I("offloaded", int64(len(offloaded))),
				trace.I("time_ns", int64(t)),
				trace.S("result", verdict))
			cursor = end
		}
	}
	cursor = offloadPhase(w, res, opts, ptrc, cursor)
	if opts.Compress == "auto" {
		compressAuto(w, res, opts, ptrc, cursor)
	}
	return res, nil
}

// sortedKeys returns a set's members in deterministic order.
func sortedKeys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// atLeast widens frac so that it selects at least minK of n items.
func atLeast(frac float64, minK, n int) float64 {
	if n <= 0 {
		return frac
	}
	need := float64(minK) / float64(n)
	if need > frac {
		return need
	}
	return frac
}

func withDefaults(opts Options) Options {
	if opts.MaxIterations == 0 {
		opts.MaxIterations = 3
	}
	if len(opts.SampleRatios) == 0 {
		opts.SampleRatios = []float64{0.2, 0.4, 0.6, 0.8}
	}
	if opts.Net.BytesPerSecond == 0 {
		opts.Net = netmodel.DefaultConfig()
	}
	if opts.Cost == (rt.CostModel{}) {
		opts.Cost = rt.DefaultCostModel()
	}
	if opts.NodeCfg.Capacity == 0 {
		opts.NodeCfg = farmem.DefaultNodeConfig()
	}
	if opts.Techniques == (TechniqueMask{}) {
		opts.Techniques = DefaultTechniques()
	}
	return opts
}

// swapOnlyConfig places every non-local object in the swap section.
func swapOnlyConfig(prog *ir.Program, opts Options) (rt.Config, error) {
	local := localBytes(prog)
	pool := opts.LocalBudget - local
	if pool <= 0 {
		return rt.Config{}, fmt.Errorf("planner: local objects (%d bytes) exceed budget %d", local, opts.LocalBudget)
	}
	return rt.Config{
		LocalBudget:         opts.LocalBudget,
		SwapPool:            pool,
		Placements:          map[string]rt.Placement{},
		Cost:                opts.Cost,
		Net:                 opts.Net,
		Cluster:             opts.Cluster,
		WritebackQueueLines: opts.WritebackQueueLines,
		SwapCompress:        opts.Compress == "on",
		// Plane modes lay the whole heap out hybrid-style so objects can
		// migrate between planes; all-swap hybrid layout is byte-identical
		// to the classic one, so this never changes baseline timings.
		Hybrid: opts.Plane != "",
	}, nil
}

func localBytes(prog *ir.Program) int64 {
	var t int64
	for _, o := range prog.Objects {
		if o.Local {
			t += o.SizeBytes()
		}
	}
	return t
}

// runOnce executes a program under a configuration and returns elapsed time
// and the profile.
func runOnce(w Workload, prog *ir.Program, cfg rt.Config, opts Options, profiling bool) (sim.Duration, *profile.Collector, error) {
	cfg.Profiling = profiling
	node := farmem.NewNode(opts.NodeCfg)
	r, err := rt.New(cfg, node)
	if err != nil {
		return 0, nil, err
	}
	if err := r.Bind(prog); err != nil {
		return 0, nil, err
	}
	// The generic swap section behaves like a traditional swap system
	// (§3 "the initial execution works almost the same as traditional
	// page swap-based systems"), cluster readahead included.
	r.SwapPrefetcher(fastswap.Readahead{N: 2})
	if err := w.Init(r); err != nil {
		return 0, nil, err
	}
	col := profile.NewCollector()
	ex, err := exec.New(prog, r, exec.Options{
		ComputeOp: opts.Cost.ComputeOp,
		FloatOp:   opts.Cost.FloatOp,
		Collector: col,
		Params:    w.Params(),
	})
	if err != nil {
		return 0, nil, err
	}
	clk := sim.NewClock(0)
	if _, err := ex.Run(clk); err != nil {
		return 0, nil, err
	}
	if err := r.FlushAll(clk); err != nil {
		return 0, nil, err
	}
	// Fold the transport's resilience counters into the profile. Planner
	// runs are fault-free, so these are zero unless a caller wires a
	// fault schedule into the runtime under profile.
	ns := r.NetStats()
	col.RecordNet(profile.NetRecord{
		Retries: ns.Retries, Timeouts: ns.Timeouts,
		Corruptions: ns.Corruptions, BreakerTrips: ns.BreakerTrips,
		QueuedWritebacks: ns.QueuedWritebacks, DegradedReads: ns.DegradedReads,
		DegradedTime: ns.DegradedTime, BackoffTime: ns.BackoffTime,
	})
	return clk.Now().Sub(0), col, nil
}

// largestObjectsIn returns the largest frac of objects accessed by the
// selected functions (§4.1).
func largestObjectsIn(prog *ir.Program, col *profile.Collector, funcs []string, frac float64) []string {
	accessed := map[string]bool{}
	seen := map[string]bool{}
	var visit func(name string)
	visit = func(name string) {
		if seen[name] {
			return
		}
		seen[name] = true
		fn, ok := prog.Func(name)
		if !ok {
			return
		}
		ir.Walk(fn.Body, func(s ir.Stmt) bool {
			switch st := s.(type) {
			case *ir.Load:
				accessed[st.Obj] = true
			case *ir.Store:
				accessed[st.Obj] = true
			case *ir.Intrinsic:
				for _, t := range []ir.TensorRef{st.Dst, st.A, st.B} {
					if t.Obj != "" {
						accessed[t.Obj] = true
					}
				}
			case *ir.Call:
				visit(st.Callee)
			}
			return true
		})
	}
	for _, f := range funcs {
		visit(f)
	}
	// Rank the objects the selected functions access by profiled size
	// (§4.1: "we pick the largest 10% objects" *in* those functions),
	// then take the top fraction of that ranking.
	var ranked []string
	for _, name := range col.LargestObjects(1.0) {
		o, ok := prog.Object(name)
		if !ok || o.Local {
			continue
		}
		if accessed[name] {
			ranked = append(ranked, name)
		}
	}
	if len(ranked) == 0 {
		return nil
	}
	k := profile.CeilFrac(frac, len(ranked))
	if k < 1 {
		k = 1
	}
	if k > len(ranked) {
		k = len(ranked)
	}
	return ranked[:k]
}
