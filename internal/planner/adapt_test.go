package planner

import (
	"testing"

	"mira/internal/apps/dataframe"
)

func TestAdaptKeepsGoodCompilation(t *testing.T) {
	train := dataframe.New(dataframe.Config{Rows: 8192, Seed: 2014})
	opts := Options{LocalBudget: train.FullMemoryBytes() / 3, MaxIterations: 2}
	res, err := Plan(train, opts)
	if err != nil {
		t.Fatal(err)
	}
	// A same-distribution input (different seed) should not trigger
	// re-optimization: the compilation generalizes (§3, Fig. 16's
	// train-2014 / test-2015 result).
	test := dataframe.New(dataframe.Config{Rows: 8192, Seed: 2015})
	kept, reoptimized, err := Adapt(res, test, opts, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if reoptimized {
		t.Fatal("same-distribution input triggered re-optimization")
	}
	if kept != res {
		t.Fatal("compilation not kept")
	}
}

func TestAdaptReoptimizesOnDegradation(t *testing.T) {
	// Train on an input year where almost no rows match the filter, then
	// present a year where most do: the same compilation now moves far
	// more data (result-vector writes) and degrades past tolerance,
	// triggering a background re-optimization (§3).
	cfg := dataframe.Config{Rows: 16384, Seed: 2014, FilterOnly: true, CreditRate: 0.02}
	train := dataframe.New(cfg)
	opts := Options{LocalBudget: train.FullMemoryBytes() / 4, MaxIterations: 2}
	res, err := Plan(train, opts)
	if err != nil {
		t.Fatal(err)
	}
	heavy := cfg
	heavy.Seed = 2015
	heavy.CreditRate = 0.9
	adapted, reoptimized, err := Adapt(res, dataframe.New(heavy), opts, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if !reoptimized {
		t.Fatal("heavy-match input did not trigger re-optimization")
	}
	if adapted.FinalTime <= 0 {
		t.Fatal("no adapted time")
	}
}

func TestAdaptNilPrevious(t *testing.T) {
	w := dataframe.New(dataframe.Config{Rows: 256, Seed: 1})
	if _, _, err := Adapt(nil, w, Options{LocalBudget: 1 << 20}, 0.2); err == nil {
		t.Fatal("nil previous accepted")
	}
}

func TestMeasureMatchesPlanTime(t *testing.T) {
	w := dataframe.New(dataframe.Config{Rows: 4096, Seed: 2014})
	opts := Options{LocalBudget: w.FullMemoryBytes() / 2, MaxIterations: 2}
	res, err := Plan(w, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Measuring the accepted compilation on the training input reproduces
	// the planner's recorded FinalTime (up to the profiling run's
	// sampling jitter, well under 0.1%).
	got, err := Measure(res, dataframe.New(dataframe.Config{Rows: 4096, Seed: 2014}), opts)
	if err != nil {
		t.Fatal(err)
	}
	diff := float64(got-res.FinalTime) / float64(res.FinalTime)
	if diff < 0 {
		diff = -diff
	}
	if diff > 0.001 {
		t.Fatalf("Measure = %v, FinalTime = %v (%.4f%% apart)", got, res.FinalTime, diff*100)
	}
}

func TestMeasureNilResult(t *testing.T) {
	w := dataframe.New(dataframe.Config{Rows: 256, Seed: 1})
	if _, err := Measure(nil, w, Options{LocalBudget: 1 << 20}); err == nil {
		t.Fatal("nil result accepted")
	}
}

func TestAdaptContainment(t *testing.T) {
	// §3's guarantee: whatever Adapt returns is never slower on the new
	// input than the stale compilation, because it keeps the better of
	// the two.
	cfg := dataframe.Config{Rows: 8192, Seed: 2014, FilterOnly: true, CreditRate: 0.02}
	train := dataframe.New(cfg)
	opts := Options{LocalBudget: train.FullMemoryBytes() / 4, MaxIterations: 2}
	res, err := Plan(train, opts)
	if err != nil {
		t.Fatal(err)
	}
	shifted := cfg
	shifted.Seed = 2015
	shifted.CreditRate = 0.9
	stale, err := Measure(res, dataframe.New(shifted), opts)
	if err != nil {
		t.Fatal(err)
	}
	adapted, _, err := Adapt(res, dataframe.New(shifted), opts, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	after, err := Measure(adapted, dataframe.New(shifted), opts)
	if err != nil {
		t.Fatal(err)
	}
	if after > stale {
		t.Fatalf("adapted compilation slower than stale: %v > %v", after, stale)
	}
}
