package planner

import (
	"mira/internal/netmodel"
	"testing"

	"mira/internal/analysis"
	"mira/internal/cache"
	"mira/internal/ir"
	"mira/internal/profile"
)

func mkMerged(pattern analysis.Pattern, elemBytes int, fields []string, accessed int) *analysis.ObjectAccess {
	return &analysis.ObjectAccess{
		Pattern:       pattern,
		ElemBytes:     elemBytes,
		AccessedBytes: accessed,
		Fields:        fields,
		Reads:         1,
	}
}

func twoObjProgram() *ir.Program {
	b := ir.NewBuilder("p")
	b.Object("seqA", 16, 128, ir.F("f", 0, 8))
	b.Object("seqB", 16, 128, ir.F("f", 0, 8))
	b.Object("ind", 128, 64, ir.F("c", 0, 8))
	b.Object("wide", 4096, 64, ir.F("c", 0, 8))
	b.IntArray("rnd", 64)
	b.Func("main")
	return b.MustProgram()
}

func TestGroupSectionsByPattern(t *testing.T) {
	p := twoObjProgram()
	merged := map[string]*analysis.ObjectAccess{
		"seqA": mkMerged(analysis.PatternSequential, 16, []string{"f"}, 8),
		"seqB": mkMerged(analysis.PatternSequential, 16, []string{"f"}, 8),
		"ind":  mkMerged(analysis.PatternIndirect, 128, []string{"c"}, 8),
		"rnd":  mkMerged(analysis.PatternRandom, 8, []string{""}, 8),
	}
	drafts := groupSections(p, merged, DefaultTechniques(), netmodel.DefaultConfig())
	// Two sequential objects share one section (§4.1 "multiple objects
	// can be in one section if their access patterns are similar");
	// indirect and random objects get their own.
	if len(drafts) != 3 {
		t.Fatalf("drafts = %d, want 3", len(drafts))
	}
	var seq, ind, rnd *sectionDraft
	for _, d := range drafts {
		switch {
		case d.seqLike:
			seq = d
		case d.structure == cache.SetAssoc:
			ind = d
		case d.structure == cache.FullAssoc:
			rnd = d
		}
	}
	if seq == nil || len(seq.members) != 2 {
		t.Fatalf("sequential section %+v", seq)
	}
	if seq.structure != cache.Direct {
		t.Fatalf("sequential section structure %v", seq.structure)
	}
	if ind == nil || ind.members[0] != "ind" {
		t.Fatalf("indirect section %+v", ind)
	}
	if rnd == nil || rnd.members[0] != "rnd" {
		t.Fatalf("random section %+v", rnd)
	}
}

func TestSelectiveTransmissionChosen(t *testing.T) {
	p := twoObjProgram()
	// wide: 4 KB element, 8 B accessed => the one-sided line needs two
	// network chunks while the two-sided gather moves 8 bytes, so the
	// cost model picks selective transmission.
	merged := map[string]*analysis.ObjectAccess{
		"wide": mkMerged(analysis.PatternIndirect, 4096, []string{"c"}, 8),
	}
	drafts := groupSections(p, merged, DefaultTechniques(), netmodel.DefaultConfig())
	if len(drafts) != 1 || !drafts[0].twoSided || len(drafts[0].selFields) != 1 {
		t.Fatalf("selective not chosen: %+v", drafts[0])
	}
	// Masked off.
	mask := DefaultTechniques()
	mask.NoSelective = true
	drafts = groupSections(p, merged, mask, netmodel.DefaultConfig())
	if drafts[0].twoSided {
		t.Fatal("NoSelective mask ignored")
	}
	// Whole-element access: no selective benefit.
	merged["wide"] = mkMerged(analysis.PatternIndirect, 4096, []string{""}, 4096)
	drafts = groupSections(p, merged, DefaultTechniques(), netmodel.DefaultConfig())
	if drafts[0].twoSided {
		t.Fatal("selective chosen despite whole-element access")
	}
}

func TestSelectiveRejectedWhenLineIsCheap(t *testing.T) {
	p := twoObjProgram()
	// ind: 128 B element, 8 B accessed. The coverage test passes (8*2 <=
	// 128) but pulling the 128 B line one-sided (~3.3 us) beats the
	// two-sided gather (~4.2 us), so the cost model rejects selective.
	merged := map[string]*analysis.ObjectAccess{
		"ind": mkMerged(analysis.PatternIndirect, 128, []string{"c"}, 8),
	}
	drafts := groupSections(p, merged, DefaultTechniques(), netmodel.DefaultConfig())
	if drafts[0].twoSided {
		t.Fatal("selective chosen where the full line is cheaper")
	}
}

func TestForceStructureMask(t *testing.T) {
	p := twoObjProgram()
	merged := map[string]*analysis.ObjectAccess{
		"seqA": mkMerged(analysis.PatternSequential, 16, []string{"f"}, 8),
	}
	mask := DefaultTechniques()
	mask.ForceStructure = int(cache.FullAssoc)
	drafts := groupSections(p, merged, mask, netmodel.DefaultConfig())
	if drafts[0].structure != cache.FullAssoc {
		t.Fatalf("structure %v, want forced full-assoc", drafts[0].structure)
	}
}

func TestNormalizeSizesFitsBudget(t *testing.T) {
	drafts := []*sectionDraft{
		{name: "a", lineBytes: 64, sizeBytes: 1000},
		{name: "b", lineBytes: 64, sizeBytes: 3000},
	}
	normalizeSizes(drafts, 2000)
	var total int64
	for _, d := range drafts {
		total += d.sizeBytes
		if d.sizeBytes < 64 {
			t.Fatalf("section %s below one line", d.name)
		}
	}
	if total > 2000 {
		t.Fatalf("normalized total %d exceeds 2000", total)
	}
	// Proportionality: b stays larger than a.
	if drafts[1].sizeBytes <= drafts[0].sizeBytes {
		t.Fatal("proportionality lost")
	}
}

func TestSeqLineBytes(t *testing.T) {
	if got := seqLineBytes(16); got != 2048 {
		t.Fatalf("seqLineBytes(16) = %d, want 2048", got)
	}
	if got := seqLineBytes(24); got%24 != 0 || got > 2048 {
		t.Fatalf("seqLineBytes(24) = %d, want multiple of 24 <= 2048", got)
	}
	if got := seqLineBytes(4096); got != 4096 {
		t.Fatalf("seqLineBytes(4096) = %d", got)
	}
}

func TestRandLineBytes(t *testing.T) {
	if got := randLineBytes(8); got != 64 {
		t.Fatalf("randLineBytes(8) = %d, want 64", got)
	}
	if got := randLineBytes(128); got != 128 {
		t.Fatalf("randLineBytes(128) = %d", got)
	}
	if got := randLineBytes(100); got != 128 {
		t.Fatalf("randLineBytes(100) = %d, want 128", got)
	}
}

func TestPerIterEstimateClamps(t *testing.T) {
	p := twoObjProgram()
	r, _ := analysis.Analyze(p, nil, nil)
	col := newEmptyCollector()
	per := perIterEstimate(p, r, col)
	if per < 5 || per > 10_000_000 {
		t.Fatalf("per-iteration estimate %v outside clamps", per)
	}
}

// newEmptyCollector builds a collector with no recorded events.
func newEmptyCollector() *profile.Collector { return profile.NewCollector() }

// Property: the cost-aware selective decision is monotone in the line
// size — once the line is large enough that selective wins, every larger
// line also prefers selective (for fixed accessed bytes).
func TestSelectiveDecisionMonotoneInLineSize(t *testing.T) {
	net := netmodel.DefaultConfig()
	prev := false
	for line := 64; line <= 1<<16; line *= 2 {
		sel := net.TwoSidedCost(8) < net.OneSidedCost(line)
		if prev && !sel {
			t.Fatalf("selective flipped off at line %d", line)
		}
		prev = sel
	}
	if !prev {
		t.Fatal("selective never preferred even at 64KB lines")
	}
	if net.TwoSidedCost(8) < net.OneSidedCost(128) {
		t.Fatal("selective preferred for a 128B line (two-sided RTT should dominate)")
	}
}
