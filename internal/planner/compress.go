package planner

import (
	"fmt"

	"mira/internal/analysis"
	"mira/internal/rt"
	"mira/internal/sim"
	"mira/internal/trace"
)

// compressSampler captures each object's sampled compressibility during an
// untimed workload Init — the planner's measurement protocol for the wire
// codec: no runtime, no far node, just the initial bytes the wire would
// actually carry.
type compressSampler struct {
	ratios map[string]float64
}

func (s *compressSampler) InitObject(name string, data []byte) error {
	s.ratios[name] = analysis.Compressibility(data)
	return nil
}

// sampleCompressibility runs the workload's Init against the sampler.
func sampleCompressibility(w Workload) map[string]float64 {
	s := &compressSampler{ratios: map[string]float64{}}
	if err := w.Init(s); err != nil {
		// An Init that only works against a real runtime yields no
		// samples; the screen then proposes nothing and only the
		// measured all-on candidate races.
		return map[string]float64{}
	}
	return s.ratios
}

// sectionCompressible reports whether every member object of section idx
// cleared the sampled-compressibility bar (with at least one member seen).
func sectionCompressible(cfg rt.Config, idx int, ratios map[string]float64) bool {
	members := 0
	for name, pl := range cfg.Placements {
		if pl.Kind != rt.PlaceSection || pl.Section != idx {
			continue
		}
		r, ok := ratios[name]
		if !ok || r > analysis.CompressWorthwhile {
			return false
		}
		members++
	}
	return members > 0
}

// swapCompressible applies the same bar to the objects left in the generic
// swap section (unplaced objects default there).
func swapCompressible(cfg rt.Config, ratios map[string]float64) bool {
	members := 0
	for name, r := range ratios {
		pl, placed := cfg.Placements[name]
		if placed && pl.Kind != rt.PlaceSwap {
			continue
		}
		if r > analysis.CompressWorthwhile {
			return false
		}
		members++
	}
	return members > 0
}

// withCompressFlags clones cfg with fresh per-section compress flags.
func withCompressFlags(cfg rt.Config, on func(i int) bool, swapOn bool) rt.Config {
	out := cfg
	out.Sections = append([]rt.SectionSpec(nil), cfg.Sections...)
	for i := range out.Sections {
		out.Sections[i].Compress = on(i)
	}
	out.SwapCompress = swapOn
	return out
}

func sameCompressFlags(a, b rt.Config) bool {
	if a.SwapCompress != b.SwapCompress || len(a.Sections) != len(b.Sections) {
		return false
	}
	for i := range a.Sections {
		if a.Sections[i].Compress != b.Sections[i].Compress {
			return false
		}
	}
	return true
}

// compressAuto is the Compress="auto" phase: after the structural iterations
// settle, screen sections by sampled compressibility, then race the screened
// subset and the all-on configuration against the accepted plan with the
// same measured accept/rollback the iterations use. The incumbent only ever
// loses to a faster candidate, so auto is never slower than off; all-on is
// always among the candidates, so auto is never slower than on either.
func compressAuto(w Workload, res *Result, opts Options, ptrc *trace.Buffer, cursor sim.Time) sim.Time {
	ratios := sampleCompressibility(w)
	screened := withCompressFlags(res.Config,
		func(i int) bool { return sectionCompressible(res.Config, i, ratios) },
		swapCompressible(res.Config, ratios))
	allOn := withCompressFlags(res.Config, func(int) bool { return true }, true)

	type candidate struct {
		name string
		cfg  rt.Config
	}
	var cands []candidate
	if !sameCompressFlags(screened, res.Config) {
		cands = append(cands, candidate{"screened", screened})
	}
	if !sameCompressFlags(allOn, screened) {
		cands = append(cands, candidate{"all-on", allOn})
	}
	for _, c := range cands {
		t, _, err := runOnce(w, res.Program, c.cfg, opts, true)
		if err != nil {
			ptrc.Instant(cursor, "planner", fmt.Sprintf("compress.%s rejected", c.name))
			continue
		}
		verdict := "rolled-back"
		if t < res.FinalTime {
			verdict = "accepted"
			res.FinalTime = t
			res.Config = c.cfg
		}
		end := cursor.Add(t)
		ptrc.Span(cursor, end, "planner", fmt.Sprintf("compress %s", c.name),
			trace.I("time_ns", int64(t)), trace.S("result", verdict))
		cursor = end
	}
	return cursor
}
