package planner

import (
	"fmt"
	"sort"

	"mira/internal/analysis"
	"mira/internal/codegen"
	"mira/internal/ir"
	"mira/internal/rt"
	"mira/internal/sim"
	"mira/internal/trace"
)

// This file is the Offload 2.0 planning phase (§4.8 scaled out): after the
// structural iterations (and plane race) settle, decide which functions to
// ship to the cluster's scatter-gather engine. "on" marks every
// scatter-safe candidate; "auto" races each candidate — and the
// all-candidates combination — against the accepted plan and keeps offload
// only where it is strictly faster, the same measured accept/rollback
// discipline as -compress auto and -plane hybrid. Auto therefore never
// loses to off (the incumbent only falls to a faster candidate) nor to on
// (the all-candidates combination is always raced).

// offloadCandidates lists the functions worth scattering: offload-safe by
// analysis (§4.8's no-shared-writes, no-local-objects precondition),
// actually called, not the entry, and recognized by the scatter shape
// analysis so the engine can split them by placement.
func offloadCandidates(prog *ir.Program) []string {
	var funcs, objs []string
	for _, f := range prog.Funcs {
		funcs = append(funcs, f.Name)
	}
	for _, o := range prog.Objects {
		if !o.Local {
			objs = append(objs, o.Name)
		}
	}
	report, err := analysis.Analyze(prog, funcs, objs)
	if err != nil {
		return nil
	}
	called := map[string]bool{}
	for _, f := range prog.Funcs {
		ir.Walk(f.Body, func(s ir.Stmt) bool {
			if c, ok := s.(*ir.Call); ok {
				called[c.Callee] = true
			}
			return true
		})
	}
	var out []string
	for name, fr := range report.Funcs {
		if !fr.OffloadSafe || name == prog.Entry || !called[name] {
			continue
		}
		fn, ok := prog.Func(name)
		if !ok {
			continue
		}
		if _, ok := analysis.AnalyzeScatter(prog, fn); !ok {
			continue
		}
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// markOffloaded compiles the accepted program with the given functions
// marked offloaded (clone + mark + fence insertion; no other rewriting).
func markOffloaded(prog *ir.Program, funcs []string) (*ir.Program, error) {
	marks := make(map[string]bool, len(funcs))
	for _, f := range funcs {
		marks[f] = true
	}
	return codegen.Apply(prog, &codegen.Plan{Offload: marks})
}

// scatterPlacements moves each offloaded function's scatter-driving object
// to the swap placement, where the cluster stripes it across nodes. ok is
// false when the config has no swap pool to serve those objects from.
func scatterPlacements(prog *ir.Program, cfg rt.Config, funcs []string) (rt.Config, bool) {
	if cfg.SwapPool <= 0 {
		return cfg, false
	}
	objs := map[string]bool{}
	for _, name := range funcs {
		fn, ok := prog.Func(name)
		if !ok {
			continue
		}
		if plan, ok := analysis.AnalyzeScatter(prog, fn); ok {
			objs[plan.Object] = true
		}
	}
	if len(objs) == 0 {
		return cfg, false
	}
	moved := false
	placements := make(map[string]rt.Placement, len(cfg.Placements))
	for name, pl := range cfg.Placements {
		if objs[name] && pl.Kind == rt.PlaceSection {
			pl = rt.Placement{Kind: rt.PlaceSwap}
			moved = true
		}
		placements[name] = pl
	}
	if !moved {
		return cfg, false // already swap-striped; the plain combo covers it
	}
	cfg.Placements = placements
	return cfg, true
}

// offloadPhase runs after every other planning decision settled. It
// mutates res (Program/Config/Plan/FinalTime/Offloaded) only when a
// candidate is accepted, and returns the advanced trace cursor.
func offloadPhase(w Workload, res *Result, opts Options, ptrc *trace.Buffer, cursor sim.Time) sim.Time {
	if opts.Offload == "" || opts.Offload == "off" {
		return cursor
	}
	cands := offloadCandidates(res.Program)
	if len(cands) == 0 {
		ptrc.Instant(cursor, "planner", "offload.no-candidates")
		return cursor
	}

	type combo struct {
		name    string
		funcs   []string
		scatter bool // stripe the driving objects across the cluster
	}
	var combos []combo
	add := func(name string, funcs []string) {
		combos = append(combos, combo{name, funcs, false})
		if opts.Cluster != nil && opts.Cluster.Nodes > 1 {
			// Sections are placed whole on one node, so a sectioned
			// driving object yields a single sub-offload. The scatter
			// variant returns it to the striped swap heap: slower to
			// fetch, but the engine can then split the function across
			// every node that owns a stripe.
			combos = append(combos, combo{name + "+scatter", funcs, true})
		}
	}
	if opts.Offload == "auto" && len(cands) > 1 {
		for _, c := range cands {
			add(c, []string{c})
		}
	}
	add("all", cands)

	// Every candidate compiles from the settled plan, not from an earlier
	// accepted candidate: the "all" combination is then byte-identical to
	// what Offload="on" produces, which is what makes auto <= on hold by
	// construction.
	baseProg, baseCfg := res.Program, res.Config
	for _, c := range combos {
		compiled, err := markOffloaded(baseProg, c.funcs)
		if err != nil {
			ptrc.Instant(cursor, "planner", fmt.Sprintf("offload.%s rejected", c.name))
			continue
		}
		cfg := baseCfg
		cfg.OffloadChunk = opts.OffloadChunk
		if c.scatter {
			scattered, ok := scatterPlacements(baseProg, cfg, c.funcs)
			if !ok {
				continue
			}
			cfg = scattered
		}
		t, _, err := runOnce(w, compiled, cfg, opts, true)
		if err != nil {
			ptrc.Instant(cursor, "planner", fmt.Sprintf("offload.%s rejected", c.name))
			continue
		}
		// "on" forces the all-candidates configuration (its scatter
		// variant still has to win on time); "auto" keeps a candidate
		// only when it strictly beats the incumbent.
		accept := t < res.FinalTime || (opts.Offload == "on" && c.name == "all")
		verdict := "rolled-back"
		if accept {
			verdict = "accepted"
			res.FinalTime = t
			res.Program = compiled
			res.Config = cfg
			res.Offloaded = append([]string(nil), c.funcs...)
			if res.Plan != nil {
				plan := *res.Plan
				plan.Offload = make(map[string]bool, len(c.funcs))
				for _, f := range c.funcs {
					plan.Offload[f] = true
				}
				res.Plan = &plan
			}
		}
		end := cursor.Add(t)
		ptrc.Span(cursor, end, "planner", fmt.Sprintf("offload %s", c.name),
			trace.I("funcs", int64(len(c.funcs))),
			trace.I("time_ns", int64(t)),
			trace.S("result", verdict))
		cursor = end
	}
	return cursor
}
