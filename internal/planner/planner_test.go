package planner

import (
	"testing"

	"mira/internal/analysis"
	"mira/internal/apps/graphtraverse"
	"mira/internal/cache"
	"mira/internal/exec"
	"mira/internal/farmem"
	"mira/internal/ir"
	"mira/internal/rt"
	"mira/internal/sim"
)

func graphOpts(budget int64) Options {
	return Options{LocalBudget: budget, MaxIterations: 2}
}

func TestPlanImprovesGraphTraversal(t *testing.T) {
	w := graphtraverse.New(graphtraverse.Config{Edges: 8192, Nodes: 1024, Passes: 1, Seed: 7})
	budget := w.FullMemoryBytes() / 4 // 25% local memory
	res, err := Plan(w, graphOpts(budget))
	if err != nil {
		t.Fatal(err)
	}
	if res.BaselineTime <= 0 {
		t.Fatal("no baseline time")
	}
	if res.FinalTime >= res.BaselineTime {
		t.Fatalf("planner did not improve: baseline %v, final %v", res.BaselineTime, res.FinalTime)
	}
	speedup := float64(res.BaselineTime) / float64(res.FinalTime)
	t.Logf("baseline %v -> final %v (%.2fx), %d sections",
		res.BaselineTime, res.FinalTime, speedup, len(res.Config.Sections))
	if speedup < 1.5 {
		t.Fatalf("speedup %.2fx below 1.5x", speedup)
	}
	if len(res.Config.Sections) < 2 {
		t.Fatalf("expected >= 2 sections (edges + nodes), got %d", len(res.Config.Sections))
	}
}

func TestPlannedProgramStillCorrect(t *testing.T) {
	w := graphtraverse.New(graphtraverse.Config{Edges: 4096, Nodes: 512, Passes: 1, Seed: 11})
	budget := w.FullMemoryBytes() / 4
	res, err := Plan(w, graphOpts(budget))
	if err != nil {
		t.Fatal(err)
	}
	// Re-run the accepted compilation and verify output.
	node := farmem.NewNode(farmem.DefaultNodeConfig())
	r, err := rt.New(res.Config, node)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Bind(res.Program); err != nil {
		t.Fatal(err)
	}
	if err := w.Init(r); err != nil {
		t.Fatal(err)
	}
	ex, err := exec.New(res.Program, r, exec.Options{Params: w.Params()})
	if err != nil {
		t.Fatal(err)
	}
	clk := sim.NewClock(0)
	if _, err := ex.Run(clk); err != nil {
		t.Fatal(err)
	}
	if err := r.FlushAll(clk); err != nil {
		t.Fatal(err)
	}
	if err := w.Verify(r); err != nil {
		t.Fatal(err)
	}
}

func TestDisableSeparationStaysOnSwap(t *testing.T) {
	w := graphtraverse.New(graphtraverse.Config{Edges: 2048, Nodes: 256, Passes: 1, Seed: 3})
	opts := graphOpts(w.FullMemoryBytes() / 2)
	opts.DisableSeparation = true
	res, err := Plan(w, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Config.Sections) != 0 {
		t.Fatalf("separation disabled but %d sections created", len(res.Config.Sections))
	}
	if res.FinalTime != res.BaselineTime {
		t.Fatal("swap-only plan should report baseline time")
	}
}

func TestRollbackNeverRegresses(t *testing.T) {
	// Whatever the planner tries, the accepted result must never be
	// slower than the swap baseline.
	for _, fracBudget := range []int64{10, 4, 2} {
		w := graphtraverse.New(graphtraverse.Config{Edges: 2048, Nodes: 256, Passes: 1, Seed: 5})
		res, err := Plan(w, graphOpts(w.FullMemoryBytes()/fracBudget))
		if err != nil {
			t.Fatal(err)
		}
		if res.FinalTime > res.BaselineTime {
			t.Fatalf("budget 1/%d: final %v worse than baseline %v",
				fracBudget, res.FinalTime, res.BaselineTime)
		}
	}
}

func TestThreeSectionSamplingAndILP(t *testing.T) {
	// With the third random array, the planner must create >= 3 sections
	// and run the sampling + ILP path.
	w := graphtraverse.New(graphtraverse.Config{Edges: 4096, Nodes: 512, Third: 1024, Passes: 1, Seed: 13})
	opts := graphOpts(w.FullMemoryBytes() / 3)
	opts.MaxIterations = 4
	res, err := Plan(w, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Config.Sections) < 3 {
		t.Fatalf("sections = %d, want >= 3", len(res.Config.Sections))
	}
	// The node section (indirect) should get more memory than the edge
	// (sequential) section — Fig. 12's qualitative result.
	var edgeSize, nodeSize int64
	for _, s := range res.Config.Sections {
		switch {
		case s.Cache.Structure == cache.Direct:
			edgeSize += s.Cache.SizeBytes
		case s.Cache.Name == "ind-nodes":
			nodeSize = s.Cache.SizeBytes
		}
	}
	if nodeSize <= edgeSize {
		t.Fatalf("node section (%d) not larger than edge section (%d)", nodeSize, edgeSize)
	}
}

func TestLifetimeIntervals(t *testing.T) {
	b := ir.NewBuilder("phases")
	b.IntArray("a", 64)
	b.IntArray("bb", 64)
	fb := b.Func("main")
	fb.Loop(ir.C(0), ir.C(64), ir.C(1), func(i ir.Expr) {
		fb.Load("a", i, "")
	})
	fb.Loop(ir.C(0), ir.C(64), ir.C(1), func(i ir.Expr) {
		fb.Load("bb", i, "")
	})
	p := b.MustProgram()
	merged := map[string]*analysis.ObjectAccess{"a": {}, "bb": {}}
	iv, lastFunc := lifetimeIntervals(p, merged)
	if iv["a"][1] > iv["bb"][0]+1 {
		t.Fatalf("phase-disjoint objects overlap: a=%v bb=%v", iv["a"], iv["bb"])
	}
	if lastFunc["a"] != "main" || lastFunc["bb"] != "main" {
		t.Fatalf("lastFunc = %v", lastFunc)
	}
}

func TestSwapOnlyConfigRejectsTinyBudget(t *testing.T) {
	b := ir.NewBuilder("big-local")
	o := b.IntArray("l", 1<<20)
	o.Local = true
	b.Func("main")
	p := b.MustProgram()
	_, err := swapOnlyConfig(p, withDefaults(Options{LocalBudget: 1024}))
	if err == nil {
		t.Fatal("tiny budget accepted")
	}
}
