package planner

import (
	"testing"

	"mira/internal/apps/dataframe"
	"mira/internal/apps/graphtraverse"
	"mira/internal/cluster"
	"mira/internal/farmem"
	"mira/internal/netmodel"
	"mira/internal/rt"
)

// skewedCluster is a 3-node pool with one deliberately tiny node: the
// planner's sizing decisions must respect per-node capacity, not just the
// pool total.
func skewedCluster(small uint64) *cluster.Options {
	return &cluster.Options{
		Nodes:       3,
		Replicas:    2,
		Seed:        1,
		StripeBytes: 4096,
		NodeCfg:     farmem.NodeConfig{Capacity: 1 << 24, CPUSlowdown: 3},
		Capacities:  []uint64{1 << 24, 1 << 24, small},
		Net:         netmodel.DefaultConfig(),
	}
}

// assertNoOvercommit re-runs cfg on a fresh pool and checks every node's
// live allocations stay within its capacity.
func assertNoOvercommit(t *testing.T, w Workload, cfg rt.Config) {
	t.Helper()
	r, err := rt.New(cfg, nil)
	if err != nil {
		t.Fatalf("rebuild accepted config: %v", err)
	}
	if err := r.Bind(w.Program()); err != nil {
		t.Fatalf("bind: %v", err)
	}
	if err := w.Init(r); err != nil {
		t.Fatalf("init: %v", err)
	}
	p := r.Pool()
	if p == nil {
		t.Fatal("accepted config did not carry the cluster")
	}
	for _, ns := range p.NodeStats() {
		if ns.AllocatedBytes > ns.CapacityBytes {
			t.Errorf("node %d over-committed: %d allocated of %d capacity",
				ns.Node, ns.AllocatedBytes, ns.CapacityBytes)
		}
	}
}

// TestClusterPlanRespectsSkewedCapacities: planning against a pool whose
// third node is tiny must still converge, never regress past the swap
// baseline (rollback), and never over-commit the small node — placement
// spills to the big nodes instead.
func TestClusterPlanRespectsSkewedCapacities(t *testing.T) {
	w := graphtraverse.New(graphtraverse.Config{Edges: 2048, Nodes: 256, Passes: 1, Seed: 5})
	opts := Options{
		LocalBudget:   w.FullMemoryBytes() / 3,
		MaxIterations: 2,
		Cluster:       skewedCluster(128 << 10),
	}
	res, err := Plan(w, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalTime > res.BaselineTime {
		t.Fatalf("rollback failed: final %v worse than baseline %v",
			res.FinalTime, res.BaselineTime)
	}
	assertNoOvercommit(t, w, res.Config)
}

// TestClusterAdaptSkewedCapacities: the §3 adapt path — keep a good
// compilation, re-optimize a degraded one — must hold on a skewed pool,
// and the adapted configuration must not over-commit the small node either.
func TestClusterAdaptSkewedCapacities(t *testing.T) {
	train := dataframe.New(dataframe.Config{Rows: 8192, Seed: 2014})
	opts := Options{
		LocalBudget:   train.FullMemoryBytes() / 3,
		MaxIterations: 2,
		Cluster:       skewedCluster(128 << 10),
	}
	res, err := Plan(train, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Same-distribution input: the compilation generalizes and is kept.
	test := dataframe.New(dataframe.Config{Rows: 8192, Seed: 2015})
	kept, reoptimized, err := Adapt(res, test, opts, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if reoptimized {
		t.Fatal("same-distribution input triggered re-optimization on a cluster")
	}
	assertNoOvercommit(t, test, kept.Config)

	// Shifted input: re-optimization may trigger; whatever comes back must
	// still fit every node.
	heavy := dataframe.New(dataframe.Config{Rows: 8192, Seed: 2015, CreditRate: 0.9})
	adapted, _, err := Adapt(res, heavy, opts, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	assertNoOvercommit(t, heavy, adapted.Config)
}

// TestClusterPlanTooSmallPoolFails pins the failure mode: when even the
// replicated pool cannot hold the far footprint, planning surfaces an
// error instead of silently under-placing.
func TestClusterPlanTooSmallPoolFails(t *testing.T) {
	w := graphtraverse.New(graphtraverse.Config{Edges: 2048, Nodes: 256, Passes: 1, Seed: 5})
	co := skewedCluster(4 << 10)
	co.Capacities = []uint64{4 << 10, 4 << 10, 4 << 10}
	if _, err := Plan(w, Options{
		LocalBudget:   w.FullMemoryBytes() / 3,
		MaxIterations: 1,
		Cluster:       co,
	}); err == nil {
		t.Fatal("planning succeeded against a pool too small for the workload")
	}
}
