package planner

import (
	"fmt"

	"mira/internal/sim"
)

// Adapt implements §3's input adaptation: the current compilation keeps
// serving invocations, but when a sampled input degrades performance beyond
// tolerance (e.g. 0.2 = 20% slower than the recorded FinalTime), a fresh
// optimization round runs against the new input "in the background" and the
// better of the two compilations is kept.
//
// It returns the compilation to use for subsequent invocations and whether
// a re-optimization was triggered.
func Adapt(prev *Result, w Workload, opts Options, tolerance float64) (*Result, bool, error) {
	if prev == nil {
		return nil, false, fmt.Errorf("planner: Adapt with nil previous result")
	}
	if tolerance <= 0 {
		tolerance = 0.2
	}
	opts = withDefaults(opts)

	// Measure the existing compilation on the sampled input.
	cur, _, err := runOnce(w, prev.Program, prev.Config, opts, false)
	if err != nil {
		return nil, false, fmt.Errorf("planner: adapt measurement: %w", err)
	}
	threshold := sim.Duration(float64(prev.FinalTime) * (1 + tolerance))
	if cur <= threshold {
		return prev, false, nil
	}

	// Degradation detected: run a fresh optimization round on the new
	// input.
	fresh, err := Plan(w, opts)
	if err != nil {
		return nil, false, err
	}
	if fresh.FinalTime < cur {
		return fresh, true, nil
	}
	// The old compilation still wins on the new input; keep it (but
	// record the re-optimization attempt).
	kept := *prev
	kept.FinalTime = cur
	return &kept, true, nil
}

// Measure runs an existing compilation against a (possibly different) input
// and returns the execution time. It is the measurement half of Adapt,
// exposed so harnesses can report how a stale compilation fares on a new
// input without triggering re-optimization.
func Measure(prev *Result, w Workload, opts Options) (sim.Duration, error) {
	if prev == nil {
		return 0, fmt.Errorf("planner: Measure with nil result")
	}
	opts = withDefaults(opts)
	t, _, err := runOnce(w, prev.Program, prev.Config, opts, false)
	return t, err
}
