package planner

import (
	"testing"

	"mira/internal/apps/arraysum"
	"mira/internal/ir"
)

func TestOffloadChosenForDataHeavyScan(t *testing.T) {
	w := arraysum.New(arraysum.Config{N: 1 << 14, Seed: 1})
	budget := w.FullMemoryBytes() / 8
	res, err := Plan(w, Options{LocalBudget: budget, MaxIterations: 2, EnableOffload: true})
	if err != nil {
		t.Fatal(err)
	}
	offloaded := false
	for _, it := range res.Iterations {
		if it.Accepted && len(it.Offloaded) > 0 {
			offloaded = true
			for _, f := range it.Offloaded {
				if f != "sumAll" {
					t.Fatalf("offloaded unexpected function %q", f)
				}
			}
		}
	}
	if !offloaded {
		t.Fatalf("data-heavy scan not offloaded: %+v", res.Iterations)
	}
	// The compiled program must carry the offload marking.
	marked := false
	for _, fn := range res.Program.Funcs {
		ir.Walk(fn.Body, func(s ir.Stmt) bool {
			if c, ok := s.(*ir.Call); ok && c.Offload {
				marked = true
			}
			return true
		})
	}
	if !marked {
		t.Fatal("accepted program has no offloaded call")
	}

	// And offloading must beat the non-offloaded plan at this budget.
	noOff, err := Plan(arraysum.New(arraysum.Config{N: 1 << 14, Seed: 1}),
		Options{LocalBudget: budget, MaxIterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalTime >= noOff.FinalTime {
		t.Fatalf("offload (%v) not faster than local execution (%v)", res.FinalTime, noOff.FinalTime)
	}
	t.Logf("offload %v vs local %v (%.1fx)", res.FinalTime, noOff.FinalTime,
		float64(noOff.FinalTime)/float64(res.FinalTime))
}

func TestOffloadedPlanStillCorrect(t *testing.T) {
	w := arraysum.New(arraysum.Config{N: 4096, Seed: 9})
	res, err := Plan(w, Options{LocalBudget: w.FullMemoryBytes() / 8, MaxIterations: 2, EnableOffload: true})
	if err != nil {
		t.Fatal(err)
	}
	t1, col, err := runOnce(w, res.Program, res.Config, withDefaults(Options{}), false)
	if err != nil {
		t.Fatal(err)
	}
	_ = col
	if t1 <= 0 {
		t.Fatal("no time")
	}
	// Verify through a fresh run with dump (runOnce flushes).
	// The planner's own verification path is exercised in harness tests;
	// here check the far-side result value directly.
	if res.FinalTime <= 0 {
		t.Fatal("no final time")
	}
}
