package planner

import (
	"testing"

	"mira/internal/apps/dataframe"
	"mira/internal/cache"
)

func draftsOf(sizes []int64, line int) []*sectionDraft {
	out := make([]*sectionDraft, len(sizes))
	for i, sz := range sizes {
		out[i] = &sectionDraft{
			name:      "d",
			lineBytes: line,
			sizeBytes: sz,
			structure: cache.Direct,
		}
	}
	return out
}

func TestNormalizeSizesNoOpUnderBudget(t *testing.T) {
	ds := draftsOf([]int64{1024, 2048}, 128)
	normalizeSizes(ds, 4096)
	if ds[0].sizeBytes != 1024 || ds[1].sizeBytes != 2048 {
		t.Fatalf("under-budget drafts resized: %d %d", ds[0].sizeBytes, ds[1].sizeBytes)
	}
}

func TestNormalizeSizesProportionalShrink(t *testing.T) {
	ds := draftsOf([]int64{6000, 2000}, 128)
	normalizeSizes(ds, 4000)
	var total int64
	for _, d := range ds {
		total += d.sizeBytes
		if d.sizeBytes < 128 {
			t.Fatalf("draft below line floor: %d", d.sizeBytes)
		}
	}
	if total > 4000 {
		t.Fatalf("shrink overshot budget: %d", total)
	}
	if ds[0].sizeBytes <= ds[1].sizeBytes {
		t.Fatal("proportionality lost: larger draft no longer larger")
	}
}

func TestNormalizeSizesLineFloorApplied(t *testing.T) {
	ds := draftsOf([]int64{10, 20}, 256)
	normalizeSizes(ds, 1<<20)
	if ds[0].sizeBytes != 256 || ds[1].sizeBytes != 256 {
		t.Fatalf("line floor not applied: %d %d", ds[0].sizeBytes, ds[1].sizeBytes)
	}
}

func TestNormalizeSizesLastResortShrinkToLines(t *testing.T) {
	// Proportional shares still overshoot once the small draft hits its
	// line floor: the last-resort pass collapses everything to one line.
	ds := draftsOf([]int64{8192, 256}, 128)
	normalizeSizes(ds, 600)
	for i, d := range ds {
		if d.sizeBytes != 128 {
			t.Fatalf("draft %d not collapsed to a line: %d", i, d.sizeBytes)
		}
	}
}

func TestNormalizeSizesImpossibleBudgetLeavesFloors(t *testing.T) {
	// Even one line per draft exceeds the budget; normalize must leave
	// the floors (Validate rejects later) rather than loop forever.
	ds := draftsOf([]int64{4096, 4096}, 512)
	normalizeSizes(ds, 100)
	for _, d := range ds {
		if d.sizeBytes != 512 {
			t.Fatalf("floor abandoned: %d", d.sizeBytes)
		}
	}
}

func TestAtLeast(t *testing.T) {
	// Fraction already above the floor: unchanged.
	if got := atLeast(0.5, 1, 10); got != 0.5 {
		t.Fatalf("atLeast(0.5,1,10) = %v", got)
	}
	// Floor dominates: k/n.
	if got := atLeast(0.1, 3, 10); got != 0.3 {
		t.Fatalf("atLeast(0.1,3,10) = %v", got)
	}
	// Degenerate n.
	if got := atLeast(0.25, 2, 0); got != 0.25 {
		t.Fatalf("atLeast with n=0 = %v", got)
	}
}

func TestPlanTinyBudgetDegradesGracefully(t *testing.T) {
	w := dataframe.New(dataframe.Config{Rows: 4096, Seed: 1})
	// A budget too small for any cache section must either error or fall
	// back to the iteration-0 swap configuration — candidate configs the
	// runtime rejects are rolled back, never surfaced as failures.
	res, err := Plan(w, Options{LocalBudget: 64, MaxIterations: 2})
	if err != nil {
		return // an explicit error is acceptable
	}
	if res.FinalTime <= 0 || res.FinalTime > res.BaselineTime {
		t.Fatalf("tiny budget regressed past the swap baseline: final %v baseline %v",
			res.FinalTime, res.BaselineTime)
	}
	// Whatever was accepted must fit the budget.
	var used int64 = res.Config.SwapPool
	for _, sec := range res.Config.Sections {
		used += sec.Cache.SizeBytes
	}
	if used > 64 {
		t.Fatalf("accepted config uses %d bytes of a 64-byte budget", used)
	}
}

func TestPlanZeroBudgetDefaulted(t *testing.T) {
	// Zero budget means "use the default fraction" per withDefaults —
	// Plan should succeed on a small workload.
	w := dataframe.New(dataframe.Config{Rows: 1024, Seed: 1})
	res, err := Plan(w, Options{MaxIterations: 1})
	if err != nil {
		t.Fatalf("zero-budget plan failed: %v", err)
	}
	if res.FinalTime <= 0 {
		t.Fatal("no time recorded")
	}
}
