package analysis

import "mira/internal/codec"

// CompressSampleBytes caps how much of each object's initial contents the
// planner samples when estimating compressibility: a prefix this long is
// enough to expose run structure (zero pages, repeated records) without
// re-reading whole multi-MB objects.
const CompressSampleBytes = 64 << 10

// CompressWorthwhile is the sampled compressed/raw ratio at or below which
// wire compression is predicted to pay. The codec's CPU charge is tiny next
// to wire time, but small savings vanish inside per-message overheads, so
// the screen asks for a real reduction before flipping a section on; the
// planner's measured accept/rollback still has the final word.
const CompressWorthwhile = 0.75

// Compressibility returns the ByteRun wire ratio (compressed/raw, 1.0 =
// incompressible) over at most CompressSampleBytes of the sample. Empty
// samples report 1.0: nothing to win.
func Compressibility(sample []byte) float64 {
	if len(sample) == 0 {
		return 1.0
	}
	if len(sample) > CompressSampleBytes {
		sample = sample[:CompressSampleBytes]
	}
	return codec.Ratio(sample)
}
