package analysis

import (
	"sort"

	"mira/internal/ir"
)

// ScatterPlan describes how an offload-safe function can be split into
// per-node sub-offloads: the body is a single counted reduction/map loop
// over a driving object, so disjoint index ranges of that loop can run on
// different cluster nodes and their partial results combine exactly.
//
// The recognized shape (after instrumentation is stripped) is
//
//	acc := <const>                       // plus other const inits
//	for iv := Lo; iv < Hi; iv++ {        // step 1
//	    ... loads / stores / temps ...
//	    acc = acc <op> <expr>            // exactly one accumulator
//	}
//	store result[<const>] = acc | const  // tail, runs on the caller
//	return acc | const | nothing
//
// with <op> one of +, min, max (integer-only, so partial combination is
// exact and byte-identical to sequential execution). Stores inside the loop
// must index with the raw induction variable, which keeps each sub-offload's
// write set disjoint and makes the staged commit idempotent.
type ScatterPlan struct {
	// Func is the analyzed function (unmodified).
	Func *ir.Func
	// Object is the driving object: the largest object accessed at the
	// raw induction variable, used for placement-aware partitioning.
	Object string
	// Lo and Hi are the loop bounds (each *ir.Const or *ir.Param).
	Lo, Hi ir.Expr
	// IVReg is the loop induction register.
	IVReg int
	// AccReg is the accumulator register.
	AccReg int
	// Op combines partial accumulators (OpAdd, OpMin, or OpMax).
	Op ir.BinOp
	// Init is the accumulator's initial value (0 for OpAdd).
	Init int64
	// Inits are the stripped pre-loop constant initializations.
	Inits []ir.Stmt
	// LoopName and LoopBody are the stripped loop's name and body; SubFunc
	// shares the body pointers (read-only at execution time).
	LoopName string
	LoopBody []ir.Stmt
	// Tail is the stripped post-loop suffix (constant-indexed stores of
	// the accumulator and an optional return); it runs on the caller after
	// partials are combined.
	Tail []ir.Stmt
}

// SubFunc builds the function one sub-offload executes: the constant inits,
// one loop per assigned [lo, hi) range, and a return of the accumulator.
// The tail is excluded — it is executed once by the caller after combining.
func (sp *ScatterPlan) SubFunc(ranges [][2]int64) *ir.Func {
	body := make([]ir.Stmt, 0, len(sp.Inits)+len(ranges)+1)
	body = append(body, sp.Inits...)
	for _, r := range ranges {
		body = append(body, &ir.Loop{
			Name:  sp.LoopName,
			IVReg: sp.IVReg,
			Start: &ir.Const{I: r[0]},
			End:   &ir.Const{I: r[1]},
			Step:  &ir.Const{I: 1},
			Body:  sp.LoopBody,
		})
	}
	body = append(body, &ir.Return{Val: &ir.Reg{ID: sp.AccReg}})
	return &ir.Func{
		Name:           sp.Func.Name + "#sub",
		Params:         sp.Func.Params,
		Body:           body,
		NumRegs:        sp.Func.NumRegs,
		NoSharedWrites: true,
	}
}

// AnalyzeScatter reports whether fn fits the scatter-gather shape and, if
// so, returns the partitioning plan. It tolerates codegen instrumentation
// (prefetches, fences, eviction hints) by stripping it first, so it works on
// both source programs and compiled ones.
func AnalyzeScatter(p *ir.Program, fn *ir.Func) (*ScatterPlan, bool) {
	body := stripInstrumentation(fn.Body)

	// Split body into const inits, one loop, and the tail.
	i := 0
	var inits []ir.Stmt
	for ; i < len(body); i++ {
		a, ok := body[i].(*ir.Assign)
		if !ok {
			break
		}
		if _, isConst := a.Val.(*ir.Const); !isConst {
			return nil, false
		}
		inits = append(inits, a)
	}
	if i >= len(body) {
		return nil, false
	}
	loop, ok := body[i].(*ir.Loop)
	if !ok {
		return nil, false
	}
	tail := body[i+1:]

	step, ok := loop.Step.(*ir.Const)
	if !ok || step.I != 1 {
		return nil, false
	}
	if !constOrParam(loop.Start) || !constOrParam(loop.End) {
		return nil, false
	}

	acc, op, okAcc := findAccumulator(loop.Body, loop.IVReg)
	if !okAcc {
		return nil, false
	}
	init, okInit := accInit(inits, acc)
	if !okInit || (op == ir.OpAdd && init != 0) {
		return nil, false
	}
	if !checkLoopBody(p, loop.Body, loop.IVReg, acc) {
		return nil, false
	}
	if !checkTemps(loop.Body, loop.IVReg, acc) {
		return nil, false
	}
	if !checkTail(tail, acc) {
		return nil, false
	}

	obj, okObj := drivingObject(p, loop.Body, loop.IVReg)
	if !okObj {
		return nil, false
	}

	return &ScatterPlan{
		Func:     fn,
		Object:   obj,
		Lo:       loop.Start,
		Hi:       loop.End,
		IVReg:    loop.IVReg,
		AccReg:   acc,
		Op:       op,
		Init:     init,
		Inits:    inits,
		LoopName: loop.Name,
		LoopBody: loop.Body,
		Tail:     tail,
	}, true
}

// stripInstrumentation removes codegen-inserted hints that do not affect
// values (prefetches, fences, eviction hints, releases), then dead loads
// whose destination register is never read, then conditionals emptied by
// the stripping. Loops keep their bodies stripped in place-order.
func stripInstrumentation(body []ir.Stmt) []ir.Stmt {
	out := stripHints(body)
	for {
		used := map[int]bool{}
		markReads(out, used)
		next := stripDead(out, used)
		if len(next) == len(out) && sameShape(next, out) {
			return next
		}
		out = next
	}
}

func stripHints(body []ir.Stmt) []ir.Stmt {
	out := make([]ir.Stmt, 0, len(body))
	for _, s := range body {
		switch st := s.(type) {
		case *ir.Prefetch, *ir.BatchPrefetch, *ir.Evict, *ir.Fence, *ir.Release:
			continue
		case *ir.Loop:
			cp := *st
			cp.Body = stripHints(st.Body)
			out = append(out, &cp)
		case *ir.If:
			cp := *st
			cp.Then = stripHints(st.Then)
			cp.Else = stripHints(st.Else)
			out = append(out, &cp)
		default:
			out = append(out, s)
		}
	}
	return out
}

// markReads records every register read by expressions in body.
func markReads(body []ir.Stmt, used map[int]bool) {
	mark := func(e ir.Expr) {
		ir.WalkExpr(e, func(x ir.Expr) bool {
			if r, ok := x.(*ir.Reg); ok {
				used[r.ID] = true
			}
			return true
		})
	}
	ir.Walk(body, func(s ir.Stmt) bool {
		switch st := s.(type) {
		case *ir.Loop:
			mark(st.Start)
			mark(st.End)
			mark(st.Step)
		case *ir.Load:
			mark(st.Index)
		case *ir.Store:
			mark(st.Index)
			mark(st.Val)
		case *ir.Assign:
			mark(st.Val)
		case *ir.If:
			mark(st.Cond)
		case *ir.Call:
			for _, a := range st.Args {
				mark(a)
			}
		case *ir.Return:
			mark(st.Val)
		case *ir.Intrinsic:
			mark(st.Dst.Off)
			mark(st.A.Off)
			mark(st.B.Off)
		}
		return true
	})
}

func stripDead(body []ir.Stmt, used map[int]bool) []ir.Stmt {
	out := make([]ir.Stmt, 0, len(body))
	for _, s := range body {
		switch st := s.(type) {
		case *ir.Load:
			if !used[st.Dst] {
				continue
			}
			out = append(out, s)
		case *ir.Loop:
			cp := *st
			cp.Body = stripDead(st.Body, used)
			out = append(out, &cp)
		case *ir.If:
			cp := *st
			cp.Then = stripDead(st.Then, used)
			cp.Else = stripDead(st.Else, used)
			if len(cp.Then) == 0 && len(cp.Else) == 0 {
				continue
			}
			out = append(out, &cp)
		default:
			out = append(out, s)
		}
	}
	return out
}

// sameShape reports whether two stripped bodies have identical statement
// counts at every nesting level (used as the fixpoint test).
func sameShape(a, b []ir.Stmt) bool {
	na, nb := 0, 0
	ir.Walk(a, func(ir.Stmt) bool { na++; return true })
	ir.Walk(b, func(ir.Stmt) bool { nb++; return true })
	return na == nb
}

func constOrParam(e ir.Expr) bool {
	switch e.(type) {
	case *ir.Const, *ir.Param:
		return true
	}
	return false
}

// findAccumulator locates the single loop-carried register: every
// assignment of the form r = r <op> rhs (op in {+, min, max}, rhs free of
// r) marks r as an accumulator candidate. Exactly one such register must
// exist, all its updates must share one operator, and it must appear
// nowhere else in the loop body.
func findAccumulator(body []ir.Stmt, ivReg int) (acc int, op ir.BinOp, ok bool) {
	type cand struct {
		op    ir.BinOp
		count int
		bad   bool
	}
	cands := map[int]*cand{}
	ir.Walk(body, func(s ir.Stmt) bool {
		a, isAssign := s.(*ir.Assign)
		if !isAssign {
			return true
		}
		bin, isBin := a.Val.(*ir.Bin)
		shaped := false
		if isBin {
			if r, isReg := bin.A.(*ir.Reg); isReg && r.ID == a.Dst {
				switch bin.Op {
				case ir.OpAdd, ir.OpMin, ir.OpMax:
					if !readsReg(bin.B, a.Dst) {
						shaped = true
					}
				}
			}
		}
		c := cands[a.Dst]
		if c == nil {
			c = &cand{op: ir.OpAdd}
			cands[a.Dst] = c
		}
		if shaped {
			if c.count > 0 && c.op != bin.Op {
				c.bad = true
			}
			c.op = bin.Op
			c.count++
		} else {
			c.bad = true
		}
		return true
	})
	found := -1
	for r, c := range cands {
		if c.count == 0 {
			continue
		}
		if c.bad || r == ivReg {
			return 0, 0, false
		}
		if found >= 0 {
			return 0, 0, false
		}
		found = r
		op = c.op
	}
	if found < 0 {
		return 0, 0, false
	}
	// The accumulator may only be read in its own update position.
	badRead := false
	ir.Walk(body, func(s ir.Stmt) bool {
		switch st := s.(type) {
		case *ir.Load:
			if readsReg(st.Index, found) || st.Dst == found {
				badRead = true
			}
		case *ir.Store:
			if readsReg(st.Index, found) || readsReg(st.Val, found) {
				badRead = true
			}
		case *ir.Assign:
			if st.Dst == found {
				// update shape already verified; rhs checked above
				return true
			}
			if readsReg(st.Val, found) {
				badRead = true
			}
		case *ir.If:
			if readsReg(st.Cond, found) {
				badRead = true
			}
		case *ir.Loop:
			if readsReg(st.Start, found) || readsReg(st.End, found) || readsReg(st.Step, found) {
				badRead = true
			}
		}
		return true
	})
	if badRead {
		return 0, 0, false
	}
	return found, op, true
}

func readsReg(e ir.Expr, id int) bool {
	hit := false
	ir.WalkExpr(e, func(x ir.Expr) bool {
		if r, ok := x.(*ir.Reg); ok && r.ID == id {
			hit = true
		}
		return true
	})
	return hit
}

func accInit(inits []ir.Stmt, acc int) (int64, bool) {
	val, found := int64(0), false
	for _, s := range inits {
		a := s.(*ir.Assign)
		if a.Dst != acc {
			continue
		}
		c := a.Val.(*ir.Const)
		val, found = c.I, true
	}
	return val, found
}

// checkLoopBody validates statement kinds, write disjointness, and
// integer-only arithmetic inside the loop.
func checkLoopBody(p *ir.Program, body []ir.Stmt, ivReg, acc int) bool {
	loaded := map[string]bool{}
	stored := map[string]bool{}
	ok := true
	check := func(obj, field string) bool {
		o, found := p.Object(obj)
		if !found || o.Local {
			return false
		}
		f, fok := o.FieldByName(field)
		return fok && !f.Float
	}
	ir.Walk(body, func(s ir.Stmt) bool {
		switch st := s.(type) {
		case *ir.Load:
			if st.Dst == ivReg || !check(st.Obj, st.Field) || hasFloatConst(st.Index) {
				ok = false
			}
			loaded[st.Obj] = true
		case *ir.Store:
			// Raw-IV indexing keeps sub-offload write sets disjoint.
			if r, isReg := st.Index.(*ir.Reg); !isReg || r.ID != ivReg {
				ok = false
			}
			if !check(st.Obj, st.Field) || hasFloatConst(st.Val) {
				ok = false
			}
			stored[st.Obj] = true
		case *ir.Assign:
			if st.Dst == ivReg || hasFloatConst(st.Val) {
				ok = false
			}
		case *ir.If:
			if hasFloatConst(st.Cond) {
				ok = false
			}
		default:
			ok = false // nested loops, calls, intrinsics, returns, hints
			return false
		}
		return true
	})
	if !ok {
		return false
	}
	// An object both read and written in-loop must be read at the raw IV
	// too: same-element, same-iteration, so read-your-writes holds within
	// one sub-offload and never crosses range boundaries.
	for obj := range stored {
		if !loaded[obj] {
			continue
		}
		pure := true
		ir.Walk(body, func(s ir.Stmt) bool {
			if ld, isLoad := s.(*ir.Load); isLoad && ld.Obj == obj {
				if r, isReg := ld.Index.(*ir.Reg); !isReg || r.ID != ivReg {
					pure = false
				}
			}
			return true
		})
		if !pure {
			return false
		}
	}
	return true
}

func hasFloatConst(e ir.Expr) bool {
	hit := false
	ir.WalkExpr(e, func(x ir.Expr) bool {
		if _, isF := x.(*ir.ConstF); isF {
			hit = true
		}
		return true
	})
	return hit
}

// checkTemps verifies no register other than the accumulator is
// loop-carried: every temp read at the loop body's top level must be
// unconditionally defined earlier in the same iteration. Otherwise a
// sub-offload starting mid-range would observe a zero register where the
// sequential run carried a value from the previous iteration.
func checkTemps(body []ir.Stmt, ivReg, acc int) bool {
	defined := map[int]bool{ivReg: true, acc: true}
	readsOf := func(s ir.Stmt) map[int]bool {
		reads := map[int]bool{}
		mark := func(e ir.Expr) {
			ir.WalkExpr(e, func(x ir.Expr) bool {
				if r, isReg := x.(*ir.Reg); isReg {
					reads[r.ID] = true
				}
				return true
			})
		}
		ir.Walk([]ir.Stmt{s}, func(inner ir.Stmt) bool {
			switch st := inner.(type) {
			case *ir.Load:
				mark(st.Index)
			case *ir.Store:
				mark(st.Index)
				mark(st.Val)
			case *ir.Assign:
				if bin, isBin := st.Val.(*ir.Bin); isBin && st.Dst == acc {
					mark(bin.B) // skip the acc self-read
				} else {
					mark(st.Val)
				}
			case *ir.If:
				mark(st.Cond)
			}
			return true
		})
		return reads
	}
	for _, s := range body {
		for r := range readsOf(s) {
			if !defined[r] {
				return false
			}
		}
		switch st := s.(type) {
		case *ir.Load:
			defined[st.Dst] = true
		case *ir.Assign:
			defined[st.Dst] = true
		}
	}
	return true
}

// checkTail accepts constant-indexed stores of the accumulator (or a
// constant) and an optional trailing return of the same.
func checkTail(tail []ir.Stmt, acc int) bool {
	accOrConst := func(e ir.Expr) bool {
		switch x := e.(type) {
		case nil:
			return true
		case *ir.Const:
			return true
		case *ir.Reg:
			return x.ID == acc
		}
		return false
	}
	for i, s := range tail {
		switch st := s.(type) {
		case *ir.Store:
			if _, isConst := st.Index.(*ir.Const); !isConst || !accOrConst(st.Val) {
				return false
			}
		case *ir.Return:
			if i != len(tail)-1 || !accOrConst(st.Val) {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// drivingObject picks the partitioning object: the largest object accessed
// at the raw induction variable (ties break on name).
func drivingObject(p *ir.Program, body []ir.Stmt, ivReg int) (string, bool) {
	seen := map[string]bool{}
	ir.Walk(body, func(s ir.Stmt) bool {
		var obj string
		var idx ir.Expr
		switch st := s.(type) {
		case *ir.Load:
			obj, idx = st.Obj, st.Index
		case *ir.Store:
			obj, idx = st.Obj, st.Index
		default:
			return true
		}
		if r, isReg := idx.(*ir.Reg); isReg && r.ID == ivReg {
			seen[obj] = true
		}
		return true
	})
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	best, bestSize := "", int64(-1)
	for _, n := range names {
		o, found := p.Object(n)
		if !found {
			continue
		}
		if o.SizeBytes() > bestSize {
			best, bestSize = n, o.SizeBytes()
		}
	}
	return best, best != ""
}
