package analysis

import (
	"fmt"
	"sort"
	"strings"
)

// Pattern classifies an object's access behavior within a scope (§4.2).
type Pattern int

const (
	// PatternNone means the object was not accessed in the scope.
	PatternNone Pattern = iota
	// PatternSequential is stride-1 access over elements.
	PatternSequential
	// PatternStrided is constant-stride access, stride > 1.
	PatternStrided
	// PatternIndirect is access through values loaded from another
	// object (pointer-valued indices).
	PatternIndirect
	// PatternInvariant is a loop-invariant (single-element) access.
	PatternInvariant
	// PatternRandom is anything the analysis cannot prove.
	PatternRandom
)

func (p Pattern) String() string {
	switch p {
	case PatternNone:
		return "none"
	case PatternSequential:
		return "sequential"
	case PatternStrided:
		return "strided"
	case PatternIndirect:
		return "indirect"
	case PatternInvariant:
		return "invariant"
	case PatternRandom:
		return "random"
	default:
		return fmt.Sprintf("Pattern(%d)", int(p))
	}
}

// ObjectAccess summarizes how one function scope uses one object.
type ObjectAccess struct {
	Object  string
	Pattern Pattern
	// Stride is the element stride for PatternStrided.
	Stride int64
	// IndirectVia names the object whose values index this one
	// (PatternIndirect).
	IndirectVia string
	// Fields lists accessed field names ("" = whole element), sorted.
	Fields []string
	// Reads / Writes count static access sites.
	Reads  int
	Writes int
	// SequentialWholeElementWrite reports stride-1 stores covering whole
	// elements — the precondition for no-fetch write allocation (§4.5).
	SequentialWholeElementWrite bool
	// FirstUse / LastUse are pre-order statement indices within the
	// function (lifetime analysis).
	FirstUse int
	LastUse  int
	// LastLoop is the loop containing the object's last access when
	// that access is sequential — the site for per-iteration eviction
	// hints (§4.5).
	LastLoopSequential bool
	// TripCount estimates dynamic accesses (trip count of the enclosing
	// nest at the hottest site; falls back to the object's element
	// count).
	TripCount int64
	// ElemBytes mirrors the object declaration for convenience.
	ElemBytes int
	// AccessedBytes is the number of bytes of each element the scope
	// actually touches (selective-transmission input).
	AccessedBytes int
	// CoResidentBytes is the largest simultaneous working set of any
	// tensor intrinsic touching this object (sum of operand footprints):
	// a cache section serving tensor operands must hold at least this
	// much to avoid refetching within one operator.
	CoResidentBytes int64
	// Scans counts distinct loops (or intrinsics) that traverse the
	// object in this scope. An object scanned more than once is *reused*:
	// caching its footprint beats streaming it repeatedly, which drives
	// the planner to size its section by sampling rather than by
	// prefetch window (§4.3).
	Scans int
}

// ReadOnly reports whether the scope never writes the object.
func (a *ObjectAccess) ReadOnly() bool { return a.Writes == 0 && a.Reads > 0 }

// WriteOnly reports whether the scope never reads the object.
func (a *ObjectAccess) WriteOnly() bool { return a.Reads == 0 && a.Writes > 0 }

// FusionGroup identifies adjacent fusable loops within one block of a
// function (§4.5 data access batching): same bounds, disjoint dependences.
type FusionGroup struct {
	Func string
	// Block is the pre-order statement index of the first loop of the
	// group within its containing block; Loops are the block-relative
	// indices of the group's members.
	Loops []int
}

// ChainedPrefetch records an indirect pair: Prefetching Source[i+d] then
// Target[Source[i+d]] hides both latencies (§1's motivating example).
type ChainedPrefetch struct {
	Func   string
	Source string
	Target string
}

// FuncReport is the analysis result for one function scope.
type FuncReport struct {
	Name    string
	Objects map[string]*ObjectAccess
	Fusions []FusionGroup
	Chains  []ChainedPrefetch
	// Ops estimates the function's scalar-operation count per
	// invocation (offload cost model input).
	Ops int64
	// BytesTouched estimates unique bytes of far objects touched per
	// invocation.
	BytesTouched int64
	// OffloadSafe reports the §4.8 precondition: no shared writable
	// data (declared by the program and not contradicted by analysis).
	OffloadSafe bool
}

// Report is the whole-program analysis result, restricted to the scopes the
// profiler selected.
type Report struct {
	Funcs map[string]*FuncReport
	// CallCounts estimates how many times each function runs per
	// program execution (entry = 1, multiplied through loops and call
	// sites). Dynamic reuse — an object scanned once per call of a
	// function called many times — multiplies through these.
	CallCounts map[string]int64
}

// callCount returns the dynamic invocation estimate for fn (at least 1).
func (r *Report) callCount(fn string) int64 {
	if c, ok := r.CallCounts[fn]; ok && c > 1 {
		return c
	}
	return 1
}

// Access returns the summary for obj in fn, or nil.
func (r *Report) Access(fn, obj string) *ObjectAccess {
	fr, ok := r.Funcs[fn]
	if !ok {
		return nil
	}
	return fr.Objects[obj]
}

// MergedObject folds the per-function summaries of obj into one
// program-level view: the "worst" pattern wins (indirect > random > strided
// > sequential > invariant) because the cache section must serve all scopes
// that share it.
func (r *Report) MergedObject(obj string) *ObjectAccess {
	var out *ObjectAccess
	names := make([]string, 0, len(r.Funcs))
	for n := range r.Funcs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		a := r.Funcs[n].Objects[obj]
		if a == nil {
			continue
		}
		if out == nil {
			cp := *a
			cp.Fields = append([]string(nil), a.Fields...)
			cp.Scans = a.Scans * int(r.callCount(n))
			out = &cp
			continue
		}
		out.Pattern = worsePattern(out.Pattern, a.Pattern)
		if a.Pattern == PatternIndirect && out.IndirectVia == "" {
			out.IndirectVia = a.IndirectVia
		}
		out.Reads += a.Reads
		out.Writes += a.Writes
		out.Fields = mergeFields(out.Fields, a.Fields)
		out.SequentialWholeElementWrite = out.SequentialWholeElementWrite && a.SequentialWholeElementWrite
		if a.TripCount > out.TripCount {
			out.TripCount = a.TripCount
		}
		out.AccessedBytes = maxInt(out.AccessedBytes, a.AccessedBytes)
		if a.CoResidentBytes > out.CoResidentBytes {
			out.CoResidentBytes = a.CoResidentBytes
		}
		out.Scans += a.Scans * int(r.callCount(n))
	}
	return out
}

// patternRank orders patterns by how much cache flexibility they demand.
func patternRank(p Pattern) int {
	switch p {
	case PatternInvariant:
		return 0
	case PatternSequential:
		return 1
	case PatternStrided:
		return 2
	case PatternRandom:
		return 3
	case PatternIndirect:
		return 4
	default:
		return -1
	}
}

func worsePattern(a, b Pattern) Pattern {
	if patternRank(b) > patternRank(a) {
		return b
	}
	return a
}

func mergeFields(a, b []string) []string {
	set := map[string]bool{}
	for _, f := range a {
		set[f] = true
	}
	for _, f := range b {
		set[f] = true
	}
	out := make([]string, 0, len(set))
	for f := range set {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// String renders the report for cmd/mirac.
func (r *Report) String() string {
	var sb strings.Builder
	names := make([]string, 0, len(r.Funcs))
	for n := range r.Funcs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fr := r.Funcs[n]
		fmt.Fprintf(&sb, "func %s (ops~%d, bytes~%d, offload-safe=%v)\n", n, fr.Ops, fr.BytesTouched, fr.OffloadSafe)
		objs := make([]string, 0, len(fr.Objects))
		for o := range fr.Objects {
			objs = append(objs, o)
		}
		sort.Strings(objs)
		for _, o := range objs {
			a := fr.Objects[o]
			fmt.Fprintf(&sb, "  %s: %v", o, a.Pattern)
			if a.Pattern == PatternStrided {
				fmt.Fprintf(&sb, "(stride %d)", a.Stride)
			}
			if a.Pattern == PatternIndirect {
				fmt.Fprintf(&sb, "(via %s)", a.IndirectVia)
			}
			fmt.Fprintf(&sb, " reads=%d writes=%d fields=%v bytes/elem=%d\n",
				a.Reads, a.Writes, a.Fields, a.AccessedBytes)
		}
		for _, fg := range fr.Fusions {
			fmt.Fprintf(&sb, "  fusable loops at block indices %v\n", fg.Loops)
		}
		for _, ch := range fr.Chains {
			fmt.Fprintf(&sb, "  chained prefetch %s -> %s\n", ch.Source, ch.Target)
		}
	}
	return sb.String()
}
