package analysis

import "mira/internal/netmodel"

// DoorbellBatchLines picks how many future cache lines one batched prefetch
// doorbell should cover for a sequential or strided stream (§4.5 data access
// batching). Batching amortizes the round trip and per-message overhead over
// several lines, but the marginal saving shrinks as the wire time of the
// extra lines comes to dominate; depth doubles only while adding lines still
// cuts the per-line cost by a meaningful fraction, and never past maxLines.
// Returns at least 1 (no batching).
func DoorbellBatchLines(net netmodel.Config, lineBytes int, maxLines int64) int64 {
	if lineBytes <= 0 || maxLines < 2 {
		return 1
	}
	const marginalGain = 0.30 // stop when doubling saves < 30% per line
	perLine := func(n int64) float64 {
		sizes := make([]int, n)
		for i := range sizes {
			sizes[i] = lineBytes
		}
		return float64(net.VectoredOneSidedCost(sizes)) / float64(n)
	}
	depth := int64(1)
	cost := perLine(1)
	for depth*2 <= maxLines {
		next := perLine(depth * 2)
		if next >= cost*(1-marginalGain) {
			break
		}
		depth *= 2
		cost = next
	}
	return depth
}
