package analysis

import (
	"testing"
	"testing/quick"

	"mira/internal/ir"
)

// Property: a load at index i*stride+offset classifies as Sequential when
// stride == 1 and Strided (with the exact stride recovered) when stride >
// 1, for arbitrary small strides and offsets. This is the scalar-evolution
// core every planner decision rests on.
func TestPropertyAffineClassification(t *testing.T) {
	f := func(strideRaw, offRaw uint8) bool {
		stride := int64(strideRaw%7) + 1
		off := int64(offRaw % 16)
		b := ir.NewBuilder("p")
		b.Object("arr", 8, 4096, ir.F("v", 0, 8))
		fb := b.Func("scan")
		fb.Loop(ir.C(0), ir.C(256), ir.C(1), func(i ir.Expr) {
			fb.Load("arr", ir.Add(ir.Mul(i, ir.C(stride)), ir.C(off)), "v")
		})
		r, err := Analyze(b.MustProgram(), nil, nil)
		if err != nil {
			return false
		}
		a := r.Access("scan", "arr")
		if a == nil {
			return false
		}
		if stride == 1 {
			return a.Pattern == PatternSequential
		}
		return a.Pattern == PatternStrided && a.Stride == stride
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: scaling the loop step instead of the index expression yields
// the same classification — i in [0, n) step s indexing arr[i] is strided
// by s exactly like i in [0, n/s) indexing arr[i*s].
func TestPropertyStepEquivalentToScale(t *testing.T) {
	f := func(strideRaw uint8) bool {
		stride := int64(strideRaw%6) + 2
		mk := func(byStep bool) *ir.Program {
			b := ir.NewBuilder("p")
			b.Object("arr", 8, 4096, ir.F("v", 0, 8))
			fb := b.Func("scan")
			if byStep {
				fb.Loop(ir.C(0), ir.C(512), ir.C(stride), func(i ir.Expr) {
					fb.Load("arr", i, "v")
				})
			} else {
				fb.Loop(ir.C(0), ir.C(512/stride), ir.C(1), func(i ir.Expr) {
					fb.Load("arr", ir.Mul(i, ir.C(stride)), "v")
				})
			}
			return b.MustProgram()
		}
		ra, err := Analyze(mk(true), nil, nil)
		if err != nil {
			return false
		}
		rb, err := Analyze(mk(false), nil, nil)
		if err != nil {
			return false
		}
		a, bb := ra.Access("scan", "arr"), rb.Access("scan", "arr")
		if a == nil || bb == nil {
			return false
		}
		return a.Pattern == bb.Pattern && a.Stride == bb.Stride
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: an index that depends on a value loaded from another object is
// always classified Indirect with the correct via-object, no matter what
// arithmetic wraps the loaded value.
func TestPropertyIndirectViaDetected(t *testing.T) {
	f := func(mulRaw, addRaw uint8) bool {
		mul := int64(mulRaw%5) + 1
		add := int64(addRaw % 32)
		b := ir.NewBuilder("p")
		b.Object("idx", 8, 1024, ir.F("v", 0, 8))
		b.Object("data", 8, 8192, ir.F("v", 0, 8))
		fb := b.Func("gather")
		fb.Loop(ir.C(0), ir.C(256), ir.C(1), func(i ir.Expr) {
			v := fb.Load("idx", i, "v")
			fb.Load("data", ir.Add(ir.Mul(v, ir.C(mul)), ir.C(add)), "v")
		})
		r, err := Analyze(b.MustProgram(), nil, nil)
		if err != nil {
			return false
		}
		a := r.Access("gather", "data")
		return a != nil && a.Pattern == PatternIndirect && a.IndirectVia == "idx"
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
