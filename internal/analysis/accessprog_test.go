package analysis

import (
	"reflect"
	"testing"

	"mira/internal/ir"
)

func TestAccessProgramAffineLoopCollapses(t *testing.T) {
	b := ir.NewBuilder("scan")
	b.Object("recs", 64, 100, ir.F("key", 0, 8))
	fb := b.Func("main")
	fb.Loop(ir.C(0), ir.C(100), ir.C(1), func(i ir.Expr) {
		v := fb.Load("recs", i, "key")
		fb.Store("recs", i, "key", ir.Add(v, ir.C(1)))
	})
	phases := AccessProgram(b.MustProgram())
	// Load and store hit the same (object, start, stride) site: one phase.
	want := []Phase{{Object: "recs", Start: 0, Stride: 1, Count: 100}}
	if !reflect.DeepEqual(phases, want) {
		t.Fatalf("phases = %+v, want %+v", phases, want)
	}
}

func TestAccessProgramOuterLoopUnrollsAndCoalesces(t *testing.T) {
	b := ir.NewBuilder("passes")
	b.Object("a", 8, 50)
	fb := b.Func("main")
	fb.Loop(ir.C(0), ir.C(3), ir.C(1), func(pass ir.Expr) {
		fb.Loop(ir.C(0), ir.C(50), ir.C(1), func(i ir.Expr) {
			fb.Load("a", i, "")
		})
	})
	phases := AccessProgram(b.MustProgram())
	// The outer pass loop unrolls concretely: three identical sweeps, not
	// coalesced (they restart at element 0, breaking the arithmetic run).
	want := []Phase{
		{Object: "a", Start: 0, Stride: 1, Count: 50},
		{Object: "a", Start: 0, Stride: 1, Count: 50},
		{Object: "a", Start: 0, Stride: 1, Count: 50},
	}
	if !reflect.DeepEqual(phases, want) {
		t.Fatalf("phases = %+v, want %+v", phases, want)
	}
}

func TestAccessProgramSkipsIndirectAccesses(t *testing.T) {
	b := ir.NewBuilder("graph")
	b.Object("edges", 16, 40, ir.F("to", 8, 8))
	b.Object("nodes", 128, 10, ir.F("count", 0, 8))
	fb := b.Func("main")
	fb.Loop(ir.C(0), ir.C(40), ir.C(1), func(i ir.Expr) {
		to := fb.Load("edges", i, "to")
		c := fb.Load("nodes", to, "count")
		fb.Store("nodes", to, "count", ir.Add(c, ir.C(1)))
	})
	phases := AccessProgram(b.MustProgram())
	// The edges sweep is affine; nodes[to] is data-dependent and must be
	// absent — programmed prefetch is exact where it speaks and silent
	// where it cannot.
	want := []Phase{{Object: "edges", Start: 0, Stride: 1, Count: 40}}
	if !reflect.DeepEqual(phases, want) {
		t.Fatalf("phases = %+v, want %+v", phases, want)
	}
}

func TestLowerPhasesMapsAndDeduplicates(t *testing.T) {
	phases := []Phase{
		{Object: "a", Start: 0, Stride: 1, Count: 8},
		{Object: "b", Start: 0, Stride: 1, Count: 4},
	}
	// Four 16-byte elements per 64-byte line for "a"; "b" is not covered by
	// the plane and must be skipped entirely.
	units := LowerPhases(phases, func(obj string, elem int64) (int64, bool) {
		if obj != "a" {
			return 0, false
		}
		return elem / 4, true
	})
	if want := []int64{0, 1}; !reflect.DeepEqual(units, want) {
		t.Fatalf("units = %v, want %v", units, want)
	}
}

func TestLowerPhasesBackwardStride(t *testing.T) {
	phases := []Phase{{Object: "a", Start: 9, Stride: -1, Count: 10}}
	units := LowerPhases(phases, func(_ string, elem int64) (int64, bool) {
		return elem / 5, true
	})
	if want := []int64{1, 0}; !reflect.DeepEqual(units, want) {
		t.Fatalf("units = %v, want %v", units, want)
	}
}
