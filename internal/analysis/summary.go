package analysis

import (
	"fmt"
	"sort"

	"mira/internal/ir"
)

// Analyze runs the static analyses over the selected function scopes and
// objects. Empty funcs means every function; empty objs means every
// non-local object. Selected functions implicitly include their callees
// (§4.1).
func Analyze(p *ir.Program, funcs []string, objs []string) (*Report, error) {
	if err := ir.Validate(p); err != nil {
		return nil, err
	}
	funcSet := map[string]bool{}
	if len(funcs) == 0 {
		for _, f := range p.Funcs {
			funcSet[f.Name] = true
		}
	} else {
		for _, name := range funcs {
			f, ok := p.Func(name)
			if !ok {
				return nil, fmt.Errorf("analysis: unknown function %q", name)
			}
			addWithCallees(p, f, funcSet)
		}
	}
	objSet := map[string]bool{}
	if len(objs) == 0 {
		for _, o := range p.Objects {
			if !o.Local {
				objSet[o.Name] = true
			}
		}
	} else {
		for _, name := range objs {
			if _, ok := p.Object(name); !ok {
				return nil, fmt.Errorf("analysis: unknown object %q", name)
			}
			objSet[name] = true
		}
	}

	r := &Report{Funcs: map[string]*FuncReport{}}
	for _, f := range p.Funcs {
		if !funcSet[f.Name] {
			continue
		}
		fr := analyzeFunc(p, f, objSet)
		r.Funcs[f.Name] = fr
	}
	r.CallCounts = callCounts(p)
	return r, nil
}

// callCounts estimates dynamic invocations per function: the entry runs
// once; each call site contributes its enclosing nest's trip product times
// the caller's own count. Recursion is cut off by a visit guard; unknown
// trips count as 1 (underestimate, never fabricate).
func callCounts(p *ir.Program) map[string]int64 {
	counts := map[string]int64{p.Entry: 1}
	stack := map[string]bool{}
	var visit func(name string, mult int64)
	visit = func(name string, mult int64) {
		if stack[name] {
			return
		}
		stack[name] = true
		defer delete(stack, name)
		fn, ok := p.Func(name)
		if !ok {
			return
		}
		env := newEnv()
		var walk func(body []ir.Stmt, trip int64)
		walk = func(body []ir.Stmt, trip int64) {
			for _, s := range body {
				switch st := s.(type) {
				case *ir.Loop:
					w := &walker{p: p, env: env}
					t := w.tripOf(st)
					inner := trip
					if t > 0 {
						inner *= t
					}
					env.loops = append(env.loops, st)
					walk(st.Body, inner)
					env.loops = env.loops[:len(env.loops)-1]
				case *ir.If:
					walk(st.Then, trip)
					walk(st.Else, trip)
				case *ir.Call:
					counts[st.Callee] += trip
					visit(st.Callee, trip)
				}
			}
		}
		walk(fn.Body, mult)
	}
	visit(p.Entry, 1)
	return counts
}

// addWithCallees inserts f and every function it (transitively) calls.
func addWithCallees(p *ir.Program, f *ir.Func, set map[string]bool) {
	if set[f.Name] {
		return
	}
	set[f.Name] = true
	ir.Walk(f.Body, func(s ir.Stmt) bool {
		if c, ok := s.(*ir.Call); ok {
			if callee, ok := p.Func(c.Callee); ok {
				addWithCallees(p, callee, set)
			}
		}
		return true
	})
}

// walker carries per-function analysis state.
type walker struct {
	p       *ir.Program
	fn      *ir.Func
	objSet  map[string]bool
	env     *env
	fr      *FuncReport
	stmtIdx int
	// trip is the product of enclosing loops' trip counts; -1 when any
	// enclosing trip is statically unknown.
	trip int64
	// writesAllSeqWhole tracks, per object, whether every write so far
	// is a stride-1 whole-element store.
	writesAllSeqWhole map[string]bool
	// scanSites tracks, per object, the distinct innermost loops (by
	// IVReg) and intrinsic sites that traverse it.
	scanSites map[string]map[int]bool
}

func analyzeFunc(p *ir.Program, fn *ir.Func, objSet map[string]bool) *FuncReport {
	w := &walker{
		p:                 p,
		fn:                fn,
		objSet:            objSet,
		env:               newEnv(),
		fr:                &FuncReport{Name: fn.Name, Objects: map[string]*ObjectAccess{}},
		trip:              1,
		writesAllSeqWhole: map[string]bool{},
		scanSites:         map[string]map[int]bool{},
	}
	w.block(fn.Body)
	w.finish()
	detectFusion(p, fn, w.fr)
	detectChains(p, fn, w.fr)
	w.fr.OffloadSafe = fn.NoSharedWrites && !w.touchesLocalObjects()
	return w.fr
}

func (w *walker) touchesLocalObjects() bool {
	for name := range w.fr.Objects {
		if o, ok := w.p.Object(name); ok && o.Local {
			return true
		}
	}
	return false
}

// finish resolves aggregate facts that need the whole walk.
func (w *walker) finish() {
	for name, a := range w.fr.Objects {
		a.Scans = len(w.scanSites[name])
		a.SequentialWholeElementWrite = a.Writes > 0 && w.writesAllSeqWhole[name]
		o, _ := w.p.Object(name)
		if a.TripCount <= 0 || a.TripCount > o.Count {
			a.TripCount = o.Count
		}
		sort.Strings(a.Fields)
		// Accessed bytes per element: sum of distinct accessed
		// fields.
		seen := map[string]bool{}
		total := 0
		for _, fname := range a.Fields {
			if seen[fname] {
				continue
			}
			seen[fname] = true
			if f, ok := o.FieldByName(fname); ok {
				total += f.Bytes
			}
		}
		if total > o.ElemBytes {
			total = o.ElemBytes
		}
		a.AccessedBytes = total
		a.ElemBytes = o.ElemBytes
	}
}

func (w *walker) block(stmts []ir.Stmt) {
	for _, s := range stmts {
		w.stmtIdx++
		switch st := s.(type) {
		case *ir.Assign:
			aff := w.env.evalAffine(st.Val)
			switch {
			case aff.ok:
				w.env.regs[st.Dst] = regInfo{kind: regAffine, aff: aff}
			case aff.via != "":
				w.env.regs[st.Dst] = regInfo{kind: regLoaded, obj: aff.via}
			default:
				w.env.regs[st.Dst] = regInfo{}
			}
			w.fr.Ops += w.weightedOps(st.Val)

		case *ir.Load:
			w.access(st.Obj, st.Field, false, st.Index)
			w.env.regs[st.Dst] = regInfo{kind: regLoaded, obj: st.Obj}
			w.fr.Ops += w.weightedOps(st.Index) + w.tripWeight()

		case *ir.Store:
			w.access(st.Obj, st.Field, true, st.Index)
			w.fr.Ops += w.weightedOps(st.Index) + w.weightedOps(st.Val) + w.tripWeight()

		case *ir.Loop:
			w.fr.Ops += w.tripWeight() // loop control
			t := w.tripOf(st)
			outerTrip := w.trip
			if w.trip > 0 && t > 0 {
				w.trip *= t
			} else {
				w.trip = -1
			}
			w.env.loops = append(w.env.loops, st)
			w.env.regs[st.IVReg] = regInfo{kind: regIV}
			w.block(st.Body)
			w.env.loops = w.env.loops[:len(w.env.loops)-1]
			w.env.regs[st.IVReg] = regInfo{}
			w.trip = outerTrip

		case *ir.If:
			w.fr.Ops += w.weightedOps(st.Cond)
			w.block(st.Then)
			w.block(st.Else)
			// Conservatively forget registers assigned in either
			// branch.
			clobbered := map[int]bool{}
			collectAssigned(st.Then, clobbered)
			collectAssigned(st.Else, clobbered)
			for reg := range clobbered {
				w.env.regs[reg] = regInfo{}
			}

		case *ir.Call:
			// Callees are analyzed as their own scopes; the call
			// result is unknown.
			if st.Dst >= 0 {
				w.env.regs[st.Dst] = regInfo{}
			}

		case *ir.Return:
			if st.Val != nil {
				w.fr.Ops += w.weightedOps(st.Val)
			}

		case *ir.Intrinsic:
			w.intrinsicAccess(st)

		case *ir.Prefetch, *ir.BatchPrefetch, *ir.Evict, *ir.Fence:
			// Compiler-inserted operations carry no new program
			// facts.
		}
	}
}

func collectAssigned(stmts []ir.Stmt, out map[int]bool) {
	ir.Walk(stmts, func(s ir.Stmt) bool {
		switch st := s.(type) {
		case *ir.Assign:
			out[st.Dst] = true
		case *ir.Load:
			out[st.Dst] = true
		case *ir.Loop:
			out[st.IVReg] = true
		case *ir.Call:
			if st.Dst >= 0 {
				out[st.Dst] = true
			}
		}
		return true
	})
}

// tripWeight is the dynamic multiplier of the current nest (1 when
// unknown: better to underestimate ops than to fabricate).
func (w *walker) tripWeight() int64 {
	if w.trip <= 0 {
		return 1
	}
	return w.trip
}

func (w *walker) weightedOps(e ir.Expr) int64 {
	return int64(ir.ExprOps(e)) * w.tripWeight()
}

// tripOf statically evaluates a loop's trip count (-1 if unknown).
func (w *walker) tripOf(l *ir.Loop) int64 {
	s := w.env.evalAffine(l.Start)
	e := w.env.evalAffine(l.End)
	st := w.env.evalAffine(l.Step)
	if !s.isConst() || !e.isConst() || !st.isConst() || st.c <= 0 {
		return -1
	}
	if e.c <= s.c {
		return 0
	}
	return (e.c - s.c + st.c - 1) / st.c
}

// access records one static access site.
func (w *walker) access(obj, field string, write bool, index ir.Expr) {
	if !w.objSet[obj] {
		return
	}
	decl, _ := w.p.Object(obj)
	a := w.fr.Objects[obj]
	if a == nil {
		a = &ObjectAccess{Object: obj, FirstUse: w.stmtIdx}
		w.fr.Objects[obj] = a
		w.writesAllSeqWhole[obj] = true
	}
	a.LastUse = w.stmtIdx
	if write {
		a.Writes++
	} else {
		a.Reads++
	}
	a.Fields = mergeFields(a.Fields, []string{field})
	if len(w.env.loops) > 0 {
		if w.scanSites[obj] == nil {
			w.scanSites[obj] = map[int]bool{}
		}
		w.scanSites[obj][w.env.loops[len(w.env.loops)-1].IVReg] = true
	}

	pat, stride, via := w.classify(index)
	a.Pattern = worsePattern(a.Pattern, pat)
	if pat == PatternStrided {
		a.Stride = stride
	}
	if pat == PatternIndirect && a.IndirectVia == "" {
		a.IndirectVia = via
	}
	a.LastLoopSequential = pat == PatternSequential && len(w.env.loops) > 0

	if write && !(pat == PatternSequential && field == "") {
		w.writesAllSeqWhole[obj] = false
	}

	// Dynamic access estimate.
	t := w.tripWeight()
	fieldBytes := decl.ElemBytes
	if f, ok := decl.FieldByName(field); ok {
		fieldBytes = f.Bytes
	}
	add := t * int64(fieldBytes)
	if add > decl.SizeBytes() {
		add = decl.SizeBytes()
	}
	w.fr.BytesTouched += add
	if t > a.TripCount {
		a.TripCount = t
	}
}

// classify runs scalar evolution on an index expression under the current
// loop nest.
func (w *walker) classify(index ir.Expr) (Pattern, int64, string) {
	aff := w.env.evalAffine(index)
	if !aff.ok {
		if aff.via != "" {
			return PatternIndirect, 0, aff.via
		}
		return PatternRandom, 0, ""
	}
	// Find the deepest enclosing loop whose IV appears. The per-iteration
	// stride in elements is the IV's coefficient times the loop step: a
	// step-s loop indexing arr[i] advances exactly like a step-1 loop
	// indexing arr[i*s].
	for i := len(w.env.loops) - 1; i >= 0; i-- {
		l := w.env.loops[i]
		c := aff.coef[l.IVReg]
		if c == 0 {
			continue
		}
		if st := w.env.evalAffine(l.Step); st.ok && st.isConst() && st.c != 0 {
			c *= st.c
		}
		if c == 1 || c == -1 {
			return PatternSequential, c, ""
		}
		return PatternStrided, c, ""
	}
	return PatternInvariant, 0, ""
}

// intrinsicAccess records tensor-intrinsic accesses: the analyzer knows
// each kind reads its inputs and writes its destination sequentially in
// whole elements.
func (w *walker) intrinsicAccess(st *ir.Intrinsic) {
	rec := func(t ir.TensorRef, write bool) {
		if t.Obj == "" || !w.objSet[t.Obj] {
			return
		}
		decl, _ := w.p.Object(t.Obj)
		a := w.fr.Objects[t.Obj]
		if a == nil {
			a = &ObjectAccess{Object: t.Obj, FirstUse: w.stmtIdx}
			w.fr.Objects[t.Obj] = a
			w.writesAllSeqWhole[t.Obj] = true
		}
		a.LastUse = w.stmtIdx
		a.Pattern = worsePattern(a.Pattern, PatternSequential)
		a.Fields = mergeFields(a.Fields, []string{""})
		if w.scanSites[t.Obj] == nil {
			w.scanSites[t.Obj] = map[int]bool{}
		}
		// Each intrinsic statement is its own scan site.
		w.scanSites[t.Obj][-w.stmtIdx] = true
		if write {
			a.Writes++
		} else {
			a.Reads++
		}
		a.LastLoopSequential = true
		elems := t.Elems() * w.tripWeight()
		add := elems * int64(decl.ElemBytes)
		if add > decl.SizeBytes() {
			add = decl.SizeBytes()
		}
		w.fr.BytesTouched += add
		if elems > a.TripCount {
			a.TripCount = elems
		}
	}
	// Simultaneous operand footprint (co-residency requirement).
	var coRes int64
	for _, t := range []ir.TensorRef{st.Dst, st.A, st.B} {
		if t.Obj != "" {
			coRes += t.Elems() * 8
		}
	}
	if st.Kind == ir.IntrMatMul || st.Kind == ir.IntrMatMulT {
		coRes += st.Dst.Elems() * 8 // Dst is read and rewritten
	}
	markCoRes := func(t ir.TensorRef) {
		if t.Obj == "" || !w.objSet[t.Obj] {
			return
		}
		if a := w.fr.Objects[t.Obj]; a != nil && coRes > a.CoResidentBytes {
			a.CoResidentBytes = coRes
		}
	}
	defer func() {
		markCoRes(st.Dst)
		markCoRes(st.A)
		markCoRes(st.B)
	}()

	if st.A.Obj != "" {
		rec(st.A, false)
	}
	if st.B.Obj != "" {
		rec(st.B, false)
	}
	// MatMul accumulates into Dst (read-modify-write).
	if st.Kind == ir.IntrMatMul || st.Kind == ir.IntrMatMulT {
		rec(st.Dst, false)
	}
	rec(st.Dst, true)
	// FLOP estimate.
	var flops int64
	switch st.Kind {
	case ir.IntrMatMul, ir.IntrMatMulT:
		flops = 2 * st.Dst.Rows * st.Dst.Cols * st.A.Cols
	case ir.IntrAdd, ir.IntrCopy:
		flops = st.Dst.Elems()
	default:
		flops = 8 * st.Dst.Elems()
	}
	w.fr.Ops += flops * w.tripWeight()
}
