// Package analysis implements Mira's static program analyses (§4.2,
// §5.2.2): scalar-evolution-style classification of index expressions over
// loop induction variables, per-object access summaries (pattern,
// granularity, read/write, field sets), lifetime analysis, loop-fusion /
// batching detection, and the offload cost model. The planner combines
// these results with profiling data to configure cache sections, and
// codegen uses them to rewrite the program.
//
// The analysis is sound in the paper's sense: it trades completeness for
// correctness — anything it cannot prove is classified Random/unknown and
// simply misses optimizations.
package analysis

import (
	"mira/internal/ir"
)

// affine is a linear form c + Σ coef[iv]·iv over loop induction-variable
// registers. ok=false means the expression is not affine.
type affine struct {
	c    int64
	coef map[int]int64
	ok   bool
	// via records the object whose loaded value feeds the expression
	// when affinity fails through a load-defined register — the
	// indirect-access signal (B[A[i]], §1).
	via string
}

func affConst(c int64) affine { return affine{c: c, ok: true} }

func affIV(reg int) affine {
	return affine{coef: map[int]int64{reg: 1}, ok: true}
}

func affFail(via string) affine { return affine{via: via} }

func (a affine) add(b affine, sign int64) affine {
	if !a.ok || !b.ok {
		return affFail(firstVia(a, b))
	}
	out := affine{c: a.c + sign*b.c, coef: map[int]int64{}, ok: true}
	for k, v := range a.coef {
		out.coef[k] += v
	}
	for k, v := range b.coef {
		out.coef[k] += sign * v
	}
	return out
}

func (a affine) mul(b affine) affine {
	if !a.ok || !b.ok {
		return affFail(firstVia(a, b))
	}
	// Only const * affine stays affine.
	if len(a.coef) == 0 {
		out := affine{c: a.c * b.c, coef: map[int]int64{}, ok: true}
		for k, v := range b.coef {
			out.coef[k] = v * a.c
		}
		return out
	}
	if len(b.coef) == 0 {
		return b.mul(a)
	}
	return affFail("")
}

func firstVia(a, b affine) string {
	if a.via != "" {
		return a.via
	}
	return b.via
}

// isConst reports whether the form is a plain constant.
func (a affine) isConst() bool { return a.ok && len(a.coef) == 0 }

// regKind classifies what a register holds at an access site.
type regKind int

const (
	regUnknown regKind = iota
	regIV              // loop induction variable
	regAffine          // an affine expression over IVs
	regLoaded          // value loaded from an object (indirect source)
)

// regInfo is the dataflow fact for one register (forward SSA-style
// analysis, §5.2.1).
type regInfo struct {
	kind regKind
	aff  affine // valid when kind == regAffine
	obj  string // valid when kind == regLoaded
}

// env tracks register facts and the enclosing loop nest during a walk.
type env struct {
	regs  map[int]regInfo
	loops []*ir.Loop // outermost..innermost
}

func newEnv() *env { return &env{regs: make(map[int]regInfo)} }

// evalAffine reduces an expression to affine form under the current
// register facts. Params are treated as symbolic non-IV values: a
// param-only expression is loop-invariant, so it reduces to "affine with no
// IV coefficients but unknown constant" — we model that as affine constant
// 0 with ok=true only when the expression is *entirely* constant; params
// make the form non-const but still IV-free, which we encode as an affine
// with a sentinel coefficient on register -1.
func (e *env) evalAffine(x ir.Expr) affine {
	switch t := x.(type) {
	case *ir.Const:
		return affConst(t.I)
	case *ir.ConstF:
		return affFail("")
	case *ir.Param:
		// Loop-invariant symbolic value.
		return affine{coef: map[int]int64{paramReg: 1}, ok: true}
	case *ir.Reg:
		info := e.regs[t.ID]
		switch info.kind {
		case regIV:
			return affIV(t.ID)
		case regAffine:
			return info.aff
		case regLoaded:
			return affFail(info.obj)
		default:
			return affFail("")
		}
	case *ir.Bin:
		a := e.evalAffine(t.A)
		b := e.evalAffine(t.B)
		switch t.Op {
		case ir.OpAdd:
			return a.add(b, 1)
		case ir.OpSub:
			return a.add(b, -1)
		case ir.OpMul:
			return a.mul(b)
		case ir.OpDiv, ir.OpMod:
			// Division by a constant of a pure constant stays
			// constant; anything else is non-affine.
			if a.isConst() && b.isConst() && b.c != 0 {
				if t.Op == ir.OpDiv {
					return affConst(a.c / b.c)
				}
				return affConst(a.c % b.c)
			}
			return affFail(firstVia(a, b))
		default:
			return affFail(firstVia(a, b))
		}
	case *ir.Un:
		a := e.evalAffine(t.A)
		if t.Op == ir.OpNeg && a.ok {
			return affConst(0).add(a, -1)
		}
		return affFail(a.via)
	default:
		return affFail("")
	}
}

// paramReg is the sentinel register id representing "some loop-invariant
// symbolic value" in affine coefficient maps.
const paramReg = -1

// strideOf returns the coefficient of the innermost loop's IV in the form,
// and whether the form depends on any IV at all.
func (e *env) strideOf(a affine) (stride int64, dependsOnIV bool) {
	if !a.ok {
		return 0, false
	}
	for reg, c := range a.coef {
		if reg == paramReg || c == 0 {
			continue
		}
		dependsOnIV = true
	}
	if len(e.loops) == 0 {
		return 0, dependsOnIV
	}
	inner := e.loops[len(e.loops)-1]
	return a.coef[inner.IVReg], dependsOnIV
}
