package analysis

import (
	"sort"

	"mira/internal/ir"
	"mira/internal/netmodel"
	"mira/internal/sim"
)

// OffloadParams parameterizes the §4.8 cost model.
type OffloadParams struct {
	// Net is the interconnect model (for RTT and bandwidth).
	Net netmodel.Config
	// ComputeOp is the compute node's per-operation cost.
	ComputeOp sim.Duration
	// RemoteSlowdown is the far CPU's slowdown factor.
	RemoteSlowdown float64
	// LineBytes is the typical fetch granularity for estimating miss
	// counts.
	LineBytes int
}

// DefaultOffloadParams matches the default runtime and network models.
func DefaultOffloadParams() OffloadParams {
	return OffloadParams{
		Net:            netmodel.DefaultConfig(),
		ComputeOp:      1 * sim.Nanosecond,
		RemoteSlowdown: 3.0,
		LineBytes:      1024,
	}
}

// OffloadDecision scores one function.
type OffloadDecision struct {
	Func string
	// LocalCost estimates executing on the compute node with a cold
	// section: fetch the touched bytes line by line.
	LocalCost sim.Duration
	// RemoteCost estimates offloading: one RPC plus compute at far-CPU
	// speed.
	RemoteCost sim.Duration
	// Offload is the verdict.
	Offload bool
}

// DecideOffload evaluates every offload-safe analyzed function. A function
// is offloaded when executing it next to the data — paying the RPC and the
// slower far CPU — beats moving its data across the network (§4.8:
// "computation-light functions whose accessed data are already in far
// memory").
func DecideOffload(p *ir.Program, r *Report, params OffloadParams) []OffloadDecision {
	var out []OffloadDecision
	names := make([]string, 0, len(r.Funcs))
	for n := range r.Funcs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		fr := r.Funcs[name]
		if !fr.OffloadSafe {
			continue
		}
		ops, bytes := totalCost(p, r, name, map[string]bool{})
		lines := (bytes + int64(params.LineBytes) - 1) / int64(params.LineBytes)
		local := sim.Duration(ops)*params.ComputeOp +
			sim.Duration(lines)*params.Net.RTTEstimate(params.LineBytes)
		remote := sim.Duration(float64(ops)*float64(params.ComputeOp)*params.RemoteSlowdown) +
			2*params.Net.TwoSidedCost(64)
		out = append(out, OffloadDecision{
			Func:       name,
			LocalCost:  local,
			RemoteCost: remote,
			Offload:    remote < local,
		})
	}
	return out
}

// totalCost sums ops and bytes of fn and its callees.
func totalCost(p *ir.Program, r *Report, name string, visited map[string]bool) (ops, bytes int64) {
	if visited[name] {
		return 0, 0
	}
	visited[name] = true
	fr, ok := r.Funcs[name]
	if !ok {
		return 0, 0
	}
	ops, bytes = fr.Ops, fr.BytesTouched
	fn, ok := p.Func(name)
	if !ok {
		return ops, bytes
	}
	ir.Walk(fn.Body, func(s ir.Stmt) bool {
		if c, isCall := s.(*ir.Call); isCall {
			co, cb := totalCost(p, r, c.Callee, visited)
			ops += co
			bytes += cb
		}
		return true
	})
	return ops, bytes
}
