package analysis

import "mira/internal/ir"

// Phase is one contiguous burst of the program's future access sequence:
// Count accesses to Object starting at element Start, advancing Stride
// elements per step. The ordered phase list is the "access program" of 3PO
// — an exact rendering of where the program will touch memory, lowered
// from the IR before any codegen rewriting.
type Phase struct {
	Object string
	Start  int64
	Stride int64
	Count  int64
}

// Budget caps for the access-program interpreter. The builder abstracts
// innermost affine loops into single phases, so these bound only outer-loop
// unrolling and pathological programs; hitting a cap truncates the program
// (prefetching less is always safe).
const (
	maxPhases       = 1 << 16
	maxUnrollSteps  = 1 << 16
	maxProgramUnits = 1 << 20
)

// AccessProgram lowers the program's affine loop structure into its ordered
// access phases, starting at the entry function. Outer loops with constant
// bounds are unrolled concretely; an innermost loop whose body is straight
// line code collapses into one phase per affine access site. Anything the
// interpreter cannot evaluate statically — indirect indices, data-dependent
// branches, unknown trip counts — is skipped: the access program is exact
// where the analysis speaks and silent where it cannot (the demand path
// covers the rest).
func AccessProgram(p *ir.Program) []Phase {
	b := &progBuilder{p: p, steps: maxUnrollSteps}
	if fn, ok := p.Func(p.Entry); ok {
		b.walk(fn, map[string]int64{})
	}
	return b.phases
}

type progBuilder struct {
	p      *ir.Program
	phases []Phase
	steps  int // remaining unroll budget
	depth  int // call depth (recursion guard)
}

// emit appends a phase, coalescing with the previous one when it continues
// the same arithmetic run.
func (b *progBuilder) emit(obj string, start, stride, count int64) {
	if count <= 0 || len(b.phases) >= maxPhases {
		return
	}
	if n := len(b.phases); n > 0 {
		prev := &b.phases[n-1]
		if prev.Object == obj && prev.Stride == stride &&
			prev.Start+prev.Stride*prev.Count == start {
			prev.Count += count
			return
		}
	}
	b.phases = append(b.phases, Phase{Object: obj, Start: start, Stride: stride, Count: count})
}

// frame is one function activation: concrete register values (only those
// statically evaluable) and bound scalar parameters.
type frame struct {
	regs   map[int]int64
	params map[string]int64
}

func (b *progBuilder) walk(fn *ir.Func, params map[string]int64) {
	if b.depth >= 8 {
		return
	}
	b.depth++
	defer func() { b.depth-- }()
	f := &frame{regs: map[int]int64{}, params: params}
	b.block(fn.Body, f)
}

func (b *progBuilder) block(stmts []ir.Stmt, f *frame) {
	for _, s := range stmts {
		if b.steps <= 0 || len(b.phases) >= maxPhases {
			return
		}
		switch st := s.(type) {
		case *ir.Assign:
			if v, ok := b.eval(st.Val, f); ok {
				f.regs[st.Dst] = v
			} else {
				delete(f.regs, st.Dst)
			}
		case *ir.Load:
			if idx, ok := b.eval(st.Index, f); ok {
				b.emit(st.Obj, idx, 1, 1)
			}
			// The loaded value is data, not statically known.
			delete(f.regs, st.Dst)
		case *ir.Store:
			if idx, ok := b.eval(st.Index, f); ok {
				b.emit(st.Obj, idx, 1, 1)
			}
		case *ir.Loop:
			b.loop(st, f)
		case *ir.If:
			if c, ok := b.eval(st.Cond, f); ok {
				if c != 0 {
					b.block(st.Then, f)
				} else {
					b.block(st.Else, f)
				}
			}
			// A data-dependent branch: neither arm is certain, emit
			// nothing, and forget registers either arm assigns.
			clobbered := map[int]bool{}
			collectAssigned(st.Then, clobbered)
			collectAssigned(st.Else, clobbered)
			for reg := range clobbered {
				delete(f.regs, reg)
			}
		case *ir.Call:
			callee, ok := b.p.Func(st.Callee)
			if !ok {
				continue
			}
			params := map[string]int64{}
			for i, a := range st.Args {
				if i < len(callee.Params) {
					if v, ok := b.eval(a, f); ok {
						params[callee.Params[i]] = v
					}
				}
			}
			b.walk(callee, params)
			if st.Dst >= 0 {
				delete(f.regs, st.Dst)
			}
		case *ir.Intrinsic:
			b.intrinsic(st, f)
		}
	}
}

// loop interprets one loop: constant-bound loops whose body is straight
// line code abstract into one phase per affine access site; loops with
// nested control flow unroll concretely under the step budget. Unknown
// bounds skip the loop entirely.
func (b *progBuilder) loop(l *ir.Loop, f *frame) {
	start, ok1 := b.eval(l.Start, f)
	end, ok2 := b.eval(l.End, f)
	step, ok3 := b.eval(l.Step, f)
	if !ok1 || !ok2 || !ok3 || step <= 0 || end <= start {
		return
	}
	trips := (end - start + step - 1) / step
	if b.straightLine(l.Body) {
		b.abstractLoop(l, f, start, step, trips)
		return
	}
	for iv := start; iv < end && b.steps > 0 && len(b.phases) < maxPhases; iv += step {
		b.steps--
		f.regs[l.IVReg] = iv
		b.block(l.Body, f)
	}
	delete(f.regs, l.IVReg)
}

// straightLine reports whether the body contains no control flow — the
// shape abstractLoop can collapse without unrolling.
func (b *progBuilder) straightLine(body []ir.Stmt) bool {
	for _, s := range body {
		switch s.(type) {
		case *ir.Loop, *ir.If, *ir.Call, *ir.Intrinsic, *ir.Return:
			return false
		}
	}
	return true
}

// abstractLoop collapses a straight-line loop into one phase per access
// site whose index is affine in the IV: evaluating the index at the first
// two iterations yields (start element, element stride). Sites sharing
// (object, start, stride) are emitted once.
func (b *progBuilder) abstractLoop(l *ir.Loop, f *frame, start, step, trips int64) {
	type site struct {
		obj           string
		first, stride int64
	}
	var sites []site
	evalAt := func(e ir.Expr, iv int64) (int64, bool) {
		f.regs[l.IVReg] = iv
		return b.eval(e, f)
	}
	record := func(obj string, index ir.Expr) {
		i0, ok := evalAt(index, start)
		if !ok {
			return
		}
		stride := int64(0)
		if trips > 1 {
			i1, ok := evalAt(index, start+step)
			if !ok {
				return
			}
			stride = i1 - i0
		}
		for _, sp := range sites {
			if sp.obj == obj && sp.first == i0 && sp.stride == stride {
				return
			}
		}
		sites = append(sites, site{obj: obj, first: i0, stride: stride})
	}
	// Registers written in the body (loaded data, reductions) are not
	// functions of the IV alone; forget them so indices through them fail
	// to evaluate instead of using stale values.
	clobbered := map[int]bool{}
	collectAssigned(l.Body, clobbered)
	for reg := range clobbered {
		delete(f.regs, reg)
	}
	for _, s := range l.Body {
		switch st := s.(type) {
		case *ir.Load:
			record(st.Obj, st.Index)
		case *ir.Store:
			record(st.Obj, st.Index)
		}
	}
	delete(f.regs, l.IVReg)
	for _, sp := range sites {
		if sp.stride == 0 {
			b.emit(sp.obj, sp.first, 0, 1)
			continue
		}
		b.emit(sp.obj, sp.first, sp.stride, trips)
	}
}

// intrinsic emits the tensor operands' sequential sweeps in access order
// (inputs, then accumulator read for matmul, then destination write).
func (b *progBuilder) intrinsic(st *ir.Intrinsic, f *frame) {
	rec := func(t ir.TensorRef) {
		if t.Obj == "" {
			return
		}
		if off, ok := b.eval(t.Off, f); ok {
			b.emit(t.Obj, off, 1, t.Elems())
		}
	}
	rec(st.A)
	rec(st.B)
	if st.Kind == ir.IntrMatMul || st.Kind == ir.IntrMatMulT {
		rec(st.Dst)
	}
	rec(st.Dst)
}

// eval statically evaluates an integer expression under the frame's known
// registers and parameters.
func (b *progBuilder) eval(e ir.Expr, f *frame) (int64, bool) {
	switch t := e.(type) {
	case *ir.Const:
		return t.I, true
	case *ir.Reg:
		v, ok := f.regs[t.ID]
		return v, ok
	case *ir.Param:
		v, ok := f.params[t.Name]
		return v, ok
	case *ir.Bin:
		a, ok := b.eval(t.A, f)
		if !ok {
			return 0, false
		}
		bb, ok := b.eval(t.B, f)
		if !ok {
			return 0, false
		}
		return applyBin(t.Op, a, bb)
	case *ir.Un:
		a, ok := b.eval(t.A, f)
		if !ok {
			return 0, false
		}
		switch t.Op {
		case ir.OpNeg:
			return -a, true
		case ir.OpNot:
			if a == 0 {
				return 1, true
			}
			return 0, true
		case ir.OpAbs:
			if a < 0 {
				return -a, true
			}
			return a, true
		}
		return 0, false
	default:
		return 0, false
	}
}

func applyBin(op ir.BinOp, a, b int64) (int64, bool) {
	bool01 := func(c bool) (int64, bool) {
		if c {
			return 1, true
		}
		return 0, true
	}
	switch op {
	case ir.OpAdd:
		return a + b, true
	case ir.OpSub:
		return a - b, true
	case ir.OpMul:
		return a * b, true
	case ir.OpDiv:
		if b == 0 {
			return 0, false
		}
		return a / b, true
	case ir.OpMod:
		if b == 0 {
			return 0, false
		}
		return a % b, true
	case ir.OpLt:
		return bool01(a < b)
	case ir.OpLe:
		return bool01(a <= b)
	case ir.OpGt:
		return bool01(a > b)
	case ir.OpGe:
		return bool01(a >= b)
	case ir.OpEq:
		return bool01(a == b)
	case ir.OpNe:
		return bool01(a != b)
	case ir.OpAnd:
		return bool01(a != 0 && b != 0)
	case ir.OpOr:
		return bool01(a != 0 || b != 0)
	case ir.OpMin:
		if a < b {
			return a, true
		}
		return b, true
	case ir.OpMax:
		if a > b {
			return a, true
		}
		return b, true
	default:
		return 0, false
	}
}

// LowerPhases expands element-granular phases into the plane-unit sequence
// a programmed prefetcher consumes. unitOf maps (object, element) to the
// plane's unit — page number or section line index — returning false for
// objects the plane does not cover (they are skipped). Consecutive
// duplicate units collapse, so a whole line or page of element accesses
// costs one entry; output is capped, truncating the tail.
func LowerPhases(phases []Phase, unitOf func(obj string, elem int64) (int64, bool)) []int64 {
	var out []int64
	push := func(u int64) bool {
		if n := len(out); n > 0 && out[n-1] == u {
			return true
		}
		if len(out) >= maxProgramUnits {
			return false
		}
		out = append(out, u)
		return true
	}
	for _, ph := range phases {
		for k := int64(0); k < ph.Count; k++ {
			u, ok := unitOf(ph.Object, ph.Start+k*ph.Stride)
			if !ok {
				break
			}
			if !push(u) {
				return out
			}
		}
	}
	return out
}
