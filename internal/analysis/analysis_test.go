package analysis

import (
	"testing"

	"mira/internal/ir"
)

// graphProgram is the Fig. 4 rundown example: sequential edges, indirect
// nodes.
func graphProgram() *ir.Program {
	b := ir.NewBuilder("graph")
	b.Object("edges", 16, 1000, ir.F("from", 0, 8), ir.F("to", 8, 8))
	b.Object("nodes", 128, 200, ir.F("count", 0, 8))
	fb := b.Func("traverse")
	fb.Loop(ir.C(0), ir.C(1000), ir.C(1), func(i ir.Expr) {
		from := fb.Load("edges", i, "from")
		to := fb.Load("edges", i, "to")
		c1 := fb.Load("nodes", from, "count")
		fb.Store("nodes", from, "count", ir.Add(c1, ir.C(1)))
		c2 := fb.Load("nodes", to, "count")
		fb.Store("nodes", to, "count", ir.Add(c2, ir.C(1)))
	})
	return b.MustProgram()
}

func TestGraphExampleClassification(t *testing.T) {
	r, err := Analyze(graphProgram(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	edges := r.Access("traverse", "edges")
	if edges == nil {
		t.Fatal("edges not analyzed")
	}
	if edges.Pattern != PatternSequential {
		t.Fatalf("edges pattern = %v, want sequential", edges.Pattern)
	}
	if !edges.ReadOnly() {
		t.Fatal("edges should be read-only")
	}
	nodes := r.Access("traverse", "nodes")
	if nodes.Pattern != PatternIndirect {
		t.Fatalf("nodes pattern = %v, want indirect", nodes.Pattern)
	}
	if nodes.IndirectVia != "edges" {
		t.Fatalf("nodes indirect via %q, want edges", nodes.IndirectVia)
	}
	if nodes.ReadOnly() || nodes.WriteOnly() {
		t.Fatal("nodes should be read-write")
	}
	if got := edges.AccessedBytes; got != 16 {
		t.Fatalf("edges accessed bytes = %d, want 16 (both fields)", got)
	}
	if got := nodes.AccessedBytes; got != 8 {
		t.Fatalf("nodes accessed bytes = %d, want 8 (count only)", got)
	}
	if edges.TripCount != 1000 {
		t.Fatalf("edges trip = %d, want 1000", edges.TripCount)
	}
}

func TestChainedPrefetchDetection(t *testing.T) {
	r, _ := Analyze(graphProgram(), nil, nil)
	fr := r.Funcs["traverse"]
	if len(fr.Chains) != 1 {
		t.Fatalf("chains = %+v, want 1", fr.Chains)
	}
	ch := fr.Chains[0]
	if ch.Source != "edges" || ch.Target != "nodes" {
		t.Fatalf("chain %+v, want edges->nodes", ch)
	}
}

func TestStridedClassification(t *testing.T) {
	b := ir.NewBuilder("strided")
	b.IntArray("a", 1024)
	fb := b.Func("main")
	fb.Loop(ir.C(0), ir.C(128), ir.C(1), func(i ir.Expr) {
		fb.Load("a", ir.Mul(i, ir.C(8)), "")
	})
	p := b.MustProgram()
	r, _ := Analyze(p, nil, nil)
	a := r.Access("main", "a")
	if a.Pattern != PatternStrided || a.Stride != 8 {
		t.Fatalf("pattern %v stride %d, want strided 8", a.Pattern, a.Stride)
	}
}

func TestAffineNestedLoops(t *testing.T) {
	// a[i*16 + j]: sequential in inner loop.
	b := ir.NewBuilder("nest")
	b.IntArray("a", 256)
	fb := b.Func("main")
	fb.Loop(ir.C(0), ir.C(16), ir.C(1), func(i ir.Expr) {
		fb.Loop(ir.C(0), ir.C(16), ir.C(1), func(j ir.Expr) {
			fb.Load("a", ir.Add(ir.Mul(i, ir.C(16)), j), "")
		})
	})
	p := b.MustProgram()
	r, _ := Analyze(p, nil, nil)
	a := r.Access("main", "a")
	if a.Pattern != PatternSequential {
		t.Fatalf("pattern = %v, want sequential", a.Pattern)
	}
	if a.TripCount != 256 {
		t.Fatalf("trip = %d, want 256", a.TripCount)
	}
}

func TestOuterLoopOnlyIndex(t *testing.T) {
	// a[i] inside inner loop j: classified by the deepest IV present
	// (outer i), so sequential — matches how the compiler would hoist.
	b := ir.NewBuilder("outer")
	b.IntArray("a", 64)
	fb := b.Func("main")
	fb.Loop(ir.C(0), ir.C(64), ir.C(1), func(i ir.Expr) {
		fb.Loop(ir.C(0), ir.C(4), ir.C(1), func(j ir.Expr) {
			fb.Load("a", i, "")
		})
	})
	p := b.MustProgram()
	r, _ := Analyze(p, nil, nil)
	if got := r.Access("main", "a").Pattern; got != PatternSequential {
		t.Fatalf("pattern = %v, want sequential", got)
	}
}

func TestInvariantClassification(t *testing.T) {
	b := ir.NewBuilder("inv")
	b.IntArray("a", 64)
	fb := b.Func("main", "k")
	fb.Loop(ir.C(0), ir.C(10), ir.C(1), func(i ir.Expr) {
		fb.Load("a", ir.P("k"), "")
	})
	p := b.MustProgram()
	r, _ := Analyze(p, nil, nil)
	if got := r.Access("main", "a").Pattern; got != PatternInvariant {
		t.Fatalf("pattern = %v, want invariant", got)
	}
}

func TestRandomClassification(t *testing.T) {
	// a[(i*i) % 64]: quadratic, not affine, no load involved -> random.
	b := ir.NewBuilder("rand")
	b.IntArray("a", 64)
	fb := b.Func("main")
	fb.Loop(ir.C(0), ir.C(100), ir.C(1), func(i ir.Expr) {
		fb.Load("a", ir.Mod(ir.Mul(i, i), ir.C(64)), "")
	})
	p := b.MustProgram()
	r, _ := Analyze(p, nil, nil)
	if got := r.Access("main", "a").Pattern; got != PatternRandom {
		t.Fatalf("pattern = %v, want random", got)
	}
}

func TestSequentialWholeElementWrite(t *testing.T) {
	b := ir.NewBuilder("wo")
	b.IntArray("out", 128)
	fb := b.Func("main")
	fb.Loop(ir.C(0), ir.C(128), ir.C(1), func(i ir.Expr) {
		fb.Store("out", i, "", ir.Mul(i, ir.C(2)))
	})
	p := b.MustProgram()
	r, _ := Analyze(p, nil, nil)
	a := r.Access("main", "out")
	if !a.WriteOnly() {
		t.Fatal("out should be write-only")
	}
	if !a.SequentialWholeElementWrite {
		t.Fatal("sequential whole-element write not detected")
	}
}

func TestPartialFieldWriteNotWholeElement(t *testing.T) {
	b := ir.NewBuilder("partial")
	b.Object("s", 16, 64, ir.F("a", 0, 8), ir.F("b", 8, 8))
	fb := b.Func("main")
	fb.Loop(ir.C(0), ir.C(64), ir.C(1), func(i ir.Expr) {
		fb.Store("s", i, "a", ir.C(1))
	})
	p := b.MustProgram()
	r, _ := Analyze(p, nil, nil)
	if r.Access("main", "s").SequentialWholeElementWrite {
		t.Fatal("partial-field store misdetected as whole-element")
	}
}

func TestLifetimeOrdering(t *testing.T) {
	b := ir.NewBuilder("life")
	b.IntArray("early", 32)
	b.IntArray("late", 32)
	fb := b.Func("main")
	fb.Loop(ir.C(0), ir.C(32), ir.C(1), func(i ir.Expr) {
		fb.Load("early", i, "")
	})
	fb.Loop(ir.C(0), ir.C(32), ir.C(1), func(i ir.Expr) {
		fb.Load("late", i, "")
	})
	p := b.MustProgram()
	r, _ := Analyze(p, nil, nil)
	e, l := r.Access("main", "early"), r.Access("main", "late")
	if e.LastUse >= l.FirstUse {
		t.Fatalf("early.LastUse=%d not before late.FirstUse=%d", e.LastUse, l.FirstUse)
	}
}

func TestFusionDetection(t *testing.T) {
	b := ir.NewBuilder("fuse")
	b.FloatArray("v", 1000)
	fb := b.Func("main")
	for op := 0; op < 3; op++ {
		fb.Loop(ir.C(0), ir.C(1000), ir.C(1), func(i ir.Expr) {
			fb.Load("v", i, "")
		})
	}
	p := b.MustProgram()
	r, _ := Analyze(p, nil, nil)
	fr := r.Funcs["main"]
	if len(fr.Fusions) != 1 {
		t.Fatalf("fusions = %+v, want one group", fr.Fusions)
	}
	if len(fr.Fusions[0].Loops) != 3 {
		t.Fatalf("group has %d loops, want 3", len(fr.Fusions[0].Loops))
	}
}

func TestFusionBlockedByDependence(t *testing.T) {
	// Loop 1 writes v; loop 2 reads v -> RAW, no fusion.
	b := ir.NewBuilder("dep")
	b.FloatArray("v", 100)
	fb := b.Func("main")
	fb.Loop(ir.C(0), ir.C(100), ir.C(1), func(i ir.Expr) {
		fb.Store("v", i, "", ir.CF(1))
	})
	fb.Loop(ir.C(0), ir.C(100), ir.C(1), func(i ir.Expr) {
		fb.Load("v", i, "")
	})
	p := b.MustProgram()
	r, _ := Analyze(p, nil, nil)
	if len(r.Funcs["main"].Fusions) != 0 {
		t.Fatal("dependent loops fused")
	}
}

func TestFusionBlockedByDifferentBounds(t *testing.T) {
	b := ir.NewBuilder("bounds")
	b.FloatArray("v", 100)
	b.FloatArray("w", 100)
	fb := b.Func("main")
	fb.Loop(ir.C(0), ir.C(100), ir.C(1), func(i ir.Expr) {
		fb.Load("v", i, "")
	})
	fb.Loop(ir.C(0), ir.C(50), ir.C(1), func(i ir.Expr) {
		fb.Load("w", i, "")
	})
	p := b.MustProgram()
	r, _ := Analyze(p, nil, nil)
	if len(r.Funcs["main"].Fusions) != 0 {
		t.Fatal("different-bounds loops fused")
	}
}

func TestScopeRestriction(t *testing.T) {
	p := graphProgram()
	r, err := Analyze(p, []string{"traverse"}, []string{"nodes"})
	if err != nil {
		t.Fatal(err)
	}
	if r.Access("traverse", "edges") != nil {
		t.Fatal("edges analyzed despite object filter")
	}
	if r.Access("traverse", "nodes") == nil {
		t.Fatal("nodes missing from filtered analysis")
	}
}

func TestCalleesIncludedInScope(t *testing.T) {
	b := ir.NewBuilder("callees")
	b.IntArray("a", 16)
	helper := b.Func("helper")
	helper.Load("a", ir.C(0), "")
	fb := b.Func("main")
	fb.Call("helper")
	b.SetEntry("main")
	p := b.MustProgram()
	r, err := Analyze(p, []string{"main"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Funcs["helper"]; !ok {
		t.Fatal("callee not implicitly analyzed")
	}
}

func TestMergedObjectTakesWorstPattern(t *testing.T) {
	b := ir.NewBuilder("merge")
	b.IntArray("a", 64)
	b.IntArray("idx", 64)
	f1 := b.Func("seq")
	f1.Loop(ir.C(0), ir.C(64), ir.C(1), func(i ir.Expr) {
		f1.Load("a", i, "")
	})
	f2 := b.Func("ind")
	f2.Loop(ir.C(0), ir.C(64), ir.C(1), func(i ir.Expr) {
		v := f2.Load("idx", i, "")
		f2.Load("a", v, "")
	})
	fb := b.Func("main")
	fb.Call("seq")
	fb.Call("ind")
	b.SetEntry("main")
	p := b.MustProgram()
	r, _ := Analyze(p, nil, nil)
	m := r.MergedObject("a")
	if m.Pattern != PatternIndirect {
		t.Fatalf("merged pattern = %v, want indirect", m.Pattern)
	}
}

func TestOffloadDecision(t *testing.T) {
	// Data-heavy, compute-light function: offload. Compute-heavy
	// function over tiny data: stay local.
	b := ir.NewBuilder("off")
	b.IntArray("big", 1<<20)
	b.IntArray("tiny", 8)

	dataHeavy := b.Func("scanBig")
	dataHeavy.MarkNoSharedWrites()
	acc := dataHeavy.Var(ir.C(0))
	dataHeavy.Loop(ir.C(0), ir.C(1<<20), ir.C(1), func(i ir.Expr) {
		v := dataHeavy.Load("big", i, "")
		dataHeavy.Set(acc, ir.Add(ir.R(acc.ID), v))
	})
	dataHeavy.Return(ir.R(acc.ID))

	computeHeavy := b.Func("crunchTiny")
	computeHeavy.MarkNoSharedWrites()
	acc2 := computeHeavy.Var(ir.C(1))
	computeHeavy.Loop(ir.C(0), ir.C(1_000_000), ir.C(1), func(i ir.Expr) {
		computeHeavy.Set(acc2, ir.Add(ir.Mul(ir.R(acc2.ID), ir.C(3)), ir.Mod(i, ir.C(7))))
	})
	computeHeavy.Load("tiny", ir.C(0), "")
	computeHeavy.Return(ir.R(acc2.ID))

	fb := b.Func("main")
	fb.Call("scanBig")
	fb.Call("crunchTiny")
	b.SetEntry("main")
	p := b.MustProgram()

	r, _ := Analyze(p, nil, nil)
	decisions := DecideOffload(p, r, DefaultOffloadParams())
	byName := map[string]OffloadDecision{}
	for _, d := range decisions {
		byName[d.Func] = d
	}
	if d, ok := byName["scanBig"]; !ok || !d.Offload {
		t.Fatalf("scanBig decision %+v, want offload", byName["scanBig"])
	}
	if d, ok := byName["crunchTiny"]; !ok || d.Offload {
		t.Fatalf("crunchTiny decision %+v, want local", byName["crunchTiny"])
	}
}

func TestOffloadRequiresSafety(t *testing.T) {
	b := ir.NewBuilder("unsafe")
	b.IntArray("a", 1024)
	f := b.Func("notMarked")
	f.Load("a", ir.C(0), "")
	fb := b.Func("main")
	fb.Call("notMarked")
	b.SetEntry("main")
	p := b.MustProgram()
	r, _ := Analyze(p, nil, nil)
	for _, d := range DecideOffload(p, r, DefaultOffloadParams()) {
		if d.Func == "notMarked" {
			t.Fatal("unmarked function considered for offload")
		}
	}
}

func TestIntrinsicSummaries(t *testing.T) {
	b := ir.NewBuilder("intr")
	b.FloatArray("m", 3*16)
	fb := b.Func("main")
	fb.MatMul(ir.T("m", ir.C(32), 4, 4), ir.T("m", ir.C(0), 4, 4), ir.T("m", ir.C(16), 4, 4))
	p := b.MustProgram()
	r, _ := Analyze(p, nil, nil)
	a := r.Access("main", "m")
	if a == nil {
		t.Fatal("intrinsic object not analyzed")
	}
	if a.Pattern != PatternSequential {
		t.Fatalf("pattern = %v, want sequential", a.Pattern)
	}
	if a.Reads == 0 || a.Writes == 0 {
		t.Fatal("matmul should read and write")
	}
	fr := r.Funcs["main"]
	if fr.Ops != 2*4*4*4 {
		t.Fatalf("ops = %d, want %d", fr.Ops, 2*4*4*4)
	}
}

func TestIfClobbersRegisterFacts(t *testing.T) {
	// After an If that reassigns a register, the analysis must not keep
	// treating it as affine.
	b := ir.NewBuilder("clobber")
	b.IntArray("a", 64)
	b.IntArray("src", 64)
	fb := b.Func("main")
	fb.Loop(ir.C(0), ir.C(64), ir.C(1), func(i ir.Expr) {
		x := fb.Var(i) // affine
		fb.If(ir.Gt(i, ir.C(10)), func() {
			v := fb.Load("src", i, "")
			fb.Set(&ir.Reg{ID: x.ID}, v) // now data-dependent
		}, nil)
		fb.Load("a", ir.R(x.ID), "")
	})
	p := b.MustProgram()
	r, _ := Analyze(p, nil, nil)
	got := r.Access("main", "a").Pattern
	if got == PatternSequential {
		t.Fatalf("clobbered register still classified sequential")
	}
}
