package analysis

import "mira/internal/ir"

// detectFusion finds runs of adjacent loops with identical bounds and safe
// dependences — the batching opportunity of §4.5 ("when we identify two
// arrays to be accessed by two adjacent loops, we fuse the loops and batch
// access the two arrays"). Only top-level runs within each block are
// considered, matching the paper's DataFrame example of three consecutive
// operator loops over one vector.
func detectFusion(p *ir.Program, fn *ir.Func, fr *FuncReport) {
	var scan func(stmts []ir.Stmt)
	scan = func(stmts []ir.Stmt) {
		i := 0
		for i < len(stmts) {
			l0, ok := stmts[i].(*ir.Loop)
			if !ok {
				if ifSt, ok := stmts[i].(*ir.If); ok {
					scan(ifSt.Then)
					scan(ifSt.Else)
				}
				i++
				continue
			}
			group := []int{i}
			groupLoops := []ir.Stmt{l0}
			j := i + 1
			for j < len(stmts) {
				// Constant scalar assigns between loops are
				// hoistable and do not break the run (codegen
				// hoists them above the fused loop).
				k := j
				for k < len(stmts) {
					a, isAssign := stmts[k].(*ir.Assign)
					if !isAssign || !isConstExpr(a.Val) {
						break
					}
					k++
				}
				if k >= len(stmts) {
					break
				}
				lj, ok := stmts[k].(*ir.Loop)
				if !ok || !sameBounds(l0, lj) {
					break
				}
				if !fusionSafe(append(append([]ir.Stmt(nil), groupLoops...), lj), p) {
					break
				}
				group = append(group, k)
				groupLoops = append(groupLoops, lj)
				j = k + 1
			}
			if len(group) >= 2 {
				fr.Fusions = append(fr.Fusions, FusionGroup{Func: fn.Name, Loops: group})
			}
			// Scan inside the loops too (nested opportunities).
			for _, gi := range group {
				scan(stmts[gi].(*ir.Loop).Body)
			}
			i = j
		}
	}
	scan(fn.Body)
}

// SameBounds reports structural equality of loop bounds (exported for
// codegen, which re-identifies fusable runs on the cloned IR it
// transforms).
func SameBounds(a, b *ir.Loop) bool { return sameBounds(a, b) }

// CanFuse reports whether a run of loops is dependence-safe to fuse.
func CanFuse(loops []ir.Stmt) bool { return fusionSafe(loops, nil) }

// sameBounds reports structural equality of loop bounds.
func sameBounds(a, b *ir.Loop) bool {
	return exprEqual(a.Start, b.Start) && exprEqual(a.End, b.End) && exprEqual(a.Step, b.Step)
}

// exprEqual is structural equality over expressions, with registers
// considered unequal across loops (their values differ) unless identical
// ids — sufficient for the constant/param bounds apps use.
func exprEqual(a, b ir.Expr) bool {
	switch x := a.(type) {
	case *ir.Const:
		y, ok := b.(*ir.Const)
		return ok && x.I == y.I
	case *ir.ConstF:
		y, ok := b.(*ir.ConstF)
		return ok && x.F == y.F
	case *ir.Param:
		y, ok := b.(*ir.Param)
		return ok && x.Name == y.Name
	case *ir.Reg:
		y, ok := b.(*ir.Reg)
		return ok && x.ID == y.ID
	case *ir.Bin:
		y, ok := b.(*ir.Bin)
		return ok && x.Op == y.Op && exprEqual(x.A, y.A) && exprEqual(x.B, y.B)
	case *ir.Un:
		y, ok := b.(*ir.Un)
		return ok && x.Op == y.Op && exprEqual(x.A, y.A)
	default:
		return false
	}
}

// fusionSafe checks cross-loop dependences over the candidate run: no
// object written in one loop may be accessed in another (RAW/WAR/WAW all
// forbidden; shared read-only objects are the batching win and are
// allowed). Calls and offloads inside any loop veto fusion.
func fusionSafe(loops []ir.Stmt, p *ir.Program) bool {
	type rw struct{ reads, writes map[string]bool }
	sets := make([]rw, len(loops))
	for i, s := range loops {
		l := s.(*ir.Loop)
		sets[i] = rw{reads: map[string]bool{}, writes: map[string]bool{}}
		unsafe := false
		ir.Walk(l.Body, func(st ir.Stmt) bool {
			switch t := st.(type) {
			case *ir.Load:
				sets[i].reads[t.Obj] = true
			case *ir.Store:
				sets[i].writes[t.Obj] = true
			case *ir.Intrinsic:
				if t.A.Obj != "" {
					sets[i].reads[t.A.Obj] = true
				}
				if t.B.Obj != "" {
					sets[i].reads[t.B.Obj] = true
				}
				if t.Dst.Obj != "" {
					sets[i].writes[t.Dst.Obj] = true
				}
			case *ir.Call:
				unsafe = true
			}
			return true
		})
		if unsafe {
			return false
		}
	}
	for i := range sets {
		for j := range sets {
			if i == j {
				continue
			}
			for obj := range sets[i].writes {
				if sets[j].reads[obj] || sets[j].writes[obj] {
					return false
				}
			}
		}
	}
	return true
}

// isConstExpr reports whether e is a literal constant.
func isConstExpr(e ir.Expr) bool {
	switch e.(type) {
	case *ir.Const, *ir.ConstF:
		return true
	default:
		return false
	}
}

// detectChains finds indirect pairs inside one loop body: a sequential load
// of Source feeding the index of an access to Target. Codegen turns these
// into two-step prefetches (fetch Source[i+d], then Target[Source[i+d]]).
func detectChains(p *ir.Program, fn *ir.Func, fr *FuncReport) {
	seen := map[[2]string]bool{}
	for _, oa := range fr.Objects {
		if oa.Pattern != PatternIndirect || oa.IndirectVia == "" {
			continue
		}
		src := fr.Objects[oa.IndirectVia]
		if src == nil || src.Pattern != PatternSequential {
			continue
		}
		key := [2]string{oa.IndirectVia, oa.Object}
		if seen[key] {
			continue
		}
		seen[key] = true
		fr.Chains = append(fr.Chains, ChainedPrefetch{
			Func:   fn.Name,
			Source: oa.IndirectVia,
			Target: oa.Object,
		})
	}
}
