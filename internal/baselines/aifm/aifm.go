// Package aifm models AIFM [Ruan et al., OSDI'20]: a library-based
// far-memory runtime with remotable pointers. Its paper-relevant behaviors
// (§2.1, §6.1):
//
//   - every access to a remote data item pays a software dereference
//     (remotable-pointer resolution, dereference-scope bookkeeping) — AIFM
//     is slower than native even at 100% local memory;
//   - each remotable object carries metadata that consumes local memory, so
//     arrays of small elements lose a large fraction of their cache to
//     metadata — the reason AIFM's MCF "fails to execute when local memory
//     is smaller than full size" (Fig. 18);
//   - data moves at object granularity with no program knowledge: no
//     compiler prefetch, no batching across library calls, whole objects
//     fetched even when one field is used.
//
// It implements exec.Backend, so the same IR programs that run on Mira run
// on AIFM unchanged.
package aifm

import (
	"container/list"
	"fmt"
	"sort"

	"mira/internal/farmem"
	"mira/internal/faults"
	"mira/internal/ir"
	"mira/internal/netmodel"
	"mira/internal/rt"
	"mira/internal/sim"
	"mira/internal/trace"
	"mira/internal/transport"
	"mira/internal/workload"
)

// Options tunes the baseline.
type Options struct {
	// LocalBudget is the local memory in bytes; metadata is carved out
	// of it before any data caching.
	LocalBudget int64
	// MetaPerObject is the per-remotable-object metadata footprint
	// (remotable pointer + dereference-scope entry). Default 8 B — the
	// size of AIFM's unified remotable pointer; the element data itself
	// carries the object header when cached.
	MetaPerObject int64
	// DerefCost is the software cost of each remotable-pointer
	// dereference. Default 85 ns.
	DerefCost sim.Duration
	// ChunkBytes selects the remotable-object granularity. Zero models
	// AIFM's array library (one remotable object per element — the
	// configuration whose metadata makes MCF fail below full memory);
	// a positive value models chunked libraries like AIFM's own
	// DataFrame implementation, which packs elements into ~ChunkBytes
	// remotable objects (fewer pointers, but whole chunks move even
	// when one field is needed).
	ChunkBytes int64
	// Net overrides the interconnect model.
	Net netmodel.Config
	// NodeCfg overrides the far node.
	NodeCfg farmem.NodeConfig
	// Faults wires the deterministic fault injector into the transport.
	Faults *faults.Config
	// Resilience overrides the transport's retry/deadline/breaker policy.
	Resilience *transport.Policy
}

func (o Options) withDefaults() Options {
	if o.MetaPerObject == 0 {
		o.MetaPerObject = 8
	}
	if o.DerefCost == 0 {
		o.DerefCost = 85 * sim.Nanosecond
	}
	if o.Net.BytesPerSecond == 0 {
		o.Net = netmodel.DefaultConfig()
	}
	if o.NodeCfg.Capacity == 0 {
		o.NodeCfg = farmem.DefaultNodeConfig()
	}
	return o
}

// Runtime is the AIFM-style backend.
type Runtime struct {
	opts    Options
	node    *farmem.Node
	tr      *transport.T
	objs    map[string]*objState
	cap     int64 // usable data bytes after metadata
	used    int64
	entries map[entryKey]*list.Element
	lru     *list.List // front = most recent
	meta    int64

	// lock serializes dereferences across simulated threads: the object
	// cache's shared state (LRU list, entry map, capacity accounting) is
	// guarded by one runtime lock, so a hit holds it for the dereference
	// bookkeeping and a miss holds it through eviction and fetch. This is
	// the synchronization that keeps AIFM's shared cache from scaling
	// with threads (Fig. 25); single-threaded runs never contend on it
	// and see identical timings.
	lock sim.Serializer

	// stats
	derefs, hits, misses, evictions, writebacks int64
}

type objState struct {
	decl    *ir.Object
	farBase uint64
	// chunkElems is the number of elements per remotable object.
	chunkElems int64
	// chunks is the remotable-object count.
	chunks int64
}

type entryKey struct {
	obj  string
	elem int64
}

type entry struct {
	key   entryKey
	data  []byte
	dirty bool
}

// SetTrace attaches the deterministic tracing layer to the baseline's
// transport, so AIFM runs emit the same net-level spans and counters as
// the other systems. A nil tracer leaves tracing disabled.
func (r *Runtime) SetTrace(tr *trace.Tracer) {
	if tr == nil {
		return
	}
	r.tr.SetTrace(tr, "net")
}

// New builds an AIFM runtime for w and loads its data. It returns an error
// when metadata leaves no room for data — the failure mode the paper
// observes for MCF below full memory.
func New(w workload.Workload, opts Options) (*Runtime, error) {
	opts = opts.withDefaults()
	prog := w.Program()
	r := &Runtime{
		opts:    opts,
		node:    farmem.NewNode(opts.NodeCfg),
		objs:    map[string]*objState{},
		entries: map[entryKey]*list.Element{},
		lru:     list.New(),
	}
	r.tr = transport.New(r.node, opts.Net)
	if opts.Resilience != nil {
		r.tr.SetPolicy(*opts.Resilience)
	}
	if opts.Faults != nil && opts.Faults.Enabled() {
		r.tr.SetBackend(faults.New(r.node, *opts.Faults))
	}
	var maxUnit int64
	for _, o := range prog.Objects {
		if o.Local {
			continue
		}
		base, err := r.node.Alloc(uint64(o.SizeBytes()))
		if err != nil {
			return nil, err
		}
		chunkElems := int64(1)
		if opts.ChunkBytes > 0 {
			chunkElems = opts.ChunkBytes / int64(o.ElemBytes)
			if chunkElems < 1 {
				chunkElems = 1
			}
		}
		chunks := (o.Count + chunkElems - 1) / chunkElems
		r.objs[o.Name] = &objState{decl: o, farBase: base, chunkElems: chunkElems, chunks: chunks}
		r.meta += chunks * opts.MetaPerObject
		if unit := chunkElems * int64(o.ElemBytes); unit > maxUnit {
			maxUnit = unit
		}
	}
	r.cap = opts.LocalBudget - r.meta
	if r.cap < maxUnit {
		return nil, fmt.Errorf("aifm: %d bytes of remotable-pointer metadata leave no usable cache in %d-byte budget (fails to execute)",
			r.meta, opts.LocalBudget)
	}
	if err := w.Init(r); err != nil {
		return nil, err
	}
	return r, nil
}

// MetadataBytes reports the remotable-pointer metadata footprint (Fig. 20).
func (r *Runtime) MetadataBytes() int64 { return r.meta }

// InitObject loads workload bytes (untimed setup).
func (r *Runtime) InitObject(name string, data []byte) error {
	o, ok := r.objs[name]
	if !ok {
		return fmt.Errorf("aifm: unknown object %q", name)
	}
	return r.node.Write(o.farBase, data)
}

// DumpObject reads back far contents; call FlushAll first.
func (r *Runtime) DumpObject(name string) ([]byte, error) {
	o, ok := r.objs[name]
	if !ok {
		return nil, fmt.Errorf("aifm: unknown object %q", name)
	}
	out := make([]byte, o.decl.SizeBytes())
	if err := r.node.Read(o.farBase, out); err != nil {
		return nil, err
	}
	return out, nil
}

// Access dereferences one remotable object (element) and copies the field
// bytes. Every access pays the dereference cost; misses fetch the whole
// element.
func (r *Runtime) Access(clk *sim.Clock, name string, elem int64, field ir.Field, buf []byte, write bool, _ rt.AccessOpts) error {
	o, ok := r.objs[name]
	if !ok {
		return fmt.Errorf("aifm: access to unknown object %q", name)
	}
	if elem < 0 || elem >= o.decl.Count {
		return fmt.Errorf("aifm: %q[%d] out of range", name, elem)
	}
	r.derefs++
	// Take the shared cache lock for the dereference; a concurrent
	// thread's dereference (or in-progress miss) pushes the acquisition
	// instant forward.
	clk.AdvanceTo(r.lock.Acquire(clk.Now(), r.opts.DerefCost))
	clk.Advance(r.opts.DerefCost)
	e, err := r.deref(clk, o, elem/o.chunkElems)
	if err != nil {
		return err
	}
	off := (elem%o.chunkElems)*int64(o.decl.ElemBytes) + int64(field.Offset)
	if len(buf) > field.Bytes {
		buf = buf[:field.Bytes]
	}
	if write {
		copy(e.data[off:], buf)
		e.dirty = true
	} else {
		copy(buf, e.data[off:])
	}
	return nil
}

// chunkSize is the byte size of chunk c (the last chunk may be short).
func (o *objState) chunkSize(c int64) int64 {
	elems := o.chunkElems
	if last := o.decl.Count - c*o.chunkElems; last < elems {
		elems = last
	}
	return elems * int64(o.decl.ElemBytes)
}

// deref resolves (obj, chunk) to a cached remotable object, fetching on
// miss.
func (r *Runtime) deref(clk *sim.Clock, o *objState, chunk int64) (*entry, error) {
	key := entryKey{obj: o.decl.Name, elem: chunk}
	if el, ok := r.entries[key]; ok {
		r.hits++
		r.lru.MoveToFront(el)
		return el.Value.(*entry), nil
	}
	r.misses++
	size := o.chunkSize(chunk)
	for r.used+size > r.cap {
		if err := r.evictOne(clk); err != nil {
			return nil, err
		}
	}
	e := &entry{key: key, data: make([]byte, size)}
	addr := o.farBase + uint64(chunk)*uint64(o.chunkElems)*uint64(o.decl.ElemBytes)
	// AIFM moves objects in messages handled by a remote agent:
	// two-sided.
	data, done, err := r.tr.GatherTwoSided(clk.Now(), []uint64{addr}, []int{int(size)})
	if err != nil {
		return nil, err
	}
	copy(e.data, data)
	clk.AdvanceTo(done)
	// The miss extended the critical section past the dereference hold:
	// keep the cache lock busy until the fetch completed, so concurrent
	// dereferences queue behind it.
	r.lock.Acquire(done, 0)
	r.entries[key] = r.lru.PushFront(e)
	r.used += size
	return e, nil
}

// evictOne swaps out the LRU element.
func (r *Runtime) evictOne(clk *sim.Clock) error {
	el := r.lru.Back()
	if el == nil {
		return fmt.Errorf("aifm: cache exhausted with nothing to evict")
	}
	e := el.Value.(*entry)
	r.lru.Remove(el)
	delete(r.entries, e.key)
	r.used -= int64(len(e.data))
	r.evictions++
	if e.dirty {
		r.writebacks++
		o := r.objs[e.key.obj]
		addr := o.farBase + uint64(e.key.elem)*uint64(o.chunkElems)*uint64(o.decl.ElemBytes)
		if _, err := r.tr.ScatterTwoSided(clk.Now(), []uint64{addr}, [][]byte{e.data}); err != nil {
			return err
		}
	}
	return nil
}

// Prefetch is a no-op: AIFM has no program knowledge to prefetch with.
func (r *Runtime) Prefetch(*sim.Clock, string, int64, ir.Field) error { return nil }

// PrefetchBatch is a no-op (no cross-call batching, §6.2 Fig. 23).
func (r *Runtime) PrefetchBatch(*sim.Clock, []rt.BatchEntry) error { return nil }

// EvictHint is a no-op: eviction is purely LRU.
func (r *Runtime) EvictHint(*sim.Clock, string, int64) error { return nil }

// Fence is a no-op: all AIFM operations here are synchronous.
func (r *Runtime) Fence(*sim.Clock) {}

// Release is a no-op: AIFM has no lifetime knowledge — eviction is LRU
// only, which is exactly the paper's contrast with Mira's
// compiler-directed lifetimes.
func (r *Runtime) Release(*sim.Clock, string) error { return nil }

// BulkRead loops element-wise — every element pays a dereference, the
// behavior behind AIFM's array-library overhead (Fig. 18, 19).
func (r *Runtime) BulkRead(clk *sim.Clock, name string, elem int64, buf []byte) error {
	return r.bulk(clk, name, elem, buf, false)
}

// BulkWrite loops element-wise.
func (r *Runtime) BulkWrite(clk *sim.Clock, name string, elem int64, buf []byte) error {
	return r.bulk(clk, name, elem, buf, true)
}

func (r *Runtime) bulk(clk *sim.Clock, name string, elem int64, buf []byte, write bool) error {
	o, ok := r.objs[name]
	if !ok {
		return fmt.Errorf("aifm: bulk access to unknown object %q", name)
	}
	eb := o.decl.ElemBytes
	if len(buf)%eb != 0 {
		return fmt.Errorf("aifm: bulk access of %d bytes not element-aligned (%d)", len(buf), eb)
	}
	whole := ir.Field{Offset: 0, Bytes: eb, Float: o.decl.Float}
	for off := 0; off < len(buf); off += eb {
		if err := r.Access(clk, name, elem+int64(off/eb), whole, buf[off:off+eb], write, rt.AccessOpts{}); err != nil {
			return err
		}
	}
	return nil
}

// FlushObject writes back and drops every cached element of the object.
func (r *Runtime) FlushObject(clk *sim.Clock, name string) error {
	var keys []entryKey
	for k := range r.entries {
		if k.obj == name {
			keys = append(keys, k)
		}
	}
	// Write back in element order; map order would make link queueing —
	// and so final sim times — run-dependent.
	sort.Slice(keys, func(i, j int) bool { return keys[i].elem < keys[j].elem })
	for _, k := range keys {
		el := r.entries[k]
		e := el.Value.(*entry)
		if e.dirty {
			o := r.objs[k.obj]
			addr := o.farBase + uint64(k.elem)*uint64(o.chunkElems)*uint64(o.decl.ElemBytes)
			done, err := r.tr.ScatterTwoSided(clk.Now(), []uint64{addr}, [][]byte{e.data})
			if err != nil {
				return err
			}
			clk.AdvanceTo(done)
			r.writebacks++
		}
		r.lru.Remove(el)
		delete(r.entries, k)
		r.used -= int64(len(e.data))
	}
	return nil
}

// FlushAll flushes every object (end of run, before DumpObject).
func (r *Runtime) FlushAll(clk *sim.Clock) error {
	names := make([]string, 0, len(r.objs))
	for name := range r.objs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := r.FlushObject(clk, name); err != nil {
			return err
		}
	}
	// Degraded-mode write-backs queued in the transport must land before
	// DumpObject reads far memory directly.
	done, err := r.tr.Flush(clk.Now())
	if err != nil {
		return err
	}
	clk.AdvanceTo(done)
	return nil
}

// NetStats reports the transport's resilience counters.
func (r *Runtime) NetStats() transport.Stats { return r.tr.Stats() }

// MissCount reports cumulative misses (the profiler's per-access probe).
func (r *Runtime) MissCount() int64 { return r.misses }

// Stats reports dereference counters.
func (r *Runtime) Stats() (derefs, hits, misses, evictions, writebacks int64) {
	return r.derefs, r.hits, r.misses, r.evictions, r.writebacks
}
