package aifm

import (
	"bytes"
	"encoding/binary"
	"testing"

	"mira/internal/apps/arraysum"
	"mira/internal/exec"
	"mira/internal/ir"
	"mira/internal/rt"
	"mira/internal/sim"
	"mira/internal/workload"
)

// tinyWorkload is a 64-element int array with identity Init.
type tinyWorkload struct {
	prog *ir.Program
	data []byte
}

func newTiny() *tinyWorkload {
	b := ir.NewBuilder("tiny")
	b.IntArray("a", 64)
	b.Func("main")
	data := make([]byte, 64*8)
	for i := 0; i < 64; i++ {
		binary.LittleEndian.PutUint64(data[i*8:], uint64(i*3))
	}
	return &tinyWorkload{prog: b.MustProgram(), data: data}
}

func (w *tinyWorkload) Name() string                       { return "tiny" }
func (w *tinyWorkload) Program() *ir.Program               { return w.prog }
func (w *tinyWorkload) Params() map[string]exec.Value      { return nil }
func (w *tinyWorkload) FullMemoryBytes() int64             { return 64 * 8 }
func (w *tinyWorkload) Init(t workload.ObjectIniter) error { return t.InitObject("a", w.data) }

func fld() ir.Field { return ir.Field{Offset: 0, Bytes: 8} }

func TestAccessRoundtrip(t *testing.T) {
	w := newTiny()
	r, err := New(w, Options{LocalBudget: 4096})
	if err != nil {
		t.Fatal(err)
	}
	clk := sim.NewClock(0)
	got := make([]byte, 8)
	if err := r.Access(clk, "a", 5, fld(), got, false, rt.AccessOpts{}); err != nil {
		t.Fatal(err)
	}
	if binary.LittleEndian.Uint64(got) != 15 {
		t.Fatalf("a[5] = %d, want 15", binary.LittleEndian.Uint64(got))
	}
	// Write, flush, dump.
	w8 := []byte{9, 0, 0, 0, 0, 0, 0, 0}
	if err := r.Access(clk, "a", 5, fld(), w8, true, rt.AccessOpts{}); err != nil {
		t.Fatal(err)
	}
	if err := r.FlushAll(clk); err != nil {
		t.Fatal(err)
	}
	dump, err := r.DumpObject("a")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dump[5*8:5*8+8], w8) {
		t.Fatal("write lost")
	}
}

func TestEveryAccessPaysDeref(t *testing.T) {
	w := newTiny()
	r, err := New(w, Options{LocalBudget: 4096})
	if err != nil {
		t.Fatal(err)
	}
	clk := sim.NewClock(0)
	buf := make([]byte, 8)
	_ = r.Access(clk, "a", 0, fld(), buf, false, rt.AccessOpts{})
	warm := clk.Now()
	_ = r.Access(clk, "a", 0, fld(), buf, false, rt.AccessOpts{})
	hitCost := clk.Now().Sub(warm)
	if hitCost < 85*sim.Nanosecond {
		t.Fatalf("cached dereference cost %v below the 85ns software floor", hitCost)
	}
	derefs, hits, misses, _, _ := r.Stats()
	if derefs != 2 || hits != 1 || misses != 1 {
		t.Fatalf("stats derefs=%d hits=%d misses=%d", derefs, hits, misses)
	}
}

func TestMetadataExhaustionFails(t *testing.T) {
	w := newTiny()
	// 64 objects x 8B meta = 512B; budget 512 leaves nothing for data.
	if _, err := New(w, Options{LocalBudget: 512}); err == nil {
		t.Fatal("metadata exhaustion not detected")
	}
}

func TestLRUEviction(t *testing.T) {
	w := newTiny()
	// Budget: 512B meta + room for 4 elements.
	r, err := New(w, Options{LocalBudget: 512 + 4*8})
	if err != nil {
		t.Fatal(err)
	}
	clk := sim.NewClock(0)
	buf := make([]byte, 8)
	for e := int64(0); e < 8; e++ {
		_ = r.Access(clk, "a", e, fld(), buf, false, rt.AccessOpts{})
	}
	_, _, _, evictions, _ := r.Stats()
	if evictions != 4 {
		t.Fatalf("evictions = %d, want 4", evictions)
	}
	// Element 7 is most recent: must be cached.
	_, hitsBefore, _, _, _ := r.Stats()
	_ = r.Access(clk, "a", 7, fld(), buf, false, rt.AccessOpts{})
	_, hitsAfter, _, _, _ := r.Stats()
	if hitsAfter != hitsBefore+1 {
		t.Fatal("most-recent element not cached")
	}
}

func TestChunkedMode(t *testing.T) {
	w := newTiny()
	r, err := New(w, Options{LocalBudget: 4096, ChunkBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	// 64B chunks of 8B elements: 8 elements/chunk, 8 chunks, 8B meta per
	// chunk.
	if r.MetadataBytes() != 8*8 {
		t.Fatalf("chunked metadata = %d, want 64", r.MetadataBytes())
	}
	clk := sim.NewClock(0)
	buf := make([]byte, 8)
	// Touching element 0 fetches the whole chunk; element 1 must hit.
	_ = r.Access(clk, "a", 0, fld(), buf, false, rt.AccessOpts{})
	_ = r.Access(clk, "a", 1, fld(), buf, false, rt.AccessOpts{})
	_, hits, misses, _, _ := r.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("chunked hits=%d misses=%d, want 1/1", hits, misses)
	}
	if binary.LittleEndian.Uint64(buf) != 3 {
		t.Fatalf("a[1] = %d, want 3", binary.LittleEndian.Uint64(buf))
	}
}

func TestChunkedWritebackRoundtrip(t *testing.T) {
	w := newTiny()
	r, err := New(w, Options{LocalBudget: 600, ChunkBytes: 64}) // tiny: forces evictions
	if err != nil {
		t.Fatal(err)
	}
	clk := sim.NewClock(0)
	for e := int64(0); e < 64; e++ {
		buf := make([]byte, 8)
		binary.LittleEndian.PutUint64(buf, uint64(e*7))
		if err := r.Access(clk, "a", e, fld(), buf, true, rt.AccessOpts{}); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.FlushAll(clk); err != nil {
		t.Fatal(err)
	}
	dump, _ := r.DumpObject("a")
	for e := 0; e < 64; e++ {
		if got := binary.LittleEndian.Uint64(dump[e*8:]); got != uint64(e*7) {
			t.Fatalf("a[%d] = %d, want %d", e, got, e*7)
		}
	}
}

func TestBulkElementwise(t *testing.T) {
	w := arraysum.New(arraysum.Config{N: 256, Seed: 1})
	r, err := New(w, Options{LocalBudget: 8192})
	if err != nil {
		t.Fatal(err)
	}
	ex, err := exec.New(w.Program(), r, exec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	clk := sim.NewClock(0)
	v, err := ex.Run(clk)
	if err != nil {
		t.Fatal(err)
	}
	if v.AsInt() != w.Expected() {
		t.Fatalf("sum %d, want %d", v.AsInt(), w.Expected())
	}
}

func TestNoOpHooks(t *testing.T) {
	w := newTiny()
	r, err := New(w, Options{LocalBudget: 4096})
	if err != nil {
		t.Fatal(err)
	}
	clk := sim.NewClock(0)
	if err := r.Prefetch(clk, "a", 0, fld()); err != nil {
		t.Fatal(err)
	}
	if err := r.EvictHint(clk, "a", 0); err != nil {
		t.Fatal(err)
	}
	if err := r.Release(clk, "a"); err != nil {
		t.Fatal(err)
	}
	r.Fence(clk)
	if clk.Now() != 0 {
		t.Fatal("no-op hooks charged time")
	}
}

func TestBulkRoundtripElementwise(t *testing.T) {
	w := newTiny()
	r, err := New(w, Options{LocalBudget: 8192})
	if err != nil {
		t.Fatal(err)
	}
	clk := sim.NewClock(0)
	// Bulk write 8 elements starting at 4, read them back via both the
	// bulk and element paths.
	out := make([]byte, 8*8)
	for i := range out {
		out[i] = byte(200 + i%8)
	}
	if err := r.BulkWrite(clk, "a", 4, out); err != nil {
		t.Fatal(err)
	}
	in := make([]byte, 8*8)
	if err := r.BulkRead(clk, "a", 4, in); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(in, out) {
		t.Fatal("bulk roundtrip mismatch")
	}
	one := make([]byte, 8)
	if err := r.Access(clk, "a", 4, fld(), one, false, rt.AccessOpts{}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(one, out[:8]) {
		t.Fatal("element read disagrees with bulk write")
	}
}

func TestBulkErrors(t *testing.T) {
	w := newTiny()
	r, err := New(w, Options{LocalBudget: 8192})
	if err != nil {
		t.Fatal(err)
	}
	clk := sim.NewClock(0)
	if err := r.BulkRead(clk, "nosuch", 0, make([]byte, 8)); err == nil {
		t.Fatal("unknown object accepted")
	}
	if err := r.BulkRead(clk, "a", 0, make([]byte, 7)); err == nil {
		t.Fatal("unaligned bulk accepted")
	}
}

// Bulk access pays the per-element dereference cost — AIFM cannot batch
// (the Fig. 23 contrast), so bulk of n elements costs at least n derefs.
func TestBulkPaysPerElementDeref(t *testing.T) {
	w := newTiny()
	r, err := New(w, Options{LocalBudget: 8192})
	if err != nil {
		t.Fatal(err)
	}
	clk := sim.NewClock(0)
	buf := make([]byte, 16*8)
	if err := r.BulkRead(clk, "a", 0, buf); err != nil {
		t.Fatal(err)
	}
	warm := clk.Now()
	// Re-read warm: still at least 16 dereference costs.
	if err := r.BulkRead(clk, "a", 0, buf); err != nil {
		t.Fatal(err)
	}
	if d := clk.Now().Sub(warm); d < 16*85*sim.Nanosecond {
		t.Fatalf("warm bulk of 16 elements cost %v, want >= 16 derefs", d)
	}
}

func TestNoopHooksAndMissCount(t *testing.T) {
	w := newTiny()
	r, err := New(w, Options{LocalBudget: 8192})
	if err != nil {
		t.Fatal(err)
	}
	clk := sim.NewClock(0)
	if err := r.PrefetchBatch(clk, nil); err != nil {
		t.Fatal(err)
	}
	r.Fence(clk)
	if clk.Now() != 0 {
		t.Fatal("no-op hooks advanced time")
	}
	if err := r.Access(clk, "a", 9, fld(), make([]byte, 8), false, rt.AccessOpts{}); err != nil {
		t.Fatal(err)
	}
	if r.MissCount() == 0 {
		t.Fatal("cold access not counted as miss")
	}
}
