// Package fastswap models FastSwap [Amaro et al., EuroSys'20]: a
// kernel-swap-based far-memory system with an optimized fault datapath and
// Linux-style cluster readahead. Like all page-swap systems it is agnostic
// to program semantics (§2.1): every object lives in one 4 KB-paged region,
// prefetching follows faulting page adjacency only, and eviction is global
// approximate LRU.
package fastswap

import (
	"fmt"

	"mira/internal/cluster"
	"mira/internal/farmem"
	"mira/internal/faults"
	"mira/internal/netmodel"
	"mira/internal/prefetch"
	"mira/internal/rt"
	"mira/internal/sim"
	"mira/internal/swap"
	"mira/internal/transport"
	"mira/internal/workload"
)

// Options tunes the baseline.
type Options struct {
	// LocalBudget is the page pool size in bytes.
	LocalBudget int64
	// Readahead is the number of following pages pulled on each fault
	// (Linux swap cluster readahead). Default 2.
	Readahead int64
	// Net overrides the interconnect model.
	Net netmodel.Config
	// NodeCfg overrides the far node.
	NodeCfg farmem.NodeConfig
	// MajorFaultOverhead overrides the fault-path cost (zero: 4.5 µs).
	// The multithreaded driver scales it to model kernel-lock
	// contention (§6.2).
	MajorFaultOverhead sim.Duration
	// Faults wires the deterministic fault injector into the transport.
	Faults *faults.Config
	// Resilience overrides the transport's retry/deadline/breaker policy.
	Resilience *transport.Policy
	// Cluster, when non-nil, backs the swap heap with a sharded far-node
	// pool instead of a single node (per-node faults ride in
	// Cluster.Faults; Options.Faults must then be nil).
	Cluster *cluster.Options
}

// Readahead prefetches the pages following each fault — profitable for
// sequential access, wasted bandwidth otherwise. It is the zoo's
// prefetch.Readahead policy adapted to the swap plane (kept as a named type
// here for the baseline's public API).
type Readahead struct{ N int64 }

// OnFault returns the next N pages.
func (r Readahead) OnFault(page int64) []int64 {
	return prefetch.Readahead{N: r.N}.OnMiss(page)
}

// PerFaultOverhead is zero: FastSwap's datapath is the fast one the other
// baselines are measured against.
func (Readahead) PerFaultOverhead() sim.Duration {
	return prefetch.Readahead{}.PerMissOverhead()
}

// New builds a FastSwap runtime for w: everything in the swap section.
func New(w workload.Workload, opts Options) (*rt.Runtime, error) {
	if opts.Readahead == 0 {
		opts.Readahead = 2
	}
	if opts.Net.BytesPerSecond == 0 {
		opts.Net = netmodel.DefaultConfig()
	}
	if opts.NodeCfg.Capacity == 0 {
		opts.NodeCfg = farmem.DefaultNodeConfig()
	}
	if opts.MajorFaultOverhead == 0 {
		opts.MajorFaultOverhead = 4500 * sim.Nanosecond
	}
	// Local (pinned) objects consume budget before the page pool.
	var local int64
	for _, o := range w.Program().Objects {
		if o.Local {
			local += o.SizeBytes()
		}
	}
	pool := opts.LocalBudget - local
	if pool <= 0 {
		return nil, fmt.Errorf("local objects (%d bytes) exceed budget %d", local, opts.LocalBudget)
	}
	cfg := rt.Config{
		LocalBudget: opts.LocalBudget,
		SwapPool:    pool,
		Placements:  map[string]rt.Placement{},
		Net:         opts.Net,
		SwapCfg: swap.Config{
			MajorFaultOverhead: opts.MajorFaultOverhead,
			MinorFaultOverhead: 1000 * sim.Nanosecond,
		},
		Faults:     opts.Faults,
		Resilience: opts.Resilience,
		Cluster:    opts.Cluster,
	}
	node := farmem.NewNode(opts.NodeCfg)
	r, err := rt.New(cfg, node)
	if err != nil {
		return nil, err
	}
	if err := r.Bind(w.Program()); err != nil {
		return nil, err
	}
	r.SwapPrefetcher(Readahead{N: opts.Readahead})
	if err := w.Init(r); err != nil {
		return nil, err
	}
	return r, nil
}
