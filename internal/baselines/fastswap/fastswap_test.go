package fastswap

import (
	"testing"

	"mira/internal/apps/arraysum"
	"mira/internal/exec"
	"mira/internal/sim"
)

func TestReadaheadWindow(t *testing.T) {
	ra := Readahead{N: 3}
	out := ra.OnFault(10)
	if len(out) != 3 || out[0] != 11 || out[1] != 12 || out[2] != 13 {
		t.Fatalf("readahead = %v", out)
	}
	if ra.PerFaultOverhead() != 0 {
		t.Fatal("FastSwap's fault path should carry no extra overhead")
	}
}

func TestSequentialScanBenefitsFromReadahead(t *testing.T) {
	run := func(readahead int64) sim.Duration {
		w := arraysum.New(arraysum.Config{N: 1 << 14, Seed: 2})
		// Pool comfortably above the readahead window — a window larger
		// than the pool thrashes, which the model reproduces.
		r, err := New(w, Options{LocalBudget: w.FullMemoryBytes() / 2, Readahead: readahead})
		if err != nil {
			t.Fatal(err)
		}
		ex, err := exec.New(w.Program(), r, exec.Options{})
		if err != nil {
			t.Fatal(err)
		}
		clk := sim.NewClock(0)
		if _, err := ex.Run(clk); err != nil {
			t.Fatal(err)
		}
		if err := r.FlushAll(clk); err != nil {
			t.Fatal(err)
		}
		if err := w.Verify(r); err != nil {
			t.Fatal(err)
		}
		return clk.Now().Sub(0)
	}
	small := run(1)
	big := run(8)
	if big >= small {
		t.Fatalf("readahead 8 (%v) not faster than readahead 1 (%v) on a sequential scan", big, small)
	}
}

func TestDefaultsApplied(t *testing.T) {
	w := arraysum.New(arraysum.Config{N: 1024, Seed: 1})
	r, err := New(w, Options{LocalBudget: w.FullMemoryBytes()})
	if err != nil {
		t.Fatal(err)
	}
	if !r.HasSwap() {
		t.Fatal("no swap section created")
	}
}
