package leap

import (
	"testing"
	"testing/quick"

	"mira/internal/sim"
)

// Property: the Boyer-Moore majority vote is guaranteed to find a stride
// that holds a strict majority of the window. Feed a fault stream where
// more than half the deltas equal the stride and the rest are noise; once
// the window is warm, every prediction must follow the majority stride.
func TestPropertyMajorityStrideDetected(t *testing.T) {
	f := func(seed uint64, strideRaw uint8) bool {
		stride := int64(strideRaw%5) + 1
		p := NewPrefetcher(8, 2)
		rng := sim.NewRNG(seed)
		page := int64(1000)
		warm := 0
		noise := int64(7)
		for i := 0; i < 200; i++ {
			// Roughly 3 of 4 steps follow the stride; the rest are
			// noise deltas that never repeat (7, 8, 9, ...), so the
			// only delta that can ever hold a window majority is the
			// stride itself.
			d := stride
			if rng.Intn(4) == 0 {
				d = noise
				noise++
			}
			page += d
			preds := p.OnFault(page)
			warm++
			if warm < 20 || d != stride || len(preds) == 0 {
				continue
			}
			for k, pr := range preds {
				if pr != page+stride*int64(k+1) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: a fault stream with no majority trend (uniform random deltas)
// must not trigger predictions once enough distinct deltas populate the
// window — Leap's guard against polluting the cache on random access.
func TestPropertyNoMajorityNoPrediction(t *testing.T) {
	f := func(seed uint64) bool {
		p := NewPrefetcher(8, 2)
		rng := sim.NewRNG(seed)
		page := int64(0)
		fired := 0
		for i := 0; i < 100; i++ {
			// Deltas drawn uniformly from a wide range: a strict
			// majority of one value in a window of 8 is vanishingly
			// unlikely.
			page += int64(rng.Intn(1 << 16)) // non-negative keeps pages increasing
			if len(p.OnFault(page)) > 0 {
				fired++
			}
		}
		return fired == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: predictions never include the faulting page itself and are
// strictly monotone along the detected stride.
func TestPropertyPredictionShape(t *testing.T) {
	f := func(seed uint64, depthRaw uint8) bool {
		depth := int64(depthRaw%4) + 1
		p := NewPrefetcher(6, depth)
		rng := sim.NewRNG(seed)
		stride := int64(rng.Intn(9)) - 4 // -4..4, may be 0 or negative
		page := int64(1 << 20)
		for i := 0; i < 40; i++ {
			page += stride
			preds := p.OnFault(page)
			if int64(len(preds)) > depth {
				return false
			}
			for _, pr := range preds {
				if pr == page {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
