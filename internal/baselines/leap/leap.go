// Package leap models Leap [Al Maruf & Chowdhury, ATC'20]: an online
// prefetcher for swap-based far memory that detects the process's
// *majority* access trend from the recent page-fault history and prefetches
// along it. It captures one global stride well but — as the paper's Fig. 15
// discussion notes — cannot track the interleaved per-object patterns Mira
// separates, and its trend detection adds fault-path latency relative to
// FastSwap's leaner datapath.
package leap

import (
	"fmt"

	"mira/internal/cluster"
	"mira/internal/farmem"
	"mira/internal/faults"
	"mira/internal/netmodel"
	"mira/internal/prefetch"
	"mira/internal/rt"
	"mira/internal/sim"
	"mira/internal/swap"
	"mira/internal/transport"
	"mira/internal/workload"
)

// Options tunes the baseline.
type Options struct {
	// LocalBudget is the page pool size in bytes.
	LocalBudget int64
	// Window is the fault-history window for majority detection
	// (default 32).
	Window int
	// Depth is the prefetch depth along a detected trend (default 8).
	Depth int64
	// Net overrides the interconnect model.
	Net netmodel.Config
	// NodeCfg overrides the far node.
	NodeCfg farmem.NodeConfig
	// Faults wires the deterministic fault injector into the transport.
	Faults *faults.Config
	// Resilience overrides the transport's retry/deadline/breaker policy.
	Resilience *transport.Policy
	// Cluster, when non-nil, backs the swap heap with a sharded far-node
	// pool instead of a single node (per-node faults ride in
	// Cluster.Faults; Options.Faults must then be nil).
	Cluster *cluster.Options
	// NoBatching disables the doorbell-batched prefetch gather (one read
	// per prefetched page, the pre-vectored-I/O datapath).
	NoBatching bool
}

// Prefetcher is the zoo's prefetch.Leap majority-trend policy adapted to the
// swap plane (kept as a named type here for the baseline's public API; the
// algorithm itself now lives in internal/prefetch so both planes can race
// it).
type Prefetcher struct{ p *prefetch.Leap }

// NewPrefetcher builds the trend detector.
func NewPrefetcher(window int, depth int64) *Prefetcher {
	return &Prefetcher{p: prefetch.NewLeap(window, depth)}
}

// OnFault records the fault and prefetches along the majority trend.
func (p *Prefetcher) OnFault(page int64) []int64 { return p.p.OnMiss(page) }

// PerFaultOverhead is the trend-detection cost on every fault.
func (p *Prefetcher) PerFaultOverhead() sim.Duration { return p.p.PerMissOverhead() }

// New builds a Leap runtime for w: everything in the swap section with the
// majority-trend prefetcher.
func New(w workload.Workload, opts Options) (*rt.Runtime, error) {
	if opts.Window == 0 {
		opts.Window = 32
	}
	if opts.Depth == 0 {
		opts.Depth = 8
	}
	if opts.Net.BytesPerSecond == 0 {
		opts.Net = netmodel.DefaultConfig()
	}
	if opts.NodeCfg.Capacity == 0 {
		opts.NodeCfg = farmem.DefaultNodeConfig()
	}
	// Local (pinned) objects consume budget before the page pool.
	var local int64
	for _, o := range w.Program().Objects {
		if o.Local {
			local += o.SizeBytes()
		}
	}
	pool := opts.LocalBudget - local
	if pool <= 0 {
		return nil, fmt.Errorf("local objects (%d bytes) exceed budget %d", local, opts.LocalBudget)
	}
	cfg := rt.Config{
		LocalBudget: opts.LocalBudget,
		SwapPool:    pool,
		Placements:  map[string]rt.Placement{},
		Net:         opts.Net,
		SwapCfg: swap.Config{
			MajorFaultOverhead: 4500 * sim.Nanosecond,
			MinorFaultOverhead: 1000 * sim.Nanosecond,
			BatchPrefetch:      !opts.NoBatching,
		},
		Faults:     opts.Faults,
		Resilience: opts.Resilience,
		Cluster:    opts.Cluster,
	}
	node := farmem.NewNode(opts.NodeCfg)
	r, err := rt.New(cfg, node)
	if err != nil {
		return nil, err
	}
	if err := r.Bind(w.Program()); err != nil {
		return nil, err
	}
	r.SwapPrefetcher(NewPrefetcher(opts.Window, opts.Depth))
	if err := w.Init(r); err != nil {
		return nil, err
	}
	return r, nil
}
