package leap

import (
	"testing"

	"mira/internal/apps/arraysum"
	"mira/internal/apps/graphtraverse"
	"mira/internal/exec"
	"mira/internal/sim"
)

func TestMajorityTrendDetected(t *testing.T) {
	p := NewPrefetcher(8, 4)
	// Feed a clean +1 stride; after the window warms up the prefetcher
	// must follow it.
	var out []int64
	for pg := int64(0); pg < 12; pg++ {
		out = p.OnFault(pg)
	}
	if len(out) != 4 {
		t.Fatalf("prefetch depth %d, want 4", len(out))
	}
	for i, pg := range out {
		if pg != 11+int64(i+1) {
			t.Fatalf("prefetch[%d] = %d, want %d", i, pg, 11+i+1)
		}
	}
}

func TestStrideTrend(t *testing.T) {
	p := NewPrefetcher(8, 2)
	var out []int64
	for i := int64(0); i < 12; i++ {
		out = p.OnFault(i * 3)
	}
	if len(out) != 2 || out[0] != 33+3 || out[1] != 33+6 {
		t.Fatalf("stride-3 prefetch = %v", out)
	}
}

func TestNoMajorityNoPrefetch(t *testing.T) {
	p := NewPrefetcher(8, 4)
	// Alternating deltas of +5 and -3: no majority.
	pages := []int64{0, 5, 2, 7, 4, 9, 6, 11, 8, 13, 10}
	var out []int64
	for _, pg := range pages {
		out = p.OnFault(pg)
	}
	if len(out) != 0 {
		t.Fatalf("prefetched %v despite no majority trend", out)
	}
}

func TestInterleavedPatternDefeatsLeap(t *testing.T) {
	// The paper's point (Fig. 15): an interleaved sequential+random fault
	// stream has no global majority, so Leap cannot prefetch.
	p := NewPrefetcher(16, 4)
	rng := sim.NewRNG(3)
	var out []int64
	seq := int64(0)
	for i := 0; i < 64; i++ {
		if i%2 == 0 {
			seq++
			out = p.OnFault(seq)
		} else {
			out = p.OnFault(1000 + int64(rng.Intn(500)))
		}
		if len(out) > 0 {
			t.Fatalf("iteration %d: prefetched %v from interleaved stream", i, out)
		}
	}
}

func TestPerFaultOverheadPositive(t *testing.T) {
	if NewPrefetcher(8, 4).PerFaultOverhead() <= 0 {
		t.Fatal("Leap must pay trend-detection overhead")
	}
}

func TestLeapEndToEndCorrect(t *testing.T) {
	// Correctness on the graph example (whose interleaved faults defeat
	// Leap's trend detector — no prefetches expected there).
	w := graphtraverse.New(graphtraverse.Config{Edges: 1024, Nodes: 512, Passes: 1, Seed: 4})
	r, err := New(w, Options{LocalBudget: w.FullMemoryBytes() / 3})
	if err != nil {
		t.Fatal(err)
	}
	ex, err := exec.New(w.Program(), r, exec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	clk := sim.NewClock(0)
	if _, err := ex.Run(clk); err != nil {
		t.Fatal(err)
	}
	if err := r.FlushAll(clk); err != nil {
		t.Fatal(err)
	}
	if err := w.Verify(r); err != nil {
		t.Fatal(err)
	}
}

func TestLeapPrefetchesPureSequentialStream(t *testing.T) {
	// A pure sequential scan has a clean +1 page trend: Leap must
	// prefetch along it.
	w := arraysum.New(arraysum.Config{N: 1 << 14, Seed: 2})
	r, err := New(w, Options{LocalBudget: w.FullMemoryBytes() / 4})
	if err != nil {
		t.Fatal(err)
	}
	ex, err := exec.New(w.Program(), r, exec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	clk := sim.NewClock(0)
	if _, err := ex.Run(clk); err != nil {
		t.Fatal(err)
	}
	if r.SwapStats().Prefetches == 0 {
		t.Fatal("Leap issued no prefetches on a pure sequential stream")
	}
}

func TestLocalObjectsOverBudget(t *testing.T) {
	w := graphtraverse.New(graphtraverse.Config{Edges: 128, Nodes: 64, Passes: 1, Seed: 1})
	if _, err := New(w, Options{LocalBudget: 0}); err == nil {
		t.Fatal("zero budget accepted")
	}
}
