package netmodel

import (
	"testing"

	"mira/internal/sim"
)

// With no tenants registered, Acquire must be the pure FIFO accountant:
// registration is the only switch, so every pre-serving trace stays
// byte-identical.
func TestBandwidthLegacyFIFOUnchanged(t *testing.T) {
	cfg := DefaultConfig()
	b := NewBandwidth(cfg)
	end1 := b.Acquire(0, 1024)
	want1 := sim.Time(0).Add(cfg.wireTime(1024) + cfg.PerMessageOverhead)
	if end1 != want1 {
		t.Fatalf("first acquire ends at %v, want %v", end1, want1)
	}
	// Issued before the link frees: queues behind the first transfer.
	end2 := b.Acquire(0, 1024)
	if want2 := end1.Add(cfg.wireTime(1024) + cfg.PerMessageOverhead); end2 != want2 {
		t.Fatalf("second acquire ends at %v, want %v", end2, want2)
	}
	if b.Acquire(end2, 0) != end2 {
		t.Fatal("zero-byte acquire is not free")
	}
}

// A sole active tenant must pay no pacing: share 1, work-conserving.
func TestBandwidthSoleTenantUnpaced(t *testing.T) {
	cfg := DefaultConfig()
	fifo := NewBandwidth(cfg)
	fair := NewBandwidth(cfg)
	fair.SetTenantWeight("a", 1)
	fair.SetTenantWeight("b", 1) // registered but never transfers
	fair.SetActiveTenant("a")
	var now sim.Time
	for i := 0; i < 32; i++ {
		e1 := fifo.Acquire(now, 2048)
		e2 := fair.Acquire(now, 2048)
		if e1 != e2 {
			t.Fatalf("transfer %d: sole tenant paced (%v vs %v)", i, e2, e1)
		}
		now = e1
	}
}

// Two saturating tenants at weights 3:1 should split the link roughly 3:1.
func TestBandwidthWeightedShares(t *testing.T) {
	cfg := DefaultConfig()
	b := NewBandwidth(cfg)
	b.SetTenantWeight("heavy", 3)
	b.SetTenantWeight("light", 1)
	// Interleave back-to-back transfers: each tenant re-issues as soon as
	// its previous transfer lands (open-loop saturation).
	nextA, nextB := sim.Time(0), sim.Time(0)
	horizon := sim.Time(5 * sim.Millisecond)
	for nextA < horizon || nextB < horizon {
		if nextA <= nextB {
			b.SetActiveTenant("heavy")
			nextA = b.Acquire(nextA, 2048)
		} else {
			b.SetActiveTenant("light")
			nextB = b.Acquire(nextB, 2048)
		}
	}
	hb, lb := b.TenantBytes("heavy"), b.TenantBytes("light")
	if hb == 0 || lb == 0 {
		t.Fatalf("missing traffic: heavy=%d light=%d", hb, lb)
	}
	ratio := float64(hb) / float64(lb)
	if ratio < 2.0 || ratio > 4.5 {
		t.Errorf("weighted 3:1 tenants moved bytes at ratio %.2f (heavy=%d light=%d)", ratio, hb, lb)
	}
}

// After a tenant goes idle past the fair window, the survivor's share must
// recover to 1 (no pacing against ghosts).
func TestBandwidthIdleShareRedistributed(t *testing.T) {
	cfg := DefaultConfig()
	b := NewBandwidth(cfg)
	b.SetTenantWeight("a", 1)
	b.SetTenantWeight("b", 1)
	b.SetActiveTenant("b")
	end := b.Acquire(0, 2048) // b was active once
	// Far past the window, a should run unpaced.
	later := end.Add(10 * DefaultFairWindow)
	b.SetActiveTenant("a")
	e1 := b.Acquire(later, 2048)
	e2 := b.Acquire(e1, 2048)
	if e2.Sub(e1) != cfg.wireTime(2048)+cfg.PerMessageOverhead {
		t.Errorf("survivor still paced after peer idled: gap %v", e2.Sub(e1))
	}
}
