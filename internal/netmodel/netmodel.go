// Package netmodel models the interconnect between the compute node and the
// far-memory node: an RDMA-like transport with one-sided reads/writes,
// two-sided messages, scatter-gather batching, and a shared link whose
// bandwidth is contended by all simulated threads.
//
// The paper's testbed is 50 Gbps InfiniBand (Mellanox FDR-CX3); the default
// Config is calibrated to it. Every cost is virtual time (sim.Duration), so
// experiments are deterministic. The model captures the effects the paper's
// evaluation depends on:
//
//   - a base round-trip latency per operation, paid once per message,
//   - a per-byte cost (line size and 4 KB page amplification matter),
//   - cheaper large messages than many small ones (batching, §4.5),
//   - one-sided ops that avoid the remote CPU copy vs two-sided ops that
//     pay a copy but can carry partial structures (§4.7).
package netmodel

import (
	"fmt"
	"sync"

	"mira/internal/sim"
)

// Config holds the interconnect cost parameters. All durations are virtual.
type Config struct {
	// OneSidedRTT is the end-to-end latency of a one-sided read or write
	// of minimal size (verbs post + NIC + wire + DMA completion).
	OneSidedRTT sim.Duration
	// TwoSidedRTT is the latency of a two-sided message exchange of
	// minimal size: it exceeds OneSidedRTT by the remote CPU's receive
	// path.
	TwoSidedRTT sim.Duration
	// BytesPerSecond is the link bandwidth (default: 50 Gbps).
	BytesPerSecond int64
	// PerMessageOverhead is the sender-side CPU cost of posting one work
	// request; batched scatter-gather entries share a single message and
	// therefore pay it once.
	PerMessageOverhead sim.Duration
	// PerSGEOverhead is the incremental cost of each additional
	// scatter-gather element in a batched message.
	PerSGEOverhead sim.Duration
	// RemoteCopyPerByte is the remote CPU's per-byte cost of staging a
	// two-sided message into or out of its final location.
	RemoteCopyPerByte float64 // nanoseconds per byte
	// MaxMessageBytes is the largest efficiently-transmittable message;
	// larger transfers are split and pay latency again per chunk. The
	// paper observes the edge-section benefit flattening near 2 KB lines
	// because of this knee (Fig. 9).
	MaxMessageBytes int
}

// DefaultConfig returns the cost model calibrated to the paper's testbed
// (§6): 50 Gbps InfiniBand, ~3 µs small-read latency.
func DefaultConfig() Config {
	return Config{
		OneSidedRTT:        3 * sim.Microsecond,
		TwoSidedRTT:        4200 * sim.Nanosecond,
		BytesPerSecond:     50_000_000_000 / 8, // 50 Gbps => 6.25 GB/s
		PerMessageOverhead: 250 * sim.Nanosecond,
		PerSGEOverhead:     60 * sim.Nanosecond,
		RemoteCopyPerByte:  0.08,
		MaxMessageBytes:    2048,
	}
}

// Validate reports an error for non-physical configurations.
func (c Config) Validate() error {
	switch {
	case c.OneSidedRTT <= 0:
		return fmt.Errorf("netmodel: OneSidedRTT must be positive, got %v", c.OneSidedRTT)
	case c.TwoSidedRTT < c.OneSidedRTT:
		return fmt.Errorf("netmodel: TwoSidedRTT %v below OneSidedRTT %v", c.TwoSidedRTT, c.OneSidedRTT)
	case c.BytesPerSecond <= 0:
		return fmt.Errorf("netmodel: BytesPerSecond must be positive, got %d", c.BytesPerSecond)
	case c.MaxMessageBytes <= 0:
		return fmt.Errorf("netmodel: MaxMessageBytes must be positive, got %d", c.MaxMessageBytes)
	case c.PerMessageOverhead < 0 || c.PerSGEOverhead < 0 || c.RemoteCopyPerByte < 0:
		return fmt.Errorf("netmodel: negative overhead in config")
	}
	return nil
}

// WireTime is the serialization delay of n bytes on the link — the portion
// of a transfer's cost that occupies the shared link and therefore contends
// across threads.
func (c Config) WireTime(n int) sim.Duration { return c.wireTime(n) }

// wireTime is the serialization delay of n bytes on the link.
func (c Config) wireTime(n int) sim.Duration {
	if n <= 0 {
		return 0
	}
	return sim.Duration(float64(n) * 1e9 / float64(c.BytesPerSecond))
}

// chunks reports how many link-level messages a transfer of n bytes needs.
func (c Config) chunks(n int) int {
	if n <= 0 {
		return 1
	}
	k := (n + c.MaxMessageBytes - 1) / c.MaxMessageBytes
	if k < 1 {
		k = 1
	}
	return k
}

// OneSidedCost returns the issuing thread's latency for a one-sided
// read/write of n bytes: one RTT per MaxMessageBytes chunk (the CX3
// generation the paper uses does not pipeline multi-packet requests — this
// is the mechanism behind Fig. 9's ~2 KB line-size knee), wire time, and a
// posting overhead per chunk.
func (c Config) OneSidedCost(n int) sim.Duration {
	k := c.chunks(n)
	return c.OneSidedRTT*sim.Duration(k) +
		c.wireTime(n) + c.PerMessageOverhead*sim.Duration(k)
}

// TwoSidedCost returns the latency of a two-sided exchange carrying n
// payload bytes, including the remote CPU copy.
func (c Config) TwoSidedCost(n int) sim.Duration {
	k := c.chunks(n)
	return c.TwoSidedRTT*sim.Duration(k) +
		c.wireTime(n) + c.PerMessageOverhead*sim.Duration(k) +
		sim.Duration(float64(n)*c.RemoteCopyPerByte)
}

// BatchedCost returns the latency of one scatter-gather message carrying the
// given piece sizes. Compared with issuing len(pieces) separate messages, the
// RTT and posting overhead are paid once (plus a small per-SGE cost), which
// is the mechanism behind the paper's data-access batching (§4.5, Fig. 23).
// Batched messages are two-sided: the far node must scatter the pieces.
func (c Config) BatchedCost(pieces []int) sim.Duration {
	if len(pieces) == 0 {
		return 0
	}
	total := 0
	for _, p := range pieces {
		total += p
	}
	k := c.chunks(total)
	return c.TwoSidedRTT*sim.Duration(k) +
		c.wireTime(total) +
		c.PerMessageOverhead*sim.Duration(k) +
		c.PerSGEOverhead*sim.Duration(len(pieces)) +
		sim.Duration(float64(total)*c.RemoteCopyPerByte)
}

// VectoredOneSidedCost returns the latency of a doorbell-batched chain of
// one-sided work requests covering the given piece sizes. The sender posts
// one WR per MaxMessageBytes chunk of each piece and rings the doorbell
// once, so the chain pays the posting overhead once (plus a per-WR SGE
// cost) and — unlike issuing the pieces as separate requests — the WRs
// pipeline through the NIC: one round trip covers the whole chain, and the
// pieces then stream back-to-back on the wire. No remote CPU is involved
// (the far node's NIC serves each WR directly), which is what makes this
// the cheapest way to move N cache lines and the mechanism behind the
// runtime's batched prefetch and vectored write-back (§4.5).
func (c Config) VectoredOneSidedCost(pieces []int) sim.Duration {
	if len(pieces) == 0 {
		return 0
	}
	total, wrs := 0, 0
	for _, p := range pieces {
		total += p
		wrs += c.chunks(p)
	}
	return c.OneSidedRTT + c.wireTime(total) +
		c.PerMessageOverhead + c.PerSGEOverhead*sim.Duration(wrs)
}

// VectoredPostCost is the sender-side CPU cost of posting a doorbell-batched
// chain of n pieces without waiting for it: the cost an asynchronous batched
// prefetch charges to the issuing thread.
func (c Config) VectoredPostCost(n int) sim.Duration {
	if n <= 0 {
		return 0
	}
	return c.PerMessageOverhead + c.PerSGEOverhead*sim.Duration(n)
}

// RTTEstimate returns the latency a compiler should assume when computing
// prefetch distances (§4.5): the one-sided RTT plus wire time for a typical
// line of n bytes.
func (c Config) RTTEstimate(n int) sim.Duration {
	return c.OneSidedRTT + c.wireTime(n) + c.PerMessageOverhead
}

// Bandwidth serializes transfers from all simulated threads onto the shared
// link, modelling contention: a transfer issued at time t begins when the
// link frees up and occupies it for the transfer's wire time plus one
// PerMessageOverhead — the NIC's per-doorbell processing. That per-transfer
// term is what doorbell coalescing attacks: a vectored chain crosses the
// link as one transfer, so N lines pay the overhead once instead of N times.
// It is safe for concurrent use (simulated threads may run on real
// goroutines in tests).
type Bandwidth struct {
	mu       sync.Mutex
	cfg      Config
	nextFree sim.Time
	// totals for reporting
	bytesMoved int64
	transfers  int64
}

// NewBandwidth returns a contention accountant over cfg's link.
func NewBandwidth(cfg Config) *Bandwidth {
	return &Bandwidth{cfg: cfg}
}

// Acquire reserves the link for n bytes starting no earlier than now and
// returns the instant the transfer completes on the wire. Latency (RTT) is
// not included here — callers add it — only serialization and queueing.
// Every non-empty transfer also holds the link for one PerMessageOverhead:
// the NIC processes one doorbell per message, so two messages occupy it
// strictly longer than one message carrying the same bytes. Zero-byte
// acquires ring no doorbell and are free.
func (b *Bandwidth) Acquire(now sim.Time, n int) sim.Time {
	b.mu.Lock()
	defer b.mu.Unlock()
	start := now
	if b.nextFree > start {
		start = b.nextFree
	}
	busy := b.cfg.wireTime(n)
	if n > 0 {
		busy += b.cfg.PerMessageOverhead
	}
	end := start.Add(busy)
	b.nextFree = end
	b.bytesMoved += int64(n)
	b.transfers++
	return end
}

// BytesMoved reports the total bytes that crossed the link.
func (b *Bandwidth) BytesMoved() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.bytesMoved
}

// Transfers reports the number of link acquisitions.
func (b *Bandwidth) Transfers() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.transfers
}

// Reset clears the accountant between runs.
func (b *Bandwidth) Reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.nextFree = 0
	b.bytesMoved = 0
	b.transfers = 0
}
