// Package netmodel models the interconnect between the compute node and the
// far-memory node: an RDMA-like transport with one-sided reads/writes,
// two-sided messages, scatter-gather batching, and a shared link whose
// bandwidth is contended by all simulated threads.
//
// The paper's testbed is 50 Gbps InfiniBand (Mellanox FDR-CX3); the default
// Config is calibrated to it. Every cost is virtual time (sim.Duration), so
// experiments are deterministic. The model captures the effects the paper's
// evaluation depends on:
//
//   - a base round-trip latency per operation, paid once per message,
//   - a per-byte cost (line size and 4 KB page amplification matter),
//   - cheaper large messages than many small ones (batching, §4.5),
//   - one-sided ops that avoid the remote CPU copy vs two-sided ops that
//     pay a copy but can carry partial structures (§4.7).
package netmodel

import (
	"fmt"
	"sort"
	"sync"

	"mira/internal/sim"
)

// Config holds the interconnect cost parameters. All durations are virtual.
type Config struct {
	// OneSidedRTT is the end-to-end latency of a one-sided read or write
	// of minimal size (verbs post + NIC + wire + DMA completion).
	OneSidedRTT sim.Duration
	// TwoSidedRTT is the latency of a two-sided message exchange of
	// minimal size: it exceeds OneSidedRTT by the remote CPU's receive
	// path.
	TwoSidedRTT sim.Duration
	// BytesPerSecond is the link bandwidth (default: 50 Gbps).
	BytesPerSecond int64
	// PerMessageOverhead is the sender-side CPU cost of posting one work
	// request; batched scatter-gather entries share a single message and
	// therefore pay it once.
	PerMessageOverhead sim.Duration
	// PerSGEOverhead is the incremental cost of each additional
	// scatter-gather element in a batched message.
	PerSGEOverhead sim.Duration
	// RemoteCopyPerByte is the remote CPU's per-byte cost of staging a
	// two-sided message into or out of its final location.
	RemoteCopyPerByte float64 // nanoseconds per byte
	// MaxMessageBytes is the largest efficiently-transmittable message;
	// larger transfers are split and pay latency again per chunk. The
	// paper observes the edge-section benefit flattening near 2 KB lines
	// because of this knee (Fig. 9).
	MaxMessageBytes int
}

// DefaultConfig returns the cost model calibrated to the paper's testbed
// (§6): 50 Gbps InfiniBand, ~3 µs small-read latency.
func DefaultConfig() Config {
	return Config{
		OneSidedRTT:        3 * sim.Microsecond,
		TwoSidedRTT:        4200 * sim.Nanosecond,
		BytesPerSecond:     50_000_000_000 / 8, // 50 Gbps => 6.25 GB/s
		PerMessageOverhead: 250 * sim.Nanosecond,
		PerSGEOverhead:     60 * sim.Nanosecond,
		RemoteCopyPerByte:  0.08,
		MaxMessageBytes:    2048,
	}
}

// Validate reports an error for non-physical configurations.
func (c Config) Validate() error {
	switch {
	case c.OneSidedRTT <= 0:
		return fmt.Errorf("netmodel: OneSidedRTT must be positive, got %v", c.OneSidedRTT)
	case c.TwoSidedRTT < c.OneSidedRTT:
		return fmt.Errorf("netmodel: TwoSidedRTT %v below OneSidedRTT %v", c.TwoSidedRTT, c.OneSidedRTT)
	case c.BytesPerSecond <= 0:
		return fmt.Errorf("netmodel: BytesPerSecond must be positive, got %d", c.BytesPerSecond)
	case c.MaxMessageBytes <= 0:
		return fmt.Errorf("netmodel: MaxMessageBytes must be positive, got %d", c.MaxMessageBytes)
	case c.PerMessageOverhead < 0 || c.PerSGEOverhead < 0 || c.RemoteCopyPerByte < 0:
		return fmt.Errorf("netmodel: negative overhead in config")
	}
	return nil
}

// WireTime is the serialization delay of n bytes on the link — the portion
// of a transfer's cost that occupies the shared link and therefore contends
// across threads.
//
// Rounding rule (load-bearing for determinism now that wire codecs shrink
// payloads to arbitrary small sizes): the delay is computed in float
// nanoseconds and truncated toward zero by the sim.Duration conversion, so
// any payload whose serialization takes under 1 ns — e.g. 1..6 bytes at the
// default 6.25 GB/s, 0.16 ns/B — contributes exactly 0 wire time, and
// n <= 0 is 0 by definition. Sub-nanosecond remainders are dropped per
// call, never accumulated; two runs issuing the same payload sequence
// therefore always agree. Tiny messages still pay PerMessageOverhead in
// Bandwidth.Acquire (doorbell occupancy is per message, not per byte).
func (c Config) WireTime(n int) sim.Duration { return c.wireTime(n) }

// wireTime is the serialization delay of n bytes on the link (truncated
// toward zero; see WireTime for the rounding rule).
func (c Config) wireTime(n int) sim.Duration {
	if n <= 0 {
		return 0
	}
	return sim.Duration(float64(n) * 1e9 / float64(c.BytesPerSecond))
}

// chunks reports how many link-level messages a transfer of n bytes needs.
func (c Config) chunks(n int) int {
	if n <= 0 {
		return 1
	}
	k := (n + c.MaxMessageBytes - 1) / c.MaxMessageBytes
	if k < 1 {
		k = 1
	}
	return k
}

// OneSidedCost returns the issuing thread's latency for a one-sided
// read/write of n bytes: one RTT per MaxMessageBytes chunk (the CX3
// generation the paper uses does not pipeline multi-packet requests — this
// is the mechanism behind Fig. 9's ~2 KB line-size knee), wire time, and a
// posting overhead per chunk.
func (c Config) OneSidedCost(n int) sim.Duration {
	k := c.chunks(n)
	return c.OneSidedRTT*sim.Duration(k) +
		c.wireTime(n) + c.PerMessageOverhead*sim.Duration(k)
}

// TwoSidedCost returns the latency of a two-sided exchange carrying n
// payload bytes, including the remote CPU copy.
func (c Config) TwoSidedCost(n int) sim.Duration {
	k := c.chunks(n)
	return c.TwoSidedRTT*sim.Duration(k) +
		c.wireTime(n) + c.PerMessageOverhead*sim.Duration(k) +
		sim.Duration(float64(n)*c.RemoteCopyPerByte)
}

// BatchedCost returns the latency of one scatter-gather message carrying the
// given piece sizes. Compared with issuing len(pieces) separate messages, the
// RTT and posting overhead are paid once (plus a small per-SGE cost), which
// is the mechanism behind the paper's data-access batching (§4.5, Fig. 23).
// Batched messages are two-sided: the far node must scatter the pieces.
func (c Config) BatchedCost(pieces []int) sim.Duration {
	if len(pieces) == 0 {
		return 0
	}
	total := 0
	for _, p := range pieces {
		total += p
	}
	k := c.chunks(total)
	return c.TwoSidedRTT*sim.Duration(k) +
		c.wireTime(total) +
		c.PerMessageOverhead*sim.Duration(k) +
		c.PerSGEOverhead*sim.Duration(len(pieces)) +
		sim.Duration(float64(total)*c.RemoteCopyPerByte)
}

// VectoredOneSidedCost returns the latency of a doorbell-batched chain of
// one-sided work requests covering the given piece sizes. The sender posts
// one WR per MaxMessageBytes chunk of each piece and rings the doorbell
// once, so the chain pays the posting overhead once (plus a per-WR SGE
// cost) and — unlike issuing the pieces as separate requests — the WRs
// pipeline through the NIC: one round trip covers the whole chain, and the
// pieces then stream back-to-back on the wire. No remote CPU is involved
// (the far node's NIC serves each WR directly), which is what makes this
// the cheapest way to move N cache lines and the mechanism behind the
// runtime's batched prefetch and vectored write-back (§4.5).
func (c Config) VectoredOneSidedCost(pieces []int) sim.Duration {
	if len(pieces) == 0 {
		return 0
	}
	total, wrs := 0, 0
	for _, p := range pieces {
		total += p
		wrs += c.chunks(p)
	}
	return c.OneSidedRTT + c.wireTime(total) +
		c.PerMessageOverhead + c.PerSGEOverhead*sim.Duration(wrs)
}

// VectoredPostCost is the sender-side CPU cost of posting a doorbell-batched
// chain of n pieces without waiting for it: the cost an asynchronous batched
// prefetch charges to the issuing thread.
func (c Config) VectoredPostCost(n int) sim.Duration {
	if n <= 0 {
		return 0
	}
	return c.PerMessageOverhead + c.PerSGEOverhead*sim.Duration(n)
}

// RTTEstimate returns the latency a compiler should assume when computing
// prefetch distances (§4.5): the one-sided RTT plus wire time for a typical
// line of n bytes.
func (c Config) RTTEstimate(n int) sim.Duration {
	return c.OneSidedRTT + c.wireTime(n) + c.PerMessageOverhead
}

// Bandwidth serializes transfers from all simulated threads onto the shared
// link, modelling contention: a transfer issued at time t begins when the
// link frees up and occupies it for the transfer's wire time plus one
// PerMessageOverhead — the NIC's per-doorbell processing. That per-transfer
// term is what doorbell coalescing attacks: a vectored chain crosses the
// link as one transfer, so N lines pay the overhead once instead of N times.
// It is safe for concurrent use (simulated threads may run on real
// goroutines in tests).
type Bandwidth struct {
	mu       sync.Mutex
	cfg      Config
	nextFree sim.Time
	// totals for reporting
	bytesMoved int64
	transfers  int64

	// Weighted-fair arbitration (serving mode). With no tenants registered
	// the accountant is the pure FIFO above — byte-identical to the
	// pre-tenant behavior. With tenants, a transfer's wire occupancy is
	// unchanged but its *returned completion* is inflated by the pacing
	// surcharge busy·(1/share − 1): the issuing thread advances its clock
	// to the returned instant before touching the link again, so a
	// saturating tenant self-limits to its weight share while the wire
	// stays free for its peers during the surcharge — the link remains
	// work-conserving. (Start-time deferral would instead reserve future
	// wire slots and serialize everyone behind the paced tenant, because
	// the synchronous Acquire contract commits completions immediately.)
	// Shares are weight over the total weight of tenants active within
	// fairWindow, so a sole active tenant has share 1 and pays nothing.
	tenants    map[string]*tenantBW
	order      []string // sorted tenant names: deterministic share scans
	active     string   // tenant charged for subsequent Acquires
	fairWindow sim.Duration
}

// tenantBW is one tenant's pacing state and traffic totals.
type tenantBW struct {
	weight    float64
	lastSeen  sim.Time // completion of the tenant's latest transfer
	bytes     int64
	transfers int64
	paced     sim.Duration // cumulative pacing surcharge (reporting)
}

// DefaultFairWindow is the activity window of the weighted-fair arbiter: a
// tenant whose last transfer completed within the window counts toward the
// active share total. Long enough to span a request's think gaps, short
// enough that an idle tenant's share is redistributed promptly.
const DefaultFairWindow = 200 * sim.Microsecond

// NewBandwidth returns a contention accountant over cfg's link.
func NewBandwidth(cfg Config) *Bandwidth {
	return &Bandwidth{cfg: cfg, fairWindow: DefaultFairWindow}
}

// SetTenantWeight registers a tenant with the weighted-fair arbiter (or
// updates its weight; non-positive weights clamp to 1). Registering any
// tenant switches Acquire from pure FIFO to tenant pacing for attributed
// transfers.
func (b *Bandwidth) SetTenantWeight(name string, w float64) {
	if w <= 0 {
		w = 1
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tenants == nil {
		b.tenants = make(map[string]*tenantBW)
	}
	t := b.tenants[name]
	if t == nil {
		t = &tenantBW{}
		b.tenants[name] = t
		i := sort.SearchStrings(b.order, name)
		b.order = append(b.order, "")
		copy(b.order[i+1:], b.order[i:])
		b.order[i] = name
	}
	t.weight = w
}

// SetActiveTenant attributes subsequent Acquires to the named tenant (the
// serving layer calls it on every scheduler resume, like rt.SetActiveTid).
// An empty name or an unregistered tenant reverts to unattributed FIFO.
func (b *Bandwidth) SetActiveTenant(name string) {
	b.mu.Lock()
	b.active = name
	b.mu.Unlock()
}

// SetFairWindow overrides the arbiter's activity window (0 restores the
// default).
func (b *Bandwidth) SetFairWindow(d sim.Duration) {
	b.mu.Lock()
	if d <= 0 {
		d = DefaultFairWindow
	}
	b.fairWindow = d
	b.mu.Unlock()
}

// TenantBytes reports the bytes moved by transfers attributed to name.
func (b *Bandwidth) TenantBytes(name string) int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	if t := b.tenants[name]; t != nil {
		return t.bytes
	}
	return 0
}

// TenantTransfers reports the link acquisitions attributed to name.
func (b *Bandwidth) TenantTransfers(name string) int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	if t := b.tenants[name]; t != nil {
		return t.transfers
	}
	return 0
}

// TenantPaced reports the cumulative pacing surcharge charged to name — the
// virtual time the fair arbiter delayed the tenant's completions beyond raw
// link contention.
func (b *Bandwidth) TenantPaced(name string) sim.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	if t := b.tenants[name]; t != nil {
		return t.paced
	}
	return 0
}

// shareLocked computes the active tenant's weight share among tenants seen
// within the fair window of `at` (the requester always counts). Scanning
// the sorted order keeps the result independent of map iteration.
func (b *Bandwidth) shareLocked(name string, at sim.Time) float64 {
	cutoff := at.Add(-b.fairWindow)
	var total, mine float64
	for _, tn := range b.order {
		t := b.tenants[tn]
		if tn == name || (t.lastSeen > 0 && t.lastSeen >= cutoff) {
			total += t.weight
			if tn == name {
				mine = t.weight
			}
		}
	}
	if total <= 0 || mine <= 0 {
		return 1
	}
	return mine / total
}

// Acquire reserves the link for n bytes starting no earlier than now and
// returns the instant the transfer completes on the wire. Latency (RTT) is
// not included here — callers add it — only serialization and queueing.
// Every non-empty transfer also holds the link for one PerMessageOverhead:
// the NIC processes one doorbell per message, so two messages occupy it
// strictly longer than one message carrying the same bytes. Zero-byte
// acquires ring no doorbell and are free in time (they still count one
// transfer for the stats).
//
// Boundary semantics, pinned for compressed tiny payloads: a 1-byte
// transfer occupies the link for exactly PerMessageOverhead (its wire time
// truncates to 0 under the default link — see Config.WireTime's rounding
// rule); a 0-byte transfer occupies it for exactly 0 and pays no overhead.
// Both are pure functions of (now, n, queue state), so compressed messages
// of any size replay byte-identically.
func (b *Bandwidth) Acquire(now sim.Time, n int) sim.Time {
	b.mu.Lock()
	defer b.mu.Unlock()
	start := now
	if b.nextFree > start {
		start = b.nextFree
	}
	busy := b.cfg.wireTime(n)
	if n > 0 {
		busy += b.cfg.PerMessageOverhead
	}
	end := start.Add(busy)
	b.nextFree = end
	b.bytesMoved += int64(n)
	b.transfers++
	if b.active != "" {
		if t := b.tenants[b.active]; t != nil {
			t.bytes += int64(n)
			t.transfers++
			share := b.shareLocked(b.active, start)
			t.lastSeen = end
			if share < 1 && busy > 0 {
				surcharge := sim.Duration(float64(busy) * (1/share - 1))
				t.paced += surcharge
				end = end.Add(surcharge)
			}
		}
	}
	return end
}

// BytesMoved reports the total bytes that crossed the link.
func (b *Bandwidth) BytesMoved() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.bytesMoved
}

// Transfers reports the number of link acquisitions.
func (b *Bandwidth) Transfers() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.transfers
}

// Reset clears the accountant between runs. Tenant registrations survive;
// their pacing state and traffic totals are cleared.
func (b *Bandwidth) Reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.nextFree = 0
	b.bytesMoved = 0
	b.transfers = 0
	b.active = ""
	for _, t := range b.tenants {
		t.lastSeen = 0
		t.bytes = 0
		t.transfers = 0
		t.paced = 0
	}
}
