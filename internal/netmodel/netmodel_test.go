package netmodel

import (
	"testing"
	"testing/quick"

	"mira/internal/sim"
)

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	base := DefaultConfig()

	c := base
	c.OneSidedRTT = 0
	if c.Validate() == nil {
		t.Error("zero OneSidedRTT accepted")
	}

	c = base
	c.TwoSidedRTT = base.OneSidedRTT - 1
	if c.Validate() == nil {
		t.Error("TwoSidedRTT < OneSidedRTT accepted")
	}

	c = base
	c.BytesPerSecond = 0
	if c.Validate() == nil {
		t.Error("zero bandwidth accepted")
	}

	c = base
	c.MaxMessageBytes = 0
	if c.Validate() == nil {
		t.Error("zero MaxMessageBytes accepted")
	}

	c = base
	c.RemoteCopyPerByte = -1
	if c.Validate() == nil {
		t.Error("negative RemoteCopyPerByte accepted")
	}
}

func TestOneSidedCostMonotonicInSize(t *testing.T) {
	c := DefaultConfig()
	prev := sim.Duration(0)
	for _, n := range []int{0, 64, 128, 1024, 4096, 65536} {
		got := c.OneSidedCost(n)
		if got < prev {
			t.Fatalf("OneSidedCost(%d)=%v less than smaller transfer %v", n, got, prev)
		}
		prev = got
	}
}

func TestTwoSidedCostsMoreThanOneSided(t *testing.T) {
	c := DefaultConfig()
	for _, n := range []int{64, 512, 4096} {
		if c.TwoSidedCost(n) <= c.OneSidedCost(n) {
			t.Fatalf("TwoSidedCost(%d)=%v not above OneSidedCost=%v",
				n, c.TwoSidedCost(n), c.OneSidedCost(n))
		}
	}
}

func TestBatchedBeatsSeparateMessages(t *testing.T) {
	c := DefaultConfig()
	pieces := []int{128, 128, 128, 128}
	batched := c.BatchedCost(pieces)
	separate := sim.Duration(0)
	for _, p := range pieces {
		separate += c.TwoSidedCost(p)
	}
	if batched >= separate {
		t.Fatalf("batched %v not cheaper than %d separate messages %v",
			batched, len(pieces), separate)
	}
}

func TestBatchedCostEmpty(t *testing.T) {
	if got := DefaultConfig().BatchedCost(nil); got != 0 {
		t.Fatalf("BatchedCost(nil) = %v, want 0", got)
	}
}

func TestChunking(t *testing.T) {
	c := DefaultConfig()
	c.MaxMessageBytes = 1024
	if got := c.chunks(0); got != 1 {
		t.Errorf("chunks(0) = %d, want 1", got)
	}
	if got := c.chunks(1024); got != 1 {
		t.Errorf("chunks(1024) = %d, want 1", got)
	}
	if got := c.chunks(1025); got != 2 {
		t.Errorf("chunks(1025) = %d, want 2", got)
	}
	if got := c.chunks(4096); got != 4 {
		t.Errorf("chunks(4096) = %d, want 4", got)
	}
}

// Property: per-byte cost decreases (or stays equal) as transfers grow *up
// to the chunking knee* — amortizing latency is the point of larger cache
// lines (Fig. 9), and beyond MaxMessageBytes each extra chunk pays a fresh
// RTT, which is the knee itself.
func TestAmortizationProperty(t *testing.T) {
	c := DefaultConfig()
	f := func(raw uint16) bool {
		n := int(raw)%(c.MaxMessageBytes/2-64) + 64
		small := float64(c.OneSidedCost(n)) / float64(n)
		big := float64(c.OneSidedCost(2*n)) / float64(2*n)
		return big <= small+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Beyond the knee, per-byte cost flattens: a 4 KB transfer costs two full
// 2 KB transfers.
func TestChunkKnee(t *testing.T) {
	c := DefaultConfig()
	got, want := c.OneSidedCost(4096), 2*c.OneSidedCost(2048)
	diff := got - want
	if diff < -2 || diff > 2 { // integer-ns rounding slack
		t.Fatalf("OneSidedCost(4096) = %v, want ~%v (two chunks)", got, want)
	}
}

func TestRTTEstimatePositive(t *testing.T) {
	c := DefaultConfig()
	if c.RTTEstimate(128) <= c.OneSidedRTT {
		t.Fatalf("RTTEstimate(128)=%v should exceed bare RTT %v",
			c.RTTEstimate(128), c.OneSidedRTT)
	}
}

func TestBandwidthSerializes(t *testing.T) {
	c := DefaultConfig()
	bw := NewBandwidth(c)
	// Two back-to-back 1 MB transfers at t=0: the second must start
	// after the first finishes.
	end1 := bw.Acquire(0, 1<<20)
	end2 := bw.Acquire(0, 1<<20)
	if end2 <= end1 {
		t.Fatalf("second transfer finished at %v, not after first %v", end2, end1)
	}
	want := end1.Add(end1.Sub(0))
	if end2 != want {
		t.Fatalf("second transfer end %v, want %v (exact serialization)", end2, want)
	}
}

func TestBandwidthIdleLinkStartsImmediately(t *testing.T) {
	bw := NewBandwidth(DefaultConfig())
	end := bw.Acquire(1000, 0)
	if end != 1000 {
		t.Fatalf("zero-byte transfer on idle link ended at %v, want 1000", end)
	}
}

func TestBandwidthAccounting(t *testing.T) {
	bw := NewBandwidth(DefaultConfig())
	bw.Acquire(0, 100)
	bw.Acquire(0, 200)
	if bw.BytesMoved() != 300 {
		t.Fatalf("BytesMoved = %d, want 300", bw.BytesMoved())
	}
	if bw.Transfers() != 2 {
		t.Fatalf("Transfers = %d, want 2", bw.Transfers())
	}
	bw.Reset()
	if bw.BytesMoved() != 0 || bw.Transfers() != 0 {
		t.Fatal("Reset did not clear accounting")
	}
}

func TestBandwidthConcurrentSafety(t *testing.T) {
	bw := NewBandwidth(DefaultConfig())
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			for j := 0; j < 1000; j++ {
				bw.Acquire(0, 64)
			}
			done <- struct{}{}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	if bw.Transfers() != 8000 {
		t.Fatalf("Transfers = %d, want 8000", bw.Transfers())
	}
	if bw.BytesMoved() != 8000*64 {
		t.Fatalf("BytesMoved = %d, want %d", bw.BytesMoved(), 8000*64)
	}
}

func TestWireTime50Gbps(t *testing.T) {
	c := DefaultConfig()
	// 6250 bytes at 6.25 GB/s = 1 µs.
	got := c.wireTime(6250)
	if got < 990 || got > 1010 {
		t.Fatalf("wireTime(6250) = %v ns, want ~1000", int64(got))
	}
}

func TestWireTimeTruncationBoundaries(t *testing.T) {
	c := DefaultConfig()
	// The rounding rule (see WireTime): float ns truncated toward zero.
	// At 6.25 GB/s one byte is 0.16 ns -> 0; six bytes 0.96 ns -> 0;
	// seven bytes 1.12 ns -> 1.
	if got := c.WireTime(0); got != 0 {
		t.Fatalf("WireTime(0) = %v, want 0", got)
	}
	if got := c.WireTime(1); got != 0 {
		t.Fatalf("WireTime(1) = %v, want 0 (0.16 ns truncates)", got)
	}
	if got := c.WireTime(6); got != 0 {
		t.Fatalf("WireTime(6) = %v, want 0 (0.96 ns truncates)", got)
	}
	if got := c.WireTime(7); got != 1 {
		t.Fatalf("WireTime(7) = %v ns, want 1", int64(got))
	}
	// Truncation is per call, never accumulated: N 1-byte transfers have
	// zero total wire time regardless of N.
	var sum sim.Duration
	for i := 0; i < 1000; i++ {
		sum += c.WireTime(1)
	}
	if sum != 0 {
		t.Fatalf("1000 x WireTime(1) = %v, want 0", sum)
	}
}

func TestAcquireTinyPayloadBoundaries(t *testing.T) {
	c := DefaultConfig()

	// 1-byte transfer: exactly PerMessageOverhead of link occupancy.
	bw := NewBandwidth(c)
	end := bw.Acquire(0, 1)
	if end != sim.Time(0).Add(c.PerMessageOverhead) {
		t.Fatalf("Acquire(0, 1) = %v, want PerMessageOverhead %v", end, c.PerMessageOverhead)
	}
	if bw.BytesMoved() != 1 || bw.Transfers() != 1 {
		t.Fatalf("after 1-byte acquire: %d bytes / %d transfers", bw.BytesMoved(), bw.Transfers())
	}

	// 0-byte transfer: free in time (no doorbell), but counted as a
	// transfer; the link's queue position is unchanged.
	end = bw.Acquire(end, 0)
	if end != sim.Time(0).Add(c.PerMessageOverhead) {
		t.Fatalf("Acquire(_, 0) = %v, want unchanged %v", end, c.PerMessageOverhead)
	}
	if bw.BytesMoved() != 1 || bw.Transfers() != 2 {
		t.Fatalf("after 0-byte acquire: %d bytes / %d transfers", bw.BytesMoved(), bw.Transfers())
	}

	// Determinism across runs: replaying the same tiny-payload sequence
	// yields identical completions.
	replay := func() []sim.Time {
		b := NewBandwidth(c)
		var out []sim.Time
		at := sim.Time(0)
		for _, n := range []int{1, 0, 6, 7, 1, 2048, 0, 3} {
			at = b.Acquire(at, n)
			out = append(out, at)
		}
		return out
	}
	a, b := replay(), replay()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverges at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
