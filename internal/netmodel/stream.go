package netmodel

import "mira/internal/sim"

// DefaultStreamChunk is the chunk size used when a stream's caller does not
// pick one: large enough to amortize per-message overhead, small enough to
// keep the bounded window from monopolizing the link.
const DefaultStreamChunk = 64 * 1024

// streamWindow bounds how many chunks are in flight at once: chunk i is not
// issued before chunk i-streamWindow completes, modeling a fixed ring of
// transfer buffers rather than an unbounded send queue.
const streamWindow = 4

// StreamCost returns the completion time of shipping n bytes as a pipelined
// sequence of bounded chunks starting at now. Each chunk occupies the shared
// link via bw (per-node when the cluster does not share bandwidth); a nil bw
// falls back to unshared wire time plus per-message overhead. The final
// chunk's arrival is acknowledged with one two-sided RTT.
func StreamCost(c Config, bw *Bandwidth, now sim.Time, n, chunk int) sim.Time {
	if n <= 0 {
		return now
	}
	if chunk <= 0 {
		chunk = DefaultStreamChunk
	}
	var done []sim.Time
	t := now
	for off := 0; off < n; off += chunk {
		cn := chunk
		if n-off < cn {
			cn = n - off
		}
		issue := t
		if len(done) >= streamWindow {
			if gate := done[len(done)-streamWindow]; gate > issue {
				issue = gate
			}
		}
		var end sim.Time
		if bw != nil {
			end = bw.Acquire(issue, cn)
		} else {
			end = issue.Add(c.WireTime(cn) + c.PerMessageOverhead)
		}
		done = append(done, end)
		t = issue
	}
	return done[len(done)-1].Add(c.TwoSidedRTT)
}
