package mtrun

import (
	"bytes"
	"testing"

	"mira/internal/apps/dataframe"
	"mira/internal/apps/gpt2"
	"mira/internal/cache"
	"mira/internal/exec"
	"mira/internal/farmem"
	"mira/internal/ir"
	"mira/internal/netmodel"
	"mira/internal/rt"
	"mira/internal/sim"
	"mira/internal/trace"
)

func TestReadOnlyScalingShapes(t *testing.T) {
	w := gpt2.New(gpt2.Config{Layers: 6, DModel: 64, DFF: 256, SeqLen: 16, Seed: 5})
	budget := w.FullMemoryBytes()

	timeOf := func(mode Mode, threads int) sim.Duration {
		res, err := ReadOnlyScaling(mode, w, budget, threads)
		if err != nil {
			t.Fatalf("%s x%d: %v", mode, threads, err)
		}
		if res.Time <= 0 {
			t.Fatalf("%s x%d: zero time", mode, threads)
		}
		return res.Time
	}

	speedups := map[Mode]float64{}
	for _, mode := range []Mode{MiraPrivate, MiraShared, FastSwapShared} {
		t1 := timeOf(mode, 1)
		t4 := timeOf(mode, 4)
		speedups[mode] = float64(t1) / float64(t4)
		t.Logf("%s: 4-thread speedup %.2fx (t1=%v t4=%v)", mode, speedups[mode], t1, t4)
		if speedups[mode] < 1.0 {
			t.Errorf("%s: adding threads slowed fixed work down (%.2fx)", mode, speedups[mode])
		}
	}

	// The paper's Fig. 24 shape: Mira scales better than FastSwap.
	if speedups[MiraPrivate] <= speedups[FastSwapShared] {
		t.Errorf("Mira scaling (%.2f) not above FastSwap (%.2f)",
			speedups[MiraPrivate], speedups[FastSwapShared])
	}
}

// TestFig24UnoptSeparation: on the Fig. 24 driver, Mira-unopt (every
// thread's replica in one conservative shared section set) must be
// measurably slower than Mira (private per-thread sections) once threads
// interleave — the gap is emergent cross-thread eviction interference,
// which the old sequential fair-share model could not produce.
func TestFig24UnoptSeparation(t *testing.T) {
	w := gpt2.New(gpt2.Config{Layers: 6, DModel: 64, DFF: 256, SeqLen: 16, Seed: 5})
	budget := w.FullMemoryBytes()
	priv, err := ReadOnlyScaling(MiraPrivate, w, budget, 4)
	if err != nil {
		t.Fatal(err)
	}
	unopt, err := ReadOnlyScaling(MiraShared, w, budget, 4)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("4 threads: mira %v, mira-unopt %v", priv.Time, unopt.Time)
	if unopt.Time <= priv.Time {
		t.Errorf("mira-unopt (%v) not slower than mira (%v) at 4 threads", unopt.Time, priv.Time)
	}
}

func TestSharedWriteFilterCorrectAndScales(t *testing.T) {
	cfg := dataframe.Config{Rows: 1 << 14, Seed: 7}
	budget := int64(1<<14) * 8 * 5 / 3 // about a third of the table

	var oneThread, fourThreads sim.Duration
	for _, threads := range []int{1, 4} {
		res, err := SharedWriteFilter(MiraPrivate, cfg, budget, threads)
		if err != nil {
			t.Fatalf("mira x%d: %v", threads, err)
		}
		if threads == 1 {
			oneThread = res.Time
		} else {
			fourThreads = res.Time
		}
	}
	// Four threads each do a quarter of the work; even with shared-write
	// conservatism the fork-join time must drop.
	if fourThreads >= oneThread {
		t.Errorf("shared-write filter did not scale: 1T %v, 4T %v", oneThread, fourThreads)
	}

	for _, mode := range []Mode{FastSwapShared, AIFMShared} {
		if _, err := SharedWriteFilter(mode, cfg, budget, 4); err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
	}
}

func TestSharedWriteFilterVerifies(t *testing.T) {
	cfg := dataframe.Config{Rows: 4096, Seed: 11}
	budget := int64(4096) * 8 * 2
	threads := 4

	// Run Mira mode and verify the shared result vector.
	cfgF := cfg
	cfgF.FilterOnly = true
	w := dataframe.New(cfgF)
	prog := w.Program()
	progMT := cloneForEntryForTest(prog)
	compiled, r, err := miraSharedFilterRuntime(progMT, budget, defaultNet())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Init(r); err != nil {
		t.Fatal(err)
	}
	rows := w.Config().Rows
	clk := sim.NewClock(0)
	for i := 0; i < threads; i++ {
		lo := rows * int64(i) / int64(threads)
		hi := rows * int64(i+1) / int64(threads)
		if err := runFilterPart(compiled, r, clk, lo, hi); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.FlushAll(clk); err != nil {
		t.Fatal(err)
	}
	if err := VerifySharedFilter(cfg, threads, r); err != nil {
		t.Fatal(err)
	}
}

// Test helpers reusing mtrun internals.
func cloneForEntryForTest(p *ir.Program) *ir.Program { return ir.CloneForEntry(p, "filterPart") }

func defaultNet() netmodel.Config { return netmodel.DefaultConfig() }

func runFilterPart(prog *ir.Program, r *rt.Runtime, clk *sim.Clock, lo, hi int64) error {
	ex, err := exec.New(prog, r, exec.Options{Params: map[string]exec.Value{
		"start":   exec.IntV(lo),
		"end":     exec.IntV(hi),
		"outbase": exec.IntV(lo),
	}})
	if err != nil {
		return err
	}
	_, err = ex.Run(clk)
	return err
}

func TestInvalidThreadCount(t *testing.T) {
	w := gpt2.New(gpt2.Config{Layers: 1, DModel: 16, DFF: 32, SeqLen: 8, Seed: 1})
	if _, err := ReadOnlyScaling(MiraPrivate, w, 1<<20, 0); err == nil {
		t.Fatal("zero threads accepted")
	}
	if _, err := SharedWriteFilter(MiraPrivate, dataframe.Config{Rows: 128, Seed: 1}, 1<<20, 0); err == nil {
		t.Fatal("zero threads accepted")
	}
}

func TestReadOnlyScalingRejectsUnsupportedMode(t *testing.T) {
	w := gpt2.New(gpt2.Config{Layers: 1, DModel: 16, DFF: 32, SeqLen: 4, Seed: 1})
	if _, err := ReadOnlyScaling(AIFMShared, w, w.FullMemoryBytes(), 2); err == nil {
		t.Fatal("aifm accepted for read-only scaling")
	}
	if _, err := ReadOnlyScaling(Mode("bogus"), w, w.FullMemoryBytes(), 2); err == nil {
		t.Fatal("bogus mode accepted")
	}
}

func TestSharedWriteFilterRejectsUnsupportedMode(t *testing.T) {
	cfg := dataframe.Config{Rows: 256, Seed: 1}
	if _, err := SharedWriteFilter(Mode("bogus"), cfg, 1<<20, 2); err == nil {
		t.Fatal("bogus mode accepted")
	}
}

// Emergent contention: with n interleaved threads sharing the link (and,
// for swap, the fault lock and pool), one thread's single-rep time must
// grow with the thread count for every mode.
func TestContentionMonotone(t *testing.T) {
	w := gpt2.New(gpt2.Config{Layers: 4, DModel: 32, DFF: 128, SeqLen: 8, Seed: 2})
	budget := w.FullMemoryBytes() / 2
	for _, mode := range []Mode{MiraPrivate, FastSwapShared} {
		perRep := func(threads int) float64 {
			res, err := ReadOnlyScaling(mode, w, budget, threads)
			if err != nil {
				t.Fatalf("%s x%d: %v", mode, threads, err)
			}
			reps := DefaultReps / threads
			if reps < 1 {
				reps = 1
			}
			return float64(res.Time) / float64(reps)
		}
		if t1, t8 := perRep(1), perRep(8); t8 <= t1 {
			t.Errorf("%s: per-rep time did not grow under contention: %v vs %v", mode, t1, t8)
		}
	}
}

// interferenceRuntime builds a runtime with one direct-mapped section half
// the size of its only object, so an element in the object's lower half
// aliases the element one section-size above it.
func interferenceRuntime(t *testing.T) (*rt.Runtime, *ir.Program) {
	t.Helper()
	const elems = 1 << 12 // 32 KiB object, 16 KiB section
	prog := &ir.Program{
		Name:    "interference",
		Entry:   "main",
		Objects: []*ir.Object{{Name: "data", ElemBytes: 8, Count: elems}},
		Funcs:   []*ir.Func{{Name: "main", Body: []ir.Stmt{&ir.Return{}}}},
	}
	cfg := rt.Config{
		LocalBudget: elems * 8 / 2,
		Sections: []rt.SectionSpec{
			{Cache: cache.Config{Name: "shared", Structure: cache.Direct, LineBytes: 64, SizeBytes: elems * 8 / 2}},
		},
		Placements: map[string]rt.Placement{"data": {Kind: rt.PlaceSection, Section: 0}},
		Net:        netmodel.DefaultConfig(),
	}
	r, err := rt.New(cfg, farmem.NewNode(farmem.DefaultNodeConfig()))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Bind(prog); err != nil {
		t.Fatal(err)
	}
	return r, prog
}

// scanHalf drives raw accesses to one half of the interference object from
// a scheduler thread, yielding before every access the way the executor
// does.
func scanHalf(r *rt.Runtime, th *sim.Thread, half int64) error {
	const elems = 1 << 12
	field := ir.Field{Offset: 0, Bytes: 8}
	var buf [8]byte
	for e := half * elems / 2; e < (half+1)*elems/2; e++ {
		th.Yield()
		r.SetActiveTid(th.ID())
		if err := r.Access(th.Clock(), "data", e, field, buf[:], false, rt.AccessOpts{}); err != nil {
			return err
		}
	}
	return nil
}

// TestInterleavedEvictionInterference: two threads scanning *disjoint*
// halves of one object through a shared direct-mapped section must evict
// each other's lines — the halves alias slot-for-slot, so the interleaving
// turns one miss per line into a miss per access. A single thread scanning
// one half (the same per-thread work) sees only capacity evictions. This is
// the §4.6 effect the sequential fair-share model could not produce.
func TestInterleavedEvictionInterference(t *testing.T) {
	// Baseline: one thread, one half.
	r1, _ := interferenceRuntime(t)
	g1 := sim.NewThreadGroup(1, 0)
	s1 := sim.NewScheduler(g1)
	s1.Spawn(func(th *sim.Thread) error { return scanHalf(r1, th, 0) })
	if err := s1.Run(); err != nil {
		t.Fatal(err)
	}
	_, _, baseEvicts := r1.TidStats(0, 0)

	// Interleaved: two threads, disjoint halves, same shared section.
	r2, _ := interferenceRuntime(t)
	g2 := sim.NewThreadGroup(2, 0)
	s2 := sim.NewScheduler(g2)
	for i := 0; i < 2; i++ {
		half := int64(i)
		s2.Spawn(func(th *sim.Thread) error { return scanHalf(r2, th, half) })
	}
	if err := s2.Run(); err != nil {
		t.Fatal(err)
	}
	for tid := 0; tid < 2; tid++ {
		hits, misses, evicts := r2.TidStats(0, tid)
		t.Logf("tid %d: hits=%d misses=%d evicts=%d (1-thread baseline evicts=%d)", tid, hits, misses, evicts, baseEvicts)
		if evicts <= baseEvicts {
			t.Errorf("tid %d: per-tid evicts %d not above single-thread baseline %d", tid, evicts, baseEvicts)
		}
	}
}

// mtTraceRun serializes one traced 4-thread run's trace and metrics.
func mtTraceRun(t *testing.T, mode Mode) (string, string) {
	t.Helper()
	tr := trace.New()
	w := gpt2.New(gpt2.Config{Layers: 2, DModel: 32, DFF: 128, SeqLen: 8, Seed: 9})
	if _, err := ReadOnlyScalingTraced(mode, w, w.FullMemoryBytes()/2, 4, tr); err != nil {
		t.Fatalf("%s: %v", mode, err)
	}
	var tb, mb bytes.Buffer
	if err := tr.WriteTrace(&tb); err != nil {
		t.Fatal(err)
	}
	if err := tr.Registry().WriteJSON(&mb); err != nil {
		t.Fatal(err)
	}
	return tb.String(), mb.String()
}

// TestMTTraceDeterminism: two identical 4-thread interleaved runs must
// serialize byte-identical traces and metrics — the scheduler's
// (virtual time, thread id) order is the only source of interleaving, so
// goroutine scheduling and map iteration must never leak into results. (The
// CI determinism job runs this twice in one process as well.)
func TestMTTraceDeterminism(t *testing.T) {
	for _, mode := range []Mode{MiraPrivate, MiraShared, FastSwapShared} {
		t1, m1 := mtTraceRun(t, mode)
		t2, m2 := mtTraceRun(t, mode)
		if t1 != t2 {
			t.Fatalf("%s: traces differ across identical runs", mode)
		}
		if m1 != m2 {
			t.Fatalf("%s: metrics differ across identical runs", mode)
		}
		if len(t1) == 0 {
			t.Fatalf("%s: empty trace", mode)
		}
	}
}
