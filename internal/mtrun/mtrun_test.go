package mtrun

import (
	"testing"

	"mira/internal/apps/dataframe"
	"mira/internal/apps/gpt2"
	"mira/internal/exec"
	"mira/internal/ir"
	"mira/internal/netmodel"
	"mira/internal/rt"
	"mira/internal/sim"
)

func TestReadOnlyScalingShapes(t *testing.T) {
	w := gpt2.New(gpt2.Config{Layers: 6, DModel: 64, DFF: 256, SeqLen: 16, Seed: 5})
	budget := w.FullMemoryBytes()

	timeOf := func(mode Mode, threads int) sim.Duration {
		res, err := ReadOnlyScaling(mode, w, budget, threads)
		if err != nil {
			t.Fatalf("%s x%d: %v", mode, threads, err)
		}
		if res.Time <= 0 {
			t.Fatalf("%s x%d: zero time", mode, threads)
		}
		return res.Time
	}

	speedups := map[Mode]float64{}
	for _, mode := range []Mode{MiraPrivate, MiraShared, FastSwapShared} {
		t1 := timeOf(mode, 1)
		t4 := timeOf(mode, 4)
		speedups[mode] = float64(t1) / float64(t4)
		t.Logf("%s: 4-thread speedup %.2fx (t1=%v t4=%v)", mode, speedups[mode], t1, t4)
		if speedups[mode] < 1.0 {
			t.Errorf("%s: adding threads slowed fixed work down (%.2fx)", mode, speedups[mode])
		}
	}

	// The paper's Fig. 24 shape: Mira scales better than FastSwap.
	// (The Mira vs Mira-unopt gap needs concurrent eviction
	// interference, which sequential simulation cannot produce — see
	// the package comment.)
	if speedups[MiraPrivate] <= speedups[FastSwapShared] {
		t.Errorf("Mira scaling (%.2f) not above FastSwap (%.2f)",
			speedups[MiraPrivate], speedups[FastSwapShared])
	}
}

func TestSharedWriteFilterCorrectAndScales(t *testing.T) {
	cfg := dataframe.Config{Rows: 1 << 14, Seed: 7}
	budget := int64(1<<14) * 8 * 5 / 3 // about a third of the table

	var oneThread, fourThreads sim.Duration
	for _, threads := range []int{1, 4} {
		res, err := SharedWriteFilter(MiraPrivate, cfg, budget, threads)
		if err != nil {
			t.Fatalf("mira x%d: %v", threads, err)
		}
		if threads == 1 {
			oneThread = res.Time
		} else {
			fourThreads = res.Time
		}
	}
	// Four threads each do a quarter of the work; even with shared-write
	// conservatism the fork-join time must drop.
	if fourThreads >= oneThread {
		t.Errorf("shared-write filter did not scale: 1T %v, 4T %v", oneThread, fourThreads)
	}

	for _, mode := range []Mode{FastSwapShared, AIFMShared} {
		if _, err := SharedWriteFilter(mode, cfg, budget, 4); err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
	}
}

func TestSharedWriteFilterVerifies(t *testing.T) {
	cfg := dataframe.Config{Rows: 4096, Seed: 11}
	budget := int64(4096) * 8 * 2
	threads := 4

	// Run Mira mode and verify the shared result vector.
	cfgF := cfg
	cfgF.FilterOnly = true
	w := dataframe.New(cfgF)
	prog := w.Program()
	progMT := cloneForEntryForTest(prog)
	compiled, r, err := miraSharedFilterRuntime(progMT, budget, defaultNet())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Init(r); err != nil {
		t.Fatal(err)
	}
	rows := w.Config().Rows
	clk := sim.NewClock(0)
	for i := 0; i < threads; i++ {
		lo := rows * int64(i) / int64(threads)
		hi := rows * int64(i+1) / int64(threads)
		if err := runFilterPart(compiled, r, clk, lo, hi); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.FlushAll(clk); err != nil {
		t.Fatal(err)
	}
	if err := VerifySharedFilter(cfg, threads, r); err != nil {
		t.Fatal(err)
	}
}

// Test helpers reusing mtrun internals.
func cloneForEntryForTest(p *ir.Program) *ir.Program { return ir.CloneForEntry(p, "filterPart") }

func defaultNet() netmodel.Config { return netmodel.DefaultConfig() }

func runFilterPart(prog *ir.Program, r *rt.Runtime, clk *sim.Clock, lo, hi int64) error {
	ex, err := exec.New(prog, r, exec.Options{Params: map[string]exec.Value{
		"start":   exec.IntV(lo),
		"end":     exec.IntV(hi),
		"outbase": exec.IntV(lo),
	}})
	if err != nil {
		return err
	}
	_, err = ex.Run(clk)
	return err
}

func TestInvalidThreadCount(t *testing.T) {
	w := gpt2.New(gpt2.Config{Layers: 1, DModel: 16, DFF: 32, SeqLen: 8, Seed: 1})
	if _, err := ReadOnlyScaling(MiraPrivate, w, 1<<20, 0); err == nil {
		t.Fatal("zero threads accepted")
	}
	if _, err := SharedWriteFilter(MiraPrivate, dataframe.Config{Rows: 128, Seed: 1}, 1<<20, 0); err == nil {
		t.Fatal("zero threads accepted")
	}
}

func TestReadOnlyScalingRejectsUnsupportedMode(t *testing.T) {
	w := gpt2.New(gpt2.Config{Layers: 1, DModel: 16, DFF: 32, SeqLen: 4, Seed: 1})
	if _, err := ReadOnlyScaling(AIFMShared, w, w.FullMemoryBytes(), 2); err == nil {
		t.Fatal("aifm accepted for read-only scaling")
	}
	if _, err := ReadOnlyScaling(Mode("bogus"), w, w.FullMemoryBytes(), 2); err == nil {
		t.Fatal("bogus mode accepted")
	}
}

func TestSharedWriteFilterRejectsUnsupportedMode(t *testing.T) {
	cfg := dataframe.Config{Rows: 256, Seed: 1}
	if _, err := SharedWriteFilter(Mode("bogus"), cfg, 1<<20, 2); err == nil {
		t.Fatal("bogus mode accepted")
	}
}

// Fair-share semantics: with the budget and bandwidth split n ways, one
// thread's single-rep time must grow with the thread count for every mode.
func TestContentionMonotone(t *testing.T) {
	w := gpt2.New(gpt2.Config{Layers: 4, DModel: 32, DFF: 128, SeqLen: 8, Seed: 2})
	budget := w.FullMemoryBytes() / 2
	for _, mode := range []Mode{MiraPrivate, FastSwapShared} {
		perRep := func(threads int) float64 {
			res, err := ReadOnlyScaling(mode, w, budget, threads)
			if err != nil {
				t.Fatalf("%s x%d: %v", mode, threads, err)
			}
			reps := DefaultReps / threads
			if reps < 1 {
				reps = 1
			}
			return float64(res.Time) / float64(reps)
		}
		if t1, t8 := perRep(1), perRep(8); t8 <= t1 {
			t.Errorf("%s: per-rep time did not grow under contention: %v vs %v", mode, t1, t8)
		}
	}
}
