// Package mtrun drives the multithreaded experiments (§4.6, Figs. 24-25)
// on the deterministic interleaved scheduler (sim.Scheduler): every
// simulated thread yields at each memory-operation boundary, the thread
// with the lowest (virtual time, id) runs next, and all threads mutate the
// shared runtime state in that event order. Cross-thread contention —
// eviction interference in shared sections, link occupancy, swap-lock
// serialization, write-back queue pressure — is therefore emergent from
// the shared cache/NIC/swap state rather than modeled in closed form, and
// the whole interleaving is byte-reproducible.
//
// Two drivers mirror the paper's two experiments:
//
//   - ReadOnlyScaling (Fig. 24): n threads divide a fixed batch of
//     independent read-only workload instances (GPT-2 inference). Mira
//     gives each thread private cache sections (budget/n each) over a
//     shared link; Mira-unopt binds n renamed program replicas to ONE
//     runtime whose conservative shared sections (fully-associative, no
//     eviction hints, no native loads) all threads pressure concurrently;
//     FastSwap shares one page pool behind the serialized kernel fault
//     lock.
//   - SharedWriteFilter (Fig. 25): n threads filter disjoint row ranges of
//     one table into a shared result vector. Mira uses a shared
//     fully-associative section for the written vector (§4.6) and a shared
//     sequential section for the scanned columns.
package mtrun

import (
	"encoding/binary"
	"fmt"
	"math"

	"mira/internal/analysis"
	"mira/internal/apps/dataframe"
	"mira/internal/baselines/aifm"
	"mira/internal/baselines/fastswap"
	"mira/internal/cache"
	"mira/internal/codegen"
	"mira/internal/exec"
	"mira/internal/farmem"
	"mira/internal/ir"
	"mira/internal/netmodel"
	"mira/internal/planner"
	"mira/internal/rt"
	"mira/internal/sim"
	"mira/internal/trace"
	"mira/internal/workload"
)

// Mode selects the multithreading strategy.
type Mode string

// The compared configurations.
const (
	// MiraPrivate gives each thread private sections (§4.6 read-only /
	// shared-nothing).
	MiraPrivate Mode = "mira"
	// MiraShared shares one section set across threads (the paper's
	// "Mira-unopt" reference in Fig. 24).
	MiraShared Mode = "mira-unopt"
	// FastSwapShared shares the swap pool behind the kernel fault lock.
	FastSwapShared Mode = "fastswap"
	// AIFMShared shares the AIFM object cache.
	AIFMShared Mode = "aifm"
)

// Result is one scaling point.
type Result struct {
	Mode    Mode
	Threads int
	// Time is the fork-join completion time.
	Time sim.Duration
	// PerThread are the individual completion times.
	PerThread []sim.Duration
	// Messages and BytesMoved count link-level transfers across the whole
	// thread group (the group shares one physical link).
	Messages   int64
	BytesMoved int64
}

// DefaultReps is the fixed total work of the read-only scaling experiment:
// the batch of independent inferences the threads divide among themselves.
const DefaultReps = 8

// threadCtx is one simulated thread's execution context: the program (with
// the thread's entry), the backend it runs against, and the runtime to
// notify of scheduler resumes (nil for non-rt backends like AIFM).
type threadCtx struct {
	prog   *ir.Program
	be     exec.Backend
	rt     *rt.Runtime
	params map[string]exec.Value
	reps   int
}

// runInterleaved executes every thread context on the deterministic
// scheduler and reports the fork-join time plus per-thread times.
func runInterleaved(ctxs []threadCtx) (sim.Duration, []sim.Duration, error) {
	g := sim.NewThreadGroup(len(ctxs), 0)
	sch := sim.NewScheduler(g)
	for i := range ctxs {
		c := ctxs[i]
		sch.Spawn(func(th *sim.Thread) error {
			// Re-assert the thread's identity after every resume: the
			// runtime attributes cache events to the active tid, and
			// another thread ran between our yield and this resume.
			yield := func() {
				th.Yield()
				if c.rt != nil {
					c.rt.SetActiveTid(th.ID())
				}
			}
			for rep := 0; rep < c.reps; rep++ {
				ex, err := exec.New(c.prog, c.be, exec.Options{Params: c.params, Yield: yield})
				if err != nil {
					return err
				}
				if _, err := ex.Run(th.Clock()); err != nil {
					return err
				}
			}
			return nil
		})
	}
	if err := sch.Run(); err != nil {
		return 0, nil, err
	}
	per := make([]sim.Duration, len(ctxs))
	for i := range per {
		per[i] = g.Clock(i).Now().Sub(0)
	}
	return g.Elapsed(), per, nil
}

// repsFor divides the fixed DefaultReps batch across threads.
func repsFor(threads int) int {
	reps := DefaultReps / threads
	if reps < 1 {
		reps = 1
	}
	return reps
}

// localBytesOf sums the sizes of the objects a config would place in local
// memory (per-thread stacks and pinned state).
func localBytesOf(p *ir.Program, placements map[string]rt.Placement) int64 {
	var total int64
	for _, o := range p.Objects {
		pl, ok := placements[o.Name]
		if !ok {
			if o.Local {
				pl = rt.Placement{Kind: rt.PlaceLocal}
			} else {
				pl = rt.Placement{Kind: rt.PlaceSwap}
			}
		}
		if pl.Kind == rt.PlaceLocal {
			total += o.SizeBytes()
		}
	}
	return total
}

// replicaIniter redirects a workload's object initialization to one
// replica's renamed objects in a merged program.
type replicaIniter struct {
	ini workload.ObjectIniter
	i   int
}

func (ri replicaIniter) InitObject(name string, data []byte) error {
	return ri.ini.InitObject(ir.ReplicaName(name, ri.i), data)
}

// mergedWorkload wraps a workload as its n-replica merged program: Init
// loads every replica's copy of the data.
type mergedWorkload struct {
	workload.Workload
	prog *ir.Program
	n    int
}

func (m mergedWorkload) Program() *ir.Program { return m.prog }

func (m mergedWorkload) Init(ini workload.ObjectIniter) error {
	for i := 0; i < m.n; i++ {
		if err := m.Workload.Init(replicaIniter{ini: ini, i: i}); err != nil {
			return err
		}
	}
	return nil
}

// ReadOnlyScaling divides DefaultReps independent executions of w across
// threads (Fig. 24), interleaving them on the deterministic scheduler.
func ReadOnlyScaling(mode Mode, w workload.Workload, budget int64, threads int) (Result, error) {
	return ReadOnlyScalingTraced(mode, w, budget, threads, nil)
}

// ReadOnlyScalingTraced is ReadOnlyScaling with a tracer attached to every
// runtime in the group (nil disables tracing).
func ReadOnlyScalingTraced(mode Mode, w workload.Workload, budget int64, threads int, tr *trace.Tracer) (Result, error) {
	if threads < 1 {
		return Result{}, fmt.Errorf("mtrun: threads = %d", threads)
	}
	res := Result{Mode: mode, Threads: threads}
	reps := repsFor(threads)
	net := netmodel.DefaultConfig()
	ctxs := make([]threadCtx, threads)

	switch mode {
	case MiraPrivate:
		// Private per-thread sections (§4.6): each thread plans and owns
		// budget/threads of local memory; all runtimes share one physical
		// link, arbitrated by event order.
		plan, err := planner.Plan(w, planner.Options{
			LocalBudget:   budget / int64(threads),
			Net:           net,
			MaxIterations: 6,
		})
		if err != nil {
			return Result{}, err
		}
		bw := netmodel.NewBandwidth(net)
		for i := range ctxs {
			node := farmem.NewNode(farmem.DefaultNodeConfig())
			r, err := rt.New(plan.Config, node)
			if err != nil {
				return Result{}, err
			}
			if err := r.Bind(plan.Program); err != nil {
				return Result{}, err
			}
			if err := w.Init(r); err != nil {
				return Result{}, err
			}
			r.ShareBandwidth(bw)
			r.SetTrace(tr)
			ctxs[i] = threadCtx{prog: plan.Program, be: r, rt: r, params: w.Params(), reps: reps}
		}

	case MiraShared:
		// One section set shared by all threads: §4.6's conservative
		// configuration — fully-associative, no eviction hints, no
		// native-load conversion (another thread may evict any line). The
		// planned program is replicated per thread (renamed copies of its
		// objects and functions) and bound to ONE runtime, so all threads'
		// working sets fight for the same full-budget sections: eviction
		// interference, in-flight stealing, and write-back contention are
		// emergent from the interleaving.
		plan, err := planner.Plan(w, planner.Options{
			LocalBudget:   budget,
			Net:           net,
			MaxIterations: 6,
			Techniques: planner.TechniqueMask{
				ForceStructure: int(cache.FullAssoc),
				NoEvictHints:   true,
				NoNative:       true,
			},
		})
		if err != nil {
			return Result{}, err
		}
		merged := ir.MergeReplicas(plan.Program, threads)
		cfg := plan.Config
		placements := make(map[string]rt.Placement, threads*len(plan.Program.Objects))
		for _, o := range plan.Program.Objects {
			pl, ok := cfg.Placements[o.Name]
			if !ok {
				if o.Local {
					pl = rt.Placement{Kind: rt.PlaceLocal}
				} else {
					pl = rt.Placement{Kind: rt.PlaceSwap}
				}
			}
			for i := 0; i < threads; i++ {
				placements[ir.ReplicaName(o.Name, i)] = pl
			}
		}
		cfg.Placements = placements
		// Per-thread local objects (stacks, pinned state) live outside the
		// contended far-memory budget; widen the accounting for the extra
		// replicas so the shared sections keep their planned full size.
		cfg.LocalBudget += int64(threads-1) * localBytesOf(plan.Program, plan.Config.Placements)
		node := farmem.NewNode(farmem.DefaultNodeConfig())
		r, err := rt.New(cfg, node)
		if err != nil {
			return Result{}, err
		}
		if err := r.Bind(merged); err != nil {
			return Result{}, err
		}
		mw := mergedWorkload{Workload: w, prog: merged, n: threads}
		if err := mw.Init(r); err != nil {
			return Result{}, err
		}
		r.SetTrace(tr)
		for i := range ctxs {
			entry := ir.CloneForEntry(merged, ir.ReplicaName(plan.Program.Entry, i))
			ctxs[i] = threadCtx{prog: entry, be: r, rt: r, params: w.Params(), reps: reps}
		}

	case FastSwapShared:
		// One page pool shared by all threads' replicas; every major fault
		// serializes on the kernel swap lock, so fault-path queueing grows
		// with the number of concurrently faulting threads.
		prog := w.Program()
		mw := mergedWorkload{Workload: w, prog: ir.MergeReplicas(prog, threads), n: threads}
		r, err := fastswap.New(mw, fastswap.Options{
			// Keep the shared pool at `budget` like the single-thread
			// baseline: replica locals are per-thread stacks outside it.
			LocalBudget: budget + int64(threads-1)*localBytesOf(prog, nil),
			Net:         net,
		})
		if err != nil {
			return Result{}, err
		}
		r.SwapLock(&sim.Serializer{})
		r.SetTrace(tr)
		for i := range ctxs {
			entry := ir.CloneForEntry(mw.prog, ir.ReplicaName(prog.Entry, i))
			ctxs[i] = threadCtx{prog: entry, be: r, rt: r, params: w.Params(), reps: reps}
		}

	default:
		return Result{}, fmt.Errorf("mtrun: mode %q not supported for read-only scaling", mode)
	}

	var err error
	res.Time, res.PerThread, err = runInterleaved(ctxs)
	if err != nil {
		return Result{}, err
	}
	// Every mode shares one link (private runtimes share one Bandwidth),
	// so any runtime's link counters are the group totals.
	if r := ctxs[0].rt; r != nil {
		res.Messages = r.Link().Messages()
		res.BytesMoved = r.Link().BytesMoved()
	}
	return res, nil
}

// SharedWriteFilter partitions a dataframe filter across threads writing a
// shared result vector (Fig. 25). All threads run interleaved against one
// runtime: the scanned columns and the shared result section carry every
// thread's traffic in virtual-time event order.
func SharedWriteFilter(mode Mode, cfg dataframe.Config, budget int64, threads int) (Result, error) {
	if threads < 1 {
		return Result{}, fmt.Errorf("mtrun: threads = %d", threads)
	}
	cfg.FilterOnly = true
	w := dataframe.New(cfg)
	rows := w.Config().Rows
	net := netmodel.DefaultConfig()
	res := Result{Mode: mode, Threads: threads}

	prog := w.Program()
	progMT := ir.CloneForEntry(prog, "filterPart")
	paramsFor := func(i int) map[string]exec.Value {
		lo := rows * int64(i) / int64(threads)
		hi := rows * int64(i+1) / int64(threads)
		return map[string]exec.Value{
			"start":   exec.IntV(lo),
			"end":     exec.IntV(hi),
			"outbase": exec.IntV(lo), // disjoint output slots
		}
	}

	ctxs := make([]threadCtx, threads)
	switch mode {
	case MiraPrivate:
		// Writable-shared threads share one runtime; the written vector
		// lives in a shared fully-associative section with conservative
		// configuration (§4.6); the scanned columns get a sequential
		// direct section with prefetch.
		compiled, r, err := miraSharedFilterRuntime(progMT, budget, net)
		if err != nil {
			return Result{}, err
		}
		if err := w.Init(r); err != nil {
			return Result{}, err
		}
		for i := range ctxs {
			ctxs[i] = threadCtx{prog: compiled, be: r, rt: r, params: paramsFor(i), reps: 1}
		}

	case FastSwapShared:
		fw := filterWorkload{Workload: w, prog: progMT}
		r, err := fastswap.New(fw, fastswap.Options{LocalBudget: budget, Net: net})
		if err != nil {
			return Result{}, err
		}
		r.SwapLock(&sim.Serializer{})
		for i := range ctxs {
			ctxs[i] = threadCtx{prog: progMT, be: r, rt: r, params: paramsFor(i), reps: 1}
		}

	case AIFMShared:
		fw := filterWorkload{Workload: w, prog: progMT}
		r, err := aifm.New(fw, aifm.Options{LocalBudget: budget, ChunkBytes: 4096, Net: net})
		if err != nil {
			return Result{}, err
		}
		for i := range ctxs {
			ctxs[i] = threadCtx{prog: progMT, be: r, params: paramsFor(i), reps: 1}
		}

	default:
		return Result{}, fmt.Errorf("mtrun: mode %q not supported for shared-write filter", mode)
	}

	var err error
	res.Time, res.PerThread, err = runInterleaved(ctxs)
	if err != nil {
		return Result{}, err
	}
	if r := ctxs[0].rt; r != nil {
		res.Messages = r.Link().Messages()
		res.BytesMoved = r.Link().BytesMoved()
	}
	return res, nil
}

// filterWorkload rebinds a dataframe workload to the filterPart entry.
type filterWorkload struct {
	*dataframe.Workload
	prog *ir.Program
}

// Program returns the filterPart-entry clone.
func (f filterWorkload) Program() *ir.Program { return f.prog }

// miraSharedFilterRuntime builds the §4.6 writable-shared configuration:
// payment+fare in a shared streaming section, the shared result vector in a
// fully-associative section (largest access granularity, no eviction
// hints), and applies codegen with prefetch on the scanned columns. Both
// sections are fully associative: with n threads interleaving, the column
// section carries 2n concurrent lockstep streams, and direct-mapped
// indexing would let aliasing streams conflict-evict each other's lines on
// every access — the §4.6 conservative rule (assume any other thread may
// touch the section) applies to the scanned columns too.
func miraSharedFilterRuntime(prog *ir.Program, budget int64, net netmodel.Config) (*ir.Program, *rt.Runtime, error) {
	seqBytes := budget / 4
	cfg := rt.Config{
		LocalBudget: budget,
		SwapPool:    budget / 8,
		Sections: []rt.SectionSpec{
			{Cache: cache.Config{Name: "cols", Structure: cache.FullAssoc, LineBytes: 2048, SizeBytes: seqBytes}},
			{Cache: cache.Config{Name: "shared-result", Structure: cache.FullAssoc, LineBytes: 64, SizeBytes: budget - seqBytes - budget/8}},
		},
		Placements: map[string]rt.Placement{
			"payment": {Kind: rt.PlaceSection, Section: 0},
			"fare":    {Kind: rt.PlaceSection, Section: 0},
			"result":  {Kind: rt.PlaceSection, Section: 1},
		},
		Net: net,
	}
	plan := &codegen.Plan{Objects: map[string]*codegen.ObjectPlan{
		"payment": {Object: "payment", Pattern: analysis.PatternSequential, PrefetchDistance: 512, LineElems: 256, Native: true},
		"fare":    {Object: "fare", Pattern: analysis.PatternSequential, PrefetchDistance: 512, LineElems: 256},
		// The result vector is write-only and filled front to back
		// within each thread's partition: allocate lines without
		// fetching (§4.5 read/write optimization). Partitions are
		// line-aligned, so no-fetch allocation cannot clobber a
		// neighbour's output.
		"result": {Object: "result", Pattern: analysis.PatternSequential, LineElems: 8, NoFetch: true},
	}}
	compiled, err := codegen.Apply(prog, plan)
	if err != nil {
		return nil, nil, err
	}
	node := farmem.NewNode(farmem.DefaultNodeConfig())
	r, err := rt.New(cfg, node)
	if err != nil {
		return nil, nil, err
	}
	if err := r.Bind(compiled); err != nil {
		return nil, nil, err
	}
	return compiled, r, nil
}

// Oracle verification for the partitioned filter.
func VerifySharedFilter(cfg dataframe.Config, threads int, d workload.ObjectDumper) error {
	cfg.FilterOnly = true
	w := dataframe.New(cfg)
	rows := w.Config().Rows
	// Recreate the per-partition expected outputs.
	payment, fare := referenceColumns(w)
	result, err := d.DumpObject("result")
	if err != nil {
		return err
	}
	for i := 0; i < threads; i++ {
		lo := rows * int64(i) / int64(threads)
		hi := rows * int64(i+1) / int64(threads)
		out := lo
		for r := lo; r < hi; r++ {
			if payment[r] == 1 {
				got := math.Float64frombits(binary.LittleEndian.Uint64(result[out*8:]))
				if got != fare[r] {
					return fmt.Errorf("mtrun: partition %d row %d: result %g, want %g", i, r, got, fare[r])
				}
				out++
			}
		}
	}
	return nil
}

// referenceColumns regenerates the input columns natively.
func referenceColumns(w *dataframe.Workload) (payment []int64, fare []float64) {
	return w.Columns()
}
