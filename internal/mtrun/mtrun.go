// Package mtrun drives the multithreaded experiments (§4.6, Figs. 24-25).
// Contention is modeled deterministically and fair-share: each of n
// simulated threads sees 1/n of the link bandwidth, and swap-based systems
// see kernel-lock-scaled fault-path costs. One caveat this model cannot
// reproduce: cross-thread *eviction interference* in shared sections (the
// gap between Mira and Mira-unopt in the paper's Fig. 24) — sequential
// simulation of read-only threads over shared data shows reinforcement, not
// interference, so the Mira-unopt curve here tracks Mira more closely than
// the paper's.
//
// Two drivers mirror the paper's two experiments:
//
//   - ReadOnlyScaling (Fig. 24): n threads each run a full read-only
//     workload instance (GPT-2 inference). Mira gives each thread private
//     cache sections (budget/n each); Mira-unopt shares one section set;
//     FastSwap shares the page pool behind the global fault lock. Since
//     only one symmetric thread is simulated, shared pools and shared
//     sections are modeled as their fair share, budget/n, per thread —
//     the reinforcement a thread would get from lines another thread
//     already fetched is not modeled, in the same way eviction
//     interference is not.
//   - SharedWriteFilter (Fig. 25): n threads filter disjoint row ranges of
//     one table into a shared result vector. Mira uses a shared
//     fully-associative section for the written vector (§4.6) and private
//     sequential sections for the scanned columns.
package mtrun

import (
	"encoding/binary"
	"fmt"
	"math"

	"mira/internal/analysis"
	"mira/internal/apps/dataframe"
	"mira/internal/baselines/aifm"
	"mira/internal/baselines/fastswap"
	"mira/internal/cache"
	"mira/internal/codegen"
	"mira/internal/exec"
	"mira/internal/farmem"
	"mira/internal/ir"
	"mira/internal/netmodel"
	"mira/internal/planner"
	"mira/internal/rt"
	"mira/internal/sim"
	"mira/internal/workload"
)

// Mode selects the multithreading strategy.
type Mode string

// The compared configurations.
const (
	// MiraPrivate gives each thread private sections (§4.6 read-only /
	// shared-nothing).
	MiraPrivate Mode = "mira"
	// MiraShared shares one section set across threads (the paper's
	// "Mira-unopt" reference in Fig. 24).
	MiraShared Mode = "mira-unopt"
	// FastSwapShared shares the swap pool behind the kernel fault lock.
	FastSwapShared Mode = "fastswap"
	// AIFMShared shares the AIFM object cache.
	AIFMShared Mode = "aifm"
)

// Result is one scaling point.
type Result struct {
	Mode    Mode
	Threads int
	// Time is the fork-join completion time.
	Time sim.Duration
	// PerThread are the individual completion times.
	PerThread []sim.Duration
}

// DefaultReps is the fixed total work of the read-only scaling experiment:
// the batch of independent inferences the threads divide among themselves.
const DefaultReps = 8

// fairShareNet divides the link bandwidth across n contending threads.
func fairShareNet(n int) netmodel.Config {
	net := netmodel.DefaultConfig()
	net.BytesPerSecond /= int64(n)
	if net.BytesPerSecond < 1 {
		net.BytesPerSecond = 1
	}
	return net
}

// faultContention scales the swap fault path for n threads contending on
// the kernel lock: under saturation each fault waits behind (n-1)/2 others
// on average.
func faultContention(n int) sim.Duration {
	return sim.Duration(4500 * (1 + float64(n-1)/2) * float64(sim.Nanosecond))
}

// ReadOnlyScaling divides DefaultReps independent executions of w across
// threads (Fig. 24). Contention is modeled fair-share deterministically:
// each thread sees 1/threads of the link bandwidth, and swap systems see
// kernel-lock-scaled fault costs. Threads are symmetric, so one thread's
// simulated time stands for all.
func ReadOnlyScaling(mode Mode, w workload.Workload, budget int64, threads int) (Result, error) {
	if threads < 1 {
		return Result{}, fmt.Errorf("mtrun: threads = %d", threads)
	}
	res := Result{Mode: mode, Threads: threads}
	reps := DefaultReps / threads
	if reps < 1 {
		reps = 1
	}
	net := fairShareNet(threads)

	runReps := func(prog *ir.Program, r *rt.Runtime) error {
		clk := sim.NewClock(0)
		for rep := 0; rep < reps; rep++ {
			ex, err := exec.New(prog, r, exec.Options{Params: w.Params()})
			if err != nil {
				return err
			}
			if _, err := ex.Run(clk); err != nil {
				return err
			}
		}
		res.PerThread = append(res.PerThread, clk.Now().Sub(0))
		return nil
	}

	switch mode {
	case MiraPrivate:
		// Private per-thread sections (§4.6): each thread plans and
		// owns budget/threads of local memory.
		plan, err := planner.Plan(w, planner.Options{
			LocalBudget:   budget / int64(threads),
			Net:           net,
			MaxIterations: 6,
		})
		if err != nil {
			return Result{}, err
		}
		node := farmem.NewNode(farmem.DefaultNodeConfig())
		r, err := rt.New(plan.Config, node)
		if err != nil {
			return Result{}, err
		}
		if err := r.Bind(plan.Program); err != nil {
			return Result{}, err
		}
		if err := w.Init(r); err != nil {
			return Result{}, err
		}
		if err := runReps(plan.Program, r); err != nil {
			return Result{}, err
		}

	case MiraShared:
		// One section set shared by all threads: §4.6's conservative
		// configuration — fully-associative, no eviction hints, no
		// native-load conversion (another thread may evict any line).
		// The simulated thread sees its fair share of the contended
		// sections: with n symmetric threads pressuring one section
		// set, each effectively owns budget/n of it (cross-thread
		// reinforcement of truly shared lines is not modeled — see the
		// package comment).
		plan, err := planner.Plan(w, planner.Options{
			LocalBudget:   budget / int64(threads),
			Net:           net,
			MaxIterations: 6,
			Techniques: planner.TechniqueMask{
				ForceStructure: int(cache.FullAssoc),
				NoEvictHints:   true,
				NoNative:       true,
			},
		})
		if err != nil {
			return Result{}, err
		}
		node := farmem.NewNode(farmem.DefaultNodeConfig())
		r, err := rt.New(plan.Config, node)
		if err != nil {
			return Result{}, err
		}
		if err := r.Bind(plan.Program); err != nil {
			return Result{}, err
		}
		if err := w.Init(r); err != nil {
			return Result{}, err
		}
		if err := runReps(plan.Program, r); err != nil {
			return Result{}, err
		}

	case FastSwapShared:
		// The shared page pool under n symmetric threads: each thread
		// effectively owns budget/n of it, and every major fault waits
		// behind the kernel lock.
		r, err := fastswap.New(w, fastswap.Options{
			LocalBudget:        budget / int64(threads),
			Net:                net,
			MajorFaultOverhead: faultContention(threads),
		})
		if err != nil {
			return Result{}, err
		}
		if err := runReps(w.Program(), r); err != nil {
			return Result{}, err
		}

	default:
		return Result{}, fmt.Errorf("mtrun: mode %q not supported for read-only scaling", mode)
	}
	res.Time = res.PerThread[0]
	return res, nil
}

// SharedWriteFilter partitions a dataframe filter across threads writing a
// shared result vector (Fig. 25).
func SharedWriteFilter(mode Mode, cfg dataframe.Config, budget int64, threads int) (Result, error) {
	if threads < 1 {
		return Result{}, fmt.Errorf("mtrun: threads = %d", threads)
	}
	cfg.FilterOnly = true
	w := dataframe.New(cfg)
	rows := w.Config().Rows
	net := fairShareNet(threads)
	res := Result{Mode: mode, Threads: threads}

	// Threads share one runtime; each simulated thread gets its own clock
	// starting at zero, so the shared link's queue and the async completion
	// horizon are reset between them (contention is already modeled by the
	// fair-share bandwidth, and cross-frame completion instants are
	// meaningless).
	var sharedBW *netmodel.Bandwidth
	var settle func()
	runThreads := func(run func(i int, clk *sim.Clock, params map[string]exec.Value) error) error {
		for i := 0; i < threads; i++ {
			if sharedBW != nil {
				sharedBW.ResetQueue()
			}
			if settle != nil {
				settle()
			}
			lo := rows * int64(i) / int64(threads)
			hi := rows * int64(i+1) / int64(threads)
			params := map[string]exec.Value{
				"start":   exec.IntV(lo),
				"end":     exec.IntV(hi),
				"outbase": exec.IntV(lo), // disjoint output slots
			}
			clk := sim.NewClock(0)
			if err := run(i, clk, params); err != nil {
				return err
			}
			res.PerThread = append(res.PerThread, clk.Now().Sub(0))
		}
		return nil
	}

	prog := w.Program()
	progMT := ir.CloneForEntry(prog, "filterPart")

	switch mode {
	case MiraPrivate:
		// Writable-shared threads share one runtime; the written
		// vector lives in a shared fully-associative section with
		// conservative configuration (§4.6); the scanned columns get
		// a sequential direct section with prefetch.
		compiled, r, err := miraSharedFilterRuntime(progMT, budget, net)
		if err != nil {
			return Result{}, err
		}
		sharedBW = r.Transport().BW
		settle = r.SettleAsync
		if err := w.Init(r); err != nil {
			return Result{}, err
		}
		if err := runThreads(func(i int, clk *sim.Clock, params map[string]exec.Value) error {
			ex, err := exec.New(compiled, r, exec.Options{Params: params})
			if err != nil {
				return err
			}
			_, err = ex.Run(clk)
			return err
		}); err != nil {
			return Result{}, err
		}

	case FastSwapShared:
		fw := filterWorkload{Workload: w, prog: progMT}
		r, err := fastswap.New(fw, fastswap.Options{
			LocalBudget:        budget,
			Net:                net,
			MajorFaultOverhead: faultContention(threads),
		})
		if err != nil {
			return Result{}, err
		}
		sharedBW = r.Transport().BW
		settle = r.SettleAsync
		if err := runThreads(func(i int, clk *sim.Clock, params map[string]exec.Value) error {
			ex, err := exec.New(progMT, r, exec.Options{Params: params})
			if err != nil {
				return err
			}
			_, err = ex.Run(clk)
			return err
		}); err != nil {
			return Result{}, err
		}

	case AIFMShared:
		fw := filterWorkload{Workload: w, prog: progMT}
		r, err := aifm.New(fw, aifm.Options{LocalBudget: budget, ChunkBytes: 4096, Net: net})
		if err != nil {
			return Result{}, err
		}
		if err := runThreads(func(i int, clk *sim.Clock, params map[string]exec.Value) error {
			ex, err := exec.New(progMT, r, exec.Options{Params: params})
			if err != nil {
				return err
			}
			_, err = ex.Run(clk)
			return err
		}); err != nil {
			return Result{}, err
		}

	default:
		return Result{}, fmt.Errorf("mtrun: mode %q not supported for shared-write filter", mode)
	}
	for _, t := range res.PerThread {
		if t > res.Time {
			res.Time = t
		}
	}
	return res, nil
}

// filterWorkload rebinds a dataframe workload to the filterPart entry.
type filterWorkload struct {
	*dataframe.Workload
	prog *ir.Program
}

// Program returns the filterPart-entry clone.
func (f filterWorkload) Program() *ir.Program { return f.prog }

// miraSharedFilterRuntime builds the §4.6 writable-shared configuration:
// payment+fare in sequential direct sections, the shared result vector in a
// fully-associative section (largest access granularity, no eviction
// hints), and applies codegen with prefetch on the scanned columns.
func miraSharedFilterRuntime(prog *ir.Program, budget int64, net netmodel.Config) (*ir.Program, *rt.Runtime, error) {
	seqBytes := budget / 4
	cfg := rt.Config{
		LocalBudget: budget,
		SwapPool:    budget / 8,
		Sections: []rt.SectionSpec{
			{Cache: cache.Config{Name: "cols", Structure: cache.Direct, LineBytes: 2048, SizeBytes: seqBytes}},
			{Cache: cache.Config{Name: "shared-result", Structure: cache.FullAssoc, LineBytes: 64, SizeBytes: budget - seqBytes - budget/8}},
		},
		Placements: map[string]rt.Placement{
			"payment": {Kind: rt.PlaceSection, Section: 0},
			"fare":    {Kind: rt.PlaceSection, Section: 0},
			"result":  {Kind: rt.PlaceSection, Section: 1},
		},
		Net: net,
	}
	plan := &codegen.Plan{Objects: map[string]*codegen.ObjectPlan{
		"payment": {Object: "payment", Pattern: analysis.PatternSequential, PrefetchDistance: 512, LineElems: 256, Native: true},
		"fare":    {Object: "fare", Pattern: analysis.PatternSequential, PrefetchDistance: 512, LineElems: 256},
		// The result vector is write-only and filled front to back
		// within each thread's partition: allocate lines without
		// fetching (§4.5 read/write optimization). Partitions are
		// line-aligned, so no-fetch allocation cannot clobber a
		// neighbour's output.
		"result": {Object: "result", Pattern: analysis.PatternSequential, LineElems: 8, NoFetch: true},
	}}
	compiled, err := codegen.Apply(prog, plan)
	if err != nil {
		return nil, nil, err
	}
	node := farmem.NewNode(farmem.DefaultNodeConfig())
	r, err := rt.New(cfg, node)
	if err != nil {
		return nil, nil, err
	}
	if err := r.Bind(compiled); err != nil {
		return nil, nil, err
	}
	return compiled, r, nil
}

// Oracle verification for the partitioned filter.
func VerifySharedFilter(cfg dataframe.Config, threads int, d workload.ObjectDumper) error {
	cfg.FilterOnly = true
	w := dataframe.New(cfg)
	rows := w.Config().Rows
	// Recreate the per-partition expected outputs.
	payment, fare := referenceColumns(w)
	result, err := d.DumpObject("result")
	if err != nil {
		return err
	}
	for i := 0; i < threads; i++ {
		lo := rows * int64(i) / int64(threads)
		hi := rows * int64(i+1) / int64(threads)
		out := lo
		for r := lo; r < hi; r++ {
			if payment[r] == 1 {
				got := math.Float64frombits(binary.LittleEndian.Uint64(result[out*8:]))
				if got != fare[r] {
					return fmt.Errorf("mtrun: partition %d row %d: result %g, want %g", i, r, got, fare[r])
				}
				out++
			}
		}
	}
	return nil
}

// referenceColumns regenerates the input columns natively.
func referenceColumns(w *dataframe.Workload) (payment []int64, fare []float64) {
	return w.Columns()
}
