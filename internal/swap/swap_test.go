package swap

import (
	"bytes"
	"testing"

	"mira/internal/farmem"
	"mira/internal/netmodel"
	"mira/internal/sim"
	"mira/internal/transport"
)

// testRegion allocates a far region of length bytes filled with a pattern
// and returns a transport plus the region base.
func testRegion(t *testing.T, length int64) (*transport.T, uint64) {
	t.Helper()
	node := farmem.NewNode(farmem.NodeConfig{Capacity: 1 << 24, CPUSlowdown: 1})
	tr := transport.New(node, netmodel.DefaultConfig())
	base, err := node.Alloc(uint64(length))
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, length)
	for i := range data {
		data[i] = byte(i * 7)
	}
	if err := node.Write(base, data); err != nil {
		t.Fatal(err)
	}
	return tr, base
}

func newCache(t *testing.T, poolPages int, length int64, pf Prefetcher) (*Cache, *sim.Clock) {
	t.Helper()
	tr, base := testRegion(t, length)
	c, err := New(DefaultConfig(int64(poolPages)*PageBytes), tr, base, length, pf)
	if err != nil {
		t.Fatal(err)
	}
	return c, sim.NewClock(0)
}

func TestNewValidation(t *testing.T) {
	tr, base := testRegion(t, PageBytes)
	if _, err := New(DefaultConfig(0), tr, base, PageBytes, nil); err == nil {
		t.Fatal("zero pool accepted")
	}
	if _, err := New(DefaultConfig(PageBytes), tr, base, 0, nil); err == nil {
		t.Fatal("zero-length region accepted")
	}
}

func TestReadFaultsAndReturnsData(t *testing.T) {
	c, clk := newCache(t, 4, 8*PageBytes, nil)
	buf := make([]byte, 16)
	if err := c.Read(clk, c.Base()+100, buf); err != nil {
		t.Fatal(err)
	}
	for i, b := range buf {
		if want := byte((100 + i) * 7); b != want {
			t.Fatalf("buf[%d] = %d, want %d", i, b, want)
		}
	}
	st := c.Stats()
	if st.MajorFaults != 1 {
		t.Fatalf("MajorFaults = %d, want 1", st.MajorFaults)
	}
	if clk.Now() == 0 {
		t.Fatal("fault charged no time")
	}
}

func TestSecondAccessIsHit(t *testing.T) {
	c, clk := newCache(t, 4, 8*PageBytes, nil)
	buf := make([]byte, 8)
	_ = c.Read(clk, c.Base(), buf)
	afterFault := clk.Now()
	_ = c.Read(clk, c.Base()+8, buf)
	if c.Stats().MajorFaults != 1 {
		t.Fatalf("second access faulted: %d major faults", c.Stats().MajorFaults)
	}
	hitCost := clk.Now().Sub(afterFault)
	faultCost := afterFault.Sub(0)
	if hitCost >= faultCost/10 {
		t.Fatalf("hit cost %v not far below fault cost %v", hitCost, faultCost)
	}
}

func TestWriteReadBack(t *testing.T) {
	c, clk := newCache(t, 4, 8*PageBytes, nil)
	want := []byte{1, 2, 3, 4, 5}
	if err := c.Write(clk, c.Base()+10, want); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 5)
	if err := c.Read(clk, c.Base()+10, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("read back %v, want %v", got, want)
	}
}

func TestPageCrossingAccess(t *testing.T) {
	c, clk := newCache(t, 4, 8*PageBytes, nil)
	src := make([]byte, 100)
	for i := range src {
		src[i] = byte(200 - i)
	}
	far := c.Base() + PageBytes - 50 // straddles pages 0 and 1
	if err := c.Write(clk, far, src); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 100)
	if err := c.Read(clk, far, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, src) {
		t.Fatal("page-crossing write/read mismatch")
	}
	if c.Stats().MajorFaults != 2 {
		t.Fatalf("MajorFaults = %d, want 2", c.Stats().MajorFaults)
	}
}

func TestEvictionWritebackPersists(t *testing.T) {
	c, clk := newCache(t, 1, 8*PageBytes, nil) // one-page pool
	want := []byte{9, 8, 7}
	if err := c.Write(clk, c.Base(), want); err != nil {
		t.Fatal(err)
	}
	// Touch another page; page 0 must be evicted and written back.
	buf := make([]byte, 1)
	if err := c.Read(clk, c.Base()+2*PageBytes, buf); err != nil {
		t.Fatal(err)
	}
	if c.Stats().Writebacks != 1 {
		t.Fatalf("Writebacks = %d, want 1", c.Stats().Writebacks)
	}
	// Re-read page 0: must come back with the written data.
	got := make([]byte, 3)
	if err := c.Read(clk, c.Base(), got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("after eviction round-trip got %v, want %v", got, want)
	}
}

func TestPoolNeverExceedsCapacity(t *testing.T) {
	c, clk := newCache(t, 3, 32*PageBytes, nil)
	buf := make([]byte, 1)
	for i := int64(0); i < 32; i++ {
		if err := c.Read(clk, c.Base()+uint64(i)*PageBytes, buf); err != nil {
			t.Fatal(err)
		}
		if c.Resident() > c.Capacity() {
			t.Fatalf("resident %d exceeds capacity %d", c.Resident(), c.Capacity())
		}
	}
}

func TestOutOfRegionAccess(t *testing.T) {
	c, clk := newCache(t, 2, 2*PageBytes, nil)
	if err := c.Read(clk, c.Base()+2*PageBytes, make([]byte, 1)); err == nil {
		t.Fatal("read past region succeeded")
	}
	if err := c.Read(clk, c.Base()-1, make([]byte, 1)); err == nil {
		t.Fatal("read below region succeeded")
	}
}

// seqPrefetch prefetches the next n pages after a fault.
type seqPrefetch struct{ n int64 }

func (p seqPrefetch) OnFault(page int64) []int64 {
	out := make([]int64, 0, p.n)
	for i := int64(1); i <= p.n; i++ {
		out = append(out, page+i)
	}
	return out
}
func (seqPrefetch) PerFaultOverhead() sim.Duration { return 0 }

func TestPrefetchTurnsMajorIntoMinorFaults(t *testing.T) {
	c, clk := newCache(t, 8, 16*PageBytes, seqPrefetch{n: 2})
	buf := make([]byte, 1)
	for i := int64(0); i < 8; i++ {
		if err := c.Read(clk, c.Base()+uint64(i)*PageBytes, buf); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.MajorFaults >= 8 {
		t.Fatalf("prefetching did not reduce major faults: %d", st.MajorFaults)
	}
	if st.MinorFaults == 0 {
		t.Fatal("no minor faults despite prefetching")
	}
	if st.PrefetchUsed == 0 {
		t.Fatal("no prefetched pages were used")
	}
}

func TestPrefetchFasterThanDemand(t *testing.T) {
	run := func(pf Prefetcher) sim.Duration {
		c, clk := newCache(t, 16, 64*PageBytes, pf)
		buf := make([]byte, 1)
		for i := int64(0); i < 64; i++ {
			if err := c.Read(clk, c.Base()+uint64(i)*PageBytes, buf); err != nil {
				t.Fatal(err)
			}
		}
		return clk.Now().Sub(0)
	}
	demand := run(nil)
	prefetched := run(seqPrefetch{n: 4})
	if prefetched >= demand {
		t.Fatalf("sequential prefetch (%v) not faster than demand paging (%v)", prefetched, demand)
	}
}

func TestPrefetchOutOfRangeIgnored(t *testing.T) {
	c, clk := newCache(t, 8, 2*PageBytes, seqPrefetch{n: 8})
	buf := make([]byte, 1)
	if err := c.Read(clk, c.Base()+PageBytes, buf); err != nil {
		t.Fatal(err)
	}
	// Prefetcher suggested pages 2..9 which do not exist; no error, no
	// fetch beyond the region.
	if got := c.Stats().PagesFetched; got != 1 {
		t.Fatalf("PagesFetched = %d, want 1", got)
	}
}

func TestFlushAllPersistsDirtyPages(t *testing.T) {
	c, clk := newCache(t, 4, 4*PageBytes, nil)
	want := []byte{42, 43}
	_ = c.Write(clk, c.Base()+PageBytes, want)
	if err := c.FlushAll(clk); err != nil {
		t.Fatal(err)
	}
	if c.Resident() != 0 {
		t.Fatalf("resident pages after flush: %d", c.Resident())
	}
	got := make([]byte, 2)
	if err := c.tr.(*transport.T).Node.Read(c.Base()+PageBytes, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("far memory has %v, want %v", got, want)
	}
}

func TestLRUKeepsHotPage(t *testing.T) {
	c, clk := newCache(t, 2, 16*PageBytes, nil)
	buf := make([]byte, 1)
	hot := c.Base()
	_ = c.Read(clk, hot, buf)
	_ = c.Read(clk, hot, buf) // promote to active
	for i := int64(1); i < 10; i++ {
		_ = c.Read(clk, c.Base()+uint64(i)*PageBytes, buf)
		_ = c.Read(clk, hot, buf)
	}
	st := c.Stats()
	// The hot page faulted once; every later access hit.
	if st.MajorFaults != 10 {
		t.Fatalf("MajorFaults = %d, want 10 (1 hot + 9 scan)", st.MajorFaults)
	}
}

func TestShortFinalPage(t *testing.T) {
	// Region not page-aligned: last page is short.
	c, clk := newCache(t, 2, PageBytes+100, nil)
	buf := make([]byte, 50)
	if err := c.Read(clk, c.Base()+PageBytes+25, buf); err != nil {
		t.Fatal(err)
	}
	if err := c.Read(clk, c.Base()+PageBytes+60, make([]byte, 100)); err == nil {
		t.Fatal("read past short final page succeeded")
	}
}

func TestResetStats(t *testing.T) {
	c, clk := newCache(t, 2, 2*PageBytes, nil)
	_ = c.Read(clk, c.Base(), make([]byte, 1))
	c.ResetStats()
	if c.Stats() != (Stats{}) {
		t.Fatal("stats not reset")
	}
}
