package swap

import (
	"bytes"
	"fmt"
	"testing"

	"mira/internal/codec"
	"mira/internal/farmem"
	"mira/internal/netmodel"
	"mira/internal/plane/planetest"
	"mira/internal/sim"
	"mira/internal/transport"
)

// unalignedRig builds a node + transport + cache over a region of exactly
// length bytes (not necessarily page-aligned), keeping the node handle so
// tests can inspect the raw far image.
type unalignedRig struct {
	node *farmem.Node
	tr   *transport.T
	c    *Cache
	clk  *sim.Clock
}

func newUnalignedRig(t *testing.T, poolPages int, length int64, pf Prefetcher, batch bool) *unalignedRig {
	t.Helper()
	node := farmem.NewNode(farmem.NodeConfig{Capacity: 1 << 24, CPUSlowdown: 1})
	tr := transport.New(node, netmodel.DefaultConfig())
	base, err := node.Alloc(uint64(length))
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, length)
	for i := range data {
		data[i] = byte(i * 7)
	}
	if err := node.Write(base, data); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(int64(poolPages) * PageBytes)
	cfg.BatchPrefetch = batch
	c, err := New(cfg, tr, base, length, pf)
	if err != nil {
		t.Fatal(err)
	}
	return &unalignedRig{node: node, tr: tr, c: c, clk: sim.NewClock(0)}
}

// TestUnalignedRegionLengths is the tail-page audit: regions whose length is
// not a page multiple must read, batch-prefetch, write back, and charge the
// wire using the short tail size, never a full-page size.
func TestUnalignedRegionLengths(t *testing.T) {
	lengths := []int64{
		PageBytes,          // aligned control
		PageBytes + 1,      // one-byte tail
		2*PageBytes - 1,    // tail one byte short of full
		3*PageBytes + 1234, // mid-size tail
		5000,               // sub-two-pages
	}
	for _, length := range lengths {
		t.Run(fmt.Sprintf("len%d", length), func(t *testing.T) {
			rig := newUnalignedRig(t, 64, length, seqPrefetch{n: 3}, true)
			c, clk := rig.c, rig.clk

			// Cold sequential read of the whole region (demand faults plus
			// batched gather prefetch, tail page included).
			buf := make([]byte, length)
			if err := c.Read(clk, c.Base(), buf); err != nil {
				t.Fatal(err)
			}
			for i := range buf {
				if buf[i] != byte(i*7) {
					t.Fatalf("byte %d: got %#x want %#x", i, buf[i], byte(i*7))
				}
			}
			// Every page was pulled exactly once (the pool is larger than
			// the region), so the wire carried exactly the region's bytes:
			// a full-page charge for the short tail would overcount.
			if moved := rig.tr.BytesMoved(); moved != length {
				t.Fatalf("cold read moved %d wire bytes, want exactly %d", moved, length)
			}

			// Dirty the region's last bytes and flush: the write-back must
			// persist and charge each overlapped page at its true size —
			// the tail page at its short size, not a full page.
			dirty := make([]byte, 100)
			if int64(len(dirty)) > length {
				dirty = dirty[:length]
			}
			for i := range dirty {
				dirty[i] = byte(0xA0 + i)
			}
			wbStart := rig.tr.BytesMoved()
			addr := c.Base() + uint64(length) - uint64(len(dirty))
			if err := c.Write(clk, addr, dirty); err != nil {
				t.Fatal(err)
			}
			if err := c.FlushAll(clk); err != nil {
				t.Fatal(err)
			}
			got := make([]byte, len(dirty))
			if err := rig.node.Read(addr, got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, dirty) {
				t.Fatalf("tail write-back did not persist: got %x want %x", got, dirty)
			}
			firstDirty := (length - int64(len(dirty))) / PageBytes
			var wantWb int64
			for no := firstDirty; no*PageBytes < length; no++ {
				sz := length - no*PageBytes
				if sz > PageBytes {
					sz = PageBytes
				}
				wantWb += sz
			}
			if moved := rig.tr.BytesMoved() - wbStart; moved != wantWb {
				t.Fatalf("tail write-back moved %d wire bytes, want %d", moved, wantWb)
			}
		})
	}
}

// TestUnalignedWireCodecCharging checks the codec interaction: with a wire
// codec installed, encoded bytes plus bytes saved must equal the raw region
// size — a tail page charged at full page size would break the identity.
func TestUnalignedWireCodecCharging(t *testing.T) {
	length := int64(3*PageBytes + 777)
	rig := newUnalignedRig(t, 64, length, seqPrefetch{n: 3}, true)
	rig.tr.SetWireCodec(codec.ByteRun)
	buf := make([]byte, length)
	if err := rig.c.Read(rig.clk, rig.c.Base(), buf); err != nil {
		t.Fatal(err)
	}
	moved, saved := rig.tr.BytesMoved(), rig.tr.Stats().WireSaved
	if moved+saved != length {
		t.Fatalf("codec charging: moved %d + saved %d != raw %d", moved, saved, length)
	}
}

// TestFaultsInRangeClamping pins the interval-intersection semantics: the
// query range is clipped to the region, and empty or disjoint queries report
// zero instead of aliasing a neighbor page's counts (or, for length 0, an
// address underflow).
func TestFaultsInRangeClamping(t *testing.T) {
	length := int64(2*PageBytes + 100) // 3 pages, short tail
	rig := newUnalignedRig(t, 64, length, nil, false)
	c, clk := rig.c, rig.clk
	// Fault each page once.
	buf := make([]byte, 1)
	for _, off := range []uint64{0, PageBytes, 2 * PageBytes} {
		if err := c.Read(clk, c.Base()+off, buf); err != nil {
			t.Fatal(err)
		}
	}
	base, end := c.Base(), c.Base()+uint64(length)
	cases := []struct {
		name   string
		far    uint64
		length int64
		want   int64
	}{
		{"whole region", base, length, 3},
		{"first page only", base, PageBytes, 1},
		{"tail page only", base + 2*PageBytes, 100, 1},
		{"overhanging end", base + 2*PageBytes, 10 * PageBytes, 1},
		{"starts below base", base - PageBytes, PageBytes + 10, 1},
		{"entirely below base", base - 2*PageBytes, PageBytes, 0},
		{"entirely past end", end + PageBytes, PageBytes, 0},
		{"zero length", base, 0, 0},
		{"negative length", base, -5, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := c.FaultsInRange(tc.far, tc.length); got != tc.want {
				t.Fatalf("FaultsInRange(%#x, %d) = %d, want %d", tc.far, tc.length, got, tc.want)
			}
		})
	}
}

// TestSwapPlaneConformance runs the shared DataPlane suite over the bare
// paged plane, with a deliberately unaligned region so the tail-unit
// behaviors are exercised.
func TestSwapPlaneConformance(t *testing.T) {
	planetest.Run(t, "swap", func(t *testing.T) *planetest.Harness {
		length := int64(6*PageBytes + 1234)
		rig := newUnalignedRig(t, 16, length, nil, true)
		return &planetest.Harness{
			P:       Plane{C: rig.c},
			Base:    rig.c.Base(),
			Length:  length,
			FarRead: rig.node.Read,
		}
	})
}
