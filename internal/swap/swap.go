// Package swap implements the page-granular swap cache (§5.3 "swap-based
// cache section"): a 4 KB-page local pool over far memory with demand
// faults, an approximate global LRU (active/inactive lists, as in Linux and
// the paper), asynchronous dirty write-back, and a pluggable prefetcher
// hook.
//
// Three systems share this substrate: Mira's generic swap section (the
// initial iteration and the fallback for pre-compiled library code), the
// FastSwap baseline (readahead prefetcher, fast fault path), and the Leap
// baseline (majority-trend prefetcher, slightly costlier fault path).
package swap

import (
	"container/list"
	"errors"
	"fmt"
	"sort"

	"mira/internal/netmodel"
	"mira/internal/sim"
	"mira/internal/trace"
	"mira/internal/transport"
)

// PageBytes is the swap granularity, matching the OS page size (§5.3).
const PageBytes = 4096

// Prefetcher decides which pages to pull in around a demand fault.
// Implementations must be deterministic.
type Prefetcher interface {
	// OnFault observes a demand fault on page and returns page numbers
	// to prefetch (may be empty). Pages already resident or in flight
	// are skipped by the cache.
	OnFault(page int64) []int64
	// PerFaultOverhead is the extra fault-path cost this prefetcher adds
	// (e.g. Leap's trend detection).
	PerFaultOverhead() sim.Duration
}

// IssueDelayer is an optional Prefetcher refinement for policies whose
// bookkeeping runs on a runner thread instead of inside the fault handler
// (the prefetcher zoo's PageAdapter): PerFaultOverhead is zero — nothing
// stalls the fault — and IssueDelay is added to the advisory fetch's issue
// time instead. In-kernel prefetchers like the Leap baseline do their
// trend detection in the fault handler and keep the PerFaultOverhead
// charge.
type IssueDelayer interface {
	IssueDelay() sim.Duration
}

// TouchPrefetcher is an optional Prefetcher extension for runahead
// streams: OnPrefetchedTouch observes the first touch of a prefetched page
// (the minor fault) and returns more pages to keep the stream's in-flight
// window full without waiting for the next major fault. Reactive
// prefetchers need not implement it.
type TouchPrefetcher interface {
	Prefetcher
	OnPrefetchedTouch(page int64) []int64
}

// NoPrefetch is the zero prefetcher.
type NoPrefetch struct{}

// OnFault returns no prefetch candidates.
func (NoPrefetch) OnFault(int64) []int64 { return nil }

// PerFaultOverhead is zero for the no-op prefetcher.
func (NoPrefetch) PerFaultOverhead() sim.Duration { return 0 }

// Config parameterizes a swap cache.
type Config struct {
	// PoolBytes is the local page-pool budget; the page count is
	// PoolBytes/PageBytes, minimum 1.
	PoolBytes int64
	// MajorFaultOverhead is the CPU cost of the fault path (userfaultfd
	// event, mapping setup) excluding the network fetch.
	MajorFaultOverhead sim.Duration
	// MinorFaultOverhead is the cost of mapping an already-prefetched
	// page on first touch.
	MinorFaultOverhead sim.Duration
	// HitOverhead is the per-access software overhead once a page is
	// mapped. For a true swap system this is zero (the MMU resolves
	// accesses natively); Mira's user-space swap charges nothing either,
	// matching the paper's "native memory access intact" profiling note.
	HitOverhead sim.Duration
	// BatchPrefetch issues each fault's prefetch candidates as one
	// doorbell-batched gather instead of one read per page: the round trip
	// and per-message overhead are paid once for the whole batch, and each
	// page becomes usable as its bytes arrive in the reply stream.
	BatchPrefetch bool
	// Net is the interconnect model used to stagger per-page readiness
	// inside a batched gather; zero value disables staggering (every page
	// in a batch becomes ready at chain completion).
	Net netmodel.Config
}

// DefaultConfig returns a FastSwap-calibrated fault path.
func DefaultConfig(poolBytes int64) Config {
	return Config{
		PoolBytes:          poolBytes,
		MajorFaultOverhead: 4500 * sim.Nanosecond,
		MinorFaultOverhead: 1000 * sim.Nanosecond,
	}
}

// Stats counts swap events.
type Stats struct {
	Accesses     int64
	MajorFaults  int64
	MinorFaults  int64
	PagesFetched int64 // demand + prefetch
	Prefetches   int64
	PrefetchUsed int64 // prefetched pages that were touched before eviction
	// PrefetchUseless counts prefetched pages evicted before any touch;
	// PrefetchDropped counts prefetcher proposals the cache could not honor
	// (out of range, or the advisory fetch failed under faults);
	// PrefetchLate counts used prefetches whose bytes were still in flight
	// at first touch (the minor fault stalled on the fetch tail).
	PrefetchUseless int64
	PrefetchDropped int64
	PrefetchLate    int64
	Evictions       int64
	Writebacks      int64
}

type page struct {
	no       int64
	data     []byte
	dirty    bool
	prefetch bool     // arrived via prefetch and not yet touched
	readyAt  sim.Time // when its fetch completes
	inActive bool
	resident bool
}

// Cache is a swap cache over one contiguous far-memory region.
type Cache struct {
	cfg      Config
	tr       transport.Link
	base     uint64 // far address of page 0
	length   int64  // region bytes
	capacity int    // max resident pages
	pages    map[int64]*list.Element
	active   *list.List
	inactive *list.List
	pf       Prefetcher
	stats    Stats
	// faultsByPage records major-fault counts per page (per-object miss
	// attribution for the evaluation's Fig. 8).
	faultsByPage map[int64]int64
	// pinned protects the in-flight demand page from being evicted by
	// the prefetches issued on the same fault.
	pinned *page
	// lock, when set, serializes the fault path across simulated
	// threads (the kernel swap lock).
	lock *sim.Serializer
	// lastWb is when the most recently issued asynchronous write-back
	// lands; Fence waits for it.
	lastWb sim.Time

	// Tracing (all nil when disabled — every use is nil-safe).
	trc                 *trace.Buffer
	cMajor, cMinor      *trace.Counter
	cPrefetch, cEvict   *trace.Counter
	cPfUseful, cPfWaste *trace.Counter
	cPfDropped          *trace.Counter
	hFaultLat           *trace.Histogram
}

// New builds a swap cache covering [base, base+length) of far memory.
func New(cfg Config, tr transport.Link, base uint64, length int64, pf Prefetcher) (*Cache, error) {
	if cfg.PoolBytes <= 0 {
		return nil, fmt.Errorf("swap: PoolBytes must be positive, got %d", cfg.PoolBytes)
	}
	if length <= 0 {
		return nil, fmt.Errorf("swap: region length must be positive, got %d", length)
	}
	if pf == nil {
		pf = NoPrefetch{}
	}
	capacity := int(cfg.PoolBytes / PageBytes)
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{
		cfg:      cfg,
		tr:       tr,
		base:     base,
		length:   length,
		capacity: capacity,
		pages:    make(map[int64]*list.Element, capacity),
		active:   list.New(),
		inactive: list.New(),
		pf:       pf,
	}, nil
}

// npages reports the number of pages covering the region.
func (c *Cache) npages() int64 { return (c.length + PageBytes - 1) / PageBytes }

// pageOf maps a far address to its page number.
func (c *Cache) pageOf(far uint64) (int64, error) {
	if far < c.base || far >= c.base+uint64(c.length) {
		return 0, fmt.Errorf("swap: address %#x outside region [%#x,+%d)", far, c.base, c.length)
	}
	return int64((far - c.base) / PageBytes), nil
}

// pageSize returns the byte count of page no (the last page may be short).
func (c *Cache) pageSize(no int64) int {
	sz := c.length - no*PageBytes
	if sz > PageBytes {
		sz = PageBytes
	}
	return int(sz)
}

// Read copies len(dst) bytes at far into dst, faulting pages as needed and
// advancing clk by the access cost.
func (c *Cache) Read(clk *sim.Clock, far uint64, dst []byte) error {
	return c.access(clk, far, dst, false)
}

// Write copies src to far (through the page cache; pages become dirty).
func (c *Cache) Write(clk *sim.Clock, far uint64, src []byte) error {
	return c.access(clk, far, src, true)
}

// access walks the affected pages, faulting and copying.
func (c *Cache) access(clk *sim.Clock, far uint64, buf []byte, isWrite bool) error {
	c.stats.Accesses++
	off := 0
	for off < len(buf) {
		no, err := c.pageOf(far + uint64(off))
		if err != nil {
			return err
		}
		pageOff := int((far + uint64(off) - c.base) % PageBytes)
		fullWrite := isWrite && pageOff == 0 && len(buf)-off >= c.pageSize(no)
		p, err := c.touch(clk, no, fullWrite)
		if err != nil {
			return err
		}
		n := len(p.data) - pageOff
		if n > len(buf)-off {
			n = len(buf) - off
		}
		if n <= 0 {
			return fmt.Errorf("swap: access [%#x,+%d) overruns region", far, len(buf))
		}
		if isWrite {
			copy(p.data[pageOff:], buf[off:off+n])
			p.dirty = true
		} else {
			copy(buf[off:off+n], p.data[pageOff:])
		}
		clk.Advance(c.cfg.HitOverhead)
		off += n
	}
	return nil
}

// touch ensures page no is resident and mapped, charging fault costs.
// fullWrite marks an access that will overwrite the whole page.
func (c *Cache) touch(clk *sim.Clock, no int64, fullWrite bool) (*page, error) {
	if el, ok := c.pages[no]; ok {
		p := el.Value.(*page)
		if p.prefetch {
			// First touch of a prefetched page: minor fault. Wait
			// for the in-flight fetch if it has not landed yet.
			c.stats.MinorFaults++
			c.cMinor.Inc()
			c.stats.PrefetchUsed++
			c.cPfUseful.Inc()
			if p.readyAt > clk.Now() {
				c.stats.PrefetchLate++
			}
			clk.AdvanceTo(p.readyAt)
			clk.Advance(c.cfg.MinorFaultOverhead)
			p.prefetch = false
			// Stream-maintaining prefetchers top their window back up on
			// the touch instead of waiting for the next major fault.
			if tp, ok := c.pf.(TouchPrefetcher); ok {
				if err := c.issueAdvisory(clk, p, tp.OnPrefetchedTouch(no)); err != nil {
					return nil, err
				}
			}
		}
		c.promote(el)
		return p, nil
	}
	// Major fault.
	c.stats.MajorFaults++
	c.cMajor.Inc()
	faultStart := clk.Now()
	if c.faultsByPage == nil {
		c.faultsByPage = make(map[int64]int64)
	}
	c.faultsByPage[no]++
	if c.lock != nil {
		clk.AdvanceTo(c.lock.Acquire(clk.Now(), c.cfg.MajorFaultOverhead))
	}
	clk.Advance(c.cfg.MajorFaultOverhead)
	clk.Advance(c.pf.PerFaultOverhead())
	// Degraded mode: a store that overwrites the whole page while the
	// circuit breaker is open allocates the page locally instead of
	// stalling on a fetch that cannot succeed.
	noFetch := fullWrite && c.tr.BreakerOpen(clk.Now())
	p, err := c.fetch(clk.Now(), no, false, noFetch)
	if err != nil {
		return nil, err
	}
	clk.AdvanceTo(p.readyAt)
	if c.trc != nil {
		c.trc.Span(faultStart, clk.Now(), "swap", "fault.major", trace.I("page", no))
		c.hFaultLat.Observe(int64(clk.Now().Sub(faultStart)))
	}
	if noFetch {
		return p, nil // the far node is unreachable; skip prefetch too
	}

	// Consult the prefetcher after servicing the demand page so its
	// traffic queues behind the demand fetch.
	if err := c.issueAdvisory(clk, p, c.pf.OnFault(no)); err != nil {
		return nil, err
	}
	return p, nil
}

// issueAdvisory filters prefetcher proposals and issues the survivors
// (batched when configured). The demand page p is pinned throughout:
// prefetch-triggered evictions must not invalidate the page about to be
// handed to the caller.
//
// A prefetcher that implements IssueDelayer runs its bookkeeping on the
// runner thread, off the fault path: the delay is charged by issuing the
// advisory fetch later — slower predictors land their prefetches later
// (and count Late more often) — never by stalling the demand access.
func (c *Cache) issueAdvisory(clk *sim.Clock, p *page, proposals []int64) error {
	c.pinned = p
	var cands []int64
	for _, pno := range proposals {
		if pno < 0 || pno >= c.npages() {
			c.stats.PrefetchDropped++
			c.cPfDropped.Inc()
			continue
		}
		if _, ok := c.pages[pno]; ok {
			continue
		}
		cands = append(cands, pno)
	}
	var err error
	at := clk.Now()
	if d, ok := c.pf.(IssueDelayer); ok {
		at = at.Add(d.IssueDelay())
	}
	if c.cfg.BatchPrefetch && len(cands) >= 2 {
		err = c.prefetchBatch(at, cands)
	} else {
		err = c.prefetchEach(at, cands)
	}
	c.pinned = nil
	return err
}

// prefetchEach issues one read per candidate page (the unbatched path).
func (c *Cache) prefetchEach(now sim.Time, cands []int64) error {
	for i, pno := range cands {
		if _, ok := c.pages[pno]; ok {
			continue
		}
		if _, err := c.fetch(now, pno, true, false); err != nil {
			if err == errNoEvictable {
				c.dropCands(len(cands) - i)
				return nil // pool too small to prefetch into
			}
			if errors.Is(err, transport.ErrFarUnavailable) || transport.IsTransient(err) {
				c.dropCands(len(cands) - i)
				return nil // prefetch is advisory: give up under faults
			}
			return err
		}
		c.stats.Prefetches++
		c.cPrefetch.Inc()
	}
	return nil
}

// dropCands charges n prefetcher proposals that were abandoned before any
// data landed (advisory fetch failed, or no evictable slot).
func (c *Cache) dropCands(n int) {
	c.stats.PrefetchDropped += int64(n)
	c.cPfDropped.Add(int64(n))
}

// prefetchBatch brings every candidate page in with one doorbell-batched
// gather. Page i becomes usable once its bytes have streamed in — chain
// completion minus the wire time of the pages behind it in the reply.
func (c *Cache) prefetchBatch(now sim.Time, cands []int64) error {
	var ps []*page
	var addrs []uint64
	var sizes []int
	for _, pno := range cands {
		if _, ok := c.pages[pno]; ok {
			continue
		}
		if len(c.pages) >= c.capacity {
			if err := c.evictOne(now); err != nil {
				if err == errNoEvictable {
					break // pool too small; gather what we have
				}
				c.dropPages(ps)
				return err
			}
		}
		p := &page{no: pno, data: make([]byte, c.pageSize(pno)), prefetch: true, resident: true}
		c.pages[pno] = c.inactive.PushFront(p)
		ps = append(ps, p)
		addrs = append(addrs, c.base+uint64(pno)*PageBytes)
		sizes = append(sizes, len(p.data))
	}
	if len(ps) == 0 {
		return nil
	}
	data, done, err := c.tr.GatherOneSided(now, addrs, sizes)
	if err != nil {
		// Prefetch is advisory: the placeholder pages hold no data yet, so
		// they must not stay resident looking like valid prefetches.
		c.dropPages(ps)
		c.dropCands(len(ps))
		if errors.Is(err, transport.ErrFarUnavailable) || transport.IsTransient(err) {
			return nil
		}
		return err
	}
	suffix := 0
	readies := make([]sim.Time, len(ps))
	for i := len(ps) - 1; i >= 0; i-- {
		readies[i] = done
		if c.cfg.Net.BytesPerSecond > 0 {
			readies[i] = done.Add(-c.cfg.Net.WireTime(suffix))
		}
		suffix += sizes[i]
	}
	off := 0
	for i, p := range ps {
		copy(p.data, data[off:off+sizes[i]])
		off += sizes[i]
		p.readyAt = readies[i]
	}
	c.stats.Prefetches += int64(len(ps))
	c.cPrefetch.Add(int64(len(ps)))
	c.stats.PagesFetched += int64(len(ps))
	if c.trc != nil {
		c.trc.Span(now, done, "swap", "prefetch.batch", trace.I("pages", int64(len(ps))))
	}
	return nil
}

// dropPages removes batch placeholder pages that never received data. Pages
// already evicted by a later allocation in the same batch are skipped.
func (c *Cache) dropPages(ps []*page) {
	for _, p := range ps {
		el, ok := c.pages[p.no]
		if !ok || el.Value.(*page) != p {
			continue
		}
		if p.inActive {
			c.active.Remove(el)
		} else {
			c.inactive.Remove(el)
		}
		delete(c.pages, p.no)
		p.resident = false
	}
}

// fetch brings page no into the pool (evicting as needed) and returns it.
// Prefetch fetches do not block the caller; readyAt records completion.
// noFetch allocates the page locally without touching the network (degraded
// full-page write-allocate).
func (c *Cache) fetch(now sim.Time, no int64, isPrefetch, noFetch bool) (*page, error) {
	if len(c.pages) >= c.capacity {
		if err := c.evictOne(now); err != nil {
			return nil, err
		}
	}
	sz := c.pageSize(no)
	p := &page{no: no, data: make([]byte, sz), prefetch: isPrefetch, resident: true}
	if noFetch {
		p.readyAt = now
	} else {
		done, err := c.tr.ReadOneSided(now, c.base+uint64(no)*PageBytes, p.data)
		if err != nil {
			return nil, err
		}
		p.readyAt = done
		c.stats.PagesFetched++
	}
	c.pages[no] = c.inactive.PushFront(p)
	return p, nil
}

// promote implements the two-list LRU: touched inactive pages move to the
// active list; active pages move to its front. As in Linux, the active list
// is bounded to half the pool — otherwise streamed-once pages clog it and
// evictions cannibalize prefetched pages before their first touch.
func (c *Cache) promote(el *list.Element) {
	p := el.Value.(*page)
	if p.inActive {
		c.active.MoveToFront(el)
		return
	}
	c.inactive.Remove(el)
	p.inActive = true
	c.pages[p.no] = c.active.PushFront(p)
	for c.active.Len() > c.capacity/2 {
		tail := c.active.Back()
		tp := tail.Value.(*page)
		c.active.Remove(tail)
		tp.inActive = false
		c.pages[tp.no] = c.inactive.PushBack(tp)
	}
}

// errNoEvictable reports that every page in the pool is pinned — only
// possible when a prefetch races the demand page in a tiny pool.
var errNoEvictable = fmt.Errorf("swap: no evictable page")

// evictOne drops the approximate-LRU page, writing it back asynchronously
// if dirty (write-back consumes link bandwidth but does not block).
func (c *Cache) evictOne(now sim.Time) error {
	if c.inactive.Len() == 0 {
		if tail := c.active.Back(); tail != nil {
			p := tail.Value.(*page)
			c.active.Remove(tail)
			p.inActive = false
			c.pages[p.no] = c.inactive.PushBack(p)
		}
	}
	el := c.inactive.Back()
	for el != nil && el.Value.(*page) == c.pinned {
		el = el.Prev()
	}
	if el == nil {
		el = c.active.Back()
		for el != nil && el.Value.(*page) == c.pinned {
			el = el.Prev()
		}
	}
	if el == nil {
		return errNoEvictable
	}
	p := el.Value.(*page)
	if p.inActive {
		c.active.Remove(el)
	} else {
		c.inactive.Remove(el)
	}
	delete(c.pages, p.no)
	p.resident = false
	c.stats.Evictions++
	c.cEvict.Inc()
	if p.prefetch {
		// Fetched speculatively, evicted before any touch: wasted pull.
		c.stats.PrefetchUseless++
		c.cPfWaste.Inc()
	}
	if p.dirty {
		c.stats.Writebacks++
		done, err := c.tr.WriteOneSided(now, c.base+uint64(p.no)*PageBytes, p.data)
		if err != nil {
			return err
		}
		if done > c.lastWb {
			c.lastWb = done
		}
	}
	return nil
}

// FlushAll writes every dirty resident page back and drops all pages,
// blocking clk until the last write-back lands. Used at program end and
// before offloaded calls.
func (c *Cache) FlushAll(clk *sim.Clock) error {
	// Write back in page order: map iteration order would make write-back
	// queueing on the shared link — and so final sim times — run-dependent.
	nos := make([]int64, 0, len(c.pages))
	for no := range c.pages {
		nos = append(nos, no)
	}
	sort.Slice(nos, func(i, j int) bool { return nos[i] < nos[j] })
	var last sim.Time
	for _, no := range nos {
		p := c.pages[no].Value.(*page)
		if p.dirty {
			done, err := c.tr.WriteOneSided(clk.Now(), c.base+uint64(no)*PageBytes, p.data)
			if err != nil {
				return err
			}
			c.stats.Writebacks++
			if done > last {
				last = done
			}
		}
	}
	c.pages = make(map[int64]*list.Element, c.capacity)
	c.active.Init()
	c.inactive.Init()
	if last > c.lastWb {
		c.lastWb = last
	}
	clk.AdvanceTo(last)
	return nil
}

// FaultsInRange reports major faults on pages overlapping [far, far+length).
// The query range is intersected with the region: an empty or disjoint range
// reports zero faults (it must not alias neighboring pages' counts).
func (c *Cache) FaultsInRange(far uint64, length int64) int64 {
	if length <= 0 {
		return 0
	}
	lo, hi := far, far+uint64(length)
	regEnd := c.base + uint64(c.length)
	if lo < c.base {
		lo = c.base
	}
	if hi > regEnd {
		hi = regEnd
	}
	if lo >= hi {
		return 0
	}
	first := int64((lo - c.base) / PageBytes)
	last := int64((hi - 1 - c.base) / PageBytes)
	var total int64
	for p := first; p <= last; p++ {
		total += c.faultsByPage[p]
	}
	return total
}

// SettleAsync marks every in-flight page fetch complete (simulated-thread
// boundaries; see rt.SettleAsync).
func (c *Cache) SettleAsync() {
	for _, el := range c.pages {
		el.Value.(*page).readyAt = 0
	}
}

// SetTrace attaches the deterministic tracing layer: fault/prefetch/evict
// counters, a fault-latency histogram, and span events on the major-fault
// and batched-prefetch paths. A nil tracer leaves tracing disabled.
func (c *Cache) SetTrace(tr *trace.Tracer) {
	if tr == nil {
		return
	}
	reg := tr.Registry()
	c.trc = tr.Buffer("swap")
	c.cMajor = reg.Counter("swap.fault.major")
	c.cMinor = reg.Counter("swap.fault.minor")
	c.cPrefetch = reg.Counter("swap.prefetch")
	c.cPfUseful = reg.Counter("swap.prefetch.useful")
	c.cPfWaste = reg.Counter("swap.prefetch.useless")
	c.cPfDropped = reg.Counter("swap.prefetch.dropped")
	c.cEvict = reg.Counter("swap.evict")
	c.hFaultLat = reg.Histogram("swap.fault.latency_ns")
}

// SetLock installs a global fault-path serializer shared across simulated
// threads (multithreaded swap baselines).
func (c *Cache) SetLock(l *sim.Serializer) { c.lock = l }

// SetPrefetcher swaps in a page prefetcher (baselines install theirs after
// the cache exists; Mira's planner installs pointer-following prefetch for
// swap-placed indirect objects).
func (c *Cache) SetPrefetcher(pf Prefetcher) {
	if pf == nil {
		pf = NoPrefetch{}
	}
	c.pf = pf
}

// Resident reports the number of resident pages.
func (c *Cache) Resident() int { return len(c.pages) }

// Capacity reports the pool capacity in pages.
func (c *Cache) Capacity() int { return c.capacity }

// Stats returns a copy of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the counters.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// Base reports the far address of the region's first byte.
func (c *Cache) Base() uint64 { return c.base }
