package swap

import (
	"sort"

	"mira/internal/plane"
	"mira/internal/sim"
	"mira/internal/trace"
)

// Length reports the region byte count the cache serves.
func (c *Cache) Length() int64 { return c.length }

// Fence blocks clk until every in-flight prefetched page and asynchronous
// eviction write-back has landed.
func (c *Cache) Fence(clk *sim.Clock) {
	latest := c.lastWb
	for _, el := range c.pages {
		if p := el.Value.(*page); p.readyAt > latest {
			latest = p.readyAt
		}
	}
	clk.AdvanceTo(latest)
}

// FlushRange writes back and drops every resident page overlapping
// [far, far+length), blocking clk until the last write-back lands. The
// plane-migration protocol uses it to hand one object's pages over to the
// line plane (and to shed clean stray readahead before handing back).
func (c *Cache) FlushRange(clk *sim.Clock, far uint64, length int64) error {
	if length <= 0 || len(c.pages) == 0 {
		return nil
	}
	lo, hi := far, far+uint64(length)
	regEnd := c.base + uint64(c.length)
	if lo < c.base {
		lo = c.base
	}
	if hi > regEnd {
		hi = regEnd
	}
	if lo >= hi {
		return nil
	}
	first := int64((lo - c.base) / PageBytes)
	last := int64((hi - 1 - c.base) / PageBytes)
	// Collect in page order: map iteration order would make write-back
	// queueing on the shared link run-dependent.
	nos := make([]int64, 0, len(c.pages))
	for no := range c.pages {
		if no >= first && no <= last {
			nos = append(nos, no)
		}
	}
	sort.Slice(nos, func(i, j int) bool { return nos[i] < nos[j] })
	var done sim.Time
	for _, no := range nos {
		el := c.pages[no]
		p := el.Value.(*page)
		if p.inActive {
			c.active.Remove(el)
		} else {
			c.inactive.Remove(el)
		}
		delete(c.pages, no)
		p.resident = false
		if p.dirty {
			c.stats.Writebacks++
			t, err := c.tr.WriteOneSided(clk.Now(), c.base+uint64(no)*PageBytes, p.data)
			if err != nil {
				return err
			}
			if t > done {
				done = t
			}
		}
	}
	if done > c.lastWb {
		c.lastWb = done
	}
	clk.AdvanceTo(done)
	return nil
}

// PrefetchPages issues an advisory fetch for the given page numbers, exactly
// as a prefetcher proposal would (out-of-range and resident pages dropped,
// batch gather when configured). Callers outside the fault path — compiled
// prefetch statements whose object migrated to the paged plane — use it to
// keep their hints effective across a plane switch.
func (c *Cache) PrefetchPages(clk *sim.Clock, pnos []int64) error {
	return c.issueAdvisory(clk, nil, pnos)
}

// Plane adapts the cache to the plane.DataPlane contract.
type Plane struct {
	C *Cache
}

var _ plane.DataPlane = Plane{}

func (p Plane) Kind() plane.Kind     { return plane.Page }
func (p Plane) UnitBytes() int       { return PageBytes }
func (p Plane) CapacityUnits() int   { return p.C.Capacity() }
func (p Plane) ResidentUnits() int   { return p.C.Resident() }
func (p Plane) Fence(clk *sim.Clock) { p.C.Fence(clk) }

func (p Plane) Access(clk *sim.Clock, far uint64, buf []byte, write bool) error {
	if write {
		return p.C.Write(clk, far, buf)
	}
	return p.C.Read(clk, far, buf)
}

func (p Plane) PrefetchBatch(clk *sim.Clock, fars []uint64) error {
	pnos := make([]int64, 0, len(fars))
	for _, far := range fars {
		if far < p.C.base {
			pnos = append(pnos, -1) // counted as dropped by the advisory path
			continue
		}
		pnos = append(pnos, int64((far-p.C.base)/PageBytes))
	}
	return p.C.PrefetchPages(clk, pnos)
}

func (p Plane) Evict(clk *sim.Clock, far uint64, length int64) error {
	return p.C.FlushRange(clk, far, length)
}

func (p Plane) Flush(clk *sim.Clock) error { return p.C.FlushAll(clk) }

func (p Plane) Stats() plane.Stats {
	st := p.C.Stats()
	hits := st.Accesses - st.MajorFaults
	if hits < 0 {
		hits = 0
	}
	return plane.Stats{
		Accesses:       st.Accesses,
		Hits:           hits,
		Misses:         st.MajorFaults,
		Evictions:      st.Evictions,
		Writebacks:     st.Writebacks,
		PrefetchIssued: st.Prefetches,
		PrefetchUseful: st.PrefetchUsed,
	}
}

func (p Plane) SetTrace(tr *trace.Tracer) { p.C.SetTrace(tr) }
