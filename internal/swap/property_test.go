package swap

import (
	"bytes"
	"encoding/binary"
	"testing"
	"testing/quick"

	"mira/internal/sim"
)

// Property: for any sequence of writes followed by reads at the same
// offsets, the cache returns exactly what was written, regardless of how
// eviction and prefetching shuffle pages in between. This is the paging
// substrate's fundamental correctness invariant.
func TestPropertyReadBackAfterEviction(t *testing.T) {
	const regionPages = 16
	f := func(seed uint64, poolRaw uint8) bool {
		pool := int(poolRaw%6) + 2 // 2..7 pages: far smaller than the region
		c, clk := newCache(t, pool, regionPages*PageBytes, seqPrefetch{n: 2})
		rng := sim.NewRNG(seed)
		type rec struct {
			off uint64
			val uint64
		}
		var written []rec
		for i := 0; i < 64; i++ {
			off := uint64(rng.Int63()) % uint64(regionPages*PageBytes-8)
			val := rng.Uint64()
			var buf [8]byte
			binary.LittleEndian.PutUint64(buf[:], val)
			if err := c.Write(clk, c.Base()+off, buf[:]); err != nil {
				return false
			}
			written = append(written, rec{off, val})
		}
		// Later writes may overlap earlier ones; replay forward keeping
		// the final value per byte.
		img := make(map[uint64]byte)
		for _, w := range written {
			var buf [8]byte
			binary.LittleEndian.PutUint64(buf[:], w.val)
			for i, b := range buf {
				img[w.off+uint64(i)] = b
			}
		}
		for _, w := range written {
			got := make([]byte, 8)
			if err := c.Read(clk, c.Base()+w.off, got); err != nil {
				return false
			}
			for i := range got {
				if got[i] != img[w.off+uint64(i)] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: the cache is deterministic — replaying an identical access
// sequence against a fresh cache yields identical fault counts and
// identical virtual time.
func TestPropertyDeterministicReplay(t *testing.T) {
	const regionPages = 12
	run := func(seed uint64, pool int) (Stats, sim.Time, []byte) {
		c, clk := newCache(t, pool, regionPages*PageBytes, seqPrefetch{n: 2})
		rng := sim.NewRNG(seed)
		sum := make([]byte, 32)
		for i := 0; i < 96; i++ {
			off := uint64(rng.Int63()) % uint64(regionPages*PageBytes-32)
			if rng.Intn(3) == 0 {
				if err := c.Write(clk, c.Base()+off, sum); err != nil {
					return Stats{}, 0, nil
				}
				continue
			}
			buf := make([]byte, 32)
			if err := c.Read(clk, c.Base()+off, buf); err != nil {
				return Stats{}, 0, nil
			}
			for j := range sum {
				sum[j] ^= buf[j]
			}
		}
		return c.Stats(), clk.Now(), sum
	}
	f := func(seed uint64, poolRaw uint8) bool {
		pool := int(poolRaw%5) + 2
		s1, t1, d1 := run(seed, pool)
		s2, t2, d2 := run(seed, pool)
		return s1 == s2 && t1 == t2 && bytes.Equal(d1, d2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: residency never exceeds the pool capacity, whatever the mix of
// demand faults and prefetches.
func TestPropertyResidencyBounded(t *testing.T) {
	const regionPages = 24
	f := func(seed uint64, poolRaw, depth uint8) bool {
		pool := int(poolRaw%6) + 2
		c, clk := newCache(t, pool, regionPages*PageBytes, seqPrefetch{n: int64(depth % 7)})
		rng := sim.NewRNG(seed)
		buf := make([]byte, 8)
		for i := 0; i < 128; i++ {
			off := uint64(rng.Int63()) % uint64(regionPages*PageBytes-8)
			if err := c.Read(clk, c.Base()+off, buf); err != nil {
				return false
			}
			if c.Resident() > c.Capacity() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestFaultsInRangeAttribution(t *testing.T) {
	c, clk := newCache(t, 4, 8*PageBytes, nil)
	buf := make([]byte, 8)
	// Touch pages 0, 1, and 5.
	for _, pg := range []uint64{0, 1, 5} {
		if err := c.Read(clk, c.Base()+pg*PageBytes+16, buf); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.FaultsInRange(c.Base(), 2*PageBytes); got != 2 {
		t.Fatalf("faults in pages 0-1 = %d, want 2", got)
	}
	if got := c.FaultsInRange(c.Base()+5*PageBytes, PageBytes); got != 1 {
		t.Fatalf("faults in page 5 = %d, want 1", got)
	}
	if got := c.FaultsInRange(c.Base()+2*PageBytes, 3*PageBytes); got != 0 {
		t.Fatalf("faults in untouched pages = %d, want 0", got)
	}
	// A range starting below the region clamps to the base.
	if got := c.FaultsInRange(c.Base()-PageBytes, 3*PageBytes); got != 2 {
		t.Fatalf("clamped range = %d, want 2", got)
	}
}

func TestSettleAsyncClearsInflight(t *testing.T) {
	c, clk := newCache(t, 8, 8*PageBytes, seqPrefetch{n: 4})
	buf := make([]byte, 8)
	if err := c.Read(clk, c.Base(), buf); err != nil {
		t.Fatal(err)
	}
	// The prefetched pages carry future readyAt stamps; settling must
	// clear them so a fresh-clock thread sees no phantom waits.
	c.SettleAsync()
	fresh := sim.NewClock(0)
	before := c.Stats().MinorFaults
	if err := c.Read(fresh, c.Base()+PageBytes, buf); err != nil {
		t.Fatal(err)
	}
	if c.Stats().MinorFaults != before+1 {
		t.Fatal("prefetched page not minor-faulted after settle")
	}
	if fresh.Now().Sub(0) > 10*sim.Microsecond {
		t.Fatalf("settled page still charged a wait: %v", fresh.Now())
	}
}

func TestSetLockSerializesFaults(t *testing.T) {
	lock := &sim.Serializer{}
	mk := func(l *sim.Serializer) sim.Time {
		c, clk := newCache(t, 4, 8*PageBytes, nil)
		if l != nil {
			c.SetLock(l)
		}
		buf := make([]byte, 8)
		for pg := uint64(0); pg < 4; pg++ {
			if err := c.Read(clk, c.Base()+pg*PageBytes, buf); err != nil {
				t.Fatal(err)
			}
		}
		return clk.Now()
	}
	free := mk(nil)
	// Pre-load the serializer with a queue from a "previous thread".
	for i := 0; i < 4; i++ {
		lock.Acquire(0, 5*sim.Microsecond)
	}
	locked := mk(lock)
	if locked <= free {
		t.Fatalf("contended faults not slower: %v vs %v", locked, free)
	}
}

func TestSetPrefetcherSwapsBehavior(t *testing.T) {
	c, clk := newCache(t, 8, 8*PageBytes, nil)
	buf := make([]byte, 8)
	if err := c.Read(clk, c.Base(), buf); err != nil {
		t.Fatal(err)
	}
	if c.Stats().Prefetches != 0 {
		t.Fatal("NoPrefetch issued prefetches")
	}
	c.SetPrefetcher(seqPrefetch{n: 2})
	if err := c.Read(clk, c.Base()+4*PageBytes, buf); err != nil {
		t.Fatal(err)
	}
	if c.Stats().Prefetches == 0 {
		t.Fatal("installed prefetcher never ran")
	}
	// Nil resets to NoPrefetch without crashing.
	c.SetPrefetcher(nil)
	if err := c.Read(clk, c.Base()+7*PageBytes, buf); err != nil {
		t.Fatal(err)
	}
}
