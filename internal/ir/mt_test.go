package ir

import (
	"strings"
	"testing"
)

// mtTestProgram is a tiny two-function program exercising every
// object-referencing statement kind.
func mtTestProgram() *Program {
	return &Program{
		Name:  "p",
		Entry: "main",
		Objects: []*Object{
			{Name: "a", ElemBytes: 8, Count: 16},
			{Name: "b", ElemBytes: 8, Count: 16, Float: true},
		},
		Funcs: []*Func{
			{
				Name:    "main",
				NumRegs: 2,
				Body: []Stmt{
					&Loop{Name: "i", IVReg: 0, Start: &Const{I: 0}, End: &Const{I: 16}, Step: &Const{I: 1}, Body: []Stmt{
						&Prefetch{Obj: "a", Index: &Reg{ID: 0}},
						&Load{Dst: 1, Obj: "a", Index: &Reg{ID: 0}},
						&Store{Obj: "a", Index: &Reg{ID: 0}, Val: &Reg{ID: 1}},
						&Evict{Obj: "a", Index: &Reg{ID: 0}},
					}},
					&BatchPrefetch{Entries: []PrefetchRef{{Obj: "a", Index: &Const{I: 0}}}},
					&Intrinsic{Kind: IntrCopy, Dst: TensorRef{Obj: "b", Rows: 4, Cols: 4, Off: &Const{I: 0}}, A: TensorRef{Obj: "b", Rows: 4, Cols: 4, Off: &Const{I: 0}}},
					&Call{Dst: -1, Callee: "helper"},
					&Release{Obj: "a"},
					&Return{},
				},
			},
			{Name: "helper", Body: []Stmt{&Fence{}, &Return{}}},
		},
	}
}

func TestMergeReplicasRenamesEverything(t *testing.T) {
	p := mtTestProgram()
	if err := Validate(p); err != nil {
		t.Fatalf("base program invalid: %v", err)
	}
	m := MergeReplicas(p, 3)
	if err := Validate(m); err != nil {
		t.Fatalf("merged program invalid: %v", err)
	}
	if len(m.Objects) != 6 || len(m.Funcs) != 6 {
		t.Fatalf("got %d objects, %d funcs; want 6 and 6", len(m.Objects), len(m.Funcs))
	}
	if m.Entry != ReplicaName("main", 0) {
		t.Fatalf("entry %q", m.Entry)
	}
	for i := 0; i < 3; i++ {
		for _, name := range []string{ReplicaName("a", i), ReplicaName("b", i)} {
			if _, ok := m.Object(name); !ok {
				t.Fatalf("object %q missing", name)
			}
		}
		f, ok := m.Func(ReplicaName("main", i))
		if !ok {
			t.Fatalf("func main#t%d missing", i)
		}
		// Every object and callee reference inside replica i must carry
		// replica i's suffix.
		suffix := "#t" + string(rune('0'+i))
		Walk(f.Body, func(s Stmt) bool {
			check := func(name string) {
				if !strings.HasSuffix(name, suffix) {
					t.Fatalf("replica %d: reference %q not renamed", i, name)
				}
			}
			switch st := s.(type) {
			case *Load:
				check(st.Obj)
			case *Store:
				check(st.Obj)
			case *Prefetch:
				check(st.Obj)
			case *BatchPrefetch:
				for _, e := range st.Entries {
					check(e.Obj)
				}
			case *Evict:
				check(st.Obj)
			case *Release:
				check(st.Obj)
			case *Call:
				check(st.Callee)
			case *Intrinsic:
				check(st.Dst.Obj)
			}
			return true
		})
	}
}

func TestMergeReplicasLeavesSourceUntouched(t *testing.T) {
	p := mtTestProgram()
	_ = MergeReplicas(p, 2)
	if _, ok := p.Object("a"); !ok {
		t.Fatal("source program object renamed in place")
	}
	if err := Validate(p); err != nil {
		t.Fatalf("source program corrupted: %v", err)
	}
}
