package ir

// Builder constructs Programs. It is the front-end applications use in
// place of the paper's C++/ONNX sources: the graph example in Fig. 4
// becomes a dozen Builder calls (see internal/apps/graphtraverse).
type Builder struct {
	p *Program
}

// NewBuilder starts a program named name.
func NewBuilder(name string) *Builder {
	return &Builder{p: &Program{Name: name}}
}

// Object declares an allocation site of count elements of elemBytes bytes,
// optionally structured into fields.
func (b *Builder) Object(name string, elemBytes int, count int64, fields ...Field) *Object {
	o := &Object{Name: name, ElemBytes: elemBytes, Count: count, Fields: fields}
	b.p.Objects = append(b.p.Objects, o)
	return o
}

// FloatArray declares an array of float64 elements.
func (b *Builder) FloatArray(name string, count int64) *Object {
	o := &Object{Name: name, ElemBytes: 8, Count: count, Float: true}
	b.p.Objects = append(b.p.Objects, o)
	return o
}

// IntArray declares an array of int64 elements.
func (b *Builder) IntArray(name string, count int64) *Object {
	o := &Object{Name: name, ElemBytes: 8, Count: count}
	b.p.Objects = append(b.p.Objects, o)
	return o
}

// LocalArray declares an int64 array pinned to local memory (never placed
// in far memory — stacks, small lookup tables).
func (b *Builder) LocalArray(name string, count int64) *Object {
	o := &Object{Name: name, ElemBytes: 8, Count: count, Local: true}
	b.p.Objects = append(b.p.Objects, o)
	return o
}

// Func opens a function with the given scalar parameters. The first
// function declared becomes the entry unless SetEntry overrides it.
func (b *Builder) Func(name string, params ...string) *FuncBuilder {
	f := &Func{Name: name, Params: params}
	b.p.Funcs = append(b.p.Funcs, f)
	if b.p.Entry == "" {
		b.p.Entry = name
	}
	fb := &FuncBuilder{b: b, f: f}
	fb.blocks = []*[]Stmt{&f.Body}
	return fb
}

// SetEntry selects the entry function.
func (b *Builder) SetEntry(name string) { b.p.Entry = name }

// Program validates and returns the built program.
func (b *Builder) Program() (*Program, error) {
	if err := Validate(b.p); err != nil {
		return nil, err
	}
	return b.p, nil
}

// MustProgram is Program for tests and static app definitions, panicking on
// validation errors (a malformed app is a programming bug, not input).
func (b *Builder) MustProgram() *Program {
	p, err := b.Program()
	if err != nil {
		panic(err)
	}
	return p
}

// FuncBuilder appends statements to a function under construction. Nested
// blocks (loop bodies, branches) are built with closures.
type FuncBuilder struct {
	b      *Builder
	f      *Func
	blocks []*[]Stmt
}

// top returns the innermost open block.
func (fb *FuncBuilder) top() *[]Stmt { return fb.blocks[len(fb.blocks)-1] }

// emit appends a statement to the open block.
func (fb *FuncBuilder) emit(s Stmt) { *fb.top() = append(*fb.top(), s) }

// NewReg allocates a fresh register.
func (fb *FuncBuilder) NewReg() int {
	r := fb.f.NumRegs
	fb.f.NumRegs++
	return r
}

// MarkNoSharedWrites records that the function has no shared writable data
// (offload candidate precondition, §4.8).
func (fb *FuncBuilder) MarkNoSharedWrites() { fb.f.NoSharedWrites = true }

// Loop emits a counted loop [start, end) with the given step and builds its
// body with fn, which receives the induction variable as an expression.
func (fb *FuncBuilder) Loop(start, end, step Expr, fn func(iv Expr)) {
	iv := fb.NewReg()
	l := &Loop{IVReg: iv, Start: start, End: end, Step: step}
	fb.emit(l)
	fb.blocks = append(fb.blocks, &l.Body)
	fn(&Reg{ID: iv})
	fb.blocks = fb.blocks[:len(fb.blocks)-1]
}

// NamedLoop is Loop with a label for profiles and printed IR.
func (fb *FuncBuilder) NamedLoop(name string, start, end, step Expr, fn func(iv Expr)) {
	iv := fb.NewReg()
	l := &Loop{Name: name, IVReg: iv, Start: start, End: end, Step: step}
	fb.emit(l)
	fb.blocks = append(fb.blocks, &l.Body)
	fn(&Reg{ID: iv})
	fb.blocks = fb.blocks[:len(fb.blocks)-1]
}

// Load emits a load of obj[index].field and returns the destination
// register as an expression.
func (fb *FuncBuilder) Load(obj string, index Expr, field string) Expr {
	dst := fb.NewReg()
	fb.emit(&Load{Dst: dst, Obj: obj, Index: index, Field: field})
	return &Reg{ID: dst}
}

// Store emits a store of val to obj[index].field.
func (fb *FuncBuilder) Store(obj string, index Expr, field string, val Expr) {
	fb.emit(&Store{Obj: obj, Index: index, Field: field, Val: val})
}

// Let evaluates val into a fresh register and returns it as an expression.
func (fb *FuncBuilder) Let(val Expr) Expr {
	dst := fb.NewReg()
	fb.emit(&Assign{Dst: dst, Val: val})
	return &Reg{ID: dst}
}

// Var allocates a mutable register initialized to val, for accumulators.
func (fb *FuncBuilder) Var(val Expr) *Reg {
	dst := fb.NewReg()
	fb.emit(&Assign{Dst: dst, Val: val})
	return &Reg{ID: dst}
}

// Set reassigns a register created with Var.
func (fb *FuncBuilder) Set(r *Reg, val Expr) {
	fb.emit(&Assign{Dst: r.ID, Val: val})
}

// If emits a conditional; elseFn may be nil.
func (fb *FuncBuilder) If(cond Expr, thenFn func(), elseFn func()) {
	s := &If{Cond: cond}
	fb.emit(s)
	fb.blocks = append(fb.blocks, &s.Then)
	thenFn()
	fb.blocks = fb.blocks[:len(fb.blocks)-1]
	if elseFn != nil {
		fb.blocks = append(fb.blocks, &s.Else)
		elseFn()
		fb.blocks = fb.blocks[:len(fb.blocks)-1]
	}
}

// Call emits a void call.
func (fb *FuncBuilder) Call(callee string, args ...Expr) {
	fb.emit(&Call{Dst: -1, Callee: callee, Args: args})
}

// CallRet emits a call and returns the callee's return value.
func (fb *FuncBuilder) CallRet(callee string, args ...Expr) Expr {
	dst := fb.NewReg()
	fb.emit(&Call{Dst: dst, Callee: callee, Args: args})
	return &Reg{ID: dst}
}

// Return emits a return of val (nil for void).
func (fb *FuncBuilder) Return(val Expr) { fb.emit(&Return{Val: val}) }

// Prefetch emits an asynchronous line prefetch (normally codegen-inserted;
// exposed for hand-tuned programs and tests).
func (fb *FuncBuilder) Prefetch(obj string, index Expr, field string) {
	fb.emit(&Prefetch{Obj: obj, Index: index, Field: field})
}

// BatchPrefetch emits a batched scatter-gather prefetch.
func (fb *FuncBuilder) BatchPrefetch(entries ...PrefetchRef) {
	fb.emit(&BatchPrefetch{Entries: entries})
}

// Evict emits an eviction hint.
func (fb *FuncBuilder) Evict(obj string, index Expr) {
	fb.emit(&Evict{Obj: obj, Index: index})
}

// Fence emits a wait for all asynchronous operations.
func (fb *FuncBuilder) Fence() { fb.emit(&Fence{}) }

// MatMul emits Dst += A x B.
func (fb *FuncBuilder) MatMul(dst, a, b TensorRef) {
	fb.emit(&Intrinsic{Kind: IntrMatMul, Dst: dst, A: a, B: b})
}

// MatMulT emits Dst += A x B^T.
func (fb *FuncBuilder) MatMulT(dst, a, b TensorRef) {
	fb.emit(&Intrinsic{Kind: IntrMatMulT, Dst: dst, A: a, B: b})
}

// Zero emits a destination-clearing intrinsic.
func (fb *FuncBuilder) Zero(dst TensorRef) {
	fb.emit(&Intrinsic{Kind: IntrZero, Dst: dst})
}

// Unary emits a unary tensor intrinsic.
func (fb *FuncBuilder) Unary(kind IntrKind, dst, a TensorRef) {
	fb.emit(&Intrinsic{Kind: kind, Dst: dst, A: a})
}

// Binary emits a binary elementwise tensor intrinsic.
func (fb *FuncBuilder) Binary(kind IntrKind, dst, a, b TensorRef) {
	fb.emit(&Intrinsic{Kind: kind, Dst: dst, A: a, B: b})
}

// ---- Expression constructors ----

// C builds an integer constant.
func C(i int64) Expr { return &Const{I: i} }

// CF builds a float constant.
func CF(f float64) Expr { return &ConstF{F: f} }

// P references a scalar function parameter.
func P(name string) Expr { return &Param{Name: name} }

// R references a register by id (rarely needed outside generated code).
func R(id int) Expr { return &Reg{ID: id} }

// Add, Sub, Mul, Div, Mod, and friends build binary expressions.
func Add(a, b Expr) Expr { return &Bin{Op: OpAdd, A: a, B: b} }
func Sub(a, b Expr) Expr { return &Bin{Op: OpSub, A: a, B: b} }
func Mul(a, b Expr) Expr { return &Bin{Op: OpMul, A: a, B: b} }
func Div(a, b Expr) Expr { return &Bin{Op: OpDiv, A: a, B: b} }
func Mod(a, b Expr) Expr { return &Bin{Op: OpMod, A: a, B: b} }
func Lt(a, b Expr) Expr  { return &Bin{Op: OpLt, A: a, B: b} }
func Le(a, b Expr) Expr  { return &Bin{Op: OpLe, A: a, B: b} }
func Gt(a, b Expr) Expr  { return &Bin{Op: OpGt, A: a, B: b} }
func Ge(a, b Expr) Expr  { return &Bin{Op: OpGe, A: a, B: b} }
func Eq(a, b Expr) Expr  { return &Bin{Op: OpEq, A: a, B: b} }
func Ne(a, b Expr) Expr  { return &Bin{Op: OpNe, A: a, B: b} }
func And(a, b Expr) Expr { return &Bin{Op: OpAnd, A: a, B: b} }
func Or(a, b Expr) Expr  { return &Bin{Op: OpOr, A: a, B: b} }
func Min(a, b Expr) Expr { return &Bin{Op: OpMin, A: a, B: b} }
func Max(a, b Expr) Expr { return &Bin{Op: OpMax, A: a, B: b} }
func Neg(a Expr) Expr    { return &Un{Op: OpNeg, A: a} }
func Not(a Expr) Expr    { return &Un{Op: OpNot, A: a} }
func Abs(a Expr) Expr    { return &Un{Op: OpAbs, A: a} }

// T builds a tensor reference over obj starting at element offset off.
func T(obj string, off Expr, rows, cols int64) TensorRef {
	if off == nil {
		off = C(0)
	}
	return TensorRef{Obj: obj, Off: off, Rows: rows, Cols: cols}
}

// F declares a struct field (offset and size in bytes).
func F(name string, offset, bytes int) Field {
	return Field{Name: name, Offset: offset, Bytes: bytes}
}

// FF declares a float64 struct field.
func FF(name string, offset int) Field {
	return Field{Name: name, Offset: offset, Bytes: 8, Float: true}
}
