package ir

import (
	"fmt"
	"strings"
)

// Print renders a program in a textual form analogous to the paper's
// Fig. 13/14 listings. cmd/mirac uses it to show the remotable/rmem
// conversion and the optimizations codegen applied.
func Print(p *Program) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "program %s (entry %s)\n", p.Name, p.Entry)
	for _, o := range p.Objects {
		fmt.Fprintf(&sb, "object %s: %d x %dB", o.Name, o.Count, o.ElemBytes)
		if o.Local {
			sb.WriteString(" local")
		}
		if len(o.Fields) > 0 {
			parts := make([]string, len(o.Fields))
			for i, f := range o.Fields {
				parts[i] = fmt.Sprintf("%s@%d+%d", f.Name, f.Offset, f.Bytes)
			}
			fmt.Fprintf(&sb, " {%s}", strings.Join(parts, ", "))
		}
		sb.WriteByte('\n')
	}
	for _, f := range p.Funcs {
		fmt.Fprintf(&sb, "func %s(%s) {\n", f.Name, strings.Join(f.Params, ", "))
		printBlock(&sb, f.Body, 1)
		sb.WriteString("}\n")
	}
	return sb.String()
}

func printBlock(sb *strings.Builder, body []Stmt, depth int) {
	ind := strings.Repeat("  ", depth)
	for _, s := range body {
		switch st := s.(type) {
		case *Loop:
			name := ""
			if st.Name != "" {
				name = " '" + st.Name + "'"
			}
			fmt.Fprintf(sb, "%sloop%s %%%d = %s .. %s step %s {\n",
				ind, name, st.IVReg, ExprString(st.Start), ExprString(st.End), ExprString(st.Step))
			printBlock(sb, st.Body, depth+1)
			fmt.Fprintf(sb, "%s}\n", ind)
		case *Load:
			mode := "rmem.load"
			if st.Native {
				mode = "native.load"
			}
			fmt.Fprintf(sb, "%s%%%d = %s %s[%s]%s\n", ind, st.Dst, mode, st.Obj, ExprString(st.Index), fieldSuffix(st.Field))
		case *Store:
			mode := "rmem.store"
			if st.Native {
				mode = "native.store"
			}
			fmt.Fprintf(sb, "%s%s %s[%s]%s = %s\n", ind, mode, st.Obj, ExprString(st.Index), fieldSuffix(st.Field), ExprString(st.Val))
		case *Assign:
			fmt.Fprintf(sb, "%s%%%d = %s\n", ind, st.Dst, ExprString(st.Val))
		case *If:
			fmt.Fprintf(sb, "%sif %s {\n", ind, ExprString(st.Cond))
			printBlock(sb, st.Then, depth+1)
			if len(st.Else) > 0 {
				fmt.Fprintf(sb, "%s} else {\n", ind)
				printBlock(sb, st.Else, depth+1)
			}
			fmt.Fprintf(sb, "%s}\n", ind)
		case *Call:
			args := make([]string, len(st.Args))
			for i, a := range st.Args {
				args[i] = ExprString(a)
			}
			kind := "call"
			if st.Offload {
				kind = "rmem.call_offloaded"
			}
			if st.Dst >= 0 {
				fmt.Fprintf(sb, "%s%%%d = %s %s(%s)\n", ind, st.Dst, kind, st.Callee, strings.Join(args, ", "))
			} else {
				fmt.Fprintf(sb, "%s%s %s(%s)\n", ind, kind, st.Callee, strings.Join(args, ", "))
			}
		case *Return:
			if st.Val != nil {
				fmt.Fprintf(sb, "%sreturn %s\n", ind, ExprString(st.Val))
			} else {
				fmt.Fprintf(sb, "%sreturn\n", ind)
			}
		case *Prefetch:
			fmt.Fprintf(sb, "%srmem.prefetch %s[%s]%s\n", ind, st.Obj, ExprString(st.Index), fieldSuffix(st.Field))
		case *BatchPrefetch:
			parts := make([]string, len(st.Entries))
			for i, e := range st.Entries {
				parts[i] = fmt.Sprintf("%s[%s]%s", e.Obj, ExprString(e.Index), fieldSuffix(e.Field))
			}
			fmt.Fprintf(sb, "%srmem.prefetch_batch %s\n", ind, strings.Join(parts, ", "))
		case *Evict:
			fmt.Fprintf(sb, "%srmem.evict %s[%s]\n", ind, st.Obj, ExprString(st.Index))
		case *Fence:
			fmt.Fprintf(sb, "%srmem.fence\n", ind)
		case *Release:
			fmt.Fprintf(sb, "%srmem.release %s\n", ind, st.Obj)
		case *Intrinsic:
			fmt.Fprintf(sb, "%srmem.%s dst=%s a=%s b=%s\n", ind, st.Kind, tensorString(st.Dst), tensorString(st.A), tensorString(st.B))
		default:
			fmt.Fprintf(sb, "%s<unknown %T>\n", ind, s)
		}
	}
}

func fieldSuffix(f string) string {
	if f == "" {
		return ""
	}
	return "." + f
}

func tensorString(t TensorRef) string {
	if t.Obj == "" {
		return "-"
	}
	return fmt.Sprintf("%s[%s:%dx%d]", t.Obj, ExprString(t.Off), t.Rows, t.Cols)
}

// ExprString renders an expression.
func ExprString(e Expr) string {
	switch x := e.(type) {
	case nil:
		return "<nil>"
	case *Const:
		return fmt.Sprintf("%d", x.I)
	case *ConstF:
		return fmt.Sprintf("%g", x.F)
	case *Reg:
		return fmt.Sprintf("%%%d", x.ID)
	case *Param:
		return "$" + x.Name
	case *Bin:
		switch x.Op {
		case OpMin, OpMax:
			return fmt.Sprintf("%s(%s, %s)", x.Op, ExprString(x.A), ExprString(x.B))
		default:
			return fmt.Sprintf("(%s %s %s)", ExprString(x.A), x.Op, ExprString(x.B))
		}
	case *Un:
		return fmt.Sprintf("%s(%s)", x.Op, ExprString(x.A))
	default:
		return fmt.Sprintf("<expr %T>", e)
	}
}
