package ir

import "fmt"

// Expr is a side-effect-free scalar expression.
type Expr interface{ expr() }

// Const is an integer literal.
type Const struct{ I int64 }

// ConstF is a floating-point literal.
type ConstF struct{ F float64 }

// Reg reads a function-local register (including loop induction
// variables).
type Reg struct{ ID int }

// Param reads a scalar function parameter by name.
type Param struct{ Name string }

// Bin applies a binary operator.
type Bin struct {
	Op BinOp
	A  Expr
	B  Expr
}

// Un applies a unary operator.
type Un struct {
	Op UnOp
	A  Expr
}

func (*Const) expr()  {}
func (*ConstF) expr() {}
func (*Reg) expr()    {}
func (*Param) expr()  {}
func (*Bin) expr()    {}
func (*Un) expr()     {}

// BinOp enumerates binary operators. Comparison operators yield 0 or 1.
type BinOp int

const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDiv
	OpMod
	OpLt
	OpLe
	OpGt
	OpGe
	OpEq
	OpNe
	OpAnd
	OpOr
	OpMin
	OpMax
)

func (op BinOp) String() string {
	switch op {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpMod:
		return "%"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpEq:
		return "=="
	case OpNe:
		return "!="
	case OpAnd:
		return "&&"
	case OpOr:
		return "||"
	case OpMin:
		return "min"
	case OpMax:
		return "max"
	default:
		return fmt.Sprintf("BinOp(%d)", int(op))
	}
}

// UnOp enumerates unary operators.
type UnOp int

const (
	// OpNeg negates.
	OpNeg UnOp = iota
	// OpNot is logical negation (0 -> 1, non-zero -> 0).
	OpNot
	// OpAbs is absolute value.
	OpAbs
)

func (op UnOp) String() string {
	switch op {
	case OpNeg:
		return "-"
	case OpNot:
		return "!"
	case OpAbs:
		return "abs"
	default:
		return fmt.Sprintf("UnOp(%d)", int(op))
	}
}

// WalkExpr visits e and its operands pre-order.
func WalkExpr(e Expr, fn func(Expr) bool) {
	if e == nil || !fn(e) {
		return
	}
	switch x := e.(type) {
	case *Bin:
		WalkExpr(x.A, fn)
		WalkExpr(x.B, fn)
	case *Un:
		WalkExpr(x.A, fn)
	}
}

// ExprOps counts the operator nodes in e, the unit of compute cost the
// executor charges and the offload cost model consumes (§4.8).
func ExprOps(e Expr) int {
	n := 0
	WalkExpr(e, func(x Expr) bool {
		switch x.(type) {
		case *Bin, *Un:
			n++
		}
		return true
	})
	return n
}
