package ir

import "fmt"

// Validate checks a program's internal consistency: entry resolution,
// object/field references, register bounds, call targets, parameter
// references, and field layout. The analyses and the executor assume a
// validated program.
func Validate(p *Program) error {
	if p.Name == "" {
		return fmt.Errorf("ir: program has no name")
	}
	if _, err := p.EntryFunc(); err != nil {
		return err
	}
	seenObj := map[string]bool{}
	for _, o := range p.Objects {
		if o.Name == "" {
			return fmt.Errorf("ir: %s: object with empty name", p.Name)
		}
		if seenObj[o.Name] {
			return fmt.Errorf("ir: %s: duplicate object %q", p.Name, o.Name)
		}
		seenObj[o.Name] = true
		if o.ElemBytes <= 0 {
			return fmt.Errorf("ir: %s: object %q: ElemBytes %d", p.Name, o.Name, o.ElemBytes)
		}
		if o.Count <= 0 {
			return fmt.Errorf("ir: %s: object %q: Count %d", p.Name, o.Name, o.Count)
		}
		seenField := map[string]bool{}
		for _, f := range o.Fields {
			if f.Name == "" {
				return fmt.Errorf("ir: %s: object %q: field with empty name", p.Name, o.Name)
			}
			if seenField[f.Name] {
				return fmt.Errorf("ir: %s: object %q: duplicate field %q", p.Name, o.Name, f.Name)
			}
			seenField[f.Name] = true
			if f.Offset < 0 || f.Bytes <= 0 || f.Offset+f.Bytes > o.ElemBytes {
				return fmt.Errorf("ir: %s: object %q: field %q [%d,+%d) outside element of %d bytes",
					p.Name, o.Name, f.Name, f.Offset, f.Bytes, o.ElemBytes)
			}
		}
	}
	seenFunc := map[string]bool{}
	for _, f := range p.Funcs {
		if seenFunc[f.Name] {
			return fmt.Errorf("ir: %s: duplicate function %q", p.Name, f.Name)
		}
		seenFunc[f.Name] = true
	}
	for _, f := range p.Funcs {
		v := &validator{p: p, f: f}
		if err := v.block(f.Body); err != nil {
			return fmt.Errorf("ir: %s: func %q: %w", p.Name, f.Name, err)
		}
	}
	return nil
}

type validator struct {
	p *Program
	f *Func
}

func (v *validator) block(body []Stmt) error {
	for _, s := range body {
		if err := v.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (v *validator) stmt(s Stmt) error {
	switch st := s.(type) {
	case *Loop:
		if err := v.reg(st.IVReg); err != nil {
			return err
		}
		for _, e := range []Expr{st.Start, st.End, st.Step} {
			if err := v.expr(e); err != nil {
				return err
			}
		}
		return v.block(st.Body)
	case *Load:
		if err := v.reg(st.Dst); err != nil {
			return err
		}
		if err := v.access(st.Obj, st.Field); err != nil {
			return err
		}
		return v.expr(st.Index)
	case *Store:
		if err := v.access(st.Obj, st.Field); err != nil {
			return err
		}
		if err := v.expr(st.Index); err != nil {
			return err
		}
		return v.expr(st.Val)
	case *Assign:
		if err := v.reg(st.Dst); err != nil {
			return err
		}
		return v.expr(st.Val)
	case *If:
		if err := v.expr(st.Cond); err != nil {
			return err
		}
		if err := v.block(st.Then); err != nil {
			return err
		}
		return v.block(st.Else)
	case *Call:
		callee, ok := v.p.Func(st.Callee)
		if !ok {
			return fmt.Errorf("call of undefined function %q", st.Callee)
		}
		if len(st.Args) != len(callee.Params) {
			return fmt.Errorf("call of %q with %d args, want %d", st.Callee, len(st.Args), len(callee.Params))
		}
		if st.Dst >= 0 {
			if err := v.reg(st.Dst); err != nil {
				return err
			}
		}
		for _, a := range st.Args {
			if err := v.expr(a); err != nil {
				return err
			}
		}
		return nil
	case *Return:
		if st.Val != nil {
			return v.expr(st.Val)
		}
		return nil
	case *Prefetch:
		if err := v.access(st.Obj, st.Field); err != nil {
			return err
		}
		return v.expr(st.Index)
	case *BatchPrefetch:
		for _, e := range st.Entries {
			if err := v.access(e.Obj, e.Field); err != nil {
				return err
			}
			if err := v.expr(e.Index); err != nil {
				return err
			}
		}
		return nil
	case *Evict:
		if err := v.access(st.Obj, ""); err != nil {
			return err
		}
		return v.expr(st.Index)
	case *Fence:
		return nil
	case *Release:
		return v.access(st.Obj, "")
	case *Intrinsic:
		if st.Kind != IntrZero && st.A.Obj == "" {
			return fmt.Errorf("intrinsic %v needs a source operand", st.Kind)
		}
		for _, t := range []TensorRef{st.Dst, st.A, st.B} {
			if t.Obj == "" {
				continue // unary intrinsics leave B (and IntrZero A) empty
			}
			o, ok := v.p.Object(t.Obj)
			if !ok {
				return fmt.Errorf("intrinsic %v references undefined object %q", st.Kind, t.Obj)
			}
			if o.ElemBytes != 8 || !o.Float {
				return fmt.Errorf("intrinsic %v needs float64 object, got %q (%dB, float=%v)",
					st.Kind, t.Obj, o.ElemBytes, o.Float)
			}
			if t.Rows <= 0 || t.Cols <= 0 {
				return fmt.Errorf("intrinsic %v: tensor over %q has dims %dx%d", st.Kind, t.Obj, t.Rows, t.Cols)
			}
			if err := v.expr(t.Off); err != nil {
				return err
			}
		}
		switch st.Kind {
		case IntrMatMul:
			if st.A.Cols != st.B.Rows || st.Dst.Rows != st.A.Rows || st.Dst.Cols != st.B.Cols {
				return fmt.Errorf("matmul dims mismatch: dst %dx%d, a %dx%d, b %dx%d",
					st.Dst.Rows, st.Dst.Cols, st.A.Rows, st.A.Cols, st.B.Rows, st.B.Cols)
			}
		case IntrMatMulT:
			if st.A.Cols != st.B.Cols || st.Dst.Rows != st.A.Rows || st.Dst.Cols != st.B.Rows {
				return fmt.Errorf("matmul_t dims mismatch: dst %dx%d, a %dx%d, bT %dx%d",
					st.Dst.Rows, st.Dst.Cols, st.A.Rows, st.A.Cols, st.B.Cols, st.B.Rows)
			}
		}
		return nil
	default:
		return fmt.Errorf("unknown statement %T", s)
	}
}

func (v *validator) access(obj, field string) error {
	o, ok := v.p.Object(obj)
	if !ok {
		return fmt.Errorf("access to undefined object %q", obj)
	}
	if _, ok := o.FieldByName(field); !ok {
		return fmt.Errorf("object %q has no field %q", obj, field)
	}
	return nil
}

func (v *validator) reg(id int) error {
	if id < 0 || id >= v.f.NumRegs {
		return fmt.Errorf("register %%%d out of range [0,%d)", id, v.f.NumRegs)
	}
	return nil
}

func (v *validator) expr(e Expr) error {
	if e == nil {
		return fmt.Errorf("nil expression")
	}
	var err error
	WalkExpr(e, func(x Expr) bool {
		switch t := x.(type) {
		case *Reg:
			if e2 := v.reg(t.ID); e2 != nil && err == nil {
				err = e2
			}
		case *Param:
			found := false
			for _, pn := range v.f.Params {
				if pn == t.Name {
					found = true
					break
				}
			}
			if !found && err == nil {
				err = fmt.Errorf("reference to undefined parameter %q", t.Name)
			}
		}
		return true
	})
	return err
}
