package ir

import (
	"strings"
	"testing"
	"testing/quick"

	"mira/internal/sim"
)

// randProgram builds a random but valid program from a seed: a loop nest of
// random depth with loads, stores, and scalar arithmetic over a couple of
// objects. It exercises Clone/Print on shapes no hand-written test covers.
func randProgram(seed uint64) *Program {
	rng := sim.NewRNG(seed)
	b := NewBuilder("randprog")
	b.Object("a", 8, 64, F("v", 0, 8))
	b.Object("bb", 16, 32, F("x", 0, 8), F("y", 8, 8))
	fb := b.Func("main")
	depth := rng.Intn(3) + 1
	var emit func(level int, iv Expr)
	emit = func(level int, iv Expr) {
		n := rng.Intn(3) + 1
		for i := 0; i < n; i++ {
			switch rng.Intn(4) {
			case 0:
				v := fb.Load("a", Mod(iv, C(64)), "v")
				fb.Store("a", Mod(iv, C(64)), "v", Add(v, C(1)))
			case 1:
				x := fb.Load("bb", Mod(iv, C(32)), "x")
				fb.Store("bb", Mod(iv, C(32)), "y", Mul(x, C(3)))
			case 2:
				fb.Let(Add(iv, C(int64(rng.Intn(100)))))
			case 3:
				if level < depth {
					fb.Loop(C(0), C(int64(rng.Intn(8)+2)), C(1), func(inner Expr) {
						emit(level+1, inner)
					})
				}
			}
		}
	}
	fb.Loop(C(0), C(16), C(1), func(iv Expr) { emit(1, iv) })
	return b.MustProgram()
}

// Property: a clone prints byte-identically to its source — Clone preserves
// every statement, expression, and object declaration.
func TestPropertyClonePrintsIdentically(t *testing.T) {
	f := func(seed uint64) bool {
		p := randProgram(seed)
		c := Clone(p)
		return Print(p) == Print(c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: mutating a clone never leaks into the original (deep copy, not
// aliasing). Append a statement to every cloned function body and confirm
// the original's rendering is unchanged.
func TestPropertyCloneIsDeep(t *testing.T) {
	f := func(seed uint64) bool {
		p := randProgram(seed)
		before := Print(p)
		c := Clone(p)
		for _, fn := range c.Funcs {
			fn.Body = append(fn.Body, &Return{})
		}
		return Print(p) == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: every randomly generated program validates — the builder can
// only produce well-formed IR.
func TestPropertyBuilderProducesValidIR(t *testing.T) {
	f := func(seed uint64) bool {
		return Validate(randProgram(seed)) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: SubstReg with from == to is the identity on the rendered
// expression, and substitution is idempotent — applying the same
// substitution twice equals applying it once.
func TestPropertySubstRegIdentityAndIdempotence(t *testing.T) {
	f := func(seed uint64, from, to uint8) bool {
		rng := sim.NewRNG(seed)
		r := &Reg{ID: int(from % 8)}
		e := Add(Mul(r, C(int64(rng.Intn(50)))), r)
		id := SubstReg(CloneExpr(e), int(from%8), int(from%8))
		if ExprString(id) != ExprString(e) {
			return false
		}
		once := SubstReg(CloneExpr(e), int(from%8), int(to%8)+8)
		twice := SubstReg(CloneExpr(once), int(from%8), int(to%8)+8)
		return ExprString(once) == ExprString(twice)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestBuilderConvenienceHelpers drives the expression helpers and the
// builder methods not exercised by the app programs, checking their
// rendered forms.
func TestBuilderConvenienceHelpers(t *testing.T) {
	b := NewBuilder("conv")
	b.Object("o", 8, 16, F("v", 0, 8))
	b.FloatArray("m", 16)
	fb := b.Func("main")
	fb.MarkNoSharedWrites()
	fb.NamedLoop("outer", C(0), C(4), C(1), func(iv Expr) {
		fb.Let(Div(iv, C(2)))
		fb.Let(Le(iv, C(3)))
		fb.Let(Ge(iv, C(1)))
		fb.Let(Eq(iv, C(2)))
		fb.Let(Ne(iv, C(2)))
		fb.Let(And(Lt(iv, C(3)), Gt(iv, C(0))))
		fb.Let(Or(Eq(iv, C(0)), Eq(iv, C(3))))
		fb.Let(Max(iv, C(2)))
		fb.Let(Abs(Sub(iv, C(2))))
	})
	fb.Zero(T("m", C(0), 1, 16))
	fb.MatMulT(T("m", C(0), 2, 2), T("m", C(4), 2, 2), T("m", C(8), 2, 2))
	fb2 := b.Func("callee", "x")
	fb2.Return(P("x"))
	fb.CallRet("callee", C(7))
	p := b.MustProgram()
	if err := Validate(p); err != nil {
		t.Fatal(err)
	}
	fn, _ := p.Func("main")
	if !fn.NoSharedWrites {
		t.Fatal("NoSharedWrites not set")
	}
	if fn.Body[0].(*Loop).Name != "outer" {
		t.Fatal("loop name lost")
	}
	s := Print(p)
	for _, frag := range []string{"outer", "max", "abs", "call callee"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("rendered program missing %q:\n%s", frag, s)
		}
	}
}

// Property: SubstRegBlock rewrites every occurrence of a register across
// all statement kinds — after substitution the old register never appears
// in the rendering.
func TestPropertySubstRegBlockComplete(t *testing.T) {
	f := func(seed uint64) bool {
		p := randProgram(seed)
		c := Clone(p)
		fn := c.Funcs[0]
		// The outermost loop's IV is register 0 in randProgram.
		SubstRegBlock(fn.Body, 0, 97)
		return !strings.Contains(Print(c), "r0") || strings.Contains(Print(p), "r97") == false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
