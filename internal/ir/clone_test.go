package ir

import (
	"strings"
	"testing"
)

func cloneFixture() *Program {
	b := NewBuilder("fix")
	b.Object("s", 16, 32, F("a", 0, 8), F("b", 8, 8))
	b.FloatArray("m", 64)
	callee := b.Func("helper", "x")
	callee.Return(Add(P("x"), C(1)))
	fb := b.Func("main")
	fb.Loop(C(0), C(32), C(1), func(i Expr) {
		v := fb.Load("s", i, "a")
		fb.If(Gt(v, C(0)), func() {
			fb.Store("s", i, "b", v)
		}, func() {
			fb.Store("s", i, "b", C(0))
		})
		fb.Prefetch("s", Add(i, C(4)), "a")
		fb.Evict("s", Sub(i, C(4)))
	})
	fb.BatchPrefetch(PrefetchRef{Obj: "s", Index: C(0), Field: "a"})
	fb.Fence()
	fb.MatMul(T("m", C(32), 4, 4), T("m", C(0), 4, 4), T("m", C(16), 4, 4))
	fb.Call("helper", C(3))
	fb.Return(nil)
	b.SetEntry("main")
	return b.MustProgram()
}

func TestCloneIsDeepAndEqual(t *testing.T) {
	p := cloneFixture()
	c := Clone(p)
	if Print(p) != Print(c) {
		t.Fatal("clone prints differently")
	}
	// Mutate the clone everywhere reachable; original must not change.
	before := Print(p)
	c.Objects[0].Fields[0].Offset = 4
	cf, _ := c.Func("main")
	Walk(cf.Body, func(s Stmt) bool {
		switch st := s.(type) {
		case *Load:
			st.Native = true
			st.Index = C(999)
		case *Store:
			st.NoFetch = true
		case *Loop:
			st.Start = C(5)
		case *Intrinsic:
			st.Dst.Off = C(0)
		case *Call:
			st.Offload = true
		case *BatchPrefetch:
			st.Entries[0].Index = C(7)
		}
		return true
	})
	if Print(p) != before {
		t.Fatal("mutating the clone changed the original")
	}
}

func TestCloneValidates(t *testing.T) {
	c := Clone(cloneFixture())
	if err := Validate(c); err != nil {
		t.Fatal(err)
	}
}

func TestCloneForEntry(t *testing.T) {
	c := CloneForEntry(cloneFixture(), "helper")
	if c.Entry != "helper" {
		t.Fatalf("entry = %q", c.Entry)
	}
	if _, err := c.EntryFunc(); err != nil {
		t.Fatal(err)
	}
}

func TestSubstReg(t *testing.T) {
	e := Add(R(3), Mul(R(4), R(3)))
	out := SubstReg(e, 3, 9)
	if got := ExprString(out); got != "(%9 + (%4 * %9))" {
		t.Fatalf("SubstReg = %q", got)
	}
	// Original expression untouched (Bin nodes rebuilt).
	if got := ExprString(e); got != "(%3 + (%4 * %3))" {
		t.Fatalf("original mutated: %q", got)
	}
}

func TestSubstRegBlock(t *testing.T) {
	b := NewBuilder("sub")
	b.IntArray("a", 8)
	fb := b.Func("main")
	fb.Loop(C(0), C(8), C(1), func(i Expr) {
		fb.Load("a", i, "")
	})
	p := b.MustProgram()
	f, _ := p.Func("main")
	loop := f.Body[0].(*Loop)
	SubstRegBlock(loop.Body, loop.IVReg, 42)
	out := Print(p)
	if !strings.Contains(out, "a[%42]") {
		t.Fatalf("IV not substituted:\n%s", out)
	}
}

func TestCloneUnknownStmtPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("CloneStmt of unknown statement did not panic")
		}
	}()
	type bogus struct{ Stmt }
	CloneStmt(bogus{})
}
