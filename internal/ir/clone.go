package ir

// Clone deep-copies a program so codegen can transform it without mutating
// the application's canonical IR (each planner iteration starts from the
// original).
func Clone(p *Program) *Program {
	out := &Program{Name: p.Name, Entry: p.Entry}
	for _, o := range p.Objects {
		oc := *o
		oc.Fields = append([]Field(nil), o.Fields...)
		out.Objects = append(out.Objects, &oc)
	}
	for _, f := range p.Funcs {
		fc := &Func{
			Name:           f.Name,
			Params:         append([]string(nil), f.Params...),
			NumRegs:        f.NumRegs,
			NoSharedWrites: f.NoSharedWrites,
		}
		fc.Body = CloneBlock(f.Body)
		out.Funcs = append(out.Funcs, fc)
	}
	return out
}

// CloneForEntry clones p with a different entry function — the
// multithreaded drivers re-enter a program at its per-thread kernel.
func CloneForEntry(p *Program, entry string) *Program {
	out := Clone(p)
	out.Entry = entry
	return out
}

// CloneBlock deep-copies a statement list.
func CloneBlock(body []Stmt) []Stmt {
	if body == nil {
		return nil
	}
	out := make([]Stmt, len(body))
	for i, s := range body {
		out[i] = CloneStmt(s)
	}
	return out
}

// CloneStmt deep-copies one statement.
func CloneStmt(s Stmt) Stmt {
	switch st := s.(type) {
	case *Loop:
		return &Loop{
			Name:  st.Name,
			IVReg: st.IVReg,
			Start: CloneExpr(st.Start),
			End:   CloneExpr(st.End),
			Step:  CloneExpr(st.Step),
			Body:  CloneBlock(st.Body),
		}
	case *Load:
		return &Load{Dst: st.Dst, Obj: st.Obj, Index: CloneExpr(st.Index), Field: st.Field, Native: st.Native}
	case *Store:
		return &Store{Obj: st.Obj, Index: CloneExpr(st.Index), Field: st.Field, Val: CloneExpr(st.Val), Native: st.Native, NoFetch: st.NoFetch}
	case *Assign:
		return &Assign{Dst: st.Dst, Val: CloneExpr(st.Val)}
	case *If:
		return &If{Cond: CloneExpr(st.Cond), Then: CloneBlock(st.Then), Else: CloneBlock(st.Else)}
	case *Call:
		args := make([]Expr, len(st.Args))
		for i, a := range st.Args {
			args[i] = CloneExpr(a)
		}
		return &Call{Dst: st.Dst, Callee: st.Callee, Args: args, Offload: st.Offload}
	case *Return:
		if st.Val == nil {
			return &Return{}
		}
		return &Return{Val: CloneExpr(st.Val)}
	case *Prefetch:
		return &Prefetch{Obj: st.Obj, Index: CloneExpr(st.Index), Field: st.Field}
	case *BatchPrefetch:
		entries := make([]PrefetchRef, len(st.Entries))
		for i, e := range st.Entries {
			entries[i] = PrefetchRef{Obj: e.Obj, Index: CloneExpr(e.Index), Field: e.Field}
		}
		return &BatchPrefetch{Entries: entries}
	case *Evict:
		return &Evict{Obj: st.Obj, Index: CloneExpr(st.Index)}
	case *Fence:
		return &Fence{}
	case *Release:
		return &Release{Obj: st.Obj}
	case *Intrinsic:
		return &Intrinsic{
			Kind: st.Kind,
			Dst:  cloneTensor(st.Dst),
			A:    cloneTensor(st.A),
			B:    cloneTensor(st.B),
		}
	default:
		panic("ir: CloneStmt of unknown statement")
	}
}

func cloneTensor(t TensorRef) TensorRef {
	out := t
	if t.Off != nil {
		out.Off = CloneExpr(t.Off)
	}
	return out
}

// CloneExpr deep-copies an expression.
func CloneExpr(e Expr) Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case *Const:
		c := *x
		return &c
	case *ConstF:
		c := *x
		return &c
	case *Reg:
		c := *x
		return &c
	case *Param:
		c := *x
		return &c
	case *Bin:
		return &Bin{Op: x.Op, A: CloneExpr(x.A), B: CloneExpr(x.B)}
	case *Un:
		return &Un{Op: x.Op, A: CloneExpr(x.A)}
	default:
		panic("ir: CloneExpr of unknown expression")
	}
}

// SubstReg rewrites every Reg reference from to to within an expression,
// returning the rewritten expression (used by loop fusion to merge
// induction variables).
func SubstReg(e Expr, from, to int) Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case *Reg:
		if x.ID == from {
			return &Reg{ID: to}
		}
		return x
	case *Bin:
		return &Bin{Op: x.Op, A: SubstReg(x.A, from, to), B: SubstReg(x.B, from, to)}
	case *Un:
		return &Un{Op: x.Op, A: SubstReg(x.A, from, to)}
	default:
		return x
	}
}

// SubstRegBlock applies SubstReg to every expression in a block, in place.
func SubstRegBlock(body []Stmt, from, to int) {
	for _, s := range body {
		switch st := s.(type) {
		case *Loop:
			st.Start = SubstReg(st.Start, from, to)
			st.End = SubstReg(st.End, from, to)
			st.Step = SubstReg(st.Step, from, to)
			SubstRegBlock(st.Body, from, to)
		case *Load:
			st.Index = SubstReg(st.Index, from, to)
		case *Store:
			st.Index = SubstReg(st.Index, from, to)
			st.Val = SubstReg(st.Val, from, to)
		case *Assign:
			st.Val = SubstReg(st.Val, from, to)
		case *If:
			st.Cond = SubstReg(st.Cond, from, to)
			SubstRegBlock(st.Then, from, to)
			SubstRegBlock(st.Else, from, to)
		case *Call:
			for i, a := range st.Args {
				st.Args[i] = SubstReg(a, from, to)
			}
		case *Return:
			if st.Val != nil {
				st.Val = SubstReg(st.Val, from, to)
			}
		case *Prefetch:
			st.Index = SubstReg(st.Index, from, to)
		case *BatchPrefetch:
			for i := range st.Entries {
				st.Entries[i].Index = SubstReg(st.Entries[i].Index, from, to)
			}
		case *Evict:
			st.Index = SubstReg(st.Index, from, to)
		case *Intrinsic:
			st.Dst.Off = SubstReg(st.Dst.Off, from, to)
			st.A.Off = SubstReg(st.A.Off, from, to)
			st.B.Off = SubstReg(st.B.Off, from, to)
		}
	}
}
