// Package ir defines Mira's intermediate representation. It plays the role
// MLIR's remotable/rmem dialects play in the paper (§5.1): applications are
// expressed as programs over named memory objects, the analysis passes
// (internal/analysis) infer access patterns / lifetimes / batching from the
// IR, and codegen (internal/codegen) rewrites it — annotating accesses as
// native loads, inserting prefetch and eviction-hint operations, fusing
// loops — before the executor (internal/exec) runs it against a runtime.
//
// The IR is deliberately small but covers the constructs the paper
// analyzes: counted loops with affine index arithmetic, indirect indices
// (B[A[i]]), struct-typed arrays with per-field access (selective
// transmission), conditionals, calls (offloadable), and coarse tensor
// intrinsics for ML workloads whose access patterns the analyzer knows
// natively (the paper's GPT-2 runs on ONNX operators the same way).
package ir

import "fmt"

// Program is a whole application: its allocation sites (Objects) and
// functions. Entry names the function executed first.
type Program struct {
	Name    string
	Objects []*Object
	Funcs   []*Func
	Entry   string
}

// Object is one allocation site: a 1-D array of Count fixed-size elements,
// optionally structured into Fields. Objects are the unit the planner
// assigns to cache sections (§4.1 "we further nail down the analysis scope
// to large objects").
type Object struct {
	Name      string
	ElemBytes int
	Count     int64
	// Fields structures each element; empty means one unnamed scalar
	// field covering the whole element.
	Fields []Field
	// Float declares the element interpretation for whole-element
	// loads/stores when Fields is empty.
	Float bool
	// Local pins the object to local memory (stacks, synchronization
	// state — the paper never places stack or code in far memory).
	Local bool
}

// Field is a named byte range within an element.
type Field struct {
	Name   string
	Offset int
	Bytes  int
	Float  bool
}

// SizeBytes is the object's total footprint.
func (o *Object) SizeBytes() int64 { return int64(o.ElemBytes) * o.Count }

// FieldByName resolves a field; the empty name resolves to the
// whole-element pseudo-field.
func (o *Object) FieldByName(name string) (Field, bool) {
	if name == "" {
		return Field{Name: "", Offset: 0, Bytes: o.ElemBytes, Float: o.Float}, true
	}
	for _, f := range o.Fields {
		if f.Name == name {
			return f, true
		}
	}
	return Field{}, false
}

// Func is one function: scalar parameters and a statement body. Registers
// are function-local scalar slots (SSA-lite: they may be reassigned, e.g.
// reduction accumulators).
type Func struct {
	Name    string
	Params  []string
	Body    []Stmt
	NumRegs int
	// NoSharedWrites marks functions verified free of shared writable
	// data, the precondition for offloading (§4.8). The builder sets it;
	// analysis re-verifies.
	NoSharedWrites bool
}

// Object resolves an object by name.
func (p *Program) Object(name string) (*Object, bool) {
	for _, o := range p.Objects {
		if o.Name == name {
			return o, true
		}
	}
	return nil, false
}

// Func resolves a function by name.
func (p *Program) Func(name string) (*Func, bool) {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f, true
		}
	}
	return nil, false
}

// EntryFunc returns the entry function.
func (p *Program) EntryFunc() (*Func, error) {
	f, ok := p.Func(p.Entry)
	if !ok {
		return nil, fmt.Errorf("ir: program %q: entry function %q not found", p.Name, p.Entry)
	}
	return f, nil
}

// ---- Statements ----

// Stmt is one IR statement.
type Stmt interface{ stmt() }

// Loop is a counted loop: for iv := Start; iv < End; iv += Step. The
// induction variable lives in register IVReg; analysis recognizes affine
// expressions over IVRegs (scalar evolution, §5.2.2).
type Loop struct {
	Name  string
	IVReg int
	Start Expr
	End   Expr
	Step  Expr
	Body  []Stmt
}

// Load reads Obj[Index].Field into register Dst.
type Load struct {
	Dst   int
	Obj   string
	Index Expr
	Field string
	// Native marks the access as compiled to a native memory load
	// (§4.4): codegen sets it when analysis proves the line resident.
	Native bool
}

// Store writes Val to Obj[Index].Field.
type Store struct {
	Obj    string
	Index  Expr
	Field  string
	Val    Expr
	Native bool
	// NoFetch marks a store the compiler proved will overwrite whole
	// cache lines: misses allocate without fetching (§4.5 read/write
	// optimization).
	NoFetch bool
}

// Assign evaluates Val into register Dst.
type Assign struct {
	Dst int
	Val Expr
}

// If branches on Cond != 0.
type If struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
}

// Call invokes Callee with scalar arguments bound to its parameters. If Dst
// is >= 0, the callee's return value lands there. Offload marks the call as
// executed on the far-memory node (§4.8); codegen sets it.
type Call struct {
	Dst     int
	Callee  string
	Args    []Expr
	Offload bool
}

// Return ends the enclosing function, yielding Val (may be nil).
type Return struct {
	Val Expr
}

// Prefetch asynchronously fetches the line holding Obj[Index].Field (§4.5).
// Codegen inserts these one network round-trip ahead of the access.
type Prefetch struct {
	Obj   string
	Index Expr
	Field string
}

// BatchPrefetch fetches several lines — possibly of different objects — in
// a single scatter-gather message (§4.5 data access batching). Codegen emits
// one per fused-loop iteration group.
type BatchPrefetch struct {
	Entries []PrefetchRef
}

// PrefetchRef is one element of a BatchPrefetch.
type PrefetchRef struct {
	Obj   string
	Index Expr
	Field string
}

// Evict marks the line holding Obj[Index] evictable and schedules an
// asynchronous write-back (§4.5 eviction hints). Codegen inserts these after
// the lifetime-analysis last access.
type Evict struct {
	Obj   string
	Index Expr
}

// Fence blocks until all in-flight asynchronous operations (prefetches,
// flushes) complete. Codegen emits one before offloaded calls.
type Fence struct{}

// Release ends an object's cached lifetime (§4.1 "we end a section as soon
// as its lifetime in the program ends"): every cached line is dropped,
// dirty ones flushed asynchronously, freeing local memory for live data.
// Codegen emits one after the object's last use.
type Release struct {
	Obj string
}

// Intrinsic is a coarse tensor operation over float64 matrices stored in
// objects. The analyzer knows each kind's access pattern without inspecting
// loops, the way the paper's compiler understands ONNX operators.
type Intrinsic struct {
	Kind IntrKind
	Dst  TensorRef
	A    TensorRef
	B    TensorRef // unused for unary kinds
}

// TensorRef addresses a Rows x Cols row-major float64 matrix starting at
// element offset Off within object Obj.
type TensorRef struct {
	Obj  string
	Off  Expr
	Rows int64
	Cols int64
}

// Elems reports the element count of the matrix view.
func (t TensorRef) Elems() int64 { return t.Rows * t.Cols }

// IntrKind enumerates tensor intrinsics.
type IntrKind int

const (
	// IntrMatMul computes Dst[M,N] += A[M,K] * B[K,N].
	IntrMatMul IntrKind = iota
	// IntrMatMulT computes Dst[M,N] += A[M,K] * B[N,K]^T (B stored
	// row-major with N rows of K columns) — the attention-score shape.
	IntrMatMulT
	// IntrAdd computes Dst = A + B elementwise.
	IntrAdd
	// IntrLayerNorm normalizes each row of A into Dst.
	IntrLayerNorm
	// IntrSoftmax applies a rowwise softmax of A into Dst.
	IntrSoftmax
	// IntrGelu applies the GELU activation elementwise.
	IntrGelu
	// IntrCopy copies A into Dst.
	IntrCopy
	// IntrZero clears Dst (no source operand).
	IntrZero
)

func (k IntrKind) String() string {
	switch k {
	case IntrMatMul:
		return "matmul"
	case IntrMatMulT:
		return "matmul_t"
	case IntrAdd:
		return "add"
	case IntrLayerNorm:
		return "layernorm"
	case IntrSoftmax:
		return "softmax"
	case IntrGelu:
		return "gelu"
	case IntrCopy:
		return "copy"
	case IntrZero:
		return "zero"
	default:
		return fmt.Sprintf("IntrKind(%d)", int(k))
	}
}

func (*Loop) stmt()          {}
func (*Load) stmt()          {}
func (*Store) stmt()         {}
func (*Assign) stmt()        {}
func (*If) stmt()            {}
func (*Call) stmt()          {}
func (*Return) stmt()        {}
func (*Prefetch) stmt()      {}
func (*BatchPrefetch) stmt() {}
func (*Evict) stmt()         {}
func (*Fence) stmt()         {}
func (*Release) stmt()       {}
func (*Intrinsic) stmt()     {}

// Walk visits every statement in body recursively, pre-order. The visitor
// returns false to prune a subtree.
func Walk(body []Stmt, fn func(Stmt) bool) {
	for _, s := range body {
		if !fn(s) {
			continue
		}
		switch st := s.(type) {
		case *Loop:
			Walk(st.Body, fn)
		case *If:
			Walk(st.Then, fn)
			Walk(st.Else, fn)
		}
	}
}
