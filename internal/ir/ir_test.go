package ir

import (
	"strings"
	"testing"
)

// buildGraphExample constructs the Fig. 4 graph-traversal program:
//
//	for i in 0..nEdges: nodes[edges[i].from].count++; nodes[edges[i].to].count++
func buildGraphExample(t *testing.T) *Program {
	t.Helper()
	b := NewBuilder("graph")
	b.Object("edges", 16, 1000, F("from", 0, 8), F("to", 8, 8))
	b.Object("nodes", 128, 100, F("count", 0, 8))
	fb := b.Func("traverse")
	fb.Loop(C(0), C(1000), C(1), func(i Expr) {
		from := fb.Load("edges", i, "from")
		to := fb.Load("edges", i, "to")
		c1 := fb.Load("nodes", from, "count")
		fb.Store("nodes", from, "count", Add(c1, C(1)))
		c2 := fb.Load("nodes", to, "count")
		fb.Store("nodes", to, "count", Add(c2, C(1)))
	})
	p, err := b.Program()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestBuildAndValidateGraphExample(t *testing.T) {
	p := buildGraphExample(t)
	if p.Entry != "traverse" {
		t.Fatalf("entry = %q, want traverse", p.Entry)
	}
	f, err := p.EntryFunc()
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Body) != 1 {
		t.Fatalf("body has %d stmts, want 1 loop", len(f.Body))
	}
	loop, ok := f.Body[0].(*Loop)
	if !ok {
		t.Fatalf("body[0] is %T, want *Loop", f.Body[0])
	}
	if len(loop.Body) != 6 {
		t.Fatalf("loop body has %d stmts, want 6", len(loop.Body))
	}
}

func TestObjectFieldLookup(t *testing.T) {
	p := buildGraphExample(t)
	o, ok := p.Object("edges")
	if !ok {
		t.Fatal("edges object missing")
	}
	if o.SizeBytes() != 16000 {
		t.Fatalf("SizeBytes = %d, want 16000", o.SizeBytes())
	}
	f, ok := o.FieldByName("to")
	if !ok || f.Offset != 8 || f.Bytes != 8 {
		t.Fatalf("field to = %+v, %v", f, ok)
	}
	if _, ok := o.FieldByName("nope"); ok {
		t.Fatal("bogus field resolved")
	}
	whole, ok := o.FieldByName("")
	if !ok || whole.Bytes != 16 || whole.Offset != 0 {
		t.Fatalf("whole-element field = %+v", whole)
	}
}

func TestValidateCatchesBadPrograms(t *testing.T) {
	mk := func(mutate func(b *Builder, fb *FuncBuilder)) error {
		b := NewBuilder("p")
		b.IntArray("a", 10)
		fb := b.Func("main")
		mutate(b, fb)
		_, err := b.Program()
		return err
	}

	if err := mk(func(b *Builder, fb *FuncBuilder) {
		fb.Load("missing", C(0), "")
	}); err == nil {
		t.Error("load of undefined object accepted")
	}

	if err := mk(func(b *Builder, fb *FuncBuilder) {
		fb.Load("a", C(0), "ghost")
	}); err == nil {
		t.Error("load of undefined field accepted")
	}

	if err := mk(func(b *Builder, fb *FuncBuilder) {
		fb.Call("nothere")
	}); err == nil {
		t.Error("call of undefined function accepted")
	}

	if err := mk(func(b *Builder, fb *FuncBuilder) {
		fb.Store("a", P("ghostparam"), "", C(1))
	}); err == nil {
		t.Error("reference to undefined parameter accepted")
	}

	if err := mk(func(b *Builder, fb *FuncBuilder) {
		fb.emit(&Assign{Dst: 99, Val: C(1)})
	}); err == nil {
		t.Error("out-of-range register accepted")
	}
}

func TestValidateObjectShape(t *testing.T) {
	b := NewBuilder("p")
	b.Object("bad", 8, 4, F("f", 4, 8)) // field overruns element
	b.Func("main")
	if _, err := b.Program(); err == nil {
		t.Fatal("field overrunning element accepted")
	}

	b2 := NewBuilder("p")
	b2.IntArray("dup", 1)
	b2.IntArray("dup", 1)
	b2.Func("main")
	if _, err := b2.Program(); err == nil {
		t.Fatal("duplicate object accepted")
	}
}

func TestValidateCallArity(t *testing.T) {
	b := NewBuilder("p")
	b.Func("callee", "x", "y")
	fb := b.Func("main")
	fb.Call("callee", C(1)) // one arg, needs two
	b.SetEntry("main")
	if _, err := b.Program(); err == nil {
		t.Fatal("arity mismatch accepted")
	}
}

func TestValidateMatMulDims(t *testing.T) {
	b := NewBuilder("p")
	b.FloatArray("m", 1000)
	fb := b.Func("main")
	fb.MatMul(T("m", C(0), 4, 4), T("m", C(16), 4, 3), T("m", C(32), 4, 4)) // K mismatch
	if _, err := b.Program(); err == nil {
		t.Fatal("matmul dim mismatch accepted")
	}
}

func TestValidateIntrinsicNeedsFloatObject(t *testing.T) {
	b := NewBuilder("p")
	b.IntArray("ints", 64)
	fb := b.Func("main")
	fb.Unary(IntrCopy, T("ints", C(0), 4, 4), T("ints", C(16), 4, 4))
	if _, err := b.Program(); err == nil {
		t.Fatal("intrinsic over int object accepted")
	}
}

func TestWalkVisitsNested(t *testing.T) {
	p := buildGraphExample(t)
	f, _ := p.EntryFunc()
	var loads, stores int
	Walk(f.Body, func(s Stmt) bool {
		switch s.(type) {
		case *Load:
			loads++
		case *Store:
			stores++
		}
		return true
	})
	if loads != 4 || stores != 2 {
		t.Fatalf("walk found %d loads %d stores, want 4/2", loads, stores)
	}
}

func TestWalkPrune(t *testing.T) {
	p := buildGraphExample(t)
	f, _ := p.EntryFunc()
	count := 0
	Walk(f.Body, func(s Stmt) bool {
		count++
		_, isLoop := s.(*Loop)
		return !isLoop // prune loop bodies
	})
	if count != 1 {
		t.Fatalf("pruned walk visited %d stmts, want 1", count)
	}
}

func TestExprOps(t *testing.T) {
	e := Add(Mul(C(2), P("n")), Neg(R(0)))
	if got := ExprOps(e); got != 3 {
		t.Fatalf("ExprOps = %d, want 3", got)
	}
	if got := ExprOps(C(1)); got != 0 {
		t.Fatalf("ExprOps(const) = %d, want 0", got)
	}
}

func TestPrintContainsStructure(t *testing.T) {
	p := buildGraphExample(t)
	out := Print(p)
	for _, want := range []string{
		"program graph",
		"object edges: 1000 x 16B",
		"from@0+8",
		"func traverse()",
		"rmem.load edges[",
		"rmem.store nodes[",
		".count",
		"loop %0 = 0 .. 1000 step 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("printed IR missing %q:\n%s", want, out)
		}
	}
}

func TestPrintNativeAnnotation(t *testing.T) {
	p := buildGraphExample(t)
	f, _ := p.EntryFunc()
	loop := f.Body[0].(*Loop)
	loop.Body[0].(*Load).Native = true
	out := Print(p)
	if !strings.Contains(out, "native.load") {
		t.Fatalf("native annotation not printed:\n%s", out)
	}
}

func TestExprString(t *testing.T) {
	cases := []struct {
		e    Expr
		want string
	}{
		{C(7), "7"},
		{CF(1.5), "1.5"},
		{R(3), "%3"},
		{P("n"), "$n"},
		{Add(C(1), C(2)), "(1 + 2)"},
		{Min(C(1), C(2)), "min(1, 2)"},
		{Not(C(0)), "!(0)"},
	}
	for _, tc := range cases {
		if got := ExprString(tc.e); got != tc.want {
			t.Errorf("ExprString = %q, want %q", got, tc.want)
		}
	}
}

func TestBuilderIfAndVar(t *testing.T) {
	b := NewBuilder("p")
	b.IntArray("a", 10)
	fb := b.Func("main", "n")
	acc := fb.Var(C(0))
	fb.If(Lt(P("n"), C(5)), func() {
		fb.Set(acc, Add(R(acc.ID), C(1)))
	}, func() {
		fb.Set(acc, Sub(R(acc.ID), C(1)))
	})
	fb.Return(R(acc.ID))
	p, err := b.Program()
	if err != nil {
		t.Fatal(err)
	}
	f, _ := p.EntryFunc()
	ifStmt, ok := f.Body[1].(*If)
	if !ok {
		t.Fatalf("body[1] = %T, want *If", f.Body[1])
	}
	if len(ifStmt.Then) != 1 || len(ifStmt.Else) != 1 {
		t.Fatalf("branch sizes %d/%d, want 1/1", len(ifStmt.Then), len(ifStmt.Else))
	}
}

func TestMustProgramPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustProgram did not panic on invalid program")
		}
	}()
	b := NewBuilder("p")
	fb := b.Func("main")
	fb.Load("ghost", C(0), "")
	b.MustProgram()
}

func TestLocalArrayFlag(t *testing.T) {
	b := NewBuilder("p")
	o := b.LocalArray("stack", 16)
	b.Func("main")
	if !o.Local {
		t.Fatal("LocalArray not marked local")
	}
	if _, err := b.Program(); err != nil {
		t.Fatal(err)
	}
}
