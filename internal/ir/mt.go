package ir

import "strconv"

// ReplicaName is the name object or function name carries in replica i of
// a merged multithreaded program (see MergeReplicas).
func ReplicaName(name string, i int) string {
	return name + "#t" + strconv.Itoa(i)
}

// MergeReplicas builds one program holding n independent renamed copies of
// p: every object and function of copy i is suffixed "#t<i>", and every
// reference (loads, stores, prefetches, eviction hints, releases, tensor
// intrinsics, calls) is rewritten to the suffixed names. The multithreaded
// drivers bind the merged program to ONE runtime, so n simulated threads
// with private data contend for the same cache sections, write-back
// queues, and swap pool — thread i enters at ReplicaName(p.Entry, i).
//
// The merged program's Entry is replica 0's entry.
func MergeReplicas(p *Program, n int) *Program {
	out := &Program{Name: p.Name, Entry: ReplicaName(p.Entry, 0)}
	for i := 0; i < n; i++ {
		c := Clone(p)
		rename := func(name string) string { return ReplicaName(name, i) }
		for _, o := range c.Objects {
			o.Name = rename(o.Name)
		}
		for _, f := range c.Funcs {
			f.Name = rename(f.Name)
			renameBlock(f.Body, rename)
		}
		out.Objects = append(out.Objects, c.Objects...)
		out.Funcs = append(out.Funcs, c.Funcs...)
	}
	return out
}

// renameBlock rewrites every object and callee reference in a statement
// block, in place.
func renameBlock(body []Stmt, rename func(string) string) {
	for _, s := range body {
		switch st := s.(type) {
		case *Loop:
			renameBlock(st.Body, rename)
		case *Load:
			st.Obj = rename(st.Obj)
		case *Store:
			st.Obj = rename(st.Obj)
		case *If:
			renameBlock(st.Then, rename)
			renameBlock(st.Else, rename)
		case *Call:
			st.Callee = rename(st.Callee)
		case *Prefetch:
			st.Obj = rename(st.Obj)
		case *BatchPrefetch:
			for i := range st.Entries {
				st.Entries[i].Obj = rename(st.Entries[i].Obj)
			}
		case *Evict:
			st.Obj = rename(st.Obj)
		case *Release:
			st.Obj = rename(st.Obj)
		case *Intrinsic:
			for _, t := range []*TensorRef{&st.Dst, &st.A, &st.B} {
				if t.Obj != "" {
					t.Obj = rename(t.Obj)
				}
			}
		}
	}
}
