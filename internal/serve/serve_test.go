package serve

import (
	"bytes"
	"testing"

	"mira/internal/sim"
	"mira/internal/trace"
)

func healthyOpts(seed uint64) Options {
	return Options{Seed: seed, Admission: true, Elastic: true}
}

func chaosOpts(seed uint64) Options {
	o := healthyOpts(seed)
	o.Faults = "chaos"
	return o
}

func TestServeHealthyMixCompletes(t *testing.T) {
	res, err := Run(DefaultTenantMix(), healthyOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tenants) != 3 {
		t.Fatalf("tenants = %d", len(res.Tenants))
	}
	for _, tr := range res.Tenants {
		if tr.Admitted+tr.RejectedTotal() != tr.Requests {
			t.Errorf("tenant %q: admitted %d + rejected %d != requests %d",
				tr.Name, tr.Admitted, tr.RejectedTotal(), tr.Requests)
		}
		if tr.Completed != tr.Admitted {
			t.Errorf("tenant %q: completed %d != admitted %d", tr.Name, tr.Completed, tr.Admitted)
		}
		if tr.Admitted == 0 {
			t.Errorf("tenant %q admitted nothing", tr.Name)
		}
		if tr.Admitted > 0 && (tr.P50 <= 0 || tr.P99 < tr.P50) {
			t.Errorf("tenant %q: implausible percentiles p50=%v p99=%v", tr.Name, tr.P50, tr.P99)
		}
	}
}

// Identical seeds must reproduce the whole serving run byte for byte:
// trace, metrics, admission decisions, and far-memory contents.
func TestServeDeterministic(t *testing.T) {
	run := func() ([]byte, []byte, *Result) {
		tr := trace.New()
		o := chaosOpts(7)
		o.Trace = tr
		res, err := Run(DefaultTenantMix(), o)
		if err != nil {
			t.Fatal(err)
		}
		var tb, mb bytes.Buffer
		if err := tr.WriteTrace(&tb); err != nil {
			t.Fatal(err)
		}
		if err := tr.Registry().WriteJSON(&mb); err != nil {
			t.Fatal(err)
		}
		return tb.Bytes(), mb.Bytes(), res
	}
	t1, m1, r1 := run()
	t2, m2, r2 := run()
	if !bytes.Equal(t1, t2) {
		t.Error("traces diverge across identical seeds")
	}
	if !bytes.Equal(m1, m2) {
		t.Error("metrics diverge across identical seeds")
	}
	if r1.Elapsed != r2.Elapsed {
		t.Errorf("elapsed %v vs %v", r1.Elapsed, r2.Elapsed)
	}
	for i := range r1.Tenants {
		a, b := r1.Tenants[i], r2.Tenants[i]
		if a.Admitted != b.Admitted || a.RejectedTotal() != b.RejectedTotal() {
			t.Errorf("tenant %q: admission decisions diverge (%d/%d vs %d/%d)",
				a.Name, a.Admitted, a.RejectedTotal(), b.Admitted, b.RejectedTotal())
		}
		for name, d1 := range a.Dumps {
			if !bytes.Equal(d1, b.Dumps[name]) {
				t.Errorf("tenant %q object %q: far memory diverges", a.Name, name)
			}
		}
	}
	// A different seed must actually change the schedule.
	_, _, r3 := func() ([]byte, []byte, *Result) {
		res, err := Run(DefaultTenantMix(), chaosOpts(8))
		if err != nil {
			t.Fatal(err)
		}
		return nil, nil, res
	}()
	if r3.Elapsed == r1.Elapsed {
		t.Error("different seeds produced identical elapsed time (suspicious)")
	}
}

// Chaos serving must lose no data: after crash-wipe + partition on node 0
// of every tenant's pool, each tenant's far memory must equal a fault-free
// native replay of exactly its admitted request count.
func TestServeChaosIntegrity(t *testing.T) {
	mix := DefaultTenantMix()
	res, err := Run(mix, chaosOpts(3))
	if err != nil {
		t.Fatal(err)
	}
	for i, tr := range res.Tenants {
		want, err := NativeReplay(mix[i], tr.Admitted)
		if err != nil {
			t.Fatal(err)
		}
		for name, d := range tr.Dumps {
			if !bytes.Equal(d, want[name]) {
				t.Errorf("tenant %q object %q: chaos run diverges from native replay of %d requests",
					tr.Name, name, tr.Admitted)
			}
		}
	}
}

// Under chaos, admission control must shed load and cut the admitted-tail:
// p99 of admitted requests strictly below the admit-everything run.
func TestServeAdmissionCutsTailUnderChaos(t *testing.T) {
	on, err := Run(DefaultTenantMix(), chaosOpts(5))
	if err != nil {
		t.Fatal(err)
	}
	offOpts := chaosOpts(5)
	offOpts.Admission = false
	off, err := Run(DefaultTenantMix(), offOpts)
	if err != nil {
		t.Fatal(err)
	}
	var rejected int
	worseSomewhere := false
	for i := range on.Tenants {
		rejected += on.Tenants[i].RejectedTotal()
		if on.Tenants[i].P99 < off.Tenants[i].P99 {
			worseSomewhere = true
		}
	}
	if rejected == 0 {
		t.Error("admission control rejected nothing under chaos")
	}
	if !worseSomewhere {
		t.Error("admission control did not improve any tenant's p99 under chaos")
	}
	for _, tr := range off.Tenants {
		if tr.RejectedTotal() != 0 {
			t.Errorf("tenant %q rejected %d requests with admission off", tr.Name, tr.RejectedTotal())
		}
		if tr.Admitted != tr.Requests {
			t.Errorf("tenant %q: admission off admitted %d/%d", tr.Name, tr.Admitted, tr.Requests)
		}
	}
}

// The elastic reclaimer must take at least one lease when one tenant idles
// while another is backlogged, and data must survive the lend/return cycle
// (integrity is covered by the replay test; here we check the lease fires
// and bookkeeping balances).
func TestServeElasticLeases(t *testing.T) {
	mix := DefaultTenantMix()
	// Make "sum" burst early then idle: all arrivals packed tight, then
	// nothing — while "scan" trickles on, it can borrow sum's DRAM.
	mix[0].Requests = 8
	mix[0].Mean = 10 * sim.Microsecond
	mix[1].Requests = 24
	mix[1].Mean = 400 * sim.Microsecond
	mix[2].Requests = 24
	mix[2].Mean = 400 * sim.Microsecond
	o := healthyOpts(11)
	o.IdleAfter = 200 * sim.Microsecond
	o.ReclaimInterval = 100 * sim.Microsecond
	res, err := Run(mix, o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Leases == 0 {
		t.Error("no elastic-reclaim lease despite an idle tenant and a loaded one")
	}
	for i, tr := range res.Tenants {
		want, err := NativeReplay(mix[i], tr.Admitted)
		if err != nil {
			t.Fatal(err)
		}
		for name, d := range tr.Dumps {
			if !bytes.Equal(d, want[name]) {
				t.Errorf("tenant %q object %q diverges after elastic reclaim", tr.Name, name)
			}
		}
	}
}

func TestServeValidation(t *testing.T) {
	if _, err := Run(nil, Options{}); err == nil {
		t.Error("empty mix accepted")
	}
	mix := DefaultTenantMix()
	mix[1].Workers = 2 // mutating tenant
	if _, err := Run(mix, Options{Seed: 1}); err == nil {
		t.Error("multi-worker mutating tenant accepted")
	}
	mix = DefaultTenantMix()
	mix[2].Name = mix[0].Name
	if _, err := Run(mix, Options{Seed: 1}); err == nil {
		t.Error("duplicate tenant name accepted")
	}
}
