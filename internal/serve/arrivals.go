package serve

import (
	"math"

	"mira/internal/sim"
)

// Process selects a tenant's arrival process.
type Process string

// The arrival processes.
const (
	// Poisson draws exponential interarrivals at a fixed rate — the
	// classic open-loop serving assumption.
	Poisson Process = "poisson"
	// Bursty alternates on/off phases: during a burst the rate is Burst×
	// the mean, between bursts it is 1/Burst× — the adversarial load that
	// makes admission control earn its keep.
	Bursty Process = "bursty"
)

// burstPhase is the length of one on- or off-phase, in mean interarrivals.
const burstPhase = 16

// genArrivals pre-generates an open-loop arrival schedule: n absolute
// arrival instants starting at virtual time zero. The schedule depends only
// on (rng stream, n, mean, process, burst), so identical seeds reproduce
// identical workloads byte for byte.
func genArrivals(rng *sim.RNG, p Process, n int, mean sim.Duration, burst float64) []sim.Time {
	if burst < 1 {
		burst = 4
	}
	out := make([]sim.Time, n)
	var t sim.Time
	phase := sim.Duration(burstPhase * int64(mean))
	for i := 0; i < n; i++ {
		m := float64(mean)
		if p == Bursty {
			// Phase index at the current instant decides the local rate.
			if (int64(t)/int64(phase))%2 == 0 {
				m /= burst // on-phase: burst× the mean rate
			} else {
				m *= burst // off-phase: trickle
			}
		}
		// Exponential interarrival via inverse transform; U in [0,1) so
		// 1-U never hits zero.
		dt := sim.Duration(-math.Log(1-rng.Float64()) * m)
		if dt < 1 {
			dt = 1
		}
		t = t.Add(dt)
		out[i] = t
	}
	return out
}
