package serve

import (
	"mira/internal/apps/arraysum"
	"mira/internal/apps/seqscan"
	"mira/internal/apps/stridescan"
	"mira/internal/sim"
)

// DefaultTenantMix is the canonical three-tenant serving mix used by the
// benchmarks, CI, and mira-serve: a read-only scan tenant with two workers
// and a high weight (the latency-sensitive service), a mutating sequential
// scan on Poisson arrivals, and a mutating strided scan on bursty arrivals
// (the tenant admission control has to tame).
func DefaultTenantMix() []TenantSpec {
	as := arraysum.New(arraysum.Config{N: 1 << 12, Seed: 1})
	sq := seqscan.New(seqscan.Config{N: 1 << 11, Seed: 1})
	st := stridescan.New(stridescan.Config{N: 1 << 11, Seed: 1})
	return []TenantSpec{
		{
			Name:     "sum",
			Workload: as,
			Weight:   3,
			Budget:   as.FullMemoryBytes() / 2,
			Workers:  2,
			Requests: 24,
			Mean:     60 * sim.Microsecond,
			Arrivals: Poisson,
			SLO:      2 * sim.Millisecond,
			QueueCap: 6,
		},
		{
			Name:     "scan",
			Workload: sq,
			Mutating: true,
			Weight:   1,
			Budget:   sq.FullMemoryBytes() / 2,
			Workers:  1,
			Requests: 16,
			Mean:     120 * sim.Microsecond,
			Arrivals: Poisson,
			SLO:      4 * sim.Millisecond,
			QueueCap: 4,
		},
		{
			Name:     "stride",
			Workload: st,
			Mutating: true,
			Weight:   1,
			Budget:   st.FullMemoryBytes() / 2,
			Workers:  1,
			Requests: 16,
			Mean:     150 * sim.Microsecond,
			Arrivals: Bursty,
			Burst:    4,
			SLO:      4 * sim.Millisecond,
			QueueCap: 4,
		},
	}
}
