// Package serve is the multi-tenant serving layer: an open-loop seeded
// workload generator drives a mix of tenants — each an existing Mira
// application bound to its own replicated far-memory pool — through one
// deterministic interleaved scheduler, with the co-located tenants
// contending for a single compute-side NIC under weighted-fair arbitration
// (internal/netmodel), elastic reclaim of idle tenants' local DRAM
// (rt.SetSectionScale), and admission control with load shedding: a bounded
// admission queue, deterministic rejection when the projected queueing
// delay exceeds a tenant's SLO, and a degraded read-only mode that sheds
// mutating requests while the transport breaker is open.
//
// Everything — arrivals, admission decisions, reclaim leases, fault
// injection — is a pure function of the seed and the virtual-time event
// order, so two runs with the same seed produce byte-identical traces,
// metrics, and far-memory contents, even under a chaos schedule that
// crash-wipes and partitions pool nodes mid-serving.
package serve

import (
	"fmt"

	"mira/internal/cluster"
	"mira/internal/exec"
	"mira/internal/farmem"
	"mira/internal/faults"
	"mira/internal/ir"
	"mira/internal/netmodel"
	"mira/internal/planner"
	"mira/internal/rt"
	"mira/internal/sim"
	"mira/internal/trace"
	"mira/internal/transport"
	"mira/internal/workload"
)

// Rejection reasons (keys of TenantResult.Rejected).
const (
	// RejectQueue sheds a request because the admission queue backlog
	// exceeded the tenant's QueueCap.
	RejectQueue = "queue"
	// RejectSLO sheds a request because queue wait plus the EWMA service
	// time projected past the tenant's SLO.
	RejectSLO = "slo"
	// RejectDegraded sheds a mutating request while the tenant's
	// transport breaker is open (degraded read-only mode).
	RejectDegraded = "degraded"
)

// TenantSpec describes one tenant of the serving mix.
type TenantSpec struct {
	// Name labels the tenant in metrics, traces, and link arbitration.
	Name string
	// Workload is the application every request executes once.
	Workload workload.Workload
	// Mutating marks workloads whose execution writes far memory.
	// Mutating tenants run single-worker (requests are not idempotent
	// and must serialize) and are shed while the breaker is open.
	Mutating bool
	// Weight is the tenant's weighted-fair link share (default 1).
	Weight float64
	// Budget is the tenant's local-DRAM budget handed to the planner.
	Budget int64
	// Workers is the tenant's worker-thread count (default 1; must be 1
	// when Mutating).
	Workers int
	// Requests is the open-loop arrival count.
	Requests int
	// Mean is the mean interarrival time.
	Mean sim.Duration
	// Arrivals selects the arrival process (default Poisson).
	Arrivals Process
	// Burst is the Bursty on-phase intensity (default 4).
	Burst float64
	// SLO bounds the projected per-request delay (queue wait + EWMA
	// service); 0 disables the SLO admission check.
	SLO sim.Duration
	// QueueCap bounds the admission queue backlog; 0 disables the
	// bounded-queue admission check.
	QueueCap int
}

// Options configures a serving run.
type Options struct {
	// Seed roots every derived stream (arrivals, placement, faults).
	Seed uint64
	// Admission enables admission control; without it every request is
	// admitted no matter the backlog.
	Admission bool
	// Elastic enables the reclaimer: idle tenants' cache sections are
	// shrunk so loaded tenants can grow, restored on reactivation.
	Elastic bool
	// Faults names a fault schedule (faults.Names) injected on node 0 of
	// every tenant's pool; "" or "none" serves fault-free.
	Faults string
	// Horizon places the fault schedule's windows; 0 estimates it from
	// the arrival schedules.
	Horizon sim.Duration
	// Nodes and Replicas shape each tenant's pool (defaults 2 and 2, so
	// one faulty node never loses data).
	Nodes, Replicas int
	// Trace collects spans and metrics (nil: metrics only, internally).
	Trace *trace.Tracer
	// ReclaimInterval is the reclaimer's polling period (default 200µs).
	ReclaimInterval sim.Duration
	// IdleAfter is how long without activity marks a tenant idle
	// (default 1ms).
	IdleAfter sim.Duration
}

// TenantResult is one tenant's serving outcome.
type TenantResult struct {
	Name      string
	Requests  int
	Admitted  int
	Completed int
	// Rejected counts shed requests by reason.
	Rejected map[string]int
	// P50/P95/P99/Max are exact percentiles over admitted requests'
	// latencies (completion − arrival).
	P50, P95, P99, Max sim.Duration
	// Dumps holds every far-placed object's post-flush far-memory
	// contents, for integrity comparison against a native replay.
	Dumps map[string][]byte
}

// RejectedTotal sums the shed requests.
func (t TenantResult) RejectedTotal() int {
	n := 0
	for _, v := range t.Rejected {
		n += v
	}
	return n
}

// Result is a serving run's outcome.
type Result struct {
	// Elapsed is the fork-join virtual time of the whole mix.
	Elapsed sim.Duration
	// Tenants reports per-tenant outcomes in spec order.
	Tenants []TenantResult
	// Leases counts elastic-reclaim leases taken.
	Leases int
	// BytesOnWire sums what actually crossed every tenant pool's links
	// (post-codec); BytesEffective adds back what the wire codecs saved.
	// Equal when compression is off.
	BytesOnWire    int64
	BytesEffective int64
}

// failFastPolicy is the pool-member transport policy: replicas are the
// retry, so members fail fast and trip their breakers early (the serving
// layer's degraded-mode signal).
func failFastPolicy() transport.Policy {
	p := transport.DefaultPolicy()
	p.MaxAttempts = 1
	p.BreakerThreshold = 2
	p.BreakerCooldown = 50 * sim.Microsecond
	return p
}

// tenant is one tenant's live serving state. All mutation happens from
// scheduler threads, which run one at a time — no locks.
type tenant struct {
	spec     TenantSpec
	rt       *rt.Runtime
	prog     *ir.Program
	params   map[string]exec.Value
	arrivals []sim.Time

	next       int // next unclaimed arrival index
	admitted   int
	completed  int
	rejected   map[string]int
	ewma       sim.Duration // EWMA of service time (admission projection)
	lastActive sim.Time
	shrunk     bool

	lat  *trace.Reservoir
	mAdm *trace.Counter
	mRej map[string]*trace.Counter
	trc  *trace.Buffer
}

// lease is one elastic-reclaim loan: the donor's sections are shrunk so the
// borrower's can grow. A single lease is outstanding at a time.
type lease struct {
	donor, borrower *tenant
}

// Run serves the tenant mix to completion and reports per-tenant outcomes.
func Run(specs []TenantSpec, opts Options) (*Result, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("serve: no tenants")
	}
	if opts.Nodes <= 0 {
		opts.Nodes = 2
	}
	if opts.Replicas <= 0 {
		opts.Replicas = 2
	}
	if opts.ReclaimInterval <= 0 {
		opts.ReclaimInterval = 200 * sim.Microsecond
	}
	if opts.IdleAfter <= 0 {
		opts.IdleAfter = sim.Millisecond
	}
	if opts.Faults == "none" {
		opts.Faults = ""
	}
	horizon := opts.Horizon
	seen := map[string]bool{}
	for i := range specs {
		s := &specs[i]
		if s.Name == "" || seen[s.Name] {
			return nil, fmt.Errorf("serve: tenant %d: missing or duplicate name %q", i, s.Name)
		}
		seen[s.Name] = true
		if s.Workers <= 0 {
			s.Workers = 1
		}
		if s.Mutating && s.Workers != 1 {
			return nil, fmt.Errorf("serve: tenant %q: mutating workloads are not idempotent and must run single-worker", s.Name)
		}
		if s.Requests <= 0 || s.Mean <= 0 {
			return nil, fmt.Errorf("serve: tenant %q: Requests and Mean must be positive", s.Name)
		}
		if s.Weight <= 0 {
			s.Weight = 1
		}
		if s.Arrivals == "" {
			s.Arrivals = Poisson
		}
		if est := sim.Duration(int64(s.Mean) * int64(s.Requests)); est > horizon {
			horizon = est
		}
	}

	reg := trace.NewRegistry()
	if opts.Trace != nil {
		reg = opts.Trace.Registry()
	}
	net := netmodel.DefaultConfig()
	bw := netmodel.NewBandwidth(net)

	tenants := make([]*tenant, len(specs))
	for i := range specs {
		t, err := buildTenant(specs[i], opts, net, horizon)
		if err != nil {
			return nil, err
		}
		bw.SetTenantWeight(t.spec.Name, t.spec.Weight)
		t.rt.ShareBandwidth(bw)
		t.rt.SetTrace(opts.Trace)
		t.lat = reg.Reservoir("serve.latency{tenant=" + t.spec.Name + "}")
		t.mAdm = reg.Counter("serve.admitted{tenant=" + t.spec.Name + "}")
		t.mRej = map[string]*trace.Counter{}
		for _, reason := range []string{RejectQueue, RejectSLO, RejectDegraded} {
			t.mRej[reason] = reg.Counter("serve.rejected{tenant=" + t.spec.Name + ",reason=" + reason + "}")
		}
		if opts.Trace != nil {
			t.trc = opts.Trace.Buffer("serve/" + t.spec.Name)
		}
		tenants[i] = t
	}

	res := &Result{}
	workers := 0
	for _, t := range tenants {
		workers += t.spec.Workers
	}
	n := workers
	if opts.Elastic {
		n++
	}
	g := sim.NewThreadGroup(n, 0)
	sch := sim.NewScheduler(g)
	var lv *lease
	for _, t := range tenants {
		for w := 0; w < t.spec.Workers; w++ {
			t := t
			sch.Spawn(func(th *sim.Thread) error {
				return serveWorker(th, t, bw, opts, &lv)
			})
		}
	}
	if opts.Elastic {
		sch.Spawn(func(th *sim.Thread) error {
			return reclaimer(th, tenants, opts, &lv, &res.Leases)
		})
	}
	if err := sch.Run(); err != nil {
		return nil, err
	}
	res.Elapsed = g.Elapsed()

	// Final flush + integrity dumps on a post-join clock: every queued
	// write-back reaches far memory (chaos windows are long over by the
	// time the clock passes the horizon).
	fclk := sim.NewClock(sim.Time(0).Add(res.Elapsed))
	for _, t := range tenants {
		if err := t.rt.FlushAll(fclk); err != nil {
			return nil, fmt.Errorf("serve: tenant %q: final flush: %w", t.spec.Name, err)
		}
		tr := TenantResult{
			Name:      t.spec.Name,
			Requests:  t.spec.Requests,
			Admitted:  t.admitted,
			Completed: t.completed,
			Rejected:  t.rejected,
			P50:       sim.Duration(t.lat.P50()),
			P95:       sim.Duration(t.lat.P95()),
			P99:       sim.Duration(t.lat.P99()),
			Max:       sim.Duration(t.lat.Max()),
			Dumps:     map[string][]byte{},
		}
		for _, o := range t.prog.Objects {
			if o.Local {
				continue
			}
			dump, err := t.rt.DumpObject(o.Name)
			if err != nil {
				return nil, fmt.Errorf("serve: tenant %q: dump %q: %w", t.spec.Name, o.Name, err)
			}
			tr.Dumps[o.Name] = dump
		}
		res.Tenants = append(res.Tenants, tr)
		moved := t.rt.Link().BytesMoved()
		res.BytesOnWire += moved
		res.BytesEffective += moved + t.rt.NetStats().WireSaved
	}
	return res, nil
}

// buildTenant plans the tenant's workload and binds it to a replicated pool
// of its own, with the chaos schedule (if any) on node 0.
func buildTenant(spec TenantSpec, opts Options, net netmodel.Config, horizon sim.Duration) (*tenant, error) {
	plan, err := planner.Plan(spec.Workload, planner.Options{
		LocalBudget:   spec.Budget,
		Net:           net,
		MaxIterations: 3,
	})
	if err != nil {
		return nil, fmt.Errorf("serve: tenant %q: plan: %w", spec.Name, err)
	}
	cfg := plan.Config
	pol := failFastPolicy()
	co := &cluster.Options{
		Nodes:       opts.Nodes,
		Replicas:    opts.Replicas,
		Seed:        sim.SplitSeed(opts.Seed, "cluster/"+spec.Name),
		StripeBytes: 4096,
		NodeCfg:     farmem.DefaultNodeConfig(),
		Net:         net,
		Policy:      &pol,
	}
	if opts.Faults != "" {
		fc, err := faults.NamedScaled(opts.Faults, sim.SplitSeed(opts.Seed, "faults/"+spec.Name), horizon)
		if err != nil {
			return nil, err
		}
		co.Faults = make([]*faults.Config, opts.Nodes)
		co.Faults[0] = &fc
	}
	cfg.Cluster = co
	cfg.Faults = nil
	r, err := rt.New(cfg, nil)
	if err != nil {
		return nil, fmt.Errorf("serve: tenant %q: runtime: %w", spec.Name, err)
	}
	if err := r.Bind(plan.Program); err != nil {
		return nil, err
	}
	if err := spec.Workload.Init(r); err != nil {
		return nil, err
	}
	rng := sim.NewRNG(sim.SplitSeed(opts.Seed, "arrivals/"+spec.Name))
	return &tenant{
		spec:     spec,
		rt:       r,
		prog:     plan.Program,
		params:   spec.Workload.Params(),
		arrivals: genArrivals(rng, spec.Arrivals, spec.Requests, spec.Mean, spec.Burst),
		rejected: map[string]int{},
	}, nil
}

// serveWorker is one tenant worker: claim the next arrival, wait for it,
// decide admission, execute, record. Workers of one tenant drain a shared
// arrival schedule in index order.
func serveWorker(th *sim.Thread, t *tenant, bw *netmodel.Bandwidth, opts Options, lv **lease) error {
	clk := th.Clock()
	// Re-assert identity after every resume: another tenant's thread ran
	// between our yield and this resume, and both the runtime's per-tid
	// attribution and the link's fair-share accounting follow the active
	// thread.
	yield := func() {
		th.Yield()
		t.rt.SetActiveTid(th.ID())
		bw.SetActiveTenant(t.spec.Name)
	}
	for {
		i := t.next
		if i >= len(t.arrivals) {
			return nil
		}
		t.next++
		a := t.arrivals[i]
		if clk.Now() < a {
			clk.AdvanceTo(a) // idle until the request arrives
		}
		yield()
		now := clk.Now()
		wait := now.Sub(a)
		t.lastActive = now
		if opts.Admission {
			if reason := shedReason(t, now, wait); reason != "" {
				t.rejected[reason]++
				t.mRej[reason].Inc()
				if t.trc != nil {
					t.trc.Instant(now, "serve", "reject",
						trace.S("tenant", t.spec.Name), trace.S("reason", reason), trace.I("req", int64(i)))
				}
				continue
			}
		}
		// A shrunken tenant reactivates here: return the lease before
		// serving, charging the reactivation stall to this request.
		if l := *lv; l != nil && l.donor == t {
			if err := restoreLease(clk, l); err != nil {
				return err
			}
			*lv = nil
		}
		t.admitted++
		t.mAdm.Inc()
		start := now
		ex, err := exec.New(t.prog, t.rt, exec.Options{Params: t.params, Yield: yield})
		if err != nil {
			return err
		}
		if _, err := ex.Run(clk); err != nil {
			return fmt.Errorf("serve: tenant %q request %d: %w", t.spec.Name, i, err)
		}
		end := clk.Now()
		service := end.Sub(start)
		t.lat.Observe(int64(end.Sub(a)))
		if t.ewma == 0 {
			t.ewma = service
		} else {
			t.ewma = (3*t.ewma + service) / 4
		}
		t.completed++
		t.lastActive = end
		if t.trc != nil {
			t.trc.Span(a, end, "serve", "request",
				trace.S("tenant", t.spec.Name), trace.I("req", int64(i)),
				trace.I("wait_ns", int64(wait)))
		}
	}
}

// shedReason applies the admission checks in a fixed order and returns the
// first violated one ("" admits).
func shedReason(t *tenant, now sim.Time, wait sim.Duration) string {
	if t.spec.QueueCap > 0 {
		backlog := 0
		for j := t.next; j < len(t.arrivals) && t.arrivals[j] <= now; j++ {
			backlog++
		}
		if backlog > t.spec.QueueCap {
			return RejectQueue
		}
	}
	if t.spec.SLO > 0 && t.ewma > 0 && wait+t.ewma > t.spec.SLO {
		return RejectSLO
	}
	if t.spec.Mutating && t.rt.Link().BreakerOpen(now) {
		return RejectDegraded
	}
	return ""
}

// reclaimer is the elastic-reclaim thread: every interval it pairs the
// first idle tenant (donor) with the most backlogged one (borrower), shrinks
// the donor to a quarter of its cache budget, and grows the borrower by the
// freed bytes. One lease at a time; the donor's next claim restores it.
func reclaimer(th *sim.Thread, tenants []*tenant, opts Options, lv **lease, leases *int) error {
	clk := th.Clock()
	for {
		done := true
		for _, t := range tenants {
			if t.next < len(t.arrivals) {
				done = false
				break
			}
		}
		if done {
			return nil
		}
		clk.Advance(opts.ReclaimInterval)
		th.Yield()
		if *lv != nil {
			continue
		}
		now := clk.Now()
		var donor, borrower *tenant
		bestBacklog := 0
		for _, t := range tenants {
			if donor == nil && !t.shrunk && t.next < len(t.arrivals) &&
				now.Sub(t.lastActive) > opts.IdleAfter && t.arrivals[t.next] > now.Add(opts.IdleAfter) {
				donor = t
				continue
			}
			backlog := 0
			for j := t.next; j < len(t.arrivals) && t.arrivals[j] <= now; j++ {
				backlog++
			}
			if backlog > bestBacklog {
				bestBacklog = backlog
				borrower = t
			}
		}
		if donor == nil || borrower == nil || donor == borrower {
			continue
		}
		freed := donor.rt.SectionLiveBytes() * 3 / 4
		base := borrower.rt.SectionLiveBytes()
		if base <= 0 || freed <= 0 {
			continue
		}
		grow := 1 + float64(freed)/float64(base)
		if grow > 2 {
			grow = 2
		}
		if err := donor.rt.SetSectionScale(clk, 0.25); err != nil {
			return err
		}
		if err := borrower.rt.SetSectionScale(clk, grow); err != nil {
			return err
		}
		donor.shrunk = true
		*lv = &lease{donor: donor, borrower: borrower}
		*leases++
		if donor.trc != nil {
			donor.trc.Instant(clk.Now(), "serve", "reclaim.lease",
				trace.S("donor", donor.spec.Name), trace.S("borrower", borrower.spec.Name))
		}
	}
}

// restoreLease returns a lease: both parties back to their bound sizes,
// charged to clk (the reactivating worker).
func restoreLease(clk *sim.Clock, l *lease) error {
	if err := l.borrower.rt.SetSectionScale(clk, 1); err != nil {
		return err
	}
	if err := l.donor.rt.SetSectionScale(clk, 1); err != nil {
		return err
	}
	l.donor.shrunk = false
	if l.donor.trc != nil {
		l.donor.trc.Instant(clk.Now(), "serve", "reclaim.restore",
			trace.S("donor", l.donor.spec.Name))
	}
	return nil
}

// NativeReplay executes spec's workload reps times on a fault-free
// single-node runtime planned identically to the serving tenant, and
// returns its far-object dumps — the integrity reference: a chaos-serving
// run that admitted `reps` requests must leave byte-identical far memory.
func NativeReplay(spec TenantSpec, reps int) (map[string][]byte, error) {
	plan, err := planner.Plan(spec.Workload, planner.Options{
		LocalBudget:   spec.Budget,
		Net:           netmodel.DefaultConfig(),
		MaxIterations: 3,
	})
	if err != nil {
		return nil, err
	}
	r, err := rt.New(plan.Config, farmem.NewNode(farmem.DefaultNodeConfig()))
	if err != nil {
		return nil, err
	}
	if err := r.Bind(plan.Program); err != nil {
		return nil, err
	}
	if err := spec.Workload.Init(r); err != nil {
		return nil, err
	}
	clk := sim.NewClock(0)
	for rep := 0; rep < reps; rep++ {
		ex, err := exec.New(plan.Program, r, exec.Options{Params: spec.Workload.Params()})
		if err != nil {
			return nil, err
		}
		if _, err := ex.Run(clk); err != nil {
			return nil, err
		}
	}
	if err := r.FlushAll(clk); err != nil {
		return nil, err
	}
	dumps := map[string][]byte{}
	for _, o := range plan.Program.Objects {
		if o.Local {
			continue
		}
		d, err := r.DumpObject(o.Name)
		if err != nil {
			return nil, err
		}
		dumps[o.Name] = d
	}
	return dumps, nil
}
