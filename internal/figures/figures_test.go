package figures

import (
	"strings"
	"testing"
)

// shapeChecks asserts each figure's paper shape on the already-generated
// quick-scale data (run from TestAllFiguresGenerateQuick so every figure is
// generated exactly once).
var shapeChecks = map[string]func(t *testing.T, f *Figure){
	"fig9": func(t *testing.T, f *Figure) {
		// Edge-section overhead must drop monotonically up to the 2 KB
		// network knee.
		edge := findSeries(f, "edge-section")
		if edge == nil {
			t.Fatal("no edge series")
		}
		for i := 1; i < len(edge.X) && edge.X[i] <= 2048; i++ {
			if edge.Y[i] > edge.Y[i-1] {
				t.Errorf("edge overhead rose below the knee: %g@%g -> %g@%g",
					edge.Y[i-1], edge.X[i-1], edge.Y[i], edge.X[i])
			}
		}
	},
	"fig17": func(t *testing.T, f *Figure) {
		mira := findSeries(f, "mira")
		fs := findSeries(f, "fastswap")
		if mira == nil || fs == nil {
			t.Fatal("missing series")
		}
		for i := range mira.X {
			if mira.Y[i] < fs.Y[i]*0.98 {
				t.Errorf("mira below fastswap at %.2f: %g vs %g", mira.X[i], mira.Y[i], fs.Y[i])
			}
		}
		// Flat tail: the top quarter of the sweep varies by < 5% (the
		// quick-scale model's working set is a larger footprint share,
		// so its flat region is shorter than Full's — see EXPERIMENTS).
		last := mira.Y[len(mira.Y)-1]
		q3 := mira.Y[len(mira.Y)*3/4]
		if last == 0 || q3/last < 0.95 {
			t.Errorf("no flat region: 3/4-point %g vs full %g", q3, last)
		}
	},
	"fig22": func(t *testing.T, f *Figure) {
		sel := findSeries(f, "mira+selective")
		no := findSeries(f, "mira-no-selective")
		if sel == nil || no == nil {
			t.Fatal("missing series")
		}
		for i := range sel.X {
			if sel.Y[i] < no.Y[i] {
				t.Errorf("selective lost at %.2f: %g vs %g", sel.X[i], sel.Y[i], no.Y[i])
			}
		}
	},
	"fig23": func(t *testing.T, f *Figure) {
		b := findSeries(f, "mira+batching")
		nb := findSeries(f, "mira-no-batching")
		if b == nil || nb == nil {
			t.Fatal("missing series")
		}
		for i := range b.X {
			if b.Y[i] < nb.Y[i] {
				t.Errorf("batching lost at %.2f: %g vs %g", b.X[i], b.Y[i], nb.Y[i])
			}
		}
	},
	"fig24": func(t *testing.T, f *Figure) {
		mira := findSeries(f, "mira")
		fs := findSeries(f, "fastswap")
		if mira == nil || fs == nil {
			t.Fatal("missing series")
		}
		n := len(mira.Y) - 1
		if mira.Y[n] <= fs.Y[n] {
			t.Errorf("mira scaling %g not above fastswap %g at %v threads",
				mira.Y[n], fs.Y[n], mira.X[n])
		}
	},
	"fig25": func(t *testing.T, f *Figure) {
		mira := findSeries(f, "mira")
		fs := findSeries(f, "fastswap")
		aifm := findSeries(f, "aifm")
		n := len(mira.Y) - 1
		if mira.Y[n] <= fs.Y[n] {
			t.Errorf("mira shared-write scaling %g not above fastswap %g", mira.Y[n], fs.Y[n])
		}
		if aifm != nil && aifm.Y[n] > 1.5 {
			t.Errorf("aifm unexpectedly scales: %g", aifm.Y[n])
		}
	},
	"offload": func(t *testing.T, f *Figure) {
		off := findSeries(f, "mira+offload")
		no := findSeries(f, "mira-no-offload")
		if off == nil || no == nil {
			t.Fatal("missing series")
		}
		for i := range off.X {
			if off.Y[i] < no.Y[i] {
				t.Errorf("offload lost at %.2f: %g vs %g", off.X[i], off.Y[i], no.Y[i])
			}
		}
	},
	"adapt": func(t *testing.T, f *Figure) {
		stale := findSeries(f, "mira-stale (no adaptation)")
		ad := findSeries(f, "mira-adapt")
		if stale == nil || ad == nil {
			t.Fatal("missing series")
		}
		for i := range ad.X {
			if ad.Y[i] < stale.Y[i]*0.999 {
				t.Errorf("adapted below stale at %.2f: %g vs %g", ad.X[i], ad.Y[i], stale.Y[i])
			}
		}
	},
}

func findSeries(f *Figure, name string) *Series {
	for i := range f.Series {
		if f.Series[i].Name == name {
			return &f.Series[i]
		}
	}
	return nil
}

// TestAllFiguresGenerateQuick smoke-tests every registered figure at Quick
// scale — non-empty, renderable series without error — and applies the
// per-figure paper-shape checks above on the same generated data.
func TestAllFiguresGenerateQuick(t *testing.T) {
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			f, err := Generate(id, Quick)
			if err != nil {
				t.Fatal(err)
			}
			if len(f.Series) == 0 {
				t.Fatal("no series")
			}
			for _, s := range f.Series {
				if len(s.X) == 0 || len(s.X) != len(s.Y) {
					t.Fatalf("series %q malformed: %d x, %d y", s.Name, len(s.X), len(s.Y))
				}
			}
			out := f.Render()
			if !strings.Contains(out, id) {
				t.Fatalf("render missing id:\n%s", out)
			}
			if check, ok := shapeChecks[id]; ok {
				check(t, f)
			}
		})
	}
}

func TestUnknownFigure(t *testing.T) {
	if _, err := Generate("fig999", Quick); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

// seriesByName fetches a series from a figure.
func seriesByName(t *testing.T, f *Figure, name string) Series {
	t.Helper()
	for _, s := range f.Series {
		if s.Name == name {
			return s
		}
	}
	t.Fatalf("figure %s has no series %q", f.ID, name)
	return Series{}
}

// TestFig5Shape: Mira dominates the swap baselines at every swept fraction
// below full memory — the paper's headline.
func TestFig5Shape(t *testing.T) {
	f, err := Generate("fig5", Quick)
	if err != nil {
		t.Fatal(err)
	}
	mira := seriesByName(t, f, "mira")
	fs := seriesByName(t, f, "fastswap")
	leap := seriesByName(t, f, "leap")
	for i := range mira.X {
		if mira.X[i] >= 1.0 {
			continue
		}
		if mira.Y[i] <= fs.Y[i] {
			t.Errorf("at %.0f%%: mira %.3g not above fastswap %.3g", mira.X[i]*100, mira.Y[i], fs.Y[i])
		}
		if mira.Y[i] <= leap.Y[i] {
			t.Errorf("at %.0f%%: mira %.3g not above leap %.3g", mira.X[i]*100, mira.Y[i], leap.Y[i])
		}
	}
}

// TestFig6Monotonicity: adding techniques never makes the accepted
// configuration slower (the planner rolls back regressions).
func TestFig6Monotonicity(t *testing.T) {
	f, err := Generate("fig6", Quick)
	if err != nil {
		t.Fatal(err)
	}
	s := f.Series[0]
	if s.Y[len(s.Y)-1] <= s.Y[0]*1.2 {
		t.Errorf("full Mira (%.3g) not well above swap baseline (%.3g)", s.Y[len(s.Y)-1], s.Y[0])
	}
}

// TestFig8MissRateDrop: separation must reduce the node array's miss rate
// substantially at below-full memory (the paper reports 44-78%).
func TestFig8MissRateDrop(t *testing.T) {
	f, err := Generate("fig8", Quick)
	if err != nil {
		t.Fatal(err)
	}
	joint := seriesByName(t, f, "joint")
	sep := seriesByName(t, f, "separated")
	improved := false
	for i := range joint.X {
		if joint.X[i] >= 1.0 {
			continue
		}
		if sep.Y[i] < joint.Y[i]*0.7 {
			improved = true
		}
		if sep.Y[i] > joint.Y[i]*1.05 {
			t.Errorf("at %.0f%%: separated miss rate %.3g above joint %.3g", joint.X[i]*100, sep.Y[i], joint.Y[i])
		}
	}
	if !improved {
		t.Errorf("no memory point shows a >=30%% node miss-rate drop: joint=%v sep=%v", joint.Y, sep.Y)
	}
}

// TestFig18AIFMFailsBelowFullMemory: the MCF/AIFM failure mode.
func TestFig18AIFMFailsBelowFullMemory(t *testing.T) {
	f, err := Generate("fig18", Quick)
	if err != nil {
		t.Fatal(err)
	}
	aifm := seriesByName(t, f, "aifm")
	failedSomewhere := false
	for i := range aifm.X {
		if aifm.X[i] < 0.5 && len(aifm.Absent) > i && aifm.Absent[i] {
			failedSomewhere = true
		}
	}
	if !failedSomewhere {
		t.Errorf("AIFM did not fail at small memory: absent=%v", aifm.Absent)
	}
}

// TestFig20MiraMetadataSmaller: Mira's metadata must be far below AIFM's on
// every workload where both run.
func TestFig20MiraMetadataSmaller(t *testing.T) {
	f, err := Generate("fig20", Quick)
	if err != nil {
		t.Fatal(err)
	}
	mira := seriesByName(t, f, "mira")
	aifm := seriesByName(t, f, "aifm")
	// Only element-granular AIFM configs carry the paper's heavy
	// per-pointer metadata: workloads 0 (arraysum), 1 (graph), 3 (mcf).
	// DataFrame runs AIFM's chunked implementation, whose metadata is
	// legitimately small.
	for _, i := range []int{0, 1, 3} {
		if len(aifm.Absent) > i && aifm.Absent[i] {
			continue
		}
		if mira.Y[i] >= aifm.Y[i] {
			t.Errorf("workload %d: mira metadata %.0f not below aifm %.0f", i, mira.Y[i], aifm.Y[i])
		}
	}
}

// TestScopeStatsProfilingUnderOnePercent mirrors §6.1's 0.4-0.7% claim
// (we accept anything below 2%).
func TestScopeStatsProfilingUnderOnePercent(t *testing.T) {
	f, err := Generate("scope", Quick)
	if err != nil {
		t.Fatal(err)
	}
	s := f.Series[0]
	// The last three stats are the profiling overhead percentages.
	for i := len(s.Y) - 3; i < len(s.Y); i++ {
		if s.Y[i] > 2.0 {
			t.Errorf("profiling overhead stat %d = %.2f%% above 2%%", i, s.Y[i])
		}
		if s.Y[i] < 0 {
			t.Errorf("profiling overhead stat %d negative: %.2f%%", i, s.Y[i])
		}
	}
}

func TestSeriesAtAndRender(t *testing.T) {
	f := &Figure{
		ID: "figX", Title: "t", XLabel: "x", YLabel: "y",
		Series: []Series{
			{Name: "a", X: []float64{1, 2}, Y: []float64{10, 20}},
			{Name: "b", X: []float64{2, 3}, Y: []float64{0, 30}, Absent: []bool{true, false}},
		},
		Notes: []string{"hello"},
	}
	if v, absent, ok := f.Series[0].at(2); !ok || absent || v != 20 {
		t.Fatalf("at(2) = %v %v %v", v, absent, ok)
	}
	if _, absent, ok := f.Series[1].at(2); !ok || !absent {
		t.Fatalf("absent point not reported: %v %v", absent, ok)
	}
	if _, _, ok := f.Series[0].at(99); ok {
		t.Fatal("missing x reported present")
	}
	out := f.Render()
	for _, want := range []string{"figX", "fail", "hello", "-"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}
