// Package figures regenerates every experiment figure in the paper's
// evaluation (§6). Each generator runs the relevant systems over the
// relevant workload sweep and returns the series the paper plots —
// typically relative performance normalized to native execution on full
// local memory, against the local-memory fraction. cmd/mira-bench renders
// them as tables; EXPERIMENTS.md records the paper-vs-measured comparison.
package figures

import (
	"fmt"
	"sort"
	"strings"

	"mira/internal/sim"
)

// Series is one plotted line.
type Series struct {
	Name string
	X    []float64
	Y    []float64
	// Absent marks x-positions where the system failed to execute
	// (AIFM metadata exhaustion); Y holds 0 there.
	Absent []bool
}

// Figure is one regenerated experiment.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Notes  []string
}

// Scale selects experiment sizing.
type Scale int

const (
	// Quick shrinks workloads and sweeps for tests and smoke runs.
	Quick Scale = iota
	// Full is the figure-quality configuration cmd/mira-bench uses.
	Full
)

// generator produces one figure.
type generator struct {
	id    string
	title string
	fn    func(Scale) (*Figure, error)
}

var registry []generator

func register(id, title string, fn func(Scale) (*Figure, error)) {
	registry = append(registry, generator{id: id, title: title, fn: fn})
}

// IDs lists the available figure identifiers in order.
func IDs() []string {
	out := make([]string, len(registry))
	for i, g := range registry {
		out[i] = g.id
	}
	return out
}

// Generate regenerates one figure by id (e.g. "fig5").
func Generate(id string, scale Scale) (*Figure, error) {
	for _, g := range registry {
		if g.id == id {
			f, err := g.fn(scale)
			if err != nil {
				return nil, fmt.Errorf("figures: %s: %w", id, err)
			}
			f.ID = g.id
			if f.Title == "" {
				f.Title = g.title
			}
			return f, nil
		}
	}
	return nil, fmt.Errorf("figures: unknown figure %q (have %s)", id, strings.Join(IDs(), ", "))
}

// Render formats the figure as an aligned text table.
func (f *Figure) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — %s\n", f.ID, f.Title)
	fmt.Fprintf(&sb, "x: %s   y: %s\n", f.XLabel, f.YLabel)

	// Collect the union of x values.
	xs := map[float64]bool{}
	for _, s := range f.Series {
		for _, x := range s.X {
			xs[x] = true
		}
	}
	xvals := make([]float64, 0, len(xs))
	for x := range xs {
		xvals = append(xvals, x)
	}
	sort.Float64s(xvals)

	fmt.Fprintf(&sb, "%-12s", "x")
	for _, s := range f.Series {
		fmt.Fprintf(&sb, " %14s", s.Name)
	}
	sb.WriteByte('\n')
	for _, x := range xvals {
		fmt.Fprintf(&sb, "%-12.4g", x)
		for _, s := range f.Series {
			val, absent, ok := s.at(x)
			switch {
			case !ok:
				fmt.Fprintf(&sb, " %14s", "-")
			case absent:
				fmt.Fprintf(&sb, " %14s", "fail")
			default:
				fmt.Fprintf(&sb, " %14.4g", val)
			}
		}
		sb.WriteByte('\n')
	}
	for _, n := range f.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

func (s *Series) at(x float64) (y float64, absent, ok bool) {
	for i, xv := range s.X {
		if xv == x {
			ab := len(s.Absent) > i && s.Absent[i]
			return s.Y[i], ab, true
		}
	}
	return 0, false, false
}

// relPerf converts times to the paper's y-axis: relative performance
// normalized over native execution (1.0 = native speed; smaller is slower).
func relPerf(native, t sim.Duration) float64 {
	if t <= 0 {
		return 0
	}
	return float64(native) / float64(t)
}

// fractions is the local-memory sweep for overall-performance figures.
func fractions(scale Scale) []float64 {
	if scale == Quick {
		return []float64{0.25, 0.5, 1.0}
	}
	return []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
}
