package figures

import (
	"fmt"

	"mira/internal/apps/arraysum"
	"mira/internal/apps/dataframe"
	"mira/internal/apps/gpt2"
	"mira/internal/apps/graphtraverse"
	"mira/internal/apps/mcf"
	"mira/internal/baselines/aifm"
	"mira/internal/exec"
	"mira/internal/farmem"
	"mira/internal/harness"
	"mira/internal/planner"
	"mira/internal/rt"
	"mira/internal/sim"
	"mira/internal/workload"
)

func init() {
	register("fig19", "Run-time performance overhead at full local memory", fig19)
	register("fig20", "Metadata space overhead: Mira vs AIFM", fig20)
	register("scope", "Analysis-scope reduction and profiling overhead (§6.1)", scopeStats)
}

// overheadWorkloads is the paper's Fig. 19/20 set: the three applications,
// the graph-traversal example, and the array-sum microbenchmark.
func overheadWorkloads(scale Scale) []struct {
	name string
	mk   func() workload.Workload
	aifm *aifm.Options // nil = skip AIFM (gpt2)
} {
	return []struct {
		name string
		mk   func() workload.Workload
		aifm *aifm.Options
	}{
		{"arraysum", func() workload.Workload { return arraysum.New(arraysum.Config{N: 1 << 14, Seed: 1}) }, &aifm.Options{}},
		{"graph", func() workload.Workload { return graphtraverse.New(graphCfg(scale)) }, &aifm.Options{}},
		{"dataframe", func() workload.Workload { return dataframe.New(dataframeCfg(scale)) }, &aifm.Options{ChunkBytes: 4096}},
		{"mcf", func() workload.Workload { return mcf.New(mcfCfg(scale)) }, &aifm.Options{MetaPerObject: 40}},
		{"gpt2", func() workload.Workload { return gpt2.New(gpt2Cfg(scale)) }, nil},
	}
}

// runPlannedOn executes an already-planned compilation against a (possibly
// different-input) workload — the input-adaptation test of §3.
func runPlannedOn(w workload.Workload, plan *planner.Result) (sim.Duration, error) {
	node := farmem.NewNode(farmem.DefaultNodeConfig())
	r, err := rt.New(plan.Config, node)
	if err != nil {
		return 0, err
	}
	if err := r.Bind(plan.Program); err != nil {
		return 0, err
	}
	if err := w.Init(r); err != nil {
		return 0, err
	}
	ex, err := exec.New(plan.Program, r, exec.Options{Params: w.Params()})
	if err != nil {
		return 0, err
	}
	clk := sim.NewClock(0)
	if _, err := ex.Run(clk); err != nil {
		return 0, err
	}
	if err := r.FlushAll(clk); err != nil {
		return 0, err
	}
	return clk.Now().Sub(0), nil
}

// fig19: run-time overhead at 100% local memory — Mira and AIFM relative to
// native. The paper's point: AIFM is far from native even with all data
// local (per-dereference software costs), while Mira's native-load
// conversion keeps it close.
func fig19(scale Scale) (*Figure, error) {
	fig := &Figure{XLabel: "workload index", YLabel: "relative performance at 100% memory (native=1)"}
	mira := Series{Name: "mira"}
	aifmS := Series{Name: "aifm"}
	for i, wl := range overheadWorkloads(scale) {
		w := wl.mk()
		native, err := harness.Run(harness.Native, w, harness.Options{})
		if err != nil {
			return nil, err
		}
		budget := w.FullMemoryBytes() + w.FullMemoryBytes()/4
		res, err := harness.Run(harness.Mira, wl.mk(), harness.Options{Budget: budget})
		if err != nil {
			return nil, err
		}
		mira.X = append(mira.X, float64(i))
		mira.Y = append(mira.Y, relPerf(native.Time, res.Time))

		aifmS.X = append(aifmS.X, float64(i))
		if wl.aifm == nil {
			aifmS.Y = append(aifmS.Y, 0)
			aifmS.Absent = append(aifmS.Absent, true)
		} else {
			ares, err := harness.Run(harness.AIFM, wl.mk(), harness.Options{Budget: budget, AIFM: *wl.aifm})
			if err != nil {
				return nil, err
			}
			aifmS.Y = append(aifmS.Y, relPerf(native.Time, ares.Time))
			aifmS.Absent = append(aifmS.Absent, ares.Failed)
		}
		fig.Notes = append(fig.Notes, fmt.Sprintf("workload %d = %s", i, wl.name))
	}
	fig.Series = []Series{mira, aifmS}
	return fig, nil
}

// fig20: metadata bytes, Mira vs AIFM, at full local memory.
func fig20(scale Scale) (*Figure, error) {
	fig := &Figure{XLabel: "workload index", YLabel: "metadata bytes"}
	mira := Series{Name: "mira"}
	aifmS := Series{Name: "aifm"}
	for i, wl := range overheadWorkloads(scale) {
		w := wl.mk()
		budget := w.FullMemoryBytes() + w.FullMemoryBytes()/4
		plan, err := planner.Plan(w, planner.Options{LocalBudget: budget, MaxIterations: 3})
		if err != nil {
			return nil, err
		}
		node := farmem.NewNode(farmem.DefaultNodeConfig())
		r, err := rt.New(plan.Config, node)
		if err != nil {
			return nil, err
		}
		if err := r.Bind(plan.Program); err != nil {
			return nil, err
		}
		mira.X = append(mira.X, float64(i))
		mira.Y = append(mira.Y, float64(r.MetadataBytes()))

		aifmS.X = append(aifmS.X, float64(i))
		if wl.aifm == nil {
			aifmS.Y = append(aifmS.Y, 0)
			aifmS.Absent = append(aifmS.Absent, true)
		} else {
			opts := *wl.aifm
			opts.LocalBudget = budget
			ar, err := aifm.New(wl.mk(), opts)
			if err != nil {
				return nil, err
			}
			aifmS.Y = append(aifmS.Y, float64(ar.MetadataBytes()))
			aifmS.Absent = append(aifmS.Absent, false)
		}
		fig.Notes = append(fig.Notes, fmt.Sprintf("workload %d = %s", i, wl.name))
	}
	fig.Series = []Series{mira, aifmS}
	fig.Notes = append(fig.Notes, "paper: Mira's per-line metadata is far below AIFM's per-remotable-pointer metadata")
	return fig, nil
}

// scopeStats reproduces §6.1's analysis-scope and profiling-overhead
// numbers: the profiler narrows MCF from its whole program to a few
// functions, and GPT-2 from 1000+ allocation sites to a fraction; profiling
// probes cost under 1%.
func scopeStats(scale Scale) (*Figure, error) {
	fig := &Figure{XLabel: "stat index", YLabel: "value"}
	var s Series
	s.Name = "value"
	note := func(format string, args ...interface{}) {
		fig.Notes = append(fig.Notes, fmt.Sprintf(format, args...))
	}
	idx := 0
	add := func(v float64, format string, args ...interface{}) {
		s.X = append(s.X, float64(idx))
		s.Y = append(s.Y, v)
		note("stat %d: "+format, append([]interface{}{idx}, args...)...)
		idx++
	}

	// Analysis-scope reduction (functions selected vs total).
	for _, wl := range []struct {
		name string
		mk   func() workload.Workload
	}{
		{"mcf", func() workload.Workload { return mcf.New(mcfCfg(scale)) }},
		{"gpt2", func() workload.Workload { return gpt2.New(gpt2Cfg(scale)) }},
	} {
		w := wl.mk()
		budget := w.FullMemoryBytes() / 2
		plan, err := planner.Plan(w, planner.Options{LocalBudget: budget, MaxIterations: 1})
		if err != nil {
			return nil, err
		}
		totalFuncs := len(w.Program().Funcs)
		totalObjs := 0
		for _, o := range w.Program().Objects {
			if !o.Local {
				totalObjs++
			}
		}
		selFuncs, selObjs := 0, 0
		if len(plan.Iterations) > 0 {
			selFuncs = len(plan.Iterations[0].Funcs)
			selObjs = len(plan.Iterations[0].Objects)
		}
		add(float64(selFuncs), "%s: first iteration analyzes %d of %d functions", wl.name, selFuncs, totalFuncs)
		add(float64(selObjs), "%s: first iteration analyzes %d of %d allocation sites", wl.name, selObjs, totalObjs)
	}

	// Profiling overhead: run each app with and without probes.
	for _, wl := range []struct {
		name string
		mk   func() workload.Workload
	}{
		{"dataframe", func() workload.Workload { return dataframe.New(dataframeCfg(scale)) }},
		{"gpt2", func() workload.Workload { return gpt2.New(gpt2Cfg(scale)) }},
		{"mcf", func() workload.Workload { return mcf.New(mcfCfg(scale)) }},
	} {
		w := wl.mk()
		budget := w.FullMemoryBytes() / 2
		off, err := profiledRun(w, budget, false)
		if err != nil {
			return nil, err
		}
		on, err := profiledRun(wl.mk(), budget, true)
		if err != nil {
			return nil, err
		}
		pct := 100 * (float64(on) - float64(off)) / float64(off)
		add(pct, "%s: profiling adds %.2f%% (paper: 0.4-0.7%%)", wl.name, pct)
	}
	fig.Series = []Series{s}
	return fig, nil
}

// profiledRun executes on the swap configuration with probes on or off.
func profiledRun(w workload.Workload, budget int64, profiling bool) (sim.Duration, error) {
	var local int64
	for _, o := range w.Program().Objects {
		if o.Local {
			local += o.SizeBytes()
		}
	}
	cfg := rt.Config{
		LocalBudget: budget,
		SwapPool:    budget - local,
		Placements:  map[string]rt.Placement{},
		Profiling:   profiling,
	}
	node := farmem.NewNode(farmem.DefaultNodeConfig())
	r, err := rt.New(cfg, node)
	if err != nil {
		return 0, err
	}
	if err := r.Bind(w.Program()); err != nil {
		return 0, err
	}
	if err := w.Init(r); err != nil {
		return 0, err
	}
	ex, err := exec.New(w.Program(), r, exec.Options{Params: w.Params()})
	if err != nil {
		return 0, err
	}
	clk := sim.NewClock(0)
	if _, err := ex.Run(clk); err != nil {
		return 0, err
	}
	return clk.Now().Sub(0), nil
}
