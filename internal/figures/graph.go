package figures

import (
	"fmt"

	"mira/internal/apps/graphtraverse"
	"mira/internal/baselines/fastswap"
	"mira/internal/cache"
	"mira/internal/codegen"
	"mira/internal/exec"
	"mira/internal/farmem"
	"mira/internal/harness"
	"mira/internal/netmodel"
	"mira/internal/planner"
	"mira/internal/rt"
	"mira/internal/sim"
	"mira/internal/solver"
)

func init() {
	register("fig5", "Graph traversal: overall performance vs local memory", fig5)
	register("fig6", "Graph traversal: effect of Mira techniques", fig6)
	register("fig7", "Cache section separation on/off", fig7)
	register("fig8", "Node-array miss rate: joint vs separated cache", fig8)
	register("fig9", "Cache performance overhead vs line size", fig9)
	register("fig10", "Cache structure of the node section vs local memory", fig10)
	register("fig11", "Section overhead vs sampled section size", fig11)
	register("fig12", "Local-memory partitions vs ILP's choice", fig12)
	register("fig15", "Prefetching and eviction hints (vs Leap)", fig15)
	register("fig22", "Selective transmission (partial-struct fetch)", fig22)
}

func graphCfg(scale Scale) graphtraverse.Config {
	if scale == Quick {
		return graphtraverse.Config{Edges: 4096, Nodes: 4096, Passes: 2, Seed: 2023}
	}
	return graphtraverse.Config{Edges: 16384, Nodes: 8192, Passes: 4, Seed: 2023}
}

// sweepSystems runs the systems over the memory fractions for one workload
// constructor (fresh workload per run keeps prefetcher state independent).
func sweepSystems(scale Scale, mk func() *graphtraverse.Workload, systems []harness.System) (*Figure, error) {
	w := mk()
	native, err := harness.Run(harness.Native, w, harness.Options{})
	if err != nil {
		return nil, err
	}
	fig := &Figure{XLabel: "local memory fraction", YLabel: "relative performance (native=1)"}
	for _, sys := range systems {
		s := Series{Name: string(sys)}
		for _, frac := range fractions(scale) {
			budget := int64(float64(w.FullMemoryBytes()) * frac)
			res, err := harness.Run(sys, mk(), harness.Options{Budget: budget})
			if err != nil {
				return nil, fmt.Errorf("%s at %.0f%%: %w", sys, frac*100, err)
			}
			s.X = append(s.X, frac)
			s.Y = append(s.Y, relPerf(native.Time, res.Time))
			s.Absent = append(s.Absent, res.Failed)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// fig5: the rundown example's overall comparison.
func fig5(scale Scale) (*Figure, error) {
	cfg := graphCfg(scale)
	return sweepSystems(scale, func() *graphtraverse.Workload { return graphtraverse.New(cfg) },
		[]harness.System{harness.Mira, harness.FastSwap, harness.Leap, harness.AIFM})
}

// techniqueSteps is the cumulative ladder Figs. 6 and 21 use.
var techniqueSteps = []struct {
	Name string
	Opts func() planner.Options
}{
	{"swap", func() planner.Options { return planner.Options{DisableSeparation: true} }},
	{"+separation", func() planner.Options {
		return planner.Options{Techniques: planner.TechniqueMask{
			ForceStructure: int(cache.FullAssoc),
			NoPrefetch:     true, NoEvictHints: true, NoBatching: true, NoNative: true, NoSelective: true, NoRWOpt: true,
		}}
	}},
	{"+structure", func() planner.Options {
		return planner.Options{Techniques: planner.TechniqueMask{
			ForceStructure: -1,
			NoPrefetch:     true, NoEvictHints: true, NoBatching: true, NoNative: true, NoSelective: true, NoRWOpt: true,
		}}
	}},
	{"+prefetch", func() planner.Options {
		return planner.Options{Techniques: planner.TechniqueMask{
			ForceStructure: -1,
			NoEvictHints:   true, NoBatching: true, NoSelective: true, NoRWOpt: true,
		}}
	}},
	{"+evict-hints", func() planner.Options {
		return planner.Options{Techniques: planner.TechniqueMask{
			ForceStructure: -1,
			NoBatching:     true, NoSelective: true, NoRWOpt: true,
		}}
	}},
	{"+batch/selective/rw", func() planner.Options { return planner.Options{Techniques: planner.DefaultTechniques()} }},
}

// techniqueLadder runs the cumulative ladder for one workload at one budget.
func techniqueLadder(w planner.Workload, native sim.Duration, budget int64, iters int) (Series, error) {
	s := Series{Name: "mira"}
	for i, step := range techniqueSteps {
		opts := step.Opts()
		opts.LocalBudget = budget
		opts.MaxIterations = iters
		res, err := planner.Plan(w, opts)
		if err != nil {
			return Series{}, fmt.Errorf("step %s: %w", step.Name, err)
		}
		s.X = append(s.X, float64(i))
		s.Y = append(s.Y, relPerf(native, res.FinalTime))
	}
	return s, nil
}

// fig6: each Mira technique added one at a time on the graph example.
func fig6(scale Scale) (*Figure, error) {
	w := graphtraverse.New(graphCfg(scale))
	native, err := harness.Run(harness.Native, w, harness.Options{})
	if err != nil {
		return nil, err
	}
	budget := w.FullMemoryBytes() / 4
	s, err := techniqueLadder(w, native.Time, budget, 3)
	if err != nil {
		return nil, err
	}
	fig := &Figure{XLabel: "technique step", YLabel: "relative performance (native=1)", Series: []Series{s}}
	for i, step := range techniqueSteps {
		fig.Notes = append(fig.Notes, fmt.Sprintf("step %d = %s", i, step.Name))
	}
	fig.Notes = append(fig.Notes, "local memory = 25% of full")
	return fig, nil
}

// fig7: separation on/off across the sweep, with AIFM as reference.
func fig7(scale Scale) (*Figure, error) {
	cfg := graphCfg(scale)
	return sweepSystems(scale, func() *graphtraverse.Workload { return graphtraverse.New(cfg) },
		[]harness.System{harness.Mira, harness.MiraSwap, harness.AIFM})
}

// fig8: the node array's miss rate with and without separation. The edge
// array is made much larger than the node array so the joint cache shows
// the paper's flooding effect: the streamed edges occupy space the nodes
// need ("the sequentially accessed edge array ... ends up taking more space
// than what it needs").
func fig8(scale Scale) (*Figure, error) {
	cfg := graphCfg(scale)
	cfg.Nodes = cfg.Nodes * 2 // node footprint well above the swept budgets
	cfg.Skew = 3.5            // realistic skewed node popularity
	cfg.Passes = 4            // steady-state misses, not compulsory ones
	fig := &Figure{XLabel: "local memory fraction", YLabel: "node-array miss rate"}
	joint := Series{Name: "joint"}
	sep := Series{Name: "separated"}
	for _, frac := range fractions(scale) {
		w := graphtraverse.New(cfg)
		budget := int64(float64(w.FullMemoryBytes()) * frac)
		jm, err := graphNodeMissRate(w, budget, true)
		if err != nil {
			return nil, err
		}
		w2 := graphtraverse.New(cfg)
		sm, err := graphNodeMissRate(w2, budget, false)
		if err != nil {
			return nil, err
		}
		joint.X = append(joint.X, frac)
		joint.Y = append(joint.Y, jm)
		sep.X = append(sep.X, frac)
		sep.Y = append(sep.Y, sm)
	}
	fig.Series = []Series{joint, sep}
	fig.Notes = append(fig.Notes, "paper: separation drops node miss rate by 44-78%")
	return fig, nil
}

// graphNodeMissRate runs the graph example with a joint (single shared
// section) or separated (edges/nodes sections) configuration and reports
// the node array's miss rate.
func graphNodeMissRate(w *graphtraverse.Workload, budget int64, jointCache bool) (float64, error) {
	var cfg rt.Config
	if jointCache {
		// The joint cache is the generic page-swap configuration every
		// object starts in: 4 KB pages, global LRU, cluster readahead
		// on every fault — whose useless prefetches on random node
		// faults pollute the pool the nodes need.
		cfg = rt.Config{
			LocalBudget: budget,
			SwapPool:    budget,
			Placements:  map[string]rt.Placement{},
		}
		prog := w.Program()
		node := farmem.NewNode(farmem.DefaultNodeConfig())
		r, err := rt.New(cfg, node)
		if err != nil {
			return 0, err
		}
		if err := r.Bind(prog); err != nil {
			return 0, err
		}
		r.SwapPrefetcher(fastswap.Readahead{N: 8})
		if err := w.Init(r); err != nil {
			return 0, err
		}
		ex, err := exec.New(prog, r, exec.Options{})
		if err != nil {
			return 0, err
		}
		clk := sim.NewClock(0)
		if _, err := ex.Run(clk); err != nil {
			return 0, err
		}
		faults := r.SwapFaultsIn("nodes")
		accesses := w.Config().Edges * w.Config().Passes * 2 * 2 // 2 nodes/edge, read+write each
		return float64(faults) / float64(accesses), nil
	}
	edgeSize := budget / 8
	cfg = rt.Config{
		LocalBudget: budget,
		Sections: []rt.SectionSpec{
			{Cache: cache.Config{Name: "edges", Structure: cache.Direct, LineBytes: 2048, SizeBytes: edgeSize}},
			{Cache: cache.Config{Name: "nodes", Structure: cache.SetAssoc, Ways: 4, LineBytes: 128, SizeBytes: budget - edgeSize}},
		},
		Placements: map[string]rt.Placement{
			"edges": {Kind: rt.PlaceSection, Section: 0},
			"nodes": {Kind: rt.PlaceSection, Section: 1},
		},
	}
	r, _, err := runGraphConfig(w, cfg, nil)
	if err != nil {
		return 0, err
	}
	hits, misses := r.ObjectStats("nodes")
	if hits+misses == 0 {
		return 0, fmt.Errorf("fig8: no node accesses recorded")
	}
	return float64(misses) / float64(hits+misses), nil
}

// runGraphConfig executes the (optionally codegen-transformed) graph program
// under an explicit runtime configuration.
func runGraphConfig(w *graphtraverse.Workload, cfg rt.Config, plan *codegen.Plan) (*rt.Runtime, sim.Duration, error) {
	prog := w.Program()
	if plan != nil {
		var err error
		prog, err = codegen.Apply(prog, plan)
		if err != nil {
			return nil, 0, err
		}
	}
	node := farmem.NewNode(farmem.DefaultNodeConfig())
	r, err := rt.New(cfg, node)
	if err != nil {
		return nil, 0, err
	}
	if err := r.Bind(prog); err != nil {
		return nil, 0, err
	}
	if err := w.Init(r); err != nil {
		return nil, 0, err
	}
	ex, err := exec.New(prog, r, exec.Options{})
	if err != nil {
		return nil, 0, err
	}
	clk := sim.NewClock(0)
	if _, err := ex.Run(clk); err != nil {
		return nil, 0, err
	}
	if err := r.FlushAll(clk); err != nil {
		return nil, 0, err
	}
	return r, clk.Now().Sub(0), nil
}

// sectionOverhead estimates a section's cache performance overhead (§4.1)
// from its counters.
func sectionOverhead(r *rt.Runtime, idx int, total sim.Duration) float64 {
	st := r.SectionStats(idx)
	cost := rt.DefaultCostModel()
	net := netmodel.DefaultConfig()
	secTime := sim.Duration(st.Hits+st.Misses)*cost.Lookup(r.SectionConfig(idx).Structure) +
		sim.Duration(st.Misses)*(cost.MissHandling+net.OneSidedCost(r.SectionConfig(idx).LineBytes))
	rest := total - secTime
	if rest <= 0 {
		return float64(secTime)
	}
	return float64(secTime) / float64(rest)
}

// fig9: overhead vs line size for the node and edge sections. The node
// array uses the skewed (realistic-graph) endpoint distribution: with hot
// nodes scattered across the array, lines larger than one element waste
// capacity on cold neighbours, so the smallest line holding the accessed
// unit (128 B) wins — the paper's result.
func fig9(scale Scale) (*Figure, error) {
	cfg := graphCfg(scale)
	cfg.Nodes = cfg.Nodes * 2
	cfg.Skew = 3.5
	lineSizes := []int{64, 128, 256, 512, 1024, 2048, 4096, 8192}
	if scale == Quick {
		lineSizes = []int{128, 512, 2048}
	}
	fig := &Figure{XLabel: "cache line bytes", YLabel: "cache performance overhead"}
	nodeS := Series{Name: "node-section"}
	edgeS := Series{Name: "edge-section"}
	for _, ls := range lineSizes {
		w := graphtraverse.New(cfg)
		budget := w.FullMemoryBytes() / 4
		nodeLine := ls
		if nodeLine < graphtraverse.NodeBytes {
			nodeLine = graphtraverse.NodeBytes // must hold the accessed unit
		}
		edgeSize := budget / 8
		rcfg := rt.Config{
			LocalBudget: budget,
			Sections: []rt.SectionSpec{
				{Cache: cache.Config{Name: "edges", Structure: cache.Direct, LineBytes: ls, SizeBytes: edgeSize}},
				{Cache: cache.Config{Name: "nodes", Structure: cache.SetAssoc, Ways: 4, LineBytes: nodeLine, SizeBytes: budget - edgeSize}},
			},
			Placements: map[string]rt.Placement{
				"edges": {Kind: rt.PlaceSection, Section: 0},
				"nodes": {Kind: rt.PlaceSection, Section: 1},
			},
		}
		r, total, err := runGraphConfig(w, rcfg, nil)
		if err != nil {
			return nil, err
		}
		edgeS.X = append(edgeS.X, float64(ls))
		edgeS.Y = append(edgeS.Y, sectionOverhead(r, 0, total))
		nodeS.X = append(nodeS.X, float64(nodeLine))
		nodeS.Y = append(nodeS.Y, sectionOverhead(r, 1, total))
	}
	fig.Series = []Series{nodeS, edgeS}
	fig.Notes = append(fig.Notes,
		"node line sizes below the 128B element clamp to 128B (the smallest unit holding the accessed data)",
		"paper: edge overhead drops until ~2KB (network knee); node best at 128B")
	return fig, nil
}

// fig10: node-section structure sweep across memory sizes. Uses the skewed
// endpoint distribution: the scattered hot set is what makes conflict
// misses hurt a direct-mapped section while full associativity keeps the
// hot lines resident.
func fig10(scale Scale) (*Figure, error) {
	cfg := graphCfg(scale)
	cfg.Nodes = cfg.Nodes * 2
	cfg.Skew = 3.5
	fig := &Figure{XLabel: "local memory fraction", YLabel: "relative performance (native=1)"}
	w0 := graphtraverse.New(cfg)
	native, err := harness.Run(harness.Native, w0, harness.Options{})
	if err != nil {
		return nil, err
	}
	structures := []struct {
		name string
		s    cache.Structure
		ways int
	}{
		{"direct", cache.Direct, 0},
		{"set-assoc", cache.SetAssoc, 4},
		{"full-assoc", cache.FullAssoc, 0},
	}
	for _, st := range structures {
		s := Series{Name: st.name}
		for _, frac := range fractions(scale) {
			w := graphtraverse.New(cfg)
			budget := int64(float64(w.FullMemoryBytes()) * frac)
			edgeSize := budget / 8
			rcfg := rt.Config{
				LocalBudget: budget,
				Sections: []rt.SectionSpec{
					{Cache: cache.Config{Name: "edges", Structure: cache.Direct, LineBytes: 2048, SizeBytes: edgeSize}},
					{Cache: cache.Config{Name: "nodes", Structure: st.s, Ways: st.ways, LineBytes: 128, SizeBytes: budget - edgeSize}},
				},
				Placements: map[string]rt.Placement{
					"edges": {Kind: rt.PlaceSection, Section: 0},
					"nodes": {Kind: rt.PlaceSection, Section: 1},
				},
			}
			_, total, err := runGraphConfig(w, rcfg, nil)
			if err != nil {
				return nil, err
			}
			s.X = append(s.X, frac)
			s.Y = append(s.Y, relPerf(native.Time, total))
		}
		fig.Series = append(fig.Series, s)
	}
	fig.Notes = append(fig.Notes, "paper: full associativity wins as local memory shrinks (fewer conflict misses), at a constant lookup overhead")
	return fig, nil
}

// thirdGraphCfg adds the uniformly-random third array (Figs. 11-12).
func thirdGraphCfg(scale Scale) graphtraverse.Config {
	cfg := graphCfg(scale)
	cfg.Third = cfg.Nodes
	return cfg
}

// fig11: per-section overhead at sampled sizes.
func fig11(scale Scale) (*Figure, error) {
	cfg := thirdGraphCfg(scale)
	ratios := []float64{0.1, 0.2, 0.4, 0.6, 0.8, 1.0}
	if scale == Quick {
		ratios = []float64{0.2, 0.6, 1.0}
	}
	w0 := graphtraverse.New(cfg)
	budget := w0.FullMemoryBytes() / 3
	fig := &Figure{XLabel: "section size (fraction of local memory)", YLabel: "cache performance overhead"}
	names := []string{"edges", "nodes", "rand3"}
	for target := 0; target < 3; target++ {
		s := Series{Name: names[target] + "-section"}
		for _, ratio := range ratios {
			w := graphtraverse.New(cfg)
			r, total, err := runThreeSection(w, budget, target, ratio)
			if err != nil {
				return nil, err
			}
			s.X = append(s.X, ratio)
			s.Y = append(s.Y, sectionOverhead(r, target, total))
		}
		fig.Series = append(fig.Series, s)
	}
	fig.Notes = append(fig.Notes, "paper: the sequential edge section flattens at a small size; node and random sections are non-linear")
	return fig, nil
}

// runThreeSection sizes section `target` at ratio of the budget, splitting
// the rest between the other two.
func runThreeSection(w *graphtraverse.Workload, budget int64, target int, ratio float64) (*rt.Runtime, sim.Duration, error) {
	sizes := make([]int64, 3)
	tgt := int64(float64(budget) * ratio)
	rest := budget - tgt
	if rest < 4096 {
		rest = 4096
	}
	for i := range sizes {
		if i == target {
			sizes[i] = tgt
		} else {
			sizes[i] = rest / 2
		}
	}
	for i, min := range []int64{2048, 128, 64} {
		if sizes[i] < min*4 {
			sizes[i] = min * 4
		}
	}
	rcfg := rt.Config{
		LocalBudget: budget * 2, // allow over-provisioning while sampling single-section ratios
		Sections: []rt.SectionSpec{
			{Cache: cache.Config{Name: "edges", Structure: cache.Direct, LineBytes: 2048, SizeBytes: sizes[0]}},
			{Cache: cache.Config{Name: "nodes", Structure: cache.SetAssoc, Ways: 4, LineBytes: 128, SizeBytes: sizes[1]}},
			{Cache: cache.Config{Name: "rand3", Structure: cache.FullAssoc, LineBytes: 64, SizeBytes: sizes[2]}},
		},
		Placements: map[string]rt.Placement{
			"edges": {Kind: rt.PlaceSection, Section: 0},
			"nodes": {Kind: rt.PlaceSection, Section: 1},
			"rand3": {Kind: rt.PlaceSection, Section: 2},
		},
	}
	return runGraphConfigAll(w, rcfg)
}

// runGraphConfigAll is runGraphConfig for the three-array variant.
func runGraphConfigAll(w *graphtraverse.Workload, cfg rt.Config) (*rt.Runtime, sim.Duration, error) {
	return runGraphConfig(w, cfg, nil)
}

// runGraphThree runs the three-array graph example with explicit section
// sizes (edges direct/2KB, nodes set-assoc/128B, rand3 full-assoc/64B).
func runGraphThree(w *graphtraverse.Workload, budget, edgeSize, nodeSize, randSize int64) (*rt.Runtime, sim.Duration, error) {
	if nodeSize < 4*128 {
		nodeSize = 4 * 128
	}
	if randSize < 4*64 {
		randSize = 4 * 64
	}
	rcfg := rt.Config{
		LocalBudget: budget,
		Sections: []rt.SectionSpec{
			{Cache: cache.Config{Name: "edges", Structure: cache.Direct, LineBytes: 2048, SizeBytes: edgeSize}},
			{Cache: cache.Config{Name: "nodes", Structure: cache.SetAssoc, Ways: 4, LineBytes: 128, SizeBytes: nodeSize}},
			{Cache: cache.Config{Name: "rand3", Structure: cache.FullAssoc, LineBytes: 64, SizeBytes: randSize}},
		},
		Placements: map[string]rt.Placement{
			"edges": {Kind: rt.PlaceSection, Section: 0},
			"nodes": {Kind: rt.PlaceSection, Section: 1},
			"rand3": {Kind: rt.PlaceSection, Section: 2},
		},
	}
	return runGraphConfig(w, rcfg, nil)
}

// fig12: application performance across partitions plus the ILP's pick.
func fig12(scale Scale) (*Figure, error) {
	cfg := thirdGraphCfg(scale)
	w0 := graphtraverse.New(cfg)
	budget := w0.FullMemoryBytes() / 3
	native, err := harness.Run(harness.Native, w0, harness.Options{})
	if err != nil {
		return nil, err
	}
	// Edge section fixed small; sweep the node/rand3 split.
	edgeSize := int64(16 * 2048)
	avail := budget - edgeSize
	splits := []float64{0.2, 0.35, 0.5, 0.65, 0.8}
	if scale == Quick {
		splits = []float64{0.25, 0.5, 0.75}
	}
	s := Series{Name: "manual-partition"}
	type sample struct {
		split          float64
		nodeOv, randOv float64
	}
	var samples []sample
	for _, split := range splits {
		w := graphtraverse.New(cfg)
		nodeSize := int64(float64(avail) * split)
		r, total, err := runGraphThree(w, budget, edgeSize, nodeSize, avail-nodeSize)
		if err != nil {
			return nil, err
		}
		s.X = append(s.X, split)
		s.Y = append(s.Y, relPerf(native.Time, total))
		samples = append(samples, sample{split: split, nodeOv: sectionOverhead(r, 1, total), randOv: sectionOverhead(r, 2, total)})
	}
	// The ILP's choice from the sampled curves (§4.3).
	prob := solver.Problem{Budget: avail}
	nodeSec := solver.Section{Name: "nodes", Start: 0, End: 1}
	randSec := solver.Section{Name: "rand3", Start: 0, End: 1}
	for _, sm := range samples {
		nodeSec.Candidates = append(nodeSec.Candidates, solver.Candidate{
			SizeBytes: int64(float64(avail) * sm.split), Overhead: sm.nodeOv})
		randSec.Candidates = append(randSec.Candidates, solver.Candidate{
			SizeBytes: int64(float64(avail) * (1 - sm.split)), Overhead: sm.randOv})
	}
	prob.Sections = []solver.Section{nodeSec, randSec}
	fig := &Figure{XLabel: "node-section share of non-edge memory", YLabel: "relative performance (native=1)", Series: []Series{s}}
	if assignment, _, err := solver.Solve(prob); err == nil {
		fig.Notes = append(fig.Notes, fmt.Sprintf("ILP chose nodes=%d bytes, rand3=%d bytes of %d available",
			assignment["nodes"], assignment["rand3"], avail))
	} else {
		fig.Notes = append(fig.Notes, "ILP: "+err.Error())
	}
	best := 0
	for i := range s.Y {
		if s.Y[i] > s.Y[best] {
			best = i
		}
	}
	fig.Notes = append(fig.Notes, fmt.Sprintf("best manual split: %.2f", s.X[best]))
	return fig, nil
}

// fig15: prefetching and eviction hints, against Leap.
func fig15(scale Scale) (*Figure, error) {
	cfg := graphCfg(scale)
	w0 := graphtraverse.New(cfg)
	native, err := harness.Run(harness.Native, w0, harness.Options{})
	if err != nil {
		return nil, err
	}
	variants := []struct {
		name string
		opts planner.Options
	}{
		{"mira-no-pf-no-hints", planner.Options{Techniques: planner.TechniqueMask{ForceStructure: -1, NoPrefetch: true, NoEvictHints: true}}},
		{"mira+prefetch", planner.Options{Techniques: planner.TechniqueMask{ForceStructure: -1, NoEvictHints: true}}},
		{"mira+pf+hints", planner.Options{Techniques: planner.DefaultTechniques()}},
	}
	fig := &Figure{XLabel: "local memory fraction", YLabel: "relative performance (native=1)"}
	for _, v := range variants {
		s := Series{Name: v.name}
		for _, frac := range fractions(scale) {
			w := graphtraverse.New(cfg)
			opts := v.opts
			opts.LocalBudget = int64(float64(w.FullMemoryBytes()) * frac)
			opts.MaxIterations = 3
			res, err := planner.Plan(w, opts)
			if err != nil {
				return nil, err
			}
			s.X = append(s.X, frac)
			s.Y = append(s.Y, relPerf(native.Time, res.FinalTime))
		}
		fig.Series = append(fig.Series, s)
	}
	leap := Series{Name: "leap"}
	for _, frac := range fractions(scale) {
		w := graphtraverse.New(cfg)
		res, err := harness.Run(harness.Leap, w, harness.Options{Budget: int64(float64(w.FullMemoryBytes()) * frac)})
		if err != nil {
			return nil, err
		}
		leap.X = append(leap.X, frac)
		leap.Y = append(leap.Y, relPerf(native.Time, res.Time))
	}
	fig.Series = append(fig.Series, leap)
	fig.Notes = append(fig.Notes, "paper: program-guided prefetch beats Leap's majority-history prefetch on the interleaved pattern")
	return fig, nil
}

// fig22: selective transmission on the wide-struct node array.
func fig22(scale Scale) (*Figure, error) {
	cfg := graphCfg(scale)
	// Wide nodes: 4 KB records of which the traversal touches only the
	// 8 B counter. Pulling the whole line one-sided needs two network
	// chunks (past the 2 KB knee); the two-sided gather moves 8 bytes —
	// this is the regime where §4.5's selective transmission pays, and
	// the planner's cost model picks it automatically.
	cfg.NodeWidth = 4096
	cfg.Edges /= 4 // keep the footprint comparable despite wider nodes
	w0 := graphtraverse.New(cfg)
	native, err := harness.Run(harness.Native, w0, harness.Options{})
	if err != nil {
		return nil, err
	}
	fig := &Figure{XLabel: "local memory fraction", YLabel: "relative performance (native=1)"}
	variants := []struct {
		name string
		mask planner.TechniqueMask
	}{
		{"mira+selective", planner.DefaultTechniques()},
		{"mira-no-selective", planner.TechniqueMask{ForceStructure: -1, NoSelective: true}},
	}
	for _, v := range variants {
		s := Series{Name: v.name}
		for _, frac := range fractions(scale) {
			w := graphtraverse.New(cfg)
			res, err := planner.Plan(w, planner.Options{
				LocalBudget:   int64(float64(w.FullMemoryBytes()) * frac),
				MaxIterations: 3,
				Techniques:    v.mask,
			})
			if err != nil {
				return nil, err
			}
			s.X = append(s.X, frac)
			s.Y = append(s.Y, relPerf(native.Time, res.FinalTime))
		}
		fig.Series = append(fig.Series, s)
	}
	fig.Notes = append(fig.Notes,
		"the node array holds 4KB records of which the traversal touches 8B; selective transmission gathers only the counter field two-sided",
		"the paper's figure 22 text is truncated in our source; §4.5's selective transmission is the remaining unplotted technique (see DESIGN.md)")
	return fig, nil
}
