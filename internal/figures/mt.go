package figures

import (
	"fmt"

	"mira/internal/apps/gpt2"
	"mira/internal/mtrun"
)

func init() {
	register("fig24", "Read-only multithreading scaling (GPT-2)", fig24)
	register("fig25", "Writable-shared multithreading (DataFrame filter)", fig25)
}

func mtThreads(scale Scale) []int {
	if scale == Quick {
		return []int{1, 2, 4}
	}
	return []int{1, 2, 4, 8}
}

// fig24: fixed total inference work divided across threads; y = speedup
// over the same system at one thread. The model must be large enough that
// per-thread budget shares still hold a layer's working set, so both
// scales use the full-size transformer (Quick only trims the thread
// sweep).
func fig24(scale Scale) (*Figure, error) {
	cfg := gpt2Cfg(Full)
	w := gpt2.New(cfg)
	budget := w.FullMemoryBytes()
	fig := &Figure{XLabel: "threads", YLabel: "speedup over 1 thread (same system)"}
	for _, mode := range []mtrun.Mode{mtrun.MiraPrivate, mtrun.MiraShared, mtrun.FastSwapShared} {
		s := Series{Name: string(mode)}
		var t1 float64
		for _, n := range mtThreads(scale) {
			res, err := mtrun.ReadOnlyScaling(mode, gpt2.New(cfg), budget, n)
			if err != nil {
				return nil, fmt.Errorf("%s x%d: %w", mode, n, err)
			}
			if n == 1 {
				t1 = float64(res.Time)
			}
			s.X = append(s.X, float64(n))
			s.Y = append(s.Y, t1/float64(res.Time))
		}
		fig.Series = append(fig.Series, s)
	}
	fig.Notes = append(fig.Notes,
		"threads interleave on the deterministic virtual-time scheduler: link occupancy, swap-lock queueing, and shared-section eviction interference are emergent from event order",
		"mira-unopt binds every thread's replica to one conservative shared section set, so its gap below mira is cross-thread eviction interference, not a closed-form model")
	return fig, nil
}

// fig25: the shared-write filter partitioned across threads.
func fig25(scale Scale) (*Figure, error) {
	cfg := dataframeCfg(scale)
	w0Full := int64(cfg.Rows) * 8 * 5
	budget := w0Full / 3
	fig := &Figure{XLabel: "threads", YLabel: "speedup over 1 thread (same system)"}
	for _, mode := range []mtrun.Mode{mtrun.MiraPrivate, mtrun.FastSwapShared, mtrun.AIFMShared} {
		s := Series{Name: string(mode)}
		var t1 float64
		for _, n := range mtThreads(scale) {
			res, err := mtrun.SharedWriteFilter(mode, cfg, budget, n)
			if err != nil {
				return nil, fmt.Errorf("%s x%d: %w", mode, n, err)
			}
			if n == 1 {
				t1 = float64(res.Time)
			}
			s.X = append(s.X, float64(n))
			s.Y = append(s.Y, t1/float64(res.Time))
		}
		fig.Series = append(fig.Series, s)
	}
	fig.Notes = append(fig.Notes,
		"threads filter disjoint row partitions into one shared result vector (Mira: shared fully-associative section, §4.6)",
		"interleaved threads contend on shared state in event order: FastSwap queues on the kernel fault lock, AIFM on its object cache's runtime lock")
	return fig, nil
}
