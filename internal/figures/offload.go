package figures

import (
	"mira/internal/apps/arraysum"
	"mira/internal/harness"
	"mira/internal/planner"
)

func init() {
	register("offload", "Ablation: function offloading to the far node (§4.8)", figOffload)
}

// figOffload is an ablation beyond the paper's numbered figures (§4.8 has
// no dedicated plot): a data-heavy, compute-light scan kernel run with and
// without Mira's automatic offloading, across local-memory fractions.
// Offloading wins when moving the computation to the data beats moving the
// data to the computation — most strongly at small local memory.
func figOffload(scale Scale) (*Figure, error) {
	cfg := arraysum.Config{N: 1 << 15, Seed: 6}
	if scale == Quick {
		cfg.N = 1 << 13
	}
	w0 := arraysum.New(cfg)
	native, err := harness.Run(harness.Native, w0, harness.Options{})
	if err != nil {
		return nil, err
	}
	fig := &Figure{XLabel: "local memory fraction", YLabel: "relative performance (native=1)"}
	variants := []struct {
		name    string
		offload bool
	}{
		{"mira+offload", true},
		{"mira-no-offload", false},
	}
	for _, v := range variants {
		s := Series{Name: v.name}
		for _, frac := range fractions(scale) {
			w := arraysum.New(cfg)
			res, err := planner.Plan(w, planner.Options{
				LocalBudget:   int64(float64(w.FullMemoryBytes()) * frac),
				MaxIterations: 2,
				EnableOffload: v.offload,
			})
			if err != nil {
				return nil, err
			}
			s.X = append(s.X, frac)
			s.Y = append(s.Y, relPerf(native.Time, res.FinalTime))
		}
		fig.Series = append(fig.Series, s)
	}
	fig.Notes = append(fig.Notes,
		"extension beyond the paper's numbered figures: §4.8 offloading ablated on a data-heavy scan",
		"the far CPU is 3x slower, so the win is the avoided data movement, not compute")
	return fig, nil
}
