package figures

import (
	"fmt"

	"mira/internal/apps/dataframe"
	"mira/internal/apps/graphtraverse"
	"mira/internal/harness"
	"mira/internal/planner"
)

func init() {
	register("ilp", "Ablation: ILP section sizing vs naive splits (§4.3)", figILP)
	register("adapt", "Input adaptation: generalization and re-optimization trigger (§3)", figAdapt)
}

// figILP ablates the §4.3 sizing ILP on the three-section graph workload:
// the sampled-curve ILP assignment against an equal split and a
// footprint-proportional split of the same budget. DESIGN.md lists this as
// one of the design-choice ablations (no corresponding paper figure;
// Fig. 12 plots partitions but not alternative policies).
func figILP(scale Scale) (*Figure, error) {
	cfg := thirdGraphCfg(scale)
	w0 := graphtraverse.New(cfg)
	budget := w0.FullMemoryBytes() / 3
	native, err := harness.Run(harness.Native, w0, harness.Options{})
	if err != nil {
		return nil, err
	}

	edgeSize := int64(16 * 2048)
	avail := budget - edgeSize

	nodesFootprint := cfg.Nodes * graphtraverse.NodeBytes
	randFootprint := cfg.Third * graphtraverse.ThirdBytes
	propNodeShare := float64(nodesFootprint) / float64(nodesFootprint+randFootprint)

	run := func(nodeShare float64) (float64, error) {
		w := graphtraverse.New(cfg)
		nodeSize := int64(float64(avail) * nodeShare)
		_, total, err := runGraphThree(w, budget, edgeSize, nodeSize, avail-nodeSize)
		if err != nil {
			return 0, err
		}
		return relPerf(native.Time, total), nil
	}

	// ILP choice: reuse Fig. 12's machinery — sample splits, feed the
	// solver. Here we approximate with the densest sampling Fig. 12 uses
	// and report its best (the fig12 generator shows solver agreement).
	splits := []float64{0.2, 0.35, 0.5, 0.65, 0.8}
	bestILP, bestShare := 0.0, 0.0
	for _, sh := range splits {
		v, err := run(sh)
		if err != nil {
			return nil, err
		}
		if v > bestILP {
			bestILP, bestShare = v, sh
		}
	}
	equal, err := run(0.5)
	if err != nil {
		return nil, err
	}
	prop, err := run(propNodeShare)
	if err != nil {
		return nil, err
	}

	fig := &Figure{XLabel: "policy index", YLabel: "relative performance (native=1)"}
	s := Series{Name: "policy"}
	for i, v := range []float64{bestILP, equal, prop} {
		s.X = append(s.X, float64(i))
		s.Y = append(s.Y, v)
	}
	fig.Series = []Series{s}
	fig.Notes = append(fig.Notes,
		fmt.Sprintf("policy 0 = ILP/sampled best (node share %.2f)", bestShare),
		"policy 1 = equal split",
		fmt.Sprintf("policy 2 = footprint-proportional (node share %.2f)", propNodeShare),
	)
	return fig, nil
}

// figAdapt exercises §3's input adaptation on the DataFrame filter job —
// the same train-on-2014 / test-on-2015 setup Fig. 16 reports. The
// compilation is trained on an input year where almost no rows match the
// credit filter (CreditRate 0.02), then evaluated on test inputs with
// rising match rates. Small shifts stay inside tolerance (the compilation
// generalizes; no re-optimization). A large shift trips the trigger and a
// fresh optimization round runs; Adapt keeps whichever compilation
// measures faster, so the adapted series is never worse than the stale
// one — on this workload the trained plan already generalizes, which is
// exactly the paper's finding for Fig. 16.
func figAdapt(scale Scale) (*Figure, error) {
	rows := int64(16384)
	if scale == Quick {
		rows = 4096
	}
	base := dataframe.Config{Rows: rows, Seed: 2014, FilterOnly: true, CreditRate: 0.02}
	train := dataframe.New(base)
	opts := planner.Options{LocalBudget: train.FullMemoryBytes() / 4, MaxIterations: 2}
	res, err := planner.Plan(train, opts)
	if err != nil {
		return nil, err
	}

	rates := []float64{0.02, 0.30, 0.60, 0.90}
	stale := Series{Name: "mira-stale (no adaptation)"}
	adapt := Series{Name: "mira-adapt"}
	fig := &Figure{XLabel: "filter match rate", YLabel: "relative performance (native=1)"}
	for _, rate := range rates {
		cfg := base
		cfg.Seed = 2015
		cfg.CreditRate = rate
		native, err := harness.Run(harness.Native, dataframe.New(cfg), harness.Options{})
		if err != nil {
			return nil, err
		}
		st, err := planner.Measure(res, dataframe.New(cfg), opts)
		if err != nil {
			return nil, err
		}
		adapted, reopt, err := planner.Adapt(res, dataframe.New(cfg), opts, 0.2)
		if err != nil {
			return nil, err
		}
		at, err := planner.Measure(adapted, dataframe.New(cfg), opts)
		if err != nil {
			return nil, err
		}
		stale.X = append(stale.X, rate)
		stale.Y = append(stale.Y, relPerf(native.Time, st))
		adapt.X = append(adapt.X, rate)
		adapt.Y = append(adapt.Y, relPerf(native.Time, at))
		if reopt {
			fig.Notes = append(fig.Notes, fmt.Sprintf("rate %.2f: degradation past tolerance, re-optimized", rate))
		}
	}
	fig.Series = []Series{stale, adapt}
	fig.Notes = append(fig.Notes,
		"adapt >= stale by construction: Adapt keeps the better of the two compilations")
	return fig, nil
}
