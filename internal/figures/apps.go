package figures

import (
	"fmt"

	"mira/internal/apps/dataframe"
	"mira/internal/apps/gpt2"
	"mira/internal/apps/mcf"
	"mira/internal/baselines/aifm"
	"mira/internal/harness"
	"mira/internal/planner"
	"mira/internal/workload"
)

func init() {
	register("fig16", "DataFrame: overall performance vs local memory", fig16)
	register("fig17", "GPT-2 inference: overall performance vs local memory", fig17)
	register("fig18", "MCF: overall performance vs local memory", fig18)
	register("fig21", "Per-technique breakdown on the three applications", fig21)
	register("fig23", "Data-access batching: avg/min/max on one vector", fig23)
}

func dataframeCfg(scale Scale) dataframe.Config {
	if scale == Quick {
		return dataframe.Config{Rows: 1 << 13, Seed: 2014}
	}
	return dataframe.Config{Rows: 1 << 16, Seed: 2014}
}

func gpt2Cfg(scale Scale) gpt2.Config {
	if scale == Quick {
		return gpt2.Config{Layers: 2, DModel: 32, DFF: 128, SeqLen: 16, Seed: 117}
	}
	return gpt2.Config{Layers: 6, DModel: 64, DFF: 256, SeqLen: 16, Seed: 117}
}

func mcfCfg(scale Scale) mcf.Config {
	if scale == Quick {
		return mcf.Config{Arcs: 2048, Nodes: 512, Iterations: 8, WalkLen: 32, Seed: 429}
	}
	return mcf.Config{Arcs: 8192, Nodes: 2048, Iterations: 24, WalkLen: 64, Seed: 429}
}

// appSweep is the overall-performance sweep for one workload constructor.
// extraFracs extends the sweep beyond full memory (the paper's MCF axis
// reaches 1.8x so AIFM's recovery from metadata exhaustion is visible).
func appSweep(scale Scale, mk func() workload.Workload, systems []harness.System, opts harness.Options, planIters int, extraFracs ...float64) (*Figure, error) {
	w := mk()
	native, err := harness.Run(harness.Native, w, opts)
	if err != nil {
		return nil, err
	}
	fig := &Figure{XLabel: "local memory fraction", YLabel: "relative performance (native=1)"}
	sweep := append(fractions(scale), extraFracs...)
	for _, sys := range systems {
		s := Series{Name: string(sys)}
		for _, frac := range sweep {
			o := opts
			o.Budget = int64(float64(w.FullMemoryBytes()) * frac)
			if sys == harness.Mira {
				o.Planner.MaxIterations = planIters
			}
			res, err := harness.Run(sys, mk(), o)
			if err != nil {
				return nil, fmt.Errorf("%s at %.0f%%: %w", sys, frac*100, err)
			}
			s.X = append(s.X, frac)
			s.Y = append(s.Y, relPerf(native.Time, res.Time))
			s.Absent = append(s.Absent, res.Failed)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// fig16: DataFrame pipeline; Mira trained on one input year and tested on
// another (the paper trains on 2014 taxi data, tests on 2015-2016).
func fig16(scale Scale) (*Figure, error) {
	cfg := dataframeCfg(scale)
	// AIFM's DataFrame implementation uses chunked remotable vectors.
	opts := harness.Options{AIFM: aifm.Options{ChunkBytes: 4096}}
	fig, err := appSweep(scale, func() workload.Workload { return dataframe.New(cfg) },
		[]harness.System{harness.Mira, harness.FastSwap, harness.Leap, harness.AIFM}, opts, 6)
	if err != nil {
		return nil, err
	}
	// Input adaptation: plan on the "2014" input, run the plan on a
	// different year (seed) — the compilation generalizes (§3).
	trainW := dataframe.New(cfg)
	budget := trainW.FullMemoryBytes() / 2
	plan, err := planner.Plan(trainW, planner.Options{LocalBudget: budget, MaxIterations: 3})
	if err != nil {
		return nil, err
	}
	testCfg := cfg
	testCfg.Seed = 2015
	testTime, err := runPlannedOn(dataframe.New(testCfg), plan)
	if err != nil {
		return nil, err
	}
	nativeTest, err := harness.Run(harness.Native, dataframe.New(testCfg), harness.Options{})
	if err != nil {
		return nil, err
	}
	fig.Notes = append(fig.Notes, fmt.Sprintf(
		"input adaptation: compilation trained on seed 2014 achieves %.3g relative performance on unseen seed-2015 data at 50%% memory",
		relPerf(nativeTest.Time, testTime)))
	return fig, nil
}

// fig17: GPT-2; AIFM is excluded (no tensor ops, as in the paper).
func fig17(scale Scale) (*Figure, error) {
	cfg := gpt2Cfg(scale)
	fig, err := appSweep(scale, func() workload.Workload { return gpt2.New(cfg) },
		[]harness.System{harness.Mira, harness.FastSwap, harness.Leap}, harness.Options{}, 8)
	if err != nil {
		return nil, err
	}
	fig.Notes = append(fig.Notes,
		"paper: Mira stays flat down to 4.5% local memory; our scaled model's per-layer working set is ~13% of full memory, so the flat region is proportionally shorter (see EXPERIMENTS.md)",
		"AIFM omitted: no matrix/ML operations (as in the paper)")
	return fig, nil
}

// fig18: MCF; AIFM uses its array library (per-element remotable pointers),
// whose metadata makes it fail below full memory.
func fig18(scale Scale) (*Figure, error) {
	cfg := mcfCfg(scale)
	// Per-element remotable pointers with full bookkeeping: the paper
	// reports AIFM-MCF failing below full local memory and reaching only
	// 26% at 1.8x memory.
	opts := harness.Options{AIFM: aifm.Options{MetaPerObject: 40}}
	fig, err := appSweep(scale, func() workload.Workload { return mcf.New(cfg) },
		[]harness.System{harness.Mira, harness.FastSwap, harness.Leap, harness.AIFM}, opts, 3,
		1.2, 1.5, 1.8)
	if err != nil {
		return nil, err
	}
	fig.Notes = append(fig.Notes,
		"AIFM runs its array library with per-element remotable-pointer metadata (40B/element); 'fail' entries reproduce the paper's failure below full memory")
	return fig, nil
}

// fig21: the Fig. 6 technique ladder on the three real applications.
func fig21(scale Scale) (*Figure, error) {
	type app struct {
		name string
		mk   func() workload.Workload
		frac float64
		iter int
	}
	apps := []app{
		{"dataframe", func() workload.Workload { return dataframe.New(dataframeCfg(scale)) }, 0.25, 6},
		{"gpt2", func() workload.Workload { return gpt2.New(gpt2Cfg(scale)) }, 0.25, 8},
		{"mcf", func() workload.Workload { return mcf.New(mcfCfg(scale)) }, 0.25, 3},
	}
	fig := &Figure{XLabel: "technique step", YLabel: "relative performance (native=1)"}
	for _, a := range apps {
		w := a.mk()
		native, err := harness.Run(harness.Native, w, harness.Options{})
		if err != nil {
			return nil, err
		}
		budget := int64(float64(w.FullMemoryBytes()) * a.frac)
		s, err := techniqueLadder(w, native.Time, budget, a.iter)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", a.name, err)
		}
		s.Name = a.name
		fig.Series = append(fig.Series, s)
	}
	for i, step := range techniqueSteps {
		fig.Notes = append(fig.Notes, fmt.Sprintf("step %d = %s", i, step.Name))
	}
	fig.Notes = append(fig.Notes, "local memory = 25% of full for each application")
	return fig, nil
}

// fig23: the three-operator batching job.
func fig23(scale Scale) (*Figure, error) {
	cfg := dataframeCfg(scale)
	cfg.BatchJobOnly = true
	w0 := dataframe.New(cfg)
	native, err := harness.Run(harness.Native, w0, harness.Options{})
	if err != nil {
		return nil, err
	}
	fig := &Figure{XLabel: "local memory fraction", YLabel: "relative performance (native=1)"}

	variants := []struct {
		name string
		mask planner.TechniqueMask
	}{
		{"mira+batching", planner.DefaultTechniques()},
		{"mira-no-batching", planner.TechniqueMask{ForceStructure: -1, NoBatching: true}},
	}
	for _, v := range variants {
		s := Series{Name: v.name}
		for _, frac := range fractions(scale) {
			w := dataframe.New(cfg)
			res, err := planner.Plan(w, planner.Options{
				LocalBudget:   int64(float64(w.FullMemoryBytes()) * frac),
				MaxIterations: 3,
				Techniques:    v.mask,
			})
			if err != nil {
				return nil, err
			}
			s.X = append(s.X, frac)
			s.Y = append(s.Y, relPerf(native.Time, res.FinalTime))
		}
		fig.Series = append(fig.Series, s)
	}
	for _, sys := range []harness.System{harness.FastSwap, harness.AIFM} {
		s := Series{Name: string(sys)}
		for _, frac := range fractions(scale) {
			w := dataframe.New(cfg)
			res, err := harness.Run(sys, w, harness.Options{
				Budget: int64(float64(w.FullMemoryBytes()) * frac),
				AIFM:   aifm.Options{ChunkBytes: 4096},
			})
			if err != nil {
				return nil, err
			}
			s.X = append(s.X, frac)
			s.Y = append(s.Y, relPerf(native.Time, res.Time))
			s.Absent = append(s.Absent, res.Failed)
		}
		fig.Series = append(fig.Series, s)
	}
	fig.Notes = append(fig.Notes, "the job runs avg, min, max as three consecutive loops over one vector; Mira fuses them and batch-fetches (§4.5)")
	return fig, nil
}
