package cache

// setAssoc is a K-way set-associative section: line tags map to sets of K
// slots with true LRU within the set. Victim selection prefers lines marked
// evictable by compiler hints and never picks pinned lines unless the whole
// set is pinned (in which case the LRU pinned line is evicted anyway — a
// pinned-full set would otherwise deadlock; the compiler's conservative
// shared-section sizing makes this rare).
type setAssoc struct {
	cfg      Config
	ways     int
	nSets    int
	slots    []Line // nSets * ways, set-major
	stats    Stats
	tick     uint64
	occupied int
}

func newSetAssoc(cfg Config) *setAssoc {
	lines := cfg.Lines()
	ways := cfg.Ways
	if ways > lines {
		ways = lines
	}
	nSets := lines / ways
	if nSets < 1 {
		nSets = 1
	}
	return &setAssoc{
		cfg:   cfg,
		ways:  ways,
		nSets: nSets,
		slots: make([]Line, nSets*ways),
	}
}

func (s *setAssoc) Config() Config { return s.cfg }

func (s *setAssoc) setOf(tag uint64) int {
	return int((tag / uint64(s.cfg.LineBytes)) % uint64(s.nSets))
}

// set returns the slot slice backing tag's set.
func (s *setAssoc) set(tag uint64) []Line {
	i := s.setOf(tag) * s.ways
	return s.slots[i : i+s.ways]
}

func (s *setAssoc) Lookup(addr uint64) (*Line, bool) {
	tag := AlignDown(addr, s.cfg.LineBytes)
	set := s.set(tag)
	for i := range set {
		if set[i].valid && set[i].Tag == tag {
			s.tick++
			set[i].lastUse = s.tick
			s.stats.Hits++
			return &set[i], true
		}
	}
	s.stats.Misses++
	return nil, false
}

func (s *setAssoc) Peek(addr uint64) (*Line, bool) {
	tag := AlignDown(addr, s.cfg.LineBytes)
	set := s.set(tag)
	for i := range set {
		if set[i].valid && set[i].Tag == tag {
			return &set[i], true
		}
	}
	return nil, false
}

func (s *setAssoc) Reserve(addr uint64) (*Line, Victim) {
	tag := AlignDown(addr, s.cfg.LineBytes)
	set := s.set(tag)

	// Empty slot first.
	for i := range set {
		if !set[i].valid {
			s.tick++
			set[i] = Line{Tag: tag, Data: make([]byte, s.cfg.LineBytes), valid: true, lastUse: s.tick}
			s.occupied++
			return &set[i], Victim{}
		}
		if set[i].Tag == tag {
			panic("cache: Reserve of resident line")
		}
	}

	victim := s.chooseVictim(set)
	vl := &set[victim]
	v := Victim{Tag: vl.Tag, Data: vl.Data, Dirty: vl.Dirty}
	s.stats.Evictions++
	if vl.Evictable {
		s.stats.HintEvicts++
	}
	if vl.Dirty {
		s.stats.Writebacks++
	}
	if s.occupied < len(s.slots) {
		s.stats.Conflicts++
		v.Conflict = true
	}
	s.tick++
	*vl = Line{Tag: tag, Data: make([]byte, s.cfg.LineBytes), valid: true, lastUse: s.tick}
	return vl, v
}

// chooseVictim picks a slot index within a full set: evictable-marked lines
// first (LRU among them), then unpinned LRU, then overall LRU.
func (s *setAssoc) chooseVictim(set []Line) int {
	best, bestEvictable := -1, -1
	for i := range set {
		l := &set[i]
		if l.Pinned() {
			s.stats.PinSkips++
			continue
		}
		if l.Evictable && (bestEvictable == -1 || l.lastUse < set[bestEvictable].lastUse) {
			bestEvictable = i
		}
		if best == -1 || l.lastUse < set[best].lastUse {
			best = i
		}
	}
	if bestEvictable != -1 {
		return bestEvictable
	}
	if best != -1 {
		return best
	}
	// Whole set pinned: fall back to global LRU of the set.
	lru := 0
	for i := 1; i < len(set); i++ {
		if set[i].lastUse < set[lru].lastUse {
			lru = i
		}
	}
	return lru
}

func (s *setAssoc) MarkEvictable(addr uint64) bool {
	if l, ok := s.Peek(addr); ok {
		l.Evictable = true
		return true
	}
	return false
}

func (s *setAssoc) Pin(addr uint64, delta int) bool {
	if l, ok := s.Peek(addr); ok {
		l.pins += delta
		if l.pins < 0 {
			l.pins = 0
		}
		return true
	}
	return false
}

func (s *setAssoc) Drop(addr uint64) (Victim, bool) {
	l, ok := s.Peek(addr)
	if !ok {
		return Victim{}, false
	}
	v := Victim{Tag: l.Tag, Data: l.Data, Dirty: l.Dirty}
	if l.Evictable {
		s.stats.FlushedHint++
	}
	*l = Line{}
	s.occupied--
	return v, true
}

func (s *setAssoc) ForEachResident(fn func(*Line)) {
	for i := range s.slots {
		if s.slots[i].valid {
			fn(&s.slots[i])
		}
	}
}

func (s *setAssoc) Stats() Stats { return s.stats }
func (s *setAssoc) ResetStats()  { s.stats = Stats{} }

var _ Section = (*setAssoc)(nil)
