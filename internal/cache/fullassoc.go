package cache

import "container/list"

// fullAssoc is a fully-associative section. Residency is a tag→line map and
// replacement approximates LRU with the paper's active/inactive two-list
// scheme (§5.3): new lines enter the inactive list; a hit on an inactive
// line promotes it to the active list; victims come from the inactive tail
// (preferring evictable-marked lines within a bounded scan); when the
// inactive list runs dry the active tail is demoted.
type fullAssoc struct {
	cfg      Config
	capacity int
	lines    map[uint64]*list.Element // tag -> element in active or inactive
	active   *list.List               // front = most recent
	inactive *list.List               // front = most recent
	stats    Stats
	tick     uint64
}

// faEntry is the list payload: the line plus which list it lives on.
type faEntry struct {
	line     Line
	inActive bool
}

// evictScanLimit bounds the eviction-hint scan of the inactive tail; a
// bounded scan keeps eviction O(1) amortized while still honouring most
// hints, matching a realistic runtime implementation.
const evictScanLimit = 8

func newFullAssoc(cfg Config) *fullAssoc {
	return &fullAssoc{
		cfg:      cfg,
		capacity: cfg.Lines(),
		lines:    make(map[uint64]*list.Element, cfg.Lines()),
		active:   list.New(),
		inactive: list.New(),
	}
}

func (f *fullAssoc) Config() Config { return f.cfg }

func (f *fullAssoc) Lookup(addr uint64) (*Line, bool) {
	tag := AlignDown(addr, f.cfg.LineBytes)
	el, ok := f.lines[tag]
	if !ok {
		f.stats.Misses++
		return nil, false
	}
	f.stats.Hits++
	f.tick++
	e := el.Value.(*faEntry)
	e.line.lastUse = f.tick
	if e.inActive {
		f.active.MoveToFront(el)
	} else {
		// Promote: second touch moves the line to the active list.
		f.inactive.Remove(el)
		e.inActive = true
		f.lines[tag] = f.active.PushFront(e)
		// Bound the active list to half the capacity (the Linux
		// active:inactive balance): otherwise streamed-once lines
		// clog it and evictions cannibalize prefetched lines.
		for f.active.Len() > f.capacity/2 {
			tail := f.active.Back()
			te := tail.Value.(*faEntry)
			f.active.Remove(tail)
			te.inActive = false
			f.lines[te.line.Tag] = f.inactive.PushBack(te)
		}
	}
	return &e.line, true
}

func (f *fullAssoc) Peek(addr uint64) (*Line, bool) {
	tag := AlignDown(addr, f.cfg.LineBytes)
	if el, ok := f.lines[tag]; ok {
		return &el.Value.(*faEntry).line, true
	}
	return nil, false
}

func (f *fullAssoc) Reserve(addr uint64) (*Line, Victim) {
	tag := AlignDown(addr, f.cfg.LineBytes)
	if _, ok := f.lines[tag]; ok {
		panic("cache: Reserve of resident line")
	}
	var v Victim
	if len(f.lines) >= f.capacity {
		v = f.evictOne()
	}
	f.tick++
	e := &faEntry{line: Line{Tag: tag, Data: make([]byte, f.cfg.LineBytes), valid: true, lastUse: f.tick}}
	f.lines[tag] = f.inactive.PushFront(e)
	return &e.line, v
}

// evictOne removes one victim line and returns it.
func (f *fullAssoc) evictOne() Victim {
	el := f.chooseVictim()
	e := el.Value.(*faEntry)
	if e.inActive {
		f.active.Remove(el)
	} else {
		f.inactive.Remove(el)
	}
	delete(f.lines, e.line.Tag)
	f.stats.Evictions++
	if e.line.Evictable {
		f.stats.HintEvicts++
	}
	if e.line.Dirty {
		f.stats.Writebacks++
	}
	return Victim{Tag: e.line.Tag, Data: e.line.Data, Dirty: e.line.Dirty}
}

// chooseVictim scans the inactive tail (then the active tail) for an
// evictable-marked unpinned line within the scan budget, falling back to the
// least-recent unpinned line, then the raw tail.
func (f *fullAssoc) chooseVictim() *list.Element {
	// Refill the inactive list from the active tail if empty.
	if f.inactive.Len() == 0 {
		if tail := f.active.Back(); tail != nil {
			e := tail.Value.(*faEntry)
			f.active.Remove(tail)
			e.inActive = false
			f.lines[e.line.Tag] = f.inactive.PushBack(e)
		}
	}
	var fallback *list.Element
	scanned := 0
	for el := f.inactive.Back(); el != nil && scanned < evictScanLimit; el = el.Prev() {
		e := el.Value.(*faEntry)
		scanned++
		if e.line.Pinned() {
			f.stats.PinSkips++
			continue
		}
		if e.line.Evictable {
			return el
		}
		if fallback == nil {
			fallback = el
		}
	}
	if fallback != nil {
		return fallback
	}
	// Everything scanned was pinned (or list empty): scan the active
	// list the same way.
	scanned = 0
	for el := f.active.Back(); el != nil && scanned < evictScanLimit; el = el.Prev() {
		e := el.Value.(*faEntry)
		scanned++
		if e.line.Pinned() {
			f.stats.PinSkips++
			continue
		}
		return el
	}
	// Fully pinned cache: evict the inactive tail (or active tail)
	// regardless — the alternative is deadlock.
	if el := f.inactive.Back(); el != nil {
		return el
	}
	return f.active.Back()
}

func (f *fullAssoc) MarkEvictable(addr uint64) bool {
	if l, ok := f.Peek(addr); ok {
		l.Evictable = true
		return true
	}
	return false
}

func (f *fullAssoc) Pin(addr uint64, delta int) bool {
	if l, ok := f.Peek(addr); ok {
		l.pins += delta
		if l.pins < 0 {
			l.pins = 0
		}
		return true
	}
	return false
}

func (f *fullAssoc) Drop(addr uint64) (Victim, bool) {
	tag := AlignDown(addr, f.cfg.LineBytes)
	el, ok := f.lines[tag]
	if !ok {
		return Victim{}, false
	}
	e := el.Value.(*faEntry)
	if e.inActive {
		f.active.Remove(el)
	} else {
		f.inactive.Remove(el)
	}
	delete(f.lines, tag)
	if e.line.Evictable {
		f.stats.FlushedHint++
	}
	return Victim{Tag: e.line.Tag, Data: e.line.Data, Dirty: e.line.Dirty}, true
}

func (f *fullAssoc) ForEachResident(fn func(*Line)) {
	for el := f.active.Front(); el != nil; el = el.Next() {
		fn(&el.Value.(*faEntry).line)
	}
	for el := f.inactive.Front(); el != nil; el = el.Next() {
		fn(&el.Value.(*faEntry).line)
	}
}

func (f *fullAssoc) Stats() Stats { return f.stats }
func (f *fullAssoc) ResetStats()  { f.stats = Stats{} }

// Resident reports the number of resident lines (tests only).
func (f *fullAssoc) Resident() int { return len(f.lines) }

var _ Section = (*fullAssoc)(nil)
