package cache

// direct is a direct-mapped section: line i of far memory maps to slot
// (i mod nSlots). There is no victim choice; a conflicting resident line is
// evicted (the compiler only chooses Direct for sequential/strided patterns,
// where conflicts do not occur — §4.2).
type direct struct {
	cfg      Config
	slots    []Line
	stats    Stats
	tick     uint64
	occupied int
}

func newDirect(cfg Config) *direct {
	return &direct{cfg: cfg, slots: make([]Line, cfg.Lines())}
}

func (d *direct) Config() Config { return d.cfg }

func (d *direct) slotOf(tag uint64) int {
	return int((tag / uint64(d.cfg.LineBytes)) % uint64(len(d.slots)))
}

func (d *direct) Lookup(addr uint64) (*Line, bool) {
	tag := AlignDown(addr, d.cfg.LineBytes)
	s := &d.slots[d.slotOf(tag)]
	if s.valid && s.Tag == tag {
		d.tick++
		s.lastUse = d.tick
		d.stats.Hits++
		return s, true
	}
	d.stats.Misses++
	return nil, false
}

func (d *direct) Peek(addr uint64) (*Line, bool) {
	tag := AlignDown(addr, d.cfg.LineBytes)
	s := &d.slots[d.slotOf(tag)]
	if s.valid && s.Tag == tag {
		return s, true
	}
	return nil, false
}

func (d *direct) Reserve(addr uint64) (*Line, Victim) {
	tag := AlignDown(addr, d.cfg.LineBytes)
	s := &d.slots[d.slotOf(tag)]
	if s.valid && s.Tag == tag {
		panic("cache: Reserve of resident line")
	}
	var v Victim
	if s.valid {
		d.stats.Evictions++
		if s.Evictable {
			d.stats.HintEvicts++
		}
		if d.occupied < len(d.slots) {
			d.stats.Conflicts++
			v.Conflict = true
		}
		v.Tag, v.Data, v.Dirty = s.Tag, s.Data, s.Dirty
		if v.Dirty {
			d.stats.Writebacks++
		}
	} else {
		d.occupied++
	}
	d.tick++
	*s = Line{Tag: tag, Data: make([]byte, d.cfg.LineBytes), valid: true, lastUse: d.tick}
	return s, v
}

func (d *direct) MarkEvictable(addr uint64) bool {
	if l, ok := d.Peek(addr); ok {
		l.Evictable = true
		return true
	}
	return false
}

func (d *direct) Pin(addr uint64, delta int) bool {
	if l, ok := d.Peek(addr); ok {
		l.pins += delta
		if l.pins < 0 {
			l.pins = 0
		}
		return true
	}
	return false
}

func (d *direct) Drop(addr uint64) (Victim, bool) {
	tag := AlignDown(addr, d.cfg.LineBytes)
	s := &d.slots[d.slotOf(tag)]
	if !s.valid || s.Tag != tag {
		return Victim{}, false
	}
	v := Victim{Tag: s.Tag, Data: s.Data, Dirty: s.Dirty}
	if s.Evictable {
		d.stats.FlushedHint++
	}
	*s = Line{}
	d.occupied--
	return v, true
}

func (d *direct) ForEachResident(fn func(*Line)) {
	for i := range d.slots {
		if d.slots[i].valid {
			fn(&d.slots[i])
		}
	}
}

func (d *direct) Stats() Stats { return d.stats }
func (d *direct) ResetStats()  { d.stats = Stats{} }

var _ Section = (*direct)(nil)
