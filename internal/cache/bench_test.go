package cache

import (
	"fmt"
	"testing"
)

// Wall-clock micro-benchmarks of the section hot paths: the simulator's
// throughput is dominated by Lookup/Reserve, so regressions here slow every
// experiment.

func benchSection(b *testing.B, structure Structure) {
	cfg := Config{Name: "b", Structure: structure, Ways: 4, LineBytes: 128, SizeBytes: 1 << 20}
	s, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	// Warm a working set.
	const lines = 1024
	for i := uint64(0); i < lines; i++ {
		s.Reserve(i * 128)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Lookup(uint64(i%lines) * 128)
	}
}

func BenchmarkLookupHitDirect(b *testing.B)   { benchSection(b, Direct) }
func BenchmarkLookupHitSetAssoc(b *testing.B) { benchSection(b, SetAssoc) }
func BenchmarkLookupHitFullAssoc(b *testing.B) {
	benchSection(b, FullAssoc)
}

func BenchmarkReserveEvictCycle(b *testing.B) {
	for _, st := range []Structure{Direct, SetAssoc, FullAssoc} {
		b.Run(fmt.Sprint(st), func(b *testing.B) {
			cfg := Config{Name: "b", Structure: st, Ways: 4, LineBytes: 128, SizeBytes: 64 << 10}
			s, _ := New(cfg)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				addr := uint64(i) * 128
				if _, ok := s.Lookup(addr); !ok {
					s.Reserve(addr)
				}
			}
		})
	}
}
