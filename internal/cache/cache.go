// Package cache implements Mira's configurable local-cache sections (§4.2,
// §5.3). A Section caches far-memory data in lines of a configurable size
// with one of three structures — direct-mapped, K-way set-associative, or
// fully-associative — and supports the program-guided mechanisms the
// compiler emits: eviction hints (mark-evictable + prefer-evictable victim
// selection), don't-evict pins for shared multithreaded sections (§4.6), and
// dirty-line write-back.
//
// Sections are purely mechanical: they track lines, choose victims, and
// count events. They perform no I/O and charge no time; the runtime layer
// (internal/rt) moves bytes over the network and charges virtual time based
// on the events a Section reports.
package cache

import (
	"fmt"
)

// Structure selects a cache section's organization (§4.2 "determining cache
// section structure").
type Structure int

const (
	// Direct is a direct-mapped section: no conflict handling, cheapest
	// lookup. Chosen for sequential/strided patterns.
	Direct Structure = iota
	// SetAssoc is a K-way set-associative section with per-set LRU.
	SetAssoc
	// FullAssoc is a fully-associative section with active/inactive-list
	// approximate LRU (§5.3): best utilization, costliest lookup.
	FullAssoc
)

func (s Structure) String() string {
	switch s {
	case Direct:
		return "direct"
	case SetAssoc:
		return "set-assoc"
	case FullAssoc:
		return "full-assoc"
	default:
		return fmt.Sprintf("Structure(%d)", int(s))
	}
}

// Config describes one cache section.
type Config struct {
	// Name labels the section in profiles and plans (e.g. "nodes").
	Name string
	// Structure is the section's organization.
	Structure Structure
	// Ways is the associativity for SetAssoc sections (ignored
	// otherwise).
	Ways int
	// LineBytes is the cache line size: one or more data items (§4.2).
	LineBytes int
	// SizeBytes is the section's local-memory budget. The line count is
	// SizeBytes/LineBytes, minimum 1.
	SizeBytes int64
}

// Validate reports an error for malformed configurations.
func (c Config) Validate() error {
	if c.LineBytes <= 0 {
		return fmt.Errorf("cache: section %q: LineBytes must be positive, got %d", c.Name, c.LineBytes)
	}
	if c.SizeBytes <= 0 {
		return fmt.Errorf("cache: section %q: SizeBytes must be positive, got %d", c.Name, c.SizeBytes)
	}
	if c.Structure == SetAssoc && c.Ways <= 0 {
		return fmt.Errorf("cache: section %q: set-associative section needs Ways >= 1, got %d", c.Name, c.Ways)
	}
	return nil
}

// Lines reports how many lines the configuration holds.
func (c Config) Lines() int {
	n := int(c.SizeBytes / int64(c.LineBytes))
	if n < 1 {
		n = 1
	}
	return n
}

// Scaled returns the configuration resized to scale × SizeBytes, rounded
// down to a whole number of lines and clamped to at least one line — the
// elastic-reclaim primitive: a tenant's section shrinks when its DRAM is
// lent out and regrows on reactivation, always remaining a valid section.
func (c Config) Scaled(scale float64) Config {
	out := c
	sz := int64(float64(c.SizeBytes) * scale)
	sz = sz / int64(c.LineBytes) * int64(c.LineBytes)
	if sz < int64(c.LineBytes) {
		sz = int64(c.LineBytes)
	}
	out.SizeBytes = sz
	return out
}

// Line is one resident cache line.
type Line struct {
	// Tag is the far-memory address of the line's first byte (aligned to
	// LineBytes).
	Tag uint64
	// Data is the line's local copy; len(Data) == LineBytes.
	Data []byte
	// Dirty records whether Data diverged from far memory.
	Dirty bool
	// Evictable is the compiler's eviction hint (§4.5): set after the
	// last access in a scope; victim selection prefers these lines.
	Evictable bool
	// pins is the don't-evict reference count for shared sections
	// (§4.6). A pinned line is never chosen as a victim.
	pins int
	// lastUse is a logical timestamp for LRU within sets.
	lastUse uint64
	// valid distinguishes an occupied slot from an empty one.
	valid bool
}

// Pinned reports whether the line is protected by don't-evict pins.
func (l *Line) Pinned() bool { return l.pins > 0 }

// Victim describes an evicted line the caller must handle: if Dirty, its
// bytes must be written back to far memory before the slot is reused.
type Victim struct {
	Tag   uint64
	Data  []byte
	Dirty bool
	// Conflict reports whether the eviction happened with spare capacity
	// elsewhere in the section (i.e. a mapping conflict rather than
	// capacity pressure). Only meaningful for Direct/SetAssoc.
	Conflict bool
}

// Stats counts section events since creation (or the last Reset). The
// profiler turns these into the paper's "cache performance overhead" metric
// (§4.1).
type Stats struct {
	Hits        int64
	Misses      int64
	Evictions   int64
	Writebacks  int64 // dirty victims handed to the caller
	HintEvicts  int64 // victims chosen because they were marked evictable
	Conflicts   int64 // evictions with spare capacity elsewhere
	PinSkips    int64 // victim candidates skipped because pinned
	FlushedHint int64 // lines flushed early via eviction hints
}

// Section is a configured cache section. Implementations are not safe for
// concurrent use; shared sections are serialized by the runtime with the
// pin protocol of §4.6.
type Section interface {
	// Config returns the section's configuration.
	Config() Config
	// Lookup finds the line holding far address addr. On a hit it
	// returns the line and true after updating recency.
	Lookup(addr uint64) (*Line, bool)
	// Peek is Lookup without recency or stats side effects.
	Peek(addr uint64) (*Line, bool)
	// Reserve allocates a slot for the line containing addr and returns
	// it with zeroed Data, plus the victim it displaced (Victim.Data nil
	// if none). The caller fills Data (from far memory or by zero-fill
	// for write-only allocation) and must write back dirty victims.
	// Reserve panics if addr's line is already resident — callers always
	// Lookup first.
	Reserve(addr uint64) (*Line, Victim)
	// MarkEvictable applies an eviction hint to addr's line if resident.
	MarkEvictable(addr uint64) bool
	// Pin adjusts the don't-evict count of addr's line if resident
	// (delta may be negative). It reports whether the line was found.
	Pin(addr uint64, delta int) bool
	// Drop invalidates addr's line if resident and returns it as a
	// victim so the caller can write back dirty data. Used by early
	// flush (§4.5) and by section teardown at lifetime end.
	Drop(addr uint64) (Victim, bool)
	// ForEachResident visits every valid line. Used by flush-on-offload
	// (§4.8) and section teardown.
	ForEachResident(fn func(*Line))
	// Stats returns a copy of the section's counters.
	Stats() Stats
	// ResetStats zeroes the counters (profiling rounds).
	ResetStats()
}

// New builds a Section from cfg.
func New(cfg Config) (Section, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	switch cfg.Structure {
	case Direct:
		return newDirect(cfg), nil
	case SetAssoc:
		return newSetAssoc(cfg), nil
	case FullAssoc:
		return newFullAssoc(cfg), nil
	default:
		return nil, fmt.Errorf("cache: unknown structure %v", cfg.Structure)
	}
}

// AlignDown returns the line-aligned base address for addr.
func AlignDown(addr uint64, lineBytes int) uint64 {
	return addr - addr%uint64(lineBytes)
}
