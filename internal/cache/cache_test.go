package cache

import (
	"testing"
	"testing/quick"
)

func mkSection(t *testing.T, cfg Config) Section {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func allStructures(lineBytes int, sizeBytes int64) []Config {
	return []Config{
		{Name: "d", Structure: Direct, LineBytes: lineBytes, SizeBytes: sizeBytes},
		{Name: "s", Structure: SetAssoc, Ways: 4, LineBytes: lineBytes, SizeBytes: sizeBytes},
		{Name: "f", Structure: FullAssoc, LineBytes: lineBytes, SizeBytes: sizeBytes},
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Structure: Direct, LineBytes: 0, SizeBytes: 1024},
		{Structure: Direct, LineBytes: 64, SizeBytes: 0},
		{Structure: SetAssoc, Ways: 0, LineBytes: 64, SizeBytes: 1024},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, cfg)
		}
	}
}

func TestConfigLines(t *testing.T) {
	c := Config{LineBytes: 128, SizeBytes: 1024}
	if c.Lines() != 8 {
		t.Fatalf("Lines = %d, want 8", c.Lines())
	}
	c = Config{LineBytes: 4096, SizeBytes: 100}
	if c.Lines() != 1 {
		t.Fatalf("tiny section Lines = %d, want 1", c.Lines())
	}
}

func TestAlignDown(t *testing.T) {
	if got := AlignDown(1000, 128); got != 896 {
		t.Fatalf("AlignDown(1000,128) = %d, want 896", got)
	}
	if got := AlignDown(896, 128); got != 896 {
		t.Fatalf("AlignDown(896,128) = %d, want 896", got)
	}
}

func TestMissThenHit(t *testing.T) {
	for _, cfg := range allStructures(64, 1024) {
		s := mkSection(t, cfg)
		if _, ok := s.Lookup(100); ok {
			t.Fatalf("%v: hit on empty section", cfg.Structure)
		}
		l, v := s.Reserve(100)
		if v.Data != nil {
			t.Fatalf("%v: victim from empty section", cfg.Structure)
		}
		if l.Tag != 64 {
			t.Fatalf("%v: tag %d, want 64", cfg.Structure, l.Tag)
		}
		l.Data[36] = 7 // addr 100 = line 64 offset 36
		got, ok := s.Lookup(100)
		if !ok {
			t.Fatalf("%v: miss after Reserve", cfg.Structure)
		}
		if got.Data[36] != 7 {
			t.Fatalf("%v: data lost", cfg.Structure)
		}
		st := s.Stats()
		if st.Hits != 1 || st.Misses != 1 {
			t.Fatalf("%v: stats %+v, want 1 hit 1 miss", cfg.Structure, st)
		}
	}
}

func TestSameLineDifferentOffsetsHit(t *testing.T) {
	for _, cfg := range allStructures(128, 1024) {
		s := mkSection(t, cfg)
		s.Reserve(0)
		for off := uint64(0); off < 128; off += 8 {
			if _, ok := s.Lookup(off); !ok {
				t.Fatalf("%v: offset %d missed within resident line", cfg.Structure, off)
			}
		}
	}
}

func TestReserveResidentPanics(t *testing.T) {
	for _, cfg := range allStructures(64, 1024) {
		s := mkSection(t, cfg)
		s.Reserve(0)
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%v: Reserve of resident line did not panic", cfg.Structure)
				}
			}()
			s.Reserve(32) // same line
		}()
	}
}

func TestEvictionReturnsDirtyVictim(t *testing.T) {
	for _, cfg := range allStructures(64, 64) { // exactly one line
		s := mkSection(t, cfg)
		l, _ := s.Reserve(0)
		l.Data[0] = 0xee
		l.Dirty = true
		_, v := s.Reserve(1 << 20)
		if v.Data == nil {
			t.Fatalf("%v: no victim from full section", cfg.Structure)
		}
		if !v.Dirty || v.Tag != 0 || v.Data[0] != 0xee {
			t.Fatalf("%v: victim %+v, want dirty tag 0", cfg.Structure, v)
		}
		if s.Stats().Writebacks != 1 {
			t.Fatalf("%v: writebacks %d, want 1", cfg.Structure, s.Stats().Writebacks)
		}
	}
}

func TestDirectMappedConflict(t *testing.T) {
	// 4 slots of 64B. Lines 0 and 4 collide (both map to slot 0) while
	// slots remain free => conflict eviction.
	s := mkSection(t, Config{Structure: Direct, LineBytes: 64, SizeBytes: 256})
	s.Reserve(0)
	_, v := s.Reserve(4 * 64)
	if v.Data == nil {
		t.Fatal("conflicting line did not evict")
	}
	if !v.Conflict {
		t.Fatal("eviction not flagged as conflict despite free slots")
	}
	if s.Stats().Conflicts != 1 {
		t.Fatalf("Conflicts = %d, want 1", s.Stats().Conflicts)
	}
}

func TestFullAssocNoConflictMisses(t *testing.T) {
	// Fully-associative: any 4 distinct lines fit in a 4-line section,
	// regardless of address bits.
	s := mkSection(t, Config{Structure: FullAssoc, LineBytes: 64, SizeBytes: 256})
	addrs := []uint64{0, 4 * 64, 8 * 64, 12 * 64} // would all collide direct-mapped
	for _, a := range addrs {
		if _, v := s.Reserve(a); v.Data != nil {
			t.Fatalf("eviction inserting %d into non-full full-assoc section", a)
		}
	}
	for _, a := range addrs {
		if _, ok := s.Lookup(a); !ok {
			t.Fatalf("line %d evicted from non-full full-assoc section", a)
		}
	}
}

func TestSetAssocLRUWithinSet(t *testing.T) {
	// 2 sets x 2 ways, 64B lines (256B total). Lines 0,2,4 map to set 0.
	s := mkSection(t, Config{Structure: SetAssoc, Ways: 2, LineBytes: 64, SizeBytes: 256})
	s.Reserve(0 * 64)
	s.Reserve(2 * 64)
	s.Lookup(0 * 64) // make line 0 recent; line 2 is LRU
	_, v := s.Reserve(4 * 64)
	if v.Tag != 2*64 {
		t.Fatalf("victim tag %d, want %d (LRU)", v.Tag, 2*64)
	}
	if _, ok := s.Lookup(0); !ok {
		t.Fatal("recently-used line was evicted")
	}
}

func TestEvictionHintPreferred(t *testing.T) {
	// Full set; the evictable-marked line should be chosen even if it is
	// the most recently used.
	s := mkSection(t, Config{Structure: SetAssoc, Ways: 2, LineBytes: 64, SizeBytes: 128})
	s.Reserve(0 * 64)
	s.Reserve(2 * 64)
	s.Lookup(2 * 64) // line 2 most recent
	if !s.MarkEvictable(2 * 64) {
		t.Fatal("MarkEvictable failed on resident line")
	}
	_, v := s.Reserve(4 * 64)
	if v.Tag != 2*64 {
		t.Fatalf("victim tag %d, want %d (hinted)", v.Tag, 2*64)
	}
	if s.Stats().HintEvicts != 1 {
		t.Fatalf("HintEvicts = %d, want 1", s.Stats().HintEvicts)
	}
}

func TestFullAssocHintPreferred(t *testing.T) {
	s := mkSection(t, Config{Structure: FullAssoc, LineBytes: 64, SizeBytes: 256})
	for i := uint64(0); i < 4; i++ {
		s.Reserve(i * 64)
	}
	s.MarkEvictable(2 * 64)
	_, v := s.Reserve(100 * 64)
	if v.Tag != 2*64 {
		t.Fatalf("victim tag %d, want %d (hinted)", v.Tag, 2*64)
	}
}

func TestPinPreventsEviction(t *testing.T) {
	for _, st := range []Structure{SetAssoc, FullAssoc} {
		cfg := Config{Structure: st, Ways: 2, LineBytes: 64, SizeBytes: 128}
		s := mkSection(t, cfg)
		s.Reserve(0 * 64)
		s.Reserve(2 * 64)
		s.Lookup(2 * 64) // line 0 is now LRU
		s.Pin(0*64, 1)   // ...but pinned
		_, v := s.Reserve(4 * 64)
		if v.Tag == 0 {
			t.Fatalf("%v: pinned line evicted", st)
		}
		if _, ok := s.Lookup(0); !ok {
			t.Fatalf("%v: pinned line gone", st)
		}
		// Unpin, make line 0 the LRU again, and evict: now it is fair
		// game.
		s.Pin(0*64, -1)
		s.Lookup(4 * 64)
		_, v = s.Reserve(6 * 64)
		if v.Tag != 0 {
			t.Fatalf("%v: unpinned LRU line not evicted (victim %d)", st, v.Tag)
		}
	}
}

func TestPinUnderflowClamped(t *testing.T) {
	s := mkSection(t, Config{Structure: FullAssoc, LineBytes: 64, SizeBytes: 128})
	l, _ := s.Reserve(0)
	s.Pin(0, -5)
	if l.Pinned() {
		t.Fatal("negative pin count left line pinned")
	}
}

func TestDrop(t *testing.T) {
	for _, cfg := range allStructures(64, 1024) {
		s := mkSection(t, cfg)
		l, _ := s.Reserve(0)
		l.Dirty = true
		v, ok := s.Drop(0)
		if !ok || !v.Dirty {
			t.Fatalf("%v: Drop = %+v, %v", cfg.Structure, v, ok)
		}
		if _, ok := s.Lookup(0); ok {
			t.Fatalf("%v: line resident after Drop", cfg.Structure)
		}
		if _, ok := s.Drop(0); ok {
			t.Fatalf("%v: Drop of absent line succeeded", cfg.Structure)
		}
	}
}

func TestForEachResident(t *testing.T) {
	for _, cfg := range allStructures(64, 1024) {
		s := mkSection(t, cfg)
		want := map[uint64]bool{0: true, 64: true, 128: true}
		for a := range want {
			s.Reserve(a)
		}
		got := map[uint64]bool{}
		s.ForEachResident(func(l *Line) { got[l.Tag] = true })
		if len(got) != len(want) {
			t.Fatalf("%v: visited %d lines, want %d", cfg.Structure, len(got), len(want))
		}
		for a := range want {
			if !got[a] {
				t.Fatalf("%v: line %d not visited", cfg.Structure, a)
			}
		}
	}
}

func TestResetStats(t *testing.T) {
	for _, cfg := range allStructures(64, 1024) {
		s := mkSection(t, cfg)
		s.Lookup(0)
		s.Reserve(0)
		s.ResetStats()
		if st := s.Stats(); st != (Stats{}) {
			t.Fatalf("%v: stats not reset: %+v", cfg.Structure, st)
		}
	}
}

func TestPeekHasNoSideEffects(t *testing.T) {
	for _, cfg := range allStructures(64, 1024) {
		s := mkSection(t, cfg)
		s.Reserve(0)
		before := s.Stats()
		s.Peek(0)
		s.Peek(999999)
		if s.Stats() != before {
			t.Fatalf("%v: Peek changed stats", cfg.Structure)
		}
	}
}

func TestFullAssocActiveInactivePromotion(t *testing.T) {
	f := newFullAssoc(Config{Structure: FullAssoc, LineBytes: 64, SizeBytes: 4 * 64})
	// First touch -> inactive; second touch -> active.
	f.Reserve(0)
	if f.active.Len() != 0 || f.inactive.Len() != 1 {
		t.Fatalf("after insert: active=%d inactive=%d", f.active.Len(), f.inactive.Len())
	}
	f.Lookup(0)
	if f.active.Len() != 1 || f.inactive.Len() != 0 {
		t.Fatalf("after promote: active=%d inactive=%d", f.active.Len(), f.inactive.Len())
	}
}

func TestFullAssocScanResistance(t *testing.T) {
	// A hot line that is touched repeatedly should survive a long
	// streaming scan through a small full-assoc section — that is the
	// point of the active/inactive split.
	f := newFullAssoc(Config{Structure: FullAssoc, LineBytes: 64, SizeBytes: 8 * 64})
	hot := uint64(1 << 30)
	f.Reserve(hot)
	f.Lookup(hot) // promote to active
	for i := uint64(0); i < 100; i++ {
		addr := i * 64
		if _, ok := f.Lookup(addr); !ok {
			f.Reserve(addr)
		}
		f.Lookup(hot)
	}
	if _, ok := f.Peek(hot); !ok {
		t.Fatal("hot line evicted by streaming scan")
	}
}

// Property: for every structure, after any access sequence the number of
// resident lines never exceeds the configured capacity.
func TestCapacityInvariantProperty(t *testing.T) {
	f := func(addrsRaw []uint16, structPick uint8) bool {
		cfgs := allStructures(64, 4*64)
		cfg := cfgs[int(structPick)%len(cfgs)]
		s, err := New(cfg)
		if err != nil {
			return false
		}
		for _, a := range addrsRaw {
			addr := uint64(a) * 8
			if _, ok := s.Lookup(addr); !ok {
				s.Reserve(addr)
			}
		}
		resident := 0
		s.ForEachResident(func(*Line) { resident++ })
		return resident <= cfg.Lines()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: a Lookup immediately after Reserve always hits, for any address
// and structure.
func TestReserveThenLookupProperty(t *testing.T) {
	f := func(addr uint64, structPick uint8) bool {
		cfgs := allStructures(128, 16*128)
		cfg := cfgs[int(structPick)%len(cfgs)]
		s, err := New(cfg)
		if err != nil {
			return false
		}
		addr %= 1 << 40
		s.Reserve(addr)
		_, ok := s.Lookup(addr)
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStructureString(t *testing.T) {
	if Direct.String() != "direct" || SetAssoc.String() != "set-assoc" || FullAssoc.String() != "full-assoc" {
		t.Fatal("Structure.String misbehaves")
	}
	if Structure(99).String() == "" {
		t.Fatal("unknown structure produced empty string")
	}
}

func TestSetAssocWaysClamp(t *testing.T) {
	// Ways larger than the line count must not panic or produce zero
	// sets.
	s := newSetAssoc(Config{Structure: SetAssoc, Ways: 16, LineBytes: 64, SizeBytes: 2 * 64})
	if s.nSets < 1 {
		t.Fatalf("nSets = %d", s.nSets)
	}
	s.Reserve(0)
	s.Reserve(64)
	if _, ok := s.Lookup(0); !ok {
		t.Fatal("line lost in clamped set-assoc section")
	}
}
