package cache

import "testing"

// These tests model the runtime's batched-prefetch race: a placeholder line
// is Reserved for an in-flight fetch, and before the data lands, later
// Reserves (set conflicts or capacity pressure) evict it or reuse its slot.
// The runtime guards against the race with an identity-plus-tag re-check
// (Peek returns the same *Line AND that line still carries the tag); these
// tests pin down the Section behaviors that make the guard sound for every
// structure.

// evictTag0 reserves enough conflicting/fresh lines to push the line with
// tag 0 out of sec, returning the victims produced along the way.
func evictTag0(t *testing.T, sec Section, lineBytes, lines int) []Victim {
	t.Helper()
	var victims []Victim
	// Reserving `lines` more tags that all map over tag 0's slot (direct,
	// set-assoc) or exhaust capacity (full-assoc) is guaranteed to displace
	// it regardless of structure.
	for k := 1; k <= lines; k++ {
		tag := uint64(k * lines * lineBytes) // same direct/set index as tag 0
		if _, ok := sec.Peek(tag); ok {
			continue
		}
		_, v := sec.Reserve(tag)
		if v.Data != nil {
			victims = append(victims, v)
		}
		if _, still := sec.Peek(0); !still {
			return victims
		}
	}
	t.Fatal("could not evict tag 0")
	return nil
}

func TestInflightPlaceholderEvictedBeforeArrival(t *testing.T) {
	const lineBytes = 64
	const lines = 4
	for _, st := range []Structure{Direct, SetAssoc, FullAssoc} {
		t.Run(st.String(), func(t *testing.T) {
			sec, err := New(Config{Name: "s", Structure: st, Ways: 2, LineBytes: lineBytes, SizeBytes: lines * lineBytes})
			if err != nil {
				t.Fatal(err)
			}
			l0, v := sec.Reserve(0) // in-flight placeholder, not yet filled
			if v.Data != nil {
				t.Fatal("empty section produced a victim")
			}
			victims := evictTag0(t, sec, lineBytes, lines)

			// The placeholder was clean, so its eviction must not demand a
			// write-back of garbage data.
			for _, vv := range victims {
				if vv.Tag == 0 && vv.Dirty {
					t.Fatal("clean placeholder evicted dirty")
				}
			}
			// Peek must no longer resolve tag 0: a late arrival that only
			// checked residency would otherwise fill a slot now owned by
			// someone else.
			if cur, ok := sec.Peek(0); ok {
				t.Fatalf("evicted placeholder still resident: %+v", cur)
			}
			// The runtime's full guard — Peek resolves the tag to the very
			// same *Line that still carries it — must reject the stale
			// pointer, whether the structure reused its slot (rewriting the
			// tag) or discarded the Line object (Peek misses or returns a
			// different pointer).
			if cur, ok := sec.Peek(0); ok && cur == l0 && l0.Tag == 0 {
				t.Fatal("stale placeholder passes the identity re-check after eviction")
			}
			// Drop of a non-resident tag must report not-ok, not invent a
			// victim.
			if _, ok := sec.Drop(0); ok {
				t.Fatal("Drop of evicted line reported a victim")
			}
			// Re-reserving the same tag must hand out a working slot.
			l, _ := sec.Reserve(0)
			if l.Tag != 0 || len(l.Data) != lineBytes {
				t.Fatalf("re-reserve broken: tag=%d len=%d", l.Tag, len(l.Data))
			}
		})
	}
}

func TestDropInflightPlaceholderDirectly(t *testing.T) {
	// The failure path of a batched gather drops its placeholders; a clean
	// placeholder must come back as a clean victim and leave the section
	// consistent, for every structure.
	const lineBytes = 64
	for _, st := range []Structure{Direct, SetAssoc, FullAssoc} {
		t.Run(st.String(), func(t *testing.T) {
			sec, err := New(Config{Name: "s", Structure: st, Ways: 2, LineBytes: lineBytes, SizeBytes: 4 * lineBytes})
			if err != nil {
				t.Fatal(err)
			}
			sec.Reserve(0)
			v, ok := sec.Drop(0)
			if !ok {
				t.Fatal("Drop of resident placeholder failed")
			}
			if v.Dirty {
				t.Fatal("clean placeholder dropped dirty")
			}
			if _, ok := sec.Peek(0); ok {
				t.Fatal("dropped line still resident")
			}
			// The freed slot must be reusable.
			if l, _ := sec.Reserve(0); l.Tag != 0 {
				t.Fatalf("slot not reusable after Drop: tag=%d", l.Tag)
			}
		})
	}
}

func TestPeekIdentityStableWhileResident(t *testing.T) {
	// While a line stays resident, Peek must keep returning the same *Line:
	// the runtime's identity re-check depends on pointer stability across
	// unrelated Reserves.
	const lineBytes = 64
	for _, st := range []Structure{Direct, SetAssoc, FullAssoc} {
		t.Run(st.String(), func(t *testing.T) {
			sec, err := New(Config{Name: "s", Structure: st, Ways: 2, LineBytes: lineBytes, SizeBytes: 8 * lineBytes})
			if err != nil {
				t.Fatal(err)
			}
			l0, _ := sec.Reserve(0)
			sec.Reserve(uint64(lineBytes)) // unrelated line, different slot
			cur, ok := sec.Peek(0)
			if !ok || cur != l0 {
				t.Fatalf("Peek identity changed while resident: %p vs %p", cur, l0)
			}
		})
	}
}
