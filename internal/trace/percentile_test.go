package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestReservoirExactPercentiles(t *testing.T) {
	var p Reservoir
	p.cap_ = DefaultReservoirCap
	// 1..1000 in a scrambled but deterministic order.
	for i := 0; i < 1000; i++ {
		p.Observe(int64(i*617%1000) + 1)
	}
	if got := p.Count(); got != 1000 {
		t.Fatalf("count = %d", got)
	}
	// Nearest-rank over 1..1000: p50 = 500, p95 = 950, p99 = 990.
	if got := p.P50(); got != 500 {
		t.Errorf("p50 = %d, want 500", got)
	}
	if got := p.P95(); got != 950 {
		t.Errorf("p95 = %d, want 950", got)
	}
	if got := p.P99(); got != 990 {
		t.Errorf("p99 = %d, want 990", got)
	}
	if p.Quantile(1) != 1000 || p.Max() != 1000 {
		t.Errorf("max quantile = %d, max = %d, want 1000", p.Quantile(1), p.Max())
	}
	if p.Quantile(0) != 1 {
		t.Errorf("min quantile = %d, want 1", p.Quantile(0))
	}
}

// Past the cap the reservoir decimates instead of dropping the tail: the
// retained set must remain a uniform sample (percentile estimates stay in
// range) and the whole-stream count/min/max must remain exact.
func TestReservoirDecimation(t *testing.T) {
	p := &Reservoir{cap_: 64}
	n := int64(10_000)
	for i := int64(1); i <= n; i++ {
		p.Observe(i)
	}
	if p.Count() != n || p.Max() != n {
		t.Fatalf("count=%d max=%d", p.Count(), p.Max())
	}
	if got := p.P50(); got < n*4/10 || got > n*6/10 {
		t.Errorf("decimated p50 = %d, want near %d", got, n/2)
	}
	if got := p.P99(); got < n*95/100 {
		t.Errorf("decimated p99 = %d, want >= %d", got, n*95/100)
	}
	// Two identical streams decimate identically.
	q := &Reservoir{cap_: 64}
	for i := int64(1); i <= n; i++ {
		q.Observe(i)
	}
	for _, quant := range []float64{0.5, 0.95, 0.99} {
		if p.Quantile(quant) != q.Quantile(quant) {
			t.Errorf("q%.2f diverges across identical streams", quant)
		}
	}
}

func TestReservoirNilSafe(t *testing.T) {
	var p *Reservoir
	p.Observe(5)
	if p.Count() != 0 || p.P99() != 0 || p.Sum() != 0 {
		t.Fatal("nil reservoir not inert")
	}
	var r *Registry
	r.Reservoir("x").Observe(1) // must not panic
}

func TestRegistryWritesPercentiles(t *testing.T) {
	r := NewRegistry()
	lat := r.Reservoir("serve.latency{tenant=a}")
	for i := 1; i <= 100; i++ {
		lat.Observe(int64(i))
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"percentiles"`) || !strings.Contains(out, `"p99": 99`) {
		t.Fatalf("percentiles missing from metrics JSON:\n%s", out)
	}
	var buf2 bytes.Buffer
	if err := r.WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Fatal("metrics JSON not byte-stable")
	}
}
