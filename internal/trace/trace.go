// Package trace is Mira's deterministic observability layer: structured
// events stamped with virtual time (sim.Time, never the wall clock) and a
// typed metrics registry. Components append events to per-thread Buffers;
// the writer merges every buffer into one Chrome trace-event JSON stream —
// loadable in chrome://tracing or Perfetto — sorted by instant and then by
// a stable per-buffer sequence number, so two runs with identical seeds
// produce byte-identical files.
//
// The disabled state is a nil *Tracer: every method on Tracer, Buffer, and
// the metric types is nil-safe and returns immediately, so instrumented hot
// paths pay one nil check when tracing is off. Components therefore hold
// plain pointers (a nil Buffer, a nil Counter) instead of branching on a
// separate "enabled" flag.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"

	"mira/internal/sim"
)

// Phase is the Chrome trace-event phase of an event.
const (
	// PhaseSpan is a complete event ('X'): a named interval with a
	// duration, e.g. a demand-miss fetch or a planner iteration.
	PhaseSpan = 'X'
	// PhaseInstant is an instant event ('i'): a point occurrence, e.g. a
	// retry, a breaker trip, a write-back parked in a queue.
	PhaseInstant = 'i'
)

// Arg is one key/value annotation on an event. Values are strings or
// int64s only — floats have no canonical text form and would threaten
// byte-stable output.
type Arg struct {
	Key string
	Str string
	Int int64
	str bool
}

// S builds a string-valued Arg.
func S(key, val string) Arg { return Arg{Key: key, Str: val, str: true} }

// I builds an integer-valued Arg.
func I(key string, val int64) Arg { return Arg{Key: key, Int: val} }

// Event is one trace record. Ts and Dur are virtual time.
type Event struct {
	Name string
	Cat  string
	Ph   byte
	Ts   sim.Time
	Dur  sim.Duration
	Tid  int
	Seq  uint64
	Args []Arg
}

// Buffer collects the events of one simulated thread (or one component
// with its own timeline). Buffers are created via Tracer.Buffer and are
// safe for concurrent use — tests drive the transport from real
// goroutines — though simulated threads normally own theirs exclusively.
type Buffer struct {
	mu     sync.Mutex
	tid    int
	seq    uint64
	events []Event
}

// Span records a complete event covering [start, end]. A span whose end
// precedes its start is clamped to zero duration rather than rejected —
// callers pass raw clock readings.
func (b *Buffer) Span(start, end sim.Time, cat, name string, args ...Arg) {
	if b == nil {
		return
	}
	d := end.Sub(start)
	if d < 0 {
		d = 0
	}
	b.append(Event{Name: name, Cat: cat, Ph: PhaseSpan, Ts: start, Dur: d, Args: args})
}

// Instant records a point event at ts.
func (b *Buffer) Instant(ts sim.Time, cat, name string, args ...Arg) {
	if b == nil {
		return
	}
	b.append(Event{Name: name, Cat: cat, Ph: PhaseInstant, Ts: ts, Args: args})
}

func (b *Buffer) append(e Event) {
	b.mu.Lock()
	e.Tid = b.tid
	e.Seq = b.seq
	b.seq++
	b.events = append(b.events, e)
	b.mu.Unlock()
}

func (b *Buffer) snapshot() []Event {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]Event(nil), b.events...)
}

// Tracer owns the run's event buffers and metrics registry. The zero value
// is not usable; call New. A nil *Tracer is the disabled tracer.
type Tracer struct {
	mu    sync.Mutex
	reg   *Registry
	bufs  []*Buffer
	names []string
}

// New returns an enabled tracer with an empty registry.
func New() *Tracer {
	return &Tracer{reg: NewRegistry()}
}

// Registry returns the tracer's metrics registry (nil when the tracer is
// disabled — the registry's methods are nil-safe in turn).
func (t *Tracer) Registry() *Registry {
	if t == nil {
		return nil
	}
	return t.reg
}

// Buffer returns the event buffer named name, creating it on first use.
// Thread ids are assigned in creation order, which is deterministic for a
// deterministic run; the writer additionally orders output by (ts, tid,
// seq), so even racy creation order cannot reorder the file's events
// against virtual time.
func (t *Tracer) Buffer(name string) *Buffer {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, n := range t.names {
		if n == name {
			return t.bufs[i]
		}
	}
	b := &Buffer{tid: len(t.bufs)}
	t.bufs = append(t.bufs, b)
	t.names = append(t.names, name)
	return b
}

// Events merges every buffer's events, sorted by instant, then thread id,
// then per-buffer sequence — the deterministic total order the writer
// emits.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	bufs := append([]*Buffer(nil), t.bufs...)
	t.mu.Unlock()
	var all []Event
	for _, b := range bufs {
		all = append(all, b.snapshot()...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Ts != all[j].Ts {
			return all[i].Ts < all[j].Ts
		}
		if all[i].Tid != all[j].Tid {
			return all[i].Tid < all[j].Tid
		}
		return all[i].Seq < all[j].Seq
	})
	return all
}

// micros renders a virtual-time nanosecond count as Chrome's microsecond
// timestamp unit with fixed nanosecond precision — strconv with a fixed
// format, so output is byte-stable.
func micros(ns int64) string {
	return strconv.FormatFloat(float64(ns)/1000, 'f', 3, 64)
}

func quote(s string) string { return strconv.Quote(s) }

func writeArgs(sb *strings.Builder, args []Arg) {
	sb.WriteString(`,"args":{`)
	for i, a := range args {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(quote(a.Key))
		sb.WriteByte(':')
		if a.str {
			sb.WriteString(quote(a.Str))
		} else {
			sb.WriteString(strconv.FormatInt(a.Int, 10))
		}
	}
	sb.WriteByte('}')
}

// WriteTrace emits the merged event stream as Chrome trace-event JSON
// (the "JSON object format": {"traceEvents": [...]}). Thread-name
// metadata events label each buffer, and ordering is fully deterministic.
func (t *Tracer) WriteTrace(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, `{"traceEvents":[]}`+"\n")
		return err
	}
	t.mu.Lock()
	names := append([]string(nil), t.names...)
	t.mu.Unlock()
	var sb strings.Builder
	sb.WriteString(`{"displayTimeUnit":"ns","traceEvents":[`)
	first := true
	for tid, name := range names {
		if !first {
			sb.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&sb, `{"name":"thread_name","ph":"M","pid":0,"tid":%d,"args":{"name":%s}}`,
			tid, quote(name))
	}
	for _, e := range t.Events() {
		if !first {
			sb.WriteByte(',')
		}
		first = false
		sb.WriteString("\n")
		sb.WriteString(`{"name":`)
		sb.WriteString(quote(e.Name))
		sb.WriteString(`,"cat":`)
		sb.WriteString(quote(e.Cat))
		sb.WriteString(`,"ph":"`)
		sb.WriteByte(e.Ph)
		sb.WriteString(`","ts":`)
		sb.WriteString(micros(int64(e.Ts)))
		if e.Ph == PhaseSpan {
			sb.WriteString(`,"dur":`)
			sb.WriteString(micros(int64(e.Dur)))
		}
		if e.Ph == PhaseInstant {
			sb.WriteString(`,"s":"t"`)
		}
		fmt.Fprintf(&sb, `,"pid":0,"tid":%d`, e.Tid)
		if len(e.Args) > 0 {
			writeArgs(&sb, e.Args)
		}
		sb.WriteByte('}')
	}
	sb.WriteString("\n]}\n")
	_, err := io.WriteString(w, sb.String())
	return err
}
