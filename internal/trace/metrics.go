package trace

import (
	"encoding/json"
	"io"
	"math/bits"
	"strconv"
	"sync"
)

// Registry is a typed metrics store: counters, gauges, and power-of-two
// bucketed histograms, addressed by name. Labels are embedded in the name
// (e.g. `cache.hit{section=edges,structure=direct,line=256}`) so the
// serialization is a flat, sorted map — stable across runs. Get-or-create
// accessors make instrumentation sites one-liners; all metric methods are
// nil-safe so a disabled registry costs one nil check.
type Registry struct {
	mu    sync.Mutex
	ctrs  map[string]*Counter
	gauge map[string]*Gauge
	hists map[string]*Histogram
	res   map[string]*Reservoir
}

// NewRegistry returns an empty enabled registry.
func NewRegistry() *Registry {
	return &Registry{
		ctrs:  make(map[string]*Counter),
		gauge: make(map[string]*Gauge),
		hists: make(map[string]*Histogram),
		res:   make(map[string]*Reservoir),
	}
}

// Counter is a monotone event count.
type Counter struct {
	mu sync.Mutex
	v  int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.v += n
	c.mu.Unlock()
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value reports the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v
}

// Gauge is a last-value-wins instantaneous measurement.
type Gauge struct {
	mu sync.Mutex
	v  int64
}

// Set records the gauge's current value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.v = v
	g.mu.Unlock()
}

// Value reports the last value set (0 for a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// histBuckets is the fixed bucket count of a Histogram: bucket i counts
// observations v with bits.Len64(v) == i, i.e. exponentially-wider ranges
// [2^(i-1), 2^i). 64 covers the full int64 range, so no observation is
// ever dropped.
const histBuckets = 65

// Histogram accumulates a distribution in power-of-two buckets — enough
// resolution to tell a 3 µs hit from a 40 µs degraded read without
// configuring bucket bounds per metric.
type Histogram struct {
	mu      sync.Mutex
	count   int64
	sum     int64
	min     int64
	max     int64
	buckets [histBuckets]int64
}

// Observe records one sample. Negative samples clamp to zero.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.mu.Lock()
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.buckets[bits.Len64(uint64(v))]++
	h.mu.Unlock()
}

// Count reports the number of samples observed (0 for a nil histogram).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum reports the total of all samples observed.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.ctrs[name]
	if c == nil {
		c = &Counter{}
		r.ctrs[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauge[name]
	if g == nil {
		g = &Gauge{}
		r.gauge[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// histJSON is a histogram's serialized form. Buckets are emitted sparsely
// as {"2^i": count} with only non-empty buckets, keyed by the bucket's
// upper bound exponent.
type histJSON struct {
	Count   int64            `json:"count"`
	Sum     int64            `json:"sum"`
	Min     int64            `json:"min"`
	Max     int64            `json:"max"`
	Buckets map[string]int64 `json:"buckets"`
}

func bucketLabel(i int) string {
	// Bucket i holds values with bit length i: [2^(i-1), 2^i). Label by
	// the exclusive upper bound; bucket 0 holds exactly the value 0.
	if i == 0 {
		return "0"
	}
	return "lt_2e" + strconv.Itoa(i)
}

// WriteJSON serializes every metric. encoding/json sorts map keys, so the
// output is byte-stable for a given set of metric values.
func (r *Registry) WriteJSON(w io.Writer) error {
	var out struct {
		Counters    map[string]int64    `json:"counters"`
		Gauges      map[string]int64    `json:"gauges"`
		Histograms  map[string]histJSON `json:"histograms"`
		Percentiles map[string]resJSON  `json:"percentiles"`
	}
	out.Counters = map[string]int64{}
	out.Gauges = map[string]int64{}
	out.Histograms = map[string]histJSON{}
	out.Percentiles = map[string]resJSON{}
	if r != nil {
		r.mu.Lock()
		for name, c := range r.ctrs {
			out.Counters[name] = c.Value()
		}
		for name, g := range r.gauge {
			out.Gauges[name] = g.Value()
		}
		for name, h := range r.hists {
			h.mu.Lock()
			hj := histJSON{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max,
				Buckets: map[string]int64{}}
			for i, n := range h.buckets {
				if n > 0 {
					hj.Buckets[bucketLabel(i)] = n
				}
			}
			h.mu.Unlock()
			out.Histograms[name] = hj
		}
		for name, p := range r.res {
			out.Percentiles[name] = p.snapshotJSON()
		}
		r.mu.Unlock()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&out)
}
