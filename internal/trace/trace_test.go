package trace

import (
	"bytes"
	"encoding/json"
	"testing"

	"mira/internal/sim"
)

// TestNilSafety: every operation on a disabled (nil) tracer, buffer, and
// metric must be a no-op, never a panic — this is the zero-cost-when-
// disabled contract the hot paths rely on.
func TestNilSafety(t *testing.T) {
	var tr *Tracer
	if tr.Registry() != nil {
		t.Fatal("nil tracer should hand out a nil registry")
	}
	b := tr.Buffer("rt")
	if b != nil {
		t.Fatal("nil tracer should hand out a nil buffer")
	}
	b.Instant(5, "rt", "miss")
	b.Span(0, 10, "rt", "fetch", I("lines", 3), S("section", "edges"))
	if got := tr.Events(); got != nil {
		t.Fatalf("nil tracer Events = %v, want nil", got)
	}
	var buf bytes.Buffer
	if err := tr.WriteTrace(&buf); err != nil {
		t.Fatalf("nil WriteTrace: %v", err)
	}
	var reg *Registry
	reg.Counter("x").Inc()
	reg.Gauge("y").Set(7)
	reg.Histogram("z").Observe(42)
	if reg.Counter("x").Value() != 0 || reg.Histogram("z").Count() != 0 {
		t.Fatal("nil registry metrics should read zero")
	}
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatalf("nil WriteJSON: %v", err)
	}
}

// TestMergeOrder: events from multiple buffers come out sorted by
// (instant, tid, per-buffer sequence) regardless of append interleaving.
func TestMergeOrder(t *testing.T) {
	tr := New()
	a := tr.Buffer("a")
	b := tr.Buffer("b")
	b.Instant(20, "t", "b-late")
	a.Instant(20, "t", "a-late")
	a.Instant(10, "t", "a-early")
	a.Instant(10, "t", "a-early-2")
	b.Span(5, 30, "t", "b-span")
	ev := tr.Events()
	want := []string{"b-span", "a-early", "a-early-2", "a-late", "b-late"}
	if len(ev) != len(want) {
		t.Fatalf("got %d events, want %d", len(ev), len(want))
	}
	for i, name := range want {
		if ev[i].Name != name {
			t.Errorf("event %d = %q, want %q", i, ev[i].Name, name)
		}
	}
	// Same-instant same-buffer events keep append order via Seq.
	if ev[1].Seq >= ev[2].Seq {
		t.Errorf("seq order broken: %d then %d", ev[1].Seq, ev[2].Seq)
	}
}

// TestBufferReuse: asking for the same buffer name twice returns the same
// buffer (one tid), not a fresh one.
func TestBufferReuse(t *testing.T) {
	tr := New()
	a1 := tr.Buffer("rt")
	a2 := tr.Buffer("rt")
	if a1 != a2 {
		t.Fatal("same name should return the same buffer")
	}
	b := tr.Buffer("net")
	if b == a1 {
		t.Fatal("distinct names should return distinct buffers")
	}
	if a1.tid == b.tid {
		t.Fatal("distinct buffers should have distinct tids")
	}
}

// TestWriteTraceJSON: output parses as Chrome trace-event JSON with the
// fields Perfetto requires, and negative-duration spans clamp to zero.
func TestWriteTraceJSON(t *testing.T) {
	tr := New()
	b := tr.Buffer("rt")
	b.Span(1500, 4500, "rt", "fetch", S("section", "edges"), I("lines", 2))
	b.Instant(2000, "net", "retry")
	b.Span(100, 50, "rt", "clamped") // end before start
	var buf bytes.Buffer
	if err := tr.WriteTrace(&buf); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	// 1 thread_name metadata + 3 events.
	if len(doc.TraceEvents) != 4 {
		t.Fatalf("got %d events, want 4:\n%s", len(doc.TraceEvents), buf.String())
	}
	for _, e := range doc.TraceEvents {
		for _, field := range []string{"name", "ph", "pid", "tid"} {
			if _, ok := e[field]; !ok {
				t.Errorf("event missing %q: %v", field, e)
			}
		}
	}
	// Events sort by instant: clamped (ts 100), fetch (1500), retry (2000).
	span := doc.TraceEvents[2]
	if span["ts"].(float64) != 1.5 { // 1500 ns = 1.5 µs
		t.Errorf("ts = %v µs, want 1.5", span["ts"])
	}
	if span["dur"].(float64) != 3.0 {
		t.Errorf("dur = %v µs, want 3.0", span["dur"])
	}
	if args := span["args"].(map[string]any); args["section"] != "edges" || args["lines"].(float64) != 2 {
		t.Errorf("args = %v", args)
	}
	clamped := doc.TraceEvents[1]
	if clamped["dur"].(float64) != 0 {
		t.Errorf("clamped span dur = %v, want 0", clamped["dur"])
	}
}

// TestWriteTraceByteStable: identical event streams serialize to identical
// bytes — the property the CI trace-smoke job asserts end to end.
func TestWriteTraceByteStable(t *testing.T) {
	build := func() *Tracer {
		tr := New()
		rt := tr.Buffer("rt")
		net := tr.Buffer("net")
		for i := 0; i < 50; i++ {
			rt.Span(sim.Time(i*100), sim.Time(i*100+40), "rt", "fetch", I("i", int64(i)))
			net.Instant(sim.Time(i*100+10), "net", "send")
		}
		tr.Registry().Counter("rt.miss").Add(50)
		tr.Registry().Histogram("lat").Observe(1234)
		return tr
	}
	var t1, t2, m1, m2 bytes.Buffer
	a, b := build(), build()
	if err := a.WriteTrace(&t1); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteTrace(&t2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(t1.Bytes(), t2.Bytes()) {
		t.Error("trace output not byte-stable across identical runs")
	}
	if err := a.Registry().WriteJSON(&m1); err != nil {
		t.Fatal(err)
	}
	if err := b.Registry().WriteJSON(&m2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(m1.Bytes(), m2.Bytes()) {
		t.Error("metrics output not byte-stable across identical runs")
	}
}

// TestRegistry: get-or-create semantics and histogram bucket accounting.
func TestRegistry(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits")
	c.Inc()
	c.Add(4)
	if r.Counter("hits").Value() != 5 {
		t.Errorf("counter = %d, want 5", r.Counter("hits").Value())
	}
	r.Gauge("depth").Set(9)
	r.Gauge("depth").Set(3)
	if r.Gauge("depth").Value() != 3 {
		t.Errorf("gauge = %d, want 3", r.Gauge("depth").Value())
	}
	h := r.Histogram("lat")
	for _, v := range []int64{0, 1, 2, 3, 4, 1000, -7} {
		h.Observe(v)
	}
	if h.Count() != 7 {
		t.Errorf("hist count = %d, want 7", h.Count())
	}
	if h.Sum() != 1010 {
		t.Errorf("hist sum = %d, want 1010", h.Sum())
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var doc struct {
		Counters   map[string]int64 `json:"counters"`
		Gauges     map[string]int64 `json:"gauges"`
		Histograms map[string]struct {
			Count   int64            `json:"count"`
			Sum     int64            `json:"sum"`
			Min     int64            `json:"min"`
			Max     int64            `json:"max"`
			Buckets map[string]int64 `json:"buckets"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("metrics JSON invalid: %v\n%s", err, buf.String())
	}
	if doc.Counters["hits"] != 5 || doc.Gauges["depth"] != 3 {
		t.Errorf("serialized values wrong: %+v", doc)
	}
	hj := doc.Histograms["lat"]
	if hj.Count != 7 || hj.Min != 0 || hj.Max != 1000 {
		t.Errorf("hist summary wrong: %+v", hj)
	}
	// 0 and -7 (clamped) land in bucket "0"; 1 in lt_2e1; 2,3 in lt_2e2;
	// 4 in lt_2e3; 1000 in lt_2e10.
	wantBuckets := map[string]int64{"0": 2, "lt_2e1": 1, "lt_2e2": 2, "lt_2e3": 1, "lt_2e10": 1}
	for k, n := range wantBuckets {
		if hj.Buckets[k] != n {
			t.Errorf("bucket %q = %d, want %d (all: %v)", k, hj.Buckets[k], n, hj.Buckets)
		}
	}
}
