package trace

import (
	"sort"
	"sync"
)

// DefaultReservoirCap bounds a Reservoir's retained samples. Serving runs
// record one latency per admitted request, so the default comfortably holds
// every sample of a bench-scale run and percentiles stay exact.
const DefaultReservoirCap = 8192

// Reservoir is a bounded recorder emitting exact percentiles: pow-2
// histogram buckets are factor-of-two wide, far too coarse to tell a p95
// from a p99 under tail amplification. Below its cap the reservoir keeps
// every sample and percentiles are exact. At the cap it decimates
// deterministically — every second retained sample is dropped and the
// recording stride doubles, so the kept set stays a uniform systematic
// sample of the stream and two identical runs decimate identically (no RNG
// involved). Count, sum, min, and max always cover every observation.
type Reservoir struct {
	mu      sync.Mutex
	cap_    int
	stride  int64 // record every stride-th observation
	tick    int64 // observations since the last recorded one
	samples []int64
	count   int64
	sum     int64
	min     int64
	max     int64
}

// Observe records one sample. Negative samples clamp to zero (latencies).
func (p *Reservoir) Observe(v int64) {
	if p == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.count == 0 || v < p.min {
		p.min = v
	}
	if v > p.max {
		p.max = v
	}
	p.count++
	p.sum += v
	if p.stride == 0 {
		p.stride = 1
	}
	p.tick++
	if p.tick < p.stride {
		return
	}
	p.tick = 0
	p.samples = append(p.samples, v)
	if p.cap_ > 0 && len(p.samples) >= p.cap_ {
		// Systematic decimation: keep every second sample, double the
		// stride. Deterministic, order-preserving, uniform over the stream.
		kept := p.samples[:0]
		for i := 1; i < len(p.samples); i += 2 {
			kept = append(kept, p.samples[i])
		}
		p.samples = kept
		p.stride *= 2
	}
}

// Count reports the number of observations (0 for a nil reservoir).
func (p *Reservoir) Count() int64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.count
}

// Sum reports the total of all observations.
func (p *Reservoir) Sum() int64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.sum
}

// Max reports the largest observation (0 when empty).
func (p *Reservoir) Max() int64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.max
}

// Quantile returns the q-quantile (0 <= q <= 1) of the retained samples by
// the nearest-rank method on the sorted sample set: exact while the
// reservoir is below its cap, a systematic-sample estimate after
// decimation. Returns 0 when empty.
func (p *Reservoir) Quantile(q float64) int64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return quantileLocked(p.samples, q)
}

// quantileLocked computes the nearest-rank quantile over a copy of samples.
func quantileLocked(samples []int64, q float64) int64 {
	n := len(samples)
	if n == 0 {
		return 0
	}
	sorted := append([]int64(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if q <= 0 {
		return sorted[0]
	}
	rank := int(q*float64(n)+0.999999) - 1 // ceil(q*n) - 1, nearest-rank
	if rank < 0 {
		rank = 0
	}
	if rank >= n {
		rank = n - 1
	}
	return sorted[rank]
}

// P50 is Quantile(0.50).
func (p *Reservoir) P50() int64 { return p.Quantile(0.50) }

// P95 is Quantile(0.95).
func (p *Reservoir) P95() int64 { return p.Quantile(0.95) }

// P99 is Quantile(0.99).
func (p *Reservoir) P99() int64 { return p.Quantile(0.99) }

// Reservoir returns the named reservoir, creating it on first use with
// DefaultReservoirCap. A nil registry returns a nil (no-op) reservoir.
func (r *Registry) Reservoir(name string) *Reservoir {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	p := r.res[name]
	if p == nil {
		p = &Reservoir{cap_: DefaultReservoirCap}
		r.res[name] = p
	}
	return p
}

// resJSON is a reservoir's serialized form: exact nearest-rank percentiles
// from the retained sample set plus whole-stream count/sum/min/max.
type resJSON struct {
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
	Min   int64 `json:"min"`
	Max   int64 `json:"max"`
	P50   int64 `json:"p50"`
	P95   int64 `json:"p95"`
	P99   int64 `json:"p99"`
}

// snapshotJSON renders the reservoir for WriteJSON. Called with the
// registry lock held; takes the reservoir's own lock like Histogram does.
func (p *Reservoir) snapshotJSON() resJSON {
	p.mu.Lock()
	defer p.mu.Unlock()
	return resJSON{
		Count: p.count, Sum: p.sum, Min: p.min, Max: p.max,
		P50: quantileLocked(p.samples, 0.50),
		P95: quantileLocked(p.samples, 0.95),
		P99: quantileLocked(p.samples, 0.99),
	}
}
