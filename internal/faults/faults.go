// Package faults is a deterministic, seeded fault-injection framework for
// the far-memory data path. An Injector wraps the transport.Backend boundary
// between the resilient transport and the far node and perturbs traffic in
// virtual time: delay spikes, transient I/O errors, payload corruption (bit
// flips that the transport's end-to-end checksums catch), far-node crash
// windows (with or without memory loss on restart), and network partitions.
//
// Everything is a pure function of (seed, schedule, operation sequence):
// running the same workload against the same Config twice injects the exact
// same faults at the exact same virtual instants, which is what makes
// robustness regressions bisectable.
package faults

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"mira/internal/farmem"
	"mira/internal/sim"
	"mira/internal/transport"
)

// injError is a transient fault-injector error. nack reports whether the
// failure was an explicit reply (detected after ~1 RTT) or silence (the
// transport waits out its deadline).
type injError struct {
	msg  string
	nack bool
}

func (e *injError) Error() string   { return e.msg }
func (e *injError) Transient() bool { return true }
func (e *injError) Nack() bool      { return e.nack }

// Sentinel errors the injector produces. All are transient — a retry may
// succeed once the fault window passes.
var (
	// ErrNodeDown reports an operation issued while the far node is
	// crashed. Silent: the client only learns via its deadline.
	ErrNodeDown error = &injError{msg: "faults: far node is down"}
	// ErrPartition reports an operation issued while the network is
	// partitioned. Silent, like a dropped packet.
	ErrPartition error = &injError{msg: "faults: network partitioned"}
	// ErrInjectedIO is a random transient I/O failure (explicit NACK from
	// the NIC or the far node's receive path).
	ErrInjectedIO error = &injError{msg: "faults: injected transient I/O error", nack: true}
)

// Interface conformance for the transport's error classification.
var (
	_ transport.TransientError = ErrNodeDown.(*injError)
	_ transport.NackError      = ErrInjectedIO.(*injError)
)

// EventKind labels a scheduled fault event.
type EventKind int

const (
	// Crash takes the far node down at Event.At.
	Crash EventKind = iota
	// Restart brings the far node back. If the matching Crash had
	// LoseMemory set, the node restarts with every allocated byte zeroed.
	Restart
	// PartitionStart cuts the network at Event.At.
	PartitionStart
	// PartitionEnd heals the partition.
	PartitionEnd
)

func (k EventKind) String() string {
	switch k {
	case Crash:
		return "crash"
	case Restart:
		return "restart"
	case PartitionStart:
		return "partition-start"
	case PartitionEnd:
		return "partition-end"
	default:
		return fmt.Sprintf("event(%d)", int(k))
	}
}

// Event is one scheduled fault transition at a virtual instant.
type Event struct {
	At   sim.Time
	Kind EventKind
	// LoseMemory, on a Crash, wipes the node's memory when it restarts —
	// modelling volatile far memory with no replication.
	LoseMemory bool
}

// Config describes a fault scenario: a deterministic schedule of
// crash/partition windows plus seeded probabilistic per-operation faults.
// The zero value injects nothing.
type Config struct {
	// Seed drives every probabilistic draw. Same seed, same workload,
	// same faults.
	Seed uint64
	// Schedule is the list of crash/partition transitions, in any order
	// (the injector sorts by At).
	Schedule []Event
	// ErrorRate is the per-attempt probability of a transient I/O NACK.
	ErrorRate float64
	// DelayRate is the per-attempt probability of a delay spike of
	// uniform size in [DelayMin, DelayMax].
	DelayRate float64
	DelayMin  sim.Duration
	DelayMax  sim.Duration
	// CorruptRate is the per-read probability of flipping one payload bit
	// in flight. The far node's checksum covers the true data, so the
	// transport detects the flip and retries.
	CorruptRate float64
}

// Enabled reports whether the config injects any fault at all.
func (c Config) Enabled() bool {
	return len(c.Schedule) > 0 || c.ErrorRate > 0 || c.DelayRate > 0 || c.CorruptRate > 0
}

// Stats counts what the injector actually did.
type Stats struct {
	Ops          int64
	DownRefusals int64 // attempts refused by a crash window
	Partitioned  int64 // attempts dropped by a partition window
	IOErrors     int64 // injected transient NACKs
	Delays       int64 // injected delay spikes
	BitFlips     int64 // injected payload corruptions
	Wipes        int64 // memory-losing restarts applied
}

// Injector implements transport.Backend over an inner backend, injecting the
// configured faults. Safe for concurrent use.
type Injector struct {
	inner transport.Backend
	wipe  func() // zeroes far memory on a memory-losing restart (may be nil)

	mu       sync.Mutex
	cfg      Config
	rng      *sim.RNG
	schedule []Event    // sorted by At
	wipeAt   []sim.Time // restart instants that lose memory, sorted
	wiped    int        // prefix of wipeAt already applied
	stats    Stats
	log      []string
}

// New wraps the given far-memory node with fault injection.
func New(node *farmem.Node, cfg Config) *Injector {
	return Wrap(transport.NewNodeBackend(node), node.WipeMemory, cfg)
}

// Wrap builds an injector over an arbitrary backend. wipe (which may be nil)
// is invoked when a memory-losing crash restarts.
func Wrap(inner transport.Backend, wipe func(), cfg Config) *Injector {
	in := &Injector{
		inner: inner,
		wipe:  wipe,
		cfg:   cfg,
		rng:   sim.NewRNG(cfg.Seed),
	}
	in.schedule = append(in.schedule, cfg.Schedule...)
	sort.SliceStable(in.schedule, func(i, j int) bool { return in.schedule[i].At < in.schedule[j].At })
	// Pre-compute the restart instants that lose memory: a LoseMemory
	// crash wipes at its matching (next) Restart.
	losing := false
	for _, e := range in.schedule {
		switch e.Kind {
		case Crash:
			losing = e.LoseMemory
		case Restart:
			if losing {
				in.wipeAt = append(in.wipeAt, e.At)
				losing = false
			}
		}
	}
	return in
}

// Stats snapshots the injector's counters.
func (in *Injector) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// Log returns the injected-event log: one line per injected fault, in
// injection order. Two runs with the same seed and workload produce
// identical logs — the determinism acceptance check.
func (in *Injector) Log() []string {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]string, len(in.log))
	copy(out, in.log)
	return out
}

func (in *Injector) record(now sim.Time, format string, args ...any) {
	in.log = append(in.log, fmt.Sprintf("%d %s", int64(now), fmt.Sprintf(format, args...)))
}

// Sync forces every pending memory-losing wipe whose restart instant is at
// or before now to apply immediately. Wipes normally apply lazily on the
// first operation past the restart; recovery passes (cluster re-sync) call
// Sync first so "has this node lost its memory by now?" has a deterministic
// answer even when no operation has touched the node yet.
func (in *Injector) Sync(now sim.Time) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.applyWipesLocked(now)
}

// Down reports whether the node is inside a crash or partition window at
// instant now — i.e. whether an operation issued now would be refused.
// Recovery passes consult it to avoid "restoring" a node that is still
// dark (a pre-restart restore would be erased by the pending wipe).
func (in *Injector) Down(now sim.Time) bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	crashed, partitioned := false, false
	for _, e := range in.schedule {
		if e.At > now {
			break
		}
		switch e.Kind {
		case Crash:
			crashed = true
		case Restart:
			crashed = false
		case PartitionStart:
			partitioned = true
		case PartitionEnd:
			partitioned = false
		}
	}
	return crashed || partitioned
}

// applyWipesLocked fires every memory-losing restart at or before now.
// Called with in.mu held.
func (in *Injector) applyWipesLocked(now sim.Time) {
	for in.wiped < len(in.wipeAt) && in.wipeAt[in.wiped] <= now {
		if in.wipe != nil {
			in.wipe()
		}
		in.stats.Wipes++
		in.record(in.wipeAt[in.wiped], "wipe: far memory lost across restart")
		in.wiped++
	}
}

// gate applies the schedule at instant now: lazily wipes memory for
// memory-losing restarts that have passed, then refuses the attempt if it
// falls in a crash or partition window. Called with in.mu held.
func (in *Injector) gate(now sim.Time, op string) error {
	in.applyWipesLocked(now)
	crashed, partitioned := false, false
	for _, e := range in.schedule {
		if e.At > now {
			break
		}
		switch e.Kind {
		case Crash:
			crashed = true
		case Restart:
			crashed = false
		case PartitionStart:
			partitioned = true
		case PartitionEnd:
			partitioned = false
		}
	}
	if crashed {
		in.stats.DownRefusals++
		in.record(now, "down: %s refused (node crashed)", op)
		return ErrNodeDown
	}
	if partitioned {
		in.stats.Partitioned++
		in.record(now, "drop: %s lost (partition)", op)
		return ErrPartition
	}
	return nil
}

// perturb makes the probabilistic draws for one attempt, in a fixed order
// (error, then delay, then corruption) so the random stream is identical
// across runs. It returns the injected extra delay and whether to flip a
// payload bit; a non-nil error refuses the attempt.
func (in *Injector) perturb(now sim.Time, op string, read bool) (extra sim.Duration, flip bool, err error) {
	if in.cfg.ErrorRate > 0 && in.rng.Float64() < in.cfg.ErrorRate {
		in.stats.IOErrors++
		in.record(now, "io-error: %s", op)
		return 0, false, ErrInjectedIO
	}
	if in.cfg.DelayRate > 0 && in.rng.Float64() < in.cfg.DelayRate {
		span := in.cfg.DelayMax - in.cfg.DelayMin
		d := in.cfg.DelayMin
		if span > 0 {
			d += sim.Duration(in.rng.Uint64() % uint64(span+1))
		}
		if d > 0 {
			in.stats.Delays++
			in.record(now, "delay: %s +%s", op, d)
			extra = d
		}
	}
	if read && in.cfg.CorruptRate > 0 && in.rng.Float64() < in.cfg.CorruptRate {
		in.stats.BitFlips++
		flip = true
	}
	return extra, flip, nil
}

// admit runs the gate and the probabilistic draws for one attempt.
func (in *Injector) admit(now sim.Time, op string, read bool) (sim.Duration, bool, error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.stats.Ops++
	if err := in.gate(now, op); err != nil {
		return 0, false, err
	}
	return in.perturb(now, op, read)
}

// flipBit corrupts one deterministic-random bit of buf in place.
func (in *Injector) flipBit(now sim.Time, op string, buf []byte) {
	if len(buf) == 0 {
		return
	}
	in.mu.Lock()
	bit := int(in.rng.Uint64() % uint64(len(buf)*8))
	in.record(now, "corrupt: %s bit %d of %d bytes", op, bit, len(buf))
	in.mu.Unlock()
	buf[bit/8] ^= 1 << (bit % 8)
}

// Read implements transport.Backend. The checksum is computed by the inner
// backend over the true data; a bit flip afterwards models in-flight
// corruption that the transport's end-to-end check catches.
func (in *Injector) Read(now sim.Time, addr uint64, buf []byte) (uint32, sim.Duration, error) {
	extra, flip, err := in.admit(now, "read", true)
	if err != nil {
		return 0, 0, err
	}
	sum, innerExtra, err := in.inner.Read(now, addr, buf)
	if err != nil {
		return 0, 0, err
	}
	if flip {
		in.flipBit(now, "read", buf)
	}
	return sum, extra + innerExtra, nil
}

// Write implements transport.Backend.
func (in *Injector) Write(now sim.Time, addr uint64, buf []byte) (sim.Duration, error) {
	extra, _, err := in.admit(now, "write", false)
	if err != nil {
		return 0, err
	}
	innerExtra, err := in.inner.Write(now, addr, buf)
	if err != nil {
		return 0, err
	}
	return extra + innerExtra, nil
}

// Gather implements transport.Backend.
func (in *Injector) Gather(now sim.Time, addrs []uint64, sizes []int) ([]byte, uint32, sim.Duration, error) {
	extra, flip, err := in.admit(now, "gather", true)
	if err != nil {
		return nil, 0, 0, err
	}
	data, sum, innerExtra, err := in.inner.Gather(now, addrs, sizes)
	if err != nil {
		return nil, 0, 0, err
	}
	if flip {
		in.flipBit(now, "gather", data)
	}
	return data, sum, extra + innerExtra, nil
}

// Scatter implements transport.Backend.
func (in *Injector) Scatter(now sim.Time, addrs []uint64, pieces [][]byte) (sim.Duration, error) {
	extra, _, err := in.admit(now, "scatter", false)
	if err != nil {
		return 0, err
	}
	innerExtra, err := in.inner.Scatter(now, addrs, pieces)
	if err != nil {
		return 0, err
	}
	return extra + innerExtra, nil
}

// Call implements transport.Backend. RPC replies are length-framed rather
// than checksummed in this model, so corruption is not injected here.
func (in *Injector) Call(now sim.Time, name string, args []byte) ([]byte, sim.Duration, sim.Duration, error) {
	extra, _, err := in.admit(now, "call "+name, false)
	if err != nil {
		return nil, 0, 0, err
	}
	res, farCPU, innerExtra, err := in.inner.Call(now, name, args)
	if err != nil {
		return nil, 0, 0, err
	}
	return res, farCPU, extra + innerExtra, nil
}

// DownAt reports whether the schedule has the far node crashed or
// partitioned at the given instant (for tests and schedule debugging).
func (in *Injector) DownAt(now sim.Time) bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	crashed, partitioned := false, false
	for _, e := range in.schedule {
		if e.At > now {
			break
		}
		switch e.Kind {
		case Crash:
			crashed = true
		case Restart:
			crashed = false
		case PartitionStart:
			partitioned = true
		case PartitionEnd:
			partitioned = false
		}
	}
	return crashed || partitioned
}

// IsInjected reports whether err originated in the fault injector.
func IsInjected(err error) bool {
	var ie *injError
	return errors.As(err, &ie)
}
