package faults

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"mira/internal/farmem"
	"mira/internal/netmodel"
	"mira/internal/sim"
	"mira/internal/transport"
)

func newNode(t *testing.T) (*farmem.Node, uint64) {
	t.Helper()
	node := farmem.NewNode(farmem.NodeConfig{Capacity: 1 << 20, CPUSlowdown: 2})
	base, err := node.Alloc(4096)
	if err != nil {
		t.Fatal(err)
	}
	return node, base
}

func TestErrorClassification(t *testing.T) {
	for _, err := range []error{ErrNodeDown, ErrPartition, ErrInjectedIO} {
		if !transport.IsTransient(err) {
			t.Errorf("%v not transient", err)
		}
		if !IsInjected(err) {
			t.Errorf("%v not recognized as injected", err)
		}
	}
	// Only the explicit NACK is detected after one RTT; crash and partition
	// are silence, so the transport waits out its deadline.
	nack := func(err error) bool {
		var ne transport.NackError
		return errors.As(err, &ne) && ne.Nack()
	}
	if !nack(ErrInjectedIO) {
		t.Error("ErrInjectedIO should be a NACK")
	}
	if nack(ErrNodeDown) || nack(ErrPartition) {
		t.Error("crash/partition must be silent, not NACKs")
	}
	if IsInjected(farmem.ErrUnmapped) {
		t.Error("node refusal misattributed to the injector")
	}
}

func TestCrashWindowRefusesThenRecovers(t *testing.T) {
	node, base := newNode(t)
	in := New(node, Config{Schedule: []Event{
		{At: 100, Kind: Crash},
		{At: 200, Kind: Restart},
	}})
	buf := make([]byte, 8)
	if _, _, err := in.Read(50, base, buf); err != nil {
		t.Fatalf("pre-crash read: %v", err)
	}
	if _, _, err := in.Read(150, base, buf); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("mid-crash read err = %v, want ErrNodeDown", err)
	}
	if !in.DownAt(150) || in.DownAt(250) {
		t.Fatalf("DownAt disagrees with the schedule")
	}
	if _, _, err := in.Read(250, base, buf); err != nil {
		t.Fatalf("post-restart read: %v", err)
	}
	st := in.Stats()
	if st.DownRefusals != 1 {
		t.Fatalf("refusals = %d, want 1", st.DownRefusals)
	}
}

func TestPartitionWindowDrops(t *testing.T) {
	node, base := newNode(t)
	in := New(node, Config{Schedule: []Event{
		{At: 100, Kind: PartitionStart},
		{At: 200, Kind: PartitionEnd},
	}})
	if _, err := in.Write(150, base, []byte{1}); !errors.Is(err, ErrPartition) {
		t.Fatalf("err = %v, want ErrPartition", err)
	}
	if _, err := in.Write(250, base, []byte{1}); err != nil {
		t.Fatalf("post-heal write: %v", err)
	}
	if in.Stats().Partitioned != 1 {
		t.Fatalf("partition drops = %d, want 1", in.Stats().Partitioned)
	}
}

func TestMemoryLosingRestartWipes(t *testing.T) {
	node, base := newNode(t)
	in := New(node, Config{Schedule: []Event{
		{At: 100, Kind: Crash, LoseMemory: true},
		{At: 200, Kind: Restart},
	}})
	data := []byte{1, 2, 3, 4}
	if _, err := in.Write(10, base, data); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, _, err := in.Read(250, base, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, make([]byte, 4)) {
		t.Fatalf("post-wipe read = %v, want zeroes", buf)
	}
	if in.Stats().Wipes != 1 {
		t.Fatalf("wipes = %d, want 1", in.Stats().Wipes)
	}
}

func TestNonLosingRestartKeepsMemory(t *testing.T) {
	node, base := newNode(t)
	in := New(node, Config{Schedule: []Event{
		{At: 100, Kind: Crash},
		{At: 200, Kind: Restart},
	}})
	data := []byte{5, 6, 7, 8}
	if _, err := in.Write(10, base, data); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, _, err := in.Read(250, base, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data) {
		t.Fatalf("post-restart read = %v, want %v", buf, data)
	}
}

// TestDeterministicInjection is the determinism acceptance check at the
// injector level: same seed, same schedule, same operation sequence —
// identical injected-event log, stats, and per-op outcomes.
func TestDeterministicInjection(t *testing.T) {
	run := func() ([]string, Stats, []string) {
		node, base := newNode(t)
		in := New(node, Config{
			Seed:        42,
			ErrorRate:   0.2,
			DelayRate:   0.3,
			DelayMin:    sim.Microsecond,
			DelayMax:    20 * sim.Microsecond,
			CorruptRate: 0.2,
			Schedule: []Event{
				{At: 5000, Kind: Crash},
				{At: 7000, Kind: Restart},
			},
		})
		var outcomes []string
		buf := make([]byte, 32)
		for i := 0; i < 200; i++ {
			at := sim.Time(i * 50)
			var err error
			var extra sim.Duration
			if i%2 == 0 {
				_, err = in.Write(at, base+uint64(i%64), buf)
			} else {
				_, extra, err = in.Read(at, base+uint64(i%64), buf)
			}
			outcomes = append(outcomes, errString(err)+"/"+extra.String())
		}
		return in.Log(), in.Stats(), outcomes
	}
	logA, stA, outA := run()
	logB, stB, outB := run()
	if !reflect.DeepEqual(logA, logB) {
		t.Fatalf("injected-event logs differ:\nA: %v\nB: %v", logA, logB)
	}
	if stA != stB {
		t.Fatalf("stats differ: %+v vs %+v", stA, stB)
	}
	if !reflect.DeepEqual(outA, outB) {
		t.Fatalf("per-op outcomes differ")
	}
	if len(logA) == 0 {
		t.Fatal("nothing was injected; the test exercised nothing")
	}
	if stA.IOErrors == 0 || stA.Delays == 0 || stA.BitFlips == 0 || stA.DownRefusals == 0 {
		t.Fatalf("fault mix incomplete: %+v", stA)
	}
}

func errString(err error) string {
	if err == nil {
		return "ok"
	}
	return err.Error()
}

// TestCorruptionCaughtEndToEnd drives the full transport over the injector:
// every read is bit-flipped in flight, the end-to-end checksum catches every
// flip, and the retry budget eventually exhausts into ErrFarUnavailable.
func TestCorruptionCaughtEndToEnd(t *testing.T) {
	node, base := newNode(t)
	tr := transport.New(node, netmodel.DefaultConfig())
	tr.SetBackend(New(node, Config{Seed: 9, CorruptRate: 1}))
	if err := node.Write(base, []byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	_, err := tr.ReadOneSided(0, base, make([]byte, 4))
	if !errors.Is(err, transport.ErrFarUnavailable) {
		t.Fatalf("err = %v, want ErrFarUnavailable after exhausting retries", err)
	}
	if got := tr.Stats().Corruptions; got != int64(tr.Policy().MaxAttempts) {
		t.Fatalf("corruptions = %d, want one per attempt (%d)", got, tr.Policy().MaxAttempts)
	}
}

// TestOccasionalCorruptionCured is the happy path: a low corruption rate is
// invisible to callers because retries re-fetch clean data.
func TestOccasionalCorruptionCured(t *testing.T) {
	node, base := newNode(t)
	tr := transport.New(node, netmodel.DefaultConfig())
	tr.SetBackend(New(node, Config{Seed: 5, CorruptRate: 0.3}))
	want := []byte{9, 8, 7, 6, 5, 4, 3, 2}
	if err := node.Write(base, want); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	for i := 0; i < 50; i++ {
		if _, err := tr.ReadOneSided(sim.Time(i*1000), base, buf); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if !bytes.Equal(buf, want) {
			t.Fatalf("read %d returned corrupted data: %v", i, buf)
		}
	}
	if tr.Stats().Corruptions == 0 {
		t.Fatal("no corruption was injected; lower the rate check")
	}
}

func TestNamedSchedules(t *testing.T) {
	names := Names()
	if len(names) == 0 {
		t.Fatal("no named schedules")
	}
	for _, n := range names {
		cfg, err := Named(n, 1)
		if err != nil {
			t.Fatalf("%s: %v", n, err)
		}
		if n != "none" && !cfg.Enabled() {
			t.Errorf("%s builds a no-op config", n)
		}
	}
	if _, err := Named("no-such-schedule", 1); err == nil {
		t.Fatal("unknown schedule accepted")
	}
	// Windows scale with the measured horizon.
	h := 60 * sim.Millisecond
	cfg, err := NamedScaled("crash", 1, h)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Schedule[0].At != sim.Time(h/3) {
		t.Fatalf("crash at %v, want %v", cfg.Schedule[0].At, sim.Time(h/3))
	}
}

func TestZeroConfigInjectsNothing(t *testing.T) {
	node, base := newNode(t)
	in := New(node, Config{})
	if in.Stats().Ops != 0 {
		t.Fatal("fresh injector has ops")
	}
	buf := make([]byte, 8)
	for i := 0; i < 100; i++ {
		if _, _, err := in.Read(sim.Time(i), base, buf); err != nil {
			t.Fatal(err)
		}
	}
	st := in.Stats()
	if st.IOErrors+st.Delays+st.BitFlips+st.DownRefusals+st.Partitioned != 0 {
		t.Fatalf("zero config injected faults: %+v", st)
	}
	if len(in.Log()) != 0 {
		t.Fatalf("zero config logged: %v", in.Log())
	}
	if (Config{}).Enabled() {
		t.Fatal("zero config claims to be enabled")
	}
}
