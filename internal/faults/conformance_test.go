package faults_test

import (
	"testing"

	"mira/internal/farmem"
	"mira/internal/faults"
	"mira/internal/sim"
	"mira/internal/transport/transporttest"
)

// TestInjectorConformance proves the fault injector is transparent when its
// config injects nothing: same Backend contract as the raw node backend.
func TestInjectorConformance(t *testing.T) {
	transporttest.Conformance(t, func(t *testing.T) transporttest.Instance {
		node := farmem.NewNode(farmem.DefaultNodeConfig())
		return transporttest.Instance{
			Backend: faults.New(node, faults.Config{Seed: 42}),
			Node:    node,
		}
	})
}

// TestInjectorConformanceWithDelays runs the contract with delay injection
// active. Delays perturb completion times but never payloads or checksums,
// and the DeterministicReplay clause must still hold — two injectors with
// the same seed replay identical delay sequences.
func TestInjectorConformanceWithDelays(t *testing.T) {
	transporttest.Conformance(t, func(t *testing.T) transporttest.Instance {
		node := farmem.NewNode(farmem.DefaultNodeConfig())
		cfg := faults.Config{
			Seed:      7,
			DelayRate: 0.5,
			DelayMin:  1 * sim.Microsecond,
			DelayMax:  20 * sim.Microsecond,
		}
		return transporttest.Instance{Backend: faults.New(node, cfg), Node: node}
	})
}
