package faults

import (
	"fmt"
	"sort"

	"mira/internal/sim"
)

// DefaultHorizon is the run length the CLI's named schedules assume when the
// caller has not measured one: crash and partition windows are placed at
// fractions of the horizon.
const DefaultHorizon = 10 * sim.Millisecond

// Names returns the named fault schedules, sorted, for CLI help text.
func Names() []string {
	names := make([]string, 0, len(builders))
	for n := range builders {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

var builders = map[string]func(seed uint64, horizon sim.Duration) Config{
	"none": func(uint64, sim.Duration) Config { return Config{} },
	"flaky": func(seed uint64, _ sim.Duration) Config {
		return Config{
			Seed:      seed,
			ErrorRate: 0.02,
			DelayRate: 0.05,
			DelayMin:  5 * sim.Microsecond,
			DelayMax:  50 * sim.Microsecond,
		}
	},
	"lossy": func(seed uint64, _ sim.Duration) Config {
		return Config{
			Seed:        seed,
			ErrorRate:   0.005,
			CorruptRate: 0.02,
		}
	},
	"crash": func(seed uint64, h sim.Duration) Config {
		return Config{
			Seed: seed,
			Schedule: []Event{
				{At: sim.Time(h / 3), Kind: Crash},
				{At: sim.Time(h / 2), Kind: Restart},
			},
		}
	},
	"crash-wipe": func(seed uint64, h sim.Duration) Config {
		return Config{
			Seed: seed,
			Schedule: []Event{
				{At: sim.Time(h / 3), Kind: Crash, LoseMemory: true},
				{At: sim.Time(h / 2), Kind: Restart},
			},
		}
	},
	"partition": func(seed uint64, h sim.Duration) Config {
		return Config{
			Seed: seed,
			Schedule: []Event{
				{At: sim.Time(h / 4), Kind: PartitionStart},
				{At: sim.Time(h/4 + h/8), Kind: PartitionEnd},
			},
		}
	},
	"chaos": func(seed uint64, h sim.Duration) Config {
		return Config{
			Seed:      seed,
			ErrorRate: 0.01,
			DelayRate: 0.02,
			DelayMin:  5 * sim.Microsecond,
			DelayMax:  30 * sim.Microsecond,
			Schedule: []Event{
				{At: sim.Time(h / 3), Kind: Crash},
				{At: sim.Time(h/3 + h/10), Kind: Restart},
				{At: sim.Time(2 * h / 3), Kind: PartitionStart},
				{At: sim.Time(2*h/3 + h/20), Kind: PartitionEnd},
			},
		}
	},
}

// Named builds one of the predefined fault schedules with windows placed at
// fractions of DefaultHorizon.
func Named(name string, seed uint64) (Config, error) {
	return NamedScaled(name, seed, DefaultHorizon)
}

// NamedScaled builds a predefined schedule with crash/partition windows
// placed at fractions of the given run horizon (callers that know the
// fault-free run time pass it here so windows land mid-run).
func NamedScaled(name string, seed uint64, horizon sim.Duration) (Config, error) {
	b, ok := builders[name]
	if !ok {
		return Config{}, fmt.Errorf("faults: unknown schedule %q (have %v)", name, Names())
	}
	if horizon <= 0 {
		horizon = DefaultHorizon
	}
	return b(seed, horizon), nil
}
