// Package prefetch is the pluggable prefetcher zoo: one policy interface
// serving both data planes — the page-granular swap cache (internal/swap,
// units are 4 KB page numbers) and the line-granular cache sections
// (internal/rt, units are line indices within a section's address space).
// A policy observes the plane's demand-miss stream and proposes units to
// fetch speculatively; the plane filters residency, charges the policy's
// lookup cost to simulated time, and issues the survivors through its
// existing batch/doorbell machinery. Prefetch is always advisory: a
// proposal the plane cannot honor (out of range, no evictable slot, far
// node unreachable) is dropped, never an error.
//
// Policies must be deterministic: same miss stream in, same proposals out,
// with no wall-clock or map-iteration dependence. That is what makes traces
// byte-reproducible across identical runs and policy races bisectable.
package prefetch

import (
	"fmt"
	"sort"

	"mira/internal/sim"
)

// Policy is the one interface both planes consume. OnMiss observes a
// demand miss on a unit (page number on the page plane, line index on the
// line plane) and returns unit numbers to fetch ahead; the plane filters
// out-of-range/resident/in-flight units. PerMissOverhead is the policy's
// metadata cost charged to the faulting thread on every miss (trend
// detection, table lookups); it models the latency prefetcher state adds
// to the fault path itself.
type Policy interface {
	Name() string
	OnMiss(unit int64) []int64
	PerMissOverhead() sim.Duration
}

// WindowCapped is an optional Policy extension for windowed runners whose
// in-flight window must track the plane's live capacity. Installers clamp
// the window to half the capacity at install time; holders of a resizable
// plane (rt.SetSectionScale's elastic leases) call CapWindow again after
// each resize so the clamp follows the cache it protects.
type WindowCapped interface {
	// CapWindow re-derives the effective window for a plane currently
	// holding capacityUnits units.
	CapWindow(capacityUnits int)
	// Window reports the current effective window.
	Window() int
}

// Efficacy is the per-plane prefetch accounting both planes maintain:
//
//	Issued  — speculative fetches handed to the transport
//	Useful  — prefetched units later hit by a demand access
//	Useless — prefetched units evicted without ever being touched
//	Dropped — proposals the plane discarded (out of range, no evictable
//	          slot, advisory fetch failed under faults)
type Efficacy struct {
	Issued  int64
	Useful  int64
	Useless int64
	Dropped int64
	// Late counts useful prefetches whose bytes had not landed when the
	// demand touch arrived — the touch stalled on the tail of the fetch.
	Late int64
}

// Accuracy is the fraction of issued prefetches that were ever used.
func (e Efficacy) Accuracy() float64 {
	if e.Issued == 0 {
		return 0
	}
	return float64(e.Useful) / float64(e.Issued)
}

// Coverage is the fraction of would-be demand misses the prefetcher hid:
// useful prefetches over useful prefetches plus the misses that still
// happened.
func (e Efficacy) Coverage(demandMisses int64) float64 {
	if e.Useful+demandMisses == 0 {
		return 0
	}
	return float64(e.Useful) / float64(e.Useful+demandMisses)
}

// Timeliness is the fraction of useful prefetches that fully landed
// before their demand touch (1 when nothing was useful: an idle
// prefetcher is vacuously on time).
func (e Efficacy) Timeliness() float64 {
	if e.Useful == 0 {
		return 1
	}
	return float64(e.Useful-e.Late) / float64(e.Useful)
}

// Add accumulates another plane's (or section's) counters.
func (e *Efficacy) Add(o Efficacy) {
	e.Issued += o.Issued
	e.Useful += o.Useful
	e.Useless += o.Useless
	e.Dropped += o.Dropped
	e.Late += o.Late
}

// StreamTopUp is an optional Policy extension for runahead streams: the
// plane reports the first demand touch of a unit that arrived
// speculatively, and the policy may return more units to keep its
// in-flight window full without waiting for the next demand miss. Only
// policies that know where the stream is going (the programmed runner)
// implement it; reactive policies top up on misses alone. Proposals are
// advisory exactly like OnMiss's.
type StreamTopUp interface {
	OnPrefetchedTouch(unit int64) []int64
}

// None never prefetches — the control arm of every race.
type None struct{}

func (None) Name() string                  { return "none" }
func (None) OnMiss(int64) []int64          { return nil }
func (None) PerMissOverhead() sim.Duration { return 0 }

// Readahead is FastSwap/Linux cluster readahead: pull the N units following
// every miss. Free on the fault path, profitable on sequential streams,
// pure pollution on pointer chases.
type Readahead struct{ N int64 }

func (Readahead) Name() string { return "readahead" }

func (r Readahead) OnMiss(unit int64) []int64 {
	out := make([]int64, 0, r.N)
	for i := int64(1); i <= r.N; i++ {
		out = append(out, unit+i)
	}
	return out
}

func (Readahead) PerMissOverhead() sim.Duration { return 0 }

// Leap is Leap's [ATC'20] majority-trend detector: if one miss-delta wins a
// Boyer-Moore majority vote over the recent window, prefetch Depth units
// along it; otherwise stay silent. Captures one global stride, loses
// interleaved per-object patterns.
type Leap struct {
	window   int
	depth    int64
	history  []int64 // recent miss deltas
	last     int64
	haveLast bool
}

// NewLeap builds the trend detector (window 32, depth 8 when zero — the
// Leap baseline's defaults).
func NewLeap(window int, depth int64) *Leap {
	if window == 0 {
		window = 32
	}
	if depth == 0 {
		depth = 8
	}
	return &Leap{window: window, depth: depth}
}

func (*Leap) Name() string { return "leap" }

func (p *Leap) OnMiss(unit int64) []int64 {
	if p.haveLast {
		delta := unit - p.last
		p.history = append(p.history, delta)
		if len(p.history) > p.window {
			p.history = p.history[1:]
		}
	}
	p.last = unit
	p.haveLast = true
	if len(p.history) < p.window/2 {
		return nil
	}
	// Boyer-Moore majority vote over the window (the algorithm Leap uses).
	var cand int64
	count := 0
	for _, d := range p.history {
		if count == 0 {
			cand = d
			count = 1
		} else if d == cand {
			count++
		} else {
			count--
		}
	}
	// Verify it is a true majority.
	occurrences := 0
	for _, d := range p.history {
		if d == cand {
			occurrences++
		}
	}
	if occurrences*2 <= len(p.history) || cand == 0 {
		return nil
	}
	out := make([]int64, 0, p.depth)
	for i := int64(1); i <= p.depth; i++ {
		out = append(out, unit+cand*i)
	}
	return out
}

// PerMissOverhead is the trend-detection cost on every miss.
func (p *Leap) PerMissOverhead() sim.Duration { return 300 * sim.Nanosecond }

// PageAdapter presents a Policy as a swap.Prefetcher (structural match —
// swap's hook is OnFault/PerFaultOverhead over page numbers).
type PageAdapter struct{ P Policy }

// OnFault forwards the faulting page to the policy's miss stream.
func (a PageAdapter) OnFault(page int64) []int64 { return a.P.OnMiss(page) }

// PerFaultOverhead is zero: zoo policies run on the runner thread, off
// the fault path (their cost is charged through IssueDelay instead).
func (a PageAdapter) PerFaultOverhead() sim.Duration { return 0 }

// IssueDelay charges the policy's per-consult table work by delaying the
// advisory fetch's issue (swap.IssueDelayer).
func (a PageAdapter) IssueDelay() sim.Duration { return a.P.PerMissOverhead() }

// OnPrefetchedTouch forwards minor-fault (first touch of a prefetched
// page) events to stream-maintaining policies; reactive policies get
// nothing to say here.
func (a PageAdapter) OnPrefetchedTouch(page int64) []int64 {
	if tu, ok := a.P.(StreamTopUp); ok {
		return tu.OnPrefetchedTouch(page)
	}
	return nil
}

// Spec names a policy and its knobs for CLI/harness plumbing. The zero
// Depth/Window select each family's defaults.
type Spec struct {
	// Policy is a registry name: "none", "readahead", "leap", "history",
	// "programmed" — or "compiled" on the line plane (the planner's
	// statically emitted prefetch, no runtime policy object).
	Policy string
	// Window bounds the programmed runner's in-flight units (default 64).
	Window int
	// Depth is readahead count / Leap trend depth / history chain depth.
	Depth int64
}

// Compiled is the line plane's reference arm: prefetch statements the
// planner compiled into the program. It is not a runtime policy — Build
// rejects it — but it is a registered name so harnesses race it.
const Compiled = "compiled"

// builders construct each registered policy family. Programmed needs the
// access program (the future unit sequence), passed separately to Build.
var builders = map[string]func(s Spec, program []int64) Policy{
	"none":      func(Spec, []int64) Policy { return None{} },
	"readahead": func(s Spec, _ []int64) Policy { return Readahead{N: defDepth(s.Depth, 2)} },
	"leap":      func(s Spec, _ []int64) Policy { return NewLeap(0, s.Depth) },
	"history":   func(s Spec, _ []int64) Policy { return NewHistory(HistoryConfig{Depth: int(s.Depth)}) },
	"programmed": func(s Spec, program []int64) Policy {
		return NewProgrammed(program, s.Window)
	},
}

func defDepth(d, def int64) int64 {
	if d == 0 {
		return def
	}
	return d
}

// Names lists the registered policy families, sorted, for CLI help and
// table-driven tests.
func Names() []string {
	out := make([]string, 0, len(builders))
	for n := range builders {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Build constructs a fresh policy instance from a spec. Policies are
// stateful (Leap's window, history's tables, programmed's cursor): build
// one instance per miss stream — per plane, and per section on the line
// plane — never share one across streams. program is the future unit
// sequence for "programmed" (ignored by the online families).
func Build(spec Spec, program []int64) (Policy, error) {
	b, ok := builders[spec.Policy]
	if !ok {
		return nil, fmt.Errorf("prefetch: unknown policy %q (have %v)", spec.Policy, Names())
	}
	return b(spec, program), nil
}
