package prefetch

import "mira/internal/sim"

// HistoryConfig tunes the online history prefetcher. Zero values select
// the defaults noted per field.
type HistoryConfig struct {
	// Depth is how many predictions are chained per observation (default
	// 8). Runahead distance trades timeliness against accuracy: a
	// predicted unit arrives roughly one fetch RTT after its chain is
	// issued, so short chains arrive late — but per-step confidence
	// compounds, so long chains are increasingly wrong and pollute the
	// cache they feed.
	Depth int
	// MinCount is the minimum times a transition must have been observed
	// before it is trusted (default 1: predict after one sighting, the
	// aggressive end — the stand-in for a trained model's recall).
	MinCount uint32
	// MaxEntries bounds each order's transition table (default 64 Ki
	// contexts — the table must hold a full recurrence period of the miss
	// stream, or FIFO eviction destroys pass N's contexts before pass N+1
	// replays them). Oldest-inserted contexts are evicted first,
	// deterministically. Capacity is paid for via the size tax in
	// PerMissOverhead.
	MaxEntries int
	// MaxSuccessors bounds the candidate next-deltas kept per context
	// (default 4). The lowest-count candidate is evicted first.
	MaxSuccessors int
}

func (c HistoryConfig) withDefaults() HistoryConfig {
	if c.Depth == 0 {
		c.Depth = 8
	}
	if c.MinCount == 0 {
		c.MinCount = 1
	}
	if c.MaxEntries == 0 {
		c.MaxEntries = 1 << 16
	}
	if c.MaxSuccessors == 0 {
		c.MaxSuccessors = 4
	}
	return c
}

// histEntry holds one context's observed next-deltas. Candidates live in
// insertion order (order slice) so argmax scans never touch map iteration
// order — determinism depends on it.
type histEntry struct {
	count map[int64]uint32
	order []int64
	total uint32
}

// History is the online delta/Markov prefetcher: a deterministic
// table-based stand-in for the DL-driven far-memory predictors. It keys
// delta contexts (the last miss deltas) to the observed next-delta
// distribution in a variable-order cascade — an order-3 context first
// (long contexts rarely collide, so repeated irregular sequences
// disambiguate), then order-2, then order-1 (which locks onto plain
// strides after a single sighting). On each observation it chains up to
// Depth confident predictions.
//
// History implements StreamTopUp: the first demand touch of a prefetched
// unit feeds the same observe path as a miss. This matters more than any
// table detail — a predictor trained on the *miss* stream chases a moving
// target (every prediction that hits deletes an access from the stream it
// learned, so pass two's contexts no longer match pass one's transitions).
// Observing touches trains on the full access stream, which is stationary,
// and keeps the live context aligned with what the program actually did.
// Touch-path table work is the runner thread's, off the access's critical
// path, so PerMissOverhead is charged on misses only.
//
// The table is bounded (FIFO context eviction, min-count successor
// eviction) and every lookup/update cost is charged to simulated time via
// PerMissOverhead, scaled with table size and chain depth.
type History struct {
	cfg HistoryConfig
	// tables[k] holds the order-(k+1) contexts; fifos mirror insertion
	// order for bounded eviction. Each order shares the MaxEntries bound.
	tables [3]map[uint64]*histEntry
	fifos  [3][]uint64
	// context: the last three deltas (d1 oldest) and the last observed
	// unit (miss or prefetched touch).
	d1, d2, d3 int64
	have       int
	last       int64
	cost       sim.Duration
}

// NewHistory builds the predictor.
func NewHistory(cfg HistoryConfig) *History {
	cfg = cfg.withDefaults()
	// Cost model: up to three hashed table probes (the order cascade) per
	// chained prediction plus one update per table, each ~25 ns of
	// metadata work, plus ~2 ns per doubling of table capacity (larger
	// tables, worse cache behavior). Fixed at construction so the charge
	// is identical on every miss.
	probes := sim.Duration(3*cfg.Depth+3) * 25 * sim.Nanosecond
	var sizeTax sim.Duration
	for n := cfg.MaxEntries; n > 1; n /= 2 {
		sizeTax += 2 * sim.Nanosecond
	}
	h := &History{cfg: cfg, cost: probes + sizeTax}
	for i := range h.tables {
		h.tables[i] = map[uint64]*histEntry{}
	}
	return h
}

func (*History) Name() string { return "history" }

// PerMissOverhead charges the table probes for one miss: up to three
// lookups per chained prediction plus the updates and the size-dependent
// tax.
func (h *History) PerMissOverhead() sim.Duration { return h.cost }

// ctxKey mixes up to three deltas into one table key (unused positions
// zero; each position is scrambled by a distinct odd constant so contexts
// of different orders live in different tables without aliasing inside
// one).
func ctxKey(d1, d2, d3 int64) uint64 {
	return uint64(d1)*0x9e3779b97f4a7c15 ^ uint64(d2)*0xc2b2ae3d27d4eb4f ^ uint64(d3)
}

// record observes transition history -> d at every context order:
// (d1,d2,d3) in the order-3 table, (d2,d3) in order-2, d3 in order-1.
func (h *History) record(d1, d2, d3, d int64) {
	h.recordAt(2, ctxKey(d1, d2, d3), d)
	h.recordAt(1, ctxKey(0, d2, d3), d)
	h.recordAt(0, ctxKey(0, 0, d3), d)
}

// recordAt counts successor d under key k in the order-(idx+1) table,
// inserting (with bounded FIFO eviction) as needed.
func (h *History) recordAt(idx int, k uint64, d int64) {
	e := h.tables[idx][k]
	if e == nil {
		if len(h.tables[idx]) >= h.cfg.MaxEntries {
			// Evict the oldest context still resident.
			for len(h.fifos[idx]) > 0 {
				old := h.fifos[idx][0]
				h.fifos[idx] = h.fifos[idx][1:]
				if _, ok := h.tables[idx][old]; ok {
					delete(h.tables[idx], old)
					break
				}
			}
		}
		e = &histEntry{count: map[int64]uint32{}}
		h.tables[idx][k] = e
		h.fifos[idx] = append(h.fifos[idx], k)
	}
	h.bump(e, d)
}

// bump counts successor d in entry e, evicting the weakest successor when
// the per-context bound is hit.
func (h *History) bump(e *histEntry, d int64) {
	if _, seen := e.count[d]; !seen {
		if len(e.order) >= h.cfg.MaxSuccessors {
			// Evict the lowest-count successor (earliest-inserted on
			// ties) to make room.
			vi := 0
			for i := 1; i < len(e.order); i++ {
				if e.count[e.order[i]] < e.count[e.order[vi]] {
					vi = i
				}
			}
			victim := e.order[vi]
			e.total -= e.count[victim]
			delete(e.count, victim)
			e.order = append(e.order[:vi], e.order[vi+1:]...)
		}
		e.order = append(e.order, d)
	}
	e.count[d]++
	e.total++
}

// predict returns the confident next delta for the cascade of contexts
// ending in (d1,d2,d3), longest first, or false. A candidate must hold a
// strict majority of its context's observations and at least MinCount
// sightings. Ties on count break toward the earliest-inserted candidate —
// deterministic by construction.
func (h *History) predict(d1, d2, d3 int64) (int64, bool) {
	if d, ok := confident(h.tables[2][ctxKey(d1, d2, d3)], h.cfg.MinCount); ok {
		return d, true
	}
	if d, ok := confident(h.tables[1][ctxKey(0, d2, d3)], h.cfg.MinCount); ok {
		return d, true
	}
	return confident(h.tables[0][ctxKey(0, 0, d3)], h.cfg.MinCount)
}

// confident extracts an entry's majority successor if it clears the
// confidence thresholds.
func confident(e *histEntry, minCount uint32) (int64, bool) {
	if e == nil || len(e.order) == 0 {
		return 0, false
	}
	best := e.order[0]
	for _, d := range e.order[1:] {
		if e.count[d] > e.count[best] {
			best = d
		}
	}
	c := e.count[best]
	if c < minCount || 2*c <= e.total {
		return 0, false
	}
	return best, true
}

// observe folds one unit of the true access stream — a demand miss or the
// first touch of a prefetched unit — into the context, learns the new
// transition, and chains confident predictions from the updated context.
// have counts how much context has accumulated: 0 = no anchor yet, then
// one per observed delta up to the full order-3 context at 4.
func (h *History) observe(unit int64) []int64 {
	if h.have == 0 {
		h.have, h.last = 1, unit
		return nil
	}
	d := unit - h.last
	if d == 0 {
		// Re-observation of the same unit carries no transition.
		return nil
	}
	h.last = unit
	switch h.have {
	case 1: // first delta observed
		h.d3, h.have = d, 2
		return nil
	case 2: // second delta
		h.d2, h.d3, h.have = h.d3, d, 3
		return nil
	case 3: // context complete; nothing to record yet
		h.d1, h.d2, h.d3, h.have = h.d2, h.d3, d, 4
	default: // full context: learn history -> d, then shift
		h.record(h.d1, h.d2, h.d3, d)
		h.d1, h.d2, h.d3 = h.d2, h.d3, d
	}
	out := make([]int64, 0, h.cfg.Depth)
	d1, d2, d3, at := h.d1, h.d2, h.d3, unit
	for len(out) < h.cfg.Depth {
		d, ok := h.predict(d1, d2, d3)
		if !ok {
			break
		}
		at += d
		out = append(out, at)
		d1, d2, d3 = d2, d3, d
	}
	if len(out) == 0 {
		return nil
	}
	// Proposals already resident or in flight are filtered by the plane, so
	// re-proposing a chain's tail on every observation is cheap and keeps
	// the runahead window topped up.
	return out
}

// OnMiss observes a demand miss.
func (h *History) OnMiss(unit int64) []int64 { return h.observe(unit) }

// OnPrefetchedTouch observes the first demand touch of a prefetched unit
// (StreamTopUp), keeping the model trained on the full access stream.
func (h *History) OnPrefetchedTouch(unit int64) []int64 { return h.observe(unit) }
