package prefetch

import (
	"reflect"
	"testing"

	"mira/internal/sim"
)

func TestReadaheadProposesNextN(t *testing.T) {
	r := Readahead{N: 3}
	if got, want := r.OnMiss(10), []int64{11, 12, 13}; !reflect.DeepEqual(got, want) {
		t.Fatalf("OnMiss(10) = %v, want %v", got, want)
	}
}

func TestLeapLocksOntoMajorityStride(t *testing.T) {
	p := NewLeap(8, 4)
	var out []int64
	for u := int64(0); u < 40; u += 2 {
		out = p.OnMiss(u)
	}
	if want := []int64{40, 42, 44, 46}; !reflect.DeepEqual(out, want) {
		t.Fatalf("stride-2 trend proposals = %v, want %v", out, want)
	}
	// A window of alternating deltas has no majority: silence.
	q := NewLeap(8, 4)
	units := []int64{0, 1, 10, 11, 20, 21, 30, 31, 40, 41}
	var last []int64
	for _, u := range units {
		last = q.OnMiss(u)
	}
	if last != nil {
		t.Fatalf("no-majority window proposed %v, want nil", last)
	}
}

func TestProgrammedFillsResyncsAndTopsUp(t *testing.T) {
	program := make([]int64, 64)
	for i := range program {
		program[i] = int64(i)
	}
	p := NewProgrammed(program, 8)
	if got, want := p.OnMiss(0), []int64{1, 2, 3, 4, 5, 6, 7, 8}; !reflect.DeepEqual(got, want) {
		t.Fatalf("cold miss fill = %v, want %v", got, want)
	}
	// Touches drain the window; the top-up waits until half has drained,
	// then refills in one batch (amortizing the doorbell).
	for _, u := range []int64{1, 2, 3} {
		if got := p.OnPrefetchedTouch(u); got != nil {
			t.Fatalf("touch(%d) refilled early: %v", u, got)
		}
	}
	if got, want := p.OnPrefetchedTouch(4), []int64{9, 10, 11, 12}; !reflect.DeepEqual(got, want) {
		t.Fatalf("half-drain top-up = %v, want %v", got, want)
	}
	// A re-miss behind the cursor (eviction victim touched again) re-anchors
	// and refills the whole window forward.
	if got, want := p.OnMiss(6), []int64{7, 8, 9, 10, 11, 12, 13, 14}; !reflect.DeepEqual(got, want) {
		t.Fatalf("re-miss resync = %v, want %v", got, want)
	}
	// A miss the program never mentions proposes nothing and moves nothing.
	if got := p.OnMiss(999); got != nil {
		t.Fatalf("uncovered miss proposed %v, want nil", got)
	}
}

func TestProgrammedCollapsesConsecutiveDuplicates(t *testing.T) {
	p := NewProgrammed([]int64{5, 5, 5, 6, 6, 7, 5}, 4)
	if p.Len() != 4 {
		t.Fatalf("deduplicated length = %d, want 4", p.Len())
	}
	if got, want := p.OnMiss(5), []int64{6, 7, 5}; !reflect.DeepEqual(got, want) {
		t.Fatalf("proposals after dedup = %v, want %v", got, want)
	}
}

func TestHistoryLocksOntoStride(t *testing.T) {
	h := NewHistory(HistoryConfig{Depth: 4})
	var out []int64
	for u := int64(0); u <= 50; u += 10 {
		out = h.OnMiss(u)
	}
	// After a few sightings the order-1 fallback alone carries a pure
	// stride; the chain runs Depth deep.
	if want := []int64{60, 70, 80, 90}; !reflect.DeepEqual(out, want) {
		t.Fatalf("stride chain = %v, want %v", out, want)
	}
}

func TestHistoryConfidenceGate(t *testing.T) {
	// The delta context (10,20,30) is observed with two different
	// successors (+1 then +5) equally often, at every order of the
	// cascade: no strict majority anywhere, so the third time the context
	// comes around the predictor must stay silent rather than guess.
	h := NewHistory(HistoryConfig{Depth: 2})
	feed := []int64{
		0, 10, 30, 60, 61,
		100, 110, 130, 160, 165,
		200, 210, 230, 260,
	}
	var out []int64
	for _, u := range feed {
		out = h.OnMiss(u)
	}
	if out != nil {
		t.Fatalf("ambiguous context proposed %v, want nil", out)
	}
}

func TestHistoryDeterministic(t *testing.T) {
	rng := sim.NewRNG(9)
	var stream []int64
	for i := 0; i < 2000; i++ {
		stream = append(stream, int64(rng.Intn(64)))
	}
	run := func() [][]int64 {
		h := NewHistory(HistoryConfig{})
		var all [][]int64
		for _, u := range stream {
			all = append(all, h.OnMiss(u))
		}
		return all
	}
	if !reflect.DeepEqual(run(), run()) {
		t.Fatal("identical miss streams produced different proposals")
	}
}

// TestHistoryCoversRepeatingStream is the predictor's intrinsic ceiling
// check under ideal-plane emulation (prefetched units are always resident
// by their touch): an exactly-repeating random stream must be mostly
// covered from the second pass on. This only works because History
// implements StreamTopUp — training on misses alone chases a moving target
// (every hit deletes an access from the learned stream) and plateaus below
// 40% on this same input.
func TestHistoryCoversRepeatingStream(t *testing.T) {
	rng := sim.NewRNG(42)
	var pass []int64
	for i := 0; i < 3000; i++ {
		pass = append(pass, int64(rng.Intn(32)))
	}
	var stream []int64
	for p := 0; p < 3; p++ {
		stream = append(stream, pass...)
	}
	h := NewHistory(HistoryConfig{})
	inflight := map[int64]bool{}
	covered, missed := 0, 0
	for _, u := range stream {
		var props []int64
		if inflight[u] {
			delete(inflight, u)
			covered++
			props = h.OnPrefetchedTouch(u)
		} else {
			missed++
			props = h.OnMiss(u)
		}
		for _, c := range props {
			inflight[c] = true
		}
	}
	cov := float64(covered) / float64(covered+missed)
	if cov < 0.6 {
		t.Fatalf("ideal-plane coverage = %.2f (covered %d, missed %d), want >= 0.6",
			cov, covered, missed)
	}
}

func TestPageAdapterForwardsTouchOnlyForStreamPolicies(t *testing.T) {
	prog := PageAdapter{P: NewProgrammed([]int64{1, 2, 3, 4}, 2)}
	if got := prog.OnFault(1); !reflect.DeepEqual(got, []int64{2, 3}) {
		t.Fatalf("OnFault through adapter = %v, want [2 3]", got)
	}
	if got := prog.OnPrefetchedTouch(2); !reflect.DeepEqual(got, []int64{4}) {
		t.Fatalf("touch through adapter = %v, want [4]", got)
	}
	// Reactive policies have no touch stream: the adapter answers nil.
	ra := PageAdapter{P: Readahead{N: 2}}
	if got := ra.OnPrefetchedTouch(2); got != nil {
		t.Fatalf("readahead touch through adapter = %v, want nil", got)
	}
}

func TestEfficacyRates(t *testing.T) {
	e := Efficacy{Issued: 10, Useful: 6, Useless: 3, Dropped: 2, Late: 3}
	if got := e.Accuracy(); got != 0.6 {
		t.Fatalf("Accuracy = %v, want 0.6", got)
	}
	if got := e.Coverage(24); got != 0.2 {
		t.Fatalf("Coverage(24) = %v, want 0.2 (6 covered of 6+24 accesses)", got)
	}
	if got := e.Timeliness(); got != 0.5 {
		t.Fatalf("Timeliness = %v, want 0.5", got)
	}
	var zero Efficacy
	if zero.Accuracy() != 0 || zero.Coverage(0) != 0 {
		t.Fatal("zero-value accuracy/coverage must be 0, not NaN")
	}
	if zero.Timeliness() != 1 {
		t.Fatal("an idle prefetcher is vacuously on time")
	}
}

func TestBuildRegistry(t *testing.T) {
	want := []string{"history", "leap", "none", "programmed", "readahead"}
	if got := Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for _, n := range want {
		p, err := Build(Spec{Policy: n}, []int64{1, 2, 3})
		if err != nil {
			t.Fatalf("Build(%q): %v", n, err)
		}
		if p.Name() != n {
			t.Fatalf("Build(%q).Name() = %q", n, p.Name())
		}
	}
	if _, err := Build(Spec{Policy: Compiled}, nil); err == nil {
		t.Fatal("Build(compiled) must fail: it is not a runtime policy")
	}
	if _, err := Build(Spec{Policy: "nope"}, nil); err == nil {
		t.Fatal("Build(unknown) must fail")
	}
}
