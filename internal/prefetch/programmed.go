package prefetch

import "mira/internal/sim"

// DefaultWindow bounds a programmed runner's in-flight units when the spec
// leaves Window zero.
const DefaultWindow = 64

// Programmed is 3PO-style programmed prefetch: the compiler hands the
// runtime the program's exact future access sequence (lowered from the
// IR's affine loop summaries to plane units by analysis.AccessProgram),
// and a runner walks it arbitrarily far ahead of the fault path, keeping a
// bounded window of units in flight. The runner is event-clocked: a demand
// miss re-anchors the cursor at the faulting unit and fills the window,
// and each first touch of a speculatively fetched unit (StreamTopUp)
// advances the consumption point and tops the window back up once half of
// it has drained — so a covered stream takes one cold miss and then
// sustains itself on touch events, with top-up batches big enough to
// amortize the doorbell.
//
// Accesses the access program does not cover (indirect chases the static
// analysis gave up on) simply miss through to the demand path — programmed
// prefetch is exact where it speaks and silent where it cannot.
type Programmed struct {
	program []int64 // future unit sequence, consecutive duplicates collapsed
	window  int
	// baseWindow is the configured (pre-clamp) window; CapWindow re-derives
	// the effective window from it when the plane's capacity changes.
	baseWindow int
	cursor     int // index of the first unit not yet proposed
	// consumed is the index just past the last unit the demand stream
	// reached (miss or prefetched-touch); cursor-consumed is the in-flight
	// window occupancy.
	consumed int
}

// NewProgrammed builds a runner over the future unit sequence. The
// sequence is consumed in order; consecutive duplicates are collapsed so a
// whole line/page of element accesses costs one entry.
func NewProgrammed(program []int64, window int) *Programmed {
	if window <= 0 {
		window = DefaultWindow
	}
	dedup := make([]int64, 0, len(program))
	for _, u := range program {
		if n := len(dedup); n > 0 && dedup[n-1] == u {
			continue
		}
		dedup = append(dedup, u)
	}
	return &Programmed{program: dedup, window: window, baseWindow: window}
}

func (*Programmed) Name() string { return "programmed" }

// CapWindow re-derives the effective in-flight window for a plane currently
// holding capacityUnits units: the configured window, clamped to half the
// capacity (the installers' clamp rule). Elastic resizes call this so a
// shrunken section is never thrashed by a window sized for the bound
// capacity — and a regrown section gets its configured window back.
func (p *Programmed) CapWindow(capacityUnits int) {
	w := p.baseWindow
	if half := capacityUnits / 2; half >= 1 && w > half {
		w = half
	}
	p.window = w
}

// Window reports the current effective in-flight window.
func (p *Programmed) Window() int { return p.window }

// resyncHorizon bounds how far past the cursor a miss may land and still
// re-anchor the runner (covers eviction-induced re-misses slightly behind
// or ahead of the cursor without scanning the whole program).
const resyncHorizon = 4096

// OnMiss re-anchors the cursor at the faulting unit's position in the
// program and proposes the next Window units. A miss the program never
// mentions (an uncovered indirect access) leaves the cursor alone and
// proposes nothing.
func (p *Programmed) OnMiss(unit int64) []int64 {
	// The common case is the miss landing exactly at or just past the
	// cursor (the first unit beyond the previous window). Scan forward a
	// bounded horizon; fall back to a bounded backward scan for re-misses
	// of evicted units behind the cursor.
	at := -1
	limit := p.cursor + resyncHorizon
	if limit > len(p.program) {
		limit = len(p.program)
	}
	for i := p.cursor; i < limit; i++ {
		if p.program[i] == unit {
			at = i
			break
		}
	}
	if at < 0 {
		back := p.cursor - resyncHorizon
		if back < 0 {
			back = 0
		}
		for i := p.cursor - 1; i >= back; i-- {
			if p.program[i] == unit {
				at = i
				break
			}
		}
	}
	if at < 0 {
		return nil
	}
	p.consumed = at + 1
	p.cursor = p.consumed
	return p.fill()
}

// OnPrefetchedTouch advances the consumption point to the touched unit and
// refills the window once at least half of it has drained — batching the
// top-ups keeps the doorbell cost amortized over window/2 units.
func (p *Programmed) OnPrefetchedTouch(unit int64) []int64 {
	at := -1
	for i := p.consumed; i < p.cursor; i++ {
		if p.program[i] == unit {
			at = i
			break
		}
	}
	if at < 0 {
		// A touch the in-flight window does not explain (a re-touched
		// stale speculative line): not ours to act on.
		return nil
	}
	p.consumed = at + 1
	if p.cursor-p.consumed > p.window/2 {
		return nil
	}
	return p.fill()
}

// fill proposes units from the cursor until the in-flight window is full.
func (p *Programmed) fill() []int64 {
	n := p.window - (p.cursor - p.consumed)
	if n <= 0 {
		return nil
	}
	out := make([]int64, 0, n)
	for i := p.cursor; i < len(p.program) && len(out) < n; i++ {
		out = append(out, p.program[i])
	}
	p.cursor += len(out)
	return out
}

// PerMissOverhead is the cursor resync: a pointer chase into the access
// program, far cheaper than any table-based predictor.
func (*Programmed) PerMissOverhead() sim.Duration { return 20 * sim.Nanosecond }

// Len reports the (deduplicated) program length — zero means the analysis
// found nothing affine to lower and the policy will never propose.
func (p *Programmed) Len() int { return len(p.program) }
