package transport

import "mira/internal/sim"

// Link is the far-memory data plane the runtime and the swap cache drive:
// one-sided reads/writes, two-sided gather/scatter, offload RPCs, and the
// degraded-mode controls. Two implementations exist: *T (a single resilient
// transport over one far node — the paper's testbed) and cluster.Pool (a
// sharded, replicated pool of far nodes, each behind its own *T).
//
// Every operation takes the caller's virtual instant and returns the
// completion instant; data movement is real, so the whole data path stays
// verifiable independent of the timing model.
type Link interface {
	// ReadOneSided fetches len(buf) bytes at far address addr.
	ReadOneSided(now sim.Time, addr uint64, buf []byte) (sim.Time, error)
	// WriteOneSided pushes buf to far address addr.
	WriteOneSided(now sim.Time, addr uint64, buf []byte) (sim.Time, error)
	// GatherTwoSided fetches several pieces in one two-sided message.
	GatherTwoSided(now sim.Time, addrs []uint64, sizes []int) ([]byte, sim.Time, error)
	// ScatterTwoSided writes several pieces in one two-sided message.
	ScatterTwoSided(now sim.Time, addrs []uint64, pieces [][]byte) (sim.Time, error)
	// GatherOneSided fetches several pieces with one doorbell-batched
	// chain of one-sided reads (one RTT, one posting overhead for the
	// whole chain) — the runtime's batched-prefetch primitive.
	GatherOneSided(now sim.Time, addrs []uint64, sizes []int) ([]byte, sim.Time, error)
	// ScatterWrite pushes several pieces with one doorbell-batched chain
	// of one-sided writes — the coalesced write-back primitive.
	ScatterWrite(now sim.Time, addrs []uint64, pieces [][]byte) (sim.Time, error)
	// Call invokes an offloaded procedure on the far side.
	Call(now sim.Time, name string, args []byte) ([]byte, sim.Time, error)
	// Flush forces every queued degraded-mode write-back out to far
	// memory, returning the completion instant of the last drained write.
	Flush(now sim.Time) (sim.Time, error)
	// BreakerOpen reports whether a circuit breaker is open at now (for a
	// pool: whether any node's breaker is open). The cache layers consult
	// it to switch into degraded mode.
	BreakerOpen(now sim.Time) bool
	// Stats returns the link's aggregate resilience counters.
	Stats() Stats
	// BytesMoved reports the total bytes that crossed the interconnect
	// (for a pool: summed over every per-node link).
	BytesMoved() int64
	// Messages reports the total link-level transfers issued (for a
	// pool: summed over every per-node link) — the metric vectored I/O
	// collapses.
	Messages() int64
}

// BytesMoved reports the bytes that crossed this transport's link.
func (t *T) BytesMoved() int64 { return t.BW.BytesMoved() }

// Messages reports the link-level transfers issued on this transport.
func (t *T) Messages() int64 { return t.BW.Transfers() }

// Interface conformance.
var _ Link = (*T)(nil)
