package transport

import (
	"bytes"
	"testing"

	"mira/internal/farmem"
	"mira/internal/netmodel"
	"mira/internal/sim"
)

func newT(t *testing.T) (*T, uint64) {
	t.Helper()
	node := farmem.NewNode(farmem.NodeConfig{Capacity: 1 << 20, CPUSlowdown: 2})
	tr := New(node, netmodel.DefaultConfig())
	base, err := node.Alloc(4096)
	if err != nil {
		t.Fatal(err)
	}
	return tr, base
}

func TestReadWriteOneSided(t *testing.T) {
	tr, base := newT(t)
	w := []byte{1, 2, 3, 4}
	done, err := tr.WriteOneSided(0, base, w)
	if err != nil {
		t.Fatal(err)
	}
	if done <= 0 {
		t.Fatal("write completed instantaneously")
	}
	g := make([]byte, 4)
	done2, err := tr.ReadOneSided(done, base, g)
	if err != nil {
		t.Fatal(err)
	}
	if done2 <= done {
		t.Fatal("read completed before it started")
	}
	if !bytes.Equal(g, w) {
		t.Fatal("roundtrip mismatch")
	}
}

func TestCompletionIncludesRTT(t *testing.T) {
	tr, base := newT(t)
	done, err := tr.ReadOneSided(1000, base, make([]byte, 64))
	if err != nil {
		t.Fatal(err)
	}
	if done.Sub(1000) < tr.Cfg.OneSidedRTT {
		t.Fatalf("completion %v before one RTT", done.Sub(1000))
	}
}

func TestGatherScatterTwoSided(t *testing.T) {
	tr, base := newT(t)
	if _, err := tr.ScatterTwoSided(0, []uint64{base, base + 100}, [][]byte{{9, 8}, {7}}); err != nil {
		t.Fatal(err)
	}
	data, done, err := tr.GatherTwoSided(0, []uint64{base, base + 100}, []int{2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if done <= 0 {
		t.Fatal("gather free")
	}
	if !bytes.Equal(data, []byte{9, 8, 7}) {
		t.Fatalf("gather = %v", data)
	}
}

func TestCallChargesComputeAndTransfers(t *testing.T) {
	node := farmem.NewNode(farmem.NodeConfig{Capacity: 1 << 20, CPUSlowdown: 2})
	tr := New(node, netmodel.DefaultConfig())
	node.Register("echo", func(mem *farmem.Mem, args []byte) ([]byte, sim.Duration, error) {
		return args, 10 * sim.Microsecond, nil
	})
	res, done, err := tr.Call(0, "echo", []byte{5})
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != 5 {
		t.Fatal("echo mismatch")
	}
	// Two two-sided RTTs + 20us scaled compute minimum.
	min := 2*tr.Cfg.TwoSidedRTT + 20*sim.Microsecond
	if done.Sub(0) < min {
		t.Fatalf("call completed in %v, expected at least %v", done.Sub(0), min)
	}
}

func TestBandwidthSharedAcrossOps(t *testing.T) {
	tr, base := newT(t)
	big := make([]byte, 1<<12)
	d1, _ := tr.ReadOneSided(0, base, big)
	d2, _ := tr.ReadOneSided(0, base, big)
	if d2 <= d1 {
		t.Fatal("second concurrent transfer did not queue behind the first")
	}
}
