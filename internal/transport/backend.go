package transport

import (
	"hash/crc32"

	"mira/internal/farmem"
	"mira/internal/sim"
)

// Backend is the far-node surface the transport drives. The default backend
// talks straight to a farmem.Node; the fault injector (internal/faults)
// wraps the same interface and perturbs calls — delay spikes, transient I/O
// errors, payload corruption, crash windows — before they reach the node.
//
// Every read-shaped call returns the checksum the far node computed over the
// bytes it actually sent (the "wire header"); the transport recomputes the
// checksum over what arrived and retries on mismatch. The extra duration is
// injected delay the transport adds to the operation's completion (and
// tests against the per-attempt deadline).
type Backend interface {
	// Read fills buf from far memory at addr.
	Read(now sim.Time, addr uint64, buf []byte) (sum uint32, extra sim.Duration, err error)
	// Write pushes buf to far memory at addr.
	Write(now sim.Time, addr uint64, buf []byte) (extra sim.Duration, err error)
	// Gather assembles the requested pieces into one reply.
	Gather(now sim.Time, addrs []uint64, sizes []int) (data []byte, sum uint32, extra sim.Duration, err error)
	// Scatter writes several pieces in one message.
	Scatter(now sim.Time, addrs []uint64, pieces [][]byte) (extra sim.Duration, err error)
	// Call executes an offloaded procedure; farCPU is the far node's
	// compute time (already slowdown-scaled).
	Call(now sim.Time, name string, args []byte) (res []byte, farCPU sim.Duration, extra sim.Duration, err error)
}

// Checksum is the end-to-end integrity checksum carried alongside one-sided
// payloads (CRC32C-style; IEEE polynomial is fine for a simulation).
func Checksum(b []byte) uint32 { return crc32.ChecksumIEEE(b) }

// NewNodeBackend returns the direct, fault-free backend over node — the
// default backend, and the one the fault injector wraps.
func NewNodeBackend(node *farmem.Node) Backend { return nodeBackend{node: node} }

// nodeBackend is the direct, fault-free backend over a farmem.Node.
type nodeBackend struct{ node *farmem.Node }

func (nb nodeBackend) Read(_ sim.Time, addr uint64, buf []byte) (uint32, sim.Duration, error) {
	if err := nb.node.Read(addr, buf); err != nil {
		return 0, 0, err
	}
	return Checksum(buf), 0, nil
}

func (nb nodeBackend) Write(_ sim.Time, addr uint64, buf []byte) (sim.Duration, error) {
	return 0, nb.node.Write(addr, buf)
}

func (nb nodeBackend) Gather(_ sim.Time, addrs []uint64, sizes []int) ([]byte, uint32, sim.Duration, error) {
	data, err := nb.node.Gather(addrs, sizes)
	if err != nil {
		return nil, 0, 0, err
	}
	return data, Checksum(data), 0, nil
}

func (nb nodeBackend) Scatter(_ sim.Time, addrs []uint64, pieces [][]byte) (sim.Duration, error) {
	return 0, nb.node.Scatter(addrs, pieces)
}

func (nb nodeBackend) Call(_ sim.Time, name string, args []byte) ([]byte, sim.Duration, sim.Duration, error) {
	res, farCPU, err := nb.node.Call(name, args)
	return res, farCPU, 0, err
}
