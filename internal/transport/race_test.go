// Concurrency smoke test: many goroutines hammer one farmem.Node through
// one resilient transport (and the shared netmodel.Bandwidth accountant),
// with the fault injector in the path. Run under `go test -race` — the CI
// configuration — this flushes out locking bugs across the whole far-memory
// data path. It lives in an external test package so it can wire in
// internal/faults without an import cycle.
package transport_test

import (
	"sync"
	"testing"

	"mira/internal/farmem"
	"mira/internal/faults"
	"mira/internal/netmodel"
	"mira/internal/sim"
	"mira/internal/transport"
)

func TestConcurrentOpsUnderFaultsRace(t *testing.T) {
	node := farmem.NewNode(farmem.NodeConfig{Capacity: 1 << 22, CPUSlowdown: 2})
	node.Register("echo", func(_ *farmem.Mem, args []byte) ([]byte, sim.Duration, error) {
		return args, sim.Microsecond, nil
	})
	tr := transport.New(node, netmodel.DefaultConfig())
	base, err := node.Alloc(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	inj := faults.New(node, faults.Config{
		Seed:      99,
		ErrorRate: 0.01,
		DelayRate: 0.02,
		DelayMin:  sim.Microsecond,
		DelayMax:  10 * sim.Microsecond,
		// No corruption: concurrent bit flips on shared buffers are not a
		// scenario the single-clock simulator produces.
	})
	tr.SetBackend(inj)

	const (
		workers = 8
		opsEach = 150
		stride  = 4096
	)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			addr := base + uint64(g*stride)
			buf := make([]byte, 64)
			for i := 0; i < opsEach; i++ {
				at := sim.Time(i * 100)
				switch i % 5 {
				case 0:
					tr.WriteOneSided(at, addr, buf)
				case 1:
					tr.ReadOneSided(at, addr, buf)
				case 2:
					tr.GatherTwoSided(at, []uint64{addr, addr + 64}, []int{32, 32})
				case 3:
					tr.ScatterTwoSided(at, []uint64{addr, addr + 64}, [][]byte{buf[:32], buf[32:]})
				case 4:
					tr.Call(at, "echo", buf[:8])
				}
				// Errors are expected under injection; the test's assertion
				// is the race detector staying quiet.
			}
		}(g)
	}
	wg.Wait()

	if tr.BW.Transfers() == 0 {
		t.Fatal("no transfers completed")
	}
	if inj.Stats().Ops == 0 {
		t.Fatal("injector saw no operations")
	}
	_ = tr.Stats() // snapshot must not race either
}
