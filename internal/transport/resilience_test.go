package transport

import (
	"bytes"
	"errors"
	"testing"

	"mira/internal/farmem"
	"mira/internal/netmodel"
	"mira/internal/sim"
)

// testPolicy is a small, fully-specified policy so tests exercise every
// resilience mechanism with predictable budgets.
func testPolicy() Policy {
	return Policy{
		MaxAttempts:      4,
		BaseBackoff:      1 * sim.Microsecond,
		MaxBackoff:       8 * sim.Microsecond,
		DeadlineBase:     10 * sim.Microsecond,
		DeadlineMult:     2,
		BreakerThreshold: 2,
		BreakerCooldown:  100 * sim.Microsecond,
		JitterSeed:       7,
	}
}

// tErr is a scripted transient failure; nack selects explicit-reply vs
// silent detection.
type tErr struct{ nack bool }

func (tErr) Error() string   { return "scripted transient failure" }
func (tErr) Transient() bool { return true }
func (e tErr) Nack() bool    { return e.nack }

// flakyBackend is a scripted in-memory backend: it fails the next
// `failures` attempts with failWith, mis-checksums the next `badSums`
// read-shaped replies, and adds `extra` injected delay to every success.
type flakyBackend struct {
	store    map[uint64][]byte
	failures int
	failWith error
	badSums  int
	extra    sim.Duration
	writes   int
}

func newFlaky() *flakyBackend {
	return &flakyBackend{store: map[uint64][]byte{}, failWith: tErr{nack: true}}
}

func (f *flakyBackend) step() error {
	if f.failures > 0 {
		f.failures--
		return f.failWith
	}
	return nil
}

func (f *flakyBackend) Read(_ sim.Time, addr uint64, buf []byte) (uint32, sim.Duration, error) {
	if err := f.step(); err != nil {
		return 0, 0, err
	}
	copy(buf, f.store[addr])
	sum := Checksum(buf)
	if f.badSums > 0 {
		f.badSums--
		sum ^= 0xffffffff
	}
	return sum, f.extra, nil
}

func (f *flakyBackend) Write(_ sim.Time, addr uint64, buf []byte) (sim.Duration, error) {
	if err := f.step(); err != nil {
		return 0, err
	}
	cp := make([]byte, len(buf))
	copy(cp, buf)
	f.store[addr] = cp
	f.writes++
	return f.extra, nil
}

func (f *flakyBackend) Gather(_ sim.Time, addrs []uint64, sizes []int) ([]byte, uint32, sim.Duration, error) {
	if err := f.step(); err != nil {
		return nil, 0, 0, err
	}
	var out []byte
	for i, a := range addrs {
		p := f.store[a]
		if len(p) < sizes[i] {
			p = make([]byte, sizes[i])
		}
		out = append(out, p[:sizes[i]]...)
	}
	sum := Checksum(out)
	if f.badSums > 0 {
		f.badSums--
		sum ^= 0xffffffff
	}
	return out, sum, f.extra, nil
}

func (f *flakyBackend) Scatter(_ sim.Time, addrs []uint64, pieces [][]byte) (sim.Duration, error) {
	if err := f.step(); err != nil {
		return 0, err
	}
	for i, a := range addrs {
		cp := make([]byte, len(pieces[i]))
		copy(cp, pieces[i])
		f.store[a] = cp
		f.writes++
	}
	return f.extra, nil
}

func (f *flakyBackend) Call(_ sim.Time, _ string, args []byte) ([]byte, sim.Duration, sim.Duration, error) {
	if err := f.step(); err != nil {
		return nil, 0, 0, err
	}
	return args, 0, f.extra, nil
}

func newFlakyT(pol Policy) (*T, *flakyBackend) {
	tr := NewWithPolicy(nil, netmodel.DefaultConfig(), pol)
	f := newFlaky()
	tr.SetBackend(f)
	return tr, f
}

// TestPermanentErrorPaths pins the error-path contract for the far node's
// own refusals: the typed sentinel survives the transport, no time passes,
// nothing is retried, and — critically — no bandwidth is charged for an
// operation that never moved bytes.
func TestPermanentErrorPaths(t *testing.T) {
	node := farmem.NewNode(farmem.NodeConfig{Capacity: 1 << 20, CPUSlowdown: 2})
	tr := New(node, netmodel.DefaultConfig())
	base, err := node.Alloc(4096)
	if err != nil {
		t.Fatal(err)
	}
	const now = sim.Time(5000)
	bad := base + (1 << 30)
	cases := []struct {
		name string
		op   func() (sim.Time, error)
		want error
	}{
		{"unmapped read", func() (sim.Time, error) {
			return tr.ReadOneSided(now, bad, make([]byte, 8))
		}, farmem.ErrUnmapped},
		{"unmapped write", func() (sim.Time, error) {
			return tr.WriteOneSided(now, bad, []byte{1, 2})
		}, farmem.ErrUnmapped},
		{"failed gather", func() (sim.Time, error) {
			_, end, err := tr.GatherTwoSided(now, []uint64{base, bad}, []int{8, 8})
			return end, err
		}, farmem.ErrUnmapped},
		{"failed scatter", func() (sim.Time, error) {
			return tr.ScatterTwoSided(now, []uint64{bad}, [][]byte{{1}})
		}, farmem.ErrUnmapped},
		{"unknown procedure", func() (sim.Time, error) {
			_, end, err := tr.Call(now, "no-such-proc", []byte{1})
			return end, err
		}, farmem.ErrUnknownProc},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			transfers, bytesMoved := tr.BW.Transfers(), tr.BW.BytesMoved()
			retries := tr.Stats().Retries
			end, err := tc.op()
			if !errors.Is(err, tc.want) {
				t.Fatalf("error = %v, want errors.Is(%v)", err, tc.want)
			}
			if end != now {
				t.Errorf("refused op advanced time: %v (started %v)", end, now)
			}
			if tr.BW.Transfers() != transfers || tr.BW.BytesMoved() != bytesMoved {
				t.Errorf("refused op charged bandwidth: %d transfers/%d bytes -> %d/%d",
					transfers, bytesMoved, tr.BW.Transfers(), tr.BW.BytesMoved())
			}
			if tr.Stats().Retries != retries {
				t.Errorf("permanent error was retried")
			}
		})
	}
}

func TestRetryThenSucceed(t *testing.T) {
	pol := testPolicy()
	pol.BreakerThreshold = 0 // isolate retry behavior from the breaker
	tr, f := newFlakyT(pol)
	f.store[64] = []byte{10, 20, 30, 40}
	f.failures = 2

	clean, _ := newFlakyT(pol)
	clean.Backend().(*flakyBackend).store[64] = f.store[64]
	cleanEnd, err := clean.ReadOneSided(0, 64, make([]byte, 4))
	if err != nil {
		t.Fatal(err)
	}

	buf := make([]byte, 4)
	end, err := tr.ReadOneSided(0, 64, buf)
	if err != nil {
		t.Fatalf("retries did not cure transient failures: %v", err)
	}
	if !bytes.Equal(buf, f.store[64]) {
		t.Fatalf("payload = %v", buf)
	}
	st := tr.Stats()
	if st.Retries != 2 || st.Failures != 2 {
		t.Fatalf("retries=%d failures=%d, want 2/2", st.Retries, st.Failures)
	}
	if end <= cleanEnd {
		t.Fatalf("failed attempts charged no virtual time: %v vs clean %v", end, cleanEnd)
	}
	if tr.BW.Transfers() != 1 {
		t.Fatalf("bandwidth charged %d times, want once (success only)", tr.BW.Transfers())
	}
	if st.BackoffTime <= 0 {
		t.Fatalf("no backoff time recorded")
	}
}

func TestChecksumMismatchRetried(t *testing.T) {
	pol := testPolicy()
	tr, f := newFlakyT(pol)
	f.store[128] = []byte{7, 7, 7, 7, 7, 7, 7, 7}
	f.badSums = 1
	buf := make([]byte, 8)
	if _, err := tr.ReadOneSided(0, 128, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, f.store[128]) {
		t.Fatalf("payload = %v", buf)
	}
	st := tr.Stats()
	if st.Corruptions != 1 || st.Retries != 1 {
		t.Fatalf("corruptions=%d retries=%d, want 1/1", st.Corruptions, st.Retries)
	}
}

func TestDelaySpikeTimesOutThenGivesUp(t *testing.T) {
	pol := testPolicy()
	pol.MaxAttempts = 2
	pol.BreakerThreshold = 0
	tr, f := newFlakyT(pol)
	f.store[0] = make([]byte, 16)
	f.extra = 5 * sim.Millisecond // far beyond any deadline the policy allows
	_, err := tr.ReadOneSided(0, 0, make([]byte, 16))
	if !errors.Is(err, ErrFarUnavailable) {
		t.Fatalf("error = %v, want ErrFarUnavailable", err)
	}
	st := tr.Stats()
	if st.Timeouts != 2 || st.GaveUp != 1 {
		t.Fatalf("timeouts=%d gaveUp=%d, want 2/1", st.Timeouts, st.GaveUp)
	}
	if tr.BW.Transfers() != 0 {
		t.Fatalf("timed-out attempts charged bandwidth %d times", tr.BW.Transfers())
	}
}

func TestBreakerDegradedWriteServedAndFlushed(t *testing.T) {
	pol := testPolicy()
	tr, f := newFlakyT(pol)
	f.failures = 1 << 20 // node stays down until healed below
	data := []byte{1, 2, 3, 4, 5, 6, 7, 8}

	end, err := tr.WriteOneSided(0, 256, data)
	if err != nil {
		t.Fatalf("degraded write surfaced an error: %v", err)
	}
	st := tr.Stats()
	if st.BreakerTrips < 1 {
		t.Fatalf("breaker never tripped")
	}
	if st.QueuedWritebacks != 1 || tr.PendingWritebacks() != 1 {
		t.Fatalf("queued=%d pending=%d, want 1/1", st.QueuedWritebacks, tr.PendingWritebacks())
	}
	if !tr.BreakerOpen(end) {
		t.Fatalf("breaker closed immediately after tripping")
	}

	// Reads must see the queued write (the overlay is consistent).
	buf := make([]byte, 8)
	rend, err := tr.ReadOneSided(end, 256, buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data) {
		t.Fatalf("overlay read = %v, want %v", buf, data)
	}
	if rend != end {
		t.Fatalf("overlay read took network time")
	}
	if tr.Stats().DegradedReads != 1 {
		t.Fatalf("degraded read not counted")
	}

	// Node heals; Flush must push the queued write out.
	f.failures = 0
	if _, err := tr.Flush(end); err != nil {
		t.Fatalf("flush after heal: %v", err)
	}
	if tr.PendingWritebacks() != 0 {
		t.Fatalf("flush left %d writebacks queued", tr.PendingWritebacks())
	}
	if tr.Stats().DrainedWritebacks < 1 {
		t.Fatalf("drain not counted")
	}
	if !bytes.Equal(f.store[256], data) {
		t.Fatalf("far node has %v, want %v", f.store[256], data)
	}
}

func TestScatterQueuesAndGatherServesOverlay(t *testing.T) {
	pol := testPolicy()
	tr, f := newFlakyT(pol)
	f.failures = 1 << 20
	addrs := []uint64{512, 1024}
	pieces := [][]byte{{1, 1, 1}, {2, 2}}
	if _, err := tr.ScatterTwoSided(0, addrs, pieces); err != nil {
		t.Fatalf("degraded scatter surfaced an error: %v", err)
	}
	if tr.PendingWritebacks() != 2 {
		t.Fatalf("pending = %d, want 2", tr.PendingWritebacks())
	}
	data, _, err := tr.GatherTwoSided(0, addrs, []int{3, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, []byte{1, 1, 1, 2, 2}) {
		t.Fatalf("gather from overlay = %v", data)
	}
}

func TestResilientTimingDeterministic(t *testing.T) {
	run := func() (sim.Time, Stats) {
		tr, f := newFlakyT(testPolicy())
		f.store[64] = make([]byte, 256)
		f.failures = 3
		end, err := tr.ReadOneSided(0, 64, make([]byte, 256))
		if err != nil {
			t.Fatal(err)
		}
		end2, err := tr.WriteOneSided(end, 64, make([]byte, 256))
		if err != nil {
			t.Fatal(err)
		}
		return end2, tr.Stats()
	}
	endA, stA := run()
	endB, stB := run()
	if endA != endB {
		t.Fatalf("same script, different completion: %v vs %v", endA, endB)
	}
	if stA != stB {
		t.Fatalf("same script, different stats: %+v vs %+v", stA, stB)
	}
}

func TestZeroPolicyDisablesResilience(t *testing.T) {
	tr, f := newFlakyT(Policy{})
	f.store[0] = []byte{9}
	f.failures = 1
	if _, err := tr.ReadOneSided(0, 0, make([]byte, 1)); err == nil {
		t.Fatalf("zero policy retried a failure")
	}
	st := tr.Stats()
	if st.Retries != 0 || st.BreakerTrips != 0 {
		t.Fatalf("zero policy produced retries=%d trips=%d", st.Retries, st.BreakerTrips)
	}
}
