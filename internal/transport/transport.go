// Package transport glues the cost model (netmodel), the shared link
// (netmodel.Bandwidth), and the far-memory node (farmem) into the operations
// the cache layers issue: one-sided reads/writes, two-sided gather/scatter,
// batched messages, and offload RPCs. Every operation returns the virtual
// completion instant so callers can either block (demand miss) or continue
// (prefetch, async write-back).
//
// The transport is resilient: the far node and the interconnect are
// independent failure domains (the fault injector in internal/faults can
// delay, drop, corrupt, or partition any transfer), so every operation runs
// under a Policy — a per-attempt deadline, bounded retries with exponential
// backoff and deterministic jitter (all latency charged to the virtual
// clock), end-to-end checksums on read payloads, and a circuit breaker that
// trips after consecutive failures. While the breaker is open the transport
// degrades gracefully: write-backs are queued locally (and served back to
// readers — the queue is a consistent overlay over far memory), reads of
// unqueued data wait out the cooldown in virtual time and probe half-open,
// and callers that exhaust the retry budget receive ErrFarUnavailable.
package transport

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"mira/internal/codec"
	"mira/internal/farmem"
	"mira/internal/netmodel"
	"mira/internal/sim"
	"mira/internal/trace"
)

// Policy tunes the transport's failure handling. The zero value disables
// resilience entirely (one attempt, no deadline, no breaker) — what the
// pre-fault-model transport did.
type Policy struct {
	// MaxAttempts bounds tries per operation (minimum 1).
	MaxAttempts int
	// BaseBackoff is the first retry's backoff; attempt k waits
	// roughly BaseBackoff<<k, halved and re-filled with deterministic
	// jitter, capped at MaxBackoff. Zero disables backoff.
	BaseBackoff sim.Duration
	// MaxBackoff caps the exponential growth.
	MaxBackoff sim.Duration
	// DeadlineBase and DeadlineMult set the per-attempt deadline as
	// DeadlineBase + DeadlineMult*expected(op): injected delay beyond the
	// slack turns into ErrTimeout and a retry. DeadlineBase <= 0 disables
	// deadlines (queueing on the shared link never counts against the
	// deadline — only injected delay does, so contention cannot cause
	// spurious timeouts).
	DeadlineBase sim.Duration
	DeadlineMult float64
	// BreakerThreshold is the consecutive-failure count that trips the
	// circuit breaker (0 disables it).
	BreakerThreshold int
	// BreakerCooldown is how long the breaker stays open before allowing
	// a half-open probe.
	BreakerCooldown sim.Duration
	// JitterSeed seeds the deterministic backoff jitter stream.
	JitterSeed uint64
}

// DefaultPolicy is calibrated for the default netmodel: microsecond-scale
// ops, retry budgets that ride out short fault windows, and a breaker that
// trips quickly so a dead node costs bounded probe traffic.
func DefaultPolicy() Policy {
	return Policy{
		MaxAttempts:      6,
		BaseBackoff:      2 * sim.Microsecond,
		MaxBackoff:       256 * sim.Microsecond,
		DeadlineBase:     25 * sim.Microsecond,
		DeadlineMult:     4,
		BreakerThreshold: 3,
		BreakerCooldown:  150 * sim.Microsecond,
		JitterSeed:       0x6d697261,
	}
}

// RecoveryPolicy returns a policy able to ride out crash/partition windows
// lasting a sizable fraction of the given run horizon (the named fault
// schedules place windows at thirds of the measured fault-free run time).
// The deadline is tight — only injected delay counts against it, so silent
// crash-window failures are detected quickly and the retry budget spans the
// window — and the breaker cooldown scales with the horizon so an open
// breaker costs bounded probe traffic even on millisecond-scale runs.
func RecoveryPolicy(horizon sim.Duration) Policy {
	p := DefaultPolicy()
	p.MaxAttempts = 64
	p.DeadlineBase = 5 * sim.Microsecond
	p.DeadlineMult = 1
	p.MaxBackoff = 32 * sim.Microsecond
	if p.BreakerCooldown < horizon/16 {
		p.BreakerCooldown = horizon / 16
	}
	return p
}

// Stats counts the transport's resilience events. Retries/Timeouts/
// BreakerTrips/DegradedTime are the headline robustness metrics the harness
// and profiler report.
type Stats struct {
	Ops               int64
	Failures          int64        // failed attempts, all causes
	Retries           int64        // attempts after the first
	Timeouts          int64        // attempts that blew the deadline
	Corruptions       int64        // checksum mismatches detected
	BreakerTrips      int64        // times the breaker (re)armed its open window
	GaveUp            int64        // ops that exhausted the retry budget
	QueuedWritebacks  int64        // writes queued locally while the breaker was open
	DrainedWritebacks int64        // queued writes later pushed to the node
	DroppedWritebacks int64        // queued writes refused permanently by the node
	DegradedReads     int64        // reads served from the local write-back queue
	DegradedTime      sim.Duration // virtual time stalled waiting for the breaker to half-open
	BackoffTime       sim.Duration // virtual time spent in retry backoff

	// Vectored-I/O counters: doorbell-batched gathers/scatters issued, the
	// pieces they carried, and a histogram of batch sizes (bucket i counts
	// batches of 2^i .. 2^(i+1)-1 pieces; the last bucket is open-ended).
	Batches       int64
	BatchedPieces int64
	BatchHist     [BatchHistBuckets]int64

	// Wire-codec counters (zero unless a codec is installed): successful
	// ops whose payload shipped encoded, and the raw-minus-encoded bytes
	// the codec kept off the wire. BytesMoved counts encoded (wire) bytes,
	// so effective bytes = BytesMoved + WireSaved.
	CodecOps  int64
	WireSaved int64
}

// BatchHistBuckets is the number of power-of-two batch-size histogram
// buckets in Stats.BatchHist.
const BatchHistBuckets = 8

// batchBucket maps a piece count to its BatchHist bucket.
func batchBucket(n int) int {
	b := 0
	for n > 1 && b < BatchHistBuckets-1 {
		n >>= 1
		b++
	}
	return b
}

// Add accumulates o into s — the one place that must know every counter, so
// multi-link aggregation (cluster pools) cannot silently drop new fields.
func (s *Stats) Add(o Stats) {
	s.Ops += o.Ops
	s.Failures += o.Failures
	s.Retries += o.Retries
	s.Timeouts += o.Timeouts
	s.Corruptions += o.Corruptions
	s.BreakerTrips += o.BreakerTrips
	s.GaveUp += o.GaveUp
	s.QueuedWritebacks += o.QueuedWritebacks
	s.DrainedWritebacks += o.DrainedWritebacks
	s.DroppedWritebacks += o.DroppedWritebacks
	s.DegradedReads += o.DegradedReads
	s.DegradedTime += o.DegradedTime
	s.BackoffTime += o.BackoffTime
	s.Batches += o.Batches
	s.BatchedPieces += o.BatchedPieces
	for i := range s.BatchHist {
		s.BatchHist[i] += o.BatchHist[i]
	}
	s.CodecOps += o.CodecOps
	s.WireSaved += o.WireSaved
}

// T is a transport endpoint on the compute node.
type T struct {
	Node *farmem.Node
	Cfg  netmodel.Config
	BW   *netmodel.Bandwidth

	be  Backend
	pol Policy

	mu          sync.Mutex
	rng         *sim.RNG
	consecFails int
	open        bool
	openUntil   sim.Time
	// wireCodec, when not None, makes every data payload ship in encoded
	// form: bandwidth is charged for the encoded bytes and the codec CPU
	// time (wireCost) is added to the op's completion. Data at rest on the
	// far node stays raw — the end-to-end checksum covers the decoded
	// bytes, so injected bit flips are caught exactly as without a codec.
	wireCodec codec.ID
	wireCost  codec.CostModel
	queued    map[uint64][]byte
	// queuedAddrs mirrors queued's keys in ascending order, maintained
	// incrementally on enqueue/dequeue so the drain and overlay-read paths
	// never rebuild and re-sort the key set.
	queuedAddrs []uint64
	stats       Stats

	// Tracing (all nil when disabled — every use is nil-safe).
	trc       *trace.Buffer
	cOps      *trace.Counter
	cRetries  *trace.Counter
	cTimeouts *trace.Counter
	cTrips    *trace.Counter
	cDegraded *trace.Counter
	hBatch    *trace.Histogram
}

// New builds a transport over node with the given cost model and the
// default resilience policy.
func New(node *farmem.Node, cfg netmodel.Config) *T {
	return NewWithPolicy(node, cfg, DefaultPolicy())
}

// NewWithPolicy builds a transport with an explicit resilience policy.
func NewWithPolicy(node *farmem.Node, cfg netmodel.Config, pol Policy) *T {
	return &T{
		Node:     node,
		Cfg:      cfg,
		BW:       netmodel.NewBandwidth(cfg),
		be:       nodeBackend{node: node},
		pol:      pol,
		rng:      sim.NewRNG(pol.JitterSeed),
		wireCost: codec.DefaultCostModel(),
		queued:   make(map[uint64][]byte),
	}
}

// SetWireCodec selects the wire codec for subsequent data operations (None
// disables it — the zero-cost default). The runtime flips it per section
// around each remote op, so per-section compression rides one shared link.
func (t *T) SetWireCodec(id codec.ID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.wireCodec = id
}

// WireCodec reports the active wire codec.
func (t *T) WireCodec() codec.ID {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.wireCodec
}

// SetCodecCost replaces the codec CPU cost model.
func (t *T) SetCodecCost(m codec.CostModel) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.wireCost = m
}

// wireLen reports the bytes payload occupies on the wire under the active
// codec and the codec CPU time (far-side encode + near-side decode) to add
// to the op's completion, updating the codec counters. Callers invoke it
// exactly once per successful op, after every failure check, so retries do
// not double-count. With no codec installed it is the identity: raw length,
// zero time, zero counter traffic.
func (t *T) wireLen(payload []byte) (int, sim.Duration) {
	t.mu.Lock()
	id, m := t.wireCodec, t.wireCost
	t.mu.Unlock()
	if id == codec.None {
		return len(payload), 0
	}
	w := codec.EncodedLen(id, payload)
	t.mu.Lock()
	t.stats.CodecOps++
	t.stats.WireSaved += int64(len(payload) - w)
	t.mu.Unlock()
	return w, m.EncodeCost(len(payload)) + m.DecodeCost(len(payload))
}

// wireLenVec is wireLen over a concatenated vectored payload: each piece is
// encoded independently (vectored messages carry per-piece encoded sizes
// and codec IDs), so a compressible line never pays for an incompressible
// neighbor in the same doorbell batch.
func (t *T) wireLenVec(data []byte, sizes []int) (int, sim.Duration) {
	t.mu.Lock()
	id, m := t.wireCodec, t.wireCost
	t.mu.Unlock()
	if id == codec.None {
		return len(data), 0
	}
	total, raw, off := 0, 0, 0
	for _, s := range sizes {
		total += codec.EncodedLen(id, data[off:off+s])
		raw += s
		off += s
	}
	t.mu.Lock()
	t.stats.CodecOps++
	t.stats.WireSaved += int64(raw - total)
	t.mu.Unlock()
	return total, m.EncodeCost(raw) + m.DecodeCost(raw)
}

// wireLenPieces is wireLenVec for scatter-shaped payloads.
func (t *T) wireLenPieces(pieces [][]byte) (int, sim.Duration) {
	t.mu.Lock()
	id, m := t.wireCodec, t.wireCost
	t.mu.Unlock()
	if id == codec.None {
		n := 0
		for _, p := range pieces {
			n += len(p)
		}
		return n, 0
	}
	total, raw := 0, 0
	for _, p := range pieces {
		total += codec.EncodedLen(id, p)
		raw += len(p)
	}
	t.mu.Lock()
	t.stats.CodecOps++
	t.stats.WireSaved += int64(raw - total)
	t.mu.Unlock()
	return total, m.EncodeCost(raw) + m.DecodeCost(raw)
}

// SetBackend interposes a different far-node backend — the fault injector's
// hook point.
func (t *T) SetBackend(be Backend) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.be = be
}

// Backend returns the current backend.
func (t *T) Backend() Backend {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.be
}

// SetPolicy replaces the resilience policy (and reseeds the jitter stream).
func (t *T) SetPolicy(pol Policy) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.pol = pol
	t.rng = sim.NewRNG(pol.JitterSeed)
}

// Policy returns the active resilience policy.
func (t *T) Policy() Policy { return t.pol }

// SetTrace attaches this link to a tracer: op spans, retry and breaker
// events go to the buffer named buf ("net" for the single link, "net.nodeI"
// per cluster member), counters and the batch-size histogram to the
// registry. The histogram carries the same distribution as Stats.BatchHist
// but with the registry's full bucket range. A nil tracer disables tracing.
func (t *T) SetTrace(tr *trace.Tracer, buf string) {
	if tr == nil {
		return
	}
	reg := tr.Registry()
	t.mu.Lock()
	defer t.mu.Unlock()
	t.trc = tr.Buffer(buf)
	lbl := "{link=" + buf + "}"
	t.cOps = reg.Counter("net.ops" + lbl)
	t.cRetries = reg.Counter("net.retries" + lbl)
	t.cTimeouts = reg.Counter("net.timeouts" + lbl)
	t.cTrips = reg.Counter("net.breaker.trips" + lbl)
	t.cDegraded = reg.Counter("net.degraded.reads" + lbl)
	t.hBatch = reg.Histogram("net.batch.pieces")
}

// Stats returns a snapshot of the resilience counters.
func (t *T) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}

// BreakerOpen reports whether the circuit breaker is open (pre-cooldown) at
// the given instant. The cache layers consult it to switch into degraded
// mode — e.g. write-allocating full lines locally instead of stalling on a
// fetch that cannot succeed.
func (t *T) BreakerOpen(now sim.Time) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.open && now < t.openUntil
}

// PendingWritebacks reports how many degraded-mode writes are queued
// locally, awaiting a drain to the far node.
func (t *T) PendingWritebacks() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.queued)
}

// DropQueued discards every queued degraded-mode write-back without pushing
// it to the node, returning how many were dropped (counted as
// DroppedWritebacks). Callers use this when the queued data is known
// obsolete — e.g. the far node lost its memory and is being restored from a
// replica whose copy already includes everything the queue holds; draining
// the queue afterwards would overwrite the restored bytes with stale ones.
func (t *T) DropQueued() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := len(t.queued)
	for addr := range t.queued {
		delete(t.queued, addr)
	}
	t.queuedAddrs = t.queuedAddrs[:0]
	t.stats.DroppedWritebacks += int64(n)
	return n
}

// supersedeRange reconciles the overlay with a direct write that just
// landed on the node: queued entries fully inside [addr, addr+len(data))
// are dropped and partially overlapping ones are patched with the fresher
// bytes. Queued entries are always older than a direct write that lands
// later (degraded-mode writes replace per address), and the next successful
// op drains the queue — without this a stale queued line would be replayed
// over the fresher bytes. Entries can differ in granularity from the
// superseding write (a queued read-repair line vs a coalesced multi-line
// write-back piece), hence range reconciliation, not address matching.
func (t *T) supersedeRange(addr uint64, data []byte) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.queued) == 0 {
		return
	}
	end := addr + uint64(len(data))
	var drop []uint64
	for _, k := range t.queuedAddrs {
		if k >= end {
			break
		}
		d := t.queued[k]
		ke := k + uint64(len(d))
		if ke <= addr {
			continue
		}
		if k >= addr && ke <= end {
			drop = append(drop, k)
			continue
		}
		lo, hi := k, ke
		if addr > lo {
			lo = addr
		}
		if end < hi {
			hi = end
		}
		copy(d[lo-k:hi-k], data[lo-addr:hi-addr])
	}
	for _, k := range drop {
		t.dequeueLocked(k)
	}
}

// latencyOneSided is OneSidedCost minus the wire time, which the bandwidth
// accountant charges separately (so concurrent threads contend for the wire
// but not for latency).
func (t *T) latencyOneSided(n int) sim.Duration {
	return t.Cfg.OneSidedCost(n) - t.Cfg.WireTime(n)
}

func (t *T) latencyTwoSided(n int) sim.Duration {
	return t.Cfg.TwoSidedCost(n) - t.Cfg.WireTime(n)
}

// deadline is the per-attempt completion budget for an op whose fault-free
// cost is base. Zero means deadlines are disabled.
func (t *T) deadline(base sim.Duration) sim.Duration {
	if t.pol.DeadlineBase <= 0 {
		return 0
	}
	mult := t.pol.DeadlineMult
	if mult < 1 {
		mult = 1
	}
	return t.pol.DeadlineBase + sim.Duration(float64(base)*mult)
}

// timedOut reports whether injected delay pushes an attempt past its
// deadline.
func (t *T) timedOut(base, extra sim.Duration) bool {
	d := t.deadline(base)
	if d <= 0 {
		return false
	}
	if base+extra > d {
		t.bump(&t.stats.Timeouts)
		t.cTimeouts.Inc()
		return true
	}
	return false
}

func (t *T) bump(field *int64) {
	t.mu.Lock()
	*field++
	t.mu.Unlock()
}

// resilient runs one operation under the retry/backoff/breaker policy.
// op names the operation class for tracing. attempt must charge bandwidth
// only on success; rtt is the op class's NACK-detection latency; base its
// fault-free cost (deadline basis). degraded, when non-nil, is consulted
// while the breaker is open (writes queue locally through it); returning
// ok=true completes the op without the network. Permanent errors return
// immediately with the caller's own `now` — a refused operation charges
// neither time nor bandwidth.
func (t *T) resilient(op string, now sim.Time, rtt, base sim.Duration,
	attempt func(at sim.Time) (sim.Time, error),
	degraded func(at sim.Time) (sim.Time, bool)) (sim.Time, error) {

	t.bump(&t.stats.Ops)
	t.cOps.Inc()
	attempts := t.pol.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	at := now
	var lastErr error
	for a := 0; a < attempts; a++ {
		if degraded != nil && t.BreakerOpen(at) {
			if end, ok := degraded(at); ok {
				t.trc.Span(now, end, "net", op, trace.S("mode", "degraded"))
				return end, nil
			}
		}
		at = t.breakerWait(at)
		end, err := attempt(at)
		if err == nil {
			t.noteSuccess(at)
			if a == 0 {
				t.trc.Span(now, end, "net", op)
			} else {
				t.trc.Span(now, end, "net", op, trace.I("retries", int64(a)))
			}
			return end, nil
		}
		if !IsTransient(err) {
			return now, err
		}
		lastErr = err
		retrying := a < attempts-1
		if retrying {
			t.bump(&t.stats.Retries)
			t.cRetries.Inc()
		}
		at = t.noteFailure(at, a, rtt, base, err)
		if retrying {
			t.trc.Instant(at, "net", op+".retry", trace.I("attempt", int64(a+1)))
		}
	}
	t.bump(&t.stats.GaveUp)
	return at, fmt.Errorf("%w after %d attempts (last: %v)", ErrFarUnavailable, attempts, lastErr)
}

// breakerWait blocks (in virtual time) until the breaker's cooldown has
// elapsed, making the caller the half-open probe.
func (t *T) breakerWait(at sim.Time) sim.Time {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.open && at < t.openUntil {
		t.stats.DegradedTime += t.openUntil.Sub(at)
		at = t.openUntil
	}
	return at
}

// noteFailure charges the failure's detection latency and backoff to the
// attempt timeline and updates the breaker.
func (t *T) noteFailure(at sim.Time, a int, rtt, base sim.Duration, err error) sim.Time {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.stats.Failures++
	switch {
	case errors.Is(err, ErrCorrupt):
		// The transfer completed and then failed the checksum.
		at = at.Add(base)
	case errors.Is(err, ErrTimeout):
		at = at.Add(t.deadline(base))
	default:
		var ne NackError
		if errors.As(err, &ne) && ne.Nack() {
			at = at.Add(rtt) // explicit failure reply after one round trip
		} else if d := t.deadline(base); d > 0 {
			at = at.Add(d) // silence: wait out the deadline
		} else {
			at = at.Add(rtt)
		}
	}
	if t.pol.BaseBackoff > 0 {
		d := t.pol.BaseBackoff
		if a < 30 {
			d <<= uint(a)
		} else {
			d = t.pol.MaxBackoff
		}
		if t.pol.MaxBackoff > 0 && (d <= 0 || d > t.pol.MaxBackoff) {
			d = t.pol.MaxBackoff
		}
		half := d / 2
		b := half
		if half > 0 {
			b += sim.Duration(t.rng.Uint64() % uint64(half+1))
		}
		t.stats.BackoffTime += b
		at = at.Add(b)
	}
	t.consecFails++
	if t.pol.BreakerThreshold > 0 && t.consecFails >= t.pol.BreakerThreshold {
		t.open = true
		t.openUntil = at.Add(t.pol.BreakerCooldown)
		t.stats.BreakerTrips++
		t.cTrips.Inc()
		t.trc.Instant(at, "net", "breaker.open",
			trace.I("until_ns", int64(t.openUntil)))
	}
	return at
}

// noteSuccess closes the breaker and drains any queued write-backs.
func (t *T) noteSuccess(at sim.Time) {
	t.mu.Lock()
	wasOpen := t.open
	t.consecFails = 0
	t.open = false
	n := len(t.queued)
	t.mu.Unlock()
	if wasOpen {
		t.trc.Instant(at, "net", "breaker.close")
	}
	if n > 0 {
		t.drainOnce(at)
	}
}

// enqueueWrite queues a degraded-mode write locally. The queue is an
// overlay over far memory: reads consult it first, so queued data stays
// visible. Entries never overlap: a new write patches the overlapping bytes
// of existing entries in place (it is fresher) and inserts only the
// uncovered gaps. Writers mix granularities at the same addresses — a
// coalesced multi-line write-back vs a single read-repair line — so
// anything keyed purely by address would let an older entry shadow part of
// a newer one at drain time.
func (t *T) enqueueWrite(addr uint64, data []byte) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.stats.QueuedWritebacks++
	end := addr + uint64(len(data))
	cur := addr
	type gap struct{ lo, hi uint64 }
	var gaps []gap
	for _, k := range t.queuedAddrs {
		if k >= end {
			break
		}
		d := t.queued[k]
		ke := k + uint64(len(d))
		if ke <= addr {
			continue
		}
		lo, hi := k, ke
		if addr > lo {
			lo = addr
		}
		if end < hi {
			hi = end
		}
		copy(d[lo-k:hi-k], data[lo-addr:hi-addr])
		if lo > cur {
			gaps = append(gaps, gap{cur, lo})
		}
		if hi > cur {
			cur = hi
		}
	}
	if cur < end {
		gaps = append(gaps, gap{cur, end})
	}
	for _, g := range gaps {
		cp := make([]byte, g.hi-g.lo)
		copy(cp, data[g.lo-addr:g.hi-addr])
		t.insertQueuedLocked(g.lo, cp)
	}
}

// insertQueuedLocked adds a fresh entry to the overlay map and its sorted
// key mirror. Callers guarantee the range does not overlap any existing
// entry.
func (t *T) insertQueuedLocked(addr uint64, cp []byte) {
	if _, exists := t.queued[addr]; !exists {
		i := sort.Search(len(t.queuedAddrs), func(i int) bool { return t.queuedAddrs[i] >= addr })
		t.queuedAddrs = append(t.queuedAddrs, 0)
		copy(t.queuedAddrs[i+1:], t.queuedAddrs[i:])
		t.queuedAddrs[i] = addr
	}
	t.queued[addr] = cp
}

// dequeueLocked removes addr from the overlay map and its sorted key mirror.
func (t *T) dequeueLocked(addr uint64) {
	if _, exists := t.queued[addr]; !exists {
		return
	}
	delete(t.queued, addr)
	i := sort.Search(len(t.queuedAddrs), func(i int) bool { return t.queuedAddrs[i] >= addr })
	if i < len(t.queuedAddrs) && t.queuedAddrs[i] == addr {
		t.queuedAddrs = append(t.queuedAddrs[:i], t.queuedAddrs[i+1:]...)
	}
}

// overlayReadLocked copies every queued byte overlapping [addr,
// addr+len(buf)) into buf and reports whether the whole range was covered.
// Iteration is over the sorted key mirror: map order must never decide
// which entry serves a read, or degraded-mode replays stop being
// byte-stable.
func (t *T) overlayReadLocked(addr uint64, buf []byte) (covered bool) {
	end := addr + uint64(len(buf))
	cur := addr
	full := len(t.queuedAddrs) > 0
	for _, k := range t.queuedAddrs {
		if k >= end {
			break
		}
		d := t.queued[k]
		ke := k + uint64(len(d))
		if ke <= addr {
			continue
		}
		lo, hi := k, ke
		if addr > lo {
			lo = addr
		}
		if end < hi {
			hi = end
		}
		copy(buf[lo-addr:hi-addr], d[lo-k:hi-k])
		if lo > cur {
			full = false
		}
		if hi > cur {
			cur = hi
		}
	}
	return full && cur >= end
}

// serveQueued serves [addr, addr+len(buf)) from the write-back overlay if
// queued entries cover all of it. Partially covering entries leave their
// bytes in buf; callers that fall through to the network overwrite buf
// wholesale and must re-patch afterwards.
func (t *T) serveQueued(addr uint64, buf []byte) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.queued) == 0 {
		return false
	}
	if t.overlayReadLocked(addr, buf) {
		t.stats.DegradedReads++
		t.cDegraded.Inc()
		return true
	}
	return false
}

// sortedQueuedAddrs snapshots the overlay keys in deterministic order. The
// sorted mirror is maintained incrementally, so this is a copy, not a
// rebuild-and-sort.
func (t *T) sortedQueuedAddrs() []uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]uint64(nil), t.queuedAddrs...)
}

// drainOnce replays queued write-backs through the backend, stopping at the
// first transient failure (the node flapped; the breaker re-arms via the
// failing op). Write-backs are asynchronous, so drained entries charge
// bandwidth but do not extend any caller's completion.
func (t *T) drainOnce(at sim.Time) {
	for _, addr := range t.sortedQueuedAddrs() {
		t.mu.Lock()
		data, ok := t.queued[addr]
		t.mu.Unlock()
		if !ok {
			continue
		}
		_, err := t.be.Write(at, addr, data)
		if err == nil {
			wlen, _ := t.wireLen(data) // async drain: bandwidth only, no caller timeline
			t.BW.Acquire(at, wlen)
			t.mu.Lock()
			t.dequeueLocked(addr)
			t.stats.DrainedWritebacks++
			t.mu.Unlock()
			continue
		}
		if !IsTransient(err) {
			t.mu.Lock()
			t.dequeueLocked(addr)
			t.stats.DroppedWritebacks++
			t.mu.Unlock()
			continue
		}
		t.noteFailure(at, 0, t.Cfg.OneSidedRTT, t.Cfg.OneSidedCost(len(data)), err)
		return
	}
}

// Flush forces every queued degraded-mode write-back out to the far node,
// waiting out the breaker in virtual time and retrying under the policy.
// It returns the completion instant of the last drained write. Callers that
// read far memory directly (DumpObject) must Flush first.
func (t *T) Flush(now sim.Time) (sim.Time, error) {
	last := now
	for {
		addrs := t.sortedQueuedAddrs()
		if len(addrs) == 0 {
			return last, nil
		}
		addr := addrs[0]
		t.mu.Lock()
		data, ok := t.queued[addr]
		t.dequeueLocked(addr)
		t.mu.Unlock()
		if !ok {
			continue
		}
		base := t.Cfg.OneSidedCost(len(data))
		end, err := t.resilient("flush.writeback", now, t.Cfg.OneSidedRTT, base, func(at sim.Time) (sim.Time, error) {
			extra, err := t.be.Write(at, addr, data)
			if err != nil {
				return 0, err
			}
			if t.timedOut(base, extra) {
				return 0, ErrTimeout
			}
			wlen, cpu := t.wireLen(data)
			wireEnd := t.BW.Acquire(at, wlen)
			return wireEnd.Add(t.latencyOneSided(len(data))).Add(extra).Add(cpu), nil
		}, nil)
		if err != nil {
			t.enqueueWrite(addr, data)
			t.mu.Lock()
			t.stats.QueuedWritebacks-- // re-queue of a failed flush, not a new write-back
			t.mu.Unlock()
			return last, fmt.Errorf("transport: flush of queued write-back %#x: %w", addr, err)
		}
		t.bump(&t.stats.DrainedWritebacks)
		if end > last {
			last = end
		}
	}
}

// ReadOneSided fetches len(buf) bytes at far address addr starting at now,
// returning the completion instant. The payload carries an end-to-end
// checksum; corruption is detected and retried.
func (t *T) ReadOneSided(now sim.Time, addr uint64, buf []byte) (sim.Time, error) {
	if t.serveQueued(addr, buf) {
		return now, nil
	}
	base := t.Cfg.OneSidedCost(len(buf))
	return t.resilient("read", now, t.Cfg.OneSidedRTT, base, func(at sim.Time) (sim.Time, error) {
		sum, extra, err := t.be.Read(at, addr, buf)
		if err != nil {
			return 0, err
		}
		if Checksum(buf) != sum {
			t.bump(&t.stats.Corruptions)
			return 0, ErrCorrupt
		}
		if t.timedOut(base, extra) {
			return 0, ErrTimeout
		}
		// Queued writes the node hasn't seen yet are newer than its reply;
		// patch any partial overlap (full coverage was served above). Must
		// happen here, before this success drains the queue into the node.
		t.mu.Lock()
		t.overlayReadLocked(addr, buf)
		t.mu.Unlock()
		wlen, cpu := t.wireLen(buf)
		wireEnd := t.BW.Acquire(at, wlen)
		return wireEnd.Add(t.latencyOneSided(len(buf))).Add(extra).Add(cpu), nil
	}, nil)
}

// WriteOneSided pushes buf to far address addr starting at now. One-sided
// writes are idempotent, so a retry after a lost completion is safe. While
// the breaker is open the write queues locally and completes immediately —
// the degraded-mode write-back queue.
func (t *T) WriteOneSided(now sim.Time, addr uint64, buf []byte) (sim.Time, error) {
	base := t.Cfg.OneSidedCost(len(buf))
	return t.resilient("write", now, t.Cfg.OneSidedRTT, base, func(at sim.Time) (sim.Time, error) {
		extra, err := t.be.Write(at, addr, buf)
		if err != nil {
			return 0, err
		}
		t.supersedeRange(addr, buf)
		if t.timedOut(base, extra) {
			return 0, ErrTimeout
		}
		wlen, cpu := t.wireLen(buf)
		wireEnd := t.BW.Acquire(at, wlen)
		return wireEnd.Add(t.latencyOneSided(len(buf))).Add(extra).Add(cpu), nil
	}, func(at sim.Time) (sim.Time, bool) {
		t.enqueueWrite(addr, buf)
		return at, true
	})
}

// GatherTwoSided fetches several pieces in one two-sided message (§4.5
// batching, §4.7 partial-structure transmission). The reply carries the
// pieces concatenated in request order. Pieces covered by the degraded-mode
// write-back queue are patched from the overlay so reads always see the
// newest data.
func (t *T) GatherTwoSided(now sim.Time, addrs []uint64, sizes []int) ([]byte, sim.Time, error) {
	if data, ok := t.gatherQueued(addrs, sizes); ok {
		return data, now, nil
	}
	total := 0
	for _, s := range sizes {
		total += s
	}
	base := t.Cfg.BatchedCost(sizes)
	var data []byte
	end, err := t.resilient("gather2s", now, t.Cfg.TwoSidedRTT, base, func(at sim.Time) (sim.Time, error) {
		d, sum, extra, err := t.be.Gather(at, addrs, sizes)
		if err != nil {
			return 0, err
		}
		if Checksum(d) != sum {
			t.bump(&t.stats.Corruptions)
			return 0, ErrCorrupt
		}
		if t.timedOut(base, extra) {
			return 0, ErrTimeout
		}
		// Patch before returning success: success drains the queue, and the
		// reply must reflect queued writes the node hasn't seen yet.
		t.patchFromQueue(addrs, sizes, d)
		data = d
		wlen, cpu := t.wireLenVec(d, sizes)
		wireEnd := t.BW.Acquire(at, wlen)
		return wireEnd.Add(base - t.Cfg.WireTime(len(d))).Add(extra).Add(cpu), nil
	}, nil)
	if err != nil {
		return nil, end, err
	}
	return data, end, nil
}

// gatherQueued serves a whole gather from the overlay when every piece is
// covered by queued write-backs.
func (t *T) gatherQueued(addrs []uint64, sizes []int) ([]byte, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.queued) == 0 || len(addrs) != len(sizes) {
		return nil, false
	}
	total := 0
	for _, s := range sizes {
		total += s
	}
	out := make([]byte, total)
	off := 0
	for i, a := range addrs {
		if !t.overlayReadLocked(a, out[off:off+sizes[i]]) {
			return nil, false
		}
		off += sizes[i]
	}
	t.stats.DegradedReads++
	t.cDegraded.Inc()
	return out, true
}

// patchFromQueue overwrites gather-reply segments with newer queued data,
// including partial overlaps.
func (t *T) patchFromQueue(addrs []uint64, sizes []int, data []byte) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.queued) == 0 {
		return
	}
	off := 0
	for i, a := range addrs {
		t.overlayReadLocked(a, data[off:off+sizes[i]])
		off += sizes[i]
	}
}

// ScatterTwoSided writes several pieces in one two-sided message. While the
// breaker is open each piece queues locally.
func (t *T) ScatterTwoSided(now sim.Time, addrs []uint64, pieces [][]byte) (sim.Time, error) {
	sizes := make([]int, len(pieces))
	total := 0
	for i, p := range pieces {
		sizes[i] = len(p)
		total += len(p)
	}
	base := t.Cfg.BatchedCost(sizes)
	return t.resilient("scatter2s", now, t.Cfg.TwoSidedRTT, base, func(at sim.Time) (sim.Time, error) {
		extra, err := t.be.Scatter(at, addrs, pieces)
		if err != nil {
			return 0, err
		}
		for i := range addrs {
			t.supersedeRange(addrs[i], pieces[i])
		}
		if t.timedOut(base, extra) {
			return 0, ErrTimeout
		}
		wlen, cpu := t.wireLenPieces(pieces)
		wireEnd := t.BW.Acquire(at, wlen)
		return wireEnd.Add(base - t.Cfg.WireTime(total)).Add(extra).Add(cpu), nil
	}, func(at sim.Time) (sim.Time, bool) {
		for i := range addrs {
			t.enqueueWrite(addrs[i], pieces[i])
		}
		return at, true
	})
}

// noteBatch records a vectored op of n pieces in the batch-size histogram
// (and its registry twin when tracing is on).
func (t *T) noteBatch(n int) {
	t.mu.Lock()
	t.stats.Batches++
	t.stats.BatchedPieces += int64(n)
	t.stats.BatchHist[batchBucket(n)]++
	t.mu.Unlock()
	t.hBatch.Observe(int64(n))
}

// GatherOneSided fetches several pieces with one doorbell-batched chain of
// one-sided reads: the WRs are posted together and ring the doorbell once,
// so the whole chain pays one round trip and one posting overhead (§4.5
// batched prefetch). The reply carries the pieces concatenated in request
// order, streaming back-to-back on the wire — callers that hand pieces out
// individually can therefore compute each piece's own arrival instant by
// subtracting the trailing pieces' wire time from the returned completion.
// Pieces covered by the degraded-mode write-back queue are patched from the
// overlay so reads always see the newest data.
func (t *T) GatherOneSided(now sim.Time, addrs []uint64, sizes []int) ([]byte, sim.Time, error) {
	if data, ok := t.gatherQueued(addrs, sizes); ok {
		return data, now, nil
	}
	total := 0
	for _, s := range sizes {
		total += s
	}
	base := t.Cfg.VectoredOneSidedCost(sizes)
	var data []byte
	end, err := t.resilient("gather1s", now, t.Cfg.OneSidedRTT, base, func(at sim.Time) (sim.Time, error) {
		d, sum, extra, err := t.be.Gather(at, addrs, sizes)
		if err != nil {
			return 0, err
		}
		if Checksum(d) != sum {
			t.bump(&t.stats.Corruptions)
			return 0, ErrCorrupt
		}
		if t.timedOut(base, extra) {
			return 0, ErrTimeout
		}
		// Patch before returning success: success drains the queue, and the
		// reply must reflect queued writes the node hasn't seen yet.
		t.patchFromQueue(addrs, sizes, d)
		data = d
		wlen, cpu := t.wireLenVec(d, sizes)
		wireEnd := t.BW.Acquire(at, wlen)
		t.noteBatch(len(addrs))
		return wireEnd.Add(base - t.Cfg.WireTime(len(d))).Add(extra).Add(cpu), nil
	}, nil)
	if err != nil {
		return nil, end, err
	}
	return data, end, nil
}

// ScatterWrite pushes several pieces with one doorbell-batched chain of
// one-sided writes — the write-side twin of GatherOneSided and the vehicle
// of the runtime's coalesced write-back drain. Like WriteOneSided it is
// idempotent (safe to retry) and degrades gracefully: while the breaker is
// open every piece queues locally and the op completes immediately.
func (t *T) ScatterWrite(now sim.Time, addrs []uint64, pieces [][]byte) (sim.Time, error) {
	sizes := make([]int, len(pieces))
	total := 0
	for i, p := range pieces {
		sizes[i] = len(p)
		total += len(p)
	}
	base := t.Cfg.VectoredOneSidedCost(sizes)
	end, err := t.resilient("scatter.write", now, t.Cfg.OneSidedRTT, base, func(at sim.Time) (sim.Time, error) {
		extra, err := t.be.Scatter(at, addrs, pieces)
		if err != nil {
			return 0, err
		}
		for i := range addrs {
			t.supersedeRange(addrs[i], pieces[i])
		}
		if t.timedOut(base, extra) {
			return 0, ErrTimeout
		}
		wlen, cpu := t.wireLenPieces(pieces)
		wireEnd := t.BW.Acquire(at, wlen)
		t.noteBatch(len(addrs))
		return wireEnd.Add(base - t.Cfg.WireTime(total)).Add(extra).Add(cpu), nil
	}, func(at sim.Time) (sim.Time, bool) {
		for i := range addrs {
			t.enqueueWrite(addrs[i], pieces[i])
		}
		return at, true
	})
	return end, err
}

// Call invokes an offloaded procedure (§4.8): args travel two-sided, the far
// CPU executes (already slowdown-scaled by the node), and the result travels
// back. The returned instant is when the result is available locally.
// Bandwidth is charged only once the RPC is known to have succeeded, so a
// refused call (unknown procedure, dead node) costs the caller nothing on
// the wire. Registered procedures are deterministic, so a retry after a
// transient failure is safe.
func (t *T) Call(now sim.Time, name string, args []byte) ([]byte, sim.Time, error) {
	base := t.Cfg.TwoSidedCost(len(args))
	var res []byte
	end, err := t.resilient("call", now, t.Cfg.TwoSidedRTT, base, func(at sim.Time) (sim.Time, error) {
		r, farCPU, extra, err := t.be.Call(at, name, args)
		if err != nil {
			return 0, err
		}
		if t.timedOut(base, extra) {
			return 0, ErrTimeout
		}
		res = r
		argsEnd := t.BW.Acquire(at, len(args)).Add(t.latencyTwoSided(len(args)))
		computeEnd := argsEnd.Add(farCPU)
		resEnd := t.BW.Acquire(computeEnd, len(r)).Add(t.latencyTwoSided(len(r))).Add(extra)
		return resEnd, nil
	}, nil)
	if err != nil {
		return nil, end, err
	}
	return res, end, nil
}
