// Package transport glues the cost model (netmodel), the shared link
// (netmodel.Bandwidth), and the far-memory node (farmem) into the operations
// the cache layers issue: one-sided reads/writes, two-sided gather/scatter,
// batched messages, and offload RPCs. Every operation returns the virtual
// completion instant so callers can either block (demand miss) or continue
// (prefetch, async write-back).
package transport

import (
	"mira/internal/farmem"
	"mira/internal/netmodel"
	"mira/internal/sim"
)

// T is a transport endpoint on the compute node.
type T struct {
	Node *farmem.Node
	Cfg  netmodel.Config
	BW   *netmodel.Bandwidth
}

// New builds a transport over node with the given cost model.
func New(node *farmem.Node, cfg netmodel.Config) *T {
	return &T{Node: node, Cfg: cfg, BW: netmodel.NewBandwidth(cfg)}
}

// latencyOneSided is OneSidedCost minus the wire time, which the bandwidth
// accountant charges separately (so concurrent threads contend for the wire
// but not for latency).
func (t *T) latencyOneSided(n int) sim.Duration {
	return t.Cfg.OneSidedCost(n) - t.Cfg.WireTime(n)
}

func (t *T) latencyTwoSided(n int) sim.Duration {
	return t.Cfg.TwoSidedCost(n) - t.Cfg.WireTime(n)
}

// ReadOneSided fetches len(buf) bytes at far address addr starting at now,
// returning the completion instant.
func (t *T) ReadOneSided(now sim.Time, addr uint64, buf []byte) (sim.Time, error) {
	if err := t.Node.Read(addr, buf); err != nil {
		return now, err
	}
	wireEnd := t.BW.Acquire(now, len(buf))
	return wireEnd.Add(t.latencyOneSided(len(buf))), nil
}

// WriteOneSided pushes buf to far address addr starting at now.
func (t *T) WriteOneSided(now sim.Time, addr uint64, buf []byte) (sim.Time, error) {
	if err := t.Node.Write(addr, buf); err != nil {
		return now, err
	}
	wireEnd := t.BW.Acquire(now, len(buf))
	return wireEnd.Add(t.latencyOneSided(len(buf))), nil
}

// GatherTwoSided fetches several pieces in one two-sided message (§4.5
// batching, §4.7 partial-structure transmission). The reply carries the
// pieces concatenated in request order.
func (t *T) GatherTwoSided(now sim.Time, addrs []uint64, sizes []int) ([]byte, sim.Time, error) {
	data, err := t.Node.Gather(addrs, sizes)
	if err != nil {
		return nil, now, err
	}
	wireEnd := t.BW.Acquire(now, len(data))
	return data, wireEnd.Add(t.Cfg.BatchedCost(sizes) - t.Cfg.WireTime(len(data))), nil
}

// ScatterTwoSided writes several pieces in one two-sided message.
func (t *T) ScatterTwoSided(now sim.Time, addrs []uint64, pieces [][]byte) (sim.Time, error) {
	if err := t.Node.Scatter(addrs, pieces); err != nil {
		return now, err
	}
	sizes := make([]int, len(pieces))
	total := 0
	for i, p := range pieces {
		sizes[i] = len(p)
		total += len(p)
	}
	wireEnd := t.BW.Acquire(now, total)
	return wireEnd.Add(t.Cfg.BatchedCost(sizes) - t.Cfg.WireTime(total)), nil
}

// Call invokes an offloaded procedure (§4.8): args travel two-sided, the far
// CPU executes (already slowdown-scaled by the node), and the result travels
// back. The returned instant is when the result is available locally.
func (t *T) Call(now sim.Time, name string, args []byte) ([]byte, sim.Time, error) {
	argsEnd := t.BW.Acquire(now, len(args)).Add(t.latencyTwoSided(len(args)))
	res, farCPU, err := t.Node.Call(name, args)
	if err != nil {
		return nil, now, err
	}
	computeEnd := argsEnd.Add(farCPU)
	resEnd := t.BW.Acquire(computeEnd, len(res)).Add(t.latencyTwoSided(len(res)))
	return res, resEnd, nil
}
