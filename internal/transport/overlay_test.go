package transport

import (
	"bytes"
	"testing"

	"mira/internal/sim"
)

// rep returns n copies of b.
func rep(b byte, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = b
	}
	return out
}

// A newer queued write must win over an older queued entry it overlaps,
// even when the two were enqueued at different addresses and granularities
// (a single read-repair line vs a coalesced multi-line write-back). Before
// the overlay kept non-overlapping entries, the drain replayed entries in
// address order and the older line at the higher address clobbered the tail
// of the newer piece.
func TestOverlayNewerQueuedWriteWinsAcrossGranularities(t *testing.T) {
	tr, f := newFlakyT(testPolicy())
	f.failures = 1 << 20 // node down: everything queues

	// Older entry: a 2 KB "repair snapshot" at offset 2048.
	if _, err := tr.WriteOneSided(0, 2048, rep(0xAA, 2048)); err != nil {
		t.Fatal(err)
	}
	// Newer entry: a 4 KB coalesced write-back covering it.
	if _, err := tr.WriteOneSided(0, 0, rep(0xBB, 4096)); err != nil {
		t.Fatal(err)
	}

	// The overlay must already serve the newer bytes.
	buf := make([]byte, 4096)
	if _, err := tr.ReadOneSided(0, 0, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, rep(0xBB, 4096)) {
		t.Fatalf("overlay read returned stale bytes at %d", bytes.IndexByte(buf, 0xAA))
	}

	f.failures = 0
	if _, err := tr.Flush(0); err != nil {
		t.Fatal(err)
	}
	// Drained fragments: the gap [0,2048) plus the patched entry at 2048.
	if !bytes.Equal(f.store[0], rep(0xBB, 2048)) {
		t.Fatalf("drained gap fragment = %x…", f.store[0][:4])
	}
	if !bytes.Equal(f.store[2048], rep(0xBB, 2048)) {
		t.Fatalf("older queued entry drained stale bytes over the newer write")
	}
}

// The mirror case: a newer small write over an older large queued entry
// must patch the entry in place, not shadow or truncate it.
func TestOverlayNewerSmallWritePatchesLargerEntry(t *testing.T) {
	tr, f := newFlakyT(testPolicy())
	f.failures = 1 << 20

	if _, err := tr.WriteOneSided(0, 0, rep(0xAA, 4096)); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.WriteOneSided(0, 2048, rep(0xBB, 2048)); err != nil {
		t.Fatal(err)
	}

	f.failures = 0
	if _, err := tr.Flush(0); err != nil {
		t.Fatal(err)
	}
	want := append(rep(0xAA, 2048), rep(0xBB, 2048)...)
	if !bytes.Equal(f.store[0], want) {
		t.Fatalf("patched entry drained wrong bytes")
	}
	if tr.PendingWritebacks() != 0 {
		t.Fatalf("%d writebacks left queued", tr.PendingWritebacks())
	}
}

// A direct write that lands after the node heals supersedes the overlapped
// part of a still-queued older entry: the drain that follows must not roll
// the node back to the queued snapshot.
func TestOverlayDirectWriteSupersedesQueuedRange(t *testing.T) {
	pol := testPolicy()
	tr, f := newFlakyT(pol)
	f.failures = 1 << 20

	if _, err := tr.WriteOneSided(0, 0, rep(0xAA, 4096)); err != nil {
		t.Fatal(err)
	}
	f.failures = 0
	at := sim.Time(0).Add(2 * pol.BreakerCooldown)
	// Direct write inside the queued range; its success drains the queue.
	if _, err := tr.WriteOneSided(at, 1024, rep(0xBB, 1024)); err != nil {
		t.Fatal(err)
	}
	if tr.PendingWritebacks() != 0 {
		t.Fatalf("%d writebacks left queued after healed write", tr.PendingWritebacks())
	}
	drained := f.store[0]
	if !bytes.Equal(drained[1024:2048], rep(0xBB, 1024)) {
		t.Fatalf("drain replayed the stale snapshot over the direct write")
	}
	if !bytes.Equal(drained[:1024], rep(0xAA, 1024)) || !bytes.Equal(drained[2048:], rep(0xAA, 2048)) {
		t.Fatalf("drain corrupted bytes outside the superseded range")
	}
}

// Delta write-back ships a dirty line as patch-shaped ScatterWrite pieces
// at sub-line addresses. When those land degraded they enqueue per piece,
// and the overlay's non-overlap invariant must hold against a full-line
// entry already queued for the same line: the newer patch bytes win inside
// their ranges, the older full line survives everywhere else, and the drain
// replays exactly one merged entry.
func TestOverlayPatchPiecesMergeIntoQueuedFullLine(t *testing.T) {
	tr, f := newFlakyT(testPolicy())
	f.failures = 1 << 20 // node down: everything queues

	// Older entry: a full 2 KB line (a degraded write-back re-expanded it).
	if _, err := tr.WriteOneSided(0, 2048, rep(0xAA, 2048)); err != nil {
		t.Fatal(err)
	}
	// Newer patch: two sub-line pieces inside that line.
	addrs := []uint64{2048 + 64, 2048 + 1024}
	pieces := [][]byte{rep(0xBB, 8), rep(0xCC, 16)}
	if _, err := tr.ScatterWrite(0, addrs, pieces); err != nil {
		t.Fatal(err)
	}

	want := rep(0xAA, 2048)
	copy(want[64:], rep(0xBB, 8))
	copy(want[1024:], rep(0xCC, 16))

	// The overlay must already serve the patched line (fully covered, so
	// the read never touches the dead node).
	buf := make([]byte, 2048)
	if _, err := tr.ReadOneSided(0, 2048, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, want) {
		t.Fatalf("overlay read missed patch bytes at %d", firstDiff(buf, want))
	}

	f.failures = 0
	if _, err := tr.Flush(0); err != nil {
		t.Fatal(err)
	}
	// The pieces patched the full-line entry in place: one merged entry
	// drains, carrying the patch bytes inside the surviving base.
	if !bytes.Equal(f.store[2048], want) {
		t.Fatalf("drained line wrong at %d", firstDiff(f.store[2048], want))
	}
	if tr.PendingWritebacks() != 0 {
		t.Fatalf("%d writebacks left queued", tr.PendingWritebacks())
	}
}

// The mirror case: patch-shaped pieces queue first, then a full-line entry
// for the same line lands (a later eviction re-expanded to the full line).
// The newer full line must win everywhere — the older patch fragments patch
// in place and the gaps between them fill in, so the drain reconstructs the
// line with no stale bytes.
func TestOverlayFullLineSupersedesQueuedPatchPieces(t *testing.T) {
	tr, f := newFlakyT(testPolicy())
	f.failures = 1 << 20

	addrs := []uint64{2048 + 64, 2048 + 1024}
	pieces := [][]byte{rep(0xBB, 8), rep(0xCC, 16)}
	if _, err := tr.ScatterWrite(0, addrs, pieces); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.WriteOneSided(0, 2048, rep(0xDD, 2048)); err != nil {
		t.Fatal(err)
	}

	buf := make([]byte, 2048)
	if _, err := tr.ReadOneSided(0, 2048, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, rep(0xDD, 2048)) {
		t.Fatalf("overlay read leaked stale patch bytes at %d", firstDiff(buf, rep(0xDD, 2048)))
	}

	f.failures = 0
	if _, err := tr.Flush(0); err != nil {
		t.Fatal(err)
	}
	// The drain may replay the line as several non-overlapping fragments
	// (patched pieces plus gap fills); reassembled they must be uniform.
	got := make([]byte, 2048)
	for addr, b := range f.store {
		if addr < 2048 || addr+uint64(len(b)) > 4096 {
			t.Fatalf("drain wrote outside the line: %d+%d", addr, len(b))
		}
		copy(got[addr-2048:], b)
	}
	if !bytes.Equal(got, rep(0xDD, 2048)) {
		t.Fatalf("reassembled line has stale bytes at %d", firstDiff(got, rep(0xDD, 2048)))
	}
	if tr.PendingWritebacks() != 0 {
		t.Fatalf("%d writebacks left queued", tr.PendingWritebacks())
	}
}

// firstDiff returns the first index where a and b differ, or -1.
func firstDiff(a, b []byte) int {
	for i := range a {
		if i >= len(b) || a[i] != b[i] {
			return i
		}
	}
	return -1
}

// A network read whose range is only partially covered by the overlay must
// still reflect the queued bytes — and must do so even though its own
// success drains the queue.
func TestOverlayPartialCoverageReadPatched(t *testing.T) {
	pol := testPolicy()
	tr, f := newFlakyT(pol)
	f.store[0] = rep(0x11, 2048)
	f.failures = 1 << 20

	if _, err := tr.WriteOneSided(0, 1024, rep(0xCC, 512)); err != nil {
		t.Fatal(err)
	}
	f.failures = 0
	at := sim.Time(0).Add(2 * pol.BreakerCooldown)
	buf := make([]byte, 2048)
	if _, err := tr.ReadOneSided(at, 0, buf); err != nil {
		t.Fatal(err)
	}
	want := rep(0x11, 2048)
	copy(want[1024:], rep(0xCC, 512))
	if !bytes.Equal(buf, want) {
		t.Fatalf("partially covered read missed queued bytes")
	}
	if tr.PendingWritebacks() != 0 {
		t.Fatalf("successful read did not drain the queue")
	}
}
