package transport_test

import (
	"testing"

	"mira/internal/farmem"
	"mira/internal/transport"
	"mira/internal/transport/transporttest"
)

// TestNodeBackendConformance runs the shared Backend contract against the
// plain in-memory node backend — the reference implementation every other
// backend (fault-injected, cluster per-node) is measured against.
func TestNodeBackendConformance(t *testing.T) {
	transporttest.Conformance(t, func(t *testing.T) transporttest.Instance {
		node := farmem.NewNode(farmem.DefaultNodeConfig())
		return transporttest.Instance{Backend: transport.NewNodeBackend(node), Node: node}
	})
}
