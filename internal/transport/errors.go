package transport

import (
	"errors"

	"mira/internal/farmem"
)

// Sentinel errors produced by the resilient transport itself.
var (
	// ErrTimeout reports a single attempt that blew its deadline (an
	// injected delay spike larger than the policy allows, or a silent
	// partition where no reply ever arrives).
	ErrTimeout = errors.New("transport: operation deadline exceeded")
	// ErrCorrupt reports an end-to-end checksum mismatch on a payload —
	// the far node's checksum (computed over what it sent) disagrees with
	// what arrived.
	ErrCorrupt = errors.New("transport: payload checksum mismatch")
	// ErrFarUnavailable reports that the far node could not be reached
	// within the retry budget: the circuit breaker is open and every
	// half-open probe failed. Callers that cannot degrade locally must
	// surface this to the application.
	ErrFarUnavailable = errors.New("transport: far node unavailable")
)

// NackError marks transient failures where the far side answered with an
// explicit failure reply, so the client learns after roughly one round trip
// instead of waiting out the full deadline (the injector's transient I/O
// errors are NACKs; node-down and partition are silence).
type NackError interface {
	Nack() bool
}

// TransientError marks failures a retry may cure. The fault injector's
// errors (node down, partition, injected I/O error) implement it; the far
// node's own refusals (unmapped address, unknown procedure, …) do not.
type TransientError interface {
	Transient() bool
}

// IsTransient reports whether the retry policy should try the operation
// again. Timeouts and corruption are always retryable (the next transfer
// draws fresh luck); errors carrying a Transient() marker say so
// themselves; the far node's sentinel refusals are permanent. Unknown
// errors are treated as permanent so application bugs fail fast instead of
// burning the retry budget.
func IsTransient(err error) bool {
	if errors.Is(err, ErrTimeout) || errors.Is(err, ErrCorrupt) {
		return true
	}
	var te TransientError
	if errors.As(err, &te) {
		return te.Transient()
	}
	if errors.Is(err, farmem.ErrUnmapped) || errors.Is(err, farmem.ErrOutOfMemory) ||
		errors.Is(err, farmem.ErrUnknownProc) || errors.Is(err, farmem.ErrBadRequest) {
		return false
	}
	return false
}
