// Package transporttest holds the shared transport.Backend conformance
// suite. Every backend on the far-memory data path — the plain in-memory
// node backend, the fault injector wrapped around it, and each cluster
// per-node backend — must pass the same behavioral contract, so the three
// stay aligned as they evolve.
package transporttest

import (
	"bytes"
	"errors"
	"testing"

	"mira/internal/codec"
	"mira/internal/farmem"
	"mira/internal/netmodel"
	"mira/internal/sim"
	"mira/internal/transport"
)

// Instance is one backend under test plus the node it ultimately serves
// (needed to allocate addresses and register procedures).
type Instance struct {
	Backend transport.Backend
	Node    *farmem.Node
}

// Factory builds a fresh, independent instance. The suite calls it several
// times: behavior must depend only on construction parameters, never on
// shared global state.
type Factory func(t *testing.T) Instance

// Conformance runs the shared transport.Backend contract against mk.
//
// The contract (for a backend whose probabilistic faults are disabled and
// whose schedule has no window covering virtual time zero):
//
//   - Write then Read round-trips bytes, and the returned checksum matches
//     transport.Checksum over the delivered payload.
//   - Gather returns the requested pieces concatenated in request order,
//     checksummed; Scatter makes its pieces visible to subsequent Reads.
//   - Accesses outside any allocation fail with farmem.ErrUnmapped and are
//     NOT transient (retrying cannot help).
//   - Call of an unregistered procedure fails with farmem.ErrUnknownProc;
//     a registered procedure executes with far-memory access and its
//     compute time is scaled by the node's CPU slowdown.
//   - With a wire codec installed on the transport above it, a bit flipped
//     in a read reply is still caught by the checksum — which covers the
//     decoded payload, not the wire-accounted bytes — and the retried
//     operation replays identically.
//   - Two instances from the same factory replay an identical operation
//     sequence identically (checksums, payloads, injected extra delay) —
//     the determinism clause that makes fault schedules bisectable.
func Conformance(t *testing.T, mk Factory) {
	t.Run("ReadWriteRoundTrip", func(t *testing.T) {
		in := mk(t)
		addr := mustAlloc(t, in.Node, 256)
		want := pattern(256, 1)
		if _, err := in.Backend.Write(0, addr, want); err != nil {
			t.Fatalf("write: %v", err)
		}
		got := make([]byte, 256)
		sum, _, err := in.Backend.Read(0, addr, got)
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("read returned wrong bytes")
		}
		if sum != transport.Checksum(want) {
			t.Fatalf("checksum %#x does not cover the true payload (want %#x)", sum, transport.Checksum(want))
		}
	})

	t.Run("GatherOrderAndChecksum", func(t *testing.T) {
		in := mk(t)
		a := mustAlloc(t, in.Node, 128)
		b := mustAlloc(t, in.Node, 128)
		da, db := pattern(128, 3), pattern(128, 7)
		if _, err := in.Backend.Write(0, a, da); err != nil {
			t.Fatal(err)
		}
		if _, err := in.Backend.Write(0, b, db); err != nil {
			t.Fatal(err)
		}
		// Request order b-then-a must be preserved in the reply.
		data, sum, _, err := in.Backend.Gather(0, []uint64{b, a}, []int{128, 64})
		if err != nil {
			t.Fatalf("gather: %v", err)
		}
		want := append(append([]byte{}, db...), da[:64]...)
		if !bytes.Equal(data, want) {
			t.Fatalf("gather reply out of order or wrong")
		}
		if sum != transport.Checksum(want) {
			t.Fatalf("gather checksum mismatch")
		}
	})

	t.Run("ScatterVisible", func(t *testing.T) {
		in := mk(t)
		a := mustAlloc(t, in.Node, 64)
		b := mustAlloc(t, in.Node, 64)
		pa, pb := pattern(64, 11), pattern(64, 13)
		if _, err := in.Backend.Scatter(0, []uint64{a, b}, [][]byte{pa, pb}); err != nil {
			t.Fatalf("scatter: %v", err)
		}
		got := make([]byte, 64)
		if _, _, err := in.Backend.Read(0, b, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, pb) {
			t.Fatalf("scatter piece not visible to read")
		}
	})

	t.Run("UnmappedIsPermanent", func(t *testing.T) {
		in := mk(t)
		buf := make([]byte, 8)
		_, _, err := in.Backend.Read(0, 0xdead, buf)
		if err == nil {
			t.Fatalf("read of unmapped address succeeded")
		}
		if !errors.Is(err, farmem.ErrUnmapped) {
			t.Fatalf("unmapped read error %v is not farmem.ErrUnmapped", err)
		}
		if transport.IsTransient(err) {
			t.Fatalf("unmapped access classified transient — retries would spin forever")
		}
	})

	t.Run("CallContract", func(t *testing.T) {
		in := mk(t)
		if _, _, _, err := in.Backend.Call(0, "nope", nil); !errors.Is(err, farmem.ErrUnknownProc) {
			t.Fatalf("unknown proc error = %v, want farmem.ErrUnknownProc", err)
		}
		addr := mustAlloc(t, in.Node, 8)
		if _, err := in.Backend.Write(0, addr, []byte{1, 2, 3, 4, 5, 6, 7, 8}); err != nil {
			t.Fatal(err)
		}
		in.Node.Register("sum8", func(mem *farmem.Mem, args []byte) ([]byte, sim.Duration, error) {
			b, err := mem.Slice(addr, 8)
			if err != nil {
				return nil, 0, err
			}
			var s byte
			for _, x := range b {
				s += x
			}
			return []byte{s}, 10 * sim.Nanosecond, nil
		})
		res, farCPU, _, err := in.Backend.Call(0, "sum8", nil)
		if err != nil {
			t.Fatalf("call: %v", err)
		}
		if len(res) != 1 || res[0] != 36 {
			t.Fatalf("proc result = %v, want [36]", res)
		}
		wantCPU := sim.Duration(float64(10*sim.Nanosecond) * in.Node.CPUSlowdown())
		if farCPU != wantCPU {
			t.Fatalf("far CPU %v not scaled by slowdown (want %v)", farCPU, wantCPU)
		}
	})

	t.Run("CodecCRCOverDecodedBytes", func(t *testing.T) {
		// With a wire codec active, the end-to-end checksum still covers
		// the DECODED payload: a bit flipped in a reply is detected and
		// retried even though the wire accounting saw compressed bytes.
		// The codec is a cost model, not a framing change — corruption
		// detection must be unaffected by it.
		run := func() (transport.Stats, sim.Time, []byte) {
			in := mk(t)
			flip := &bitFlipBackend{Backend: in.Backend}
			tr := transport.NewWithPolicy(in.Node, netmodel.DefaultConfig(), transport.DefaultPolicy())
			tr.SetBackend(flip)
			tr.SetWireCodec(codec.ByteRun)
			addr := mustAlloc(t, in.Node, 512)
			want := bytes.Repeat([]byte{0xAB}, 512) // compressible: the codec engages
			if _, err := tr.WriteOneSided(0, addr, want); err != nil {
				t.Fatalf("write: %v", err)
			}
			flip.flips = 1
			got := make([]byte, 512)
			end, err := tr.ReadOneSided(sim.Time(sim.Microsecond), addr, got)
			if err != nil {
				t.Fatalf("read did not survive a single bit flip: %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("retried read delivered corrupt bytes")
			}
			return tr.Stats(), end, got
		}
		s1, end1, p1 := run()
		if s1.Corruptions == 0 {
			t.Fatalf("bit flip not detected by the decoded-bytes checksum: %+v", s1)
		}
		if s1.Retries == 0 {
			t.Fatalf("detected corruption was not retried: %+v", s1)
		}
		if s1.WireSaved == 0 || s1.CodecOps == 0 {
			t.Fatalf("wire codec never engaged (WireSaved=%d CodecOps=%d)", s1.WireSaved, s1.CodecOps)
		}
		// The corrupted-then-retried op must replay identically.
		s2, end2, p2 := run()
		if s1 != s2 || end1 != end2 || !bytes.Equal(p1, p2) {
			t.Fatalf("corrupted read replayed differently: %+v @ %v vs %+v @ %v", s1, end1, s2, end2)
		}
	})

	t.Run("DeterministicReplay", func(t *testing.T) {
		run := func() (sums []uint32, extras []sim.Duration, payload []byte) {
			in := mk(t)
			addr := mustAlloc(t, in.Node, 512)
			if _, err := in.Backend.Write(0, addr, pattern(512, 5)); err != nil {
				t.Fatal(err)
			}
			buf := make([]byte, 512)
			for i := 0; i < 16; i++ {
				sum, extra, err := in.Backend.Read(sim.Time(i)*100, addr, buf)
				if err != nil {
					// Injected transient errors are part of the replayed
					// behavior: record them as a sentinel.
					sums = append(sums, 0xffffffff)
					extras = append(extras, -1)
					continue
				}
				sums = append(sums, sum)
				extras = append(extras, extra)
			}
			return sums, extras, append([]byte{}, buf...)
		}
		s1, e1, p1 := run()
		s2, e2, p2 := run()
		for i := range s1 {
			if s1[i] != s2[i] || e1[i] != e2[i] {
				t.Fatalf("replay diverged at op %d: (%#x,%v) vs (%#x,%v)", i, s1[i], e1[i], s2[i], e2[i])
			}
		}
		if !bytes.Equal(p1, p2) {
			t.Fatalf("replay delivered different final payloads")
		}
	})
}

// bitFlipBackend delegates to the wrapped backend and flips one bit in the
// next `flips` successful Read replies — after the backend computed its
// checksum, so the mismatch models on-the-wire corruption.
type bitFlipBackend struct {
	transport.Backend
	flips int
}

func (b *bitFlipBackend) Read(at sim.Time, addr uint64, buf []byte) (uint32, sim.Duration, error) {
	sum, extra, err := b.Backend.Read(at, addr, buf)
	if err == nil && b.flips > 0 {
		b.flips--
		buf[len(buf)/2] ^= 0x40
	}
	return sum, extra, err
}

func mustAlloc(t *testing.T, n *farmem.Node, size uint64) uint64 {
	t.Helper()
	addr, err := n.Alloc(size)
	if err != nil {
		t.Fatalf("alloc: %v", err)
	}
	return addr
}

func pattern(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = seed + byte(i)*3
	}
	return b
}
