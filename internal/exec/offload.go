package exec

import (
	"fmt"

	"mira/internal/analysis"
	"mira/internal/ir"
	"mira/internal/offload"
	"mira/internal/sim"
)

// offloadCall executes fn on the far-memory node (§4.8): flush the cached
// state of every far object the function touches, ship the scalar arguments
// over, run the body against far-node memory on the far CPU, and ship the
// result back.
//
// When the backend exposes a scatter-gather engine (cluster mode) and the
// function fits the scatter shape, the call is split into per-node
// sub-offloads running in parallel against the stripe replicas each node
// owns. Otherwise the legacy whole-call RPC path below runs: the remote
// body is measured on its own clock and the local clock is charged the
// full RPC.
func (e *Executor) offloadCall(clk *sim.Clock, fn *ir.Func, args []Value) (Value, error) {
	renv, ok := e.be.(RemoteEnv)
	if !ok {
		return Value{}, fmt.Errorf("exec: backend cannot offload %q", fn.Name)
	}
	// Flush objects the function (transitively) accesses so the far node
	// sees up-to-date data, and so post-call local reads refetch data the
	// far node wrote (§5.2.1 "generating offloaded function binaries").
	for _, obj := range e.objectsOf(fn, map[string]bool{}) {
		t0 := clk.Now()
		if err := e.be.FlushObject(clk, obj); err != nil {
			return Value{}, err
		}
		// Flushing is runtime work; attribute to the caller's profile
		// under the offloaded function's name.
		if e.opt.Collector != nil {
			e.opt.Collector.RuntimeTime(fn.Name, clk.Now().Sub(t0))
		}
	}

	if v, handled, err := e.scatterCall(clk, fn, args); handled || err != nil {
		return v, err
	}

	// Run the body remotely on a fresh clock.
	remoteExec := &Executor{
		p:      e.p,
		be:     e.be,
		opt:    Options{ComputeOp: e.opt.ComputeOp, FloatOp: e.opt.FloatOp},
		fields: e.fields,
		remote: renv,
	}
	rclk := sim.NewClock(0)
	ret, err := remoteExec.call(rclk, fn, args)
	if err != nil {
		return Value{}, err
	}
	remoteCompute := rclk.Now().Sub(0)

	argBytes := 8 * len(args)
	resBytes := 8
	renv.OffloadTransfer(clk, argBytes, resBytes, remoteCompute)
	if e.opt.Collector != nil {
		e.opt.Collector.FuncCall(fn.Name+"@far", sim.Duration(float64(remoteCompute)*renv.CPUSlowdown()))
	}
	return ret, nil
}

// scatterer is the optional backend capability behind scatter-gather
// offloading; only the cluster-mode Mira runtime reports a non-nil engine.
type scatterer interface {
	ScatterEngine() *offload.Engine
}

// scatterCall tries the scatter-gather path: recognize the function's
// reduction/map shape, partition the driving index range by placement, run
// per-node sub-offloads in virtual-time parallel, combine the partial
// accumulators, and execute the tail (constant-indexed result stores)
// locally behind a fence. handled=false means the caller should fall back
// to the legacy whole-call RPC.
func (e *Executor) scatterCall(clk *sim.Clock, fn *ir.Func, args []Value) (Value, bool, error) {
	se, ok := e.be.(scatterer)
	if !ok {
		return Value{}, false, nil
	}
	eng := se.ScatterEngine()
	if eng == nil {
		return Value{}, false, nil
	}
	plan, ok := analysis.AnalyzeScatter(e.p, fn)
	if !ok {
		return Value{}, false, nil
	}
	lo, ok := evalBound(plan.Lo, fn, args)
	if !ok {
		return Value{}, false, nil
	}
	hi, ok := evalBound(plan.Hi, fn, args)
	if !ok {
		return Value{}, false, nil
	}

	req := offload.Request{
		Func:     fn.Name,
		Object:   plan.Object,
		Lo:       lo,
		Hi:       hi,
		ArgBytes: 8*len(args) + 16, // scalars plus the dispatch descriptor
		ResBytes: 8,
	}
	runner := func(rclk *sim.Clock, yield func(), ranges [][2]int64, env *offload.NodeEnv) (offload.Scalar, error) {
		sfn := plan.SubFunc(ranges)
		slow := env.Slowdown()
		sub := &Executor{
			p:  e.p,
			be: e.be,
			opt: Options{
				ComputeOp: sim.Duration(float64(e.opt.ComputeOp) * slow),
				FloatOp:   sim.Duration(float64(e.opt.FloatOp) * slow),
				Yield:     yield,
			},
			fields: e.fields,
			remote: scatterEnv{env: env},
		}
		ret, err := sub.call(rclk, sfn, args)
		if err != nil {
			return offload.Scalar{}, err
		}
		return offload.Scalar{I: ret.I, F: ret.F, Float: ret.Float}, nil
	}

	start := clk.Now()
	partials, handled, err := eng.Execute(clk, req, runner)
	if err != nil {
		return Value{}, true, err
	}
	if !handled {
		return Value{}, false, nil
	}

	acc := IntV(plan.Init)
	for _, p := range partials {
		v := Value{I: p.I, F: p.F, Float: p.Float}
		acc, err = applyBin(plan.Op, acc, v)
		if err != nil {
			return Value{}, true, err
		}
	}

	// One fenced commit boundary, then the tail runs locally: result
	// stores go through the (just flushed) local cache like any other
	// access, so post-call reads observe exactly what sequential
	// execution would have produced.
	e.yield()
	e.be.Fence(clk)
	fr := &frame{fn: fn, regs: make([]Value, fn.NumRegs)}
	fr.regs[plan.AccReg] = acc
	params := make(map[string]Value, len(args))
	for i, name := range fn.Params {
		params[name] = args[i]
	}
	ret, returned, err := e.block(clk, fr, params, plan.Tail)
	if err != nil {
		return Value{}, true, err
	}
	if !returned {
		ret = Value{} // match a fall-off-the-end sequential call
	}
	if e.opt.Collector != nil {
		e.opt.Collector.FuncCall(fn.Name+"@far", clk.Now().Sub(start))
	}
	return ret, true, nil
}

// evalBound resolves a scatter bound (constant or scalar parameter).
func evalBound(x ir.Expr, fn *ir.Func, args []Value) (int64, bool) {
	switch t := x.(type) {
	case *ir.Const:
		return t.I, true
	case *ir.Param:
		for i, name := range fn.Params {
			if name == t.Name {
				return args[i].AsInt(), true
			}
		}
	}
	return 0, false
}

// scatterEnv adapts a sub-offload's NodeEnv to the executor's RemoteEnv:
// accesses stage writes / serve reads replica-locally, and a node loss
// surfaces as offload.ErrNodeLost, which the engine turns into a
// re-dispatch.
type scatterEnv struct {
	env *offload.NodeEnv
}

func (s scatterEnv) RemoteAccess(clk *sim.Clock, name string, elem int64, field ir.Field, buf []byte, write bool) error {
	return s.env.Access(clk, name, elem, field, buf, write)
}

func (s scatterEnv) RemoteBulk(clk *sim.Clock, name string, elem int64, buf []byte, write bool) error {
	return fmt.Errorf("exec: bulk transfer inside a scattered offload (shape analysis should have rejected it)")
}

func (s scatterEnv) CPUSlowdown() float64 { return s.env.Slowdown() }

func (s scatterEnv) OffloadTransfer(clk *sim.Clock, argBytes, resBytes int, remoteCompute sim.Duration) {
	// Transfer is priced by the engine's chunk streams, not per call.
}

// objectsOf lists the far-relevant objects a function (and its callees)
// accesses.
func (e *Executor) objectsOf(fn *ir.Func, visited map[string]bool) []string {
	if visited[fn.Name] {
		return nil
	}
	visited[fn.Name] = true
	seen := map[string]bool{}
	var out []string
	add := func(name string) {
		if !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	}
	ir.Walk(fn.Body, func(s ir.Stmt) bool {
		switch st := s.(type) {
		case *ir.Load:
			add(st.Obj)
		case *ir.Store:
			add(st.Obj)
		case *ir.Intrinsic:
			for _, t := range []ir.TensorRef{st.Dst, st.A, st.B} {
				if t.Obj != "" {
					add(t.Obj)
				}
			}
		case *ir.Call:
			if callee, ok := e.p.Func(st.Callee); ok {
				for _, o := range e.objectsOf(callee, visited) {
					add(o)
				}
			}
		}
		return true
	})
	return out
}
