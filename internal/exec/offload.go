package exec

import (
	"fmt"

	"mira/internal/ir"
	"mira/internal/sim"
)

// offloadCall executes fn on the far-memory node (§4.8): flush the cached
// state of every far object the function touches, ship the scalar arguments
// over, run the body against far-node memory on the far CPU, and ship the
// result back. The remote body is measured on its own clock; the local
// clock is charged the full RPC.
func (e *Executor) offloadCall(clk *sim.Clock, fn *ir.Func, args []Value) (Value, error) {
	renv, ok := e.be.(RemoteEnv)
	if !ok {
		return Value{}, fmt.Errorf("exec: backend cannot offload %q", fn.Name)
	}
	// Flush objects the function (transitively) accesses so the far node
	// sees up-to-date data, and so post-call local reads refetch data the
	// far node wrote (§5.2.1 "generating offloaded function binaries").
	for _, obj := range e.objectsOf(fn, map[string]bool{}) {
		t0 := clk.Now()
		if err := e.be.FlushObject(clk, obj); err != nil {
			return Value{}, err
		}
		// Flushing is runtime work; attribute to the caller's profile
		// under the offloaded function's name.
		if e.opt.Collector != nil {
			e.opt.Collector.RuntimeTime(fn.Name, clk.Now().Sub(t0))
		}
	}

	// Run the body remotely on a fresh clock.
	remoteExec := &Executor{
		p:      e.p,
		be:     e.be,
		opt:    Options{ComputeOp: e.opt.ComputeOp, FloatOp: e.opt.FloatOp},
		fields: e.fields,
		remote: renv,
	}
	rclk := sim.NewClock(0)
	ret, err := remoteExec.call(rclk, fn, args)
	if err != nil {
		return Value{}, err
	}
	remoteCompute := rclk.Now().Sub(0)

	argBytes := 8 * len(args)
	resBytes := 8
	renv.OffloadTransfer(clk, argBytes, resBytes, remoteCompute)
	if e.opt.Collector != nil {
		e.opt.Collector.FuncCall(fn.Name+"@far", sim.Duration(float64(remoteCompute)*renv.CPUSlowdown()))
	}
	return ret, nil
}

// objectsOf lists the far-relevant objects a function (and its callees)
// accesses.
func (e *Executor) objectsOf(fn *ir.Func, visited map[string]bool) []string {
	if visited[fn.Name] {
		return nil
	}
	visited[fn.Name] = true
	seen := map[string]bool{}
	var out []string
	add := func(name string) {
		if !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	}
	ir.Walk(fn.Body, func(s ir.Stmt) bool {
		switch st := s.(type) {
		case *ir.Load:
			add(st.Obj)
		case *ir.Store:
			add(st.Obj)
		case *ir.Intrinsic:
			for _, t := range []ir.TensorRef{st.Dst, st.A, st.B} {
				if t.Obj != "" {
					add(t.Obj)
				}
			}
		case *ir.Call:
			if callee, ok := e.p.Func(st.Callee); ok {
				for _, o := range e.objectsOf(callee, visited) {
					add(o)
				}
			}
		}
		return true
	})
	return out
}
