package exec

import (
	"encoding/binary"
	"math"
	"testing"

	"mira/internal/cache"
	"mira/internal/farmem"
	"mira/internal/ir"
	"mira/internal/profile"
	"mira/internal/rt"
	"mira/internal/sim"
)

// rtBackend builds a Mira runtime with all objects of p in one
// fully-associative section (simple, correct defaults for interpreter
// tests).
func rtBackend(t *testing.T, p *ir.Program) *rt.Runtime {
	t.Helper()
	placements := map[string]rt.Placement{}
	for _, o := range p.Objects {
		if !o.Local {
			placements[o.Name] = rt.Placement{Kind: rt.PlaceSection, Section: 0}
		}
	}
	cfg := rt.Config{
		LocalBudget: 8 << 20,
		SwapPool:    64 << 10,
		Sections: []rt.SectionSpec{{
			Cache: cache.Config{Name: "all", Structure: cache.FullAssoc, LineBytes: 256, SizeBytes: 4 << 20},
		}},
		Placements: placements,
	}
	node := farmem.NewNode(farmem.NodeConfig{Capacity: 1 << 28, CPUSlowdown: 3})
	r, err := rt.New(cfg, node)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Bind(p); err != nil {
		t.Fatal(err)
	}
	return r
}

func runProgram(t *testing.T, p *ir.Program, opt Options) (Value, *rt.Runtime, *sim.Clock) {
	t.Helper()
	r := rtBackend(t, p)
	ex, err := New(p, r, opt)
	if err != nil {
		t.Fatal(err)
	}
	clk := sim.NewClock(0)
	v, err := ex.Run(clk)
	if err != nil {
		t.Fatal(err)
	}
	return v, r, clk
}

func TestArithmeticAndReturn(t *testing.T) {
	b := ir.NewBuilder("arith")
	b.IntArray("dummy", 1)
	fb := b.Func("main", "n")
	// (n*3 + 4) % 5
	fb.Return(ir.Mod(ir.Add(ir.Mul(ir.P("n"), ir.C(3)), ir.C(4)), ir.C(5)))
	p := b.MustProgram()
	v, _, _ := runProgram(t, p, Options{Params: map[string]Value{"n": IntV(7)}})
	if v.AsInt() != (7*3+4)%5 {
		t.Fatalf("got %v, want %d", v, (7*3+4)%5)
	}
}

func TestLoopSum(t *testing.T) {
	b := ir.NewBuilder("sum")
	b.IntArray("a", 100)
	fb := b.Func("main")
	acc := fb.Var(ir.C(0))
	fb.Loop(ir.C(0), ir.C(100), ir.C(1), func(i ir.Expr) {
		v := fb.Load("a", i, "")
		fb.Set(acc, ir.Add(ir.R(acc.ID), v))
	})
	fb.Return(ir.R(acc.ID))
	p := b.MustProgram()

	r := rtBackend(t, p)
	// init a[i] = i
	data := make([]byte, 800)
	for i := 0; i < 100; i++ {
		binary.LittleEndian.PutUint64(data[i*8:], uint64(i))
	}
	if err := r.InitObject("a", data); err != nil {
		t.Fatal(err)
	}
	ex, err := New(p, r, Options{})
	if err != nil {
		t.Fatal(err)
	}
	v, err := ex.Run(sim.NewClock(0))
	if err != nil {
		t.Fatal(err)
	}
	if v.AsInt() != 4950 {
		t.Fatalf("sum = %v, want 4950", v)
	}
}

func TestStoreThenLoadRoundtrip(t *testing.T) {
	b := ir.NewBuilder("rw")
	b.Object("s", 24, 10, ir.F("x", 0, 8), ir.FF("f", 8), ir.F("y", 16, 8))
	fb := b.Func("main")
	fb.Store("s", ir.C(3), "x", ir.C(-42))
	fb.Store("s", ir.C(3), "f", ir.CF(2.5))
	x := fb.Load("s", ir.C(3), "x")
	f := fb.Load("s", ir.C(3), "f")
	fb.Return(ir.Add(x, ir.Mul(f, ir.CF(2)))) // -42 + 5 = -37
	p := b.MustProgram()
	v, _, _ := runProgram(t, p, Options{})
	if v.AsFloat() != -37 {
		t.Fatalf("got %v, want -37", v)
	}
}

func TestIndirectAccess(t *testing.T) {
	// B[A[i]]++ pattern over real data.
	b := ir.NewBuilder("indirect")
	b.IntArray("a", 16)
	b.IntArray("bb", 16)
	fb := b.Func("main")
	fb.Loop(ir.C(0), ir.C(16), ir.C(1), func(i ir.Expr) {
		idx := fb.Load("a", i, "")
		old := fb.Load("bb", idx, "")
		fb.Store("bb", idx, "", ir.Add(old, ir.C(1)))
	})
	p := b.MustProgram()

	r := rtBackend(t, p)
	data := make([]byte, 16*8)
	for i := 0; i < 16; i++ {
		binary.LittleEndian.PutUint64(data[i*8:], uint64((i*3)%16))
	}
	_ = r.InitObject("a", data)
	ex, _ := New(p, r, Options{})
	clk := sim.NewClock(0)
	if _, err := ex.Run(clk); err != nil {
		t.Fatal(err)
	}
	_ = r.FlushAll(clk)
	dump, _ := r.DumpObject("bb")
	// (i*3)%16 is a permutation of 0..15 (gcd(3,16)=1): every bb slot
	// gets exactly one increment.
	for i := 0; i < 16; i++ {
		got := int64(binary.LittleEndian.Uint64(dump[i*8:]))
		if got != 1 {
			t.Fatalf("bb[%d] = %d, want 1", i, got)
		}
	}
}

func TestIfBranches(t *testing.T) {
	b := ir.NewBuilder("cond")
	b.IntArray("d", 1)
	fb := b.Func("main", "n")
	fb.If(ir.Ge(ir.P("n"), ir.C(10)), func() {
		fb.Return(ir.C(1))
	}, func() {
		fb.Return(ir.C(0))
	})
	fb.Return(ir.C(-1))
	p := b.MustProgram()
	v, _, _ := runProgram(t, p, Options{Params: map[string]Value{"n": IntV(12)}})
	if v.AsInt() != 1 {
		t.Fatalf("n=12 -> %v, want 1", v)
	}
	v, _, _ = runProgram(t, p, Options{Params: map[string]Value{"n": IntV(3)}})
	if v.AsInt() != 0 {
		t.Fatalf("n=3 -> %v, want 0", v)
	}
}

func TestCallsAndRecursionGuard(t *testing.T) {
	b := ir.NewBuilder("callrec")
	b.IntArray("d", 1)
	fbAdd := b.Func("add2", "x")
	fbAdd.Return(ir.Add(ir.P("x"), ir.C(2)))
	fb := b.Func("main")
	v := fb.CallRet("add2", ir.C(5))
	fb.Return(v)
	b.SetEntry("main")
	p := b.MustProgram()
	got, _, _ := runProgram(t, p, Options{})
	if got.AsInt() != 7 {
		t.Fatalf("call result %v, want 7", got)
	}

	// Infinite recursion must error, not hang.
	b2 := ir.NewBuilder("inf")
	b2.IntArray("d", 1)
	fb2 := b2.Func("main")
	fb2.Call("main")
	p2 := b2.MustProgram()
	r := rtBackend(t, p2)
	ex, _ := New(p2, r, Options{})
	if _, err := ex.Run(sim.NewClock(0)); err == nil {
		t.Fatal("unbounded recursion did not error")
	}
}

func TestDivisionByZeroErrors(t *testing.T) {
	b := ir.NewBuilder("div0")
	b.IntArray("d", 1)
	fb := b.Func("main")
	fb.Return(ir.Div(ir.C(1), ir.C(0)))
	p := b.MustProgram()
	r := rtBackend(t, p)
	ex, _ := New(p, r, Options{})
	if _, err := ex.Run(sim.NewClock(0)); err == nil {
		t.Fatal("integer division by zero did not error")
	}
}

func TestMatMulAgainstReference(t *testing.T) {
	const m, k, n = 5, 7, 4
	b := ir.NewBuilder("mm")
	b.FloatArray("mem", m*k+k*n+m*n)
	fb := b.Func("main")
	fb.MatMul(
		ir.T("mem", ir.C(m*k+k*n), m, n),
		ir.T("mem", ir.C(0), m, k),
		ir.T("mem", ir.C(m*k), k, n))
	p := b.MustProgram()

	r := rtBackend(t, p)
	a := make([]float64, m*k)
	bm := make([]float64, k*n)
	rng := sim.NewRNG(42)
	for i := range a {
		a[i] = rng.Float64()*2 - 1
	}
	for i := range bm {
		bm[i] = rng.Float64()*2 - 1
	}
	buf := make([]byte, (m*k+k*n+m*n)*8)
	for i, v := range a {
		binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(v))
	}
	for i, v := range bm {
		binary.LittleEndian.PutUint64(buf[(m*k+i)*8:], math.Float64bits(v))
	}
	_ = r.InitObject("mem", buf)

	ex, _ := New(p, r, Options{})
	clk := sim.NewClock(0)
	if _, err := ex.Run(clk); err != nil {
		t.Fatal(err)
	}
	_ = r.FlushAll(clk)
	dump, _ := r.DumpObject("mem")
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var want float64
			for kk := 0; kk < k; kk++ {
				want += a[i*k+kk] * bm[kk*n+j]
			}
			got := math.Float64frombits(binary.LittleEndian.Uint64(dump[(m*k+k*n+i*n+j)*8:]))
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("C[%d][%d] = %g, want %g", i, j, got, want)
			}
		}
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	const rows, cols = 3, 8
	b := ir.NewBuilder("sm")
	b.FloatArray("mem", 2*rows*cols)
	fb := b.Func("main")
	fb.Unary(ir.IntrSoftmax, ir.T("mem", ir.C(rows*cols), rows, cols), ir.T("mem", ir.C(0), rows, cols))
	p := b.MustProgram()

	r := rtBackend(t, p)
	buf := make([]byte, 2*rows*cols*8)
	rng := sim.NewRNG(7)
	for i := 0; i < rows*cols; i++ {
		binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(rng.Float64()*10-5))
	}
	_ = r.InitObject("mem", buf)
	ex, _ := New(p, r, Options{})
	clk := sim.NewClock(0)
	if _, err := ex.Run(clk); err != nil {
		t.Fatal(err)
	}
	_ = r.FlushAll(clk)
	dump, _ := r.DumpObject("mem")
	for i := 0; i < rows; i++ {
		var sum float64
		for j := 0; j < cols; j++ {
			v := math.Float64frombits(binary.LittleEndian.Uint64(dump[(rows*cols+i*cols+j)*8:]))
			if v < 0 || v > 1 {
				t.Fatalf("softmax output %g outside [0,1]", v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("row %d sums to %g", i, sum)
		}
	}
}

func TestPrefetchAndEvictStatements(t *testing.T) {
	b := ir.NewBuilder("pf")
	b.IntArray("a", 256)
	fb := b.Func("main")
	acc := fb.Var(ir.C(0))
	fb.Loop(ir.C(0), ir.C(256), ir.C(1), func(i ir.Expr) {
		fb.Prefetch("a", ir.Add(i, ir.C(32)), "")
		v := fb.Load("a", i, "")
		fb.Set(acc, ir.Add(ir.R(acc.ID), v))
		fb.Evict("a", ir.Sub(i, ir.C(32)))
	})
	fb.Return(ir.R(acc.ID))
	p := b.MustProgram()
	v, r, _ := runProgram(t, p, Options{})
	if v.AsInt() != 0 { // zero-initialized array
		t.Fatalf("sum = %v, want 0", v)
	}
	if r.SectionStats(0).HintEvicts+r.SectionStats(0).FlushedHint == 0 {
		// Eviction hints marked lines; with a large section nothing
		// was evicted, but MarkEvictable should have been recorded on
		// Drop during FlushAll. Accept either counter.
		t.Log("no hint-evictions recorded (section large enough); acceptable")
	}
}

func TestOffloadedCallMatchesLocalResult(t *testing.T) {
	build := func(offload bool) *ir.Program {
		b := ir.NewBuilder("off")
		b.IntArray("a", 1000)
		sumFb := b.Func("sumAll")
		sumFb.MarkNoSharedWrites()
		acc := sumFb.Var(ir.C(0))
		sumFb.Loop(ir.C(0), ir.C(1000), ir.C(1), func(i ir.Expr) {
			v := sumFb.Load("a", i, "")
			sumFb.Set(acc, ir.Add(ir.R(acc.ID), v))
		})
		sumFb.Return(ir.R(acc.ID))
		fb := b.Func("main")
		v := fb.CallRet("sumAll")
		fb.Return(v)
		b.SetEntry("main")
		p := b.MustProgram()
		if offload {
			mainFn, _ := p.Func("main")
			ir.Walk(mainFn.Body, func(s ir.Stmt) bool {
				if c, ok := s.(*ir.Call); ok && c.Callee == "sumAll" {
					c.Offload = true
				}
				return true
			})
		}
		return p
	}
	initData := func(r *rt.Runtime) {
		data := make([]byte, 8000)
		for i := 0; i < 1000; i++ {
			binary.LittleEndian.PutUint64(data[i*8:], uint64(i%97))
		}
		_ = r.InitObject("a", data)
	}

	pLocal := build(false)
	rLocal := rtBackend(t, pLocal)
	initData(rLocal)
	exLocal, _ := New(pLocal, rLocal, Options{})
	clkLocal := sim.NewClock(0)
	vLocal, err := exLocal.Run(clkLocal)
	if err != nil {
		t.Fatal(err)
	}

	pOff := build(true)
	rOff := rtBackend(t, pOff)
	initData(rOff)
	exOff, _ := New(pOff, rOff, Options{})
	clkOff := sim.NewClock(0)
	vOff, err := exOff.Run(clkOff)
	if err != nil {
		t.Fatal(err)
	}

	if vLocal.AsInt() != vOff.AsInt() {
		t.Fatalf("offloaded result %v != local %v", vOff, vLocal)
	}
	if clkOff.Now() == 0 || clkLocal.Now() == 0 {
		t.Fatal("no time charged")
	}
	// The data-heavy sum over a cold cache should be cheaper offloaded:
	// one RPC instead of 1000/32 line fetches.
	if clkOff.Now() >= clkLocal.Now() {
		t.Fatalf("offload (%v) not cheaper than local (%v) for data-heavy function",
			clkOff.Now(), clkLocal.Now())
	}
}

func TestOffloadWritesVisibleLocally(t *testing.T) {
	b := ir.NewBuilder("offw")
	b.IntArray("a", 64)
	wf := b.Func("fill")
	wf.Loop(ir.C(0), ir.C(64), ir.C(1), func(i ir.Expr) {
		wf.Store("a", i, "", ir.Mul(i, ir.C(2)))
	})
	fb := b.Func("main")
	fb.Call("fill")
	v := fb.Load("a", ir.C(10), "")
	fb.Return(v)
	b.SetEntry("main")
	p := b.MustProgram()
	mainFn, _ := p.Func("main")
	mainFn.Body[0].(*ir.Call).Offload = true

	v2, _, _ := runProgram(t, p, Options{})
	if v2.AsInt() != 20 {
		t.Fatalf("local read after offloaded write = %v, want 20", v2)
	}
}

func TestProfilerCollectsFunctions(t *testing.T) {
	b := ir.NewBuilder("prof")
	b.IntArray("a", 512)
	hot := b.Func("hot")
	acc := hot.Var(ir.C(0))
	hot.Loop(ir.C(0), ir.C(512), ir.C(1), func(i ir.Expr) {
		v := hot.Load("a", i, "")
		hot.Set(acc, ir.Add(ir.R(acc.ID), v))
	})
	hot.Return(ir.R(acc.ID))
	cold := b.Func("cold")
	cold.Return(ir.C(1))
	fb := b.Func("main")
	fb.Call("hot")
	fb.Call("cold")
	b.SetEntry("main")
	p := b.MustProgram()

	col := profile.NewCollector()
	_, _, _ = runProgram(t, p, Options{Collector: col})
	hotRec := col.Func("hot")
	if hotRec == nil || hotRec.Calls != 1 {
		t.Fatal("hot function not profiled")
	}
	if hotRec.Runtime <= 0 {
		t.Fatal("no runtime time attributed to hot function")
	}
	coldRec := col.Func("cold")
	if coldRec.Runtime != 0 {
		t.Fatalf("cold function charged runtime time %v", coldRec.Runtime)
	}
	top := col.TopFunctions(0.34) // 1 of 3
	if len(top) != 1 || top[0] != "hot" {
		t.Fatalf("TopFunctions = %v, want [hot]", top)
	}
	objs := col.LargestObjects(1.0)
	if len(objs) != 1 || objs[0] != "a" {
		t.Fatalf("LargestObjects = %v", objs)
	}
}

func TestEntryParamMissingErrors(t *testing.T) {
	b := ir.NewBuilder("params")
	b.IntArray("d", 1)
	fb := b.Func("main", "n")
	fb.Return(ir.P("n"))
	p := b.MustProgram()
	r := rtBackend(t, p)
	ex, _ := New(p, r, Options{})
	if _, err := ex.Run(sim.NewClock(0)); err == nil {
		t.Fatal("missing entry param accepted")
	}
}

func TestReleaseStatementFreesLines(t *testing.T) {
	b := ir.NewBuilder("rel")
	b.IntArray("a", 256)
	fb := b.Func("main")
	acc := fb.Var(ir.C(0))
	fb.Loop(ir.C(0), ir.C(256), ir.C(1), func(i ir.Expr) {
		v := fb.Load("a", i, "")
		fb.Set(acc, ir.Add(ir.R(acc.ID), v))
	})
	// Touch again after release: must re-miss.
	fb.Load("a", ir.C(0), "")
	fb.Return(ir.R(acc.ID))
	p := b.MustProgram()
	// Insert the release between the loop and the final load (codegen
	// normally emits it; the builder has no public emitter for it).
	mainFn, _ := p.Func("main")
	tail := append([]ir.Stmt{&ir.Release{Obj: "a"}}, mainFn.Body[2:]...)
	mainFn.Body = append(mainFn.Body[:2:2], tail...)

	r := rtBackend(t, p)
	ex, err := New(p, r, Options{})
	if err != nil {
		t.Fatal(err)
	}
	clk := sim.NewClock(0)
	if _, err := ex.Run(clk); err != nil {
		t.Fatal(err)
	}
	st := r.SectionStats(0)
	// 256 elements / 32-per-line = 8 cold misses, +1 post-release.
	if st.Misses != 9 {
		t.Fatalf("misses = %d, want 9 (8 cold + 1 after release)", st.Misses)
	}
}

func TestZeroIntrinsic(t *testing.T) {
	b := ir.NewBuilder("zero")
	b.FloatArray("m", 64)
	fb := b.Func("main")
	fb.Zero(ir.T("m", ir.C(0), 8, 8))
	p := b.MustProgram()
	r := rtBackend(t, p)
	// Pre-fill with garbage.
	buf := make([]byte, 64*8)
	for i := range buf {
		buf[i] = 0xff
	}
	_ = r.InitObject("m", buf)
	ex, _ := New(p, r, Options{})
	clk := sim.NewClock(0)
	if _, err := ex.Run(clk); err != nil {
		t.Fatal(err)
	}
	_ = r.FlushAll(clk)
	dump, _ := r.DumpObject("m")
	for i, bv := range dump {
		if bv != 0 {
			t.Fatalf("byte %d not zeroed: %#x", i, bv)
		}
	}
}

func TestMissRateProfiled(t *testing.T) {
	b := ir.NewBuilder("mr")
	b.IntArray("a", 256)
	fb := b.Func("main")
	fb.Loop(ir.C(0), ir.C(256), ir.C(1), func(i ir.Expr) {
		fb.Load("a", i, "")
	})
	p := b.MustProgram()
	r := rtBackend(t, p)
	col := profile.NewCollector()
	ex, err := New(p, r, Options{Collector: col})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Run(sim.NewClock(0)); err != nil {
		t.Fatal(err)
	}
	rec := col.Func("main")
	if rec.Accesses != 256 {
		t.Fatalf("accesses = %d, want 256", rec.Accesses)
	}
	// 256 int64s over 256B lines = 8 cold misses.
	if rec.Misses != 8 {
		t.Fatalf("misses = %d, want 8", rec.Misses)
	}
	if got := rec.MissRate(); got != 8.0/256 {
		t.Fatalf("miss rate %v", got)
	}
}
