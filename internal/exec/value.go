package exec

import (
	"encoding/binary"
	"fmt"
	"math"

	"mira/internal/ir"
)

// Value is a scalar the interpreter computes with: an int64 or a float64.
type Value struct {
	I     int64
	F     float64
	Float bool
}

// IntV builds an integer value.
func IntV(i int64) Value { return Value{I: i} }

// FloatV builds a floating-point value.
func FloatV(f float64) Value { return Value{F: f, Float: true} }

// AsInt converts to int64 (truncating floats).
func (v Value) AsInt() int64 {
	if v.Float {
		return int64(v.F)
	}
	return v.I
}

// AsFloat converts to float64.
func (v Value) AsFloat() float64 {
	if v.Float {
		return v.F
	}
	return float64(v.I)
}

// Truthy reports whether the value is non-zero.
func (v Value) Truthy() bool {
	if v.Float {
		return v.F != 0
	}
	return v.I != 0
}

func (v Value) String() string {
	if v.Float {
		return fmt.Sprintf("%g", v.F)
	}
	return fmt.Sprintf("%d", v.I)
}

// decodeField interprets buf (len == field.Bytes) as a Value.
func decodeField(f ir.Field, buf []byte) (Value, error) {
	if f.Float {
		if f.Bytes != 8 {
			return Value{}, fmt.Errorf("exec: float field %q must be 8 bytes, got %d", f.Name, f.Bytes)
		}
		return FloatV(math.Float64frombits(binary.LittleEndian.Uint64(buf))), nil
	}
	switch f.Bytes {
	case 1:
		return IntV(int64(int8(buf[0]))), nil
	case 2:
		return IntV(int64(int16(binary.LittleEndian.Uint16(buf)))), nil
	case 4:
		return IntV(int64(int32(binary.LittleEndian.Uint32(buf)))), nil
	case 8:
		return IntV(int64(binary.LittleEndian.Uint64(buf))), nil
	default:
		return Value{}, fmt.Errorf("exec: unsupported integer field width %d", f.Bytes)
	}
}

// encodeField writes v into buf (len == field.Bytes).
func encodeField(f ir.Field, v Value, buf []byte) error {
	if f.Float {
		if f.Bytes != 8 {
			return fmt.Errorf("exec: float field %q must be 8 bytes, got %d", f.Name, f.Bytes)
		}
		binary.LittleEndian.PutUint64(buf, math.Float64bits(v.AsFloat()))
		return nil
	}
	i := v.AsInt()
	switch f.Bytes {
	case 1:
		buf[0] = byte(i)
	case 2:
		binary.LittleEndian.PutUint16(buf, uint16(i))
	case 4:
		binary.LittleEndian.PutUint32(buf, uint32(i))
	case 8:
		binary.LittleEndian.PutUint64(buf, uint64(i))
	default:
		return fmt.Errorf("exec: unsupported integer field width %d", f.Bytes)
	}
	return nil
}
