package exec

import (
	"encoding/binary"
	"fmt"
	"math"

	"mira/internal/ir"
	"mira/internal/sim"
)

// intrinsic executes one tensor operation: matrices stream through the
// backend's bulk path (so they exercise the cache sections exactly like
// scalar code does) and the arithmetic itself runs natively, charged per
// floating-point operation.
func (e *Executor) intrinsic(clk *sim.Clock, fr *frame, params map[string]Value, st *ir.Intrinsic) error {
	switch st.Kind {
	case ir.IntrMatMul:
		a, err := e.readMatrix(clk, fr, params, st.A)
		if err != nil {
			return err
		}
		b, err := e.readMatrix(clk, fr, params, st.B)
		if err != nil {
			return err
		}
		c, err := e.readMatrix(clk, fr, params, st.Dst)
		if err != nil {
			return err
		}
		m, k, n := int(st.A.Rows), int(st.A.Cols), int(st.B.Cols)
		for i := 0; i < m; i++ {
			for kk := 0; kk < k; kk++ {
				av := a[i*k+kk]
				if av == 0 {
					continue
				}
				row := b[kk*n : (kk+1)*n]
				out := c[i*n : (i+1)*n]
				for j := range row {
					out[j] += av * row[j]
				}
			}
		}
		clk.Advance(e.opt.FloatOp * sim.Duration(2*m*n*k))
		return e.writeMatrix(clk, fr, params, st.Dst, c)

	case ir.IntrMatMulT:
		a, err := e.readMatrix(clk, fr, params, st.A)
		if err != nil {
			return err
		}
		b, err := e.readMatrix(clk, fr, params, st.B)
		if err != nil {
			return err
		}
		c, err := e.readMatrix(clk, fr, params, st.Dst)
		if err != nil {
			return err
		}
		m, k, n := int(st.A.Rows), int(st.A.Cols), int(st.B.Rows)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				var acc float64
				ar := a[i*k : (i+1)*k]
				br := b[j*k : (j+1)*k]
				for kk := range ar {
					acc += ar[kk] * br[kk]
				}
				c[i*n+j] += acc
			}
		}
		clk.Advance(e.opt.FloatOp * sim.Duration(2*m*n*k))
		return e.writeMatrix(clk, fr, params, st.Dst, c)

	case ir.IntrAdd:
		a, err := e.readMatrix(clk, fr, params, st.A)
		if err != nil {
			return err
		}
		b, err := e.readMatrix(clk, fr, params, st.B)
		if err != nil {
			return err
		}
		if len(a) != len(b) || st.Dst.Elems() != st.A.Elems() {
			return fmt.Errorf("exec: add shape mismatch")
		}
		out := make([]float64, len(a))
		for i := range a {
			out[i] = a[i] + b[i]
		}
		clk.Advance(e.opt.FloatOp * sim.Duration(len(a)))
		return e.writeMatrix(clk, fr, params, st.Dst, out)

	case ir.IntrLayerNorm:
		a, err := e.readMatrix(clk, fr, params, st.A)
		if err != nil {
			return err
		}
		rows, cols := int(st.A.Rows), int(st.A.Cols)
		out := make([]float64, len(a))
		for i := 0; i < rows; i++ {
			row := a[i*cols : (i+1)*cols]
			var mean float64
			for _, v := range row {
				mean += v
			}
			mean /= float64(cols)
			var variance float64
			for _, v := range row {
				d := v - mean
				variance += d * d
			}
			variance /= float64(cols)
			inv := 1 / math.Sqrt(variance+1e-5)
			for j, v := range row {
				out[i*cols+j] = (v - mean) * inv
			}
		}
		clk.Advance(e.opt.FloatOp * sim.Duration(8*len(a)))
		return e.writeMatrix(clk, fr, params, st.Dst, out)

	case ir.IntrSoftmax:
		a, err := e.readMatrix(clk, fr, params, st.A)
		if err != nil {
			return err
		}
		rows, cols := int(st.A.Rows), int(st.A.Cols)
		out := make([]float64, len(a))
		for i := 0; i < rows; i++ {
			row := a[i*cols : (i+1)*cols]
			maxV := math.Inf(-1)
			for _, v := range row {
				if v > maxV {
					maxV = v
				}
			}
			var sum float64
			for j, v := range row {
				ev := math.Exp(v - maxV)
				out[i*cols+j] = ev
				sum += ev
			}
			for j := range row {
				out[i*cols+j] /= sum
			}
		}
		clk.Advance(e.opt.FloatOp * sim.Duration(6*len(a)))
		return e.writeMatrix(clk, fr, params, st.Dst, out)

	case ir.IntrGelu:
		a, err := e.readMatrix(clk, fr, params, st.A)
		if err != nil {
			return err
		}
		out := make([]float64, len(a))
		const c0 = 0.7978845608028654 // sqrt(2/pi)
		for i, v := range a {
			out[i] = 0.5 * v * (1 + math.Tanh(c0*(v+0.044715*v*v*v)))
		}
		clk.Advance(e.opt.FloatOp * sim.Duration(8*len(a)))
		return e.writeMatrix(clk, fr, params, st.Dst, out)

	case ir.IntrCopy:
		a, err := e.readMatrix(clk, fr, params, st.A)
		if err != nil {
			return err
		}
		return e.writeMatrix(clk, fr, params, st.Dst, a)

	case ir.IntrZero:
		return e.writeMatrix(clk, fr, params, st.Dst, make([]float64, st.Dst.Elems()))

	default:
		return fmt.Errorf("exec: unknown intrinsic %v", st.Kind)
	}
}

// readMatrix pulls a tensor view into a float slice through the bulk path.
func (e *Executor) readMatrix(clk *sim.Clock, fr *frame, params map[string]Value, t ir.TensorRef) ([]float64, error) {
	off, err := e.eval(clk, fr, params, t.Off)
	if err != nil {
		return nil, err
	}
	n := int(t.Elems())
	buf := make([]byte, n*8)
	if err := e.bulk(clk, fr, t.Obj, off.AsInt(), buf, false); err != nil {
		return nil, err
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:]))
	}
	return out, nil
}

// writeMatrix pushes a float slice back through the bulk path.
func (e *Executor) writeMatrix(clk *sim.Clock, fr *frame, params map[string]Value, t ir.TensorRef, vals []float64) error {
	off, err := e.eval(clk, fr, params, t.Off)
	if err != nil {
		return err
	}
	if int64(len(vals)) != t.Elems() {
		return fmt.Errorf("exec: writeMatrix size %d != %dx%d", len(vals), t.Rows, t.Cols)
	}
	buf := make([]byte, len(vals)*8)
	for i, v := range vals {
		binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(v))
	}
	return e.bulk(clk, fr, t.Obj, off.AsInt(), buf, true)
}

// bulk routes a bulk transfer locally or, in offloaded mode, to far-node
// memory.
func (e *Executor) bulk(clk *sim.Clock, fr *frame, obj string, elem int64, buf []byte, write bool) error {
	if e.remote != nil {
		e.yield()
		clk.Advance(e.opt.ComputeOp * sim.Duration(len(buf)/64+1))
		return e.remote.RemoteBulk(clk, obj, elem, buf, write)
	}
	e.yield()
	t0 := clk.Now()
	var err error
	if write {
		err = e.be.BulkWrite(clk, obj, elem, buf)
	} else {
		err = e.be.BulkRead(clk, obj, elem, buf)
	}
	e.chargeRuntime(fr, clk.Now().Sub(t0))
	return err
}
