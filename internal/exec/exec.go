// Package exec interprets IR programs against a far-memory backend,
// charging virtual time for compute and memory events. One program runs
// unchanged on the Mira runtime and on every baseline, which is how the
// benchmark harness compares systems on identical workloads — and because
// the backends move real bytes, the interpreter's results are checked for
// equality across systems in the integration tests.
package exec

import (
	"fmt"

	"mira/internal/ir"
	"mira/internal/profile"
	"mira/internal/rt"
	"mira/internal/sim"
)

// maxCallDepth bounds recursion; our workloads are shallow.
const maxCallDepth = 128

// Options configures an Executor.
type Options struct {
	// ComputeOp is the cost of one scalar IR operator.
	ComputeOp sim.Duration
	// FloatOp is the cost of one floating-point operation in tensor
	// intrinsics.
	FloatOp sim.Duration
	// Collector receives profiling events (nil disables profiling).
	Collector *profile.Collector
	// Params binds the entry function's parameters.
	Params map[string]Value
	// Yield, when set, is called immediately before every backend memory
	// operation (access, prefetch, eviction hint, fence, release, bulk
	// transfer). The multithreaded drivers install sim.Thread.Yield here
	// so the deterministic scheduler can interleave threads at every
	// memory-op boundary; single-threaded runs leave it nil and pay one
	// nil check per operation.
	Yield func()
}

// DefaultOptions matches rt.DefaultCostModel's compute costs.
func DefaultOptions() Options {
	return Options{ComputeOp: 1 * sim.Nanosecond, FloatOp: 1 * sim.Nanosecond}
}

// Executor interprets one program over one backend.
type Executor struct {
	p      *ir.Program
	be     Backend
	opt    Options
	fields map[string]ir.Field // "obj\x00field" -> resolved field
	depth  int
	// remote, when non-nil, redirects accesses to far-node memory: the
	// executor is running an offloaded function body (§4.8).
	remote RemoteEnv
	// misses samples the backend's aggregate miss counter when
	// profiling (nil when the backend has none or no collector is set).
	misses missCounter
	buf    [8]byte
}

// missCounter is the optional backend capability behind per-function miss
// rates (§4.1).
type missCounter interface {
	MissCount() int64
}

// New builds an executor for p over be.
func New(p *ir.Program, be Backend, opt Options) (*Executor, error) {
	if err := ir.Validate(p); err != nil {
		return nil, err
	}
	if opt.ComputeOp == 0 {
		opt.ComputeOp = DefaultOptions().ComputeOp
	}
	if opt.FloatOp == 0 {
		opt.FloatOp = DefaultOptions().FloatOp
	}
	e := &Executor{p: p, be: be, opt: opt, fields: make(map[string]ir.Field)}
	if opt.Collector != nil {
		if mc, ok := be.(missCounter); ok {
			e.misses = mc
		}
	}
	return e, nil
}

// Run executes the entry function and returns its result.
func (e *Executor) Run(clk *sim.Clock) (Value, error) {
	f, err := e.p.EntryFunc()
	if err != nil {
		return Value{}, err
	}
	args := make([]Value, len(f.Params))
	for i, name := range f.Params {
		v, ok := e.opt.Params[name]
		if !ok {
			return Value{}, fmt.Errorf("exec: entry parameter %q not bound", name)
		}
		args[i] = v
	}
	if e.opt.Collector != nil {
		for _, o := range e.p.Objects {
			e.opt.Collector.AllocSite(o.Name, o.SizeBytes())
		}
	}
	return e.call(clk, f, args)
}

// frame is one function activation.
type frame struct {
	fn   *ir.Func
	regs []Value
}

// call runs fn with args, recording its profile.
func (e *Executor) call(clk *sim.Clock, fn *ir.Func, args []Value) (Value, error) {
	if e.depth >= maxCallDepth {
		return Value{}, fmt.Errorf("exec: call depth exceeds %d at %q", maxCallDepth, fn.Name)
	}
	e.depth++
	defer func() { e.depth-- }()

	fr := &frame{fn: fn, regs: make([]Value, fn.NumRegs)}
	// Parameters are read via ir.Param, not registers; stash them on the
	// frame.
	params := make(map[string]Value, len(args))
	for i, name := range fn.Params {
		params[name] = args[i]
	}
	start := clk.Now()
	ret, _, err := e.block(clk, fr, params, fn.Body)
	if e.opt.Collector != nil {
		e.opt.Collector.FuncCall(fn.Name, clk.Now().Sub(start))
	}
	return ret, err
}

// block executes stmts; returned reports whether a Return fired.
func (e *Executor) block(clk *sim.Clock, fr *frame, params map[string]Value, stmts []ir.Stmt) (ret Value, returned bool, err error) {
	for _, s := range stmts {
		switch st := s.(type) {
		case *ir.Assign:
			v, err := e.eval(clk, fr, params, st.Val)
			if err != nil {
				return Value{}, false, err
			}
			fr.regs[st.Dst] = v

		case *ir.Load:
			idx, err := e.eval(clk, fr, params, st.Index)
			if err != nil {
				return Value{}, false, err
			}
			f, err := e.field(st.Obj, st.Field)
			if err != nil {
				return Value{}, false, err
			}
			buf := e.buf[:f.Bytes]
			if err := e.access(clk, fr, st.Obj, idx.AsInt(), f, buf, false,
				rt.AccessOpts{Native: st.Native}); err != nil {
				return Value{}, false, err
			}
			v, err := decodeField(f, buf)
			if err != nil {
				return Value{}, false, err
			}
			fr.regs[st.Dst] = v

		case *ir.Store:
			idx, err := e.eval(clk, fr, params, st.Index)
			if err != nil {
				return Value{}, false, err
			}
			val, err := e.eval(clk, fr, params, st.Val)
			if err != nil {
				return Value{}, false, err
			}
			f, err := e.field(st.Obj, st.Field)
			if err != nil {
				return Value{}, false, err
			}
			buf := e.buf[:f.Bytes]
			if err := encodeField(f, val, buf); err != nil {
				return Value{}, false, err
			}
			if err := e.access(clk, fr, st.Obj, idx.AsInt(), f, buf, true,
				rt.AccessOpts{Native: st.Native, NoFetch: st.NoFetch}); err != nil {
				return Value{}, false, err
			}

		case *ir.Loop:
			startV, err := e.eval(clk, fr, params, st.Start)
			if err != nil {
				return Value{}, false, err
			}
			endV, err := e.eval(clk, fr, params, st.End)
			if err != nil {
				return Value{}, false, err
			}
			stepV, err := e.eval(clk, fr, params, st.Step)
			if err != nil {
				return Value{}, false, err
			}
			step := stepV.AsInt()
			if step <= 0 {
				return Value{}, false, fmt.Errorf("exec: loop %q step %d", st.Name, step)
			}
			for iv := startV.AsInt(); iv < endV.AsInt(); iv += step {
				fr.regs[st.IVReg] = IntV(iv)
				clk.Advance(e.opt.ComputeOp) // loop control
				r, returned, err := e.block(clk, fr, params, st.Body)
				if err != nil {
					return Value{}, false, err
				}
				if returned {
					return r, true, nil
				}
			}

		case *ir.If:
			c, err := e.eval(clk, fr, params, st.Cond)
			if err != nil {
				return Value{}, false, err
			}
			body := st.Then
			if !c.Truthy() {
				body = st.Else
			}
			r, returned, err := e.block(clk, fr, params, body)
			if err != nil {
				return Value{}, false, err
			}
			if returned {
				return r, true, nil
			}

		case *ir.Call:
			callee, ok := e.p.Func(st.Callee)
			if !ok {
				return Value{}, false, fmt.Errorf("exec: call of unknown function %q", st.Callee)
			}
			args := make([]Value, len(st.Args))
			for i, a := range st.Args {
				v, err := e.eval(clk, fr, params, a)
				if err != nil {
					return Value{}, false, err
				}
				args[i] = v
			}
			var r Value
			var err error
			if st.Offload && e.remote == nil {
				r, err = e.offloadCall(clk, callee, args)
			} else {
				r, err = e.call(clk, callee, args)
			}
			if err != nil {
				return Value{}, false, err
			}
			if st.Dst >= 0 {
				fr.regs[st.Dst] = r
			}

		case *ir.Return:
			if st.Val == nil {
				return Value{}, true, nil
			}
			v, err := e.eval(clk, fr, params, st.Val)
			if err != nil {
				return Value{}, false, err
			}
			return v, true, nil

		case *ir.Prefetch:
			if e.remote != nil {
				break // far-node code needs no prefetch
			}
			idx, err := e.eval(clk, fr, params, st.Index)
			if err != nil {
				return Value{}, false, err
			}
			f, err := e.field(st.Obj, st.Field)
			if err != nil {
				return Value{}, false, err
			}
			e.yield()
			t0 := clk.Now()
			if err := e.be.Prefetch(clk, st.Obj, idx.AsInt(), f); err != nil {
				return Value{}, false, err
			}
			e.chargeRuntime(fr, clk.Now().Sub(t0))

		case *ir.BatchPrefetch:
			if e.remote != nil {
				break
			}
			entries := make([]rt.BatchEntry, 0, len(st.Entries))
			for _, pe := range st.Entries {
				idx, err := e.eval(clk, fr, params, pe.Index)
				if err != nil {
					return Value{}, false, err
				}
				f, err := e.field(pe.Obj, pe.Field)
				if err != nil {
					return Value{}, false, err
				}
				entries = append(entries, rt.BatchEntry{Obj: pe.Obj, Elem: idx.AsInt(), Field: f})
			}
			e.yield()
			t0 := clk.Now()
			if err := e.be.PrefetchBatch(clk, entries); err != nil {
				return Value{}, false, err
			}
			e.chargeRuntime(fr, clk.Now().Sub(t0))

		case *ir.Evict:
			if e.remote != nil {
				break
			}
			idx, err := e.eval(clk, fr, params, st.Index)
			if err != nil {
				return Value{}, false, err
			}
			e.yield()
			t0 := clk.Now()
			if err := e.be.EvictHint(clk, st.Obj, idx.AsInt()); err != nil {
				return Value{}, false, err
			}
			e.chargeRuntime(fr, clk.Now().Sub(t0))

		case *ir.Fence:
			if e.remote != nil {
				break
			}
			e.yield()
			t0 := clk.Now()
			e.be.Fence(clk)
			e.chargeRuntime(fr, clk.Now().Sub(t0))

		case *ir.Release:
			if e.remote != nil {
				break
			}
			e.yield()
			t0 := clk.Now()
			if err := e.be.Release(clk, st.Obj); err != nil {
				return Value{}, false, err
			}
			e.chargeRuntime(fr, clk.Now().Sub(t0))

		case *ir.Intrinsic:
			if err := e.intrinsic(clk, fr, params, st); err != nil {
				return Value{}, false, err
			}

		default:
			return Value{}, false, fmt.Errorf("exec: unknown statement %T", s)
		}
	}
	return Value{}, false, nil
}

// access routes a scalar access to the local backend or, in offloaded mode,
// directly to far-node memory (charging the remote clock a native access).
func (e *Executor) access(clk *sim.Clock, fr *frame, obj string, elem int64, f ir.Field, buf []byte, write bool, opts rt.AccessOpts) error {
	if e.remote != nil {
		e.yield()                    // scattered sub-offloads interleave at access boundaries
		clk.Advance(e.opt.ComputeOp) // native far-node access
		return e.remote.RemoteAccess(clk, obj, elem, f, buf, write)
	}
	e.yield()
	t0 := clk.Now()
	var m0 int64
	if e.misses != nil {
		m0 = e.misses.MissCount()
	}
	err := e.be.Access(clk, obj, elem, f, buf, write, opts)
	e.chargeRuntime(fr, clk.Now().Sub(t0))
	if e.misses != nil {
		e.opt.Collector.AccessEvent(fr.fn.Name, e.misses.MissCount() > m0)
	}
	return err
}

// yield hands control to the interleaving scheduler, if one is installed
// (see Options.Yield).
func (e *Executor) yield() {
	if e.opt.Yield != nil {
		e.opt.Yield()
	}
}

// chargeRuntime attributes backend-internal time to the current function.
func (e *Executor) chargeRuntime(fr *frame, d sim.Duration) {
	if e.opt.Collector != nil && d > 0 {
		e.opt.Collector.RuntimeTime(fr.fn.Name, d)
	}
}

// field resolves obj.field with caching.
func (e *Executor) field(obj, field string) (ir.Field, error) {
	key := obj + "\x00" + field
	if f, ok := e.fields[key]; ok {
		return f, nil
	}
	o, ok := e.p.Object(obj)
	if !ok {
		return ir.Field{}, fmt.Errorf("exec: unknown object %q", obj)
	}
	f, ok := o.FieldByName(field)
	if !ok {
		return ir.Field{}, fmt.Errorf("exec: object %q has no field %q", obj, field)
	}
	e.fields[key] = f
	return f, nil
}

// eval computes an expression, charging one ComputeOp per operator node.
func (e *Executor) eval(clk *sim.Clock, fr *frame, params map[string]Value, x ir.Expr) (Value, error) {
	switch t := x.(type) {
	case *ir.Const:
		return IntV(t.I), nil
	case *ir.ConstF:
		return FloatV(t.F), nil
	case *ir.Reg:
		return fr.regs[t.ID], nil
	case *ir.Param:
		v, ok := params[t.Name]
		if !ok {
			return Value{}, fmt.Errorf("exec: unbound parameter %q in %q", t.Name, fr.fn.Name)
		}
		return v, nil
	case *ir.Bin:
		a, err := e.eval(clk, fr, params, t.A)
		if err != nil {
			return Value{}, err
		}
		b, err := e.eval(clk, fr, params, t.B)
		if err != nil {
			return Value{}, err
		}
		clk.Advance(e.opt.ComputeOp)
		return applyBin(t.Op, a, b)
	case *ir.Un:
		a, err := e.eval(clk, fr, params, t.A)
		if err != nil {
			return Value{}, err
		}
		clk.Advance(e.opt.ComputeOp)
		return applyUn(t.Op, a)
	default:
		return Value{}, fmt.Errorf("exec: unknown expression %T", x)
	}
}

func applyBin(op ir.BinOp, a, b Value) (Value, error) {
	if a.Float || b.Float {
		x, y := a.AsFloat(), b.AsFloat()
		switch op {
		case ir.OpAdd:
			return FloatV(x + y), nil
		case ir.OpSub:
			return FloatV(x - y), nil
		case ir.OpMul:
			return FloatV(x * y), nil
		case ir.OpDiv:
			return FloatV(x / y), nil
		case ir.OpMin:
			if x < y {
				return FloatV(x), nil
			}
			return FloatV(y), nil
		case ir.OpMax:
			if x > y {
				return FloatV(x), nil
			}
			return FloatV(y), nil
		case ir.OpLt:
			return boolV(x < y), nil
		case ir.OpLe:
			return boolV(x <= y), nil
		case ir.OpGt:
			return boolV(x > y), nil
		case ir.OpGe:
			return boolV(x >= y), nil
		case ir.OpEq:
			return boolV(x == y), nil
		case ir.OpNe:
			return boolV(x != y), nil
		case ir.OpAnd:
			return boolV(x != 0 && y != 0), nil
		case ir.OpOr:
			return boolV(x != 0 || y != 0), nil
		default:
			return Value{}, fmt.Errorf("exec: operator %v undefined on floats", op)
		}
	}
	x, y := a.I, b.I
	switch op {
	case ir.OpAdd:
		return IntV(x + y), nil
	case ir.OpSub:
		return IntV(x - y), nil
	case ir.OpMul:
		return IntV(x * y), nil
	case ir.OpDiv:
		if y == 0 {
			return Value{}, fmt.Errorf("exec: integer division by zero")
		}
		return IntV(x / y), nil
	case ir.OpMod:
		if y == 0 {
			return Value{}, fmt.Errorf("exec: integer modulo by zero")
		}
		return IntV(x % y), nil
	case ir.OpMin:
		if x < y {
			return IntV(x), nil
		}
		return IntV(y), nil
	case ir.OpMax:
		if x > y {
			return IntV(x), nil
		}
		return IntV(y), nil
	case ir.OpLt:
		return boolV(x < y), nil
	case ir.OpLe:
		return boolV(x <= y), nil
	case ir.OpGt:
		return boolV(x > y), nil
	case ir.OpGe:
		return boolV(x >= y), nil
	case ir.OpEq:
		return boolV(x == y), nil
	case ir.OpNe:
		return boolV(x != y), nil
	case ir.OpAnd:
		return boolV(x != 0 && y != 0), nil
	case ir.OpOr:
		return boolV(x != 0 || y != 0), nil
	default:
		return Value{}, fmt.Errorf("exec: unknown operator %v", op)
	}
}

func applyUn(op ir.UnOp, a Value) (Value, error) {
	switch op {
	case ir.OpNeg:
		if a.Float {
			return FloatV(-a.F), nil
		}
		return IntV(-a.I), nil
	case ir.OpNot:
		return boolV(!a.Truthy()), nil
	case ir.OpAbs:
		if a.Float {
			if a.F < 0 {
				return FloatV(-a.F), nil
			}
			return a, nil
		}
		if a.I < 0 {
			return IntV(-a.I), nil
		}
		return a, nil
	default:
		return Value{}, fmt.Errorf("exec: unknown unary operator %v", op)
	}
}

func boolV(b bool) Value {
	if b {
		return IntV(1)
	}
	return IntV(0)
}
