package exec

import (
	"mira/internal/ir"
	"mira/internal/rt"
	"mira/internal/sim"
)

// Backend is what the interpreter executes memory operations against. The
// Mira runtime (*rt.Runtime) satisfies it directly; the baselines
// (fastswap/leap/aifm) provide their own implementations, which is how one
// IR program runs unchanged on four different far-memory systems.
type Backend interface {
	// Access moves the bytes of obj[elem].field, charging clk.
	Access(clk *sim.Clock, name string, elem int64, field ir.Field, buf []byte, write bool, opts rt.AccessOpts) error
	// Prefetch starts an asynchronous line fetch (no-op for systems
	// without compiler-directed prefetch).
	Prefetch(clk *sim.Clock, name string, elem int64, field ir.Field) error
	// PrefetchBatch fetches several lines in one message.
	PrefetchBatch(clk *sim.Clock, entries []rt.BatchEntry) error
	// EvictHint marks obj[elem]'s line evictable and flushes it if
	// dirty.
	EvictHint(clk *sim.Clock, name string, elem int64) error
	// Fence blocks until asynchronous work completes.
	Fence(clk *sim.Clock)
	// BulkRead / BulkWrite move contiguous element ranges (tensor
	// intrinsics).
	BulkRead(clk *sim.Clock, name string, elem int64, buf []byte) error
	BulkWrite(clk *sim.Clock, name string, elem int64, buf []byte) error
	// FlushObject writes back and invalidates all cached state of the
	// object (offload call boundaries); blocks until far memory is up to
	// date.
	FlushObject(clk *sim.Clock, name string) error
	// Release ends the object's cached lifetime without blocking: lines
	// are dropped, dirty ones flushed asynchronously (§4.1 lifetime
	// ends). No-op for systems without lifetime knowledge.
	Release(clk *sim.Clock, name string) error
}

// RemoteEnv is the optional capability a backend exposes to execute
// offloaded functions on the far-memory node (§4.8). Only the Mira runtime
// implements it; executing an Offload call against a backend without it is
// an error the planner never produces.
type RemoteEnv interface {
	// RemoteAccess moves bytes directly in far-node memory — no network,
	// but the far node's local memory cost is charged to clk.
	RemoteAccess(clk *sim.Clock, name string, elem int64, field ir.Field, buf []byte, write bool) error
	// RemoteBulk is RemoteAccess for contiguous element ranges.
	RemoteBulk(clk *sim.Clock, name string, elem int64, buf []byte, write bool) error
	// CPUSlowdown is the far node's compute slowdown factor.
	CPUSlowdown() float64
	// OffloadTransfer charges clk for the RPC: argument transfer, the
	// (already measured, unscaled) remote compute time, and the result
	// transfer.
	OffloadTransfer(clk *sim.Clock, argBytes, resBytes int, remoteCompute sim.Duration)
}

var _ Backend = (*rt.Runtime)(nil)
