package exec

import (
	"math"
	"testing"
	"testing/quick"

	"mira/internal/ir"
)

func TestValueConversions(t *testing.T) {
	if IntV(5).AsFloat() != 5.0 || FloatV(2.75).AsInt() != 2 {
		t.Fatal("conversions wrong")
	}
	if !IntV(1).Truthy() || IntV(0).Truthy() || !FloatV(0.5).Truthy() || FloatV(0).Truthy() {
		t.Fatal("truthiness wrong")
	}
	if IntV(7).String() != "7" || FloatV(1.5).String() != "1.5" {
		t.Fatal("String wrong")
	}
}

// Property: int fields of every width round-trip through encode/decode.
func TestIntFieldRoundtripProperty(t *testing.T) {
	widths := []int{1, 2, 4, 8}
	f := func(v int64, wPick uint8) bool {
		w := widths[int(wPick)%len(widths)]
		// Clamp to the width's range (sign-extension must survive).
		switch w {
		case 1:
			v = int64(int8(v))
		case 2:
			v = int64(int16(v))
		case 4:
			v = int64(int32(v))
		}
		field := ir.Field{Bytes: w}
		buf := make([]byte, w)
		if err := encodeField(field, IntV(v), buf); err != nil {
			return false
		}
		out, err := decodeField(field, buf)
		if err != nil {
			return false
		}
		return out.AsInt() == v && !out.Float
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: float64 fields round-trip bit-exactly (including NaN bits).
func TestFloatFieldRoundtripProperty(t *testing.T) {
	field := ir.Field{Bytes: 8, Float: true}
	f := func(bits uint64) bool {
		v := math.Float64frombits(bits)
		buf := make([]byte, 8)
		if err := encodeField(field, FloatV(v), buf); err != nil {
			return false
		}
		out, err := decodeField(field, buf)
		if err != nil {
			return false
		}
		return math.Float64bits(out.AsFloat()) == bits && out.Float
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFieldWidthErrors(t *testing.T) {
	if _, err := decodeField(ir.Field{Bytes: 3}, make([]byte, 3)); err == nil {
		t.Fatal("3-byte int field accepted")
	}
	if err := encodeField(ir.Field{Bytes: 4, Float: true}, FloatV(1), make([]byte, 4)); err == nil {
		t.Fatal("4-byte float field accepted")
	}
}

// Property: the interpreter's integer arithmetic matches Go's.
func TestIntArithmeticProperty(t *testing.T) {
	ops := []ir.BinOp{ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpMin, ir.OpMax}
	f := func(a, b int64, opPick uint8) bool {
		op := ops[int(opPick)%len(ops)]
		got, err := applyBin(op, IntV(a), IntV(b))
		if err != nil {
			return false
		}
		var want int64
		switch op {
		case ir.OpAdd:
			want = a + b
		case ir.OpSub:
			want = a - b
		case ir.OpMul:
			want = a * b
		case ir.OpMin:
			want = a
			if b < a {
				want = b
			}
		case ir.OpMax:
			want = a
			if b > a {
				want = b
			}
		}
		return got.AsInt() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: comparisons agree with Go across int and mixed int/float
// operands.
func TestComparisonProperty(t *testing.T) {
	f := func(a, b int32, useFloat bool) bool {
		av, bv := Value(IntV(int64(a))), Value(IntV(int64(b)))
		if useFloat {
			av = FloatV(float64(a))
		}
		lt, _ := applyBin(ir.OpLt, av, bv)
		ge, _ := applyBin(ir.OpGe, av, bv)
		eq, _ := applyBin(ir.OpEq, av, bv)
		return (lt.AsInt() == 1) == (a < b) &&
			(ge.AsInt() == 1) == (a >= b) &&
			(eq.AsInt() == 1) == (a == b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUnaryOps(t *testing.T) {
	if v, _ := applyUn(ir.OpNeg, IntV(5)); v.AsInt() != -5 {
		t.Fatal("neg int")
	}
	if v, _ := applyUn(ir.OpNeg, FloatV(2.5)); v.AsFloat() != -2.5 {
		t.Fatal("neg float")
	}
	if v, _ := applyUn(ir.OpNot, IntV(0)); v.AsInt() != 1 {
		t.Fatal("not")
	}
	if v, _ := applyUn(ir.OpAbs, IntV(-3)); v.AsInt() != 3 {
		t.Fatal("abs int")
	}
	if v, _ := applyUn(ir.OpAbs, FloatV(-3.5)); v.AsFloat() != 3.5 {
		t.Fatal("abs float")
	}
}

func TestModByZeroErrors(t *testing.T) {
	if _, err := applyBin(ir.OpMod, IntV(5), IntV(0)); err == nil {
		t.Fatal("mod by zero accepted")
	}
}

func TestFloatDivByZeroIsInf(t *testing.T) {
	v, err := applyBin(ir.OpDiv, FloatV(1), FloatV(0))
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(v.AsFloat(), 1) {
		t.Fatalf("1.0/0.0 = %v", v)
	}
}
