package exec

import (
	"encoding/binary"
	"math"
	"testing"

	"mira/internal/ir"
	"mira/internal/sim"
)

// floatMem builds a program over one float array, initializes it from vals,
// runs it, and returns the flushed memory image as float64s.
func runFloatProgram(t *testing.T, total int64, vals []float64, emit func(fb *ir.FuncBuilder)) []float64 {
	t.Helper()
	b := ir.NewBuilder("intr")
	b.FloatArray("mem", total)
	fb := b.Func("main")
	emit(fb)
	p := b.MustProgram()

	r := rtBackend(t, p)
	buf := make([]byte, total*8)
	for i, v := range vals {
		binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(v))
	}
	if err := r.InitObject("mem", buf); err != nil {
		t.Fatal(err)
	}
	ex, err := New(p, r, Options{})
	if err != nil {
		t.Fatal(err)
	}
	clk := sim.NewClock(0)
	if _, err := ex.Run(clk); err != nil {
		t.Fatal(err)
	}
	if err := r.FlushAll(clk); err != nil {
		t.Fatal(err)
	}
	dump, err := r.DumpObject("mem")
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float64, total)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(dump[i*8:]))
	}
	return out
}

func TestMatMulTAgainstReference(t *testing.T) {
	const m, k, n = 4, 6, 3
	rng := sim.NewRNG(9)
	vals := make([]float64, m*k+n*k+m*n)
	for i := 0; i < m*k+n*k; i++ {
		vals[i] = rng.Float64()*2 - 1
	}
	out := runFloatProgram(t, m*k+n*k+m*n, vals, func(fb *ir.FuncBuilder) {
		fb.MatMulT(
			ir.T("mem", ir.C(m*k+n*k), m, n),
			ir.T("mem", ir.C(0), m, k),
			ir.T("mem", ir.C(m*k), n, k))
	})
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var want float64
			for kk := 0; kk < k; kk++ {
				want += vals[i*k+kk] * vals[m*k+j*k+kk]
			}
			got := out[m*k+n*k+i*n+j]
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("C[%d][%d] = %g, want %g", i, j, got, want)
			}
		}
	}
}

func TestAddIntrinsic(t *testing.T) {
	const elems = 12
	vals := make([]float64, 3*elems)
	for i := 0; i < elems; i++ {
		vals[i] = float64(i)
		vals[elems+i] = float64(i * 10)
	}
	out := runFloatProgram(t, 3*elems, vals, func(fb *ir.FuncBuilder) {
		fb.Binary(ir.IntrAdd,
			ir.T("mem", ir.C(2*elems), 1, elems),
			ir.T("mem", ir.C(0), 1, elems),
			ir.T("mem", ir.C(elems), 1, elems))
	})
	for i := 0; i < elems; i++ {
		if want := float64(i) + float64(i*10); out[2*elems+i] != want {
			t.Fatalf("add[%d] = %g, want %g", i, out[2*elems+i], want)
		}
	}
}

func TestGeluShape(t *testing.T) {
	const elems = 8
	vals := []float64{-3, -1, -0.5, 0, 0.5, 1, 2, 3}
	out := runFloatProgram(t, 2*elems, vals, func(fb *ir.FuncBuilder) {
		fb.Unary(ir.IntrGelu,
			ir.T("mem", ir.C(elems), 1, elems),
			ir.T("mem", ir.C(0), 1, elems))
	})
	g := out[elems : 2*elems]
	// GELU fundamentals: g(0)=0, monotone above its dip at x≈-0.75,
	// g(x)≈x for large positive x, |g(x)| small for very negative x.
	if g[3] != 0 {
		t.Fatalf("gelu(0) = %g", g[3])
	}
	for i := 3; i < elems; i++ {
		if g[i] < g[i-1] {
			t.Fatalf("gelu not monotone for x >= -0.5: g[%d]=%g < g[%d]=%g", i, g[i], i-1, g[i-1])
		}
	}
	if g[1] >= 0 || g[2] >= 0 {
		t.Fatalf("gelu negative lobe missing: g(-1)=%g g(-0.5)=%g", g[1], g[2])
	}
	if math.Abs(g[7]-3) > 0.02 {
		t.Fatalf("gelu(3) = %g, want ~3", g[7])
	}
	if math.Abs(g[0]) > 0.01 {
		t.Fatalf("gelu(-3) = %g, want ~0", g[0])
	}
}

func TestLayerNormReference(t *testing.T) {
	const rows, cols = 2, 4
	vals := []float64{1, 2, 3, 4, -1, -1, 1, 1}
	out := runFloatProgram(t, 2*rows*cols, vals, func(fb *ir.FuncBuilder) {
		fb.Unary(ir.IntrLayerNorm,
			ir.T("mem", ir.C(rows*cols), rows, cols),
			ir.T("mem", ir.C(0), rows, cols))
	})
	for i := 0; i < rows; i++ {
		row := out[rows*cols+i*cols : rows*cols+(i+1)*cols]
		var mean, variance float64
		for _, v := range row {
			mean += v
		}
		mean /= cols
		for _, v := range row {
			variance += (v - mean) * (v - mean)
		}
		variance /= cols
		if math.Abs(mean) > 1e-9 {
			t.Fatalf("row %d mean = %g, want 0", i, mean)
		}
		if math.Abs(variance-1) > 1e-3 {
			t.Fatalf("row %d variance = %g, want ~1", i, variance)
		}
	}
}

func TestCopyIntrinsic(t *testing.T) {
	const elems = 10
	vals := make([]float64, 2*elems)
	for i := 0; i < elems; i++ {
		vals[i] = float64(i)*1.5 - 3
		vals[elems+i] = 99
	}
	out := runFloatProgram(t, 2*elems, vals, func(fb *ir.FuncBuilder) {
		fb.Unary(ir.IntrCopy,
			ir.T("mem", ir.C(elems), 1, elems),
			ir.T("mem", ir.C(0), 1, elems))
	})
	for i := 0; i < elems; i++ {
		if out[elems+i] != vals[i] {
			t.Fatalf("copy[%d] = %g, want %g", i, out[elems+i], vals[i])
		}
	}
}

func TestIntrinsicsAdvanceClock(t *testing.T) {
	const m, k, n = 4, 4, 4
	b := ir.NewBuilder("mmclk")
	b.FloatArray("mem", m*k+k*n+m*n)
	fb := b.Func("main")
	fb.MatMul(
		ir.T("mem", ir.C(m*k+k*n), m, n),
		ir.T("mem", ir.C(0), m, k),
		ir.T("mem", ir.C(m*k), k, n))
	p := b.MustProgram()
	r := rtBackend(t, p)
	ex, err := New(p, r, Options{})
	if err != nil {
		t.Fatal(err)
	}
	clk := sim.NewClock(0)
	if _, err := ex.Run(clk); err != nil {
		t.Fatal(err)
	}
	if clk.Now() == 0 {
		t.Fatal("matmul advanced no virtual time")
	}
}

func TestBinaryOpsAgainstReference(t *testing.T) {
	cases := []struct {
		op   ir.BinOp
		a, b Value
		want Value
	}{
		{ir.OpSub, IntV(9), IntV(4), IntV(5)},
		{ir.OpMin, IntV(3), IntV(7), IntV(3)},
		{ir.OpMax, IntV(3), IntV(7), IntV(7)},
		{ir.OpMin, FloatV(2.5), FloatV(1.5), FloatV(1.5)},
		{ir.OpMax, FloatV(2.5), FloatV(1.5), FloatV(2.5)},
		{ir.OpDiv, FloatV(1), FloatV(4), FloatV(0.25)},
		{ir.OpSub, FloatV(1.5), IntV(1), FloatV(0.5)},
		{ir.OpLt, IntV(1), IntV(2), IntV(1)},
		{ir.OpLe, IntV(2), IntV(2), IntV(1)},
		{ir.OpGt, IntV(1), IntV(2), IntV(0)},
		{ir.OpGe, FloatV(2), FloatV(2), IntV(1)},
		{ir.OpEq, FloatV(1), IntV(1), IntV(1)},
		{ir.OpNe, IntV(1), IntV(2), IntV(1)},
		{ir.OpAnd, IntV(1), IntV(0), IntV(0)},
		{ir.OpOr, IntV(1), IntV(0), IntV(1)},
		{ir.OpAnd, FloatV(1), FloatV(2), IntV(1)},
	}
	for _, c := range cases {
		got, err := applyBin(c.op, c.a, c.b)
		if err != nil {
			t.Fatalf("%v: %v", c.op, err)
		}
		if got.AsFloat() != c.want.AsFloat() {
			t.Fatalf("%v(%v,%v) = %v, want %v", c.op, c.a, c.b, got, c.want)
		}
	}
}

func TestIntDivAndFloatModErrors(t *testing.T) {
	if _, err := applyBin(ir.OpDiv, IntV(1), IntV(0)); err == nil {
		t.Fatal("integer division by zero accepted")
	}
	if _, err := applyBin(ir.OpMod, FloatV(1), FloatV(2)); err == nil {
		t.Fatal("float modulo accepted")
	}
}

func TestUnboundParamError(t *testing.T) {
	b := ir.NewBuilder("p")
	b.IntArray("dummy", 1)
	fb := b.Func("main", "n")
	fb.Return(ir.P("n"))
	p := b.MustProgram()
	r := rtBackend(t, p)
	ex, err := New(p, r, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Run(sim.NewClock(0)); err == nil {
		t.Fatal("unbound parameter accepted")
	}
}

func TestRuntimeErrorsPropagate(t *testing.T) {
	// A division by zero deep inside an expression must surface as a run
	// error, not a panic or a silent wrong value.
	b := ir.NewBuilder("boom")
	b.IntArray("a", 8)
	fb := b.Func("main")
	fb.Loop(ir.C(0), ir.C(4), ir.C(1), func(i ir.Expr) {
		v := fb.Load("a", i, "")
		fb.Store("a", i, "", ir.Div(ir.Add(v, ir.C(1)), i))
	})
	p := b.MustProgram()
	r := rtBackend(t, p)
	ex, err := New(p, r, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Run(sim.NewClock(0)); err == nil {
		t.Fatal("division by zero at i=0 did not error")
	}
}

func TestCallUnknownFunctionRejectedAtValidate(t *testing.T) {
	b := ir.NewBuilder("callmiss")
	b.IntArray("a", 8)
	fb := b.Func("main")
	fb.Call("ghost")
	if _, err := b.Program(); err == nil {
		t.Fatal("call to unknown function validated")
	}
}
