// Package gpt2 reproduces the paper's GPT-2 inference workload (§6): a
// scaled-down decoder-only transformer forward pass expressed with tensor
// intrinsics (the paper runs GPT-2 on ONNX operators through MLIR the same
// way). The workload's far-memory-relevant structure is what matters for
// Fig. 17: layer weights are used layer by layer and never again, the KV
// projections persist per layer (the key-value cache that "can be several
// times bigger than the model itself"), and every operator streams
// sequentially — so with precise per-layer lifetimes and prefetching, a few
// percent of local memory sustains full throughput.
package gpt2

import (
	"encoding/binary"
	"fmt"
	"math"

	"mira/internal/exec"
	"mira/internal/ir"
	"mira/internal/sim"
	"mira/internal/workload"
)

// Config sizes the model.
type Config struct {
	// Layers is the number of transformer blocks.
	Layers int
	// DModel is the embedding width.
	DModel int64
	// DFF is the feed-forward width.
	DFF int64
	// SeqLen is the sequence length.
	SeqLen int64
	// Seed drives weight/input generation (the paper compiles from a
	// random batch and tests on others).
	Seed uint64
}

// DefaultConfig is the harness size: 4 blocks of d=64 (about 1.6 MB of
// weights + activations).
func DefaultConfig() Config {
	return Config{Layers: 4, DModel: 64, DFF: 256, SeqLen: 32, Seed: 117}
}

// Workload implements workload.Workload.
type Workload struct {
	cfg  Config
	prog *ir.Program
}

// New builds the workload.
func New(cfg Config) *Workload {
	if cfg.Layers == 0 {
		cfg = DefaultConfig()
	}
	return &Workload{cfg: cfg, prog: build(cfg)}
}

// Name implements workload.Workload.
func (w *Workload) Name() string { return "gpt2" }

// Program implements workload.Workload.
func (w *Workload) Program() *ir.Program { return w.prog }

// Params implements workload.Workload.
func (w *Workload) Params() map[string]exec.Value { return nil }

// Config returns the sizing.
func (w *Workload) Config() Config { return w.cfg }

// FullMemoryBytes implements workload.Workload.
func (w *Workload) FullMemoryBytes() int64 {
	c := w.cfg
	perLayer := 4*c.DModel*c.DModel + 2*c.DModel*c.DFF + // weights
		2*c.SeqLen*c.DModel // kv
	act := 5*c.SeqLen*c.DModel + 2*c.SeqLen*c.SeqLen + 2*c.SeqLen*c.DFF
	return (int64(c.Layers)*perLayer + act) * 8
}

// Per-layer object names.
func wname(kind string, layer int) string { return fmt.Sprintf("%s_l%d", kind, layer) }

func build(cfg Config) *ir.Program {
	b := ir.NewBuilder("gpt2")
	T, D, F := cfg.SeqLen, cfg.DModel, cfg.DFF
	for l := 0; l < cfg.Layers; l++ {
		b.FloatArray(wname("wq", l), D*D)
		b.FloatArray(wname("wk", l), D*D)
		b.FloatArray(wname("wv", l), D*D)
		b.FloatArray(wname("wo", l), D*D)
		b.FloatArray(wname("w1", l), D*F)
		b.FloatArray(wname("w2", l), F*D)
		// The per-layer key/value cache (persists after the layer —
		// the memory the paper's intro calls out).
		b.FloatArray(wname("kcache", l), T*D)
		b.FloatArray(wname("vcache", l), T*D)
	}
	// Activations, reused across layers.
	b.FloatArray("x", T*D)
	b.FloatArray("q", T*D)
	b.FloatArray("attnout", T*D)
	b.FloatArray("scores", T*T)
	b.FloatArray("probs", T*T)
	b.FloatArray("ff1", T*F)
	b.FloatArray("ff1act", T*F)
	b.FloatArray("ff2", T*D)
	b.FloatArray("tmp", T*D)

	// One function per layer: the paper's per-layer lifetime boundaries
	// fall out of the call structure.
	for l := 0; l < cfg.Layers; l++ {
		fb := b.Func(fmt.Sprintf("layer%d", l))
		x := ir.T("x", nil, T, D)
		q := ir.T("q", nil, T, D)
		k := ir.T(wname("kcache", l), nil, T, D)
		v := ir.T(wname("vcache", l), nil, T, D)
		// Projections (MatMul accumulates; destinations hold zeros or
		// are overwritten by Copy first).
		fb.Zero(q)
		fb.MatMul(q, x, ir.T(wname("wq", l), nil, D, D))
		fb.Zero(k)
		fb.MatMul(k, x, ir.T(wname("wk", l), nil, D, D))
		fb.Zero(v)
		fb.MatMul(v, x, ir.T(wname("wv", l), nil, D, D))
		// Attention.
		scores := ir.T("scores", nil, T, T)
		fb.Zero(scores)
		fb.MatMulT(scores, q, k)
		probs := ir.T("probs", nil, T, T)
		fb.Unary(ir.IntrSoftmax, probs, scores)
		attn := ir.T("attnout", nil, T, D)
		fb.Zero(attn)
		fb.MatMul(attn, probs, v)
		tmp := ir.T("tmp", nil, T, D)
		fb.Zero(tmp)
		fb.MatMul(tmp, attn, ir.T(wname("wo", l), nil, D, D))
		fb.Binary(ir.IntrAdd, tmp, x, tmp)
		fb.Unary(ir.IntrLayerNorm, x, tmp)
		// Feed-forward.
		ff1 := ir.T("ff1", nil, T, F)
		fb.Zero(ff1)
		fb.MatMul(ff1, x, ir.T(wname("w1", l), nil, D, F))
		ff1act := ir.T("ff1act", nil, T, F)
		fb.Unary(ir.IntrGelu, ff1act, ff1)
		ff2 := ir.T("ff2", nil, T, D)
		fb.Zero(ff2)
		fb.MatMul(ff2, ff1act, ir.T(wname("w2", l), nil, F, D))
		fb.Binary(ir.IntrAdd, ff2, x, ff2)
		fb.Unary(ir.IntrLayerNorm, x, ff2)
	}
	fb := b.Func("inference")
	for l := 0; l < cfg.Layers; l++ {
		fb.Call(fmt.Sprintf("layer%d", l))
	}
	b.SetEntry("inference")
	return b.MustProgram()
}

// weights generates all model parameters and the input deterministically.
func (w *Workload) weights() map[string][]float64 {
	c := w.cfg
	rng := sim.NewRNG(c.Seed)
	gen := func(n int64, scale float64) []float64 {
		out := make([]float64, n)
		for i := range out {
			out[i] = (rng.Float64()*2 - 1) * scale
		}
		return out
	}
	out := map[string][]float64{}
	D, F, T := c.DModel, c.DFF, c.SeqLen
	scale := 1 / math.Sqrt(float64(D))
	for l := 0; l < c.Layers; l++ {
		out[wname("wq", l)] = gen(D*D, scale)
		out[wname("wk", l)] = gen(D*D, scale)
		out[wname("wv", l)] = gen(D*D, scale)
		out[wname("wo", l)] = gen(D*D, scale)
		out[wname("w1", l)] = gen(D*F, scale)
		out[wname("w2", l)] = gen(F*D, 1/math.Sqrt(float64(F)))
	}
	out["x"] = gen(T*D, 1)
	return out
}

// Init implements workload.Workload.
func (w *Workload) Init(t workload.ObjectIniter) error {
	for name, vals := range w.weights() {
		if err := t.InitObject(name, floatBytes(vals)); err != nil {
			return err
		}
	}
	return nil
}

func floatBytes(xs []float64) []byte {
	out := make([]byte, len(xs)*8)
	for i, x := range xs {
		binary.LittleEndian.PutUint64(out[i*8:], math.Float64bits(x))
	}
	return out
}

// Reference computes the final hidden state natively, replicating the
// executor's intrinsic evaluation orders exactly.
func (w *Workload) Reference() []float64 {
	c := w.cfg
	ws := w.weights()
	T, D, F := int(c.SeqLen), int(c.DModel), int(c.DFF)
	x := append([]float64(nil), ws["x"]...)

	matmul := func(dst, a, b []float64, m, k, n int) {
		for i := 0; i < m; i++ {
			for kk := 0; kk < k; kk++ {
				av := a[i*k+kk]
				if av == 0 {
					continue
				}
				row := b[kk*n : (kk+1)*n]
				out := dst[i*n : (i+1)*n]
				for j := range row {
					out[j] += av * row[j]
				}
			}
		}
	}
	matmulT := func(dst, a, b []float64, m, k, n int) {
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				var acc float64
				ar := a[i*k : (i+1)*k]
				br := b[j*k : (j+1)*k]
				for kk := range ar {
					acc += ar[kk] * br[kk]
				}
				dst[i*n+j] += acc
			}
		}
	}
	layernorm := func(dst, a []float64, rows, cols int) {
		for i := 0; i < rows; i++ {
			row := a[i*cols : (i+1)*cols]
			var mean float64
			for _, v := range row {
				mean += v
			}
			mean /= float64(cols)
			var variance float64
			for _, v := range row {
				d := v - mean
				variance += d * d
			}
			variance /= float64(cols)
			inv := 1 / math.Sqrt(variance+1e-5)
			for j, v := range row {
				dst[i*cols+j] = (v - mean) * inv
			}
		}
	}
	softmax := func(dst, a []float64, rows, cols int) {
		for i := 0; i < rows; i++ {
			row := a[i*cols : (i+1)*cols]
			maxV := math.Inf(-1)
			for _, v := range row {
				if v > maxV {
					maxV = v
				}
			}
			var sum float64
			for j, v := range row {
				ev := math.Exp(v - maxV)
				dst[i*cols+j] = ev
				sum += ev
			}
			for j := range row {
				dst[i*cols+j] /= sum
			}
		}
	}
	gelu := func(dst, a []float64) {
		const c0 = 0.7978845608028654
		for i, v := range a {
			dst[i] = 0.5 * v * (1 + math.Tanh(c0*(v+0.044715*v*v*v)))
		}
	}

	for l := 0; l < c.Layers; l++ {
		q := make([]float64, T*D)
		k := make([]float64, T*D)
		v := make([]float64, T*D)
		matmul(q, x, ws[wname("wq", l)], T, D, D)
		matmul(k, x, ws[wname("wk", l)], T, D, D)
		matmul(v, x, ws[wname("wv", l)], T, D, D)
		scores := make([]float64, T*T)
		matmulT(scores, q, k, T, D, T)
		probs := make([]float64, T*T)
		softmax(probs, scores, T, T)
		attn := make([]float64, T*D)
		matmul(attn, probs, v, T, T, D)
		tmp := make([]float64, T*D)
		matmul(tmp, attn, ws[wname("wo", l)], T, D, D)
		for i := range tmp {
			tmp[i] = x[i] + tmp[i]
		}
		layernorm(x, tmp, T, D)
		ff1 := make([]float64, T*F)
		matmul(ff1, x, ws[wname("w1", l)], T, D, F)
		ff1act := make([]float64, T*F)
		gelu(ff1act, ff1)
		ff2 := make([]float64, T*D)
		matmul(ff2, ff1act, ws[wname("w2", l)], T, F, D)
		for i := range ff2 {
			ff2[i] = x[i] + ff2[i]
		}
		layernorm(x, ff2, T, D)
	}
	return x
}

// Verify implements workload.Verifier.
func (w *Workload) Verify(d workload.ObjectDumper) error {
	want := w.Reference()
	dump, err := d.DumpObject("x")
	if err != nil {
		return err
	}
	for i, wv := range want {
		got := math.Float64frombits(binary.LittleEndian.Uint64(dump[i*8:]))
		if math.Abs(got-wv) > 1e-9 {
			return fmt.Errorf("gpt2: x[%d] = %g, want %g", i, got, wv)
		}
	}
	return nil
}
