package gpt2

import (
	"encoding/binary"
	"math"
	"testing"

	"mira/internal/analysis"
	"mira/internal/ir"
)

func small() Config { return Config{Layers: 2, DModel: 16, DFF: 32, SeqLen: 8, Seed: 3} }

func TestProgramStructure(t *testing.T) {
	w := New(small())
	p := w.Program()
	if p.Entry != "inference" {
		t.Fatalf("entry %q", p.Entry)
	}
	for l := 0; l < 2; l++ {
		for _, kind := range []string{"wq", "wk", "wv", "wo", "w1", "w2", "kcache", "vcache"} {
			if _, ok := p.Object(wname(kind, l)); !ok {
				t.Fatalf("object %s missing", wname(kind, l))
			}
		}
	}
	if err := ir.Validate(p); err != nil {
		t.Fatal(err)
	}
}

func TestWeightsDeterministic(t *testing.T) {
	a, b := New(small()), New(small())
	wa, wb := a.weights(), b.weights()
	for k, va := range wa {
		vb := wb[k]
		for i := range va {
			if va[i] != vb[i] {
				t.Fatalf("weights %s diverge at %d", k, i)
			}
		}
	}
}

func TestReferenceFinite(t *testing.T) {
	w := New(small())
	x := w.Reference()
	if len(x) != 8*16 {
		t.Fatalf("reference length %d", len(x))
	}
	var sum float64
	for i, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("x[%d] = %v", i, v)
		}
		sum += v * v
	}
	if sum == 0 {
		t.Fatal("reference output all zeros")
	}
	// LayerNorm output: each row has ~zero mean and ~unit variance.
	for r := 0; r < 8; r++ {
		var mean float64
		for c := 0; c < 16; c++ {
			mean += x[r*16+c]
		}
		mean /= 16
		if math.Abs(mean) > 1e-9 {
			t.Fatalf("row %d mean %g after layernorm", r, mean)
		}
	}
}

func TestPerLayerLifetimesVisibleToAnalysis(t *testing.T) {
	w := New(small())
	r, err := analysis.Analyze(w.Program(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Layer 0's weights are touched only in layer0; layer 1's only in
	// layer1 — the lifetime structure behind Fig. 17.
	if _, ok := r.Funcs["layer0"].Objects[wname("wq", 0)]; !ok {
		t.Fatal("layer0 does not access its wq")
	}
	if _, ok := r.Funcs["layer1"].Objects[wname("wq", 0)]; ok {
		t.Fatal("layer1 accesses layer0's wq")
	}
	// Tensor intrinsics report their co-resident working set.
	a := r.Funcs["layer0"].Objects[wname("w1", 0)]
	if a == nil || a.CoResidentBytes == 0 {
		t.Fatal("w1 has no co-resident working-set estimate")
	}
}

func TestFullMemoryBytesCoversObjects(t *testing.T) {
	w := New(small())
	var total int64
	for _, o := range w.Program().Objects {
		if !o.Local {
			total += o.SizeBytes()
		}
	}
	if w.FullMemoryBytes() != total {
		t.Fatalf("FullMemoryBytes %d != object total %d", w.FullMemoryBytes(), total)
	}
}

type memStore map[string][]byte

func (m memStore) InitObject(name string, data []byte) error {
	cp := make([]byte, len(data))
	copy(cp, data)
	m[name] = cp
	return nil
}

func (m memStore) DumpObject(name string) ([]byte, error) { return m[name], nil }

func TestInitLoadsAllWeights(t *testing.T) {
	w := New(Config{Layers: 2, DModel: 16, DFF: 32, SeqLen: 4, Seed: 3})
	st := memStore{}
	if err := w.Init(st); err != nil {
		t.Fatal(err)
	}
	// Every far object the program declares beyond scratch must be
	// initialized or zero-initialized; at minimum the per-layer weights
	// and the embedding input must be present.
	for _, name := range []string{"x", "w1_l0", "w2_l0", "w1_l1", "w2_l1"} {
		if len(st[name]) == 0 {
			t.Fatalf("object %q not initialized", name)
		}
	}
}

func TestVerifyAgainstReference(t *testing.T) {
	w := New(Config{Layers: 2, DModel: 16, DFF: 32, SeqLen: 4, Seed: 3})
	st := memStore{}
	if err := w.Init(st); err != nil {
		t.Fatal(err)
	}
	ref := w.Reference()
	buf := make([]byte, len(ref)*8)
	for i, v := range ref {
		binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(v))
	}
	st["x"] = buf
	if err := w.Verify(st); err != nil {
		t.Fatalf("reference output rejected: %v", err)
	}
	binary.LittleEndian.PutUint64(st["x"][0:], math.Float64bits(ref[0]+0.5))
	if err := w.Verify(st); err == nil {
		t.Fatal("corrupted output accepted")
	}
}

func TestAccessorsAndDefaults(t *testing.T) {
	w := New(Config{})
	def := DefaultConfig()
	if w.Config().Layers != def.Layers {
		t.Fatal("zero config not defaulted")
	}
	if w.Name() != "gpt2" || w.Params() != nil {
		t.Fatalf("accessors: %q %v", w.Name(), w.Params())
	}
	if w.FullMemoryBytes() <= 0 {
		t.Fatal("no footprint")
	}
}
