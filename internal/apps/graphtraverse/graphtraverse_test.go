package graphtraverse

import (
	"encoding/binary"
	"sort"
	"testing"
)

func TestProgramValidatesAndSizes(t *testing.T) {
	w := New(Config{Edges: 128, Nodes: 64, Passes: 2, Seed: 1})
	p := w.Program()
	if p.Entry != "traverse" {
		t.Fatalf("entry %q", p.Entry)
	}
	if got := w.FullMemoryBytes(); got != 128*EdgeBytes+64*NodeBytes {
		t.Fatalf("FullMemoryBytes = %d", got)
	}
	wt := New(Config{Edges: 128, Nodes: 64, Third: 32, Passes: 1, Seed: 1})
	if _, ok := wt.Program().Object("rand3"); !ok {
		t.Fatal("third array missing")
	}
	if wt.FullMemoryBytes() != 128*EdgeBytes+64*NodeBytes+32*ThirdBytes {
		t.Fatal("third array not in footprint")
	}
}

func TestEdgeDataDeterministicAndBounded(t *testing.T) {
	a := New(Config{Edges: 256, Nodes: 32, Passes: 1, Seed: 5})
	b := New(Config{Edges: 256, Nodes: 32, Passes: 1, Seed: 5})
	da, db := a.EdgeData(), b.EdgeData()
	if string(da) != string(db) {
		t.Fatal("same seed produced different edges")
	}
	for i := 0; i < 256; i++ {
		from := binary.LittleEndian.Uint64(da[i*EdgeBytes:])
		to := binary.LittleEndian.Uint64(da[i*EdgeBytes+8:])
		if from >= 32 || to >= 32 {
			t.Fatalf("edge %d endpoints out of range: %d %d", i, from, to)
		}
	}
	c := New(Config{Edges: 256, Nodes: 32, Passes: 1, Seed: 6})
	if string(c.EdgeData()) == string(da) {
		t.Fatal("different seeds produced identical edges")
	}
}

func TestSkewedDistribution(t *testing.T) {
	w := New(Config{Edges: 4096, Nodes: 256, Passes: 1, Seed: 9, Skew: 3})
	data := w.EdgeData()
	counts := make(map[uint64]int)
	for i := 0; i < 4096; i++ {
		counts[binary.LittleEndian.Uint64(data[i*EdgeBytes:])]++
	}
	// A skewed draw concentrates mass: the hottest endpoint must carry
	// far more than the uniform expectation (4096/256 = 16).
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 64 {
		t.Fatalf("hottest node has %d draws; skew looks uniform", max)
	}
}

func TestExpectedCountsConsistent(t *testing.T) {
	w := New(Config{Edges: 100, Nodes: 16, Passes: 3, Seed: 2})
	counts := w.ExpectedCounts()
	var total int64
	for _, c := range counts {
		total += c
	}
	if total != 100*2*3 {
		t.Fatalf("total count %d, want %d", total, 600)
	}
}

func TestDefaultsApplied(t *testing.T) {
	w := New(Config{})
	if w.Config().Edges == 0 || w.Config().Passes == 0 {
		t.Fatal("defaults not applied")
	}
}

type memStore map[string][]byte

func (m memStore) InitObject(name string, data []byte) error {
	cp := make([]byte, len(data))
	copy(cp, data)
	m[name] = cp
	return nil
}

func (m memStore) DumpObject(name string) ([]byte, error) { return m[name], nil }

func TestInitAndVerifyRoundtrip(t *testing.T) {
	w := New(Config{Edges: 512, Nodes: 64, Passes: 2, Seed: 13})
	st := memStore{}
	if err := w.Init(st); err != nil {
		t.Fatal(err)
	}
	if int64(len(st["edges"])) != 512*EdgeBytes {
		t.Fatalf("edges image %d bytes", len(st["edges"]))
	}
	// Build the expected final node image from the oracle: counts at
	// field 0, rest untouched (zero — Init loads only edges).
	nodes := make([]byte, 64*NodeBytes)
	for i, c := range w.ExpectedCounts() {
		binary.LittleEndian.PutUint64(nodes[int64(i)*NodeBytes:], uint64(c))
	}
	st["nodes"] = nodes
	if err := w.Verify(st); err != nil {
		t.Fatalf("oracle image rejected: %v", err)
	}
	binary.LittleEndian.PutUint64(st["nodes"][0:], 1<<40)
	if err := w.Verify(st); err == nil {
		t.Fatal("corrupted counts accepted")
	}
}

func TestNameParamsAccessors(t *testing.T) {
	w := New(Config{})
	if w.Name() != "graphtraverse" || w.Params() != nil {
		t.Fatalf("accessors wrong: %q %v", w.Name(), w.Params())
	}
	if w.Config().Edges != DefaultConfig().Edges {
		t.Fatal("zero config not defaulted")
	}
}

func TestSkewConcentratesEndpoints(t *testing.T) {
	uniform := New(Config{Edges: 8192, Nodes: 1024, Seed: 5})
	skewed := New(Config{Edges: 8192, Nodes: 1024, Seed: 5, Skew: 3.5})
	// Skew concentrates endpoint *frequency*: the hottest 10% of nodes
	// must absorb a clearly larger share of the draws than under the
	// uniform distribution.
	hotShare := func(w *Workload) float64 {
		freq := map[uint64]int{}
		data := w.EdgeData()
		total := 0
		for i := 0; i < len(data); i += 8 {
			freq[binary.LittleEndian.Uint64(data[i:i+8])]++
			total++
		}
		counts := make([]int, 0, len(freq))
		for _, c := range freq {
			counts = append(counts, c)
		}
		sort.Sort(sort.Reverse(sort.IntSlice(counts)))
		hot := 0
		for i := 0; i < len(counts) && i < 102; i++ {
			hot += counts[i]
		}
		return float64(hot) / float64(total)
	}
	su, ss := hotShare(uniform), hotShare(skewed)
	if ss < su*1.5 {
		t.Fatalf("skew did not concentrate endpoints: hot-10%% share %.3f vs uniform %.3f", ss, su)
	}
}
