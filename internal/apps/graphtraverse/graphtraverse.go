// Package graphtraverse implements the paper's rundown example (Fig. 4): a
// sequential pass over an edge array updating per-node counters in a node
// array through indirect (pointer-valued) indices. It is the workload
// behind Figs. 5-12 and 15. An optional third, uniformly-random-accessed
// array reproduces the three-section sizing study of Figs. 11-12.
package graphtraverse

import (
	"encoding/binary"
	"fmt"
	"math"

	"mira/internal/exec"
	"mira/internal/ir"
	"mira/internal/sim"
	"mira/internal/workload"
)

// Config sizes the workload.
type Config struct {
	// Edges is the number of edges (16 B each: from, to).
	Edges int64
	// Nodes is the number of nodes (128 B each: count + payload).
	Nodes int64
	// WithThird adds a uniformly-randomly accessed 64 B-element array of
	// Third elements (Figs. 11-12).
	Third int64
	// Passes repeats the traversal (more pressure, stable profiles).
	Passes int64
	// Seed drives the deterministic edge generator.
	Seed uint64
	// NodeWidth overrides the node element size (default NodeBytes =
	// 128). Fig. 22's selective-transmission study uses wide nodes
	// (e.g. 4 KB) of which the traversal touches only the 8 B counter.
	NodeWidth int64
	// Skew > 0 draws node endpoints from a skewed (power-law-like)
	// distribution, as real graphs have: endpoint = hash(floor(N *
	// u^Skew)). Hot nodes are scattered across the array, so a
	// page-granular cache wastes most of every fetched page on cold
	// neighbours — the paper's 2.3-31x amplification (§1). Zero means
	// uniform.
	Skew float64
}

// DefaultConfig is the size used by the figure harness: ~768 KB of far
// data, small enough to sweep local-memory fractions quickly.
func DefaultConfig() Config {
	return Config{Edges: 16384, Nodes: 2048, Passes: 1, Seed: 2023}
}

// EdgeBytes and NodeBytes mirror the paper's element sizes: edges are two
// 8 B node indices; nodes are 128 B structures whose first field is the
// counter the traversal updates (the paper's "128 bytes is the smallest
// size that can hold the accessed data unit").
const (
	EdgeBytes  = 16
	NodeBytes  = 128
	ThirdBytes = 64
)

// Workload implements planner.Workload.
type Workload struct {
	cfg  Config
	prog *ir.Program
}

// New builds the workload.
func New(cfg Config) *Workload {
	if cfg.Edges == 0 {
		cfg = DefaultConfig()
	}
	if cfg.Passes <= 0 {
		cfg.Passes = 1
	}
	if cfg.NodeWidth <= 0 {
		cfg.NodeWidth = NodeBytes
	}
	return &Workload{cfg: cfg, prog: build(cfg)}
}

// Name implements planner.Workload.
func (w *Workload) Name() string { return "graphtraverse" }

// Program implements planner.Workload.
func (w *Workload) Program() *ir.Program { return w.prog }

// Params implements planner.Workload.
func (w *Workload) Params() map[string]exec.Value { return nil }

// Config returns the workload's sizing.
func (w *Workload) Config() Config { return w.cfg }

// FullMemoryBytes is the workload's far-data footprint — the 100% point of
// the local-memory axis in the figures.
func (w *Workload) FullMemoryBytes() int64 {
	return w.cfg.Edges*EdgeBytes + w.cfg.Nodes*w.cfg.NodeWidth + w.cfg.Third*ThirdBytes
}

// build constructs the Fig. 4 program.
func build(cfg Config) *ir.Program {
	b := ir.NewBuilder("graphtraverse")
	b.Object("edges", EdgeBytes, cfg.Edges,
		ir.F("from", 0, 8), ir.F("to", 8, 8))
	b.Object("nodes", int(cfg.NodeWidth), cfg.Nodes,
		ir.F("count", 0, 8))
	if cfg.Third > 0 {
		b.Object("rand3", ThirdBytes, cfg.Third, ir.F("val", 0, 8))
	}
	fb := b.Func("traverse")
	fb.Loop(ir.C(0), ir.C(cfg.Passes), ir.C(1), func(pass ir.Expr) {
		fb.Loop(ir.C(0), ir.C(cfg.Edges), ir.C(1), func(i ir.Expr) {
			from := fb.Load("edges", i, "from")
			to := fb.Load("edges", i, "to")
			c1 := fb.Load("nodes", from, "count")
			fb.Store("nodes", from, "count", ir.Add(c1, ir.C(1)))
			c2 := fb.Load("nodes", to, "count")
			fb.Store("nodes", to, "count", ir.Add(c2, ir.C(1)))
			if cfg.Third > 0 {
				// Uniform random access: multiplicative hash of
				// i — deliberately non-affine so the analysis
				// classifies it Random.
				idx := ir.Mod(ir.Mul(i, ir.C(2654435761)), ir.C(cfg.Third))
				v := fb.Load("rand3", idx, "val")
				fb.Store("rand3", idx, "val", ir.Add(v, ir.C(1)))
			}
		})
	})
	return b.MustProgram()
}

// Init loads deterministic edge data.
func (w *Workload) Init(t workload.ObjectIniter) error {
	return t.InitObject("edges", w.EdgeData())
}

// EdgeData generates the deterministic edge array bytes.
func (w *Workload) EdgeData() []byte {
	rng := sim.NewRNG(w.cfg.Seed)
	data := make([]byte, w.cfg.Edges*EdgeBytes)
	for i := int64(0); i < w.cfg.Edges; i++ {
		binary.LittleEndian.PutUint64(data[i*EdgeBytes:], uint64(w.pickNode(rng)))
		binary.LittleEndian.PutUint64(data[i*EdgeBytes+8:], uint64(w.pickNode(rng)))
	}
	return data
}

// pickNode draws an endpoint, optionally skewed and hash-scattered.
func (w *Workload) pickNode(rng *sim.RNG) int64 {
	n := w.cfg.Nodes
	if w.cfg.Skew <= 0 {
		return int64(rng.Intn(int(n)))
	}
	u := rng.Float64()
	hot := int64(float64(n) * math.Pow(u, w.cfg.Skew))
	if hot >= n {
		hot = n - 1
	}
	// Scatter hot ids across the array so page granularity cannot
	// exploit their contiguity.
	return (hot * 2654435761) % n
}

// ExpectedCounts computes the node counters natively — the oracle the
// integration tests compare every system's output against.
func (w *Workload) ExpectedCounts() []int64 {
	counts := make([]int64, w.cfg.Nodes)
	data := w.EdgeData()
	for p := int64(0); p < w.cfg.Passes; p++ {
		for i := int64(0); i < w.cfg.Edges; i++ {
			from := int64(binary.LittleEndian.Uint64(data[i*EdgeBytes:]))
			to := int64(binary.LittleEndian.Uint64(data[i*EdgeBytes+8:]))
			counts[from]++
			counts[to]++
		}
	}
	return counts
}

// Verify checks the final node counters against the oracle. Call after the
// system's flush.
func (w *Workload) Verify(d workload.ObjectDumper) error {
	dump, err := d.DumpObject("nodes")
	if err != nil {
		return err
	}
	want := w.ExpectedCounts()
	for i := int64(0); i < w.cfg.Nodes; i++ {
		got := int64(binary.LittleEndian.Uint64(dump[i*w.cfg.NodeWidth:]))
		if got != want[i] {
			return fmt.Errorf("graphtraverse: node %d count = %d, want %d", i, got, want[i])
		}
	}
	return nil
}
