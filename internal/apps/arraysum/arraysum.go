// Package arraysum is the paper's "simple loop over an array for summing
// the array value" microbenchmark (§6.1), used in the runtime- and
// metadata-overhead comparisons (Figs. 19-20).
package arraysum

import (
	"encoding/binary"
	"fmt"

	"mira/internal/exec"
	"mira/internal/ir"
	"mira/internal/workload"
)

// Config sizes the workload.
type Config struct {
	// N is the element count (8 B ints).
	N int64
	// Seed drives data generation.
	Seed uint64
}

// DefaultConfig is the harness size.
func DefaultConfig() Config { return Config{N: 1 << 16, Seed: 1} }

// Workload implements workload.Workload.
type Workload struct {
	cfg  Config
	prog *ir.Program
}

// New builds the workload.
func New(cfg Config) *Workload {
	if cfg.N == 0 {
		cfg = DefaultConfig()
	}
	b := ir.NewBuilder("arraysum")
	b.IntArray("a", cfg.N)
	b.IntArray("result", 1)
	// The summing kernel is a self-contained function with no shared
	// writable data — an offload candidate (§4.8): it is data-heavy and
	// compute-light, exactly what belongs next to the memory.
	sf := b.Func("sumAll")
	sf.MarkNoSharedWrites()
	acc := sf.Var(ir.C(0))
	sf.Loop(ir.C(0), ir.C(cfg.N), ir.C(1), func(i ir.Expr) {
		v := sf.Load("a", i, "")
		sf.Set(acc, ir.Add(ir.R(acc.ID), v))
	})
	sf.Store("result", ir.C(0), "", ir.R(acc.ID))
	sf.Return(ir.R(acc.ID))
	fb := b.Func("sum")
	v := fb.CallRet("sumAll")
	fb.Return(v)
	b.SetEntry("sum")
	return &Workload{cfg: cfg, prog: b.MustProgram()}
}

// Name implements workload.Workload.
func (w *Workload) Name() string { return "arraysum" }

// Program implements workload.Workload.
func (w *Workload) Program() *ir.Program { return w.prog }

// Params implements workload.Workload.
func (w *Workload) Params() map[string]exec.Value { return nil }

// FullMemoryBytes implements workload.Workload.
func (w *Workload) FullMemoryBytes() int64 { return w.cfg.N*8 + 8 }

// Data generates the array contents.
func (w *Workload) Data() []byte {
	data := make([]byte, w.cfg.N*8)
	for i := int64(0); i < w.cfg.N; i++ {
		binary.LittleEndian.PutUint64(data[i*8:], uint64(i*7%1000))
	}
	return data
}

// Init implements workload.Workload.
func (w *Workload) Init(t workload.ObjectIniter) error {
	return t.InitObject("a", w.Data())
}

// Expected computes the sum natively.
func (w *Workload) Expected() int64 {
	var sum int64
	for i := int64(0); i < w.cfg.N; i++ {
		sum += i * 7 % 1000
	}
	return sum
}

// Verify implements workload.Verifier.
func (w *Workload) Verify(d workload.ObjectDumper) error {
	dump, err := d.DumpObject("result")
	if err != nil {
		return err
	}
	got := int64(binary.LittleEndian.Uint64(dump))
	if want := w.Expected(); got != want {
		return fmt.Errorf("arraysum: result %d, want %d", got, want)
	}
	return nil
}
