package arraysum

import (
	"encoding/binary"
	"testing"

	"mira/internal/analysis"
	"mira/internal/ir"
)

func TestProgramShape(t *testing.T) {
	w := New(Config{N: 512, Seed: 1})
	p := w.Program()
	if p.Entry != "sum" {
		t.Fatalf("entry %q", p.Entry)
	}
	if err := ir.Validate(p); err != nil {
		t.Fatal(err)
	}
	kernel, ok := p.Func("sumAll")
	if !ok || !kernel.NoSharedWrites {
		t.Fatal("kernel not marked offload-safe")
	}
}

func TestExpectedMatchesData(t *testing.T) {
	w := New(Config{N: 1000, Seed: 1})
	var want int64
	data := w.Data()
	for i := 0; i < 1000; i++ {
		want += int64(i * 7 % 1000)
	}
	if got := w.Expected(); got != want {
		t.Fatalf("Expected() = %d, want %d", got, want)
	}
	if int64(len(data)) != 8000 {
		t.Fatalf("data length %d", len(data))
	}
}

func TestKernelIsOffloadCandidate(t *testing.T) {
	w := New(Config{N: 1 << 14, Seed: 1})
	r, err := analysis.Analyze(w.Program(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	decisions := analysis.DecideOffload(w.Program(), r, analysis.DefaultOffloadParams())
	for _, d := range decisions {
		if d.Func == "sumAll" {
			if !d.Offload {
				t.Fatalf("data-heavy kernel not chosen for offload: %+v", d)
			}
			return
		}
	}
	t.Fatal("sumAll not evaluated for offload")
}

func TestDefaults(t *testing.T) {
	w := New(Config{})
	if w.FullMemoryBytes() <= 0 {
		t.Fatal("no footprint")
	}
}

type memStore map[string][]byte

func (m memStore) InitObject(name string, data []byte) error {
	cp := make([]byte, len(data))
	copy(cp, data)
	m[name] = cp
	return nil
}

func (m memStore) DumpObject(name string) ([]byte, error) { return m[name], nil }

func TestInitAndVerify(t *testing.T) {
	w := New(Config{N: 256, Seed: 1})
	st := memStore{}
	if err := w.Init(st); err != nil {
		t.Fatal(err)
	}
	if len(st["a"]) != 256*8 {
		t.Fatalf("array image %d bytes", len(st["a"]))
	}
	res := make([]byte, 8)
	binary.LittleEndian.PutUint64(res, uint64(w.Expected()))
	st["result"] = res
	if err := w.Verify(st); err != nil {
		t.Fatalf("correct result rejected: %v", err)
	}
	binary.LittleEndian.PutUint64(st["result"], uint64(w.Expected()+1))
	if err := w.Verify(st); err == nil {
		t.Fatal("wrong result accepted")
	}
}

func TestNameAndParams(t *testing.T) {
	w := New(Config{N: 16})
	if w.Name() != "arraysum" {
		t.Fatalf("name %q", w.Name())
	}
	if w.Params() != nil {
		t.Fatal("unexpected params")
	}
}
